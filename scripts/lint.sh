#!/bin/sh
# Project lint driver: build the lexical linter, prove it still detects
# every banned construct (self-test over embedded bad/good snippets), then
# scan lib/ and bin/.  Any violation fails the build; waive a line only
# with an explicit "lint: allow" comment.
set -eu

cd "$(dirname "$0")/.."

dune build bin/lint.exe

./_build/default/bin/lint.exe --self-test
./_build/default/bin/lint.exe "$@"
