#!/bin/sh
# Static-check driver, both layers: the lexical linter and the AST
# domain-ownership checker.  Each is first proved against its seeded
# violations (lint's embedded snippets, the checker's fixture corpus
# under test/fixtures/check), then scans lib/ and bin/.  Any finding
# fails the build; waivers are per-rule comments ("lint: allow" for the
# linter, "check: allow <rule>" for the checker).
set -eu

cd "$(dirname "$0")/.."

dune build bin/lint.exe bin/tric_check.exe

./_build/default/bin/lint.exe --self-test
./_build/default/bin/lint.exe "$@"

./_build/default/bin/tric_check.exe --self-test
./_build/default/bin/tric_check.exe "$@"
