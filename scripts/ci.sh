#!/bin/sh
# CI check: build, run the full test suite, and refuse tracked build
# artifacts (a committed _build/ once shipped with the repo; keep it out).
set -eu

cd "$(dirname "$0")/.."

if git ls-files --error-unmatch _build >/dev/null 2>&1 || \
   git ls-files | grep -q '^_build/'; then
  echo "ci: _build/ is tracked by git — run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build
dune runtest

# Static checks: self-test both scanners (lexical lint + AST checker),
# prove each fails on a seeded violation, then scan the tree.
./scripts/lint.sh
seeded=$(mktemp -d)
trap 'rm -rf "$seeded"' EXIT
printf 'let sorted l = List.sort compare l\n' > "$seeded/bad.ml"
if ./_build/default/bin/lint.exe "$seeded" >/dev/null 2>&1; then
  echo "ci: lint failed to flag a seeded violation" >&2
  exit 1
fi
mkdir -p "$seeded/bin"
printf 'let total = ref 0\nlet drive pool =\n  let tasks = [| (fun () -> incr total) |] in\n  Pool.run pool tasks\n' > "$seeded/bin/race.ml"
if ./_build/default/bin/tric_check.exe "$seeded/bin" | grep -q 'domain-ownership'; then
  : # the seeded race was caught
else
  echo "ci: tric_check failed to flag a seeded domain-ownership violation" >&2
  exit 1
fi

# Shadow-audited replay smoke: generate a small SNB dataset, interleave
# removals (--churn) into the add-only stream, and certify the maintained
# state of the trie engines and one baseline against ground truth every
# 500 updates — per-update and micro-batched.
auditds=$(mktemp -u).tric
dune exec bin/tric_cli.exe -- generate snb -o "$auditds" --edges 4000 --qdb 60 > /dev/null
for engine in TRIC TRIC+ INV+; do
  TRIC_AUDIT=500 dune exec bin/tric_cli.exe -- \
    audit "$auditds" --engine "$engine" --every 500 --churn 0.2 > /dev/null
done
TRIC_AUDIT=500 dune exec bin/tric_cli.exe -- \
  audit "$auditds" --engine TRIC+ --every 500 --churn 0.2 --batch 64 > /dev/null

# Windowed audited churn replay: the same stream scoped to a sliding
# window (count-based, then event-time), per-update and micro-batched.
# Every shadow audit now also certifies window coherence — no edge
# outlives its deadline or capacity, nothing window-live is absent from
# the stream, and the inner engines are re-certified against the window's
# own live set instead of the full stream history.
TRIC_AUDIT=500 dune exec bin/tric_cli.exe -- \
  audit "$auditds" --engine TRIC+ --every 500 --churn 0.2 --window "500 EVENTS" > /dev/null
TRIC_AUDIT=500 dune exec bin/tric_cli.exe -- \
  audit "$auditds" --engine TRIC+ --every 500 --churn 0.2 --batch 64 --window 1h > /dev/null

# Shard matrix: the same churned audited replay through the owner-targeted
# dispatcher at 1, 2 and 4 domains.  Every shadow audit re-certifies the
# dispatched state (including routing coherence: trie placement AND the
# per-key dispatch bitmaps) against ground truth, so a green run here
# proves targeted dispatch = sequential on this stream.
for shards in 1 2 4; do
  TRIC_SHARDS=$shards TRIC_AUDIT=500 dune exec bin/tric_cli.exe -- \
    audit "$auditds" --engine TRIC+ --every 500 --churn 0.2 > /dev/null
  TRIC_SHARDS=$shards TRIC_AUDIT=500 dune exec bin/tric_cli.exe -- \
    audit "$auditds" --engine TRIC --every 500 --churn 0.2 --batch 32 > /dev/null
done
# Oversharded batched row: 8 domains exceed the label alphabet, so some
# shards own nothing — the skewed-ownership regime targeted routing and
# batched dispatch must survive unchanged.
TRIC_SHARDS=8 TRIC_AUDIT=500 dune exec bin/tric_cli.exe -- \
  audit "$auditds" --engine TRIC --every 500 --churn 0.2 --batch 32 > /dev/null
# Telemetry: a metrics-enabled audited churn replay (4 shards) exporting
# its merged snapshot, which is then re-parsed and schema-checked by the
# stats subcommand's strict validator.
metricsjson=$(mktemp -u).json
TRIC_AUDIT=500 dune exec bin/tric_cli.exe -- \
  audit "$auditds" --engine TRIC+ --every 500 --churn 0.2 --shards 4 \
  --metrics-out "$metricsjson" > /dev/null
dune exec bin/tric_cli.exe -- stats --check "$metricsjson"
rm -f "$metricsjson"
rm -f "$auditds"

# Telemetry overhead smoke: metrics-on vs metrics-off throughput on the
# same batched replay must stay within the TRIC_OVERHEAD_MAX_PCT budget
# (default 5%); the strict mode exits non-zero past it.
TRIC_OVERHEAD_ONLY=1 TRIC_OVERHEAD_EDGES=2000 TRIC_OVERHEAD_QDB=50 \
  dune exec bench/main.exe

# Allocation-regression smoke: the packed row-store layout report (live
# heap words + upd/s, BENCH_layout.json emission path) in strict mode —
# mean minor words allocated per update must stay under
# TRIC_ALLOC_MAX_WORDS (default 60k); boxed-tuple regressions on the hot
# path trip this before they show up in throughput.
TRIC_LAYOUT_ONLY=1 TRIC_LAYOUT_EDGES=1000 TRIC_LAYOUT_QDB=50 \
  dune exec bench/main.exe

# Bench smoke: a tiny batched-ingestion throughput run, so the bench
# executable's non-bechamel paths stay exercised by CI.
TRIC_BATCH_ONLY=1 TRIC_BATCH_EDGES=1000 TRIC_BATCH_QDB=50 dune exec bench/main.exe

# Shard-scaling smoke: 1/2/4/8-domain dispatch of the same stream plus the
# BENCH_shard.json emission path.
TRIC_SHARD_ONLY=1 TRIC_SHARD_EDGES=1000 TRIC_SHARD_QDB=50 dune exec bench/main.exe

# Window smoke: the timestamped windowed replay (expiry amortization,
# lateness) plus the BENCH_window.json emission path, and the
# torn-journal crash-recovery path straight from the suite.
TRIC_WINDOW_ONLY=1 TRIC_WINDOW_EDGES=1000 TRIC_WINDOW_QDB=50 dune exec bench/main.exe
dune exec test/test_main.exe -- test durability 3 > /dev/null

# Subscription-server smoke, three layers: (1) the kill -9 torture from
# the suite — subscribers over a churned stream, SIGKILL mid-stream,
# restart, reconnect with resume tokens, and the combined streams must be
# gapless and duplicate-free against a sequential oracle, with snapshot
# compaction bounding the replayed tail and an audit-clean recovered
# state; (2) a line-protocol client session against a background serve,
# whose shutdown metrics envelope is schema-checked by the stats
# validator; (3) the fan-out bench emission path (BENCH_server.json).
dune exec test/test_main.exe -- test server 13 > /dev/null

srvdir=$(mktemp -d)
./_build/default/bin/tric_cli.exe serve --socket "$srvdir/s.sock" \
  --journal "$srvdir/j.log" --shards 2 --metrics-out "$srvdir/metrics.json" \
  > "$srvdir/server.log" 2>&1 &
srvpid=$!
# Capture the session before grepping: grep -q on the live pipe would
# exit at the match and SIGPIPE the client before it sends quit, leaving
# the server running forever.
printf '%s\n' \
    "hello ci" \
    "register edges ?x -a-> ?y" \
    "publish u -a-> v" \
    "recv 1" \
    "ack 1" \
    "stats prometheus" \
    "quit" \
  | ./_build/default/bin/tric_cli.exe client --socket "$srvdir/s.sock" \
  > "$srvdir/session.log"
if grep -q 'notify useq=1' "$srvdir/session.log"; then
  : # the session saw its notification
else
  echo "ci: server client session failed" >&2
  kill "$srvpid" 2>/dev/null || true
  exit 1
fi
wait "$srvpid"
./_build/default/bin/tric_cli.exe stats --check "$srvdir/metrics.json"
rm -rf "$srvdir"

TRIC_SERVER_ONLY=1 TRIC_SERVER_SUBS=200 TRIC_SERVER_EDGES=500 \
  dune exec bench/main.exe

# Dispatch-fanout smoke: under a label-partitioned workload every update
# affects exactly one shard, so the mean ops-dispatched-per-shard-per-update
# must stay near 1.0 — the strict mode exits non-zero past TRIC_FANOUT_MAX
# (default 1.5), which a broadcast dispatcher (fanout = nshards = 4) trips.
TRIC_FANOUT_ONLY=1 dune exec bench/main.exe

# Harness smoke at a high scale factor: small enough to finish in seconds,
# and fig12a's stream shrinks below its checkpoint count, which is exactly
# the duplicate-checkpoint regime the growth figures must render cleanly.
TRIC_SCALE=20000 TRIC_BUDGET=2 dune exec bin/tric_cli.exe -- run all > /dev/null

echo "ci: ok"
