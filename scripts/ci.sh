#!/bin/sh
# CI check: build, run the full test suite, and refuse tracked build
# artifacts (a committed _build/ once shipped with the repo; keep it out).
set -eu

cd "$(dirname "$0")/.."

if git ls-files --error-unmatch _build >/dev/null 2>&1 || \
   git ls-files | grep -q '^_build/'; then
  echo "ci: _build/ is tracked by git — run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build
dune runtest

# Bench smoke: a tiny batched-ingestion throughput run, so the bench
# executable's non-bechamel paths stay exercised by CI.
TRIC_BATCH_ONLY=1 TRIC_BATCH_EDGES=1000 TRIC_BATCH_QDB=50 dune exec bench/main.exe

# Harness smoke at a high scale factor: small enough to finish in seconds,
# and fig12a's stream shrinks below its checkpoint count, which is exactly
# the duplicate-checkpoint regime the growth figures must render cleanly.
TRIC_SCALE=20000 TRIC_BUDGET=2 dune exec bin/tric_cli.exe -- run all > /dev/null

echo "ci: ok"
