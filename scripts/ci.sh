#!/bin/sh
# CI check: build, run the full test suite, and refuse tracked build
# artifacts (a committed _build/ once shipped with the repo; keep it out).
set -eu

cd "$(dirname "$0")/.."

if git ls-files --error-unmatch _build >/dev/null 2>&1 || \
   git ls-files | grep -q '^_build/'; then
  echo "ci: _build/ is tracked by git — run 'git rm -r --cached _build'" >&2
  exit 1
fi

dune build
dune runtest

echo "ci: ok"
