(* Graph substrate tests: labels, edges, multigraph semantics, streams. *)

open Tric_graph

let test_label_interning () =
  let a = Label.intern "alpha" and b = Label.intern "beta" in
  Alcotest.(check bool) "distinct" false (Label.equal a b);
  Alcotest.(check bool) "stable" true (Label.equal a (Label.intern "alpha"));
  Alcotest.(check string) "round-trip" "alpha" (Label.to_string a);
  Alcotest.(check int) "of_int/to_int" (Label.to_int a) (Label.to_int (Label.of_int (Label.to_int a)));
  Alcotest.check_raises "of_int out of range" (Invalid_argument "Label.of_int: not interned")
    (fun () -> ignore (Label.of_int max_int))

let test_label_fresh () =
  let f1 = Label.fresh "absent" and f2 = Label.fresh "absent" in
  Alcotest.(check bool) "fresh labels distinct" false (Label.equal f1 f2);
  (* fresh never collides with an interned label even if the user interns
     something that looks like one. *)
  let name = Label.to_string (Label.fresh "absent") in
  let clash = Label.intern name in
  let f3 = Label.fresh "absent" in
  Alcotest.(check bool) "fresh avoids interned" false (Label.equal clash f3)

let test_edge_ordering () =
  let e1 = Edge.of_strings "a" "x" "y" and e2 = Edge.of_strings "a" "x" "y" in
  Alcotest.(check bool) "structural equal" true (Edge.equal e1 e2);
  Alcotest.(check int) "compare 0" 0 (Edge.compare e1 e2);
  Alcotest.(check bool) "hash agrees" true (Edge.hash e1 = Edge.hash e2)

let test_graph_multigraph () =
  let g = Graph.create () in
  let e1 = Edge.of_strings "a" "x" "y" in
  let e2 = Edge.of_strings "b" "x" "y" in
  Alcotest.(check bool) "insert" true (Graph.add_edge g e1);
  Alcotest.(check bool) "parallel edge, different label" true (Graph.add_edge g e2);
  Alcotest.(check bool) "identical triple rejected" false (Graph.add_edge g e1);
  Alcotest.(check int) "two edges" 2 (Graph.num_edges g);
  Alcotest.(check int) "two vertices" 2 (Graph.num_vertices g);
  Alcotest.(check int) "out degree counts both" 2 (Graph.out_degree g (Label.intern "x"));
  Alcotest.(check (list string)) "succ by label" [ "y" ]
    (List.map Label.to_string (Graph.succ g ~label:(Label.intern "a") (Label.intern "x")));
  Alcotest.(check bool) "remove" true (Graph.remove_edge g e1);
  Alcotest.(check bool) "remove absent" false (Graph.remove_edge g e1);
  Alcotest.(check int) "one left" 1 (Graph.num_edges g);
  Alcotest.(check int) "label index maintained" 0 (Graph.count_label g (Label.intern "a"));
  Alcotest.(check int) "label index maintained b" 1 (Graph.count_label g (Label.intern "b"))

let test_graph_adjacency () =
  let g = Graph.create () in
  List.iter
    (fun (l, s, d) -> ignore (Graph.add_edge g (Edge.of_strings l s d)))
    [ ("a", "x", "y"); ("a", "x", "z"); ("b", "w", "x") ];
  let x = Label.intern "x" in
  Alcotest.(check int) "out edges" 2 (List.length (Graph.out_edges g x));
  Alcotest.(check int) "in edges" 1 (List.length (Graph.in_edges g x));
  Alcotest.(check (list string)) "pred" [ "w" ]
    (List.map Label.to_string (Graph.pred g ~label:(Label.intern "b") x))

let test_stream_replay () =
  let updates =
    [
      Update.add (Edge.of_strings "a" "x" "y");
      Update.add (Edge.of_strings "a" "y" "z");
      Update.remove (Edge.of_strings "a" "x" "y");
    ]
  in
  let s = Stream.of_updates updates in
  Alcotest.(check int) "length" 3 (Stream.length s);
  let g = Stream.final_graph s in
  Alcotest.(check int) "net one edge" 1 (Graph.num_edges g);
  Alcotest.(check bool) "survivor" true (Graph.mem_edge g (Edge.of_strings "a" "y" "z"));
  let p = Stream.prefix s 2 in
  Alcotest.(check int) "prefix" 2 (Stream.length p);
  Alcotest.(check int) "prefix graph has both" 2 (Graph.num_edges (Stream.final_graph p));
  let appended = Stream.append p (Update.add (Edge.of_strings "b" "p" "q")) in
  Alcotest.(check int) "append" 3 (Stream.length appended);
  (* append must not mutate the original *)
  Alcotest.(check int) "original untouched" 2 (Stream.length p)

let suite =
  [
    Alcotest.test_case "label interning" `Quick test_label_interning;
    Alcotest.test_case "label fresh" `Quick test_label_fresh;
    Alcotest.test_case "edge ordering" `Quick test_edge_ordering;
    Alcotest.test_case "multigraph semantics" `Quick test_graph_multigraph;
    Alcotest.test_case "adjacency" `Quick test_graph_adjacency;
    Alcotest.test_case "stream replay" `Quick test_stream_replay;
  ]
