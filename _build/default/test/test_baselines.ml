(* INV / INV+ / INC / INC+ baseline tests: hand-built scenarios plus
   randomized differential testing against the naive oracle (which also
   implies agreement with TRIC, tested in test_tric.ml). *)

open Tric_baselines
module Engine = Tric_engine

let engine ~mode ~cache () = Engine.Matcher.of_invidx (Invidx.create ~cache ~mode ())

let all_variants =
  [
    ("INV", fun () -> engine ~mode:Invidx.Full ~cache:false ());
    ("INV+", fun () -> engine ~mode:Invidx.Full ~cache:true ());
    ("INC", fun () -> engine ~mode:Invidx.Seeded ~cache:false ());
    ("INC+", fun () -> engine ~mode:Invidx.Seeded ~cache:true ());
  ]

let test_names () =
  List.iter
    (fun (expected, mk) ->
      Alcotest.(check string) "engine name" expected (mk ()).Engine.Matcher.name)
    all_variants

let test_simple_chain mk () =
  let e = mk () in
  e.Engine.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  let r = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "half chain: nothing" 0 (Engine.Report.total_matches r);
  let r = e.Engine.Matcher.handle_update (Helpers.update "v2 -b-> v3") in
  Alcotest.(check int) "chain closes" 1 (Engine.Report.total_matches r);
  (* Second 'a' edge into same hinge: one more match through the existing b
     edge. *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "v9 -a-> v2") in
  Alcotest.(check int) "new prefix re-matches" 1 (Engine.Report.total_matches r)

let test_duplicate mk () =
  let e = mk () in
  e.Engine.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y");
  ignore (e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2"));
  let r = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "duplicate silent" 0 (Engine.Report.total_matches r)

let test_multi_path_query mk () =
  (* Star query: two paths out of a shared center variable. *)
  let e = mk () in
  e.Engine.Matcher.add_query (Helpers.pattern ~id:1 "?c -a-> ?x; ?c -b-> ?y");
  ignore (e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2"));
  let r = e.Engine.Matcher.handle_update (Helpers.update "v1 -b-> v3") in
  Alcotest.(check int) "star completes" 1 (Engine.Report.total_matches r);
  (* b edge from a different center: no match (centers must coincide). *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "v7 -b-> v3") in
  Alcotest.(check int) "disjoint center" 0 (Engine.Report.total_matches r)

let test_fig11_indexes () =
  (* Fig. 11: sourceInd/targetInd index the constant endpoints of query
     edges, mapping each vertex to the keys it anchors. *)
  let inv = Invidx.create ~mode:Invidx.Full () in
  Invidx.add_query inv (Helpers.pattern ~id:1 "com1 -hasCreator-> ?p -posted-> pst1");
  Invidx.add_query inv (Helpers.pattern ~id:2 "?f -hasMod-> ?p -posted-> pst1");
  let s = Invidx.stats inv in
  Alcotest.(check int) "one constant source (com1)" 1 s.Invidx.source_index_keys;
  Alcotest.(check int) "one constant target (pst1)" 1 s.Invidx.target_index_keys;
  let com1 = Tric_graph.Label.intern "com1" and pst1 = Tric_graph.Label.intern "pst1" in
  (match Invidx.keys_with_source inv com1 with
  | [ k ] ->
    Alcotest.(check string) "key label" "hasCreator"
      (Tric_graph.Label.to_string k.Tric_query.Ekey.label)
  | l -> Alcotest.failf "expected 1 key for com1, got %d" (List.length l));
  (* posted=(?var,pst1) is shared by both queries: indexed once. *)
  Alcotest.(check int) "shared key indexed once" 1
    (List.length (Invidx.keys_with_target inv pst1));
  Alcotest.(check int) "nothing for unknown vertex" 0
    (List.length (Invidx.keys_with_source inv (Tric_graph.Label.intern "nobody")))

let differential_case mk seed () =
  let st = Helpers.rng seed in
  let queries =
    List.init 8 (fun i ->
        Helpers.random_pattern st ~id:(i + 1) ~elabels:Helpers.elabels
          ~vconsts:Helpers.vconsts ~size:(1 + Random.State.int st 3))
  in
  let stream =
    List.init 100 (fun _ ->
        Tric_graph.Update.add
          (Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts))
  in
  Helpers.differential ~engine:(mk ()) ~queries ~stream

let suite =
  Alcotest.test_case "engine names" `Quick test_names
  :: Alcotest.test_case "fig11 source/target indexes" `Quick test_fig11_indexes
  :: List.concat_map
       (fun (name, mk) ->
         [
           Alcotest.test_case (name ^ " simple chain") `Quick (test_simple_chain mk);
           Alcotest.test_case (name ^ " duplicate update") `Quick (test_duplicate mk);
           Alcotest.test_case (name ^ " multi-path star") `Quick (test_multi_path_query mk);
           Alcotest.test_case (name ^ " differential vs oracle") `Quick
             (differential_case mk 42);
           Alcotest.test_case (name ^ " differential vs oracle II") `Quick
             (differential_case mk 777);
         ])
       all_variants
