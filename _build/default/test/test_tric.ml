(* TRIC / TRIC+ engine tests: the paper's running examples, hand-built
   scenarios, deletions, and randomized differential testing against the
   naive oracle. *)

open Tric_query
open Tric_core
module Engine = Tric_engine

let fig4_queries () =
  (* The four query graph patterns of the paper's Fig. 4. *)
  [
    Helpers.pattern ~name:"Q1" ~id:1
      "?f1 -hasMod-> ?p1 -posted-> pst1; ?p1 -posted-> pst2; ?com1 -reply-> pst2";
    Helpers.pattern ~name:"Q2" ~id:2 "?f1 -hasMod-> ?p1";
    Helpers.pattern ~name:"Q3" ~id:3
      "com1 -hasCreator-> ?p1 -posted-> pst1 -containedIn-> ?c";
    Helpers.pattern ~name:"Q4" ~id:4 "?f1 -hasMod-> ?p1 -posted-> pst1 -containedIn-> ?c";
  ]

let test_fig4_covering_paths () =
  let t = Tric.create () in
  List.iter (Tric.add_query t) (fig4_queries ());
  let path_strings qid =
    List.map
      (fun p -> Format.asprintf "%a" (Path.pp (List.nth (fig4_queries ()) (qid - 1))) p)
      (Tric.covering_paths t qid)
  in
  Alcotest.(check (list string))
    "Q1 covering paths"
    [
      "{?f1 -hasMod-> ?p1 -posted-> pst1}";
      "{?f1 -hasMod-> ?p1 -posted-> pst2}";
      "{?com1 -reply-> pst2}";
    ]
    (path_strings 1);
  Alcotest.(check (list string)) "Q2 covering paths" [ "{?f1 -hasMod-> ?p1}" ] (path_strings 2);
  Alcotest.(check (list string))
    "Q3 covering paths"
    [ "{com1 -hasCreator-> ?p1 -posted-> pst1 -containedIn-> ?c}" ]
    (path_strings 3);
  Alcotest.(check (list string))
    "Q4 covering paths"
    [ "{?f1 -hasMod-> ?p1 -posted-> pst1 -containedIn-> ?c}" ]
    (path_strings 4)

let test_fig6_trie_sharing () =
  (* Fig. 6: P1,P2 of Q1, P1 of Q2 and P1 of Q4 share the trie rooted at
     hasMod=(?var,?var); there are 3 tries in total (hasMod, reply,
     hasCreator roots). *)
  let t = Tric.create () in
  List.iter (Tric.add_query t) (fig4_queries ());
  let f = Tric.forest t in
  Alcotest.(check int) "three tries" 3 (Trie.num_tries f);
  (* Shared nodes: hasMod root is one node used by Q1/Q2/Q4. *)
  let root_keys =
    List.map (fun n -> Format.asprintf "%a" Ekey.pp (Trie.node_key n)) (Trie.roots f)
    |> List.sort compare
  in
  Alcotest.(check (list string))
    "root keys"
    [
      "hasCreator=(com1,?var)"; "hasMod=(?var,?var)"; "reply=(?var,pst2)";
    ]
    root_keys;
  (* Node count: hasMod trie = root + posted-pst1 + posted-pst2 +
     containedIn = 4; reply trie = 1; hasCreator trie = 3 (hasCreator,
     posted-pst1, containedIn). *)
  Alcotest.(check int) "node count" 8 (Trie.num_nodes f)

let run_updates engine updates =
  List.map (fun u -> engine.Engine.Matcher.handle_update u) updates

let test_fig9_answering () =
  (* The update scenario of Examples 4.6/4.7: views primed with hasMod
     edges, then posted=(p2,pst1) arrives. *)
  let t = Tric.create () in
  List.iter (Tric.add_query t) (fig4_queries ());
  let e = Engine.Matcher.of_tric t in
  let priming =
    Helpers.updates [ "f1 -hasMod-> p1"; "f2 -hasMod-> p1"; "f2 -hasMod-> p2" ]
  in
  let reports = run_updates e priming in
  (* Each hasMod update satisfies Q2 (single-edge query). *)
  List.iter
    (fun r ->
      Alcotest.(check (list int)) "hasMod satisfies Q2 only" [ 2 ]
        (Engine.Report.satisfied_ids r))
    reports;
  (* posted=(p2,pst1): extends the hasMod chain but Q1/Q3/Q4 need more. *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "p2 -posted-> pst1") in
  Alcotest.(check (list int)) "no query satisfied yet" [] (Engine.Report.satisfied_ids r);
  (* Complete Q1 for moderator f2 (who moderates both p1 and p2):
     posted=(p1,pst2) gives f2 chains to pst1 (via p2) and pst2 (via p1),
     and reply completes it. *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "p1 -posted-> pst2") in
  Alcotest.(check (list int)) "still nothing" [] (Engine.Report.satisfied_ids r);
  let r = e.Engine.Matcher.handle_update (Helpers.update "com9 -reply-> pst2") in
  Alcotest.(check (list int))
    "reply alone not enough (no p posted both pst1 and pst2)" []
    (Engine.Report.satisfied_ids r);
  (* p1-posted->pst1 makes p1 the poster of both pst1 and pst2; its
     moderators f1 and f2 each complete Q1 (with ?com1 = com9). *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "p1 -posted-> pst1") in
  Alcotest.(check (list int)) "Q1 satisfied" [ 1 ] (Engine.Report.satisfied_ids r);
  Alcotest.(check int) "two embeddings (f1 and f2)" 2 (Engine.Report.total_matches r)

let test_duplicate_update_no_new_matches () =
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:7 "?x -a-> ?y");
  let e = Engine.Matcher.of_tric t in
  let r1 = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "first time matches" 1 (Engine.Report.total_matches r1);
  let r2 = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "duplicate is silent" 0 (Engine.Report.total_matches r2)

let test_cycle_query () =
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:9 "?x -a-> ?y; ?y -a-> ?z; ?z -a-> ?x");
  let e = Engine.Matcher.of_tric t in
  let r = run_updates e (Helpers.updates [ "v1 -a-> v2"; "v2 -a-> v3" ]) in
  List.iter
    (fun r -> Alcotest.(check int) "no match yet" 0 (Engine.Report.total_matches r))
    r;
  let r = e.Engine.Matcher.handle_update (Helpers.update "v3 -a-> v1") in
  (* The closing edge creates 3 rotations?  No: variables are distinct per
     binding; rotations bind different (x,y,z) triples, so 3 embeddings. *)
  Alcotest.(check int) "cycle closes with 3 rotations" 3 (Engine.Report.total_matches r);
  (* A self-loop matches the cycle homomorphically (x=y=z). *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "v9 -a-> v9") in
  Alcotest.(check int) "self-loop homomorphism" 1 (Engine.Report.total_matches r)

let test_deletion () =
  let t = Tric.create () in
  Tric.add_query t (Helpers.pattern ~id:11 "?x -a-> ?y -b-> ?z");
  let e = Engine.Matcher.of_tric t in
  ignore (run_updates e (Helpers.updates [ "v1 -a-> v2"; "v2 -b-> v3" ]));
  Alcotest.(check int) "match present" 1 (List.length (e.Engine.Matcher.current_matches 11));
  ignore (e.Engine.Matcher.handle_update (Helpers.update "- v1 -a-> v2"));
  Alcotest.(check int) "match retracted" 0 (List.length (e.Engine.Matcher.current_matches 11));
  (* Re-adding restores it and is reported as new. *)
  let r = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "re-add re-matches" 1 (Engine.Report.total_matches r)

let differential_case ~cache seed () =
  let st = Helpers.rng seed in
  let queries =
    List.init 8 (fun i ->
        Helpers.random_pattern st ~id:(i + 1) ~elabels:Helpers.elabels
          ~vconsts:Helpers.vconsts ~size:(1 + Random.State.int st 3))
  in
  let stream =
    List.init 120 (fun _ ->
        Tric_graph.Update.add
          (Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts))
  in
  let engine = Engine.Matcher.of_tric (Tric.create ~cache ()) in
  Helpers.differential ~engine ~queries ~stream

let suite =
  [
    Alcotest.test_case "fig4 covering paths" `Quick test_fig4_covering_paths;
    Alcotest.test_case "fig6 trie sharing" `Quick test_fig6_trie_sharing;
    Alcotest.test_case "fig9 answering walkthrough" `Quick test_fig9_answering;
    Alcotest.test_case "duplicate update" `Quick test_duplicate_update_no_new_matches;
    Alcotest.test_case "cycle query" `Quick test_cycle_query;
    Alcotest.test_case "deletion" `Quick test_deletion;
    Alcotest.test_case "differential vs oracle (TRIC)" `Quick (differential_case ~cache:false 42);
    Alcotest.test_case "differential vs oracle (TRIC) II" `Quick (differential_case ~cache:false 1337);
    Alcotest.test_case "differential vs oracle (TRIC+)" `Quick (differential_case ~cache:true 42);
    Alcotest.test_case "differential vs oracle (TRIC+) II" `Quick (differential_case ~cache:true 2024);
  ]
