(* Embedded graph database tests: store operations, Cypher parsing,
   planning, execution, transactions, and differential testing of the
   continuous wrapper against the naive oracle. *)

open Tric_graphdb
module Engine = Tric_engine

let test_store_basics () =
  let s = Store.create () in
  let a = Store.create_node s ~labels:[ "V" ] ~props:[ ("name", Value.String "a") ] () in
  let b = Store.create_node s ~labels:[ "V" ] ~props:[ ("name", Value.String "b") ] () in
  let r = Store.create_rel s ~rtype:"knows" a b in
  Alcotest.(check int) "two nodes" 2 (Store.num_nodes s);
  Alcotest.(check int) "one rel" 1 (Store.num_rels s);
  Alcotest.(check bool) "has_rel" true (Store.has_rel s ~rtype:"knows" a b);
  Alcotest.(check bool) "no reverse rel" false (Store.has_rel s ~rtype:"knows" b a);
  Alcotest.(check int) "rels of type" 1 (Store.count_rels_of_type s "knows");
  Alcotest.(check bool) "delete" true (Store.delete_rel s r);
  Alcotest.(check int) "rel gone" 0 (Store.num_rels s);
  Alcotest.(check int) "type count decremented" 0 (Store.count_rels_of_type s "knows")

let test_store_index () =
  let s = Store.create () in
  Store.create_index s ~label:"V" ~property:"name";
  let a = Store.create_node s ~labels:[ "V" ] ~props:[ ("name", Value.String "a") ] () in
  let hits = Store.index_lookup s ~label:"V" ~property:"name" (Value.String "a") in
  Alcotest.(check (list int)) "index hit" [ a ] hits;
  (* Index maintained on set_prop. *)
  Store.set_prop s a "name" (Value.String "z");
  Alcotest.(check (list int)) "old key empty" []
    (Store.index_lookup s ~label:"V" ~property:"name" (Value.String "a"));
  Alcotest.(check (list int)) "new key hit" [ a ]
    (Store.index_lookup s ~label:"V" ~property:"name" (Value.String "z"));
  (* Backfill: index created after nodes exist. *)
  let s2 = Store.create () in
  let b = Store.create_node s2 ~labels:[ "W" ] ~props:[ ("k", Value.Int 7) ] () in
  Store.create_index s2 ~label:"W" ~property:"k";
  Alcotest.(check (list int)) "backfilled" [ b ]
    (Store.index_lookup s2 ~label:"W" ~property:"k" (Value.Int 7))

let test_cypher_parse () =
  let q =
    Cypher.parse
      "MATCH (f:V)-[:hasMod]->(p:V), (p)-[:posted]->(x:V {name: 'pst1'}) WHERE f.age = 42 RETURN f, p, x.name"
  in
  Alcotest.(check int) "two chains" 2 (List.length q.Cypher.chains);
  Alcotest.(check int) "one condition" 1 (List.length q.Cypher.conditions);
  Alcotest.(check int) "three returns" 3 (List.length q.Cypher.returns);
  (* Left arrows. *)
  let q = Cypher.parse "MATCH (a:V)<-[:likes]-(b:V) RETURN a, b" in
  (match q.Cypher.chains with
  | [ (_, [ (rel, _) ]) ] ->
    Alcotest.(check bool) "in direction" true (rel.Cypher.direction = Cypher.In)
  | _ -> Alcotest.fail "unexpected chain shape");
  (* Errors. *)
  Alcotest.check_raises "missing RETURN"
    (Cypher.Parse_error "expected RETURN")
    (fun () -> ignore (Cypher.parse "MATCH (a:V)"));
  (match Cypher.parse "MATCH (a {name: 'x'}) RETURN a" with
  | { Cypher.chains = [ ({ nprops = [ ("name", Value.String "x") ]; _ }, []) ]; _ } -> ()
  | _ -> Alcotest.fail "prop map parse")

let test_query_end_to_end () =
  let db = Db.create () in
  List.iter
    (fun (l, s, d) -> ignore (Db.add_stream_edge db (Tric_graph.Edge.of_strings l s d)))
    [
      ("hasMod", "f1", "p1");
      ("hasMod", "f2", "p1");
      ("posted", "p1", "pst1");
      ("posted", "p2", "pst1");
    ];
  let rows =
    Db.query db "MATCH (f:V)-[:hasMod]->(p:V)-[:posted]->(x:V {name: 'pst1'}) RETURN f.name"
  in
  let names =
    List.map
      (function
        | [ Executor.Prop_value (Value.String s) ] -> s
        | _ -> Alcotest.fail "unexpected row shape")
      rows
    |> List.sort compare
  in
  Alcotest.(check (list string)) "moderators found" [ "f1"; "f2" ] names;
  (* Plan cache. *)
  let misses0 = Db.plan_cache_misses db in
  ignore (Db.query db "MATCH (f:V)-[:hasMod]->(p:V)-[:posted]->(x:V {name: 'pst1'}) RETURN f.name");
  Alcotest.(check int) "plan cached" misses0 (Db.plan_cache_misses db)

let test_planner_seed_choice () =
  let db = Db.create () in
  ignore (Db.add_stream_edge db (Tric_graph.Edge.of_strings "a" "x" "y"));
  let plan = Db.plan_of db "MATCH (n:V {name: 'x'})-[:a]->(m:V) RETURN n, m" in
  (match plan.Plan.steps with
  | Plan.Seed_index { label = "V"; key = "name"; _ } :: _ -> ()
  | _ -> Alcotest.failf "expected index seed, got %a" Plan.pp plan);
  (* Unconstrained pattern seeds on the relationship scan or a node seed,
     but must still produce correct results (checked elsewhere). *)
  let plan2 = Db.plan_of db "MATCH (n:V)-[:a]->(m:V) RETURN n, m" in
  Alcotest.(check bool) "has steps" true (plan2.Plan.steps <> [])

let test_txn_batching () =
  let db = Db.create ~max_writes_per_txn:10 () in
  let txn = Db.txn_begin db in
  let refs =
    List.init 20 (fun i ->
        Db.txn_create_node txn ~labels:[ "V" ]
          ~props:[ ("name", Value.String (Printf.sprintf "n%d" i)) ]
          ())
  in
  (match refs with
  | first :: second :: _ -> Db.txn_create_rel txn ~rtype:"t" first second
  | _ -> assert false);
  let created = Db.txn_commit txn in
  Alcotest.(check int) "20 nodes created" 20 (List.length created);
  Alcotest.(check int) "21 writes in 3 chunks of <=10" 3 (Db.commits db);
  Alcotest.(check int) "nodes in store" 20 (Store.num_nodes (Db.store db));
  Alcotest.(check int) "rel in store" 1 (Store.num_rels (Db.store db));
  Alcotest.check_raises "double commit"
    (Invalid_argument "Db.txn_commit: already committed")
    (fun () -> ignore (Db.txn_commit txn))

let test_varlength_paths () =
  let db = Db.create () in
  (* Chain n0 -> n1 -> n2 -> n3 plus a shortcut n0 -> n2. *)
  List.iter
    (fun (s, d) -> ignore (Db.add_stream_edge db (Tric_graph.Edge.of_strings "knows" s d)))
    [ ("n0", "n1"); ("n1", "n2"); ("n2", "n3"); ("n0", "n2") ];
  let names rows =
    List.map
      (function
        | [ Executor.Prop_value (Value.String s) ] -> s
        | _ -> Alcotest.fail "unexpected row shape")
      rows
    |> List.sort compare
  in
  let q range =
    names
      (Db.query db
         (Printf.sprintf
            "MATCH (a:V {name: 'n0'})-[:knows%s]->(b:V) RETURN b.name" range))
  in
  Alcotest.(check (list string)) "exactly 2 hops" [ "n2"; "n3" ] (q "*2..2");
  Alcotest.(check (list string)) "1..2 hops" [ "n1"; "n2"; "n3" ] (q "*1..2");
  Alcotest.(check (list string)) "unbounded" [ "n1"; "n2"; "n3" ] (q "*");
  Alcotest.(check (list string)) "0..1 includes self" [ "n0"; "n1"; "n2" ] (q "*0..1");
  (* Single-hop shorthand *1 equals a plain relationship. *)
  Alcotest.(check (list string)) "*1 = plain" (q "") (q "*1");
  (* Reverse direction. *)
  let back =
    names
      (Db.query db "MATCH (a:V {name: 'n3'})<-[:knows*1..3]-(b:V) RETURN b.name")
  in
  Alcotest.(check (list string)) "reverse range" [ "n0"; "n1"; "n2" ] back;
  (* Parse errors. *)
  Alcotest.check_raises "bad range" (Cypher.Parse_error "invalid hop range *3..1")
    (fun () -> ignore (Cypher.parse "MATCH (a)-[:x*3..1]->(b) RETURN a"))

let test_where_conditions () =
  let db = Db.create () in
  let s = Db.store db in
  let mk name age =
    Store.create_node s ~labels:[ "P" ]
      ~props:[ ("name", Value.String name); ("age", Value.Int age) ]
      ()
  in
  let alice = mk "alice" 42 and bob = mk "bob" 17 and carol = mk "carol" 42 in
  ignore (Store.create_rel s ~rtype:"knows" alice bob);
  ignore (Store.create_rel s ~rtype:"knows" alice carol);
  let names q =
    Db.query db q
    |> List.map (function
         | [ Executor.Prop_value (Value.String n) ] -> n
         | _ -> Alcotest.fail "row shape")
    |> List.sort compare
  in
  Alcotest.(check (list string)) "prop = literal" [ "carol" ]
    (names "MATCH (a:P)-[:knows]->(b:P) WHERE b.age = 42 RETURN b.name");
  Alcotest.(check (list string)) "prop <> literal" [ "bob" ]
    (names "MATCH (a:P)-[:knows]->(b:P) WHERE b.age <> 42 RETURN b.name");
  Alcotest.(check (list string)) "prop = prop" [ "carol" ]
    (names "MATCH (a:P)-[:knows]->(b:P) WHERE a.age = b.age RETURN b.name");
  Alcotest.(check (list string)) "conjunction" []
    (names
       "MATCH (a:P)-[:knows]->(b:P) WHERE a.age = b.age AND b.age <> 42 RETURN b.name");
  (* Missing property never satisfies a condition. *)
  let dave = Store.create_node s ~labels:[ "P" ] ~props:[ ("name", Value.String "dave") ] () in
  ignore (Store.create_rel s ~rtype:"knows" alice dave);
  Alcotest.(check (list string)) "missing prop filtered" [ "carol" ]
    (names "MATCH (a:P)-[:knows]->(b:P) WHERE b.age = 42 RETURN b.name")

let test_value_semantics () =
  Alcotest.(check bool) "int eq" true (Value.equal (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "cross-type neq" false (Value.equal (Value.Int 3) (Value.Float 3.0));
  Alcotest.(check bool) "null eq null" true (Value.equal Value.Null Value.Null);
  Alcotest.(check string) "to_string" "\"x\"" (Value.to_string (Value.String "x"));
  Alcotest.(check string) "bool" "true" (Value.to_string (Value.Bool true))

let test_continuous_basics () =
  let c = Continuous.create () in
  let e = Engine.Matcher.of_graphdb c in
  e.Engine.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
  let r = e.Engine.Matcher.handle_update (Helpers.update "v1 -a-> v2") in
  Alcotest.(check int) "nothing yet" 0 (Engine.Report.total_matches r);
  let r = e.Engine.Matcher.handle_update (Helpers.update "v2 -b-> v3") in
  Alcotest.(check int) "chain completes" 1 (Engine.Report.total_matches r);
  Alcotest.(check string) "cypher text"
    "MATCH (v0:V)-[:a]->(v1:V), (v1)-[:b]->(v2:V) RETURN v0, v1, v2"
    (Continuous.cypher_of c 1)

let differential_case seed () =
  let st = Helpers.rng seed in
  let queries =
    List.init 6 (fun i ->
        Helpers.random_pattern st ~id:(i + 1) ~elabels:Helpers.elabels
          ~vconsts:Helpers.vconsts ~size:(1 + Random.State.int st 3))
  in
  let stream =
    List.init 80 (fun _ ->
        Tric_graph.Update.add
          (Helpers.random_edge st ~elabels:Helpers.elabels ~vconsts:Helpers.vconsts))
  in
  let engine = Engine.Matcher.of_graphdb (Continuous.create ()) in
  Helpers.differential ~engine ~queries ~stream

let suite =
  [
    Alcotest.test_case "store basics" `Quick test_store_basics;
    Alcotest.test_case "store property index" `Quick test_store_index;
    Alcotest.test_case "cypher parsing" `Quick test_cypher_parse;
    Alcotest.test_case "query end-to-end" `Quick test_query_end_to_end;
    Alcotest.test_case "planner seed choice" `Quick test_planner_seed_choice;
    Alcotest.test_case "transaction batching" `Quick test_txn_batching;
    Alcotest.test_case "variable-length paths" `Quick test_varlength_paths;
    Alcotest.test_case "WHERE conditions" `Quick test_where_conditions;
    Alcotest.test_case "value semantics" `Quick test_value_semantics;
    Alcotest.test_case "continuous wrapper basics" `Quick test_continuous_basics;
    Alcotest.test_case "continuous differential vs oracle" `Quick (differential_case 42);
    Alcotest.test_case "continuous differential vs oracle II" `Quick (differential_case 99);
  ]
