(* Shared helpers for the test suites. *)

open Tric_graph
open Tric_query

let pattern ?(name = "") ~id s = Parse.pattern ~name ~id s
let edge s = Parse.edge s
let update s = Parse.update s
let updates l = List.map update l

(* Deterministic PRNG so failures reproduce. *)
let rng seed = Random.State.make [| seed |]

(* A random small pattern over the given label vocabularies.  Shapes follow
   the paper's query classes: chain, star (out or in), cycle. *)
let random_pattern st ~id ~elabels ~vconsts ~size =
  let b = Pattern.Builder.create ~name:"rand" ~id () in
  let pick a = a.(Random.State.int st (Array.length a)) in
  let fresh_var =
    let c = ref 0 in
    fun () ->
      incr c;
      Term.var (Printf.sprintf "x%d" !c)
  in
  let term () =
    if Random.State.int st 100 < 30 then Term.const (pick vconsts) else fresh_var ()
  in
  let elabel () = Label.intern (pick elabels) in
  (match Random.State.int st 3 with
  | 0 ->
    (* chain *)
    let prev = ref (Pattern.Builder.vertex b (term ())) in
    for _ = 1 to size do
      let v = Pattern.Builder.vertex b (term ()) in
      Pattern.Builder.edge b ~label:(elabel ()) !prev v;
      prev := v
    done
  | 1 ->
    (* star: half out, half in *)
    let center = Pattern.Builder.vertex b (fresh_var ()) in
    for i = 1 to size do
      let v = Pattern.Builder.vertex b (term ()) in
      if i mod 2 = 0 then Pattern.Builder.edge b ~label:(elabel ()) center v
      else Pattern.Builder.edge b ~label:(elabel ()) v center
    done
  | _ ->
    (* cycle *)
    let first = Pattern.Builder.vertex b (fresh_var ()) in
    let prev = ref first in
    for _ = 1 to max 1 (size - 1) do
      let v = Pattern.Builder.vertex b (fresh_var ()) in
      Pattern.Builder.edge b ~label:(elabel ()) !prev v;
      prev := v
    done;
    Pattern.Builder.edge b ~label:(elabel ()) !prev first);
  Pattern.Builder.build b

let random_edge st ~elabels ~vconsts =
  let pick a = a.(Random.State.int st (Array.length a)) in
  Edge.of_strings (pick elabels) (pick vconsts) (pick vconsts)

(* Label vocabulary used by randomized tests. *)
let elabels = [| "a"; "b"; "c" |]
let vconsts = [| "v1"; "v2"; "v3"; "v4"; "v5"; "v6" |]

let check_reports_agree ~msg expected actual =
  if not (Tric_engine.Report.equal expected actual) then
    Alcotest.failf "%s:@.expected:@.%a@.actual:@.%a" msg Tric_engine.Report.pp
      (Tric_engine.Report.normalise expected)
      Tric_engine.Report.pp
      (Tric_engine.Report.normalise actual)

(* Run the same queries and stream through the oracle and an engine under
   test, comparing reports update by update. *)
let differential ~engine ~queries ~stream =
  let oracle = Tric_engine.Matcher.of_naive (Tric_engine.Naive.create ()) in
  List.iter
    (fun q ->
      oracle.Tric_engine.Matcher.add_query q;
      engine.Tric_engine.Matcher.add_query q)
    queries;
  List.iteri
    (fun i u ->
      let expected = oracle.Tric_engine.Matcher.handle_update u in
      let actual = engine.Tric_engine.Matcher.handle_update u in
      check_reports_agree
        ~msg:
          (Format.asprintf "update #%d %a (engine %s)" i Update.pp u
             engine.Tric_engine.Matcher.name)
        expected actual)
    stream
