(* Harness tests: configuration, table formatting, the experiment
   registry, and one end-to-end experiment run at tiny scale. *)

module H = Tric_harness
module E = Tric_engine

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_config () =
  let c = H.Config.default in
  Alcotest.(check int) "scaled" 4_000 (H.Config.scaled c 100_000);
  Alcotest.(check int) "scaled floors at 1" 1 (H.Config.scaled c 10);
  (* Environment override parsing. *)
  Unix.putenv "TRIC_SCALE" "7";
  Unix.putenv "TRIC_BUDGET" "2.5";
  Unix.putenv "TRIC_SEED" "99";
  let c = H.Config.from_env () in
  Alcotest.(check int) "env scale" 7 c.H.Config.scale;
  Alcotest.(check (float 1e-9)) "env budget" 2.5 c.H.Config.budget_s;
  Alcotest.(check int) "env seed" 99 c.H.Config.seed;
  (* Invalid values fall back to defaults. *)
  Unix.putenv "TRIC_SCALE" "banana";
  Unix.putenv "TRIC_BUDGET" "-3";
  let c = H.Config.from_env () in
  Alcotest.(check int) "bad scale ignored" H.Config.default.H.Config.scale c.H.Config.scale;
  Alcotest.(check (float 1e-9)) "bad budget ignored" H.Config.default.H.Config.budget_s
    c.H.Config.budget_s;
  Unix.putenv "TRIC_SCALE" "";
  Unix.putenv "TRIC_BUDGET" "";
  Unix.putenv "TRIC_SEED" ""

let test_tablefmt () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  H.Tablefmt.print fmt ~header:[ "engine"; "ms" ]
    ~rows:[ [ "TRIC+"; "0.04" ]; [ "a-very-long-engine-name"; "12" ] ];
  Format.pp_print_flush fmt ();
  let lines = String.split_on_char '\n' (Buffer.contents buf) in
  (* header + rule + 2 rows (+ trailing empty) *)
  Alcotest.(check bool) "at least 4 lines" true (List.length lines >= 4);
  (* Columns aligned: every non-empty line has equal length. *)
  let widths =
    List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines
  in
  Alcotest.(check int) "aligned" 1 (List.length (List.sort_uniq compare widths));
  Alcotest.(check string) "ms small" "0.0042" (H.Tablefmt.ms 0.0042);
  Alcotest.(check string) "ms mid" "1.50" (H.Tablefmt.ms 1.5);
  Alcotest.(check string) "ms big" "215" (H.Tablefmt.ms 215.2);
  Alcotest.(check string) "mb" "8.0MB" (H.Tablefmt.mb_of_words (1_048_576))

let test_registry () =
  (* Every paper figure id is present exactly once. *)
  let ids = List.map (fun (e : H.Figures.t) -> e.H.Figures.id) H.Figures.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun id ->
      match H.Figures.find id with
      | Some e -> Alcotest.(check string) "self id" id e.H.Figures.id
      | None -> Alcotest.failf "missing experiment %s" id)
    [
      "fig12a"; "fig12b"; "fig12c"; "fig12d"; "fig12e"; "fig12f"; "fig13a"; "fig13b";
      "fig13c"; "fig14a"; "fig14b"; "fig14c";
    ];
  Alcotest.(check bool) "unknown id" true (H.Figures.find "fig99z" = None);
  (* Engines named by experiments all resolve in the registry. *)
  List.iter
    (fun (e : H.Figures.t) ->
      List.iter
        (fun name -> ignore (E.Engines.by_name name : E.Matcher.t))
        e.H.Figures.engines)
    H.Figures.all

let test_run_one_tiny () =
  (* Run the cheapest real experiment end-to-end at an extreme scale to
     exercise the full harness path. *)
  let cfg = { H.Config.scale = 2000; budget_s = 5.0; seed = 3 } in
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  (match H.Figures.find "ablation-sharing" with
  | Some e -> H.Figures.run_one cfg fmt e
  | None -> Alcotest.fail "experiment missing");
  Format.pp_print_flush fmt ();
  let out = Buffer.contents buf in
  Alcotest.(check bool) "mentions TRIC" true (contains out "TRIC");
  Alcotest.(check bool) "mentions ISO" true (contains out "ISO")

let suite =
  [
    Alcotest.test_case "config" `Quick test_config;
    Alcotest.test_case "table formatting" `Quick test_tablefmt;
    Alcotest.test_case "experiment registry" `Quick test_registry;
    Alcotest.test_case "run one experiment end-to-end" `Quick test_run_one_tiny;
  ]
