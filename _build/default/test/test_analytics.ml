(* Continuous analytics tests (§7 query classes): clustering coefficient,
   connected components, bounded-distance watches, betweenness. *)

open Tric_graph
open Tric_analytics

let upd = Helpers.update
let add m texts = List.iter (fun s -> Metrics.handle_update m (upd s)) texts

let test_metrics_triangles () =
  let m = Metrics.create () in
  add m [ "a -x-> b"; "b -x-> c" ];
  Alcotest.(check int) "no triangle yet" 0 (Metrics.triangles m);
  add m [ "c -x-> a" ];
  Alcotest.(check int) "one triangle" 1 (Metrics.triangles m);
  Alcotest.(check int) "per-vertex" 1 (Metrics.triangles_of m (Label.intern "a"));
  (* Anti-parallel and parallel edges do not create new simple-view
     adjacency: still one triangle. *)
  add m [ "a -x-> c"; "a -y-> b" ];
  Alcotest.(check int) "multigraph collapses" 1 (Metrics.triangles m);
  Alcotest.(check int) "pairs" 3 (Metrics.num_adjacent_pairs m);
  (* A second triangle through a new vertex. *)
  add m [ "a -x-> d"; "d -x-> b" ];
  Alcotest.(check int) "two triangles" 2 (Metrics.triangles m);
  (* Deleting one of the parallel a-b edges keeps the adjacency; deleting
     both breaks both triangles through (a,b). *)
  Metrics.handle_update m (upd "- a -y-> b");
  Alcotest.(check int) "still adjacent" 2 (Metrics.triangles m);
  Metrics.handle_update m (upd "- a -x-> b");
  (* Both a-b edges are gone now, so triangles abc and abd both
     collapse. *)
  Alcotest.(check int) "pair loss kills both triangles" 0 (Metrics.triangles m);
  Alcotest.(check int) "degree a" 2 (Metrics.degree m (Label.intern "a"))

let test_metrics_clustering () =
  let m = Metrics.create () in
  (* K3: all coefficients 1. *)
  add m [ "a -x-> b"; "b -x-> c"; "c -x-> a" ];
  Alcotest.(check (float 1e-9)) "local" 1.0 (Metrics.local_clustering m (Label.intern "a"));
  Alcotest.(check (float 1e-9)) "global" 1.0 (Metrics.global_clustering m);
  Alcotest.(check (float 1e-9)) "average" 1.0 (Metrics.average_clustering m);
  (* Attach a pendant vertex: its coefficient is 0, a's degree grows. *)
  add m [ "a -x-> p" ];
  Alcotest.(check (float 1e-9)) "pendant" 0.0 (Metrics.local_clustering m (Label.intern "p"));
  let a = Metrics.local_clustering m (Label.intern "a") in
  Alcotest.(check (float 1e-9)) "a drops to 1/3" (1.0 /. 3.0) a;
  (* Self-loops are ignored. *)
  let before = Metrics.triangles m in
  add m [ "a -x-> a" ];
  Alcotest.(check int) "self-loop ignored" before (Metrics.triangles m)

let test_metrics_duplicate_idempotent () =
  let m = Metrics.create () in
  add m [ "a -x-> b"; "a -x-> b"; "b -x-> c"; "c -x-> a" ];
  Alcotest.(check int) "duplicate add is no-op" 1 (Metrics.triangles m);
  Metrics.handle_update m (upd "- a -x-> b");
  Alcotest.(check int) "single remove kills pair" 0 (Metrics.triangles m);
  Metrics.handle_update m (upd "- a -x-> b");
  Alcotest.(check int) "double remove is no-op" 0 (Metrics.triangles m)

let test_components () =
  let c = Components.create () in
  let h s = Components.handle_update c (upd s) in
  h "a -x-> b";
  h "c -x-> d";
  Alcotest.(check int) "two components" 2 (Components.num_components c);
  Alcotest.(check bool) "separate" false
    (Components.same_component c (Label.intern "a") (Label.intern "c"));
  h "b -x-> c";
  Alcotest.(check int) "merged" 1 (Components.num_components c);
  Alcotest.(check int) "size 4" 4 (Components.component_size c (Label.intern "d"));
  (* Deletion splits again (rebuild path). *)
  h "- b -x-> c";
  Alcotest.(check int) "split back" 2 (Components.num_components c);
  Alcotest.(check bool) "direction ignored" true
    (Components.same_component c (Label.intern "b") (Label.intern "a"));
  (* Unknown vertices are singletons. *)
  Alcotest.(check int) "unknown singleton" 1 (Components.component_size c (Label.intern "zz"))

let test_reachability () =
  let r = Reachability.create () in
  let w =
    Reachability.watch r ~src:(Label.intern "s") ~dst:(Label.intern "t") ~k:2
  in
  Alcotest.(check bool) "initially unreached" false (Reachability.is_reached r w);
  let events = Reachability.handle_update r (upd "s -x-> m") in
  Alcotest.(check int) "no event" 0 (List.length events);
  let events = Reachability.handle_update r (upd "m -x-> t") in
  (match events with
  | [ Reachability.Reached w' ] ->
    Alcotest.(check bool) "right watch" true (Reachability.watch_k w' = 2)
  | _ -> Alcotest.fail "expected Reached");
  Alcotest.(check bool) "now reached" true (Reachability.is_reached r w);
  (* Breaking the only path fires Lost. *)
  let events = Reachability.handle_update r (upd "- s -x-> m") in
  (match events with
  | [ Reachability.Lost _ ] -> ()
  | _ -> Alcotest.fail "expected Lost");
  (* Distance bound matters: a 3-hop path does not satisfy k=2. *)
  List.iter
    (fun s -> ignore (Reachability.handle_update r (upd s)))
    [ "s -x-> a"; "a -x-> b" ];
  let events = Reachability.handle_update r (upd "b -x-> t") in
  Alcotest.(check int) "3 hops > k" 0 (List.length events);
  Alcotest.(check (option int)) "but distance 3 exists" (Some 3)
    (Reachability.distance r ~src:(Label.intern "s") ~dst:(Label.intern "t") ~max_k:5);
  Alcotest.(check bool) "unwatch" true (Reachability.unwatch r w)

let test_betweenness () =
  (* Path a -> b -> c: b lies on the single shortest path a..c. *)
  let g = Graph.create () in
  List.iter
    (fun (l, s, d) -> ignore (Graph.add_edge g (Edge.of_strings l s d)))
    [ ("x", "a", "b"); ("x", "b", "c") ];
  let scores = Centrality.betweenness g in
  let score v = List.assoc (Label.intern v) scores in
  Alcotest.(check (float 1e-9)) "b central" 1.0 (score "b");
  Alcotest.(check (float 1e-9)) "a peripheral" 0.0 (score "a");
  (* Diamond a->b->d, a->c->d: b and c each carry half of a..d. *)
  let g2 = Graph.create () in
  List.iter
    (fun (s, d) -> ignore (Graph.add_edge g2 (Edge.of_strings "x" s d)))
    [ ("a", "b"); ("a", "c"); ("b", "d"); ("c", "d") ];
  let scores2 = Centrality.betweenness g2 in
  let score2 v = List.assoc (Label.intern v) scores2 in
  Alcotest.(check (float 1e-9)) "split betweenness" 0.5 (score2 "b");
  Alcotest.(check (float 1e-9)) "split betweenness c" 0.5 (score2 "c");
  Alcotest.(check int) "top_k" 2 (List.length (Centrality.top_k g2 2))

let test_centrality_watch () =
  let w = Centrality.Watch.create ~period:3 ~k:1 () in
  let h s = Centrality.Watch.handle_update w (upd s) in
  Alcotest.(check bool) "no event yet" true (h "a -x-> b" = None);
  Alcotest.(check bool) "still none" true (h "b -x-> c" = None);
  (match h "c -x-> d" with
  | Some ev ->
    Alcotest.(check bool) "someone entered top-1" true (ev.Centrality.Watch.entered <> [])
  | None -> Alcotest.fail "period hit must recompute");
  Alcotest.(check int) "top cached" 1 (List.length (Centrality.Watch.current_top w))

let suite =
  [
    Alcotest.test_case "metrics triangles" `Quick test_metrics_triangles;
    Alcotest.test_case "metrics clustering" `Quick test_metrics_clustering;
    Alcotest.test_case "metrics idempotence" `Quick test_metrics_duplicate_idempotent;
    Alcotest.test_case "components" `Quick test_components;
    Alcotest.test_case "reachability watches" `Quick test_reachability;
    Alcotest.test_case "betweenness (Brandes)" `Quick test_betweenness;
    Alcotest.test_case "centrality watch" `Quick test_centrality_watch;
  ]
