test/test_graphdb.ml: Alcotest Continuous Cypher Db Executor Helpers List Plan Printf Random Store Tric_engine Tric_graph Tric_graphdb Value
