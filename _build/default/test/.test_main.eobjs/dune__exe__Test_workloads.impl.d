test/test_workloads.ml: Alcotest Array Biogrid Dataset Edge Graph Hashtbl Label List Rng Snb Stream Taxi Tric_core Tric_engine Tric_graph Tric_query Tric_workloads Update
