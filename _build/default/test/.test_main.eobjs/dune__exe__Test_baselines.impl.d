test/test_baselines.ml: Alcotest Helpers Invidx List Random Tric_baselines Tric_engine Tric_graph Tric_query
