test/test_tric.ml: Alcotest Ekey Format Helpers List Path Random Tric Tric_core Tric_engine Tric_graph Tric_query Trie
