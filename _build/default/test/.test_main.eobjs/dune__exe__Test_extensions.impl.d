test/test_extensions.ml: Alcotest Array Filename Format Fun Helpers Label List Option Random Stream String Sys Tric_core Tric_engine Tric_graph Tric_graphdb Tric_query Tric_rel Tric_workloads Update
