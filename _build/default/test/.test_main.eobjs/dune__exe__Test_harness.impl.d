test/test_harness.ml: Alcotest Buffer Format List String Tric_engine Tric_harness Unix
