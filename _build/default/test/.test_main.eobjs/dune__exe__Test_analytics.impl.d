test/test_analytics.ml: Alcotest Centrality Components Edge Graph Helpers Label List Metrics Reachability Tric_analytics Tric_graph
