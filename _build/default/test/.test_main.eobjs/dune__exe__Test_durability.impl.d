test/test_durability.ml: Alcotest Edge Filename Fun Helpers Label List Stream Sys Tric_engine Tric_graph Update
