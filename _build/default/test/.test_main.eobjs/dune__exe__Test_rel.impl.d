test/test_rel.ml: Alcotest Array Embedding Embjoin Label List Option Relation Tric_graph Tric_rel Tuple
