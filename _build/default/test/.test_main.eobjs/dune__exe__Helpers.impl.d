test/helpers.ml: Alcotest Array Edge Format Label List Parse Pattern Printf Random Term Tric_engine Tric_graph Tric_query Update
