test/test_engine.ml: Alcotest Edge Helpers Label List Option Random Stream Tric_core Tric_engine Tric_graph Tric_query Tric_rel Unix Update
