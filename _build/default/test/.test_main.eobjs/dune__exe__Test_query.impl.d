test/test_query.ml: Alcotest Array Cover Edge Ekey Label List Parse Path Pattern Term Tric_graph Tric_query Update
