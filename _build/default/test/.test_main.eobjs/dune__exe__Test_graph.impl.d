test/test_graph.ml: Alcotest Edge Graph Label List Stream Tric_graph Update
