(* Journal / recovery and stream-combinator tests. *)

open Tric_graph
module E = Tric_engine

let with_temp f =
  let path = Filename.temp_file "tric_journal" ".log" in
  Sys.remove path;
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let test_journal_roundtrip () =
  with_temp (fun path ->
      (* Session 1: register a query mid-stream, deliver one match. *)
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ()) in
      Alcotest.(check int) "fresh journal" 0 (E.Journal.recovered j);
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v"));
      E.Journal.add_query j (Helpers.pattern ~id:2 "?x -b-> ?y");
      let r = E.Journal.handle_update j (Helpers.update "v -b-> w") in
      Alcotest.(check (list int)) "both match live" [ 1; 2 ] (E.Report.satisfied_ids r);
      Alcotest.(check int) "entries" 4 (E.Journal.entries j);
      E.Journal.close j;
      (* Session 2: recover; no re-notifications, full state present. *)
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ~cache:true ()) in
      Alcotest.(check int) "recovered records" 4 (E.Journal.recovered j2);
      let eng = E.Journal.engine j2 in
      Alcotest.(check int) "queries recovered" 2 (eng.E.Matcher.num_queries ());
      Alcotest.(check int) "query 1 state recovered" 1
        (List.length (eng.E.Matcher.current_matches 1));
      (* New updates continue the stream seamlessly. *)
      let r = E.Journal.handle_update j2 (Helpers.update "u2 -a-> v") in
      Alcotest.(check (list int)) "post-recovery match" [ 1 ] (E.Report.satisfied_ids r);
      E.Journal.close j2)

let test_journal_replay_suppresses_duplicates () =
  with_temp (fun path ->
      let j = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      E.Journal.add_query j (Helpers.pattern ~id:1 "?x -a-> ?y");
      ignore (E.Journal.handle_update j (Helpers.update "u -a-> v"));
      E.Journal.close j;
      let j2 = E.Journal.open_ ~path (fun () -> E.Engines.tric ()) in
      (* Replaying the same edge is a duplicate: no new match. *)
      let r = E.Journal.handle_update j2 (Helpers.update "u -a-> v") in
      Alcotest.(check int) "duplicate after recovery silent" 0 (E.Report.total_matches r);
      E.Journal.close j2)

let test_journal_corrupt () =
  with_temp (fun path ->
      let oc = open_out path in
      output_string oc "garbage line without tabs\n";
      close_out oc;
      Alcotest.check_raises "corrupt journal" (Failure "Journal: malformed line 1")
        (fun () -> ignore (E.Journal.open_ ~path (fun () -> E.Engines.tric ()))))

let test_stream_combinators () =
  let e l s d = Update.add (Edge.of_strings l s d) in
  let s1 = Stream.of_updates [ e "a" "1" "2"; e "a" "3" "4" ] in
  let s2 = Stream.of_updates [ e "b" "5" "6" ] in
  let s3 = Stream.of_updates [ e "c" "7" "8"; e "c" "9" "10"; e "c" "11" "12" ] in
  let merged = Stream.interleave [ s1; s2; s3 ] in
  Alcotest.(check int) "all updates" 6 (Stream.length merged);
  (* Round-robin fairness: first round takes one from each stream. *)
  let labels =
    List.map (fun u -> Label.to_string (Update.edge u).Edge.label) (Stream.to_list merged)
  in
  Alcotest.(check (list string)) "fair order" [ "a"; "b"; "c"; "a"; "c"; "c" ] labels;
  (* Per-stream order is preserved. *)
  let c_sources =
    Stream.to_list merged
    |> List.filter_map (fun u ->
           let edge = Update.edge u in
           if Label.to_string edge.Edge.label = "c" then Some (Label.to_string edge.Edge.src)
           else None)
  in
  Alcotest.(check (list string)) "internal order kept" [ "7"; "9"; "11" ] c_sources;
  let only_a =
    Stream.filter (fun u -> Label.to_string (Update.edge u).Edge.label = "a") merged
  in
  Alcotest.(check int) "filter" 2 (Stream.length only_a);
  let flipped =
    Stream.map
      (fun u ->
        let edge = Update.edge u in
        Update.add (Edge.make ~label:edge.Edge.label ~src:edge.Edge.dst ~dst:edge.Edge.src))
      only_a
  in
  Alcotest.(check string) "map" "2"
    (Label.to_string (Update.edge (Stream.get flipped 0)).Edge.src)

let suite =
  [
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "journal duplicate suppression" `Quick test_journal_replay_suppresses_duplicates;
    Alcotest.test_case "journal corruption detected" `Quick test_journal_corrupt;
    Alcotest.test_case "stream combinators" `Quick test_stream_combinators;
  ]
