(** Continuous bounded-distance (shortest-path) queries.

    The shortest-path query class of the paper's outlook (§7): a
    subscription [(src, dst, k)] asks to be notified when a directed path
    of at most [k] edges from [src] to [dst] appears in the evolving
    graph, and again if a deletion later breaks it ([`Lost]) and a new
    path restores it. *)

open Tric_graph

type t
type watch

type event =
  | Reached of watch  (** dist(src→dst) became ≤ k *)
  | Lost of watch  (** previously reached; a deletion broke every path ≤ k *)

val create : unit -> t

val watch : t -> src:Label.t -> dst:Label.t -> k:int -> watch
(** @raise Invalid_argument if [k < 0]. *)

val unwatch : t -> watch -> bool
val watch_src : watch -> Label.t
val watch_dst : watch -> Label.t
val watch_k : watch -> int

val handle_update : t -> Update.t -> event list
(** Feed one update; fires state transitions of affected watches. *)

val is_reached : t -> watch -> bool
val distance : t -> src:Label.t -> dst:Label.t -> max_k:int -> int option
(** Bounded BFS over the current graph: [Some d] with [d <= max_k]. *)

val num_watches : t -> int
