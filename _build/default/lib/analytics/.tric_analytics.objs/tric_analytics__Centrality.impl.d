lib/analytics/centrality.ml: Edge Graph Label List Option Queue Tric_graph Update
