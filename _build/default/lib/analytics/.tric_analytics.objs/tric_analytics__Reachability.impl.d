lib/analytics/reachability.ml: Edge Graph Hashtbl Label List Tric_graph Update
