lib/analytics/centrality.mli: Graph Label Tric_graph Update
