lib/analytics/components.mli: Label Tric_graph Update
