lib/analytics/components.ml: Edge Label List Tric_graph Update
