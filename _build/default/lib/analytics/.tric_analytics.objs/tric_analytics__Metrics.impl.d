lib/analytics/metrics.ml: Edge Hashtbl Label Option Tric_graph Update
