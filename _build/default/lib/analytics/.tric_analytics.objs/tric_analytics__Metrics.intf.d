lib/analytics/metrics.mli: Label Tric_graph Update
