lib/analytics/reachability.mli: Label Tric_graph Update
