(** Betweenness centrality — the third query class of the paper's outlook
    (§7).

    Exact unweighted betweenness via Brandes' algorithm over the current
    graph (directed, all edge labels), plus a continuous top-k watch that
    recomputes on a configurable update period and reports changes to the
    top-k set — full incremental betweenness is an open research problem;
    periodic recomputation is the standard production compromise. *)

open Tric_graph

val betweenness : Graph.t -> (Label.t * float) list
(** All vertices with their betweenness score, descending.  O(V·E). *)

val top_k : Graph.t -> int -> (Label.t * float) list

module Watch : sig
  type t

  type event = {
    entered : Label.t list;  (** vertices that joined the top-k *)
    left : Label.t list;
    at_update : int;
  }

  val create : ?period:int -> k:int -> unit -> t
  (** [period] updates between recomputations (default 100). *)

  val handle_update : t -> Update.t -> event option
  val current_top : t -> (Label.t * float) list
  val force_recompute : t -> event option
end
