(** Incremental connected components (weak/undirected connectivity).

    Edge additions are handled with a union-find in near-constant
    amortised time; a deletion marks the structure dirty and the next
    query rebuilds from the retained edge set (deletions cannot be undone
    in a plain union-find). *)

open Tric_graph

type t

val create : unit -> t
val handle_update : t -> Update.t -> unit

val same_component : t -> Label.t -> Label.t -> bool
(** Unknown vertices are in singleton components of their own. *)

val component_size : t -> Label.t -> int
val num_components : t -> int
(** Over vertices seen so far. *)

val num_vertices : t -> int
