(** Incremental structural metrics over a graph stream.

    The paper's outlook (§7) names query classes "that aim at clustering
    coefficient, shortest path, and betweenness centrality"; this module
    provides the clustering-coefficient class: triangle counts and local /
    global clustering coefficients, maintained incrementally under edge
    additions and deletions.

    Metrics are computed on the {e undirected simple} view of the
    multigraph: parallel and anti-parallel edges between two vertices
    count as one adjacency, self-loops are ignored (the standard
    convention for clustering coefficients). *)

open Tric_graph

type t

val create : unit -> t
val handle_update : t -> Update.t -> unit

val num_vertices : t -> int
val num_adjacent_pairs : t -> int
(** Distinct unordered adjacent vertex pairs (simple-view edges). *)

val degree : t -> Label.t -> int
(** Distinct-neighbour (simple-view) degree; 0 for unknown vertices. *)

val triangles : t -> int
(** Total triangles in the simple view. *)

val triangles_of : t -> Label.t -> int

val local_clustering : t -> Label.t -> float
(** [2·tri(v) / (deg(v)·(deg(v)-1))]; 0 when deg < 2. *)

val global_clustering : t -> float
(** Transitivity: [3·triangles / wedges]; 0 when there are no wedges. *)

val average_clustering : t -> float
(** Watts–Strogatz average of local coefficients over all vertices. *)
