lib/core/trie.mli: Ekey Format Relation Tric_query Tric_rel
