lib/core/trie.ml: Ekey Format List Relation Tric_query Tric_rel Tuple
