lib/core/tric.mli: Cover Embedding Format Path Pattern Tric_graph Tric_query Tric_rel Trie Update
