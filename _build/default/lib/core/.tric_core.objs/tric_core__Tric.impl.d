lib/core/tric.ml: Array Cover Edge Ekey Embedding Embjoin Format Fun Hashtbl Label List Path Pattern Printf Relation Tric_graph Tric_query Tric_rel Trie Tuple Update
