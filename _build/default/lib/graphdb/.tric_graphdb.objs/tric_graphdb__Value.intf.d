lib/graphdb/value.mli: Format
