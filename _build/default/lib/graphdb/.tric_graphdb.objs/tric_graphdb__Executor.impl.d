lib/graphdb/executor.ml: Array Cypher Hashtbl List Option Plan Store String Value
