lib/graphdb/plan.mli: Cypher Format Value
