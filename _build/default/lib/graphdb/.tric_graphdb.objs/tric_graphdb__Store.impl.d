lib/graphdb/store.ml: Array Fun Hashtbl List String Value
