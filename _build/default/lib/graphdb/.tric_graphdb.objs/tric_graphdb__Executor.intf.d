lib/graphdb/executor.mli: Plan Store Value
