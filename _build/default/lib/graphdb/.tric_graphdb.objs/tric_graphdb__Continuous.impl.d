lib/graphdb/continuous.ml: Array Buffer Cypher Db Edge Ekey Embedding Executor Graph Hashtbl Label List Pattern Plan Printf Store Term Tric_graph Tric_query Tric_rel Update Value
