lib/graphdb/continuous.mli: Db Embedding Graph Pattern Tric_graph Tric_query Tric_rel Update
