lib/graphdb/db.mli: Executor Plan Store Tric_graph Value
