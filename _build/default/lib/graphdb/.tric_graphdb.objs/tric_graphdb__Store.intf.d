lib/graphdb/store.mli: Value
