lib/graphdb/value.ml: Format Hashtbl Stdlib String
