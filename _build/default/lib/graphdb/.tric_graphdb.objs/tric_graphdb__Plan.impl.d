lib/graphdb/plan.ml: Array Cypher Format List String Value
