lib/graphdb/db.ml: Array Cypher Executor Hashtbl List Plan Planner Store Tric_graph Value
