lib/graphdb/cypher.ml: Format List Option Printf String Value
