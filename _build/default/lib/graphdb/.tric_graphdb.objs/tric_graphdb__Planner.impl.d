lib/graphdb/planner.ml: Array Cypher Format Hashtbl List Option Plan Printf Store String Value
