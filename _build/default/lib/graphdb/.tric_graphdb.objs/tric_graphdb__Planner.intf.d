lib/graphdb/planner.mli: Cypher Plan Store
