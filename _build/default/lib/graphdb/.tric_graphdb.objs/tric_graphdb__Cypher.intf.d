lib/graphdb/cypher.mli: Format Value
