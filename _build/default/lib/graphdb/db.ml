type t = {
  store : Store.t;
  max_writes_per_txn : int;
  plans : (string, Plan.t) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable commit_chunks : int;
}

let vertex_label = "V"

let create ?(max_writes_per_txn = 20_000) () =
  let store = Store.create () in
  Store.create_index store ~label:vertex_label ~property:"name";
  {
    store;
    max_writes_per_txn;
    plans = Hashtbl.create 256;
    hits = 0;
    misses = 0;
    commit_chunks = 0;
  }

let store t = t.store

let plan_of t text =
  match Hashtbl.find_opt t.plans text with
  | Some p ->
    t.hits <- t.hits + 1;
    p
  | None ->
    t.misses <- t.misses + 1;
    let p = Planner.plan t.store (Cypher.parse text) in
    Hashtbl.add t.plans text p;
    p

let query t text = Executor.run_projected t.store (plan_of t text)
let invalidate_plans t = Hashtbl.reset t.plans
let plan_cache_hits t = t.hits
let plan_cache_misses t = t.misses

(* -- Transactions ----------------------------------------------------------- *)

type noderef =
  | Existing of Store.node_id
  | Pending of int

type write =
  | W_create_node of int * string list * (string * Value.t) list
  | W_create_rel of string * noderef * noderef

type txn = {
  db : t;
  mutable writes : write list; (* reversed *)
  mutable pending_count : int;
  mutable committed : bool;
}

let txn_begin db = { db; writes = []; pending_count = 0; committed = false }
let existing nid = Existing nid

let txn_create_node txn ?(labels = []) ?(props = []) () =
  let slot = txn.pending_count in
  txn.pending_count <- slot + 1;
  txn.writes <- W_create_node (slot, labels, props) :: txn.writes;
  Pending slot

let txn_create_rel txn ~rtype src dst =
  txn.writes <- W_create_rel (rtype, src, dst) :: txn.writes

let txn_commit txn =
  if txn.committed then invalid_arg "Db.txn_commit: already committed";
  txn.committed <- true;
  let db = txn.db in
  let writes = List.rev txn.writes in
  let resolved = Array.make (max 1 txn.pending_count) (-1) in
  let resolve = function
    | Existing nid -> nid
    | Pending slot ->
      let nid = resolved.(slot) in
      if nid < 0 then invalid_arg "Db.txn_commit: relationship references uncreated node";
      nid
  in
  let created = ref [] in
  let in_chunk = ref 0 in
  let tick () =
    incr in_chunk;
    if !in_chunk >= db.max_writes_per_txn then begin
      db.commit_chunks <- db.commit_chunks + 1;
      in_chunk := 0
    end
  in
  List.iter
    (fun w ->
      (match w with
      | W_create_node (slot, labels, props) ->
        let nid = Store.create_node db.store ~labels ~props () in
        resolved.(slot) <- nid;
        created := nid :: !created
      | W_create_rel (rtype, src, dst) ->
        ignore (Store.create_rel db.store ~rtype (resolve src) (resolve dst)));
      tick ())
    writes;
  if !in_chunk > 0 then db.commit_chunks <- db.commit_chunks + 1;
  List.rev !created

let txn_abort txn = txn.committed <- true
let commits t = t.commit_chunks

(* -- Name-keyed stream graph ------------------------------------------------ *)

let find_or_create_vertex t name =
  match
    Store.index_lookup t.store ~label:vertex_label ~property:"name" (Value.String name)
  with
  | nid :: _ -> nid
  | [] | (exception Not_found) ->
    Store.create_node t.store ~labels:[ vertex_label ]
      ~props:[ ("name", Value.String name) ]
      ()

let add_stream_edge t (e : Tric_graph.Edge.t) =
  let src = find_or_create_vertex t (Tric_graph.Label.to_string e.src) in
  let dst = find_or_create_vertex t (Tric_graph.Label.to_string e.dst) in
  let rtype = Tric_graph.Label.to_string e.label in
  if Store.has_rel t.store ~rtype src dst then false
  else begin
    ignore (Store.create_rel t.store ~rtype src dst);
    true
  end

let remove_stream_edge t (e : Tric_graph.Edge.t) =
  let lookup name =
    match
      Store.index_lookup t.store ~label:vertex_label ~property:"name" (Value.String name)
    with
    | nid :: _ -> Some nid
    | [] -> None
    | exception Not_found -> None
  in
  match (lookup (Tric_graph.Label.to_string e.src), lookup (Tric_graph.Label.to_string e.dst)) with
  | Some src, Some dst ->
    let rtype = Tric_graph.Label.to_string e.label in
    let doomed =
      List.filter (fun (r : Store.rel) -> r.rdst = dst) (Store.out_rels_typed t.store src rtype)
    in
    List.fold_left (fun changed (r : Store.rel) -> Store.delete_rel t.store r.rid || changed) false doomed
  | _ -> false
