(** Property values of the embedded property-graph database. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
