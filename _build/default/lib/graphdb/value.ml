type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ -> false

let compare = Stdlib.compare
let hash = Hashtbl.hash

let pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.pp_print_float fmt f
  | String s -> Format.fprintf fmt "%S" s

let to_string v = Format.asprintf "%a" pp v
