(** Plan interpreter.

    Rows are node-id vectors indexed by plan slot.  Seeds produce rows,
    expansions extend or verify them against the store's adjacency lists,
    residual conditions filter, and RETURN projects. *)

type row = Store.node_id array
(** One binding of every plan slot (internal representation; -1 = unbound,
    only transiently). *)

type cell =
  | Node of Store.node_id
  | Prop_value of Value.t

val run : Store.t -> Plan.t -> row list
(** All distinct total bindings of the plan's slots (before projection). *)

val run_projected : Store.t -> Plan.t -> cell list list
(** Bindings projected through the plan's RETURN items. *)
