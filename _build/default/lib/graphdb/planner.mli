(** Cost-based plan construction.

    Seeds are chosen from store statistics: an indexed property equality is
    cheapest, then a label scan or a relationship-type scan (whichever the
    statistics say is smaller), then a full node scan.  Expansions are
    added breadth-first from the bound region, preferring hops whose target
    carries constraints.  Disconnected pattern components each get their
    own seed (cartesian product, as in Neo4j). *)

exception Plan_error of string

val plan : Store.t -> Cypher.query -> Plan.t
(** @raise Plan_error on patterns that cannot be planned (e.g. a WHERE or
    RETURN referencing an unknown variable). *)
