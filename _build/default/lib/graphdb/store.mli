(** The property-graph store of the embedded database.

    Nodes carry node labels and a property map; relationships carry a type
    and a property map.  The store maintains:
    - adjacency lists per node (outgoing and incoming);
    - a node-label index (label → node ids);
    - optional property indexes per (node label, property key), as the
      paper's Neo4j configuration "builds indexes on all labels of the
      schema allowing for faster look up times of nodes";
    - degree and cardinality statistics for the planner. *)

type node_id = int
type rel_id = int

type rel = {
  rid : rel_id;
  rtype : string;
  rsrc : node_id;
  rdst : node_id;
}

type t

val create : unit -> t

(** {1 Writes} *)

val create_node : t -> ?labels:string list -> ?props:(string * Value.t) list -> unit -> node_id
val set_prop : t -> node_id -> string -> Value.t -> unit

val create_rel : t -> rtype:string -> node_id -> node_id -> rel_id
(** Parallel relationships of the same type between the same endpoints are
    allowed (multigraph), as in Neo4j. *)

val delete_rel : t -> rel_id -> bool

(** {1 Reads} *)

val num_nodes : t -> int
val num_rels : t -> int
val node_labels : t -> node_id -> string list
val get_prop : t -> node_id -> string -> Value.t option
val out_rels : t -> node_id -> rel list
val in_rels : t -> node_id -> rel list
val out_rels_typed : t -> node_id -> string -> rel list
val in_rels_typed : t -> node_id -> string -> rel list
val rel_by_id : t -> rel_id -> rel option

val has_rel : t -> rtype:string -> node_id -> node_id -> bool

val nodes_with_label : t -> string -> node_id list
val all_nodes : t -> node_id list

(** {1 Indexes} *)

val create_index : t -> label:string -> property:string -> unit
(** Build (and thereafter maintain) an equality index over the given
    property of nodes with the given label. *)

val index_lookup : t -> label:string -> property:string -> Value.t -> node_id list
(** @raise Not_found if no such index exists. *)

val has_index : t -> label:string -> property:string -> bool

(** {1 Statistics (planner inputs)} *)

val count_rels_of_type : t -> string -> int
val count_nodes_with_label : t -> string -> int
