(** Physical query plans of the embedded database.

    A plan is a sequence of steps over a row of node slots: a {e seed} step
    produces initial rows (index lookup, label scan, relationship scan or
    full scan — chosen by the planner from store statistics) and each
    {e expand} step extends rows along relationships, Neo4j's exploratory
    execution model.  Residual [WHERE] conditions run last. *)

type constraints = {
  clabel : string option;
  cprops : (string * Value.t) list;
}

val no_constraints : constraints

type step =
  | Seed_index of { slot : int; label : string; key : string; value : Value.t; extra : constraints }
  | Seed_label of { slot : int; label : string; extra : constraints }
  | Seed_all of { slot : int; extra : constraints }
  | Seed_rel of {
      rtype : string;
      src_slot : int;
      dst_slot : int;
      src_c : constraints;
      dst_c : constraints;
    }
  | Expand of {
      from_slot : int;
      rtype : string;
      direction : Cypher.direction;
      to_slot : int;
      to_c : constraints;
    }
      (** If [to_slot] is already bound in a row this verifies the
          relationship exists (expand-into); otherwise it binds the slot. *)
  | Expand_var of {
      from_slot : int;
      rtype : string;
      direction : Cypher.direction;
      to_slot : int;
      to_c : constraints;
      min_hops : int;
      max_hops : int;
    }
      (** The variable-length form ([-[:T*min..max]->]): breadth-first
          expansion binding every node whose distance from the source lies
          within the hop range ([min_hops = 0] includes the source
          itself).  Unbounded ranges are capped by the executor. *)

type compiled_condition =
  | Cc_eq_prop_lit of int * string * Value.t
  | Cc_neq_prop_lit of int * string * Value.t
  | Cc_eq_prop_prop of int * string * int * string
  | Cc_neq_prop_prop of int * string * int * string

type ret =
  | R_node of int  (** slot *)
  | R_prop of int * string

type t = {
  slots : string array;  (** slot index → variable name *)
  steps : step list;
  conditions : compiled_condition list;
  returns : ret list;
}

val slot_of_var : t -> string -> int option
val pp : Format.formatter -> t -> unit
