type node_id = int
type rel_id = int

type rel = {
  rid : rel_id;
  rtype : string;
  rsrc : node_id;
  rdst : node_id;
}

type node_rec = {
  labels : string list;
  props : (string, Value.t) Hashtbl.t;
  mutable out_rels : rel list;
  mutable in_rels : rel list;
}

type index = (Value.t, node_id list ref) Hashtbl.t

type t = {
  mutable nodes : node_rec option array;
  mutable node_count : int;
  rels : (rel_id, rel) Hashtbl.t;
  mutable rel_count : int;
  mutable next_rid : int;
  label_index : (string, node_id list ref) Hashtbl.t;
  prop_indexes : (string * string, index) Hashtbl.t;
  rel_type_counts : (string, int ref) Hashtbl.t;
}

let create () =
  {
    nodes = Array.make 1024 None;
    node_count = 0;
    rels = Hashtbl.create 4096;
    rel_count = 0;
    next_rid = 0;
    label_index = Hashtbl.create 64;
    prop_indexes = Hashtbl.create 16;
    rel_type_counts = Hashtbl.create 64;
  }

let node t nid =
  if nid < 0 || nid >= t.node_count then invalid_arg "Store: unknown node id";
  match t.nodes.(nid) with
  | Some n -> n
  | None -> invalid_arg "Store: unknown node id"

let bump tbl key delta =
  match Hashtbl.find_opt tbl key with
  | Some cell -> cell := !cell + delta
  | None -> Hashtbl.add tbl key (ref delta)

let multi_add tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.add tbl key (ref [ v ])

let index_insert t nid labels key value =
  List.iter
    (fun label ->
      match Hashtbl.find_opt t.prop_indexes (label, key) with
      | Some idx -> multi_add idx value nid
      | None -> ())
    labels

let create_node t ?(labels = []) ?(props = []) () =
  let nid = t.node_count in
  if nid >= Array.length t.nodes then begin
    let bigger = Array.make (2 * Array.length t.nodes) None in
    Array.blit t.nodes 0 bigger 0 (Array.length t.nodes);
    t.nodes <- bigger
  end;
  let n = { labels; props = Hashtbl.create 4; out_rels = []; in_rels = [] } in
  t.nodes.(nid) <- Some n;
  t.node_count <- nid + 1;
  List.iter (fun l -> multi_add t.label_index l nid) labels;
  List.iter
    (fun (k, v) ->
      Hashtbl.replace n.props k v;
      index_insert t nid labels k v)
    props;
  nid

let set_prop t nid key value =
  let n = node t nid in
  (* Remove stale index entries for the previous value. *)
  (match Hashtbl.find_opt n.props key with
  | Some old ->
    List.iter
      (fun label ->
        match Hashtbl.find_opt t.prop_indexes (label, key) with
        | Some idx -> (
          match Hashtbl.find_opt idx old with
          | Some cell -> cell := List.filter (fun id -> id <> nid) !cell
          | None -> ())
        | None -> ())
      n.labels
  | None -> ());
  Hashtbl.replace n.props key value;
  index_insert t nid n.labels key value

let create_rel t ~rtype src dst =
  let s = node t src and d = node t dst in
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  let r = { rid; rtype; rsrc = src; rdst = dst } in
  Hashtbl.add t.rels rid r;
  s.out_rels <- r :: s.out_rels;
  d.in_rels <- r :: d.in_rels;
  t.rel_count <- t.rel_count + 1;
  bump t.rel_type_counts rtype 1;
  rid

let delete_rel t rid =
  match Hashtbl.find_opt t.rels rid with
  | None -> false
  | Some r ->
    Hashtbl.remove t.rels rid;
    let s = node t r.rsrc and d = node t r.rdst in
    s.out_rels <- List.filter (fun r' -> r'.rid <> rid) s.out_rels;
    d.in_rels <- List.filter (fun r' -> r'.rid <> rid) d.in_rels;
    t.rel_count <- t.rel_count - 1;
    bump t.rel_type_counts r.rtype (-1);
    true

let num_nodes t = t.node_count
let num_rels t = t.rel_count
let node_labels t nid = (node t nid).labels
let get_prop t nid key = Hashtbl.find_opt (node t nid).props key
let out_rels t nid = (node t nid).out_rels
let in_rels t nid = (node t nid).in_rels

let out_rels_typed t nid rtype =
  List.filter (fun r -> String.equal r.rtype rtype) (node t nid).out_rels

let in_rels_typed t nid rtype =
  List.filter (fun r -> String.equal r.rtype rtype) (node t nid).in_rels

let rel_by_id t rid = Hashtbl.find_opt t.rels rid

let has_rel t ~rtype src dst =
  List.exists (fun r -> r.rdst = dst && String.equal r.rtype rtype) (node t src).out_rels

let nodes_with_label t label =
  match Hashtbl.find_opt t.label_index label with Some cell -> !cell | None -> []

let all_nodes t = List.init t.node_count Fun.id

let create_index t ~label ~property =
  if not (Hashtbl.mem t.prop_indexes (label, property)) then begin
    let idx : index = Hashtbl.create 1024 in
    Hashtbl.add t.prop_indexes (label, property) idx;
    (* Backfill from existing nodes. *)
    List.iter
      (fun nid ->
        match get_prop t nid property with
        | Some v -> multi_add idx v nid
        | None -> ())
      (nodes_with_label t label)
  end

let index_lookup t ~label ~property value =
  match Hashtbl.find_opt t.prop_indexes (label, property) with
  | None -> raise Not_found
  | Some idx -> ( match Hashtbl.find_opt idx value with Some cell -> !cell | None -> [])

let has_index t ~label ~property = Hashtbl.mem t.prop_indexes (label, property)

let count_rels_of_type t rtype =
  match Hashtbl.find_opt t.rel_type_counts rtype with Some c -> !c | None -> 0

let count_nodes_with_label t label = List.length (nodes_with_label t label)
