(** A Cypher-like query language: AST, lexer and recursive-descent parser.

    The supported subset is what the continuous-query baseline needs (and a
    bit more): [MATCH] over node/relationship patterns with labels, types
    and inline property maps, an optional [WHERE] with conjunctive
    equalities/inequalities, and [RETURN] of variables or properties.

    {[
      MATCH (f:V)-[:hasMod]->(p:V), (p)-[:posted]->(x:V {name: 'pst1'})
      WHERE f.age = 42
      RETURN f, p, x.name
    ]}

    Variable-length relationships are supported with Neo4j's syntax:
    [(a)-[:knows*1..3]->(b)] matches paths of 1 to 3 [knows] hops. *)

type direction =
  | Out  (** [-[:T]->] *)
  | In  (** [<-[:T]-] *)

type node_pat = {
  nvar : string option;
  nlabel : string option;
  nprops : (string * Value.t) list;
}

type rel_pat = {
  rvar : string option;
  rtype_p : string;
  direction : direction;
  hops : (int * int) option;
      (** variable-length range: [-[:T*min..max]->]; [None] = exactly one *)
}

type chain = node_pat * (rel_pat * node_pat) list
(** One comma-separated MATCH pattern: a node followed by relationship
    hops. *)

type operand =
  | Prop of string * string  (** [var.key] *)
  | Lit of Value.t

type condition =
  | Eq of operand * operand
  | Neq of operand * operand

type return_item =
  | Ret_var of string
  | Ret_prop of string * string

type query = {
  chains : chain list;
  conditions : condition list;
  returns : return_item list;
}

exception Parse_error of string

val parse : string -> query
(** @raise Parse_error on malformed input. *)

val pp : Format.formatter -> query -> unit
