type direction =
  | Out
  | In

type node_pat = {
  nvar : string option;
  nlabel : string option;
  nprops : (string * Value.t) list;
}

type rel_pat = {
  rvar : string option;
  rtype_p : string;
  direction : direction;
  hops : (int * int) option;
}

type chain = node_pat * (rel_pat * node_pat) list

type operand =
  | Prop of string * string
  | Lit of Value.t

type condition =
  | Eq of operand * operand
  | Neq of operand * operand

type return_item =
  | Ret_var of string
  | Ret_prop of string * string

type query = {
  chains : chain list;
  conditions : condition list;
  returns : return_item list;
}

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* -- Lexer ------------------------------------------------------------------ *)

type token =
  | MATCH
  | WHERE
  | RETURN
  | AND
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | LBRACE
  | RBRACE
  | COLON
  | COMMA
  | DOT
  | ARROW_RIGHT (* -> *)
  | DASH (* - *)
  | LEFT_ARROW_DASH (* <- *)
  | STAR
  | DOTDOT
  | EQUALS
  | NEQ
  | IDENT of string
  | STRING of string
  | INT of int
  | FLOAT of float
  | TRUE
  | FALSE
  | NULL
  | EOF

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '#'
let is_digit c = c >= '0' && c <= '9'

let keyword = function
  | "MATCH" | "match" -> Some MATCH
  | "WHERE" | "where" -> Some WHERE
  | "RETURN" | "return" -> Some RETURN
  | "AND" | "and" -> Some AND
  | "TRUE" | "true" -> Some TRUE
  | "FALSE" | "false" -> Some FALSE
  | "NULL" | "null" -> Some NULL
  | _ -> None

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let push tok = tokens := tok :: !tokens in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do
        incr i
      done;
      let word = String.sub s start (!i - start) in
      push (match keyword word with Some k -> k | None -> IDENT word)
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      (* A fractional part requires '.' followed by a digit — a lone '.'
         or '..' (hop ranges) belongs to the next token. *)
      if !i + 1 < n && s.[!i] = '.' && is_digit s.[!i + 1] then begin
        incr i;
        while !i < n && is_digit s.[!i] do
          incr i
        done;
        push (FLOAT (float_of_string (String.sub s start (!i - start))))
      end
      else push (INT (int_of_string (String.sub s start (!i - start))))
    end
    else begin
      match c with
      | '\'' | '"' ->
        let quote = c in
        incr i;
        let start = !i in
        while !i < n && s.[!i] <> quote do
          incr i
        done;
        if !i >= n then fail "unterminated string literal";
        push (STRING (String.sub s start (!i - start)));
        incr i
      | '(' -> push LPAREN; incr i
      | ')' -> push RPAREN; incr i
      | '[' -> push LBRACKET; incr i
      | ']' -> push RBRACKET; incr i
      | '{' -> push LBRACE; incr i
      | '}' -> push RBRACE; incr i
      | ':' -> push COLON; incr i
      | ',' -> push COMMA; incr i
      | '*' -> push STAR; incr i
      | '.' ->
        if !i + 1 < n && s.[!i + 1] = '.' then begin
          push DOTDOT;
          i := !i + 2
        end
        else begin
          push DOT;
          incr i
        end
      | '=' -> push EQUALS; incr i
      | '<' ->
        if !i + 1 < n && s.[!i + 1] = '-' then begin
          push LEFT_ARROW_DASH;
          i := !i + 2
        end
        else if !i + 1 < n && s.[!i + 1] = '>' then begin
          push NEQ;
          i := !i + 2
        end
        else fail "unexpected '<' at offset %d" !i
      | '-' ->
        if !i + 1 < n && s.[!i + 1] = '>' then begin
          push ARROW_RIGHT;
          i := !i + 2
        end
        else begin
          push DASH;
          incr i
        end
      | _ -> fail "unexpected character %C at offset %d" c !i
    end
  done;
  push EOF;
  List.rev !tokens

(* -- Parser ----------------------------------------------------------------- *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> fail "unexpected end of input" | _ :: tl -> st.toks <- tl

let expect st tok what =
  if peek st = tok then advance st else fail "expected %s" what

let ident st =
  match peek st with
  | IDENT x ->
    advance st;
    x
  | _ -> fail "expected identifier"

let literal st =
  match peek st with
  | STRING x -> advance st; Value.String x
  | INT x -> advance st; Value.Int x
  | FLOAT x -> advance st; Value.Float x
  | TRUE -> advance st; Value.Bool true
  | FALSE -> advance st; Value.Bool false
  | NULL -> advance st; Value.Null
  | _ -> fail "expected literal"

let prop_map st =
  expect st LBRACE "'{'";
  let rec entries acc =
    let key = ident st in
    expect st COLON "':'";
    let v = literal st in
    let acc = (key, v) :: acc in
    if peek st = COMMA then begin
      advance st;
      entries acc
    end
    else acc
  in
  let entries = if peek st = RBRACE then [] else List.rev (entries []) in
  expect st RBRACE "'}'";
  entries

let node_pat st =
  expect st LPAREN "'('";
  let nvar = match peek st with IDENT x -> advance st; Some x | _ -> None in
  let nlabel =
    if peek st = COLON then begin
      advance st;
      Some (ident st)
    end
    else None
  in
  let nprops = if peek st = LBRACE then prop_map st else [] in
  expect st RPAREN "')'";
  { nvar; nlabel; nprops }

(* rel_pat, entered after seeing DASH or LEFT_ARROW_DASH. *)
let int_lit st =
  match peek st with
  | INT n ->
    advance st;
    n
  | _ -> fail "expected integer in hop range"

let rel_body st =
  expect st LBRACKET "'['";
  let rvar = match peek st with IDENT x -> advance st; Some x | _ -> None in
  expect st COLON "':' (relationship type is mandatory)";
  let rtype_p = ident st in
  let hops =
    if peek st = STAR then begin
      advance st;
      match peek st with
      | RBRACKET -> Some (1, max_int) (* unbounded [*] — capped by executor *)
      | INT _ ->
        let lo = int_lit st in
        if peek st = DOTDOT then begin
          advance st;
          let hi = int_lit st in
          if lo < 0 || hi < lo then fail "invalid hop range *%d..%d" lo hi;
          Some (lo, hi)
        end
        else Some (lo, lo)
      | _ -> fail "expected hop range after '*'"
    end
    else None
  in
  expect st RBRACKET "']'";
  (rvar, rtype_p, hops)

let chain st =
  let first = node_pat st in
  let rec hops acc =
    match peek st with
    | DASH ->
      advance st;
      let rvar, rtype_p, rhops = rel_body st in
      expect st ARROW_RIGHT "'->'";
      let target = node_pat st in
      hops (({ rvar; rtype_p; direction = Out; hops = rhops }, target) :: acc)
    | LEFT_ARROW_DASH ->
      advance st;
      let rvar, rtype_p, rhops = rel_body st in
      expect st DASH "'-'";
      let target = node_pat st in
      hops (({ rvar; rtype_p; direction = In; hops = rhops }, target) :: acc)
    | _ -> List.rev acc
  in
  (first, hops [])

let operand st =
  match peek st with
  | IDENT v ->
    advance st;
    expect st DOT "'.'";
    let key = ident st in
    Prop (v, key)
  | _ -> Lit (literal st)

let condition st =
  let lhs = operand st in
  match peek st with
  | EQUALS ->
    advance st;
    Eq (lhs, operand st)
  | NEQ ->
    advance st;
    Neq (lhs, operand st)
  | _ -> fail "expected '=' or '<>'"

let return_item st =
  let v = ident st in
  if peek st = DOT then begin
    advance st;
    Ret_prop (v, ident st)
  end
  else Ret_var v

let parse s =
  let st = { toks = tokenize s } in
  expect st MATCH "MATCH";
  let rec chains acc =
    let c = chain st in
    if peek st = COMMA then begin
      advance st;
      chains (c :: acc)
    end
    else List.rev (c :: acc)
  in
  let chains = chains [] in
  let conditions =
    if peek st = WHERE then begin
      advance st;
      let rec conds acc =
        let c = condition st in
        if peek st = AND then begin
          advance st;
          conds (c :: acc)
        end
        else List.rev (c :: acc)
      in
      conds []
    end
    else []
  in
  expect st RETURN "RETURN";
  let rec rets acc =
    let r = return_item st in
    if peek st = COMMA then begin
      advance st;
      rets (r :: acc)
    end
    else List.rev (r :: acc)
  in
  let returns = rets [] in
  if peek st <> EOF then fail "trailing tokens after RETURN";
  { chains; conditions; returns }

(* -- Printer ---------------------------------------------------------------- *)

let pp_node fmt (n : node_pat) =
  Format.fprintf fmt "(%s%s%s)"
    (Option.value ~default:"" n.nvar)
    (match n.nlabel with Some l -> ":" ^ l | None -> "")
    (match n.nprops with
    | [] -> ""
    | props ->
      " {"
      ^ String.concat ", "
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s" k (Value.to_string v)) props)
      ^ "}")

let pp_operand fmt = function
  | Prop (v, k) -> Format.fprintf fmt "%s.%s" v k
  | Lit v -> Value.pp fmt v

let pp fmt q =
  Format.fprintf fmt "MATCH ";
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
    (fun fmt (first, hops) ->
      pp_node fmt first;
      List.iter
        (fun (r, n) ->
          (let range =
             match r.hops with
             | None -> ""
             | Some (_, hi) when hi = max_int -> "*"
             | Some (lo, hi) when lo = hi -> Printf.sprintf "*%d" lo
             | Some (lo, hi) -> Printf.sprintf "*%d..%d" lo hi
           in
           match r.direction with
           | Out -> Format.fprintf fmt "-[:%s%s]->" r.rtype_p range
           | In -> Format.fprintf fmt "<-[:%s%s]-" r.rtype_p range);
          pp_node fmt n)
        hops)
    fmt q.chains;
  (match q.conditions with
  | [] -> ()
  | conds ->
    Format.fprintf fmt " WHERE ";
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.pp_print_string f " AND ")
      (fun fmt -> function
        | Eq (a, b) -> Format.fprintf fmt "%a = %a" pp_operand a pp_operand b
        | Neq (a, b) -> Format.fprintf fmt "%a <> %a" pp_operand a pp_operand b)
      fmt conds);
  Format.fprintf fmt " RETURN ";
  Format.pp_print_list
    ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
    (fun fmt -> function
      | Ret_var v -> Format.pp_print_string fmt v
      | Ret_prop (v, k) -> Format.fprintf fmt "%s.%s" v k)
    fmt q.returns
