type constraints = {
  clabel : string option;
  cprops : (string * Value.t) list;
}

let no_constraints = { clabel = None; cprops = [] }

type step =
  | Seed_index of { slot : int; label : string; key : string; value : Value.t; extra : constraints }
  | Seed_label of { slot : int; label : string; extra : constraints }
  | Seed_all of { slot : int; extra : constraints }
  | Seed_rel of {
      rtype : string;
      src_slot : int;
      dst_slot : int;
      src_c : constraints;
      dst_c : constraints;
    }
  | Expand of {
      from_slot : int;
      rtype : string;
      direction : Cypher.direction;
      to_slot : int;
      to_c : constraints;
    }
  | Expand_var of {
      from_slot : int;
      rtype : string;
      direction : Cypher.direction;
      to_slot : int;
      to_c : constraints;
      min_hops : int;
      max_hops : int;
    }

type compiled_condition =
  | Cc_eq_prop_lit of int * string * Value.t
  | Cc_neq_prop_lit of int * string * Value.t
  | Cc_eq_prop_prop of int * string * int * string
  | Cc_neq_prop_prop of int * string * int * string

type ret =
  | R_node of int
  | R_prop of int * string

type t = {
  slots : string array;
  steps : step list;
  conditions : compiled_condition list;
  returns : ret list;
}

let slot_of_var t v =
  let n = Array.length t.slots in
  let rec go i = if i >= n then None else if String.equal t.slots.(i) v then Some i else go (i + 1) in
  go 0

let pp_step fmt = function
  | Seed_index { slot; label; key; value; _ } ->
    Format.fprintf fmt "SeedIndex slot=%d :%s.%s=%a" slot label key Value.pp value
  | Seed_label { slot; label; _ } -> Format.fprintf fmt "SeedLabel slot=%d :%s" slot label
  | Seed_all { slot; _ } -> Format.fprintf fmt "SeedAll slot=%d" slot
  | Seed_rel { rtype; src_slot; dst_slot; _ } ->
    Format.fprintf fmt "SeedRel [:%s] %d->%d" rtype src_slot dst_slot
  | Expand { from_slot; rtype; direction; to_slot; _ } ->
    Format.fprintf fmt "Expand %d %s[:%s]%s %d" from_slot
      (match direction with Cypher.Out -> "-" | Cypher.In -> "<-")
      rtype
      (match direction with Cypher.Out -> "->" | Cypher.In -> "-")
      to_slot
  | Expand_var { from_slot; rtype; to_slot; min_hops; max_hops; _ } ->
    Format.fprintf fmt "ExpandVar %d -[:%s*%d..%d]- %d" from_slot rtype min_hops
      max_hops to_slot

let pp fmt t =
  Format.fprintf fmt "@[<v>plan slots=[%s]" (String.concat ";" (Array.to_list t.slots));
  List.iter (fun s -> Format.fprintf fmt "@,  %a" pp_step s) t.steps;
  Format.fprintf fmt "@]"
