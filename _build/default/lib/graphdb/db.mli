(** The embedded database façade: store + plan cache + write transactions.

    Mirrors the paper's Neo4j configuration (§5.3): property indexes on the
    schema's lookup keys, a plan cache keyed by query text (the effect of
    Cypher's parameters syntax), and batched write transactions with a
    configurable writes-per-transaction limit (the paper found 20K writes
    per transaction optimal). *)

type t

val create : ?max_writes_per_txn:int -> unit -> t
(** [max_writes_per_txn] defaults to 20_000. *)

val store : t -> Store.t

(** {1 Queries} *)

val query : t -> string -> Executor.cell list list
(** Parse (cached), plan (cached) and execute.
    @raise Cypher.Parse_error / @raise Planner.Plan_error *)

val plan_of : t -> string -> Plan.t
(** The cached plan for a query text (planning it on first use). *)

val invalidate_plans : t -> unit
(** Drop the plan cache (e.g. after bulk loads change the statistics). *)

val plan_cache_hits : t -> int
val plan_cache_misses : t -> int

(** {1 Transactions}

    A transaction buffers writes; [commit] applies them to the store in
    chunks of at most [max_writes_per_txn].  Node handles created inside a
    transaction are {!noderef}s resolved at commit. *)

type txn
type noderef

val txn_begin : t -> txn
val existing : Store.node_id -> noderef

val txn_create_node : txn -> ?labels:string list -> ?props:(string * Value.t) list -> unit -> noderef
val txn_create_rel : txn -> rtype:string -> noderef -> noderef -> unit

val txn_commit : txn -> Store.node_id list
(** Applies buffered writes; returns the ids of the nodes created, in
    creation order.  A transaction can be committed once.
    @raise Invalid_argument on double commit. *)

val txn_abort : txn -> unit
val commits : t -> int
(** Number of store-level commit chunks executed so far. *)

(** {1 Convenience for name-keyed graphs} *)

val vertex_label : string
(** The node label used for stream vertices: ["V"]. *)

val find_or_create_vertex : t -> string -> Store.node_id
(** Look up the [:V] node with the given [name] property via the property
    index, creating node (and index on first use) as needed. *)

val add_stream_edge : t -> Tric_graph.Edge.t -> bool
(** Apply a stream edge addition: find/create endpoint vertices and the
    typed relationship.  Returns [false] (no change) if the exact edge is
    already present — stream semantics deduplicate identical triples. *)

val remove_stream_edge : t -> Tric_graph.Edge.t -> bool
