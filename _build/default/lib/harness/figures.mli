(** The experiment registry: one runnable experiment per table and figure
    of the paper's evaluation (§6), plus ablations of DESIGN.md's design
    choices.

    Sizes are the paper's divided by {!Config.scale}; each engine run is
    truncated at {!Config.budget_s} seconds (the paper's 24-hour threshold,
    scaled), and truncated cells are marked with ["*"] exactly as the
    paper's plots mark timed-out algorithms. *)

type t = {
  id : string;  (** e.g. "fig12a" *)
  paper_ref : string;  (** e.g. "Fig. 12(a)" *)
  title : string;
  engines : string list;
  run : Config.t -> Format.formatter -> unit;
}

val all : t list
(** Paper experiments in figure order, then ablations. *)

val find : string -> t option
val run_all : Config.t -> Format.formatter -> unit
val run_one : Config.t -> Format.formatter -> t -> unit
