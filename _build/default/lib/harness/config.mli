(** Harness configuration.

    The paper's experiments run hours on a 64 GB server; ours reproduce
    their {e shape} at laptop scale.  One knob divides every size (graph
    edges and query-database cardinality): [scale].  A second bounds each
    engine's wall-clock per experiment run — the equivalent of the paper's
    24-hour execution-time threshold; engines that exceed it are reported
    truncated ("*", as in the paper's plots). *)

type t = {
  scale : int;  (** divide the paper's sizes by this; default 25 *)
  budget_s : float;  (** per-engine wall-clock budget; default 10 s *)
  seed : int;
}

val default : t

val from_env : unit -> t
(** Reads [TRIC_SCALE], [TRIC_BUDGET] (seconds) and [TRIC_SEED]. *)

val scaled : t -> int -> int
(** [scaled t n] is [max 1 (n / t.scale)]. *)
