(** Plain-text table rendering for experiment output. *)

val print : Format.formatter -> header:string list -> rows:string list list -> unit
(** Column-aligned table with a header rule. *)

val ms : float -> string
(** Milliseconds with adaptive precision ("0.042", "1.73", "215"). *)

val mb_of_words : int -> string
(** Heap words → megabytes string. *)
