type t = {
  scale : int;
  budget_s : float;
  seed : int;
}

let default = { scale = 25; budget_s = 10.0; seed = 7 }

let from_env () =
  let int_var name default =
    match Sys.getenv_opt name with
    | Some v -> ( match int_of_string_opt v with Some i when i > 0 -> i | _ -> default)
    | None -> default
  in
  let float_var name default =
    match Sys.getenv_opt name with
    | Some v -> ( match float_of_string_opt v with Some f when f > 0.0 -> f | _ -> default)
    | None -> default
  in
  {
    scale = int_var "TRIC_SCALE" default.scale;
    budget_s = float_var "TRIC_BUDGET" default.budget_s;
    seed = int_var "TRIC_SEED" default.seed;
  }

let scaled t n = max 1 (n / t.scale)
