let print fmt ~header ~rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make cols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let print_row r =
    List.iteri
      (fun i cell ->
        let pad = String.make (widths.(i) - String.length cell) ' ' in
        if i = 0 then Format.fprintf fmt "%s%s" cell pad
        else Format.fprintf fmt "  %s%s" pad cell)
      r;
    Format.fprintf fmt "@."
  in
  print_row header;
  Format.fprintf fmt "%s@."
    (String.concat "--" (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter print_row rows

let ms v =
  if v = 0.0 then "0"
  else if v < 0.01 then Printf.sprintf "%.4f" v
  else if v < 1.0 then Printf.sprintf "%.3f" v
  else if v < 100.0 then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.0f" v

let mb_of_words w = Printf.sprintf "%.1fMB" (float_of_int w *. 8.0 /. 1_048_576.0)
