lib/harness/figures.ml: Array Config Engines Format List Matcher Printf Runner String Tablefmt Tric_engine Tric_graph Tric_workloads Unix
