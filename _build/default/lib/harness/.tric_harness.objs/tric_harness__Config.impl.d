lib/harness/config.ml: Sys
