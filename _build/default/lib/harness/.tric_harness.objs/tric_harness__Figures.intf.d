lib/harness/figures.mli: Config Format
