lib/harness/config.mli:
