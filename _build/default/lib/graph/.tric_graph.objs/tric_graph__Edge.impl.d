lib/graph/edge.ml: Format Hashtbl Label Set
