lib/graph/edge.mli: Format Hashtbl Label Set
