lib/graph/update.ml: Edge Format Graph
