lib/graph/label.ml: Array Format Hashtbl Map Printf Set Stdlib
