lib/graph/graph.ml: Edge Format Label List
