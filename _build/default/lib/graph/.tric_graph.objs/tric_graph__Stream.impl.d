lib/graph/stream.ml: Array Format Graph List Seq Update
