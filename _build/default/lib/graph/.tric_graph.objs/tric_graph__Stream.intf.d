lib/graph/stream.mli: Edge Format Graph Update
