lib/graph/update.mli: Edge Format Graph
