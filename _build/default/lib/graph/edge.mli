(** Directed labelled edges.

    An edge [e = (s, t)] with label [l] (Definition 3.1).  Since vertex
    identity is the vertex label (see DESIGN.md), an edge is fully described
    by the triple [(label, src, dst)]. *)

type t = { label : Label.t; src : Label.t; dst : Label.t }

val make : label:Label.t -> src:Label.t -> dst:Label.t -> t

val of_strings : string -> string -> string -> t
(** [of_strings label src dst] interns the three strings.  Convenient in
    tests and examples: [of_strings "knows" "P1" "P2"]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
