(** Interned labels.

    The data model of the paper (Definition 3.1) identifies vertices and
    edge types by their labels: materialized views hold tuples of labels and
    joins equate labels.  Labels are therefore interned once into small
    integers so that equality, hashing and tuple storage are cheap. *)

type t
(** An interned label.  Two labels are equal iff their source strings are
    equal. *)

val intern : string -> t
(** [intern s] returns the label for [s], creating it on first use. *)

val to_string : t -> string
(** [to_string l] is the string [l] was interned from. *)

val to_int : t -> int
(** [to_int l] is the dense non-negative integer backing [l].  Stable for
    the lifetime of the process; useful as an array index. *)

val of_int : int -> t
(** [of_int i] is the label whose [to_int] is [i].
    @raise Invalid_argument if no such label has been interned. *)

val fresh : string -> t
(** [fresh prefix] interns a label guaranteed distinct from every label
    interned so far, with a readable name starting with [prefix]. *)

val count : unit -> int
(** Number of labels interned so far. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
module Map : Map.S with type key = t
