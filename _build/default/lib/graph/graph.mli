(** Attribute multigraph (Definition 3.1).

    A mutable directed labelled multigraph over interned labels.  Vertices
    are created implicitly by edge insertion.  Parallel edges with distinct
    labels between the same vertex pair are allowed; inserting an identical
    [(label, src, dst)] triple twice is idempotent.

    The continuous-query engines do not need the full graph (the paper's
    model "retains solely the necessary parts of G"), but the naive test
    oracle, the embedded graph database and the workload generators do. *)

type t

val create : ?initial_capacity:int -> unit -> t

val add_edge : t -> Edge.t -> bool
(** [add_edge g e] inserts [e]; returns [false] if the exact triple was
    already present (no change). *)

val remove_edge : t -> Edge.t -> bool
(** [remove_edge g e] removes the triple; returns [false] if absent.
    Vertices are never removed. *)

val mem_edge : t -> Edge.t -> bool
val mem_vertex : t -> Label.t -> bool
val num_edges : t -> int
val num_vertices : t -> int

val out_edges : t -> Label.t -> Edge.t list
(** All edges whose source is the given vertex (empty if unknown vertex). *)

val in_edges : t -> Label.t -> Edge.t list

val succ : t -> label:Label.t -> Label.t -> Label.t list
(** [succ g ~label v] are the targets of [label]-edges leaving [v]. *)

val pred : t -> label:Label.t -> Label.t -> Label.t list

val out_degree : t -> Label.t -> int
val in_degree : t -> Label.t -> int
val iter_edges : (Edge.t -> unit) -> t -> unit
val fold_edges : (Edge.t -> 'a -> 'a) -> t -> 'a -> 'a
val iter_vertices : (Label.t -> unit) -> t -> unit
val vertices : t -> Label.t list
val edges : t -> Edge.t list

val edges_with_label : t -> Label.t -> Edge.t list
(** All edges carrying a given edge label (used by planner seed selection). *)

val count_label : t -> Label.t -> int
(** Number of edges carrying a given edge label. *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
