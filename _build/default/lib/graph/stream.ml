type t = Update.t array

let of_updates l = Array.of_list l
let of_edges l = Array.of_list (List.map Update.add l)
let of_array a = Array.copy a
let empty = [||]
let length = Array.length
let get s i = s.(i)
let append s u = Array.append s [| u |]
let concat = Array.append
let prefix s n = Array.sub s 0 (min n (Array.length s))
let iter = Array.iter
let iteri = Array.iteri
let fold = Array.fold_left
let to_list = Array.to_list

let filter pred s = Array.of_seq (Seq.filter pred (Array.to_seq s))
let map = Array.map

let interleave streams =
  let arrays = Array.of_list streams in
  let n = Array.length arrays in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 arrays in
  let cursors = Array.make n 0 in
  let out = ref [] in
  let emitted = ref 0 in
  while !emitted < total do
    for i = 0 to n - 1 do
      if cursors.(i) < Array.length arrays.(i) then begin
        out := arrays.(i).(cursors.(i)) :: !out;
        cursors.(i) <- cursors.(i) + 1;
        incr emitted
      end
    done
  done;
  Array.of_list (List.rev !out)

let final_graph ?initial s =
  let g =
    match initial with
    | None -> Graph.create ()
    | Some g0 ->
      let g = Graph.create ~initial_capacity:(Graph.num_edges g0) () in
      Graph.iter_edges (fun e -> ignore (Graph.add_edge g e)) g0;
      g
  in
  iter (fun u -> ignore (Update.apply g u)) s;
  g

let pp fmt s =
  Format.fprintf fmt "@[<v>stream (%d updates)" (length s);
  iter (fun u -> Format.fprintf fmt "@,  %a" Update.pp u) s;
  Format.fprintf fmt "@]"
