type t =
  | Add of Edge.t
  | Remove of Edge.t

let add e = Add e
let remove e = Remove e
let edge = function Add e | Remove e -> e
let is_addition = function Add _ -> true | Remove _ -> false

let apply g = function
  | Add e -> Graph.add_edge g e
  | Remove e -> Graph.remove_edge g e

let equal a b =
  match (a, b) with
  | Add x, Add y | Remove x, Remove y -> Edge.equal x y
  | Add _, Remove _ | Remove _, Add _ -> false

let pp fmt = function
  | Add e -> Format.fprintf fmt "+%a" Edge.pp e
  | Remove e -> Format.fprintf fmt "-%a" Edge.pp e
