type t = { label : Label.t; src : Label.t; dst : Label.t }

let make ~label ~src ~dst = { label; src; dst }

let of_strings label src dst =
  { label = Label.intern label; src = Label.intern src; dst = Label.intern dst }

let equal a b =
  Label.equal a.label b.label && Label.equal a.src b.src && Label.equal a.dst b.dst

let compare a b =
  let c = Label.compare a.label b.label in
  if c <> 0 then c
  else
    let c = Label.compare a.src b.src in
    if c <> 0 then c else Label.compare a.dst b.dst

let hash e =
  let h = Label.hash e.label in
  let h = (h * 1000003) + Label.hash e.src in
  ((h * 1000003) + Label.hash e.dst) land max_int

let pp fmt e =
  Format.fprintf fmt "%a=(%a,%a)" Label.pp e.label Label.pp e.src Label.pp e.dst

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
