(* Adjacency is stored per vertex as label-keyed out/in lists, plus a global
   edge set for O(1) membership and a per-edge-label index for planner seed
   selection. *)

type adjacency = {
  mutable out_adj : (Label.t * Label.t) list; (* (edge label, target) *)
  mutable in_adj : (Label.t * Label.t) list; (* (edge label, source) *)
}

type t = {
  vertices : adjacency Label.Tbl.t;
  edge_set : unit Edge.Tbl.t;
  by_elabel : Edge.t list ref Label.Tbl.t;
  mutable edge_count : int;
}

let create ?(initial_capacity = 1024) () =
  {
    vertices = Label.Tbl.create initial_capacity;
    edge_set = Edge.Tbl.create initial_capacity;
    by_elabel = Label.Tbl.create 64;
    edge_count = 0;
  }

let adjacency g v =
  match Label.Tbl.find_opt g.vertices v with
  | Some a -> a
  | None ->
    let a = { out_adj = []; in_adj = [] } in
    Label.Tbl.add g.vertices v a;
    a

let add_edge g (e : Edge.t) =
  if Edge.Tbl.mem g.edge_set e then false
  else begin
    Edge.Tbl.add g.edge_set e ();
    let sa = adjacency g e.src in
    sa.out_adj <- (e.label, e.dst) :: sa.out_adj;
    let ta = adjacency g e.dst in
    ta.in_adj <- (e.label, e.src) :: ta.in_adj;
    (match Label.Tbl.find_opt g.by_elabel e.label with
    | Some cell -> cell := e :: !cell
    | None -> Label.Tbl.add g.by_elabel e.label (ref [ e ]));
    g.edge_count <- g.edge_count + 1;
    true
  end

let remove_pair pair l = List.filter (fun p -> p <> pair) l

let remove_edge g (e : Edge.t) =
  if not (Edge.Tbl.mem g.edge_set e) then false
  else begin
    Edge.Tbl.remove g.edge_set e;
    (match Label.Tbl.find_opt g.vertices e.src with
    | Some a -> a.out_adj <- remove_pair (e.label, e.dst) a.out_adj
    | None -> ());
    (match Label.Tbl.find_opt g.vertices e.dst with
    | Some a -> a.in_adj <- remove_pair (e.label, e.src) a.in_adj
    | None -> ());
    (match Label.Tbl.find_opt g.by_elabel e.label with
    | Some cell -> cell := List.filter (fun e' -> not (Edge.equal e e')) !cell
    | None -> ());
    g.edge_count <- g.edge_count - 1;
    true
  end

let mem_edge g e = Edge.Tbl.mem g.edge_set e
let mem_vertex g v = Label.Tbl.mem g.vertices v
let num_edges g = g.edge_count
let num_vertices g = Label.Tbl.length g.vertices

let out_edges g v =
  match Label.Tbl.find_opt g.vertices v with
  | None -> []
  | Some a -> List.map (fun (l, t) -> Edge.make ~label:l ~src:v ~dst:t) a.out_adj

let in_edges g v =
  match Label.Tbl.find_opt g.vertices v with
  | None -> []
  | Some a -> List.map (fun (l, s) -> Edge.make ~label:l ~src:s ~dst:v) a.in_adj

let succ g ~label v =
  match Label.Tbl.find_opt g.vertices v with
  | None -> []
  | Some a ->
    List.filter_map
      (fun (l, t) -> if Label.equal l label then Some t else None)
      a.out_adj

let pred g ~label v =
  match Label.Tbl.find_opt g.vertices v with
  | None -> []
  | Some a ->
    List.filter_map
      (fun (l, s) -> if Label.equal l label then Some s else None)
      a.in_adj

let out_degree g v =
  match Label.Tbl.find_opt g.vertices v with
  | None -> 0
  | Some a -> List.length a.out_adj

let in_degree g v =
  match Label.Tbl.find_opt g.vertices v with
  | None -> 0
  | Some a -> List.length a.in_adj

let iter_edges f g = Edge.Tbl.iter (fun e () -> f e) g.edge_set
let fold_edges f g init = Edge.Tbl.fold (fun e () acc -> f e acc) g.edge_set init
let iter_vertices f g = Label.Tbl.iter (fun v _ -> f v) g.vertices
let vertices g = Label.Tbl.fold (fun v _ acc -> v :: acc) g.vertices []
let edges g = fold_edges (fun e acc -> e :: acc) g []

let edges_with_label g l =
  match Label.Tbl.find_opt g.by_elabel l with None -> [] | Some cell -> !cell

let count_label g l =
  match Label.Tbl.find_opt g.by_elabel l with
  | None -> 0
  | Some cell -> List.length !cell

let clear g =
  Label.Tbl.reset g.vertices;
  Edge.Tbl.reset g.edge_set;
  Label.Tbl.reset g.by_elabel;
  g.edge_count <- 0

let pp fmt g =
  Format.fprintf fmt "@[<v>graph |V|=%d |E|=%d" (num_vertices g) (num_edges g);
  iter_edges (fun e -> Format.fprintf fmt "@,  %a" Edge.pp e) g;
  Format.fprintf fmt "@]"
