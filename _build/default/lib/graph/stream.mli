(** Graph streams (Definition 3.3): an ordered sequence of updates. *)

type t

val of_updates : Update.t list -> t
val of_edges : Edge.t list -> t
(** Each edge becomes an addition, in order. *)

val of_array : Update.t array -> t
val empty : t
val length : t -> int
val get : t -> int -> Update.t
val append : t -> Update.t -> t
val concat : t -> t -> t

val prefix : t -> int -> t
(** [prefix s n] is the first [min n (length s)] updates. *)

val iter : (Update.t -> unit) -> t -> unit
val iteri : (int -> Update.t -> unit) -> t -> unit
val fold : ('a -> Update.t -> 'a) -> 'a -> t -> 'a
val to_list : t -> Update.t list
val filter : (Update.t -> bool) -> t -> t
val map : (Update.t -> Update.t) -> t -> t

val interleave : t list -> t
(** Fair round-robin merge of several streams into one, preserving each
    stream's internal order — the paper's "(one or many) streams of graph
    updates" (§1) reduced to the single-stream model the engines
    consume. *)

val final_graph : ?initial:Graph.t -> t -> Graph.t
(** Replay the whole stream onto a (copy of the) initial graph.  Used by the
    query-set generator to plant satisfiable patterns. *)

val pp : Format.formatter -> t -> unit
