(** Graph updates (Definition 3.2, extended with deletions per §4.3). *)

type t =
  | Add of Edge.t
  | Remove of Edge.t

val add : Edge.t -> t
val remove : Edge.t -> t

val edge : t -> Edge.t
(** The edge an update carries, regardless of polarity. *)

val is_addition : t -> bool

val apply : Graph.t -> t -> bool
(** Apply to a graph; returns whether the graph changed. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
