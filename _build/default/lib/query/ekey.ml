open Tric_graph

type kind =
  | Kconst of Label.t
  | Kvar

type t = { label : Label.t; src : kind; dst : kind }

let kind_of_term = function
  | Term.Const c -> Kconst c
  | Term.Var _ -> Kvar

let of_pedge q (e : Pattern.pedge) =
  {
    label = e.elabel;
    src = kind_of_term (Pattern.term q e.src);
    dst = kind_of_term (Pattern.term q e.dst);
  }

let kind_matches k l =
  match k with Kconst c -> Label.equal c l | Kvar -> true

let matches key (e : Edge.t) =
  Label.equal key.label e.label && kind_matches key.src e.src
  && kind_matches key.dst e.dst

let keys_of_edge (e : Edge.t) =
  [
    { label = e.label; src = Kconst e.src; dst = Kconst e.dst };
    { label = e.label; src = Kconst e.src; dst = Kvar };
    { label = e.label; src = Kvar; dst = Kconst e.dst };
    { label = e.label; src = Kvar; dst = Kvar };
  ]

let src_const k = match k.src with Kconst c -> Some c | Kvar -> None
let dst_const k = match k.dst with Kconst c -> Some c | Kvar -> None

let kind_equal a b =
  match (a, b) with
  | Kconst x, Kconst y -> Label.equal x y
  | Kvar, Kvar -> true
  | Kconst _, Kvar | Kvar, Kconst _ -> false

let kind_compare a b =
  match (a, b) with
  | Kconst x, Kconst y -> Label.compare x y
  | Kvar, Kvar -> 0
  | Kconst _, Kvar -> -1
  | Kvar, Kconst _ -> 1

let kind_hash = function Kconst c -> 2 + Label.hash c | Kvar -> 1

let equal a b =
  Label.equal a.label b.label && kind_equal a.src b.src && kind_equal a.dst b.dst

let compare a b =
  let c = Label.compare a.label b.label in
  if c <> 0 then c
  else
    let c = kind_compare a.src b.src in
    if c <> 0 then c else kind_compare a.dst b.dst

let hash k =
  let h = Label.hash k.label in
  let h = (h * 1000003) + kind_hash k.src in
  ((h * 1000003) + kind_hash k.dst) land max_int

let pp_kind fmt = function
  | Kconst c -> Label.pp fmt c
  | Kvar -> Format.pp_print_string fmt "?var"

let pp fmt k =
  Format.fprintf fmt "%a=(%a,%a)" Label.pp k.label pp_kind k.src pp_kind k.dst

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
