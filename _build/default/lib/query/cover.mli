(** Covering-path extraction (Definition 4.2, §4.1 Step 1).

    Decomposes a query graph pattern into a set of directed paths that
    together cover every vertex and every edge of the pattern.  The paper
    solves the (NP-hard, in its minimising form) covering-path problem with
    a greedy depth-first procedure; we implement that procedure plus a
    slightly stronger default that extends every path as far upstream as
    possible before walking forward, which maximises shared prefixes across
    queries (the quantity the tries exploit). *)

type strategy =
  | Upstream
      (** For each yet-uncovered edge, walk backwards through predecessors
          to the farthest start, then forward greedily.  Reproduces the
          covering sets of the paper's Fig. 4. *)
  | Naive
      (** The paper's literal description: depth-first walks started from
          every vertex in id order until everything is covered, then
          sub-path removal.  Kept as an ablation baseline. *)

val extract : ?strategy:strategy -> Pattern.t -> Path.t list
(** Covering paths in deterministic order.  Every pattern with at least one
    edge admits a cover (single edges are paths). *)

val covers : Pattern.t -> Path.t list -> bool
(** Verification: every vertex and every edge of the pattern appears in at
    least one path, every path edge belongs to the pattern, and no path is
    a sub-path of another. *)

val intersections : Path.t list -> (int * int * int list) list
(** For each unordered pair of paths (by index in the input list) the
    vertex ids they share — the "path intersection" information kept for
    the final per-query join (§4.1). *)
