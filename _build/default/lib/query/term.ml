open Tric_graph

type t =
  | Const of Label.t
  | Var of string

let const s = Const (Label.intern s)

let var name =
  let name =
    if String.length name > 0 && name.[0] = '?' then
      String.sub name 1 (String.length name - 1)
    else name
  in
  Var name

let is_var = function Var _ -> true | Const _ -> false

let equal a b =
  match (a, b) with
  | Const x, Const y -> Label.equal x y
  | Var x, Var y -> String.equal x y
  | Const _, Var _ | Var _, Const _ -> false

let compare a b =
  match (a, b) with
  | Const x, Const y -> Label.compare x y
  | Var x, Var y -> String.compare x y
  | Const _, Var _ -> -1
  | Var _, Const _ -> 1

let matches t l =
  match t with Const c -> Label.equal c l | Var _ -> true

let pp fmt = function
  | Const c -> Format.fprintf fmt "%a" Label.pp c
  | Var v -> Format.fprintf fmt "?%s" v
