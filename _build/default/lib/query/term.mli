(** Query vertex terms: literals or variables (Definition 3.4).

    A query vertex is either a [Const] — a specific entity of the graph,
    identified by its label — or a [Var] — a named placeholder.  Variable
    names are scoped to a single query graph pattern; the same name denotes
    the same vertex. *)

open Tric_graph

type t =
  | Const of Label.t
  | Var of string

val const : string -> t
(** [const s] is [Const (Label.intern s)]. *)

val var : string -> t
(** [var name] is [Var name].  By convention names start with ["?"] in
    printed form but the leading ["?"] is optional here. *)

val is_var : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val matches : t -> Label.t -> bool
(** [matches term l]: a [Const c] matches only [c]; a [Var] matches any
    label. *)

val pp : Format.formatter -> t -> unit
