type t = { pedges : Pattern.pedge array }

let of_edges l =
  match l with
  | [] -> invalid_arg "Path.of_edges: empty"
  | first :: rest ->
    let rec check (prev : Pattern.pedge) = function
      | [] -> ()
      | (e : Pattern.pedge) :: tl ->
        if prev.dst <> e.src then invalid_arg "Path.of_edges: edges do not chain";
        check e tl
    in
    check first rest;
    { pedges = Array.of_list l }

let edges p = p.pedges
let length p = Array.length p.pedges

let vids p =
  let n = Array.length p.pedges in
  Array.init (n + 1) (fun i -> if i = 0 then p.pedges.(0).src else p.pedges.(i - 1).dst)

let source p = p.pedges.(0).src
let target p = p.pedges.(Array.length p.pedges - 1).dst
let keys q p = Array.to_list (Array.map (Ekey.of_pedge q) p.pedges)

let eids p = Array.map (fun (e : Pattern.pedge) -> e.eid) p.pedges

let is_subpath p q =
  let a = eids p and b = eids q in
  let la = Array.length a and lb = Array.length b in
  if la > lb then false
  else begin
    let matches_at off =
      let rec go i = i >= la || (a.(i) = b.(off + i) && go (i + 1)) in
      go 0
    in
    let rec scan off = off + la <= lb && (matches_at off || scan (off + 1)) in
    scan 0
  end

let mem_eid p eid = Array.exists (fun (e : Pattern.pedge) -> e.eid = eid) p.pedges

let equal p q =
  Array.length p.pedges = Array.length q.pedges
  && Array.for_all2 (fun (a : Pattern.pedge) (b : Pattern.pedge) -> a.eid = b.eid)
       p.pedges q.pedges

let pp pat fmt p =
  let open Format in
  fprintf fmt "{%a" Term.pp (Pattern.term pat (source p));
  Array.iter
    (fun (e : Pattern.pedge) ->
      fprintf fmt " -%a-> %a" Tric_graph.Label.pp e.elabel Term.pp
        (Pattern.term pat e.dst))
    p.pedges;
  fprintf fmt "}"
