lib/query/path.ml: Array Ekey Format Pattern Term Tric_graph
