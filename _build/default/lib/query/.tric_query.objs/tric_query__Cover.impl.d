lib/query/cover.ml: Array Hashtbl Int List Path Pattern Set Term
