lib/query/ekey.mli: Edge Format Hashtbl Label Pattern Set Tric_graph
