lib/query/ekey.ml: Edge Format Hashtbl Label Pattern Set Term Tric_graph
