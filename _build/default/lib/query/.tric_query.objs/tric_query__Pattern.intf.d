lib/query/pattern.mli: Format Label Term Tric_graph
