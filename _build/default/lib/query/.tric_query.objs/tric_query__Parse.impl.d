lib/query/parse.ml: Array Format List Pattern Printf String Term Tric_graph
