lib/query/term.ml: Format Label String Tric_graph
