lib/query/cover.mli: Path Pattern
