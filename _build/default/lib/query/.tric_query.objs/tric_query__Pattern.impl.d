lib/query/pattern.ml: Array Format Hashtbl Label List Term Tric_graph
