lib/query/term.mli: Format Label Tric_graph
