lib/query/parse.mli: Pattern Tric_graph
