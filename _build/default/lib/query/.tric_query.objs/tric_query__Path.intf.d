lib/query/path.mli: Ekey Format Pattern
