(** Directed paths through a query graph pattern (Definition 4.1).

    A path is a non-empty sequence of pattern edges such that the target
    vertex of each edge is the source vertex of the next.  A path is a walk:
    it may revisit a vertex (the covering path of a cycle query does), but
    it never traverses the same pattern edge twice. *)

type t

val of_edges : Pattern.pedge list -> t
(** @raise Invalid_argument if empty or consecutive edges do not chain. *)

val edges : t -> Pattern.pedge array
val length : t -> int
(** Number of edges. *)

val vids : t -> int array
(** The vertex-id sequence [v0; v1; ...; vn] ([n = length]). *)

val source : t -> int
val target : t -> int

val keys : Pattern.t -> t -> Ekey.t list
(** Generic edge keys, in path order — the trie-insertion word of §4.1
    Step 2. *)

val is_subpath : t -> t -> bool
(** [is_subpath p q]: is [p]'s edge sequence a contiguous subsequence of
    [q]'s (by edge id)?  Sub-paths are dropped from covering sets. *)

val mem_eid : t -> int -> bool
val equal : t -> t -> bool
val pp : Pattern.t -> Format.formatter -> t -> unit
