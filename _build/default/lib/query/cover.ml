type strategy =
  | Upstream
  | Naive

module Int_set = Set.Make (Int)

(* Pick the first edge of [candidates] satisfying [pref], else the first
   candidate; candidates are in eid order so choices are deterministic. *)
let pick_preferred pref candidates =
  match List.find_opt pref candidates with
  | Some e -> Some e
  | None -> ( match candidates with [] -> None | e :: _ -> Some e)

(* Greedy forward walk from [v].  Takes globally-uncovered edges while any
   leave the current vertex; never traverses an edge already on this walk.
   [taken] is the reversed list of edges walked so far. *)
let forward_walk q ~covered ~start ~taken0 =
  let on_walk = Hashtbl.create 8 in
  List.iter (fun (e : Pattern.pedge) -> Hashtbl.replace on_walk e.eid ()) taken0;
  let rec go v acc =
    let candidates =
      List.filter
        (fun (e : Pattern.pedge) ->
          (not (Hashtbl.mem on_walk e.eid)) && not covered.(e.eid))
        (Pattern.out_edges_of q v)
    in
    match candidates with
    | [] -> acc
    | e :: _ ->
      Hashtbl.replace on_walk e.eid ();
      go e.dst (e :: acc)
  in
  go start taken0

(* Walk backwards from [v] through predecessor edges, visiting each vertex
   at most once, preferring uncovered predecessor edges.  The walk stops at
   a constant-labelled vertex: a constant is the most selective possible
   path head, and extending past it would push the anchor towards the tail
   of the path, making every materialized prefix of the path unselective.
   Returns the edges of the backward chain in forward order (farthest
   ancestor first). *)
let backward_walk q ~covered ~start =
  let visited = ref (Int_set.singleton start) in
  let is_const v = match Pattern.term q v with Term.Const _ -> true | Term.Var _ -> false in
  let rec go v acc =
    if is_const v then acc
    else begin
      let candidates =
        List.filter
          (fun (e : Pattern.pedge) -> not (Int_set.mem e.src !visited))
          (Pattern.in_edges_of q v)
      in
      match pick_preferred (fun (e : Pattern.pedge) -> not covered.(e.eid)) candidates with
      | None -> acc
      | Some e ->
        visited := Int_set.add e.src !visited;
        go e.src (e :: acc)
    end
  in
  go start []

let mark_covered covered path_edges =
  List.iter (fun (e : Pattern.pedge) -> covered.(e.eid) <- true) path_edges

let extract_upstream q =
  let m = Pattern.num_edges q in
  let covered = Array.make m false in
  let paths = ref [] in
  let rec next_uncovered i = if i >= m then None else if covered.(i) then next_uncovered (i + 1) else Some i in
  let rec loop () =
    match next_uncovered 0 with
    | None -> ()
    | Some eid ->
      let e = Pattern.edge q eid in
      let prefix = backward_walk q ~covered ~start:e.src in
      (* prefix is in forward order; walk forward from e.dst. *)
      let taken0 = e :: List.rev prefix in
      let walked = forward_walk q ~covered ~start:e.dst ~taken0 in
      let path_edges = List.rev walked in
      mark_covered covered path_edges;
      paths := Path.of_edges path_edges :: !paths;
      loop ()
  in
  loop ();
  List.rev !paths

(* The paper's literal procedure: DFS walks from every vertex in id order,
   each walk taking uncovered edges greedily, repeated until all edges are
   covered; then sub-path removal.  (Vertex coverage follows from edge
   coverage since patterns have no isolated vertices.) *)
let extract_naive q =
  let m = Pattern.num_edges q in
  let covered = Array.make m false in
  let all_covered () = Array.for_all (fun b -> b) covered in
  let paths = ref [] in
  let n = Pattern.num_vertices q in
  let rec rounds () =
    if not (all_covered ()) then begin
      let progress = ref false in
      for v = 0 to n - 1 do
        if not (all_covered ()) then begin
          let walked = forward_walk q ~covered ~start:v ~taken0:[] in
          match walked with
          | [] -> ()
          | _ ->
            let path_edges = List.rev walked in
            if List.exists (fun (e : Pattern.pedge) -> not covered.(e.eid)) path_edges
            then begin
              mark_covered covered path_edges;
              paths := Path.of_edges path_edges :: !paths;
              progress := true
            end
        end
      done;
      if !progress then rounds ()
    end
  in
  rounds ();
  let paths = List.rev !paths in
  (* Sub-path removal. *)
  List.filteri
    (fun i p ->
      not
        (List.exists
           (fun (j, p') -> i <> j && Path.is_subpath p p' && not (i < j && Path.equal p p'))
           (List.mapi (fun j p' -> (j, p')) paths)))
    paths

let extract ?(strategy = Upstream) q =
  match strategy with Upstream -> extract_upstream q | Naive -> extract_naive q

let covers q paths =
  let m = Pattern.num_edges q and n = Pattern.num_vertices q in
  let e_cov = Array.make m false and v_cov = Array.make n false in
  let valid = ref true in
  List.iter
    (fun p ->
      Array.iter
        (fun (e : Pattern.pedge) ->
          if e.eid < 0 || e.eid >= m || Pattern.edge q e.eid <> e then valid := false
          else begin
            e_cov.(e.eid) <- true;
            v_cov.(e.src) <- true;
            v_cov.(e.dst) <- true
          end)
        (Path.edges p))
    paths;
  let no_subpaths =
    let arr = Array.of_list paths in
    let k = Array.length arr in
    let ok = ref true in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        if i <> j && Path.is_subpath arr.(i) arr.(j) && not (Path.equal arr.(i) arr.(j))
        then ok := false
      done
    done;
    !ok
  in
  !valid
  && Array.for_all (fun b -> b) e_cov
  && Array.for_all (fun b -> b) v_cov
  && no_subpaths

let intersections paths =
  let arr = Array.of_list paths in
  let vid_set p = Array.fold_left (fun s v -> Int_set.add v s) Int_set.empty (Path.vids p) in
  let sets = Array.map vid_set arr in
  let out = ref [] in
  let k = Array.length arr in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      let shared = Int_set.elements (Int_set.inter sets.(i) sets.(j)) in
      if shared <> [] then out := (i, j, shared) :: !out
    done
  done;
  List.rev !out
