(** Generic edge keys.

    §4.1 "Variable Handling": before indexing, variable vertices are
    substituted with the generic [?var].  The residue of a pattern edge is
    its {e key}: the edge label plus, for each endpoint, either the constant
    label or the fact that it is a variable.  Keys are what trie nodes and
    the inverted indexes of the baselines are keyed by: two query edges with
    the same key share index entries and materialized views.

    An incoming graph edge [(l, s, t)] is covered by exactly four keys —
    [(l,s,t)], [(l,?,t)], [(l,s,?)], [(l,?,?)] — so "which views does this
    update feed" is four hash probes. *)

open Tric_graph

type kind =
  | Kconst of Label.t
  | Kvar

type t = { label : Label.t; src : kind; dst : kind }

val of_pedge : Pattern.t -> Pattern.pedge -> t
(** The key of a pattern edge (variables anonymised). *)

val matches : t -> Edge.t -> bool
(** Does a concrete graph edge feed this key's view? *)

val keys_of_edge : Edge.t -> t list
(** The four generalisations of a concrete edge, most specific first. *)

val src_const : t -> Label.t option
val dst_const : t -> Label.t option
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t
