open Tric_graph

let edge_labels = [ "interacts" ]

let protein i = Printf.sprintf "prot%d" i

(* Protein population follows the paper's measured BioGRID growth
   (Fig. 14(b)/(c) axes): |GV| ~ 30 * |GE|^0.55 — 6.4K proteins at 10K
   interactions, 17.2K at 100K, 63K at 1M. *)
let target_vertices e = int_of_float (30.0 *. (float_of_int (max 1 e) ** 0.55))

let generate ~seed ~edges =
  let rng = Rng.create seed in
  let out = ref [] in
  let proteins = ref 25 in
  let endpoint emitted =
    if !proteins < target_vertices emitted then begin
      incr proteins;
      protein (!proteins - 1)
    end
    else protein (Rng.zipf rng ~n:!proteins ~s:0.85)
  in
  for i = 1 to edges do
    out := Update.add (Edge.of_strings "interacts" (endpoint i) (endpoint i)) :: !out
  done;
  Stream.of_updates (List.rev !out)
