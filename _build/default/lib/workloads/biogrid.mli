(** BioGRID-like protein-interaction stream.

    The stress test of §6.1/§6.3: a single vertex type (protein) and a
    single edge label ([interacts]), so {e every} update affects the whole
    query database.  Protein population grows slowly (vertex/edge ratio
    ≈ 0.06 at 1M edges, matching the paper's 63K/1M); interaction partners
    follow preferential attachment. *)

val edge_labels : string list
(** [["interacts"]]. *)

val generate : seed:int -> edges:int -> Tric_graph.Stream.t
