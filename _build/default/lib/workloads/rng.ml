type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next_int64 t =
  (* splitmix64 *)
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Keep the value within OCaml's 63-bit int range before reducing. *)
  let r = Int64.to_int (next_int64 t) land max_int in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound (* 2^53 *)

let bool t p = float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

(* Approximate Zipf sampling via the inverse-CDF of the continuous
   bounded Pareto analogue; exact enough for workload skew. *)
let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n <= 0";
  if n = 1 then 0
  else begin
    let u = float t 1.0 in
    if s = 1.0 then
      let k = (Float.of_int n +. 1.0) ** u in
      min (n - 1) (max 0 (int_of_float (k -. 1.0)))
    else begin
      let one_minus_s = 1.0 -. s in
      let nf = Float.of_int n in
      let h x = (x ** one_minus_s) /. one_minus_s in
      (* Invert the normalised integral of x^-s over [1, n+1]. *)
      let total = h (nf +. 1.0) -. h 1.0 in
      let x = ((u *. total) +. h 1.0) *. one_minus_s in
      let k = x ** (1.0 /. one_minus_s) in
      min (n - 1) (max 0 (int_of_float (k -. 1.0)))
    end
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
