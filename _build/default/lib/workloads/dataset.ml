open Tric_graph

type source =
  | Snb
  | Taxi
  | Biogrid

type params = {
  edges : int;
  qdb : int;
  avg_len : int;
  selectivity : float;
  overlap : float;
  seed : int;
}

let default_params =
  { edges = 100_000; qdb = 5_000; avg_len = 5; selectivity = 0.25; overlap = 0.35; seed = 7 }

type t = {
  name : string;
  stream : Stream.t;
  queries : Tric_query.Pattern.t list;
  final : Graph.t;
}

let source_name = function Snb -> "SNB" | Taxi -> "TAXI" | Biogrid -> "BioGRID"

let edge_labels = function
  | Snb -> Snb.edge_labels
  | Taxi -> Taxi.edge_labels
  | Biogrid -> Biogrid.edge_labels

let generator = function
  | Snb -> Snb.generate
  | Taxi -> Taxi.generate
  | Biogrid -> Biogrid.generate

let make source p =
  let stream = (generator source) ~seed:p.seed ~edges:p.edges in
  let final = Stream.final_graph stream in
  let rng = Rng.create (p.seed * 31 + 17) in
  let config =
    {
      Querygen.qdb = p.qdb;
      avg_len = p.avg_len;
      selectivity = p.selectivity;
      overlap = p.overlap;
      const_prob = Querygen.default.const_prob;
    }
  in
  let queries, planted = Querygen.generate rng ~graph:final ~config ~first_id:1 in
  let stream = Stream.concat stream (Stream.of_edges planted) in
  List.iter (fun e -> ignore (Graph.add_edge final e)) planted;
  { name = source_name source; stream; queries; final }

(* -- Persistence ------------------------------------------------------------ *)

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# tric dataset\nN\t%s\n" t.name;
      List.iter
        (fun q ->
          Printf.fprintf oc "Q\t%d\t%s\t%s\n" (Tric_query.Pattern.id q)
            (Tric_query.Pattern.name q)
            (Tric_query.Parse.pattern_to_string q))
        t.queries;
      Stream.iter
        (fun u -> Printf.fprintf oc "U\t%s\n" (Tric_query.Parse.update_to_string u))
        t.stream)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let name = ref "dataset" in
      let queries = ref [] in
      let updates = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           incr lineno;
           let line = input_line ic in
           if line = "" || line.[0] = '#' then ()
           else
             match String.split_on_char '\t' line with
             | [ "N"; n ] -> name := n
             | [ "Q"; id; qname; pattern ] -> (
               match int_of_string_opt id with
               | Some id ->
                 queries := Tric_query.Parse.pattern ~name:qname ~id pattern :: !queries
               | None -> failwith (Printf.sprintf "Dataset.load: bad query id, line %d" !lineno))
             | [ "U"; u ] -> updates := Tric_query.Parse.update u :: !updates
             | _ -> failwith (Printf.sprintf "Dataset.load: malformed line %d" !lineno)
         done
       with End_of_file -> ());
      let stream = Stream.of_updates (List.rev !updates) in
      {
        name = !name;
        stream;
        queries = List.rev !queries;
        final = Stream.final_graph stream;
      })
