(** Benchmark dataset assembly: stream + query database + final graph.

    Ties a stream generator to the query-set generator: generate the
    stream, replay it to the final graph, plant the query database in that
    graph, and append the planted cycle-closing edges to the stream. *)

open Tric_graph
open Tric_query

type source =
  | Snb
  | Taxi
  | Biogrid

type params = {
  edges : int;
  qdb : int;
  avg_len : int;
  selectivity : float;
  overlap : float;
  seed : int;
}

val default_params : params
(** The paper's baseline configuration, scaled by nothing: 100K edges,
    5K queries, l=5, σ=0.25, o=0.35, seed 7. *)

type t = {
  name : string;
  stream : Stream.t;  (** includes planted closing edges at the end *)
  queries : Pattern.t list;
  final : Graph.t;  (** final graph after the full stream *)
}

val source_name : source -> string
val edge_labels : source -> string list
val make : source -> params -> t

val save : t -> string -> unit
(** Persist queries and stream to a text file (one record per line), so a
    generated benchmark can be re-run bit-identically elsewhere. *)

val load : string -> t
(** Inverse of {!save}; the final graph is rebuilt by replaying the
    stream.  @raise Failure on a malformed file. *)
