lib/workloads/rng.ml: Array Float Int64 List
