lib/workloads/snb.ml: Edge List Printf Rng Stream Tric_graph Update
