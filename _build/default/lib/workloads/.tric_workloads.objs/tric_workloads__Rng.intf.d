lib/workloads/rng.mli:
