lib/workloads/biogrid.mli: Tric_graph
