lib/workloads/snb.mli: Tric_graph
