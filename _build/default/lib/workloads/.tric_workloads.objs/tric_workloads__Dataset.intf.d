lib/workloads/dataset.mli: Graph Pattern Stream Tric_graph Tric_query
