lib/workloads/dataset.ml: Biogrid Fun Graph List Printf Querygen Rng Snb Stream String Taxi Tric_graph Tric_query
