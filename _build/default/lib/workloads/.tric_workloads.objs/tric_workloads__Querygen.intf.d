lib/workloads/querygen.mli: Edge Graph Pattern Rng Tric_graph Tric_query
