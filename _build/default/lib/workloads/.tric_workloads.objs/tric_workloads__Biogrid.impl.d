lib/workloads/biogrid.ml: Edge List Printf Rng Stream Tric_graph Update
