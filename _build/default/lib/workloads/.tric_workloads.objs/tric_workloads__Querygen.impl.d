lib/workloads/querygen.ml: Array Edge Graph Label List Pattern Printf Rng Term Tric_graph Tric_query
