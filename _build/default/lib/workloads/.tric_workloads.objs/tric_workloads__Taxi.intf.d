lib/workloads/taxi.mli: Tric_graph
