lib/workloads/taxi.ml: Edge List Printf Rng Stream Tric_graph Update
