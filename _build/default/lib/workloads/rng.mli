(** Deterministic splitmix64 PRNG.

    Workload generation must be reproducible across runs and independent of
    the OCaml stdlib's generator (which other code may perturb), so the
    generators carry their own state. *)

type t

val create : int -> t
(** Seeded generator.  Equal seeds give equal sequences. *)

val split : t -> t
(** An independent generator derived from (and advancing) [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** Uniform in [0, bound). *)

val bool : t -> float -> bool
(** [bool t p] is true with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element.  @raise Invalid_argument on empty array. *)

val pick_list : t -> 'a list -> 'a

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [0, n): rank [k] has probability proportional
    to [1 / (k+1)^s].  Uses rejection-inversion; cheap enough for stream
    generation. *)

val shuffle : t -> 'a array -> unit
