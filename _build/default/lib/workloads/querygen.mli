(** Query-set generation (§6.1 "Query Set Configuration").

    Builds a query database of chains, stars and cycles (equiprobable, as
    in the paper) planted in the final graph of a stream so that the
    benchmark parameters hold:

    - [avg_len] ([l]): average edges per query graph pattern;
    - [selectivity] (σ): fraction of queries ultimately satisfied by the
      stream — satisfied queries are extracted from actual final-graph
      structure; the rest are the same shapes made unsatisfiable by
      redirecting one endpoint to a fresh, never-occurring constant;
    - [overlap] (o): fraction of queries that reuse the structure of an
      earlier query (a chain prefix, a star center, or a cycle's label
      word verbatim), producing exactly the shared sub-patterns TRIC
      clusters on.

    Cycle queries need a closing edge that streams rarely produce, so the
    generator returns {e planted edges} to append to the stream (they
    complete the planted cycles). *)

open Tric_graph
open Tric_query

type config = {
  qdb : int;
  avg_len : int;
  selectivity : float;
  overlap : float;
  const_prob : float;  (** probability a chain/star endpoint stays a constant *)
}

val default : config
(** The paper's baseline: qdb=5000, avg_len=5, selectivity=0.25,
    overlap=0.35, const_prob=0.4. *)

val generate :
  Rng.t -> graph:Graph.t -> config:config -> first_id:int -> Pattern.t list * Edge.t list
(** [generate rng ~graph ~config ~first_id] returns the query patterns
    (ids [first_id ..]) and the planted closing edges to append to the
    stream.  [graph] is the stream's final graph. *)
