open Tric_graph

type probe = Label.t -> Tuple.t list

type t = {
  width : int;
  cache : bool;
  tuples : unit Tuple.Tbl.t;
  indexes : (int, Tuple.t list ref Label.Tbl.t) Hashtbl.t; (* cache mode only *)
  mutable rebuilds : int;
}

let create ?(cache = false) ~width () =
  {
    width;
    cache;
    tuples = Tuple.Tbl.create 64;
    indexes = Hashtbl.create 4;
    rebuilds = 0;
  }

let width r = r.width
let cardinality r = Tuple.Tbl.length r.tuples
let is_empty r = cardinality r = 0
let mem r t = Tuple.Tbl.mem r.tuples t

let index_add idx col t =
  let key = Tuple.get t col in
  match Label.Tbl.find_opt idx key with
  | Some cell -> cell := t :: !cell
  | None -> Label.Tbl.add idx key (ref [ t ])

let index_remove idx col t =
  let key = Tuple.get t col in
  match Label.Tbl.find_opt idx key with
  | Some cell -> cell := List.filter (fun t' -> not (Tuple.equal t t')) !cell
  | None -> ()

let insert r t =
  if Array.length t <> r.width then invalid_arg "Relation.insert: width mismatch";
  if Tuple.Tbl.mem r.tuples t then false
  else begin
    Tuple.Tbl.add r.tuples t ();
    Hashtbl.iter (fun col idx -> index_add idx col t) r.indexes;
    true
  end

let insert_all r ts = List.filter (fun t -> insert r t) ts

let remove r t =
  if Tuple.Tbl.mem r.tuples t then begin
    Tuple.Tbl.remove r.tuples t;
    Hashtbl.iter (fun col idx -> index_remove idx col t) r.indexes;
    true
  end
  else false

let iter f r = Tuple.Tbl.iter (fun t () -> f t) r.tuples
let fold f r init = Tuple.Tbl.fold (fun t () acc -> f t acc) r.tuples init
let to_list r = fold (fun t acc -> t :: acc) r []

let remove_if r pred =
  let doomed = fold (fun t acc -> if pred t then t :: acc else acc) r [] in
  List.iter (fun t -> ignore (remove r t)) doomed;
  List.length doomed

let build_table r col =
  let idx = Label.Tbl.create (max 16 (cardinality r)) in
  iter (fun t -> index_add idx col t) r;
  idx

let probe_of idx key = match Label.Tbl.find_opt idx key with Some cell -> !cell | None -> []

let index_on r ~col =
  if col < 0 || col >= r.width then invalid_arg "Relation.index_on: bad column";
  if r.cache then begin
    let idx =
      match Hashtbl.find_opt r.indexes col with
      | Some idx -> idx
      | None ->
        let idx = build_table r col in
        r.rebuilds <- r.rebuilds + 1;
        Hashtbl.add r.indexes col idx;
        idx
    in
    probe_of idx
  end
  else begin
    let idx = build_table r col in
    r.rebuilds <- r.rebuilds + 1;
    probe_of idx
  end

let probe_scan r ~col value =
  fold (fun t acc -> if Label.equal (Tuple.get t col) value then t :: acc else acc) r []

let scan_probing r ~col probe f =
  iter
    (fun t ->
      match probe (Tuple.get t col) with
      | [] -> ()
      | hits -> List.iter (fun hit -> f t hit) hits)
    r

let stats_rebuilds r = r.rebuilds

let clear r =
  Tuple.Tbl.reset r.tuples;
  Hashtbl.reset r.indexes

let pp fmt r =
  Format.fprintf fmt "@[<v>relation w=%d |%d|" r.width (cardinality r);
  iter (fun t -> Format.fprintf fmt "@,  %a" Tuple.pp t) r;
  Format.fprintf fmt "@]"
