lib/rel/tuple.mli: Edge Format Hashtbl Label Tric_graph
