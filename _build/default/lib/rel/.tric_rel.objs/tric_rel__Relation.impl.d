lib/rel/relation.ml: Array Format Hashtbl Label List Tric_graph Tuple
