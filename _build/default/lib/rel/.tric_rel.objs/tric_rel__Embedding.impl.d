lib/rel/embedding.ml: Array Buffer Format Fun Hashtbl Label List Set Stdlib Tric_graph Tuple
