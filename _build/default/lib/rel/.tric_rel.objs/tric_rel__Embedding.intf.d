lib/rel/embedding.mli: Format Hashtbl Label Set Tric_graph Tuple
