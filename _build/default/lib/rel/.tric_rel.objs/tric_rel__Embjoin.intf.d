lib/rel/embjoin.mli: Embedding
