lib/rel/tuple.ml: Array Edge Format Hashtbl Label Stdlib Tric_graph
