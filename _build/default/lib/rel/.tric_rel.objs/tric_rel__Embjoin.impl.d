lib/rel/embjoin.ml: Embedding Hashtbl Int List Option Set
