lib/rel/relation.mli: Format Label Tric_graph Tuple
