lib/baselines/invidx.ml: Array Cover Edge Ekey Embedding Embjoin Fun Hashtbl Label List Path Pattern Printf Relation Tric_graph Tric_query Tric_rel Tuple Update
