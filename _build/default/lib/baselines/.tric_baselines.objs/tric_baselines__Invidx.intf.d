lib/baselines/invidx.mli: Ekey Embedding Path Pattern Tric_graph Tric_query Tric_rel Update
