lib/engine/naive.mli: Embedding Graph Pattern Report Tric_graph Tric_query Tric_rel Update
