lib/engine/naive.ml: Array Edge Embedding Graph Hashtbl Label List Pattern Report Term Tric_graph Tric_query Tric_rel Update
