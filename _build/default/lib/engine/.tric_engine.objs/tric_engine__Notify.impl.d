lib/engine/notify.ml: Embedding Hashtbl List Matcher Pattern Printf Stream String Tric_graph Tric_query Tric_rel Update
