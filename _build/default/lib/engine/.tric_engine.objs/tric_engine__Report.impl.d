lib/engine/report.ml: Embedding Format List Tric_rel
