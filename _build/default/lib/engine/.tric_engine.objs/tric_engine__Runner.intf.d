lib/engine/runner.mli: Format Matcher Pattern Stream Tric_graph Tric_query
