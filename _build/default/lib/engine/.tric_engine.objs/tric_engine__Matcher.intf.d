lib/engine/matcher.mli: Embedding Naive Pattern Report Tric_baselines Tric_core Tric_graph Tric_graphdb Tric_query Tric_rel Update
