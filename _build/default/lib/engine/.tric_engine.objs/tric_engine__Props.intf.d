lib/engine/props.mli: Embedding Label Matcher Pattern Report Tric_graph Tric_query Tric_rel Update
