lib/engine/engines.mli: Matcher
