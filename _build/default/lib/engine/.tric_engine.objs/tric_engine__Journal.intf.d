lib/engine/journal.mli: Matcher Pattern Report Tric_graph Tric_query Update
