lib/engine/window.ml: Edge Matcher Queue Tric_graph Update
