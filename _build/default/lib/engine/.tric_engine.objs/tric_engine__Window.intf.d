lib/engine/window.mli: Matcher Pattern Report Tric_graph Tric_query Update
