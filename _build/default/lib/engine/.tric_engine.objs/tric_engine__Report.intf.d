lib/engine/report.mli: Embedding Format Tric_rel
