lib/engine/runner.ml: Array Format Hashtbl List Logs Matcher Stream Tric_graph Unix
