lib/engine/props.ml: Embedding Hashtbl Label List Matcher Pattern String Tric_graph Tric_query Tric_rel
