lib/engine/engines.ml: Hashtbl List Matcher Naive Obj Printf Tric_baselines Tric_core Tric_graphdb Tric_query Window
