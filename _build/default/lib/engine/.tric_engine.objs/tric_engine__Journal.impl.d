lib/engine/journal.ml: Fun Logs Matcher Parse Pattern Printf String Sys Tric_graph Tric_query
