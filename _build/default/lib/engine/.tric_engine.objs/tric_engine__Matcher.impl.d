lib/engine/matcher.ml: Embedding List Naive Obj Pattern Report Tric_baselines Tric_core Tric_graph Tric_graphdb Tric_query Tric_rel Update
