lib/engine/notify.mli: Embedding Matcher Pattern Stream Tric_graph Tric_query Tric_rel Update
