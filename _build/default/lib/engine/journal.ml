open Tric_query

let log_src = Logs.Src.create "tric.journal" ~doc:"write-ahead journal"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  inner : Matcher.t;
  oc : out_channel;
  mutable count : int;
  replayed : int;
}

let replay_line engine lineno line =
  if line = "" || line.[0] = '#' then ()
  else
    match String.split_on_char '\t' line with
    | [ "Q"; id; qname; pattern ] -> (
      match int_of_string_opt id with
      | Some id -> engine.Matcher.add_query (Parse.pattern ~name:qname ~id pattern)
      | None -> failwith (Printf.sprintf "Journal: bad query id on line %d" lineno))
    | [ "U"; u ] -> ignore (engine.Matcher.handle_update (Parse.update u))
    | _ -> failwith (Printf.sprintf "Journal: malformed line %d" lineno)

let open_ ~path make_engine =
  let engine = make_engine () in
  let replayed = ref 0 in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        try
          while true do
            let line = input_line ic in
            incr replayed;
            replay_line engine !replayed line
          done
        with End_of_file -> ())
  end;
  if !replayed > 0 then
    Log.info (fun m -> m "recovered %d journal records from %s" !replayed path);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { inner = engine; oc; count = !replayed; replayed = !replayed }

let log t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  t.count <- t.count + 1

let add_query t pattern =
  log t
    (Printf.sprintf "Q\t%d\t%s\t%s" (Pattern.id pattern) (Pattern.name pattern)
       (Parse.pattern_to_string pattern));
  t.inner.Matcher.add_query pattern

let handle_update t (u : Tric_graph.Update.t) =
  log t (Printf.sprintf "U\t%s" (Parse.update_to_string u));
  t.inner.Matcher.handle_update u

let engine t = t.inner
let entries t = t.count
let recovered t = t.replayed
let close t = close_out t.oc
