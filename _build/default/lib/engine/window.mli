(** Sliding-window evaluation.

    Related work the paper discusses ([15], [28], [41]) evaluates
    continuous queries over a {e window} of recent updates rather than the
    whole history; the paper's §4.3 deletion support is exactly what makes
    windows exact instead of approximate.  This wrapper keeps the last
    [window] edge additions alive in the wrapped engine and retracts the
    oldest edge (as a §4.3 deletion) whenever the window slides past it —
    so a query is satisfied iff its embedding lies entirely within the
    window, with no false positives. *)

open Tric_graph
open Tric_query

type t

val create : window:int -> Matcher.t -> t
(** [window] is the number of most-recent distinct edges retained.
    @raise Invalid_argument if [window <= 0]. *)

val add_query : t -> Pattern.t -> unit

val handle_update : t -> Update.t -> Report.t
(** Feed one update.  Additions beyond capacity evict (delete) the oldest
    live edge first.  A duplicate of a live edge refreshes its position in
    the window.  Explicit removals pass through and free their slot. *)

val live_edges : t -> int
val engine : t -> Matcher.t
