open Tric_graph

(* The window is a doubly-linked order maintained as a queue of edges plus
   a liveness table.  Refreshing a duplicate marks the old queue cell dead
   (lazy deletion) instead of scanning the queue. *)
type t = {
  window : int;
  inner : Matcher.t;
  order : Edge.t Queue.t;
  live : int Edge.Tbl.t; (* edge -> number of queue cells, live iff > 0 *)
  mutable live_count : int;
}

let create ~window inner =
  if window <= 0 then invalid_arg "Window.create: window <= 0";
  { window; inner; order = Queue.create (); live = Edge.Tbl.create 256; live_count = 0 }

let add_query t = t.inner.Matcher.add_query

let cells t e = match Edge.Tbl.find_opt t.live e with Some n -> n | None -> 0

(* Pop queue cells until one corresponds to a live edge; retract it. *)
let rec evict_oldest t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some e ->
    let n = cells t e in
    if n > 1 then begin
      (* Stale cell: the edge was refreshed later in the queue. *)
      Edge.Tbl.replace t.live e (n - 1);
      evict_oldest t
    end
    else if n = 1 then begin
      Edge.Tbl.remove t.live e;
      t.live_count <- t.live_count - 1;
      ignore (t.inner.Matcher.handle_update (Update.remove e))
    end
    else evict_oldest t

let handle_update t u =
  match u with
  | Update.Remove e ->
    if cells t e > 0 then begin
      (* Queue cells stay behind as stale entries; evict_oldest skips
         them. *)
      Edge.Tbl.remove t.live e;
      t.live_count <- t.live_count - 1
    end;
    t.inner.Matcher.handle_update u
  | Update.Add e ->
    let already_live = cells t e > 0 in
    if already_live then begin
      (* Refresh: enqueue a newer cell; the older becomes stale. *)
      Queue.add e t.order;
      Edge.Tbl.replace t.live e (cells t e + 1);
      (* No new matches: the edge is already in the engine. *)
      t.inner.Matcher.handle_update u
    end
    else begin
      if t.live_count >= t.window then evict_oldest t;
      Queue.add e t.order;
      Edge.Tbl.replace t.live e 1;
      t.live_count <- t.live_count + 1;
      t.inner.Matcher.handle_update u
    end

let live_edges t = t.live_count
let engine t = t.inner
