(** Brute-force reference matcher (test oracle).

    Keeps the whole graph, and on each addition enumerates — by plain
    backtracking over adjacency — every total homomorphic embedding of each
    registered query that uses the new edge.  It shares no code with the
    engines under test, so agreement is meaningful evidence. *)

open Tric_graph
open Tric_query
open Tric_rel

type t

val create : unit -> t
val add_query : t -> Pattern.t -> unit
val remove_query : t -> int -> bool
val num_queries : t -> int
val handle_update : t -> Update.t -> Report.t
val current_matches : t -> int -> Embedding.t list
val graph : t -> Graph.t

val embeddings_in : Graph.t -> Pattern.t -> Embedding.t list
(** All total embeddings of a pattern in a static graph. *)
