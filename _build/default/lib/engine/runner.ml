open Tric_graph

type result = {
  engine : string;
  total_updates : int;
  updates_processed : int;
  timed_out : bool;
  index_time_s : float;
  answer_time_s : float;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  max_ms : float;
  matches : int;
  satisfied_queries : int;
  memory_words : int;
  checkpoints : (int * float) list;
}

let log_src = Logs.Src.create "tric.runner" ~doc:"stream replay harness"

module Log = (val Logs.src_log log_src : Logs.LOG)

let now () = Unix.gettimeofday ()

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float (q *. float_of_int (n - 1))))

let run ?(budget_s = infinity) ?(checkpoints = []) ?(measure_memory = true) ~engine
    ~queries ~stream () =
  let t0 = now () in
  List.iter engine.Matcher.add_query queries;
  let index_time_s = now () -. t0 in
  let total = Stream.length stream in
  let latencies = Array.make total 0.0 in
  let satisfied = Hashtbl.create 256 in
  let matches = ref 0 in
  let processed = ref 0 in
  let answer_time = ref 0.0 in
  let timed_out = ref false in
  let cps = ref (List.sort compare checkpoints) in
  let reached = ref [] in
  (try
     Stream.iter
       (fun u ->
         if !answer_time > budget_s then begin
           timed_out := true;
           Log.info (fun m ->
               m "%s exceeded %.1fs budget after %d/%d updates" engine.Matcher.name
                 budget_s !processed total);
           raise Exit
         end;
         let t = now () in
         let report = engine.Matcher.handle_update u in
         let dt = now () -. t in
         latencies.(!processed) <- dt *. 1000.0;
         answer_time := !answer_time +. dt;
         incr processed;
         List.iter
           (fun (qid, embs) ->
             Hashtbl.replace satisfied qid ();
             matches := !matches + List.length embs)
           report;
         (match !cps with
         | cp :: rest when !processed >= cp ->
           reached := (!processed, !answer_time) :: !reached;
           cps := rest
         | _ -> ()))
       stream
   with Exit -> ());
  let used = Array.sub latencies 0 !processed in
  Array.sort compare used;
  let mean_ms =
    if !processed = 0 then 0.0 else !answer_time *. 1000.0 /. float_of_int !processed
  in
  {
    engine = engine.Matcher.name;
    total_updates = total;
    updates_processed = !processed;
    timed_out = !timed_out;
    index_time_s;
    answer_time_s = !answer_time;
    mean_ms;
    p50_ms = percentile used 0.5;
    p95_ms = percentile used 0.95;
    max_ms = percentile used 1.0;
    matches = !matches;
    satisfied_queries = Hashtbl.length satisfied;
    memory_words = (if measure_memory then engine.Matcher.memory_words () else 0);
    checkpoints = List.rev !reached;
  }

let segment_means_ms r =
  let rec go prev_n prev_t = function
    | [] -> []
    | (n, t) :: tl ->
      let mean =
        if n > prev_n then (t -. prev_t) *. 1000.0 /. float_of_int (n - prev_n) else 0.0
      in
      (n, mean) :: go n t tl
  in
  go 0 0.0 r.checkpoints

let pp_result fmt r =
  Format.fprintf fmt
    "%-8s %7d/%d upd%s  index %.3fs  answer %.3fs  mean %.4f ms/upd  p95 %.4f  matches %d (%d queries)  mem %dw"
    r.engine r.updates_processed r.total_updates
    (if r.timed_out then "*" else "")
    r.index_time_s r.answer_time_s r.mean_ms r.p95_ms r.matches r.satisfied_queries
    r.memory_words
