(* Network monitoring with the extension features:

   - continuous sub-graph queries authored in Cypher, evaluated by TRIC
     through the pub/sub layer;
   - a sliding window keeping only recent traffic (exact, via §4.3
     deletions);
   - the §7 analytics query classes: clustering coefficient, bounded
     reachability watches, betweenness top-k.

   The scenario is the paper's cyber-security use case: flows between
   hosts, with patterns for lateral movement and exfiltration staging.

   Run with: dune exec examples/network_analytics.exe *)

open Tric_graph
module E = Tric_engine
module A = Tric_analytics

let () =
  (* Continuous queries, written in Cypher, evaluated by TRIC+. *)
  let lateral =
    Tric_graphdb.Continuous.pattern_of_cypher ~name:"lateral-movement" ~id:0
      "MATCH (a)-[:ssh]->(b)-[:ssh]->(c)-[:ssh]->(d) RETURN a"
  in
  let staging =
    Tric_graphdb.Continuous.pattern_of_cypher ~name:"exfil-staging" ~id:0
      "MATCH (h)-[:reads]->(db {name: 'crown_jewels'}), (h)-[:connectsTo]->(ext {name: 'unknown_ext'}) RETURN h"
  in
  let notifier = E.Notify.create (E.Engines.tric ~cache:true ()) in
  let alerts = ref 0 in
  let on_alert (ev : E.Notify.event) =
    incr alerts;
    Format.printf "  ALERT %-16s (update #%d): %d embedding(s)@."
      (E.Notify.subscription_name ev.E.Notify.subscription)
      ev.E.Notify.seqno
      (List.length ev.E.Notify.embeddings)
  in
  ignore (E.Notify.subscribe notifier ~pattern:lateral on_alert);
  ignore (E.Notify.subscribe notifier ~pattern:staging on_alert);

  (* Analytics running alongside. *)
  let metrics = A.Metrics.create () in
  let reach = A.Reachability.create () in
  let perimeter_watch =
    A.Reachability.watch reach ~src:(Label.intern "internet") ~dst:(Label.intern "dbserver")
      ~k:4
  in
  let flows =
    [
      "internet -http-> web1";
      "web1 -ssh-> app1";
      "app1 -ssh-> app2";
      "laptop7 -ssh-> web1";
      "app2 -reads-> crown_jewels";
      (* lateral movement chain completes here: *)
      "app2 -ssh-> dbserver";
      "dbserver -reads-> crown_jewels";
      "app2 -connectsTo-> unknown_ext";
      (* exfil staging needs reads + connectsTo on the same host: *)
      "app2 -reads-> crown_jewels";
      "web1 -http-> internet";
    ]
  in
  Format.printf "=== streaming %d flow events ===@." (List.length flows);
  List.iteri
    (fun i text ->
      let u = Tric_query.Parse.update text in
      Format.printf "#%d %a@." i Update.pp u;
      ignore (E.Notify.publish notifier u);
      A.Metrics.handle_update metrics u;
      List.iter
        (function
          | A.Reachability.Reached w ->
            Format.printf "  PERIMETER: %s now reaches %s within %d hops@."
              (Label.to_string (A.Reachability.watch_src w))
              (Label.to_string (A.Reachability.watch_dst w))
              (A.Reachability.watch_k w)
          | A.Reachability.Lost _ -> Format.printf "  PERIMETER: path broken@.")
        (A.Reachability.handle_update reach u))
    flows;
  ignore perimeter_watch;

  Format.printf "@.=== post-stream analytics ===@.";
  Format.printf "vertices: %d, adjacent pairs: %d, triangles: %d@."
    (A.Metrics.num_vertices metrics)
    (A.Metrics.num_adjacent_pairs metrics)
    (A.Metrics.triangles metrics);
  Format.printf "global clustering: %.3f@." (A.Metrics.global_clustering metrics);
  let g =
    Stream.final_graph
      (Stream.of_updates (List.map Tric_query.Parse.update flows))
  in
  Format.printf "betweenness top-3:@.";
  List.iter
    (fun (v, score) -> Format.printf "  %-12s %.2f@." (Label.to_string v) score)
    (A.Centrality.top_k g 3);

  (* The same pattern set over a sliding window of the last 4 flows: old
     structure expires, so the lateral-movement alert does not fire when
     its first hop has already slid out. *)
  Format.printf "@.=== same stream through a 4-update sliding window ===@.";
  let w = E.Window.create ~window:4 (E.Engines.tric ~cache:true ()) in
  E.Window.add_query w (Tric_query.Pattern.with_id lateral 1);
  let windowed_alerts = ref 0 in
  List.iter
    (fun text ->
      let r = E.Window.handle_update w (Tric_query.Parse.update text) in
      windowed_alerts := !windowed_alerts + E.Report.total_matches r)
    flows;
  Format.printf "full-history lateral+staging alerts: %d; windowed lateral alerts: %d@."
    !alerts !windowed_alerts
