examples/spam_detection.mli:
