examples/protein_interactions.mli:
