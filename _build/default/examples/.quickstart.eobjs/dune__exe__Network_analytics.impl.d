examples/network_analytics.ml: Format Label List Stream Tric_analytics Tric_engine Tric_graph Tric_graphdb Tric_query Update
