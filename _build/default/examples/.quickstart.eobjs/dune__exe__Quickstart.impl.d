examples/quickstart.ml: Embedding Format List Parse Pattern Tric_core Tric_graph Tric_query Tric_rel
