examples/spam_detection.ml: Embedding Format List Parse Tric_core Tric_graph Tric_query Tric_rel
