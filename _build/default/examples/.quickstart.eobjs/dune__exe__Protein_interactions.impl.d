examples/protein_interactions.ml: Array Embedding Format List Parse Pattern Printf Tric_core Tric_graph Tric_query Tric_rel Tric_workloads
