examples/traffic_monitoring.ml: Format List Parse Tric_core Tric_engine Tric_graph Tric_query Tric_workloads
