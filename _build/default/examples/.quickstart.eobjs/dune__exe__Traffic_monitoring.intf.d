examples/traffic_monitoring.mli:
