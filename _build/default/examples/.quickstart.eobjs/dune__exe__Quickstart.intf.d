examples/quickstart.mli:
