(* Traffic monitoring over a taxi-ride stream (the paper's TAXI dataset,
   §6.1): continuous queries over ride events detect operational patterns
   the moment the closing edge arrives.

   This example also demonstrates running the same query set on two
   engines side by side and comparing their per-update cost — the
   experiment harness in miniature.

   Run with: dune exec examples/traffic_monitoring.exe *)

open Tric_query
module E = Tric_engine
module W = Tric_workloads

let queries () =
  [
    (* A medallion working the airport zone: picked a ride up at zone0 and
       dropped it off at zone1 (two fixed hot zones). *)
    Parse.pattern ~name:"airport-shuttle" ~id:1
      "?med -drove-> ?ride; ?ride -pickedUpAt-> zone0; ?ride -droppedOffAt-> zone1";
    (* Round trip: some ride returns to its own pickup zone. *)
    Parse.pattern ~name:"round-trip" ~id:2
      "?ride -pickedUpAt-> ?z; ?ride -droppedOffAt-> ?z";
    (* A specific medallion's disputed card payments. *)
    Parse.pattern ~name:"disputed-payment" ~id:3
      "med0 -drove-> ?ride -paidWith-> disputed";
    (* Driver/owner pairing: license lic0 operating a ride of med1. *)
    Parse.pattern ~name:"fleet-pairing" ~id:4
      "med1 -drove-> ?ride; lic0 -operated-> ?ride";
  ]

let () =
  let stream = W.Taxi.generate ~seed:42 ~edges:20_000 in
  Format.printf "streaming %d taxi events against %d continuous queries@.@."
    (Tric_graph.Stream.length stream) (List.length (queries ()));
  let engines = [ E.Engines.tric ~cache:true (); E.Engines.inv () ] in
  List.iter
    (fun engine ->
      let r =
        E.Runner.run ~budget_s:30.0 ~engine ~queries:(queries ()) ~stream ()
      in
      Format.printf "%a@." E.Runner.pp_result r)
    engines;
  (* Show a few concrete notifications from a fresh TRIC instance. *)
  Format.printf "@.sample notifications:@.";
  let t = Tric_core.Tric.create ~cache:true () in
  List.iter (Tric_core.Tric.add_query t) (queries ());
  let shown = ref 0 in
  (try
     Tric_graph.Stream.iter
       (fun u ->
         List.iter
           (fun (qid, embeddings) ->
             if !shown < 8 then begin
               incr shown;
               Format.printf "  query %d fired with %d new match(es) on %a@." qid
                 (List.length embeddings) Tric_graph.Update.pp u
             end
             else raise Exit)
           (fst (Tric_core.Tric.handle_update t u)))
       stream
   with Exit -> ())
