(* Quickstart: register two continuous queries, stream a handful of graph
   updates, and print the notifications TRIC produces.

   Run with: dune exec examples/quickstart.exe *)

open Tric_query
open Tric_rel
module Tric = Tric_core.Tric

let () =
  (* 1. Create a TRIC engine (cache:true gives TRIC+, the recommended
        configuration). *)
  let engine = Tric.create ~cache:true () in

  (* 2. Register continuous query graph patterns.  Terms starting with '?'
        are variables; everything else is a constant vertex label.  The
        same variable name denotes the same vertex within one query. *)
  let checkin_query =
    (* "Notify me when two people who know each other check in at the same
       place" — the paper's Fig. 3. *)
    Parse.pattern ~name:"friends-checkin" ~id:1
      "?p1 -knows-> ?p2; ?p1 -checksIn-> ?plc; ?p2 -checksIn-> ?plc"
  in
  let moderator_query =
    (* "Notify me when a moderator of any forum posts pst1" (paper Fig. 4,
       Q4 without the containedIn hop). *)
    Parse.pattern ~name:"moderator-posts" ~id:2 "?f -hasMod-> ?p -posted-> pst1"
  in
  Tric.add_query engine checkin_query;
  Tric.add_query engine moderator_query;

  (* 3. Stream updates.  [handle_update] returns, per satisfied query, the
        new embeddings this update created. *)
  let stream =
    [
      "P1 -knows-> P2";
      "P1 -checksIn-> rio";
      "forum1 -hasMod-> P3";
      "P2 -checksIn-> rio"; (* completes query 1 *)
      "P3 -posted-> pst1"; (* completes query 2 *)
      "P4 -knows-> P1";
      "P4 -checksIn-> rio"; (* completes query 1 again, via P4-P1 *)
    ]
  in
  List.iter
    (fun text ->
      let update = Parse.update text in
      Format.printf "update %a@." Tric_graph.Update.pp update;
      List.iter
        (fun (qid, embeddings) ->
          let name = Pattern.name (if qid = 1 then checkin_query else moderator_query) in
          List.iter
            (fun emb -> Format.printf "  -> notification [%s]: %a@." name Embedding.pp emb)
            embeddings)
        (fst (Tric.handle_update engine update)))
    stream;

  (* 4. Probe the full current result of a query at any time. *)
  Format.printf "@.query 1 currently has %d total match(es)@."
    (List.length (Tric.current_matches engine 1))
