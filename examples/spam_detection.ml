(* Spam detection in a social network — the paper's motivating example
   (Fig. 1): users sharing and liking content that links to flagged
   domains.

   Two patterns are monitored simultaneously:
   (a) a clique of users who know each other and share/like each other's
       posts linking to a flagged domain;
   (b) users sharing the same flagged post from the same IP address.

   The two queries share the sub-pattern "?user -shares-> ?post -links->
   ?domain", which TRIC's trie clusters so the shared work is done once —
   the point of the paper.

   Run with: dune exec examples/spam_detection.exe *)

open Tric_query
open Tric_rel
module Tric = Tric_core.Tric
module Trie = Tric_core.Trie

let () =
  let engine = Tric.create ~cache:true () in
  (* Fig. 1(a): clique of mutual friends promoting a flagged domain. *)
  let clique =
    Parse.pattern ~name:"clique-spam" ~id:1
      "?u1 -knows-> ?u2; ?u2 -knows-> ?u1; ?u1 -shares-> ?post -links-> flagged.example; \
       ?u2 -likes-> ?post"
  in
  (* Fig. 1(b): several accounts sharing the same flagged post from one
     IP. *)
  let same_ip =
    Parse.pattern ~name:"same-ip-spam" ~id:2
      "?u1 -shares-> ?post -links-> flagged.example; ?u2 -shares-> ?post; \
       ?u1 -usesIp-> ?ip; ?u2 -usesIp-> ?ip"
  in
  Tric.add_query engine clique;
  Tric.add_query engine same_ip;

  (* The shared "shares . links" sub-pattern is indexed once: inspect the
     forest. *)
  let forest = Tric.forest engine in
  Format.printf "trie forest: %d tries, %d nodes for %d covering paths@.@."
    (Trie.num_tries forest) (Trie.num_nodes forest)
    (List.length (Tric.covering_paths engine 1)
    + List.length (Tric.covering_paths engine 2));

  let events =
    [
      (* Benign background activity. *)
      "alice -knows-> bob";
      "bob -knows-> alice";
      "alice -shares-> postA";
      "postA -links-> news.example";
      (* Malicious clique: mutual friends, flagged content, mutual likes. *)
      "mallory -knows-> trudy";
      "trudy -knows-> mallory";
      "mallory -shares-> postS";
      "postS -links-> flagged.example";
      "trudy -likes-> postS";
      (* Same-IP amplification ring. *)
      "sock1 -shares-> postS";
      "sock2 -shares-> postS";
      "sock1 -usesIp-> 10.0.0.66";
      "sock2 -usesIp-> 10.0.0.66";
    ]
  in
  List.iter
    (fun text ->
      let u = Parse.update text in
      let report, _retractions = Tric.handle_update engine u in
      if report = [] then Format.printf "  %a@." Tric_graph.Update.pp u
      else begin
        Format.printf "! %a@." Tric_graph.Update.pp u;
        List.iter
          (fun (qid, embeddings) ->
            List.iter
              (fun emb ->
                Format.printf "    ALERT %s: %a@."
                  (if qid = 1 then "clique-spam" else "same-ip-spam")
                  Embedding.pp emb)
              embeddings)
          report
      end)
    events;
  Format.printf "@.note: 'same-ip-spam' also fires with ?u1 = ?u2 — homomorphic@.";
  Format.printf "semantics (the paper's join algebra) allow variables to coincide.@."
