(* Protein-interaction motif detection — the paper's BioGRID stress test
   (§6.3): one vertex type, one edge label, so every update affects every
   query.  Continuous queries watch for interaction motifs around proteins
   of interest: triangles (stable complexes), hub pairs, and bridges.

   Run with: dune exec examples/protein_interactions.exe *)

open Tric_query
open Tric_rel
module Tric = Tric_core.Tric
module W = Tric_workloads

let () =
  let stream = W.Biogrid.generate ~seed:11 ~edges:8_000 in
  let final = Tric_graph.Stream.final_graph stream in
  Format.printf "BioGRID-like stream: %d interactions over %d proteins@.@."
    (Tric_graph.Graph.num_edges final)
    (Tric_graph.Graph.num_vertices final);

  (* Anchor the motifs on the most connected protein (the "bait" a lab
     would watch). *)
  let bait =
    List.fold_left
      (fun best v ->
        if
          Tric_graph.Graph.out_degree final v + Tric_graph.Graph.in_degree final v
          > Tric_graph.Graph.out_degree final best + Tric_graph.Graph.in_degree final best
        then v
        else best)
      (List.hd (Tric_graph.Graph.vertices final))
      (Tric_graph.Graph.vertices final)
  in
  let b = Tric_graph.Label.to_string bait in
  Format.printf "bait protein: %s@.@." b;

  let engine = Tric.create ~cache:true () in
  let triangle =
    (* A feedback triangle through the bait: bait -> ?a -> ?b -> bait. *)
    Parse.pattern ~name:"triangle" ~id:1
      (Printf.sprintf "%s -interacts-> ?a -interacts-> ?x; ?x -interacts-> %s" b b)
  in
  let two_hop =
    (* Indirect partners: who reaches the bait in exactly two hops? *)
    Parse.pattern ~name:"two-hop" ~id:2
      (Printf.sprintf "?src -interacts-> ?mid -interacts-> %s" b)
  in
  let self_loop =
    (* Homodimers: a protein interacting with itself. *)
    Parse.pattern ~name:"homodimer" ~id:3 "?p -interacts-> ?p"
  in
  List.iter (Tric.add_query engine) [ triangle; two_hop; self_loop ];

  let fired = Array.make 4 0 in
  let first_hits = ref [] in
  Tric_graph.Stream.iter
    (fun u ->
      List.iter
        (fun (qid, embeddings) ->
          if fired.(qid) = 0 then first_hits := (qid, u, List.hd embeddings) :: !first_hits;
          fired.(qid) <- fired.(qid) + List.length embeddings)
        (fst (Tric.handle_update engine u)))
    stream;

  List.iter
    (fun (q : Pattern.t) ->
      Format.printf "%-10s total matches: %d@." (Pattern.name q) fired.(Pattern.id q))
    [ triangle; two_hop; self_loop ];
  Format.printf "@.first firing of each motif:@.";
  List.iter
    (fun (qid, u, emb) ->
      Format.printf "  motif %d on %a: %a@." qid Tric_graph.Update.pp u Embedding.pp emb)
    (List.rev !first_hits)
