(* AST domain-ownership checker driver.

   Usage: tric_check [--self-test [DIR]] [DIR ...]
   - --self-test runs the seeded-violation fixture corpus
     (default test/fixtures/check) and exits non-zero if any rule fails
     to detect its fixture or flags a clean one.
   - otherwise scans the given directories (default lib bin), printing
     every waiver it honoured and every finding; non-zero on findings. *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selftest = List.exists (String.equal "--self-test") args in
  let rest = List.filter (fun a -> not (String.equal a "--self-test")) args in
  if selftest then begin
    let dir = match rest with d :: _ -> d | [] -> "test/fixtures/check" in
    if Tric_analysis.Check.self_test dir then begin
      print_endline "tric_check self-test: ok";
      exit 0
    end
    else exit 1
  end
  else begin
    let dirs = match rest with [] -> [ "lib"; "bin" ] | ds -> ds in
    let o = Tric_analysis.Check.run_tree dirs in
    List.iter
      (fun (w : Tric_analysis.Src.waiver) ->
        Printf.printf "waiver %s:%d [%s] (%s, %s)\n" w.w_file w.w_line w.w_rule
          (match w.w_scope with Tric_analysis.Src.Line -> "line" | File -> "file")
          (if w.w_used then "used" else "unused"))
      o.waivers;
    List.iter
      (fun v -> print_endline (Tric_analysis.Src.pp_finding v))
      o.findings;
    match o.findings with
    | [] ->
      Printf.printf "tric_check: clean (%d waiver(s))\n" (List.length o.waivers);
      exit 0
    | fs ->
      Printf.printf "tric_check: %d finding(s)\n" (List.length fs);
      exit 1
  end
