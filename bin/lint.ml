(* Project lint: bans the OCaml footguns that bit (or nearly bit) this
   codebase.  Purely lexical — comments and string literals (normal and
   [{|...|}]-quoted) are stripped, then each rule scans the residue — so
   it is fast, dependency-free and deliberately conservative: a few
   constructs it cannot prove safe are flagged and must be rewritten or
   explicitly waived with an allow-marker comment (see [allow_marker]
   below) on the offending line.

   Rules:
   - poly-compare: [Stdlib.compare] / [Pervasives.compare], and bare
     [compare] in files that never define their own [let compare].
     Polymorphic compare on variants, records or tuples of labels orders
     by memory representation, which changes under interning.
   - poly-hash: [Hashtbl.hash].  Silently truncates (it only walks a
     bounded prefix of the value) and diverges from any custom [equal].
   - poly-equal: [List.mem], [List.assoc], [List.mem_assoc],
     [List.remove_assoc] — structural-equality proxies; use
     [List.exists] / [List.find_opt] with an explicit equality.
   - obj-magic: [Obj.magic].
   - catch-all: [try ... with _ ->] (also [with _exn ->]) — swallows
     Out_of_memory, Stack_overflow and asserts alike.  Wildcard arms in
     [match] are fine; only [try] handlers are flagged.
   - missing-mli: a [.ml] under [lib/] with no companion [.mli].
   - toplevel-mutable: a column-0 [let name = ...] in a lib/ module whose
     right-hand side allocates mutable state (ref, Hashtbl.create,
     Array.make, Mutex.create, ...).  Module-level mutable state is shared
     by every engine instance and — since the sharded dispatcher — by
     every domain; all engine state must live inside Shard.t or the
     coordinator record.  The few sanctioned globals (Label interning,
     which is main-domain-only by design) carry explicit waivers.
   - stale-waiver: an allow marker on a line no rule currently flags.
     Waivers must pay rent; one that excuses nothing is a leftover from a
     rewrite and hides future violations on its line.  Never waivable.

   Usage: lint [--self-test] [DIR ...]  (default: lib bin) *)

type violation = {
  file : string;
  line : int;
  rule : string;
  text : string;
}

let allow_marker = "lint: allow"

(* -- Source stripping ------------------------------------------------------- *)

(* Replace string literals — and, unless [keep_comments], comments — with
   spaces, preserving newlines so line numbers survive.  Handles normal
   strings (with escapes), quoted strings [{|...|}] / [{id|...|id}], and
   just enough of char literals to keep ['"'] from opening a string.
   Inside comments, string literals are skipped without blanking (the
   lexer nests them there too, so a stray close-comment inside one must
   not terminate the comment). *)
let is_delim_char c = (c >= 'a' && c <= 'z') || c = '_'

let strip_with ~keep_comments src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  (* a normal string literal opens at [i0]; blank it when [erase] and
     return the index just past the closing quote *)
  let eat_string erase i0 =
    if erase then blank i0;
    let i = ref (i0 + 1) in
    let closed = ref false in
    while (not !closed) && !i < n do
      (match src.[!i] with
      | '\\' when !i + 1 < n ->
        if erase then begin
          blank !i;
          blank (!i + 1)
        end;
        i := !i + 2
      | '"' ->
        if erase then blank !i;
        closed := true;
        incr i
      | _ ->
        if erase then blank !i;
        incr i)
    done;
    !i
  in
  (* does a quoted-string opener (brace, delimiter ident, pipe) start at [i]? *)
  let quoted_opener i =
    src.[i] = '{'
    && begin
         let j = ref (i + 1) in
         while !j < n && is_delim_char src.[!j] do
           incr j
         done;
         !j < n && src.[!j] = '|'
       end
  in
  let eat_quoted erase i0 =
    let j = ref (i0 + 1) in
    while !j < n && is_delim_char src.[!j] do
      incr j
    done;
    let close = "|" ^ String.sub src (i0 + 1) (!j - i0 - 1) ^ "}" in
    let cl = String.length close in
    if erase then
      for k = i0 to !j do
        blank k
      done;
    let i = ref (!j + 1) in
    let closed = ref false in
    while (not !closed) && !i < n do
      if !i + cl <= n && String.sub src !i cl = close then begin
        if erase then
          for k = !i to !i + cl - 1 do
            blank k
          done;
        i := !i + cl;
        closed := true
      end
      else begin
        if erase then blank !i;
        incr i
      end
    done;
    !i
  in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !depth > 0 then begin
      let erase = not keep_comments in
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        if erase then begin
          blank !i;
          blank (!i + 1)
        end;
        incr depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        if erase then begin
          blank !i;
          blank (!i + 1)
        end;
        decr depth;
        i := !i + 2
      end
      else if c = '\'' && !i + 2 < n && src.[!i + 1] = '"' && src.[!i + 2] = '\'' then
        (* the lexer accepts the char literal '"' inside comments too *)
        i := !i + 3
      else if c = '"' then begin
        let stop = eat_string erase !i in
        if erase then blank !i;
        i := stop
      end
      else if quoted_opener !i then i := eat_quoted erase !i
      else begin
        if erase then blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      if not keep_comments then begin
        blank !i;
        blank (!i + 1)
      end;
      depth := 1;
      i := !i + 2
    end
    else if c = '"' then i := eat_string true !i
    else if quoted_opener !i then i := eat_quoted true !i
    else if c = '\'' && !i + 2 < n && src.[!i + 1] = '"' && src.[!i + 2] = '\'' then
      (* the char literal '"' must not open a string *)
      i := !i + 3
    else incr i
  done;
  Bytes.to_string out

(* comments and strings gone: what the rules scan *)
let strip src = strip_with ~keep_comments:false src

(* The original source, split into lines, for allow-markers and messages. *)
let split_lines s = String.split_on_char '\n' s

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
    || c = '\''

(* All start offsets of [word] in [line] occurring as a standalone token.
   [qualified] also requires/forbids a preceding ['.'] (module access). *)
let word_hits ?(allow_qualified = false) word line =
  let wl = String.length word and n = String.length line in
  let hits = ref [] in
  let i = ref 0 in
  while !i + wl <= n do
    let j = !i in
    if
      String.sub line j wl = word
      && (j = 0 || not (is_word_char line.[j - 1]))
      && (j + wl >= n || not (is_word_char line.[j + wl]))
      && (allow_qualified || j = 0 || line.[j - 1] <> '.')
    then hits := j :: !hits;
    incr i
  done;
  List.rev !hits

(* -- Rules ------------------------------------------------------------------ *)

(* Does the stripped source define its own [compare] (or alias one in)?
   [let compare], [let rec compare], [and compare].  A file that does gets
   bare-[compare] amnesty: its uses resolve to the local definition. *)
let defines_compare stripped_lines =
  List.exists
    (fun line ->
      List.exists
        (fun prefix ->
          match word_hits "compare" line with
          | [] -> false
          | hits ->
            List.exists
              (fun j ->
                let before = String.sub line 0 j in
                let before = String.trim before in
                let pl = String.length prefix in
                String.length before >= pl
                && String.sub before (String.length before - pl) pl = prefix)
              hits)
        [ "let"; "rec"; "and" ])
    stripped_lines

let check_line ~rule ~needle ~message ~out file lineno line =
  if word_hits ~allow_qualified:true needle line <> [] then
    out := { file; line = lineno; rule; text = message } :: !out

(* try/with tracking: a tiny stack of the opener keywords [try] / [match] /
   [function]; [with] closes the nearest opener.  When that opener is a
   [try] and the first arm pattern is a lone wildcard, flag it. *)
let scan_catch_all ~out file stripped_lines =
  let stack = ref [] in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      (* walk tokens of interest in order of appearance *)
      let events =
        List.concat
          [
            List.map (fun j -> (j, `Try)) (word_hits "try" line);
            List.map (fun j -> (j, `Match)) (word_hits "match" line);
            List.map (fun j -> (j, `With)) (word_hits "with" line);
          ]
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      (* [with] that is not a handler: record update [{ r with ... }]
         (an unclosed '{' earlier on the line) and signature constraints
         ([with type] / [with module]). *)
      let record_with j =
        let braces = ref 0 in
        String.iteri
          (fun k c ->
            if k < j then
              match c with '{' -> incr braces | '}' -> decr braces | _ -> ())
          line;
        !braces > 0
      in
      let constraint_with j =
        let rest = String.trim (String.sub line (j + 4) (String.length line - j - 4)) in
        List.exists
          (fun kw -> word_hits ~allow_qualified:true kw rest <> [] && String.length rest >= String.length kw
                     && String.sub rest 0 (String.length kw) = kw)
          [ "type"; "module" ]
      in
      List.iter
        (fun (j, ev) ->
          match ev with
          | `Try -> stack := `Try :: !stack
          | `Match -> stack := `Match :: !stack
          | `With when record_with j || constraint_with j -> ()
          | `With -> (
            let opener =
              match !stack with
              | top :: rest ->
                stack := rest;
                top
              | [] -> `Match
            in
            match opener with
            | `Match -> ()
            | `Try ->
              (* first arm pattern: the residue after [with] (skipping an
                 optional [|]) up to [->]; flag [_] and [_name]. *)
              let rest = String.sub line (j + 4) (String.length line - j - 4) in
              let rest = String.trim rest in
              let rest =
                if String.length rest > 0 && rest.[0] = '|' then
                  String.trim (String.sub rest 1 (String.length rest - 1))
                else rest
              in
              if String.length rest > 0 && rest.[0] = '_' then begin
                let arrow =
                  try Some (Str.search_forward (Str.regexp_string "->") rest 0)
                  with Not_found -> None
                in
                let pat =
                  match arrow with Some k -> String.trim (String.sub rest 0 k) | None -> rest
                in
                let lone_wildcard =
                  String.length pat > 0
                  && pat.[0] = '_'
                  && String.for_all is_word_char pat
                in
                if lone_wildcard then
                  out :=
                    {
                      file;
                      line = lineno;
                      rule = "catch-all";
                      text = "try ... with _ -> swallows every exception; name the ones you mean";
                    }
                    :: !out
              end))
        events)
    stripped_lines

(* toplevel-mutable: constructors that allocate shared mutable state when
   evaluated at module initialisation time. *)
let mutable_constructors =
  [
    "ref"; "Hashtbl.create"; "Tbl.create"; "Array.make"; "Queue.create";
    "Buffer.create"; "Bytes.create"; "Stack.create"; "Atomic.make";
    "Mutex.create"; "Condition.create"; "Domain.spawn";
    (* telemetry: a module-level registry, histogram or span recorder is
       exactly the global-singleton shape the obs design forbids — every
       instrument must live in an explicitly threaded Registry.t *)
    "Registry.create"; "Span.create"; "Histogram.create";
  ]

let in_lib path =
  String.length path >= 4 && (String.sub path 0 4 = "lib/" || String.sub path 0 4 = "lib\\")

(* A column-0 [let name =] (or [let name : ty =]) is a module-level value
   binding.  [let f x = ...] has parameters and allocates per call;
   [let () = ...] is an initialisation action — both are skipped, as are
   bindings whose right-hand side is a [fun] / [function] / [lazy]
   abstraction.  The violation is reported on the line holding the
   allocating constructor so a waiver marker sits next to the evidence. *)
let scan_toplevel_mutable ~out file stripped_lines =
  let lines = Array.of_list stripped_lines in
  let n = Array.length lines in
  let simple_binding line =
    if String.length line < 4 || String.sub line 0 4 <> "let " then None
    else
      match String.index_opt line '=' with
      | None -> None
      | Some eq ->
        let head = String.trim (String.sub line 4 (eq - 4)) in
        let name =
          match String.index_opt head ':' with
          | Some c -> String.trim (String.sub head 0 c)
          | None -> head
        in
        if name = "" || not (String.for_all is_word_char name) then None else Some eq
  in
  Array.iteri
    (fun idx line ->
      match simple_binding line with
      | None -> ()
      | Some eq ->
        let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
        let rhs, rhs_idx =
          if rhs <> "" then (rhs, idx)
          else begin
            let j = ref (idx + 1) in
            while !j < n && String.trim lines.(!j) = "" do
              incr j
            done;
            if !j < n then (String.trim lines.(!j), !j) else ("", idx)
          end
        in
        let starts_with kw =
          let kl = String.length kw in
          String.length rhs >= kl
          && String.sub rhs 0 kl = kw
          && (String.length rhs = kl || not (is_word_char rhs.[kl]))
        in
        if not (starts_with "fun" || starts_with "function" || starts_with "lazy") then
          if
            List.exists
              (fun ctor -> word_hits ~allow_qualified:true ctor rhs <> [])
              mutable_constructors
          then
            out :=
              {
                file;
                line = rhs_idx + 1;
                rule = "toplevel-mutable";
                text =
                  "module-level mutable state is shared across engine instances and \
                   domains; own it in Shard.t / a coordinator record";
              }
              :: !out)
    lines

let lint_source ~file src =
  let out = ref [] in
  let stripped = strip src in
  let stripped_lines = split_lines stripped in
  let raw_lines = Array.of_list (split_lines src) in
  let amnesty = defines_compare stripped_lines in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      check_line ~rule:"poly-compare" ~needle:"Stdlib.compare"
        ~message:"Stdlib.compare orders by memory representation; use a typed compare"
        ~out file lineno line;
      check_line ~rule:"poly-compare" ~needle:"Pervasives.compare"
        ~message:"Pervasives.compare orders by memory representation; use a typed compare"
        ~out file lineno line;
      check_line ~rule:"poly-hash" ~needle:"Hashtbl.hash"
        ~message:"Hashtbl.hash is polymorphic (and truncating); use a typed hash" ~out
        file lineno line;
      check_line ~rule:"obj-magic" ~needle:"Obj.magic"
        ~message:"Obj.magic defeats the type system" ~out file lineno line;
      List.iter
        (fun fn ->
          check_line ~rule:"poly-equal" ~needle:fn
            ~message:(fn ^ " uses polymorphic =; use List.exists/find_opt with an explicit equality")
            ~out file lineno line)
        [ "List.mem"; "List.assoc"; "List.mem_assoc"; "List.remove_assoc"; "List.assoc_opt" ];
      if (not amnesty) && word_hits "compare" line <> [] then
        out :=
          {
            file;
            line = lineno;
            rule = "poly-compare";
            text = "bare compare is polymorphic; use Int.compare / Float.compare / a typed compare";
          }
          :: !out)
    stripped_lines;
  scan_catch_all ~out file stripped_lines;
  if in_lib file then scan_toplevel_mutable ~out file stripped_lines;
  (* Waiver markers live in comments, so they are detected in a residue
     with strings blanked but comments kept: a marker spelled inside a
     string literal neither waives nor goes stale. *)
  let marker_re = Str.regexp_string allow_marker in
  let marker_lines =
    List.filteri
      (fun idx _ -> idx < Array.length raw_lines)
      (List.mapi (fun idx l -> (idx + 1, l)) (split_lines (strip_with ~keep_comments:true src)))
    |> List.filter_map (fun (lineno, l) ->
           match Str.search_forward marker_re l 0 with
           | _ -> Some lineno
           | exception Not_found -> None)
  in
  let waives lineno = List.exists (Int.equal lineno) marker_lines in
  let found = List.rev !out in
  (* A marker on a line no rule flags excuses nothing — probably left
     behind by a rewrite — and is itself a violation, never waivable. *)
  let stale =
    List.filter_map
      (fun lineno ->
        if List.exists (fun v -> v.line = lineno) found then None
        else
          Some
            {
              file;
              line = lineno;
              rule = "stale-waiver";
              text = "allow marker on a line no rule flags; delete it";
            })
      marker_lines
  in
  List.filter (fun v -> not (waives v.line)) found @ stale

(* -- File walking ----------------------------------------------------------- *)

let rec walk dir acc =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if entry = "_build" || String.length entry > 0 && entry.[0] = '.' then acc
          else walk path acc
        else if Filename.check_suffix entry ".ml" then path :: acc
        else acc)
      acc (Sys.readdir dir)
  else acc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let lint_tree dirs =
  let files = List.sort String.compare (List.concat_map (fun d -> walk d []) dirs) in
  let vs =
    List.concat_map (fun file -> lint_source ~file (read_file file)) files
  in
  let missing_mli =
    List.filter_map
      (fun file ->
        if
          in_lib file
          && not (Sys.file_exists (Filename.remove_extension file ^ ".mli"))
        then
          Some
            {
              file;
              line = 1;
              rule = "missing-mli";
              text = "library module has no .mli; every lib/ module must declare its interface";
            }
        else None)
      files
  in
  vs @ missing_mli

(* -- Self-test -------------------------------------------------------------- *)

(* Each bad snippet must trip exactly its rule; each good snippet must be
   clean.  Run before the real lint so a silently broken scanner cannot
   green-light the tree. *)
let self_test () =
  let expect_rule name rule src =
    let vs = lint_source ~file:(name ^ ".ml") src in
    match List.filter (fun v -> v.rule = rule) vs with
    | [] ->
      Printf.eprintf "lint self-test FAILED: %s did not trigger %s\n" name rule;
      false
    | _ -> true
  in
  let expect_clean name src =
    match lint_source ~file:(name ^ ".ml") src with
    | [] -> true
    | vs ->
      List.iter
        (fun v ->
          Printf.eprintf "lint self-test FAILED: %s flagged %s:%d %s\n" name v.file
            v.line v.rule)
        vs;
      false
  in
  let checks =
    [
      expect_rule "bad_stdlib_compare" "poly-compare"
        "let sorted l = List.sort Stdlib.compare l\n";
      expect_rule "bad_bare_compare" "poly-compare"
        "let sorted l = List.sort compare l\n";
      expect_rule "bad_poly_hash" "poly-hash" "let h x = Hashtbl.hash x\n";
      expect_rule "bad_poly_mem" "poly-equal" "let f xs = List.mem 3 xs\n";
      expect_rule "bad_obj_magic" "obj-magic" "let f x = Obj.magic x\n";
      expect_rule "bad_catch_all" "catch-all"
        "let f x = try g x with _ -> 0\n";
      expect_rule "bad_catch_all_named" "catch-all"
        "let f x = try g x with _exn -> 0\n";
      expect_clean "good_typed_compare" "let sorted l = List.sort Int.compare l\n";
      expect_clean "good_local_compare"
        "let compare a b = Int.compare a b\nlet sorted l = List.sort compare l\n";
      expect_clean "good_match_wildcard"
        "let f x = match x with Some y -> y | _ -> 0\n";
      expect_clean "good_try_named"
        "let f x = try g x with Not_found -> 0\n";
      expect_clean "good_comment" "(* List.mem and Obj.magic and compare *)\nlet x = 1\n";
      expect_clean "good_string" "let x = \"Hashtbl.hash compare\"\n";
      expect_clean "good_allow"
        "let sorted l = List.sort compare l (* lint: allow — scalar keys *)\n";
      expect_clean "good_try_inner_match"
        "let f x = try (match x with Some y -> y | _ -> 0) with Not_found -> 1\n";
      expect_rule "lib/bad_global_tbl" "toplevel-mutable"
        "let cache = Hashtbl.create 16\n";
      expect_rule "lib/bad_global_ref" "toplevel-mutable" "let counter = ref 0\n";
      expect_rule "lib/bad_global_next_line" "toplevel-mutable"
        "let table =\n  Edge.Tbl.create 64\n";
      expect_rule "lib/bad_global_annotated" "toplevel-mutable"
        "let slots : int array = Array.make 8 0\n";
      expect_clean "good_global_outside_lib" "let cache = Hashtbl.create 16\n";
      expect_clean "lib/good_per_call" "let make () = Hashtbl.create 16\n";
      expect_clean "lib/good_fun_rhs" "let fresh = fun () -> ref 0\n";
      expect_clean "lib/good_unit_init" "let () = register ()\n";
      expect_clean "lib/good_local_let"
        "let f x =\n  let tbl = Hashtbl.create 4 in\n  g tbl x\n";
      expect_clean "lib/good_waived"
        "let next = ref 0 (* lint: allow — interner counter, main domain only *)\n";
      expect_rule "lib/bad_global_registry" "toplevel-mutable"
        "let metrics = Tric_obs.Registry.create ()\n";
      expect_rule "lib/bad_global_span_recorder" "toplevel-mutable"
        "let tracer =\n  Span.create ~capacity:64 ()\n";
      expect_rule "lib/bad_global_histogram" "toplevel-mutable"
        "let latency : Histogram.t = Histogram.create ()\n";
      expect_clean "lib/good_registry_per_engine"
        "let make_obs () =\n  let reg = Tric_obs.Registry.create () in\n  reg\n";
      (* quoted string literals are stripped like normal ones... *)
      expect_clean "good_quoted_string"
        "let x = {|Hashtbl.hash compare List.mem Obj.magic|}\nlet y = 1\n";
      expect_clean "good_quoted_string_delim"
        "let x = {sql|Stdlib.compare try with _ ->|sql}\nlet y = 1\n";
      expect_clean "good_quoted_string_multiline"
        "let x = {|first\nObj.magic inside\nlast|}\nlet y = 1\n";
      (* ...and do not swallow the code after them *)
      expect_rule "bad_after_quoted" "poly-compare"
        "let x = {|text|}\nlet sorted l = List.sort compare l\n";
      expect_rule "bad_after_quoted_delim" "obj-magic"
        "let x = {id|text with |fake} closer|id}\nlet f x = Obj.magic x\n";
      (* a marker on a clean line excuses nothing: stale *)
      expect_rule "bad_stale_waiver" "stale-waiver"
        ("let x = 1 (* " ^ allow_marker ^ " — nothing here *)\n");
      (* a marker spelled inside a string is not a waiver *)
      expect_rule "bad_marker_in_string" "poly-compare"
        ("let sorted l = List.sort compare [ \"" ^ allow_marker ^ "\" ] @ l\n");
      (* a used marker is not stale (good_allow above also covers this) *)
      expect_clean "good_waiver_used"
        ("let h x = Hashtbl.hash x (* " ^ allow_marker ^ " — golden-file hash *)\n");
    ]
  in
  List.for_all Fun.id checks

(* -- Entry ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let selftest = List.exists (String.equal "--self-test") args in
  let dirs = List.filter (fun a -> a <> "--self-test") args in
  let dirs = if dirs = [] then [ "lib"; "bin" ] else dirs in
  if selftest then
    if self_test () then begin
      print_endline "lint self-test: ok";
      exit 0
    end
    else exit 1
  else begin
    let vs = lint_tree dirs in
    List.iter
      (fun v -> Printf.printf "%s:%d: [%s] %s\n" v.file v.line v.rule v.text)
      vs;
    if vs = [] then begin
      print_endline "lint: clean";
      exit 0
    end
    else begin
      Printf.printf "lint: %d violation(s)\n" (List.length vs);
      exit 1
    end
  end
