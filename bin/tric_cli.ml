(* Command-line driver: list and run the paper's experiments, or run an
   interactive demo of the engines. *)

open Cmdliner
module H = Tric_harness
module Engine = Tric_engine
module W = Tric_workloads

let config scale budget seed =
  let base = H.Config.from_env () in
  {
    H.Config.scale = Option.value ~default:base.H.Config.scale scale;
    budget_s = Option.value ~default:base.H.Config.budget_s budget;
    seed = Option.value ~default:base.H.Config.seed seed;
  }

let scale_arg =
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N" ~doc:"Divide the paper's sizes by $(docv) (default 25, env TRIC_SCALE).")

let budget_arg =
  Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECONDS" ~doc:"Wall-clock budget per engine run (default 10, env TRIC_BUDGET).")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed (default 7, env TRIC_SEED).")

let list_cmd =
  let run () =
    let fmt = Format.std_formatter in
    Format.fprintf fmt "%-18s %-12s %s@." "id" "paper" "title";
    List.iter
      (fun (e : H.Figures.t) ->
        Format.fprintf fmt "%-18s %-12s %s@." e.H.Figures.id e.H.Figures.paper_ref
          e.H.Figures.title)
      H.Figures.all;
    Format.fprintf fmt "@.Run one with: tric_cli run <id>@."
  in
  Cmd.v (Cmd.info "list" ~doc:"List all reproducible experiments.") Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"Experiment id (or 'all').")
  in
  let run id scale budget seed =
    let cfg = config scale budget seed in
    let fmt = Format.std_formatter in
    match id with
    | "all" ->
      H.Figures.run_all cfg fmt;
      `Ok ()
    | id -> (
      match H.Figures.find id with
      | Some e ->
        H.Figures.run_one cfg fmt e;
        `Ok ()
      | None -> `Error (false, Printf.sprintf "unknown experiment %S (see 'tric_cli list')" id))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment (or all) and print the paper-style table.")
    Term.(ret (const run $ id_arg $ scale_arg $ budget_arg $ seed_arg))

let demo_cmd =
  let run seed =
    let seed = Option.value ~default:7 seed in
    let fmt = Format.std_formatter in
    let d =
      W.Dataset.make W.Dataset.Snb
        { W.Dataset.edges = 2_000; qdb = 50; avg_len = 4; selectivity = 0.3; overlap = 0.35; seed }
    in
    Format.fprintf fmt
      "Demo: %d continuous queries over a %d-update SNB-like stream, all engines.@.@."
      (List.length d.W.Dataset.queries)
      (Tric_graph.Stream.length d.W.Dataset.stream);
    List.iter
      (fun name ->
        let r =
          Engine.Runner.run ~budget_s:30.0 ~engine:(Engine.Engines.by_name name)
            ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
        in
        Format.fprintf fmt "%a@." Engine.Runner.pp_result r)
      Engine.Engines.paper_names
  in
  Cmd.v (Cmd.info "demo" ~doc:"Small end-to-end demo across all engines.")
    Term.(const run $ seed_arg)

let source_conv =
  let parse = function
    | "snb" | "SNB" -> Ok W.Dataset.Snb
    | "taxi" | "TAXI" -> Ok W.Dataset.Taxi
    | "biogrid" | "BioGRID" -> Ok W.Dataset.Biogrid
    | s -> Error (`Msg (Printf.sprintf "unknown source %S (snb|taxi|biogrid)" s))
  in
  let print fmt s = Format.pp_print_string fmt (W.Dataset.source_name s) in
  Arg.conv (parse, print)

let generate_cmd =
  let source_arg =
    Arg.(value & pos 0 source_conv W.Dataset.Snb & info [] ~docv:"SOURCE" ~doc:"snb, taxi or biogrid.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let edges_arg = Arg.(value & opt int 10_000 & info [ "edges" ] ~docv:"N" ~doc:"Stream size.") in
  let qdb_arg = Arg.(value & opt int 500 & info [ "qdb" ] ~docv:"N" ~doc:"Query-set size.") in
  let run source out edges qdb seed =
    let d =
      W.Dataset.make source
        {
          W.Dataset.edges;
          qdb;
          avg_len = 5;
          selectivity = 0.25;
          overlap = 0.35;
          seed = Option.value ~default:7 seed;
        }
    in
    W.Dataset.save d out;
    Format.printf "wrote %s: %d updates, %d queries@." out
      (Tric_graph.Stream.length d.W.Dataset.stream)
      (List.length d.W.Dataset.queries)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a benchmark dataset and save it to a file.")
    Term.(const run $ source_arg $ out_arg $ edges_arg $ qdb_arg $ seed_arg)

module Obs = Tric_obs

(* Runner numbers included in the metrics envelope alongside the engine's
   own instruments. *)
let runner_json (r : Engine.Runner.result) =
  let open Obs.Json in
  [
    ("total_updates", int r.Engine.Runner.total_updates);
    ("updates_processed", int r.updates_processed);
    ("batch_size", int r.batch_size);
    ("batches", int r.batches);
    ("shards", int r.shards);
    ("timed_out", Bool r.timed_out);
    ("index_time_s", Num r.index_time_s);
    ("answer_time_s", Num r.answer_time_s);
    ("busy_s", Num r.busy_s);
    ("mean_ms", Num r.mean_ms);
    ("p50_ms", Num r.p50_ms);
    ("p90_ms", Num r.p90_ms);
    ("p95_ms", Num r.p95_ms);
    ("p99_ms", Num r.p99_ms);
    ("max_ms", Num r.max_ms);
    ("latency_exact", Bool r.latency_exact);
    ("throughput_ups", Num r.throughput_ups);
    ("matches", int r.matches);
    ("retractions", int r.retractions);
    ("satisfied_queries", int r.satisfied_queries);
    ("audits", int r.audits);
  ]

let metrics_envelope (engine : Engine.Matcher.t) (r : Engine.Runner.result) =
  Obs.Snapshot.envelope ~engine:engine.Engine.Matcher.name ~runner:(runner_json r)
    ~mem:(engine.Engine.Matcher.mem ())
    ~spans:(Obs.Span.recorded_to_json (engine.Engine.Matcher.spans ()))
    (engine.Engine.Matcher.metrics ())

let write_metrics ~path (engine : Engine.Matcher.t) (r : Engine.Runner.result) =
  let doc = metrics_envelope engine r in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string ~pretty:true doc))

let batch_arg =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Micro-batch size: hand the engine windows of $(docv) updates instead of one at a time (default 1).")

let shards_arg =
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc:"Shard the trie engines over $(docv) domains (default 1; env TRIC_SHARDS). Baselines are inherently sequential and ignore it.")

let window_arg =
  Arg.(value & opt (some string) None & info [ "window" ] ~docv:"SPEC" ~doc:"Wrap the engine in a streaming window and expire old edges with retractions. $(docv) is the default window for queries without a WITHIN clause: a bare integer is a count window in edges ('1000'), a duration is an event-time window ('90s', '15m', '1h'), with optional TUMBLING/SLIDING modifier ('1h TUMBLING'). Env TRIC_WINDOW.")

let parse_window = function
  | None -> Ok None
  | Some spec -> (
    match Tric_query.Wspec.of_string spec with
    | Ok w -> Ok (Some w)
    | Error msg -> Error (Printf.sprintf "--window: %s" msg))

let replay_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Dataset file.") in
  let engine_arg =
    Arg.(value & opt string "TRIC+" & info [ "engine" ] ~docv:"NAME" ~doc:"Engine (TRIC, TRIC+, INV, INV+, INC, INC+, GraphDB, ISO).")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Run with telemetry enabled and write the merged metrics snapshot, runner numbers and span traces to $(docv) as JSON (schema tric-metrics-v1).")
  in
  let run file engine_name budget batch shards window metrics_out =
    if batch < 1 then `Error (false, "--batch must be >= 1")
    else if (match shards with Some s -> s < 1 | None -> false) then
      `Error (false, "--shards must be >= 1")
    else
      match parse_window window with
      | Error msg -> `Error (false, msg)
      | Ok window -> (
      let metrics = match metrics_out with Some _ -> Some true | None -> None in
      match Engine.Engines.by_name ?shards ?metrics ?window engine_name with
      | exception Invalid_argument msg -> `Error (false, msg)
      | engine ->
        let d = W.Dataset.load file in
        let r =
          Engine.Runner.run ?budget_s:budget ~batch_size:batch ~engine
            ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
        in
        (match metrics_out with
        | Some path -> write_metrics ~path engine r
        | None -> ());
        (* Owner-targeted dispatch health: mean shards per net op.  A
           value near the shard count means the router is broadcasting. *)
        let stat key =
          match
            List.find_opt
              (fun (k, _) -> String.equal k key)
              (engine.Engine.Matcher.stats ())
          with
          | Some (_, v) -> v
          | None -> 0
        in
        let routed = stat "ops_routed" in
        engine.Engine.Matcher.shutdown ();
        Format.printf "%a@." Engine.Runner.pp_result r;
        if engine.Engine.Matcher.shards > 1 && routed > 0 then
          Format.printf "dispatch: %d op(s) routed, mean fanout %.2f of %d shard(s)@."
            routed
            (float_of_int (stat "ops_dispatched") /. float_of_int routed)
            engine.Engine.Matcher.shards;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a saved dataset through one engine and report timings.")
    Term.(
      ret
        (const run $ file_arg $ engine_arg $ budget_arg $ batch_arg $ shards_arg
       $ window_arg $ metrics_out_arg))

(* Interleave deterministic removals into an add-only stream: after every
   [1/churn] (rounded) applied additions, remove the oldest still-live
   edge.  Turns the generators' add-only datasets into the mixed
   add/remove replays the deletion machinery must survive. *)
let churn_stream churn stream =
  if churn <= 0.0 then stream
  else begin
    let period = max 1 (int_of_float (Float.round (1.0 /. churn))) in
    let q = Queue.create () in
    let live = Tric_graph.Edge.Tbl.create 4096 in
    let adds = ref 0 in
    let out = ref [] in
    let emit u = out := u :: !out in
    let pop_victim () =
      let victim = ref None in
      while !victim = None && not (Queue.is_empty q) do
        let e = Queue.pop q in
        if Tric_graph.Edge.Tbl.mem live e then victim := Some e
      done;
      !victim
    in
    Tric_graph.Stream.iter
      (fun u ->
        emit u;
        (match u.Tric_graph.Update.op with
        | Tric_graph.Update.Add e ->
          if not (Tric_graph.Edge.Tbl.mem live e) then begin
            Tric_graph.Edge.Tbl.replace live e ();
            Queue.push e q;
            incr adds
          end
        | Tric_graph.Update.Remove e -> Tric_graph.Edge.Tbl.remove live e);
        if !adds >= period then begin
          adds := 0;
          match pop_victim () with
          | Some e ->
            Tric_graph.Edge.Tbl.remove live e;
            emit (Tric_graph.Update.remove e)
          | None -> ()
        end)
      stream;
    Tric_graph.Stream.of_updates (List.rev !out)
  end

let audit_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Dataset file.") in
  let engine_arg =
    Arg.(value & opt string "TRIC+" & info [ "engine" ] ~docv:"NAME" ~doc:"Engine (TRIC, TRIC+, INV, INV+, INC, INC+).")
  in
  let every_arg =
    Arg.(value & opt int 500 & info [ "every" ] ~docv:"N" ~doc:"Audit every $(docv) updates (default 500).")
  in
  let churn_arg =
    Arg.(value & opt float 0.0 & info [ "churn" ] ~docv:"F" ~doc:"Interleave one removal per 1/$(docv) additions (0 = replay the stream as saved), exercising the deletion paths under audit.")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Run with telemetry enabled and, if the audit stays clean, write the metrics envelope to $(docv).")
  in
  let run file engine_name every churn batch shards window metrics_out =
    if batch < 1 then `Error (false, "--batch must be >= 1")
    else if every < 1 then `Error (false, "--every must be >= 1")
    else if churn < 0.0 || churn >= 1.0 then `Error (false, "--churn must be in [0, 1)")
    else if (match shards with Some s -> s < 1 | None -> false) then
      `Error (false, "--shards must be >= 1")
    else
      match parse_window window with
      | Error msg -> `Error (false, msg)
      | Ok window -> (
      let metrics = match metrics_out with Some _ -> Some true | None -> None in
      match Engine.Engines.by_name ?shards ?metrics ?window engine_name with
      | exception Invalid_argument msg -> `Error (false, msg)
      | engine -> (
        let d = W.Dataset.load file in
        let stream = churn_stream churn d.W.Dataset.stream in
        match
          Engine.Runner.run ~batch_size:batch ~audit_every:every ~engine
            ~queries:d.W.Dataset.queries ~stream ()
        with
        | r ->
          (match metrics_out with
          | Some path -> write_metrics ~path engine r
          | None -> ());
          engine.Engine.Matcher.shutdown ();
          Format.printf "%a@.audit: %d shadow audit(s), all clean@."
            Engine.Runner.pp_result r r.Engine.Runner.audits;
          `Ok ()
        | exception Engine.Runner.Audit_failure f ->
          engine.Engine.Matcher.shutdown ();
          Format.eprintf
            "@[<v>AUDIT FAILURE: %s diverged from ground truth after update %d@,%a@]@."
            f.engine f.update_index Tric_audit.Audit.pp_report f.findings;
          `Error (false, "audit failed")))
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Replay a saved dataset under shadow auditing: every N updates the engine's materialized state (views, indexes, caches, stats) is certified against an independent recomputation from the live edge set; the first divergence aborts with a finding report.")
    Term.(
      ret
        (const run $ file_arg $ engine_arg $ every_arg $ churn_arg $ batch_arg
       $ shards_arg $ window_arg $ metrics_out_arg))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let stats_cmd =
  let file_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Dataset file to replay (not needed with --check).")
  in
  let engine_arg =
    Arg.(value & opt string "TRIC+" & info [ "engine" ] ~docv:"NAME" ~doc:"Engine (TRIC, TRIC+, INV, INV+, INC, INC+).")
  in
  let format_arg =
    let fmt_conv = Arg.enum [ ("text", `Text); ("json", `Json); ("prometheus", `Prometheus) ] in
    Arg.(value & opt fmt_conv `Text & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json (the tric-metrics-v1 envelope) or prometheus (exposition text).")
  in
  let check_arg =
    Arg.(value & opt (some file) None & info [ "check" ] ~docv:"FILE" ~doc:"Parse a previously exported metrics JSON file, validate it against the tric-metrics-v1 envelope schema, and exit — no replay.")
  in
  let server_arg =
    Arg.(value & opt (some string) None & info [ "server" ] ~docv:"SOCKET" ~doc:"Query a running subscription server's live metrics over its Unix-domain socket instead of replaying a dataset.")
  in
  let run file engine_name budget batch shards format check server =
    match server with
    | Some sock -> (
      let c = Tric_server.Client.connect ~retries:1 sock in
      let fmt = match format with `Prometheus -> "prometheus" | `Json | `Text -> "json" in
      Tric_server.Client.send c (Tric_server.Wire.Stats { format = fmt });
      match Tric_server.Client.recv_exn c with
      | Tric_server.Wire.Stats_reply { body } ->
        print_endline body;
        Tric_server.Client.close c;
        `Ok ()
      | _ ->
        Tric_server.Client.close c;
        `Error (false, "unexpected reply from server")
      | exception Failure msg -> `Error (false, msg)
      | exception Unix.Unix_error (e, _, _) ->
        `Error (false, Printf.sprintf "%s: %s" sock (Unix.error_message e)))
    | None -> (
    match check with
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg -> `Error (false, Printf.sprintf "%s: JSON parse error: %s" path msg)
      | Ok doc -> (
        match Obs.Snapshot.validate doc with
        | Error msg -> `Error (false, Printf.sprintf "%s: invalid envelope: %s" path msg)
        | Ok n ->
          Format.printf "%s: valid %s envelope, %d metric(s)@." path
            Obs.Snapshot.schema_version n;
          `Ok ()))
    | None -> (
      match file with
      | None -> `Error (true, "a dataset FILE is required unless --check is given")
      | Some file ->
        if batch < 1 then `Error (false, "--batch must be >= 1")
        else if (match shards with Some s -> s < 1 | None -> false) then
          `Error (false, "--shards must be >= 1")
        else (
          match Engine.Engines.by_name ?shards ~metrics:true engine_name with
          | exception Invalid_argument msg -> `Error (false, msg)
          | engine ->
            let d = W.Dataset.load file in
            let r =
              Engine.Runner.run ?budget_s:budget ~batch_size:batch ~engine
                ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
            in
            (match format with
            | `Text ->
              Format.printf "%a@.@.%a@." Engine.Runner.pp_result r Obs.Snapshot.pp
                (engine.Engine.Matcher.metrics ());
              let mem = engine.Engine.Matcher.mem () in
              if Array.length mem > 0 then begin
                Format.printf "@.mem (packed arenas per shard):@.";
                Array.iteri
                  (fun sid (cap, live, free) ->
                    Format.printf "  shard %d: arena_rows=%d live_rows=%d freelist=%d@."
                      sid cap live free)
                  mem
              end
            | `Json -> print_string (Obs.Json.to_string ~pretty:true (metrics_envelope engine r))
            | `Prometheus ->
              print_string (Obs.Snapshot.to_prometheus (engine.Engine.Matcher.metrics ())));
            engine.Engine.Matcher.shutdown ();
            `Ok ())))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Replay a dataset with telemetry enabled and print the merged metrics snapshot (text, JSON envelope, or Prometheus exposition); schema-check an exported metrics file with --check; or query a live server with --server.")
    Term.(
      ret
        (const run $ file_arg $ engine_arg $ budget_arg $ batch_arg $ shards_arg
       $ format_arg $ check_arg $ server_arg))

(* -- subscription server --------------------------------------------------- *)

module Srv = Tric_server

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let journal_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "journal" ] ~docv:"PATH"
          ~doc:"Write-ahead journal path (created if missing; recovered if not empty).")
  in
  let engine_arg =
    Arg.(value & opt string "TRIC+" & info [ "engine" ] ~docv:"NAME" ~doc:"Engine (TRIC, TRIC+, INV, INV+, INC, INC+).")
  in
  let shards_serve_arg =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc:"Shard the trie engines over $(docv) domains (default 1).")
  in
  let snapshot_every_arg =
    Arg.(value & opt int 10_000 & info [ "snapshot-every" ] ~docv:"N" ~doc:"Take a compacting snapshot once the journal holds $(docv) records (default 10000; 0 disables).")
  in
  let soft_arg =
    Arg.(value & opt int 1024 & info [ "outbox-soft" ] ~docv:"N" ~doc:"Outbox depth where retraction/match coalescing starts (default 1024).")
  in
  let hard_arg =
    Arg.(value & opt int 4096 & info [ "outbox-hard" ] ~docv:"N" ~doc:"Outbox depth where the slow consumer is evicted (default 4096).")
  in
  let metrics_serve_arg =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Write the server's tric-metrics-v1 envelope to $(docv) at shutdown.")
  in
  let run socket journal engine_name shards snapshot_every soft hard metrics_out =
    if shards < 1 then `Error (false, "--shards must be >= 1")
    else if soft < 1 || hard < soft then
      `Error (false, "need 1 <= --outbox-soft <= --outbox-hard")
    else begin
      Logs.set_reporter (Logs.format_reporter ());
      Logs.set_level (Some Logs.Info);
      let cfg =
        {
          (Srv.Server.default_config ~sock_path:socket ~journal_path:journal) with
          Srv.Server.engine_name;
          shards;
          snapshot_every;
          outbox_soft = soft;
          outbox_hard = hard;
          metrics_out;
        }
      in
      match Srv.Server.create cfg with
      | exception Failure msg -> `Error (false, msg)
      | exception Invalid_argument msg -> `Error (false, msg)
      | t ->
        let stop _ = Srv.Server.request_stop t in
        Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
        Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
        Srv.Server.serve t;
        `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the subscription server: accept query registrations over a Unix-domain socket and stream match/retraction notifications to subscribers, with write-ahead journalling, compacting snapshots and exactly-once redelivery across crashes.")
    Term.(
      ret
        (const run $ socket_arg $ journal_arg $ engine_arg $ shards_serve_arg
       $ snapshot_every_arg $ soft_arg $ hard_arg $ metrics_serve_arg))

let emb_str (e : Srv.Wire.emb) =
  "{" ^ String.concat "," (List.map (fun (v, l) -> Printf.sprintf "%d=%s" v l) e) ^ "}"

let msg_str = function
  | Srv.Wire.Hello _ | Srv.Wire.Register _ | Srv.Wire.Unregister _ | Srv.Wire.Ack _
  | Srv.Wire.Publish _ | Srv.Wire.Stats _ | Srv.Wire.Quit ->
    "client-to-server message"
  | Srv.Wire.Welcome { cid; cursor; useq; reset } ->
    Printf.sprintf "welcome cid=%s cursor=%d useq=%d%s" cid cursor useq
      (if reset = "" then "" else " reset=" ^ reset)
  | Srv.Wire.Registered { qid } -> Printf.sprintf "registered qid=%d" qid
  | Srv.Wire.Unregistered { qid; existed } ->
    Printf.sprintf "unregistered qid=%d existed=%b" qid existed
  | Srv.Wire.Notify { useq; entries } ->
    let entry_str (en : Srv.Wire.entry) =
      Printf.sprintf "q%d%s%s" en.Srv.Wire.qid
        (String.concat "" (List.map (fun e -> " +" ^ emb_str e) en.Srv.Wire.matches))
        (String.concat "" (List.map (fun e -> " -" ^ emb_str e) en.Srv.Wire.retractions))
    in
    Printf.sprintf "notify useq=%d %s" useq (String.concat " | " (List.map entry_str entries))
  | Srv.Wire.Puback { pseq; useq } -> Printf.sprintf "puback pseq=%d useq=%d" pseq useq
  | Srv.Wire.Stats_reply { body } -> body
  | Srv.Wire.Bye { reason } -> "bye " ^ reason
  | Srv.Wire.Err { reason } -> "err " ^ reason

let client_cmd =
  let run socket =
    let c = Srv.Client.connect socket in
    let drain ?(timeout_s = 0.3) () =
      let rec go () =
        match Srv.Client.recv ~timeout_s c with
        | Some m ->
          print_endline (msg_str m);
          go ()
        | None -> ()
      in
      try go () with End_of_file -> print_endline "connection closed by server"
    in
    let split_first s =
      match String.index_opt s ' ' with
      | Some i ->
        ( String.sub s 0 i,
          String.trim (String.sub s (i + 1) (String.length s - i - 1)) )
      | None -> (s, "")
    in
    let rec loop pseq =
      match input_line stdin with
      | exception End_of_file -> ()
      | line ->
        let line = String.trim line in
        if line = "" || line.[0] = '#' then loop pseq
        else begin
          let cmd, rest = split_first line in
          match cmd with
          | "hello" ->
            let cid, ls = split_first rest in
            let last_seen = match int_of_string_opt ls with Some n -> n | None -> -1 in
            Srv.Client.send c (Srv.Wire.Hello { cid; last_seen });
            drain ();
            loop pseq
          | "register" ->
            let name, pattern = split_first rest in
            Srv.Client.send c (Srv.Wire.Register { name; pattern });
            drain ();
            loop pseq
          | "unregister" -> (
            match int_of_string_opt rest with
            | Some qid ->
              Srv.Client.send c (Srv.Wire.Unregister { qid });
              drain ();
              loop pseq
            | None ->
              print_endline "usage: unregister <qid>";
              loop pseq)
          | "publish" ->
            Srv.Client.send c (Srv.Wire.Publish { pseq; update = rest });
            drain ();
            loop (pseq + 1)
          | "ack" -> (
            match int_of_string_opt rest with
            | Some useq ->
              Srv.Client.send c (Srv.Wire.Ack { useq });
              drain ();
              loop pseq
            | None ->
              print_endline "usage: ack <useq>";
              loop pseq)
          | "recv" ->
            let timeout_s =
              match float_of_string_opt rest with Some s -> s | None -> 1.0
            in
            drain ~timeout_s ();
            loop pseq
          | "stats" ->
            Srv.Client.send c (Srv.Wire.Stats { format = (if rest = "" then "json" else rest) });
            drain ~timeout_s:2.0 ();
            loop pseq
          | "quit" ->
            Srv.Client.send c Srv.Wire.Quit;
            drain ()
          | "exit" -> ()
          | _ ->
            print_endline
              "commands: hello <cid> [last_seen] | register <name> <pattern> | unregister <qid> | publish <update> | ack <useq> | recv [timeout] | stats [json|prometheus] | quit | exit";
            loop pseq
        end
    in
    (try loop 1 with End_of_file -> print_endline "connection closed by server");
    Srv.Client.close c;
    `Ok ()
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Line-protocol test client for the subscription server: type commands on stdin (hello, register, publish, ack, recv, stats, quit), see server messages as lines on stdout.")
    Term.(ret (const run $ socket_arg))

let main =
  Cmd.group
    (Cmd.info "tric_cli" ~version:"1.0.0"
       ~doc:"Continuous multi-query processing over graph streams (EDBT 2020 reproduction).")
    [ list_cmd; run_cmd; demo_cmd; generate_cmd; replay_cmd; audit_cmd; stats_cmd;
      serve_cmd; client_cmd ]

let () = exit (Cmd.eval main)
