(* Command-line driver: list and run the paper's experiments, or run an
   interactive demo of the engines. *)

open Cmdliner
module H = Tric_harness
module Engine = Tric_engine
module W = Tric_workloads

let config scale budget seed =
  let base = H.Config.from_env () in
  {
    H.Config.scale = Option.value ~default:base.H.Config.scale scale;
    budget_s = Option.value ~default:base.H.Config.budget_s budget;
    seed = Option.value ~default:base.H.Config.seed seed;
  }

let scale_arg =
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N" ~doc:"Divide the paper's sizes by $(docv) (default 25, env TRIC_SCALE).")

let budget_arg =
  Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECONDS" ~doc:"Wall-clock budget per engine run (default 10, env TRIC_BUDGET).")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed (default 7, env TRIC_SEED).")

let list_cmd =
  let run () =
    let fmt = Format.std_formatter in
    Format.fprintf fmt "%-18s %-12s %s@." "id" "paper" "title";
    List.iter
      (fun (e : H.Figures.t) ->
        Format.fprintf fmt "%-18s %-12s %s@." e.H.Figures.id e.H.Figures.paper_ref
          e.H.Figures.title)
      H.Figures.all;
    Format.fprintf fmt "@.Run one with: tric_cli run <id>@."
  in
  Cmd.v (Cmd.info "list" ~doc:"List all reproducible experiments.") Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"Experiment id (or 'all').")
  in
  let run id scale budget seed =
    let cfg = config scale budget seed in
    let fmt = Format.std_formatter in
    match id with
    | "all" ->
      H.Figures.run_all cfg fmt;
      `Ok ()
    | id -> (
      match H.Figures.find id with
      | Some e ->
        H.Figures.run_one cfg fmt e;
        `Ok ()
      | None -> `Error (false, Printf.sprintf "unknown experiment %S (see 'tric_cli list')" id))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment (or all) and print the paper-style table.")
    Term.(ret (const run $ id_arg $ scale_arg $ budget_arg $ seed_arg))

let demo_cmd =
  let run seed =
    let seed = Option.value ~default:7 seed in
    let fmt = Format.std_formatter in
    let d =
      W.Dataset.make W.Dataset.Snb
        { W.Dataset.edges = 2_000; qdb = 50; avg_len = 4; selectivity = 0.3; overlap = 0.35; seed }
    in
    Format.fprintf fmt
      "Demo: %d continuous queries over a %d-update SNB-like stream, all engines.@.@."
      (List.length d.W.Dataset.queries)
      (Tric_graph.Stream.length d.W.Dataset.stream);
    List.iter
      (fun name ->
        let r =
          Engine.Runner.run ~budget_s:30.0 ~engine:(Engine.Engines.by_name name)
            ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
        in
        Format.fprintf fmt "%a@." Engine.Runner.pp_result r)
      Engine.Engines.paper_names
  in
  Cmd.v (Cmd.info "demo" ~doc:"Small end-to-end demo across all engines.")
    Term.(const run $ seed_arg)

let source_conv =
  let parse = function
    | "snb" | "SNB" -> Ok W.Dataset.Snb
    | "taxi" | "TAXI" -> Ok W.Dataset.Taxi
    | "biogrid" | "BioGRID" -> Ok W.Dataset.Biogrid
    | s -> Error (`Msg (Printf.sprintf "unknown source %S (snb|taxi|biogrid)" s))
  in
  let print fmt s = Format.pp_print_string fmt (W.Dataset.source_name s) in
  Arg.conv (parse, print)

let generate_cmd =
  let source_arg =
    Arg.(value & pos 0 source_conv W.Dataset.Snb & info [] ~docv:"SOURCE" ~doc:"snb, taxi or biogrid.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let edges_arg = Arg.(value & opt int 10_000 & info [ "edges" ] ~docv:"N" ~doc:"Stream size.") in
  let qdb_arg = Arg.(value & opt int 500 & info [ "qdb" ] ~docv:"N" ~doc:"Query-set size.") in
  let run source out edges qdb seed =
    let d =
      W.Dataset.make source
        {
          W.Dataset.edges;
          qdb;
          avg_len = 5;
          selectivity = 0.25;
          overlap = 0.35;
          seed = Option.value ~default:7 seed;
        }
    in
    W.Dataset.save d out;
    Format.printf "wrote %s: %d updates, %d queries@." out
      (Tric_graph.Stream.length d.W.Dataset.stream)
      (List.length d.W.Dataset.queries)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a benchmark dataset and save it to a file.")
    Term.(const run $ source_arg $ out_arg $ edges_arg $ qdb_arg $ seed_arg)

module Obs = Tric_obs

(* Runner numbers included in the metrics envelope alongside the engine's
   own instruments. *)
let runner_json (r : Engine.Runner.result) =
  let open Obs.Json in
  [
    ("total_updates", int r.Engine.Runner.total_updates);
    ("updates_processed", int r.updates_processed);
    ("batch_size", int r.batch_size);
    ("batches", int r.batches);
    ("shards", int r.shards);
    ("timed_out", Bool r.timed_out);
    ("index_time_s", Num r.index_time_s);
    ("answer_time_s", Num r.answer_time_s);
    ("busy_s", Num r.busy_s);
    ("mean_ms", Num r.mean_ms);
    ("p50_ms", Num r.p50_ms);
    ("p90_ms", Num r.p90_ms);
    ("p95_ms", Num r.p95_ms);
    ("p99_ms", Num r.p99_ms);
    ("max_ms", Num r.max_ms);
    ("latency_exact", Bool r.latency_exact);
    ("throughput_ups", Num r.throughput_ups);
    ("matches", int r.matches);
    ("retractions", int r.retractions);
    ("satisfied_queries", int r.satisfied_queries);
    ("audits", int r.audits);
  ]

let metrics_envelope (engine : Engine.Matcher.t) (r : Engine.Runner.result) =
  Obs.Snapshot.envelope ~engine:engine.Engine.Matcher.name ~runner:(runner_json r)
    ~mem:(engine.Engine.Matcher.mem ())
    ~spans:(Obs.Span.recorded_to_json (engine.Engine.Matcher.spans ()))
    (engine.Engine.Matcher.metrics ())

let write_metrics ~path (engine : Engine.Matcher.t) (r : Engine.Runner.result) =
  let doc = metrics_envelope engine r in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Obs.Json.to_string ~pretty:true doc))

let batch_arg =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Micro-batch size: hand the engine windows of $(docv) updates instead of one at a time (default 1).")

let shards_arg =
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc:"Shard the trie engines over $(docv) domains (default 1; env TRIC_SHARDS). Baselines are inherently sequential and ignore it.")

let window_arg =
  Arg.(value & opt (some string) None & info [ "window" ] ~docv:"SPEC" ~doc:"Wrap the engine in a streaming window and expire old edges with retractions. $(docv) is the default window for queries without a WITHIN clause: a bare integer is a count window in edges ('1000'), a duration is an event-time window ('90s', '15m', '1h'), with optional TUMBLING/SLIDING modifier ('1h TUMBLING'). Env TRIC_WINDOW.")

let parse_window = function
  | None -> Ok None
  | Some spec -> (
    match Tric_query.Wspec.of_string spec with
    | Ok w -> Ok (Some w)
    | Error msg -> Error (Printf.sprintf "--window: %s" msg))

let replay_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Dataset file.") in
  let engine_arg =
    Arg.(value & opt string "TRIC+" & info [ "engine" ] ~docv:"NAME" ~doc:"Engine (TRIC, TRIC+, INV, INV+, INC, INC+, GraphDB, ISO).")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Run with telemetry enabled and write the merged metrics snapshot, runner numbers and span traces to $(docv) as JSON (schema tric-metrics-v1).")
  in
  let run file engine_name budget batch shards window metrics_out =
    if batch < 1 then `Error (false, "--batch must be >= 1")
    else if (match shards with Some s -> s < 1 | None -> false) then
      `Error (false, "--shards must be >= 1")
    else
      match parse_window window with
      | Error msg -> `Error (false, msg)
      | Ok window -> (
      let metrics = match metrics_out with Some _ -> Some true | None -> None in
      match Engine.Engines.by_name ?shards ?metrics ?window engine_name with
      | exception Invalid_argument msg -> `Error (false, msg)
      | engine ->
        let d = W.Dataset.load file in
        let r =
          Engine.Runner.run ?budget_s:budget ~batch_size:batch ~engine
            ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
        in
        (match metrics_out with
        | Some path -> write_metrics ~path engine r
        | None -> ());
        (* Owner-targeted dispatch health: mean shards per net op.  A
           value near the shard count means the router is broadcasting. *)
        let stat key =
          match
            List.find_opt
              (fun (k, _) -> String.equal k key)
              (engine.Engine.Matcher.stats ())
          with
          | Some (_, v) -> v
          | None -> 0
        in
        let routed = stat "ops_routed" in
        engine.Engine.Matcher.shutdown ();
        Format.printf "%a@." Engine.Runner.pp_result r;
        if engine.Engine.Matcher.shards > 1 && routed > 0 then
          Format.printf "dispatch: %d op(s) routed, mean fanout %.2f of %d shard(s)@."
            routed
            (float_of_int (stat "ops_dispatched") /. float_of_int routed)
            engine.Engine.Matcher.shards;
        `Ok ())
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a saved dataset through one engine and report timings.")
    Term.(
      ret
        (const run $ file_arg $ engine_arg $ budget_arg $ batch_arg $ shards_arg
       $ window_arg $ metrics_out_arg))

(* Interleave deterministic removals into an add-only stream: after every
   [1/churn] (rounded) applied additions, remove the oldest still-live
   edge.  Turns the generators' add-only datasets into the mixed
   add/remove replays the deletion machinery must survive. *)
let churn_stream churn stream =
  if churn <= 0.0 then stream
  else begin
    let period = max 1 (int_of_float (Float.round (1.0 /. churn))) in
    let q = Queue.create () in
    let live = Tric_graph.Edge.Tbl.create 4096 in
    let adds = ref 0 in
    let out = ref [] in
    let emit u = out := u :: !out in
    let pop_victim () =
      let victim = ref None in
      while !victim = None && not (Queue.is_empty q) do
        let e = Queue.pop q in
        if Tric_graph.Edge.Tbl.mem live e then victim := Some e
      done;
      !victim
    in
    Tric_graph.Stream.iter
      (fun u ->
        emit u;
        (match u.Tric_graph.Update.op with
        | Tric_graph.Update.Add e ->
          if not (Tric_graph.Edge.Tbl.mem live e) then begin
            Tric_graph.Edge.Tbl.replace live e ();
            Queue.push e q;
            incr adds
          end
        | Tric_graph.Update.Remove e -> Tric_graph.Edge.Tbl.remove live e);
        if !adds >= period then begin
          adds := 0;
          match pop_victim () with
          | Some e ->
            Tric_graph.Edge.Tbl.remove live e;
            emit (Tric_graph.Update.remove e)
          | None -> ()
        end)
      stream;
    Tric_graph.Stream.of_updates (List.rev !out)
  end

let audit_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Dataset file.") in
  let engine_arg =
    Arg.(value & opt string "TRIC+" & info [ "engine" ] ~docv:"NAME" ~doc:"Engine (TRIC, TRIC+, INV, INV+, INC, INC+).")
  in
  let every_arg =
    Arg.(value & opt int 500 & info [ "every" ] ~docv:"N" ~doc:"Audit every $(docv) updates (default 500).")
  in
  let churn_arg =
    Arg.(value & opt float 0.0 & info [ "churn" ] ~docv:"F" ~doc:"Interleave one removal per 1/$(docv) additions (0 = replay the stream as saved), exercising the deletion paths under audit.")
  in
  let metrics_out_arg =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc:"Run with telemetry enabled and, if the audit stays clean, write the metrics envelope to $(docv).")
  in
  let run file engine_name every churn batch shards window metrics_out =
    if batch < 1 then `Error (false, "--batch must be >= 1")
    else if every < 1 then `Error (false, "--every must be >= 1")
    else if churn < 0.0 || churn >= 1.0 then `Error (false, "--churn must be in [0, 1)")
    else if (match shards with Some s -> s < 1 | None -> false) then
      `Error (false, "--shards must be >= 1")
    else
      match parse_window window with
      | Error msg -> `Error (false, msg)
      | Ok window -> (
      let metrics = match metrics_out with Some _ -> Some true | None -> None in
      match Engine.Engines.by_name ?shards ?metrics ?window engine_name with
      | exception Invalid_argument msg -> `Error (false, msg)
      | engine -> (
        let d = W.Dataset.load file in
        let stream = churn_stream churn d.W.Dataset.stream in
        match
          Engine.Runner.run ~batch_size:batch ~audit_every:every ~engine
            ~queries:d.W.Dataset.queries ~stream ()
        with
        | r ->
          (match metrics_out with
          | Some path -> write_metrics ~path engine r
          | None -> ());
          engine.Engine.Matcher.shutdown ();
          Format.printf "%a@.audit: %d shadow audit(s), all clean@."
            Engine.Runner.pp_result r r.Engine.Runner.audits;
          `Ok ()
        | exception Engine.Runner.Audit_failure f ->
          engine.Engine.Matcher.shutdown ();
          Format.eprintf
            "@[<v>AUDIT FAILURE: %s diverged from ground truth after update %d@,%a@]@."
            f.engine f.update_index Tric_audit.Audit.pp_report f.findings;
          `Error (false, "audit failed")))
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Replay a saved dataset under shadow auditing: every N updates the engine's materialized state (views, indexes, caches, stats) is certified against an independent recomputation from the live edge set; the first divergence aborts with a finding report.")
    Term.(
      ret
        (const run $ file_arg $ engine_arg $ every_arg $ churn_arg $ batch_arg
       $ shards_arg $ window_arg $ metrics_out_arg))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let stats_cmd =
  let file_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Dataset file to replay (not needed with --check).")
  in
  let engine_arg =
    Arg.(value & opt string "TRIC+" & info [ "engine" ] ~docv:"NAME" ~doc:"Engine (TRIC, TRIC+, INV, INV+, INC, INC+).")
  in
  let format_arg =
    let fmt_conv = Arg.enum [ ("text", `Text); ("json", `Json); ("prometheus", `Prometheus) ] in
    Arg.(value & opt fmt_conv `Text & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text, json (the tric-metrics-v1 envelope) or prometheus (exposition text).")
  in
  let check_arg =
    Arg.(value & opt (some file) None & info [ "check" ] ~docv:"FILE" ~doc:"Parse a previously exported metrics JSON file, validate it against the tric-metrics-v1 envelope schema, and exit — no replay.")
  in
  let run file engine_name budget batch shards format check =
    match check with
    | Some path -> (
      match Obs.Json.parse (read_file path) with
      | Error msg -> `Error (false, Printf.sprintf "%s: JSON parse error: %s" path msg)
      | Ok doc -> (
        match Obs.Snapshot.validate doc with
        | Error msg -> `Error (false, Printf.sprintf "%s: invalid envelope: %s" path msg)
        | Ok n ->
          Format.printf "%s: valid %s envelope, %d metric(s)@." path
            Obs.Snapshot.schema_version n;
          `Ok ()))
    | None -> (
      match file with
      | None -> `Error (true, "a dataset FILE is required unless --check is given")
      | Some file ->
        if batch < 1 then `Error (false, "--batch must be >= 1")
        else if (match shards with Some s -> s < 1 | None -> false) then
          `Error (false, "--shards must be >= 1")
        else (
          match Engine.Engines.by_name ?shards ~metrics:true engine_name with
          | exception Invalid_argument msg -> `Error (false, msg)
          | engine ->
            let d = W.Dataset.load file in
            let r =
              Engine.Runner.run ?budget_s:budget ~batch_size:batch ~engine
                ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
            in
            (match format with
            | `Text ->
              Format.printf "%a@.@.%a@." Engine.Runner.pp_result r Obs.Snapshot.pp
                (engine.Engine.Matcher.metrics ());
              let mem = engine.Engine.Matcher.mem () in
              if Array.length mem > 0 then begin
                Format.printf "@.mem (packed arenas per shard):@.";
                Array.iteri
                  (fun sid (cap, live, free) ->
                    Format.printf "  shard %d: arena_rows=%d live_rows=%d freelist=%d@."
                      sid cap live free)
                  mem
              end
            | `Json -> print_string (Obs.Json.to_string ~pretty:true (metrics_envelope engine r))
            | `Prometheus ->
              print_string (Obs.Snapshot.to_prometheus (engine.Engine.Matcher.metrics ())));
            engine.Engine.Matcher.shutdown ();
            `Ok ()))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Replay a dataset with telemetry enabled and print the merged metrics snapshot (text, JSON envelope, or Prometheus exposition); or schema-check an exported metrics file with --check.")
    Term.(
      ret
        (const run $ file_arg $ engine_arg $ budget_arg $ batch_arg $ shards_arg
       $ format_arg $ check_arg))

let main =
  Cmd.group
    (Cmd.info "tric_cli" ~version:"1.0.0"
       ~doc:"Continuous multi-query processing over graph streams (EDBT 2020 reproduction).")
    [ list_cmd; run_cmd; demo_cmd; generate_cmd; replay_cmd; audit_cmd; stats_cmd ]

let () = exit (Cmd.eval main)
