(* Command-line driver: list and run the paper's experiments, or run an
   interactive demo of the engines. *)

open Cmdliner
module H = Tric_harness
module Engine = Tric_engine
module W = Tric_workloads

let config scale budget seed =
  let base = H.Config.from_env () in
  {
    H.Config.scale = Option.value ~default:base.H.Config.scale scale;
    budget_s = Option.value ~default:base.H.Config.budget_s budget;
    seed = Option.value ~default:base.H.Config.seed seed;
  }

let scale_arg =
  Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N" ~doc:"Divide the paper's sizes by $(docv) (default 25, env TRIC_SCALE).")

let budget_arg =
  Arg.(value & opt (some float) None & info [ "budget" ] ~docv:"SECONDS" ~doc:"Wall-clock budget per engine run (default 10, env TRIC_BUDGET).")

let seed_arg =
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed (default 7, env TRIC_SEED).")

let list_cmd =
  let run () =
    let fmt = Format.std_formatter in
    Format.fprintf fmt "%-18s %-12s %s@." "id" "paper" "title";
    List.iter
      (fun (e : H.Figures.t) ->
        Format.fprintf fmt "%-18s %-12s %s@." e.H.Figures.id e.H.Figures.paper_ref
          e.H.Figures.title)
      H.Figures.all;
    Format.fprintf fmt "@.Run one with: tric_cli run <id>@."
  in
  Cmd.v (Cmd.info "list" ~doc:"List all reproducible experiments.") Term.(const run $ const ())

let run_cmd =
  let id_arg =
    Arg.(value & pos 0 string "all" & info [] ~docv:"ID" ~doc:"Experiment id (or 'all').")
  in
  let run id scale budget seed =
    let cfg = config scale budget seed in
    let fmt = Format.std_formatter in
    match id with
    | "all" ->
      H.Figures.run_all cfg fmt;
      `Ok ()
    | id -> (
      match H.Figures.find id with
      | Some e ->
        H.Figures.run_one cfg fmt e;
        `Ok ()
      | None -> `Error (false, Printf.sprintf "unknown experiment %S (see 'tric_cli list')" id))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment (or all) and print the paper-style table.")
    Term.(ret (const run $ id_arg $ scale_arg $ budget_arg $ seed_arg))

let demo_cmd =
  let run seed =
    let seed = Option.value ~default:7 seed in
    let fmt = Format.std_formatter in
    let d =
      W.Dataset.make W.Dataset.Snb
        { W.Dataset.edges = 2_000; qdb = 50; avg_len = 4; selectivity = 0.3; overlap = 0.35; seed }
    in
    Format.fprintf fmt
      "Demo: %d continuous queries over a %d-update SNB-like stream, all engines.@.@."
      (List.length d.W.Dataset.queries)
      (Tric_graph.Stream.length d.W.Dataset.stream);
    List.iter
      (fun name ->
        let r =
          Engine.Runner.run ~budget_s:30.0 ~engine:(Engine.Engines.by_name name)
            ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
        in
        Format.fprintf fmt "%a@." Engine.Runner.pp_result r)
      Engine.Engines.paper_names
  in
  Cmd.v (Cmd.info "demo" ~doc:"Small end-to-end demo across all engines.")
    Term.(const run $ seed_arg)

let source_conv =
  let parse = function
    | "snb" | "SNB" -> Ok W.Dataset.Snb
    | "taxi" | "TAXI" -> Ok W.Dataset.Taxi
    | "biogrid" | "BioGRID" -> Ok W.Dataset.Biogrid
    | s -> Error (`Msg (Printf.sprintf "unknown source %S (snb|taxi|biogrid)" s))
  in
  let print fmt s = Format.pp_print_string fmt (W.Dataset.source_name s) in
  Arg.conv (parse, print)

let generate_cmd =
  let source_arg =
    Arg.(value & pos 0 source_conv W.Dataset.Snb & info [] ~docv:"SOURCE" ~doc:"snb, taxi or biogrid.")
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  let edges_arg = Arg.(value & opt int 10_000 & info [ "edges" ] ~docv:"N" ~doc:"Stream size.") in
  let qdb_arg = Arg.(value & opt int 500 & info [ "qdb" ] ~docv:"N" ~doc:"Query-set size.") in
  let run source out edges qdb seed =
    let d =
      W.Dataset.make source
        {
          W.Dataset.edges;
          qdb;
          avg_len = 5;
          selectivity = 0.25;
          overlap = 0.35;
          seed = Option.value ~default:7 seed;
        }
    in
    W.Dataset.save d out;
    Format.printf "wrote %s: %d updates, %d queries@." out
      (Tric_graph.Stream.length d.W.Dataset.stream)
      (List.length d.W.Dataset.queries)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a benchmark dataset and save it to a file.")
    Term.(const run $ source_arg $ out_arg $ edges_arg $ qdb_arg $ seed_arg)

let batch_arg =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Micro-batch size: hand the engine windows of $(docv) updates instead of one at a time (default 1).")

let replay_cmd =
  let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Dataset file.") in
  let engine_arg =
    Arg.(value & opt string "TRIC+" & info [ "engine" ] ~docv:"NAME" ~doc:"Engine (TRIC, TRIC+, INV, INV+, INC, INC+, GraphDB, ISO).")
  in
  let run file engine_name budget batch =
    if batch < 1 then `Error (false, "--batch must be >= 1")
    else
      match Engine.Engines.by_name engine_name with
      | exception Invalid_argument msg -> `Error (false, msg)
      | engine ->
        let d = W.Dataset.load file in
        let r =
          Engine.Runner.run ?budget_s:budget ~batch_size:batch ~engine
            ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
        in
        Format.printf "%a@." Engine.Runner.pp_result r;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a saved dataset through one engine and report timings.")
    Term.(ret (const run $ file_arg $ engine_arg $ budget_arg $ batch_arg))

let main =
  Cmd.group
    (Cmd.info "tric_cli" ~version:"1.0.0"
       ~doc:"Continuous multi-query processing over graph streams (EDBT 2020 reproduction).")
    [ list_cmd; run_cmd; demo_cmd; generate_cmd; replay_cmd ]

let () = exit (Cmd.eval main)
