(* Benchmark harness.

   Two sections:

   1. Bechamel micro-benchmarks — one Test.make per table/figure of the
      paper, measuring the per-update answering cost of a representative
      engine/workload configuration of that figure (plus a few
      infrastructure micro-benches: trie insertion, hash-join probes,
      Cypher parse+plan).

   2. The figure harness — regenerates every table and figure of §6 as a
      paper-style text table via Tric_harness.Figures (workload generator,
      parameter sweep, all baselines, timeout truncation).

   Environment: TRIC_SCALE (divide the paper's sizes; default 50),
   TRIC_BUDGET (seconds per engine run; default 20), TRIC_SEED. *)

open Bechamel
module W = Tric_workloads
module E = Tric_engine
module H = Tric_harness

(* -- Micro-bench helpers ----------------------------------------------------- *)

let getenv_int k default =
  match Option.bind (Sys.getenv_opt k) int_of_string_opt with
  | Some v when v > 0 -> v
  | _ -> default

module J = Tric_obs.Json

(* Shared emission for the BENCH_*.json artifacts — one deterministic
   printer for every report instead of per-report hand-rolled Printf
   JSON. *)
let write_bench_json fmt ~file ~bench fields =
  let doc = J.Obj (("bench", J.Str bench) :: fields) in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~pretty:true doc));
  Format.fprintf fmt "wrote %s@.@." file

let workload_fields ~source ~edges ~qdb =
  [ ("source", J.Str source); ("edges", J.int edges); ("qdb", J.int qdb) ]

(* A prepared engine mid-stream: queries indexed, half the stream applied;
   the benched function applies the next update from the second half.  On
   wrap the benched polarity flips: the pass that re-visits the window
   removes its edges, the next pass re-inserts them, and so on — every
   sample is real maintenance work.  (Replaying additions of
   already-present edges, as this bench once did, silently degrades long
   runs into measuring dedup no-op hits.) *)
let update_dispatch_bench ?(shards = 1) ~name ~engine_name ~source ~edges ~qdb () =
  let d =
    W.Dataset.make source
      {
        W.Dataset.edges;
        qdb;
        avg_len = 5;
        selectivity = 0.25;
        overlap = 0.35;
        seed = 7;
      }
  in
  let engine = E.Engines.by_name ~shards engine_name in
  List.iter engine.E.Matcher.add_query d.W.Dataset.queries;
  let stream = d.W.Dataset.stream in
  let n = Tric_graph.Stream.length stream in
  let half = n / 2 in
  for i = 0 to half - 1 do
    ignore (engine.E.Matcher.handle_update (Tric_graph.Stream.get stream i))
  done;
  let pos = ref half in
  let removing = ref false in
  Test.make ~name (Staged.stage (fun () ->
      let i = !pos in
      let u = Tric_graph.Stream.get stream i in
      let u =
        if !removing then Tric_graph.Update.remove (Tric_graph.Update.edge u) else u
      in
      ignore (engine.E.Matcher.handle_update u);
      if i + 1 >= n then begin
        pos := half;
        removing := not !removing
      end
      else pos := i + 1))

(* Micro-batched dispatch: same prepared engine, but the benched step hands
   a whole window to [handle_batch].  Same polarity flip on wrap. *)
let batch_dispatch_bench ~name ~engine_name ~batch ~source ~edges ~qdb =
  let d =
    W.Dataset.make source
      {
        W.Dataset.edges;
        qdb;
        avg_len = 5;
        selectivity = 0.25;
        overlap = 0.35;
        seed = 7;
      }
  in
  let engine = E.Engines.by_name engine_name in
  List.iter engine.E.Matcher.add_query d.W.Dataset.queries;
  let stream = d.W.Dataset.stream in
  let n = Tric_graph.Stream.length stream in
  let half = n / 2 in
  for i = 0 to half - 1 do
    ignore (engine.E.Matcher.handle_update (Tric_graph.Stream.get stream i))
  done;
  let pos = ref half in
  let removing = ref false in
  Test.make ~name
    (Staged.stage (fun () ->
         let lo = !pos in
         let hi = min n (lo + batch) in
         let window =
           List.init (hi - lo) (fun j ->
               let u = Tric_graph.Stream.get stream (lo + j) in
               if !removing then Tric_graph.Update.remove (Tric_graph.Update.edge u)
               else u)
         in
         ignore (engine.E.Matcher.handle_batch window);
         if hi >= n then begin
           pos := half;
           removing := not !removing
         end
         else pos := hi))

(* Deletion-heavy dispatch (the §4.3 maintenance path): engine prepared as
   above, but the benched step applies one addition and then removes that
   same edge — a 50% add / 50% remove churn stream.  Before the removal
   path was made incremental this paid a full-view rescan per affected node
   plus a global embedding-cache invalidation per removal. *)
let churn_dispatch_bench ~name ~engine_name ~source ~edges ~qdb =
  let d =
    W.Dataset.make source
      {
        W.Dataset.edges;
        qdb;
        avg_len = 5;
        selectivity = 0.25;
        overlap = 0.35;
        seed = 7;
      }
  in
  let engine = E.Engines.by_name engine_name in
  List.iter engine.E.Matcher.add_query d.W.Dataset.queries;
  let stream = d.W.Dataset.stream in
  let n = Tric_graph.Stream.length stream in
  let half = n / 2 in
  for i = 0 to half - 1 do
    ignore (engine.E.Matcher.handle_update (Tric_graph.Stream.get stream i))
  done;
  let pos = ref half in
  Test.make ~name
    (Staged.stage (fun () ->
         let i = !pos in
         pos := if i + 1 >= n then half else i + 1;
         let u = Tric_graph.Stream.get stream i in
         ignore (engine.E.Matcher.handle_update u);
         ignore
           (engine.E.Matcher.handle_update
              (Tric_graph.Update.remove (Tric_graph.Update.edge u)))))

(* Run a 50% add / 50% remove stream end-to-end through TRIC/TRIC+ and
   print the deletion-maintenance counters: [delta_probes] shows removals
   were answered by prefix/hinge index lookups (not view rescans) and
   [invalidations_avoided] shows untouched queries kept their caches. *)
let churn_stats_report fmt =
  let edges = getenv_int "TRIC_CHURN_EDGES" 2_000 in
  let qdb = getenv_int "TRIC_CHURN_QDB" 100 in
  let d =
    W.Dataset.make W.Dataset.Snb
      { W.Dataset.edges; qdb; avg_len = 5; selectivity = 0.25; overlap = 0.35; seed = 7 }
  in
  Format.fprintf fmt "=== Deletion maintenance counters (50%% add / 50%% remove, SNB) ===@.@.";
  Format.fprintf fmt
    "prime first half of %d edges, then churn the second half (qdb=%d)@.@." edges qdb;
  let entries =
    List.map
      (fun cache ->
        let t = Tric_core.Tric.create ~cache () in
        List.iter (Tric_core.Tric.add_query t) d.W.Dataset.queries;
        let s = d.W.Dataset.stream in
        let n = Tric_graph.Stream.length s in
        for i = 0 to (n / 2) - 1 do
          ignore (Tric_core.Tric.handle_update t (Tric_graph.Stream.get s i))
        done;
        let t0 = Unix.gettimeofday () in
        for i = n / 2 to n - 1 do
          let u = Tric_graph.Stream.get s i in
          ignore (Tric_core.Tric.handle_update t u);
          ignore
            (Tric_core.Tric.handle_update t
               (Tric_graph.Update.remove (Tric_graph.Update.edge u)))
        done;
        let dt = Unix.gettimeofday () -. t0 in
        Format.fprintf fmt "%-6s churn %.3fs  %a@." (Tric_core.Tric.name t) dt
          Tric_core.Tric.pp_stats (Tric_core.Tric.stats t);
        (Tric_core.Tric.name t, dt, Tric_core.Tric.stats t))
      [ false; true ]
  in
  Format.fprintf fmt "@.";
  write_bench_json fmt ~file:"BENCH_churn.json" ~bench:"churn-5050"
    (workload_fields ~source:"snb" ~edges ~qdb
    @ [
        ( "engines",
          J.Arr
            (List.map
               (fun (name, dt, s) ->
                 J.Obj
                   [
                     ("engine", J.Str name);
                     ("churn_s", J.Num dt);
                     ("removals", J.int s.Tric_core.Tric.removals);
                     ("noop_removals", J.int s.Tric_core.Tric.noop_removals);
                     ("tuples_removed", J.int s.Tric_core.Tric.tuples_removed);
                     ( "invalidations_avoided",
                       J.int s.Tric_core.Tric.invalidations_avoided );
                     ("delta_probes", J.int s.Tric_core.Tric.delta_probes);
                   ])
               entries) );
      ])

(* Per-update vs micro-batched replay of an add-only SNB stream, end to
   end through the Runner: the batched path must amortise trie sweeps and
   final joins into a clear updates/sec win (the acceptance bar is >= 1.5x
   at batch 64 for the non-caching engine). *)
let batch_throughput_report fmt =
  let edges = getenv_int "TRIC_BATCH_EDGES" 4_000 in
  let qdb = getenv_int "TRIC_BATCH_QDB" 100 in
  let d =
    W.Dataset.make W.Dataset.Snb
      { W.Dataset.edges; qdb; avg_len = 5; selectivity = 0.25; overlap = 0.35; seed = 7 }
  in
  Format.fprintf fmt
    "=== Micro-batch throughput (add-only SNB, %d updates, qdb=%d) ===@.@." edges qdb;
  let measured =
    List.map
      (fun name ->
        let base = ref 0.0 in
        let points =
          List.map
            (fun b ->
              let r =
                E.Runner.run ~batch_size:b ~engine:(E.Engines.by_name name)
                  ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
              in
              if b = 1 then base := r.E.Runner.throughput_ups;
              let speedup =
                if !base > 0.0 then r.E.Runner.throughput_ups /. !base else 1.0
              in
              Format.fprintf fmt "%-6s batch=%-4d %10.0f upd/s  mean %.4f ms/upd%s@."
                name b r.E.Runner.throughput_ups r.E.Runner.mean_ms
                (if b = 1 then "" else Printf.sprintf "  (%.2fx vs per-update)" speedup);
              (b, r.E.Runner.throughput_ups, r.E.Runner.mean_ms, speedup))
            [ 1; 64; 256 ]
        in
        (name, points))
      [ "TRIC"; "TRIC+" ]
  in
  Format.fprintf fmt "@.";
  write_bench_json fmt ~file:"BENCH_batch.json" ~bench:"batch-throughput"
    (workload_fields ~source:"snb" ~edges ~qdb
    @ [
        ( "engines",
          J.Arr
            (List.map
               (fun (name, points) ->
                 J.Obj
                   [
                     ("engine", J.Str name);
                     ( "points",
                       J.Arr
                         (List.map
                            (fun (b, ups, mean_ms, speedup) ->
                              J.Obj
                                [
                                  ("batch", J.int b);
                                  ("upd_per_s", J.Num ups);
                                  ("mean_ms", J.Num mean_ms);
                                  ("speedup_vs_batch1", J.Num speedup);
                                ])
                            points) );
                   ])
               measured) );
      ])

(* Assoc lookup with explicit string equality (engine stats lists). *)
let stat_int key l =
  match List.find_opt (fun (k, _) -> String.equal k key) l with
  | Some (_, v) -> v
  | None -> 0

(* Windowed replay: the same timestamped SNB stream through a time-sliding
   windowed TRIC+ at three spans (1k/10k/100k seconds against a ~10s mean
   event gap), per-update and in 64-update micro-batches, in event-time
   order and with 10% skewed lateness.  The numbers that matter:
   [expired_per_wave] is the expiry-batch amortization — how many expired
   edges each watermark advance folds into one net-op removal batch
   (retention runs per update, so the batched rows keep the same wave
   count and amortize the engine feed instead); [late_dropped] confirms
   the watermark discards stragglers instead of corrupting the window.
   Written to BENCH_window.json. *)
let window_report fmt =
  let edges = getenv_int "TRIC_WINDOW_EDGES" 8_000 in
  let qdb = getenv_int "TRIC_WINDOW_QDB" 100 in
  let d =
    W.Dataset.make W.Dataset.Snb
      { W.Dataset.edges; qdb; avg_len = 5; selectivity = 0.25; overlap = 0.35; seed = 7 }
  in
  let mean_gap = 10.0 in
  let spans = [ 1_000; 10_000; 100_000 ] in
  let batches = [ 1; 64 ] in
  let regimes = [ ("in-order", 0.0); ("late-10pct", 0.1) ] in
  Format.fprintf fmt
    "=== Windowed throughput and expiry amortization (SNB, %d updates, qdb=%d, mean gap %.0fs) ===@.@."
    edges qdb mean_gap;
  let measured =
    List.map
      (fun (regime, late_frac) ->
        Format.fprintf fmt "%s:@." regime;
        let stream =
          W.Snb.generate_timed ~mean_gap ~late_frac ~late_max:5_000 ~seed:7 ~edges ()
        in
        let points =
          List.concat_map
            (fun span ->
              let spec =
                Tric_query.Wspec.Time { shape = Tric_query.Wspec.Sliding; span }
              in
              List.map
                (fun batch ->
                  let engine =
                    E.Engines.windowed_spec ~default:spec (fun () ->
                        E.Engines.tric ~cache:true ())
                  in
                  let r =
                    E.Runner.run ~measure_memory:false ~batch_size:batch ~engine
                      ~queries:d.W.Dataset.queries ~stream ()
                  in
                  let stats = engine.E.Matcher.stats () in
                  engine.E.Matcher.shutdown ();
                  let expired = stat_int "win_expired_edges" stats in
                  let waves = stat_int "win_expiry_batches" stats in
                  let late = stat_int "win_late_dropped" stats in
                  let live = stat_int "win_live_edges" stats in
                  let amort =
                    if waves > 0 then float_of_int expired /. float_of_int waves
                    else 0.0
                  in
                  Format.fprintf fmt
                    "  span %-7ds batch=%-3d %10.0f upd/s  expired %6d in %5d waves \
                     (%.1f edges/wave)  late dropped %5d  live %6d@."
                    span batch r.E.Runner.throughput_ups expired waves amort late live;
                  (span, batch, r.E.Runner.throughput_ups, expired, waves, amort, late, live))
                batches)
            spans
        in
        Format.fprintf fmt "@.";
        (regime, late_frac, points))
      regimes
  in
  write_bench_json fmt ~file:"BENCH_window.json" ~bench:"window-expiry"
    (workload_fields ~source:"snb" ~edges ~qdb
    @ [
        ("engine", J.Str "TRIC+");
        ("mean_gap_s", J.Num mean_gap);
        ( "regimes",
          J.Arr
            (List.map
               (fun (regime, late_frac, points) ->
                 J.Obj
                   [
                     ("regime", J.Str regime);
                     ("late_frac", J.Num late_frac);
                     ( "points",
                       J.Arr
                         (List.map
                            (fun (span, batch, ups, expired, waves, amort, late, live) ->
                              J.Obj
                                [
                                  ("span_s", J.int span);
                                  ("batch", J.int batch);
                                  ("upd_per_s", J.Num ups);
                                  ("expired_edges", J.int expired);
                                  ("expiry_waves", J.int waves);
                                  ("expired_per_wave", J.Num amort);
                                  ("late_dropped", J.int late);
                                  ("live_edges", J.int live);
                                ])
                            points) );
                   ])
               measured) );
      ])

(* Domain-scaling report: replay the same SNB workload through the sharded
   dispatcher at 1/2/4/8 domains — add-only, and 50/50 churn (every
   second-half addition immediately retracted) — and report updates/s,
   wall-clock, and aggregated per-shard busy time.  Wall vs busy is the
   honest split: on a single-core container the domains time-slice one
   CPU, so wall cannot drop below the x1 row no matter how cleanly the
   work shards; points where [cores < shards] are flagged so the wall
   numbers cannot be misread as a dispatch regression (or win) the
   hardware makes impossible to observe.  [busy_speedup] compares total
   task seconds against the x1 row — it moves with dispatch overhead
   even on one core — and [fanout] is the mean shards dispatched per net
   op, which owner-targeted routing keeps near the affected-shard count
   instead of nshards.  The points are also written to BENCH_shard.json
   so scaling trajectories can be compared across commits and
   machines. *)
let shard_scaling_report fmt =
  let edges = getenv_int "TRIC_SHARD_EDGES" 4_000 in
  let qdb = getenv_int "TRIC_SHARD_QDB" 100 in
  let d =
    W.Dataset.make W.Dataset.Snb
      { W.Dataset.edges; qdb; avg_len = 5; selectivity = 0.25; overlap = 0.35; seed = 7 }
  in
  let churned =
    let s = d.W.Dataset.stream in
    let n = Tric_graph.Stream.length s in
    let half = n / 2 in
    let out = ref [] in
    for i = 0 to n - 1 do
      let u = Tric_graph.Stream.get s i in
      out := u :: !out;
      if i >= half then
        out := Tric_graph.Update.remove (Tric_graph.Update.edge u) :: !out
    done;
    Tric_graph.Stream.of_updates (List.rev !out)
  in
  Format.fprintf fmt
    "=== Shard scaling (SNB, %d updates, qdb=%d, %d core(s) available) ===@.@."
    edges qdb (Domain.recommended_domain_count ());
  let cores = Domain.recommended_domain_count () in
  let regimes = [ ("add-only", d.W.Dataset.stream); ("churn-50", churned) ] in
  let measured =
    List.map
      (fun (regime, stream) ->
        Format.fprintf fmt "%s:@." regime;
        let base = ref 0.0 in
        let busy_base = ref 0.0 in
        let points =
          List.map
            (fun shards ->
              let engine = E.Engines.tric ~cache:true ~shards () in
              let r =
                E.Runner.run ~measure_memory:false ~engine
                  ~queries:d.W.Dataset.queries ~stream ()
              in
              let stats = engine.E.Matcher.stats () in
              engine.E.Matcher.shutdown ();
              let routed = stat_int "ops_routed" stats in
              let fanout =
                if routed > 0 then
                  float_of_int (stat_int "ops_dispatched" stats) /. float_of_int routed
                else 0.0
              in
              if shards = 1 then begin
                base := r.E.Runner.throughput_ups;
                busy_base := r.E.Runner.busy_s
              end;
              let speedup =
                if !base > 0.0 then r.E.Runner.throughput_ups /. !base else 1.0
              in
              let busy_speedup =
                if r.E.Runner.busy_s > 0.0 then !busy_base /. r.E.Runner.busy_s
                else 1.0
              in
              let limited = cores < shards in
              Format.fprintf fmt
                "  TRIC+ x%-2d %10.0f upd/s  wall %6.3fs  busy %6.3fs  fanout %4.2f  \
                 (%.2fx wall, %.2fx busy vs x1)%s@."
                shards r.E.Runner.throughput_ups r.E.Runner.answer_time_s
                r.E.Runner.busy_s fanout speedup busy_speedup
                (if limited then "  [cores < shards]" else "");
              ( shards, r.E.Runner.throughput_ups, r.E.Runner.answer_time_s,
                r.E.Runner.busy_s, speedup, busy_speedup, fanout, limited ))
            [ 1; 2; 4; 8 ]
        in
        Format.fprintf fmt "@.";
        (regime, points))
      regimes
  in
  write_bench_json fmt ~file:"BENCH_shard.json" ~bench:"shard-scaling"
    (workload_fields ~source:"snb" ~edges ~qdb
    @ [
        ("cores", J.int (Domain.recommended_domain_count ()));
        ( "regimes",
          J.Arr
            (List.map
               (fun (regime, points) ->
                 J.Obj
                   [
                     ("regime", J.Str regime);
                     ( "points",
                       J.Arr
                         (List.map
                            (fun
                              (shards, ups, wall, busy, speedup, busy_speedup,
                               fanout, limited)
                            ->
                              J.Obj
                                [
                                  ("shards", J.int shards);
                                  ("upd_per_s", J.Num ups);
                                  ("wall_s", J.Num wall);
                                  ("busy_s", J.Num busy);
                                  ("speedup_vs_x1", J.Num speedup);
                                  ("busy_speedup_vs_x1", J.Num busy_speedup);
                                  ("dispatch_fanout", J.Num fanout);
                                  ("cores_limited", J.Bool limited);
                                ])
                            points) );
                   ])
               measured) );
      ])

(* Dispatch-fanout smoke: a label-partitioned workload — single-edge
   all-variable queries over pairwise-distinct labels, so every update
   matches exactly one registered key and therefore affects exactly one
   shard — replayed through a 4-shard engine.  Owner-targeted dispatch
   must keep the mean shards-per-op near 1.0; a broadcast dispatcher
   scores nshards (4.0) on the same stream, so [strict] mode fails the
   run when the mean exceeds TRIC_FANOUT_MAX (default 1.5). *)
let fanout_report ?(strict = false) fmt =
  let shards = 4 in
  let nlabels = getenv_int "TRIC_FANOUT_LABELS" 16 in
  let n = getenv_int "TRIC_FANOUT_EDGES" 2_000 in
  let max_fanout =
    match Option.bind (Sys.getenv_opt "TRIC_FANOUT_MAX") float_of_string_opt with
    | Some v when v > 0.0 -> v
    | _ -> 1.5
  in
  let labels = Array.init nlabels (fun i -> Printf.sprintf "fan%d" i) in
  let queries =
    Array.to_list
      (Array.mapi
         (fun i l ->
           let b =
             Tric_query.Pattern.Builder.create ~name:("fan-" ^ l) ~id:(i + 1) ()
           in
           let x = Tric_query.Pattern.Builder.vertex b (Tric_query.Term.var "x") in
           let y = Tric_query.Pattern.Builder.vertex b (Tric_query.Term.var "y") in
           Tric_query.Pattern.Builder.edge b ~label:(Tric_graph.Label.intern l) x y;
           Tric_query.Pattern.Builder.build b)
         labels)
  in
  let t = Tric_core.Tric.create ~cache:true ~shards () in
  Fun.protect
    ~finally:(fun () -> Tric_core.Tric.shutdown t)
    (fun () ->
      List.iter (Tric_core.Tric.add_query t) queries;
      for i = 0 to n - 1 do
        ignore
          (Tric_core.Tric.handle_update t
             (Tric_graph.Update.add
                (Tric_graph.Edge.of_strings
                   labels.(i mod nlabels)
                   (Printf.sprintf "s%d" i)
                   (Printf.sprintf "t%d" i))))
      done;
      let s = Tric_core.Tric.stats t in
      let fanout =
        if s.Tric_core.Tric.ops_routed > 0 then
          float_of_int s.Tric_core.Tric.ops_dispatched
          /. float_of_int s.Tric_core.Tric.ops_routed
        else 0.0
      in
      Format.fprintf fmt
        "=== Dispatch fanout (label-partitioned, %d queries, %d updates, x%d) ===@.@."
        nlabels n shards;
      Format.fprintf fmt
        "ops routed %d, dispatched %d — mean %.3f shard(s)/op (broadcast would be %.1f)@.@."
        s.Tric_core.Tric.ops_routed s.Tric_core.Tric.ops_dispatched fanout
        (float_of_int shards);
      if strict && fanout > max_fanout then begin
        Format.fprintf fmt
          "FAIL: mean dispatch fanout %.3f exceeds %.2f — dispatcher is broadcasting@."
          fanout max_fanout;
        exit 1
      end)

(* Telemetry overhead smoke: the same batched SNB replay through TRIC+
   with metrics off and on, best-of-3 throughput each side.  [strict]
   makes an overhead above TRIC_OVERHEAD_MAX_PCT (default 5%) a failing
   exit — the CI enforcement of the cheap-when-enabled budget (disabled
   mode is separately covered by the zero-allocation span test). *)
let overhead_report ?(strict = false) fmt =
  let edges = getenv_int "TRIC_OVERHEAD_EDGES" 4_000 in
  let qdb = getenv_int "TRIC_OVERHEAD_QDB" 100 in
  let max_pct = float_of_int (getenv_int "TRIC_OVERHEAD_MAX_PCT" 5) in
  let d =
    W.Dataset.make W.Dataset.Snb
      { W.Dataset.edges; qdb; avg_len = 5; selectivity = 0.25; overlap = 0.35; seed = 7 }
  in
  let best metrics =
    let one () =
      let engine = E.Engines.tric ~cache:true ~metrics () in
      let r =
        E.Runner.run ~measure_memory:false ~batch_size:64 ~engine
          ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
      in
      engine.E.Matcher.shutdown ();
      r.E.Runner.throughput_ups
    in
    List.fold_left (fun acc () -> Float.max acc (one ())) 0.0 [ (); (); () ]
  in
  let off = best false in
  let on = best true in
  let pct = if off > 0.0 then (off -. on) /. off *. 100.0 else 0.0 in
  Format.fprintf fmt
    "=== Telemetry overhead (TRIC+, batch=64, SNB %d updates, qdb=%d, best of 3) ===@.@."
    edges qdb;
  Format.fprintf fmt "metrics off %10.0f upd/s@.metrics on  %10.0f upd/s@." off on;
  Format.fprintf fmt "overhead    %+9.2f%%  (budget %.0f%%)@.@." pct max_pct;
  if strict && pct > max_pct then begin
    Format.fprintf fmt "FAIL: telemetry overhead %.2f%% exceeds %.0f%% budget@." pct
      max_pct;
    exit 1
  end

(* Data-layout report: live-heap words and per-update allocation on a
   fixed per-update SNB replay, emitted as BENCH_layout.json next to the
   pre-refactor baseline (the boxed Tuple.t-list representation, measured
   at the commit preceding the packed row-store on the same workload and
   recorded here as constants).  [strict] additionally enforces the
   allocation-regression budget: mean minor words allocated per update
   must stay under TRIC_ALLOC_MAX_WORDS (the CI smoke for GC pressure on
   the hot path — boxed-tuple regressions show up here first). *)
let layout_report ?(strict = false) fmt =
  let edges = getenv_int "TRIC_LAYOUT_EDGES" 3_000 in
  let qdb = getenv_int "TRIC_LAYOUT_QDB" 60 in
  let max_minor = float_of_int (getenv_int "TRIC_ALLOC_MAX_WORDS" 60_000) in
  (* Boxed-layout numbers at the same workload (edges=3000 qdb=60 seed=7),
     measured immediately before the packed row-store landed.  Only
     comparable at the default workload parameters. *)
  let baseline_live_words, baseline_upd_s, baseline_minor_per_upd =
    (407_935.0, 120_000.0, 1_367.0)
  in
  let d =
    W.Dataset.make W.Dataset.Snb
      { W.Dataset.edges; qdb; avg_len = 5; selectivity = 0.25; overlap = 0.35; seed = 7 }
  in
  let run engine_name =
    let engine = E.Engines.by_name engine_name in
    List.iter engine.E.Matcher.add_query d.W.Dataset.queries;
    let stream = d.W.Dataset.stream in
    let n = Tric_graph.Stream.length stream in
    let m0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      ignore (engine.E.Matcher.handle_update (Tric_graph.Stream.get stream i))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let minor = (Gc.minor_words () -. m0) /. float_of_int n in
    Gc.full_major ();
    let live = engine.E.Matcher.memory_words () in
    engine.E.Matcher.shutdown ();
    (float_of_int n /. dt, minor, live)
  in
  let plus_ups, plus_minor, plus_live = run "TRIC+" in
  let plain_ups, plain_minor, plain_live = run "TRIC" in
  Format.fprintf fmt "=== Data layout (SNB %d updates, qdb=%d, per-update) ===@.@." edges qdb;
  Format.fprintf fmt "%-8s %12s %16s %18s@." "engine" "upd/s" "live heap words"
    "minor words/upd";
  Format.fprintf fmt "%-8s %12.0f %16d %18.0f@." "TRIC+" plus_ups plus_live plus_minor;
  Format.fprintf fmt "%-8s %12.0f %16d %18.0f@." "TRIC" plain_ups plain_live plain_minor;
  if baseline_live_words > 0.0 then
    Format.fprintf fmt "@.boxed baseline (TRIC+): %.0f upd/s, %.0f live words, %.0f minor words/upd@."
      baseline_upd_s baseline_live_words baseline_minor_per_upd;
  Format.fprintf fmt "@.";
  write_bench_json fmt ~file:"BENCH_layout.json" ~bench:"layout"
    (workload_fields ~source:"snb" ~edges ~qdb
    @ [
        ( "packed",
          J.Obj
            [
              ("tric_plus_upd_s", J.Num plus_ups);
              ("tric_plus_live_words", J.int plus_live);
              ("tric_plus_minor_words_per_update", J.Num plus_minor);
              ("tric_upd_s", J.Num plain_ups);
              ("tric_live_words", J.int plain_live);
              ("tric_minor_words_per_update", J.Num plain_minor);
            ] );
        ( "boxed_baseline",
          J.Obj
            [
              ("tric_plus_upd_s", J.Num baseline_upd_s);
              ("tric_plus_live_words", J.Num baseline_live_words);
              ("tric_plus_minor_words_per_update", J.Num baseline_minor_per_upd);
            ] );
        ("alloc_budget_minor_words_per_update", J.Num max_minor);
      ]);
  if strict && plus_minor > max_minor then begin
    Format.fprintf fmt
      "FAIL: TRIC+ allocates %.0f minor words/update, budget is %.0f (TRIC_ALLOC_MAX_WORDS)@."
      plus_minor max_minor;
    exit 1
  end

(* -- Subscription-server fan-out --------------------------------------------- *)

(* End-to-end socket pipeline: publish → journal → engine → per-client
   outbox → notification at every subscriber.  [conns] long-lived
   subscriber connections each register [subs / conns] standing queries
   (every query is shared by all connections, so a matching update fans
   out to every one of them).  Latency is publish-to-last-notification;
   throughput counts fully delivered updates.  Written to
   BENCH_server.json. *)
module Srv = Tric_server

let server_point ~conns ~subs ~edges =
  let dir = Filename.get_temp_dir_name () in
  let tag = Printf.sprintf "tric_bench_%d_%d" (Unix.getpid ()) subs in
  let sock = Filename.concat dir (tag ^ ".sock") in
  let journal = Filename.concat dir (tag ^ ".journal") in
  let scratch = [ sock; journal; journal ^ ".snap"; journal ^ ".snap.tmp" ] in
  let clean () = List.iter (fun p -> if Sys.file_exists p then Sys.remove p) scratch in
  clean ();
  let cfg =
    {
      (Srv.Server.default_config ~sock_path:sock ~journal_path:journal) with
      Srv.Server.snapshot_every = 0;
      outbox_soft = 4096;
      outbox_hard = 16384;
    }
  in
  let t = Srv.Server.create cfg in
  let d = Domain.spawn (fun () -> Srv.Server.serve t) in
  Fun.protect ~finally:clean (fun () ->
      let nqueries = max 1 (subs / conns) in
      let clients =
        Array.init conns (fun i ->
            let cl = Srv.Client.connect sock in
            ignore (Srv.Client.hello cl (Printf.sprintf "c%d" i));
            cl)
      in
      (* Registrations are pipelined: send them all, then collect the
         acknowledgements. *)
      Array.iter
        (fun cl ->
          for q = 0 to nqueries - 1 do
            Srv.Client.send cl
              (Srv.Wire.Register { name = "bench"; pattern = Printf.sprintf "?x -l%d-> ?y" q })
          done)
        clients;
      Array.iter
        (fun cl ->
          for _ = 1 to nqueries do
            match Srv.Client.recv_exn ~timeout_s:120.0 cl with
            | Srv.Wire.Registered _ -> ()
            | _ -> failwith "server bench: unexpected reply during registration"
          done)
        clients;
      let pub = Srv.Client.connect sock in
      let rec wait_puback () =
        match Srv.Client.recv_exn ~timeout_s:120.0 pub with
        | Srv.Wire.Puback { useq; _ } -> useq
        | _ -> wait_puback ()
      in
      let rec wait_notify cl useq =
        match Srv.Client.recv_exn ~timeout_s:120.0 cl with
        | Srv.Wire.Notify { useq = u; _ } when u = useq -> ()
        | _ -> wait_notify cl useq
      in
      let lat = Array.make edges 0.0 in
      let t0 = Unix.gettimeofday () in
      for i = 0 to edges - 1 do
        let q = i mod nqueries in
        let ts = Unix.gettimeofday () in
        Srv.Client.send pub
          (Srv.Wire.Publish { pseq = i; update = Printf.sprintf "s%d -l%d-> t%d" i q i });
        let useq = wait_puback () in
        Array.iter (fun cl -> wait_notify cl useq) clients;
        lat.(i) <- Unix.gettimeofday () -. ts;
        if i mod 64 = 63 then
          Array.iter (fun cl -> Srv.Client.send cl (Srv.Wire.Ack { useq })) clients
      done;
      let dt = Unix.gettimeofday () -. t0 in
      Srv.Client.send pub Srv.Wire.Quit;
      (try
         match Srv.Client.recv_exn ~timeout_s:10.0 pub with _ -> ()
       with End_of_file -> ());
      Domain.join d;
      Srv.Client.close pub;
      Array.iter Srv.Client.close clients;
      Array.sort Float.compare lat;
      let pct p =
        let n = Array.length lat in
        lat.(max 0 (min (n - 1) (int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1)))
      in
      ( float_of_int edges /. dt,
        pct 50.0 *. 1_000.0,
        pct 99.0 *. 1_000.0,
        conns * nqueries ))

let server_report fmt =
  let conns = 16 in
  let edges = getenv_int "TRIC_SERVER_EDGES" 1_000 in
  let points =
    match Option.bind (Sys.getenv_opt "TRIC_SERVER_SUBS") int_of_string_opt with
    | Some s when s > 0 -> [ s ]
    | _ -> [ 1_000; 10_000; 100_000 ]
  in
  Format.fprintf fmt
    "=== Subscription server (%d connections, %d updates/point, full fan-out) ===@.@."
    conns edges;
  Format.fprintf fmt "%12s %10s %12s %12s %12s@." "target subs" "actual" "upd/s" "p50 ms"
    "p99 ms";
  let rows =
    List.map
      (fun subs ->
        let upd_s, p50, p99, actual = server_point ~conns ~subs ~edges in
        Format.fprintf fmt "%12d %10d %12.0f %12.3f %12.3f@." subs actual upd_s p50 p99;
        J.Obj
          [
            ("subscriptions", J.int actual);
            ("connections", J.int conns);
            ("updates", J.int edges);
            ("upd_per_s", J.Num upd_s);
            ("notify_p50_ms", J.Num p50);
            ("notify_p99_ms", J.Num p99);
          ])
      points
  in
  Format.fprintf fmt "@.";
  write_bench_json fmt ~file:"BENCH_server.json" ~bench:"server-fanout"
    [ ("engine", J.Str "TRIC+"); ("points", J.Arr rows) ]

let run_and_report fmt tests =
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:false () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |]
  in
  Format.fprintf fmt "%-42s %14s@." "micro-benchmark" "ns/op";
  Format.fprintf fmt "%s@." (String.make 58 '-');
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let result = Analyze.one ols Toolkit.Instance.monotonic_clock raw in
          let ns =
            match Analyze.OLS.estimates result with
            | Some (e :: _) -> e
            | Some [] | None -> nan
          in
          Format.fprintf fmt "%-42s %14.1f@." (Test.Elt.name elt) ns)
        (Test.elements test))
    tests;
  Format.fprintf fmt "@."

(* -- Micro-benchmarks -------------------------------------------------------- *)

let infra_benches () =
  (* Relation insert + probe. *)
  let rel = Tric_rel.Relation.create ~cache:true ~width:2 () in
  let labels = Array.init 1000 (fun i -> Tric_graph.Label.intern (Printf.sprintf "L%d" i)) in
  let cnt = ref 0 in
  let insert_bench =
    Test.make ~name:"relation: insert w=2"
      (Staged.stage (fun () ->
           incr cnt;
           ignore
             (Tric_rel.Relation.insert rel
                [| labels.(!cnt mod 1000); labels.((!cnt * 7) mod 1000) |])))
  in
  let probe = Tric_rel.Relation.index_on rel ~col:0 in
  let probe_bench =
    Test.make ~name:"relation: cached index probe"
      (Staged.stage (fun () ->
           incr cnt;
           ignore (probe labels.(!cnt mod 1000))))
  in
  (* Covering-path extraction + trie insertion. *)
  let patterns =
    let d =
      W.Dataset.make W.Dataset.Snb
        { W.Dataset.edges = 2_000; qdb = 256; avg_len = 5; selectivity = 0.25; overlap = 0.35; seed = 3 }
    in
    Array.of_list d.W.Dataset.queries
  in
  let pi = ref 0 in
  let cover_bench =
    Test.make ~name:"cover: extract covering paths"
      (Staged.stage (fun () ->
           incr pi;
           ignore (Tric_query.Cover.extract patterns.(!pi mod Array.length patterns))))
  in
  let forest = Tric_core.Trie.create ~cache:false () in
  let ti = ref 0 in
  let qi = ref 0 in
  let trie_bench =
    Test.make ~name:"trie: index one covering path"
      (Staged.stage (fun () ->
           incr ti;
           let p = patterns.(!ti mod Array.length patterns) in
           incr qi;
           List.iteri
             (fun i path ->
               ignore
                 (Tric_core.Trie.insert_path forest
                    (Tric_query.Path.keys p path)
                    ~qid:!qi ~path_index:i))
             (Tric_query.Cover.extract p)))
  in
  (* Cypher parse + plan. *)
  let db = Tric_graphdb.Db.create () in
  ignore (Tric_graphdb.Db.add_stream_edge db (Tric_graph.Edge.of_strings "knows" "a" "b"));
  let parse_bench =
    Test.make ~name:"cypher: parse"
      (Staged.stage (fun () ->
           ignore
             (Tric_graphdb.Cypher.parse
                "MATCH (f:V)-[:hasMod]->(p:V)-[:posted]->(x:V {name: 'pst1'}) RETURN f, p, x")))
  in
  let plan_bench =
    Test.make ~name:"cypher: plan (uncached)"
      (Staged.stage (fun () ->
           ignore
             (Tric_graphdb.Planner.plan
                (Tric_graphdb.Db.store db)
                (Tric_graphdb.Cypher.parse
                   "MATCH (f:V)-[:knows]->(p:V) RETURN f, p"))))
  in
  [ insert_bench; probe_bench; cover_bench; trie_bench; parse_bench; plan_bench ]

(* One Test.make per figure: the per-update dispatch cost of a
   representative configuration of that figure (TRIC+ and its strongest
   competitor, at reduced size so micro-benching stays cheap). *)
let figure_benches () =
  [
    update_dispatch_bench ~name:"fig12a/SNB update: TRIC+" ~engine_name:"TRIC+"
      ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100 ();
    update_dispatch_bench ~name:"fig12a/SNB update: INC+" ~engine_name:"INC+"
      ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100 ();
    update_dispatch_bench ~name:"fig12c/SNB small QDB: TRIC+" ~engine_name:"TRIC+"
      ~source:W.Dataset.Snb ~edges:2_000 ~qdb:20 ();
    update_dispatch_bench ~name:"fig13a/SNB large graph: TRIC+" ~engine_name:"TRIC+"
      ~source:W.Dataset.Snb ~edges:8_000 ~qdb:100 ();
    update_dispatch_bench ~name:"fig14a/TAXI update: TRIC+" ~engine_name:"TRIC+"
      ~source:W.Dataset.Taxi ~edges:2_000 ~qdb:100 ();
    update_dispatch_bench ~name:"fig14b/BioGRID stress: TRIC+" ~engine_name:"TRIC+"
      ~source:W.Dataset.Biogrid ~edges:2_000 ~qdb:100 ();
    churn_dispatch_bench ~name:"§4.3/SNB 50-50 churn: TRIC" ~engine_name:"TRIC"
      ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100;
    churn_dispatch_bench ~name:"§4.3/SNB 50-50 churn: TRIC+" ~engine_name:"TRIC+"
      ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100;
    churn_dispatch_bench ~name:"§4.3/BioGRID 50-50 churn: TRIC+" ~engine_name:"TRIC+"
      ~source:W.Dataset.Biogrid ~edges:2_000 ~qdb:100;
    batch_dispatch_bench ~name:"batch/SNB 64-upd window: TRIC" ~engine_name:"TRIC"
      ~batch:64 ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100;
    batch_dispatch_bench ~name:"batch/SNB 64-upd window: TRIC+" ~engine_name:"TRIC+"
      ~batch:64 ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100;
    (* Sharded dispatch: the same per-update answering step, scattered
       over a domain pool.  On a single-core box the interesting number
       is the scatter/gather overhead vs the x1 row, not a speedup. *)
    update_dispatch_bench ~shards:1 ~name:"shard/SNB update: TRIC+ x1"
      ~engine_name:"TRIC+" ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100 ();
    update_dispatch_bench ~shards:2 ~name:"shard/SNB update: TRIC+ x2"
      ~engine_name:"TRIC+" ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100 ();
    update_dispatch_bench ~shards:4 ~name:"shard/SNB update: TRIC+ x4"
      ~engine_name:"TRIC+" ~source:W.Dataset.Snb ~edges:2_000 ~qdb:100 ();
  ]

let () =
  let fmt = Format.std_formatter in
  (* TRIC_CHURN_ONLY=1: print just the deletion-maintenance counters (fast
     path for CI and for eyeballing the §4.3 win). *)
  if Sys.getenv_opt "TRIC_CHURN_ONLY" <> None then begin
    churn_stats_report fmt;
    exit 0
  end;
  (* TRIC_BATCH_ONLY=1: print just the micro-batch throughput comparison
     (fast path for CI and for eyeballing the batching win). *)
  if Sys.getenv_opt "TRIC_BATCH_ONLY" <> None then begin
    batch_throughput_report fmt;
    exit 0
  end;
  (* TRIC_SHARD_ONLY=1: print just the domain-scaling report (fast path
     for CI and for regenerating BENCH_shard.json). *)
  if Sys.getenv_opt "TRIC_SHARD_ONLY" <> None then begin
    shard_scaling_report fmt;
    exit 0
  end;
  (* TRIC_WINDOW_ONLY=1: just the windowed throughput / expiry
     amortization report (fast path for CI and for regenerating
     BENCH_window.json). *)
  if Sys.getenv_opt "TRIC_WINDOW_ONLY" <> None then begin
    window_report fmt;
    exit 0
  end;
  (* TRIC_FANOUT_ONLY=1: just the dispatch-fanout smoke, failing the run
     if targeted dispatch degrades back into a broadcast (CI). *)
  if Sys.getenv_opt "TRIC_FANOUT_ONLY" <> None then begin
    fanout_report ~strict:true fmt;
    exit 0
  end;
  (* TRIC_OVERHEAD_ONLY=1: just the telemetry-overhead smoke, enforcing
     the TRIC_OVERHEAD_MAX_PCT budget with a failing exit (CI). *)
  if Sys.getenv_opt "TRIC_OVERHEAD_ONLY" <> None then begin
    overhead_report ~strict:true fmt;
    exit 0
  end;
  (* TRIC_LAYOUT_ONLY=1: just the data-layout report (live-heap words +
     upd/s, BENCH_layout.json) with the TRIC_ALLOC_MAX_WORDS
     allocation-regression budget enforced (CI). *)
  if Sys.getenv_opt "TRIC_LAYOUT_ONLY" <> None then begin
    layout_report ~strict:true fmt;
    exit 0
  end;
  (* TRIC_SERVER_ONLY=1: just the subscription-server fan-out bench
     (upd/s + notification latency, BENCH_server.json).  TRIC_SERVER_SUBS
     and TRIC_SERVER_EDGES shrink it for CI. *)
  if Sys.getenv_opt "TRIC_SERVER_ONLY" <> None then begin
    server_report fmt;
    exit 0
  end;
  let cfg = H.Config.from_env () in
  Format.fprintf fmt
    "TRIC benchmark harness — EDBT 2020 reproduction@.scale 1/%d, budget %.0fs/engine (env TRIC_SCALE / TRIC_BUDGET)@.@."
    cfg.H.Config.scale cfg.H.Config.budget_s;
  Format.fprintf fmt "=== Section 1: Bechamel micro-benchmarks ===@.@.";
  run_and_report fmt (infra_benches ());
  run_and_report fmt (figure_benches ());
  churn_stats_report fmt;
  batch_throughput_report fmt;
  window_report fmt;
  shard_scaling_report fmt;
  fanout_report fmt;
  overhead_report fmt;
  server_report fmt;
  Format.fprintf fmt "=== Section 2: paper figures and tables (scaled) ===@.";
  H.Figures.run_all cfg fmt;
  Format.fprintf fmt "@.done.@."
