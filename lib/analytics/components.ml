open Tric_graph

type t = {
  mutable parent : int Label.Tbl.t; (* vertex -> parent (union-find) *)
  mutable size : int Label.Tbl.t; (* root -> component size *)
  mutable components : int;
  edges : unit Edge.Tbl.t; (* retained for rebuild after deletions *)
  seen : unit Label.Tbl.t; (* vertices ever observed, kept across rebuilds *)
  mutable dirty : bool;
}

let create () =
  {
    parent = Label.Tbl.create 1024;
    size = Label.Tbl.create 1024;
    components = 0;
    edges = Edge.Tbl.create 1024;
    seen = Label.Tbl.create 1024;
    dirty = false;
  }

let ensure_vertex t v =
  Label.Tbl.replace t.seen v ();
  if not (Label.Tbl.mem t.parent v) then begin
    Label.Tbl.add t.parent v (Label.to_int v);
    Label.Tbl.add t.size v 1;
    t.components <- t.components + 1
  end

let rec find t v =
  let p = Label.Tbl.find t.parent v in
  if p = Label.to_int v then v
  else begin
    let root = find t (Label.of_int p) in
    Label.Tbl.replace t.parent v (Label.to_int root) (* path compression *);
    root
  end

let union t u v =
  ensure_vertex t u;
  ensure_vertex t v;
  let ru = find t u and rv = find t v in
  if not (Label.equal ru rv) then begin
    let su = Label.Tbl.find t.size ru and sv = Label.Tbl.find t.size rv in
    let big, small = if su >= sv then (ru, rv) else (rv, ru) in
    Label.Tbl.replace t.parent small (Label.to_int big);
    Label.Tbl.replace t.size big (su + sv);
    Label.Tbl.remove t.size small;
    t.components <- t.components - 1
  end

let rebuild t =
  Label.Tbl.reset t.parent;
  Label.Tbl.reset t.size;
  t.components <- 0;
  (* Snapshot first: ensure_vertex refreshes [seen] and Hashtbl iteration
     must not observe concurrent writes. *)
  let vertices = Label.Tbl.fold (fun v () acc -> v :: acc) t.seen [] in
  List.iter (fun v -> ensure_vertex t v) vertices;
  Edge.Tbl.iter (fun (e : Edge.t) () -> union t e.src e.dst) t.edges;
  t.dirty <- false

let refresh t = if t.dirty then rebuild t

let handle_update t u =
  let e = Update.edge u in
  match u.Update.op with
  | Update.Add _ ->
    if not (Edge.Tbl.mem t.edges e) then begin
      Edge.Tbl.add t.edges e ();
      if not t.dirty then union t e.src e.dst
    end
  | Update.Remove _ ->
    if Edge.Tbl.mem t.edges e then begin
      Edge.Tbl.remove t.edges e;
      t.dirty <- true
    end

let same_component t u v =
  refresh t;
  if not (Label.Tbl.mem t.parent u) || not (Label.Tbl.mem t.parent v) then Label.equal u v
  else Label.equal (find t u) (find t v)

let component_size t v =
  refresh t;
  if not (Label.Tbl.mem t.parent v) then 1 else Label.Tbl.find t.size (find t v)

let num_components t =
  refresh t;
  t.components

let num_vertices t =
  refresh t;
  Label.Tbl.length t.parent
