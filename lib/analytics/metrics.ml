open Tric_graph

type t = {
  edges : unit Edge.Tbl.t; (* exact triples, for stream idempotence *)
  neighbours : Label.Set.t ref Label.Tbl.t; (* simple undirected view *)
  multiplicity : (int * int, int) Hashtbl.t; (* ordered pair -> directed edge count *)
  tri : int ref Label.Tbl.t; (* per-vertex triangle count *)
  mutable total_triangles : int;
  mutable pairs : int;
}

let create () =
  {
    edges = Edge.Tbl.create 1024;
    neighbours = Label.Tbl.create 1024;
    multiplicity = Hashtbl.create 1024;
    tri = Label.Tbl.create 1024;
    total_triangles = 0;
    pairs = 0;
  }

let nset t v =
  match Label.Tbl.find_opt t.neighbours v with
  | Some s -> !s
  | None -> Label.Set.empty

let nset_cell t v =
  match Label.Tbl.find_opt t.neighbours v with
  | Some s -> s
  | None ->
    let s = ref Label.Set.empty in
    Label.Tbl.add t.neighbours v s;
    s

let tri_cell t v =
  match Label.Tbl.find_opt t.tri v with
  | Some c -> c
  | None ->
    let c = ref 0 in
    Label.Tbl.add t.tri v c;
    c

let pair_key u v =
  let a = Label.to_int u and b = Label.to_int v in
  if a <= b then (a, b) else (b, a)

(* The simple-view pair (u,v) appears/disappears when the total count of
   directed edges between u and v (either direction, any label) crosses
   0. *)
let bump_multiplicity t u v delta =
  let key = pair_key u v in
  let current = Option.value ~default:0 (Hashtbl.find_opt t.multiplicity key) in
  let updated = current + delta in
  if updated < 0 then false
  else begin
    if updated = 0 then Hashtbl.remove t.multiplicity key
    else Hashtbl.replace t.multiplicity key updated;
    (current = 0 && updated > 0) || (current > 0 && updated = 0)
  end

let on_pair_added t u v =
  let common = Label.Set.inter (nset t u) (nset t v) in
  let k = Label.Set.cardinal common in
  if k > 0 then begin
    t.total_triangles <- t.total_triangles + k;
    Label.Set.iter (fun w -> incr (tri_cell t w)) common;
    tri_cell t u := !(tri_cell t u) + k;
    tri_cell t v := !(tri_cell t v) + k
  end;
  (nset_cell t u) := Label.Set.add v !(nset_cell t u);
  (nset_cell t v) := Label.Set.add u !(nset_cell t v);
  t.pairs <- t.pairs + 1

let on_pair_removed t u v =
  (nset_cell t u) := Label.Set.remove v !(nset_cell t u);
  (nset_cell t v) := Label.Set.remove u !(nset_cell t v);
  t.pairs <- t.pairs - 1;
  let common = Label.Set.inter (nset t u) (nset t v) in
  let k = Label.Set.cardinal common in
  if k > 0 then begin
    t.total_triangles <- t.total_triangles - k;
    Label.Set.iter (fun w -> decr (tri_cell t w)) common;
    tri_cell t u := !(tri_cell t u) - k;
    tri_cell t v := !(tri_cell t v) - k
  end

let handle_update t u =
  let e = Update.edge u in
  (* Streams have set semantics over exact triples: a duplicate addition
     or a removal of an absent edge is a no-op. *)
  let effective =
    match u.Update.op with
    | Update.Add _ ->
      if Edge.Tbl.mem t.edges e then false
      else begin
        Edge.Tbl.add t.edges e ();
        true
      end
    | Update.Remove _ ->
      if Edge.Tbl.mem t.edges e then begin
        Edge.Tbl.remove t.edges e;
        true
      end
      else false
  in
  if effective then begin
    (* Register both endpoints as vertices even for self-loops. *)
    ignore (nset_cell t e.src);
    ignore (nset_cell t e.dst);
    if not (Label.equal e.src e.dst) then begin
      match u.Update.op with
      | Update.Add _ ->
        if bump_multiplicity t e.src e.dst 1 then on_pair_added t e.src e.dst
      | Update.Remove _ ->
        if bump_multiplicity t e.src e.dst (-1) then on_pair_removed t e.src e.dst
    end
  end

let num_vertices t = Label.Tbl.length t.neighbours
let num_adjacent_pairs t = t.pairs
let degree t v = Label.Set.cardinal (nset t v)
let triangles t = t.total_triangles

let triangles_of t v =
  match Label.Tbl.find_opt t.tri v with Some c -> !c | None -> 0

let local_clustering t v =
  let d = degree t v in
  if d < 2 then 0.0
  else 2.0 *. float_of_int (triangles_of t v) /. float_of_int (d * (d - 1))

let wedges t =
  Label.Tbl.fold
    (fun _ s acc ->
      let d = Label.Set.cardinal !s in
      acc + (d * (d - 1) / 2))
    t.neighbours 0

let global_clustering t =
  let w = wedges t in
  if w = 0 then 0.0 else 3.0 *. float_of_int t.total_triangles /. float_of_int w

let average_clustering t =
  let n = num_vertices t in
  if n = 0 then 0.0
  else
    Label.Tbl.fold (fun v _ acc -> acc +. local_clustering t v) t.neighbours 0.0
    /. float_of_int n
