open Tric_graph

(* Brandes (2001) for unweighted directed graphs. *)
let betweenness g =
  let vertices = Graph.vertices g in
  let score : float ref Label.Tbl.t = Label.Tbl.create (List.length vertices) in
  let cell v =
    match Label.Tbl.find_opt score v with
    | Some c -> c
    | None ->
      let c = ref 0.0 in
      Label.Tbl.add score v c;
      c
  in
  List.iter (fun v -> ignore (cell v)) vertices;
  List.iter
    (fun s ->
      (* BFS from s accumulating shortest-path counts. *)
      let sigma = Label.Tbl.create 64 and dist = Label.Tbl.create 64 in
      let preds : Label.t list ref Label.Tbl.t = Label.Tbl.create 64 in
      let order = ref [] in
      Label.Tbl.add sigma s 1.0;
      Label.Tbl.add dist s 0;
      let queue = Queue.create () in
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let v = Queue.take queue in
        order := v :: !order;
        let dv = Label.Tbl.find dist v in
        let sv = Label.Tbl.find sigma v in
        List.iter
          (fun (e : Edge.t) ->
            let w = e.dst in
            (match Label.Tbl.find_opt dist w with
            | None ->
              Label.Tbl.add dist w (dv + 1);
              Queue.add w queue
            | Some _ -> ());
            if Label.Tbl.find dist w = dv + 1 then begin
              Label.Tbl.replace sigma w
                (Option.value ~default:0.0 (Label.Tbl.find_opt sigma w) +. sv);
              match Label.Tbl.find_opt preds w with
              | Some cell -> cell := v :: !cell
              | None -> Label.Tbl.add preds w (ref [ v ])
            end)
          (Graph.out_edges g v)
      done;
      (* Back-propagation of dependencies. *)
      let delta = Label.Tbl.create 64 in
      let dep v = Option.value ~default:0.0 (Label.Tbl.find_opt delta v) in
      List.iter
        (fun w ->
          (match Label.Tbl.find_opt preds w with
          | Some cell ->
            let sw = Label.Tbl.find sigma w in
            List.iter
              (fun v ->
                let sv = Label.Tbl.find sigma v in
                let contribution = sv /. sw *. (1.0 +. dep w) in
                Label.Tbl.replace delta v (dep v +. contribution))
              !cell
          | None -> ());
          if not (Label.equal w s) then cell w := !(cell w) +. dep w)
        !order)
    vertices;
  Label.Tbl.fold (fun v c acc -> (v, !c) :: acc) score []
  |> List.sort (fun (va, a) (vb, b) ->
         let c = Float.compare b a in
         if c <> 0 then c else Label.compare va vb)

let top_k g k =
  let all = betweenness g in
  List.filteri (fun i _ -> i < k) all

module Watch = struct
  type event = {
    entered : Label.t list;
    left : Label.t list;
    at_update : int;
  }

  type t = {
    g : Graph.t;
    k : int;
    period : int;
    mutable updates : int;
    mutable top : (Label.t * float) list;
  }

  let create ?(period = 100) ~k () =
    if k <= 0 then invalid_arg "Centrality.Watch.create: k <= 0";
    if period <= 0 then invalid_arg "Centrality.Watch.create: period <= 0";
    { g = Graph.create (); k; period; updates = 0; top = [] }

  let recompute t =
    let fresh = top_k t.g t.k in
    let old_set = Label.Set.of_list (List.map fst t.top) in
    let new_set = Label.Set.of_list (List.map fst fresh) in
    t.top <- fresh;
    let entered = Label.Set.elements (Label.Set.diff new_set old_set) in
    let left = Label.Set.elements (Label.Set.diff old_set new_set) in
    if entered = [] && left = [] then None
    else Some { entered; left; at_update = t.updates }

  let force_recompute t = recompute t

  let handle_update t u =
    ignore (Update.apply t.g u);
    t.updates <- t.updates + 1;
    if t.updates mod t.period = 0 then recompute t else None

  let current_top t = t.top
end
