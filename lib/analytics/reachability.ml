open Tric_graph

type watch = {
  wid : int;
  src : Label.t;
  dst : Label.t;
  k : int;
}

type event =
  | Reached of watch
  | Lost of watch

type t = {
  g : Graph.t;
  watches : (int, watch * bool ref) Hashtbl.t; (* bool: currently reached *)
  mutable next_id : int;
}

let create () = { g = Graph.create (); watches = Hashtbl.create 64; next_id = 1 }

(* Bounded BFS over all edge labels. *)
let distance t ~src ~dst ~max_k =
  if Label.equal src dst then Some 0
  else begin
    let seen = Label.Tbl.create 64 in
    Label.Tbl.add seen src ();
    let frontier = ref [ src ] in
    let rec go depth =
      if depth > max_k || !frontier = [] then None
      else begin
        let next = ref [] in
        let found = ref false in
        List.iter
          (fun v ->
            List.iter
              (fun (e : Edge.t) ->
                if Label.equal e.dst dst then found := true;
                if not (Label.Tbl.mem seen e.dst) then begin
                  Label.Tbl.add seen e.dst ();
                  next := e.dst :: !next
                end)
              (Graph.out_edges t.g v))
          !frontier;
        if !found then Some depth
        else begin
          frontier := !next;
          go (depth + 1)
        end
      end
    in
    go 1
  end

let check t (w : watch) = distance t ~src:w.src ~dst:w.dst ~max_k:w.k <> None

let watch t ~src ~dst ~k =
  if k < 0 then invalid_arg "Reachability.watch: k < 0";
  let w = { wid = t.next_id; src; dst; k } in
  t.next_id <- t.next_id + 1;
  Hashtbl.add t.watches w.wid (w, ref (check t w));
  w

let unwatch t w =
  if Hashtbl.mem t.watches w.wid then begin
    Hashtbl.remove t.watches w.wid;
    true
  end
  else false

let watch_src w = w.src
let watch_dst w = w.dst
let watch_k w = w.k

let handle_update t u =
  let changed = Update.apply t.g u in
  if not changed then []
  else begin
    let events = ref [] in
    Hashtbl.iter
      (fun _ (w, reached) ->
        (* An addition can only turn unreached -> reached; a deletion only
           the converse.  Skip the BFS when the transition is
           impossible. *)
        match u.Update.op with
        | Update.Add _ ->
          if (not !reached) && check t w then begin
            reached := true;
            events := Reached w :: !events
          end
        | Update.Remove _ ->
          if !reached && not (check t w) then begin
            reached := false;
            events := Lost w :: !events
          end)
      t.watches;
    List.rev !events
  end

let is_reached t w =
  match Hashtbl.find_opt t.watches w.wid with
  | Some (_, reached) -> !reached
  | None -> false

let num_watches t = Hashtbl.length t.watches
