type shape =
  | Sliding
  | Tumbling

type t =
  | Time of { shape : shape; span : int }
  | Count of { shape : shape; size : int }

let shape = function Time { shape; _ } | Count { shape; _ } -> shape

let shape_equal a b =
  match (a, b) with
  | Sliding, Sliding | Tumbling, Tumbling -> true
  | Sliding, Tumbling | Tumbling, Sliding -> false

let equal a b =
  match (a, b) with
  | Time x, Time y -> shape_equal x.shape y.shape && Int.equal x.span y.span
  | Count x, Count y -> shape_equal x.shape y.shape && Int.equal x.size y.size
  | Time _, Count _ | Count _, Time _ -> false

let deadline spec ~ts =
  match spec with
  | Time { shape = Sliding; span } -> ts + span
  | Time { shape = Tumbling; span } -> ((ts / span) + 1) * span
  | Count _ -> invalid_arg "Wspec.deadline: count windows expire by position"

(* "90s" / "5m" / "1h" / "2d" -> seconds; a bare number is NOT a duration
   (bare numbers denote event counts). *)
let duration_of_string s =
  let n = String.length s in
  if n < 2 then None
  else
    let mult =
      match s.[n - 1] with
      | 's' -> Some 1
      | 'm' -> Some 60
      | 'h' -> Some 3600
      | 'd' -> Some 86400
      | _ -> None
    in
    match mult with
    | None -> None
    | Some m -> (
      match int_of_string_opt (String.sub s 0 (n - 1)) with
      | Some v when v > 0 -> Some (v * m)
      | Some _ | None -> None)

let of_tokens toks =
  let is_kw k s = String.equal (String.lowercase_ascii s) k in
  match toks with
  | [] -> Error "empty window spec"
  | mag :: rest -> (
    let events, rest =
      match rest with e :: r when is_kw "events" e -> (true, r) | r -> (false, r)
    in
    let shape =
      match rest with
      | [] -> Ok Sliding
      | [ s ] when is_kw "tumbling" s -> Ok Tumbling
      | [ s ] when is_kw "sliding" s -> Ok Sliding
      | s :: _ -> Error (Printf.sprintf "bad window modifier %S" s)
    in
    match shape with
    | Error _ as e -> e
    | Ok shape -> (
      match int_of_string_opt mag with
      | Some size when size > 0 -> Ok (Count { shape; size })
      | Some _ -> Error (Printf.sprintf "window size must be positive: %S" mag)
      | None -> (
        if events then Error (Printf.sprintf "bad event count %S" mag)
        else
          match duration_of_string mag with
          | Some span -> Ok (Time { shape; span })
          | None -> Error (Printf.sprintf "bad window span %S" mag))))

let of_string s =
  of_tokens
    (String.split_on_char ' ' (String.trim s)
    |> List.filter (fun tok -> not (String.equal tok "")))

let span_to_string s =
  if s mod 86400 = 0 then Printf.sprintf "%dd" (s / 86400)
  else if s mod 3600 = 0 then Printf.sprintf "%dh" (s / 3600)
  else if s mod 60 = 0 then Printf.sprintf "%dm" (s / 60)
  else Printf.sprintf "%ds" s

let to_string spec =
  let suffix = function Sliding -> "" | Tumbling -> " TUMBLING" in
  match spec with
  | Count { shape; size } -> Printf.sprintf "%d EVENTS%s" size (suffix shape)
  | Time { shape; span } -> Printf.sprintf "%s%s" (span_to_string span) (suffix shape)

let pp fmt spec = Format.pp_print_string fmt (to_string spec)
