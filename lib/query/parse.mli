(** A tiny textual syntax for query graph patterns.

    Grammar (whitespace-insensitive):
    {[
      pattern ::= clause (';' clause)* ('WITHIN' wspec)?
      clause  ::= term arrow term (arrow term)*
      arrow   ::= '-' ident '->'
      term    ::= '?' ident        (variable)
                | ident            (constant)
                | '"' chars '"'    (constant, quoted)
      wspec   ::= see {!Wspec}     (e.g. "1h", "1000 EVENTS TUMBLING")
    ]}

    Example — query Q4 of the paper's Fig. 4:
    {[ "?f1 -hasMod-> ?p1 -posted-> pst1 -containedIn-> ?c" ]} *)

exception Syntax_error of string

val pattern : ?name:string -> id:int -> string -> Pattern.t
(** @raise Syntax_error on malformed input. *)

val edge : string -> Tric_graph.Edge.t
(** Parse a concrete edge ["P1 -knows-> P2"] (no variables allowed).
    @raise Syntax_error on malformed input or variables. *)

val update : string -> Tric_graph.Update.t
(** Like {!edge}, with an optional leading ['+'] (addition, default) or
    ['-'] (removal), and an optional trailing [@<int>] event timestamp
    (default [0]). *)

val pattern_to_string : Pattern.t -> string
(** Render a pattern back into the surface syntax, one clause per edge;
    [pattern (pattern_to_string p)] is structurally identical to [p]. *)

val update_to_string : Tric_graph.Update.t -> string
(** Render an update; inverse of {!update}. *)
