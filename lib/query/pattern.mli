(** Query graph patterns (Definition 3.4).

    A pattern is a directed labelled multigraph whose vertices carry terms
    (constants or variables).  Vertices are identified by dense integer ids
    [0 .. num_vertices-1]; edges by dense ids [0 .. num_edges-1] in
    insertion order.  Two vertices with equal terms are the same vertex
    (a constant names one entity; a variable name is one placeholder). *)

open Tric_graph

type pedge = {
  eid : int;  (** dense edge id, insertion order *)
  elabel : Label.t;
  src : int;  (** source vertex id *)
  dst : int;  (** target vertex id *)
}

type t

val id : t -> int
(** The query identifier ([Qi]'s id in the query database). *)

val name : t -> string
val num_vertices : t -> int
val num_edges : t -> int
val term : t -> int -> Term.t
val terms : t -> Term.t array
val edges : t -> pedge array
val edge : t -> int -> pedge
val out_edges_of : t -> int -> pedge list
val in_edges_of : t -> int -> pedge list
val out_degree : t -> int -> int
val in_degree : t -> int -> int
val with_id : t -> int -> t
(** Same pattern under a different query id. *)

val window : t -> Wspec.t option
(** The query's window specification (its [WITHIN] clause), if any.
    [None] means unbounded: matches never expire. *)

val with_window : t -> Wspec.t option -> t

val vertex_of_term : t -> Term.t -> int option

val is_connected : t -> bool
(** Weak connectivity (ignoring edge direction).  The paper's query classes
    (chains, stars, cycles) are all connected. *)

val pp : Format.formatter -> t -> unit

(** Imperative construction. *)
module Builder : sig
  type pattern := t
  type t

  val create : ?name:string -> id:int -> unit -> t

  val vertex : t -> Term.t -> int
  (** Id of the vertex holding this term, creating it if new. *)

  val edge : t -> label:Label.t -> int -> int -> unit
  (** [edge b ~label src dst] adds a pattern edge between existing vertex
      ids.  Duplicate [(label, src, dst)] triples are ignored.
      @raise Invalid_argument on an unknown vertex id. *)

  val edge_t : t -> string -> Term.t -> Term.t -> unit
  (** [edge_t b label src dst] — convenience: interns the label and adds
      (creating) both term vertices. *)

  val set_window : t -> Wspec.t option -> unit
  (** Attach (or clear) the pattern's window specification. *)

  val build : t -> pattern
  (** @raise Invalid_argument if the pattern has no edges or has a vertex on
      no edge. *)
end
