exception Syntax_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

type token =
  | Tterm of Term.t
  | Tarrow of string (* edge label *)
  | Tsemi

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '#' || c = '.' || c = ':'

let tokenize s =
  let n = String.length s in
  let tokens = ref [] in
  let i = ref 0 in
  let read_ident () =
    let start = !i in
    while !i < n && is_ident_char s.[!i] do
      incr i
    done;
    if !i = start then fail "expected identifier at offset %d in %S" start s;
    String.sub s start (!i - start)
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ';' then begin
      tokens := Tsemi :: !tokens;
      incr i
    end
    else if c = '?' then begin
      incr i;
      tokens := Tterm (Term.var (read_ident ())) :: !tokens
    end
    else if c = '"' then begin
      incr i;
      let start = !i in
      while !i < n && s.[!i] <> '"' do
        incr i
      done;
      if !i >= n then fail "unterminated string in %S" s;
      tokens := Tterm (Term.const (String.sub s start (!i - start))) :: !tokens;
      incr i
    end
    else if c = '-' then begin
      incr i;
      let label = read_ident () in
      if !i + 1 < n && s.[!i] = '-' && s.[!i + 1] = '>' then i := !i + 2
      else fail "expected '->' after edge label %S in %S" label s;
      tokens := Tarrow label :: !tokens
    end
    else if is_ident_char c then tokens := Tterm (Term.const (read_ident ())) :: !tokens
    else fail "unexpected character %C at offset %d in %S" c !i s
  done;
  List.rev !tokens

(* [WITHIN] is reserved at clause position: it closes the edge clauses and
   introduces the window spec, whose tokens are plain constants. *)
let const_str = function
  | Tterm (Term.Const c) -> Some (Tric_graph.Label.to_string c)
  | Tterm (Term.Var _) | Tarrow _ | Tsemi -> None

let is_within tok =
  match const_str tok with
  | Some w -> String.equal (String.uppercase_ascii w) "WITHIN"
  | None -> false

let pattern ?(name = "") ~id s =
  let b = Pattern.Builder.create ~name ~id () in
  let window toks =
    let strs =
      List.map
        (fun tok ->
          match const_str tok with
          | Some str -> str
          | None -> fail "window spec must be plain tokens in %S" s)
        toks
    in
    match Wspec.of_tokens strs with
    | Ok spec -> Pattern.Builder.set_window b (Some spec)
    | Error e -> fail "bad window spec in %S: %s" s e
  in
  let rec clause = function
    | tok :: rest when is_within tok -> window rest
    | Tterm t :: rest ->
      let v = Pattern.Builder.vertex b t in
      chain v rest
    | _ -> fail "clause must start with a term in %S" s
  and chain v = function
    | tok :: rest when is_within tok -> window rest
    | Tarrow label :: Tterm t :: rest ->
      let v' = Pattern.Builder.vertex b t in
      Pattern.Builder.edge b ~label:(Tric_graph.Label.intern label) v v';
      chain v' rest
    | Tsemi :: rest -> clause rest
    | [] -> ()
    | _ -> fail "expected '-label-> term' in %S" s
  in
  (match tokenize s with [] -> fail "empty pattern %S" s | toks -> clause toks);
  Pattern.Builder.build b

let edge s =
  match tokenize s with
  | [ Tterm (Term.Const src); Tarrow label; Tterm (Term.Const dst) ] ->
    Tric_graph.Edge.make ~label:(Tric_graph.Label.intern label) ~src ~dst
  | [ Tterm (Term.Var _); _; _ ] | [ _; _; Tterm (Term.Var _) ] ->
    fail "concrete edge may not contain variables: %S" s
  | _ -> fail "expected 'src -label-> dst': %S" s

let is_plain_ident s =
  s <> ""
  && (not (s.[0] = '?'))
  && String.for_all is_ident_char s

let term_to_string = function
  | Term.Var name -> "?" ^ name
  | Term.Const c ->
    let s = Tric_graph.Label.to_string c in
    if is_plain_ident s then s else "\"" ^ s ^ "\""

let pattern_to_string p =
  let body =
    Pattern.edges p
    |> Array.to_list
    |> List.map (fun (e : Pattern.pedge) ->
           Printf.sprintf "%s -%s-> %s"
             (term_to_string (Pattern.term p e.src))
             (Tric_graph.Label.to_string e.elabel)
             (term_to_string (Pattern.term p e.dst)))
    |> String.concat "; "
  in
  match Pattern.window p with
  | Some w -> body ^ " WITHIN " ^ Wspec.to_string w
  | None -> body

let update_to_string u =
  let e = Tric_graph.Update.edge u in
  let base =
    Printf.sprintf "%s %s -%s-> %s"
      (if Tric_graph.Update.is_addition u then "+" else "-")
      (Tric_graph.Label.to_string e.src)
      (Tric_graph.Label.to_string e.label)
      (Tric_graph.Label.to_string e.dst)
  in
  match Tric_graph.Update.ts u with
  | 0 -> base
  | ts -> Printf.sprintf "%s @%d" base ts

let update s =
  let s = String.trim s in
  (* Optional trailing event timestamp: "... @<int>".  '@' appears nowhere
     else in the syntax, so the rightmost one is unambiguous. *)
  let s, ts =
    match String.rindex_opt s '@' with
    | Some i -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some ts -> (String.trim (String.sub s 0 i), ts)
      | None -> (s, 0))
    | None -> (s, 0)
  in
  if String.length s > 0 && s.[0] = '-' && String.length s > 1 && s.[1] = ' ' then
    Tric_graph.Update.remove ~ts (edge (String.sub s 1 (String.length s - 1)))
  else if String.length s > 0 && s.[0] = '+' then
    Tric_graph.Update.add ~ts (edge (String.sub s 1 (String.length s - 1)))
  else Tric_graph.Update.add ~ts (edge s)
