open Tric_graph

type pedge = { eid : int; elabel : Label.t; src : int; dst : int }

type t = {
  id : int;
  name : string;
  terms : Term.t array;
  edges : pedge array;
  out_adj : pedge list array; (* vid -> out edges *)
  in_adj : pedge list array;
  window : Wspec.t option;
}

let id q = q.id
let name q = q.name
let num_vertices q = Array.length q.terms
let num_edges q = Array.length q.edges
let term q vid = q.terms.(vid)
let terms q = Array.copy q.terms
let edges q = q.edges
let edge q eid = q.edges.(eid)
let out_edges_of q vid = q.out_adj.(vid)
let in_edges_of q vid = q.in_adj.(vid)
let out_degree q vid = List.length q.out_adj.(vid)
let in_degree q vid = List.length q.in_adj.(vid)
let with_id q id = { q with id }
let window q = q.window
let with_window q w = { q with window = w }

let vertex_of_term q t =
  let n = Array.length q.terms in
  let rec find i =
    if i >= n then None else if Term.equal q.terms.(i) t then Some i else find (i + 1)
  in
  find 0

let is_connected q =
  let n = num_vertices q in
  if n = 0 then true
  else begin
    let seen = Array.make n false in
    let rec visit v =
      if not seen.(v) then begin
        seen.(v) <- true;
        List.iter (fun e -> visit e.dst) q.out_adj.(v);
        List.iter (fun e -> visit e.src) q.in_adj.(v)
      end
    in
    visit 0;
    Array.for_all (fun b -> b) seen
  end

let pp fmt q =
  Format.fprintf fmt "@[<v>Q%d (%s):" q.id q.name;
  Array.iter
    (fun e ->
      Format.fprintf fmt "@,  %a -%a-> %a" Term.pp q.terms.(e.src) Label.pp
        e.elabel Term.pp q.terms.(e.dst))
    q.edges;
  (match q.window with
  | Some w -> Format.fprintf fmt "@,  WITHIN %a" Wspec.pp w
  | None -> ());
  Format.fprintf fmt "@]"

module Builder = struct
  type t = {
    bid : int;
    bname : string;
    mutable bterms : Term.t list; (* reversed *)
    mutable count : int;
    mutable bedges : pedge list; (* reversed *)
    mutable ecount : int;
    by_term : (Term.t, int) Hashtbl.t;
    triples : (Label.t * int * int, unit) Hashtbl.t;
    mutable bwindow : Wspec.t option;
  }

  let create ?(name = "") ~id () =
    {
      bid = id;
      bname = name;
      bterms = [];
      count = 0;
      bedges = [];
      ecount = 0;
      by_term = Hashtbl.create 16;
      triples = Hashtbl.create 16;
      bwindow = None;
    }

  let vertex b t =
    match Hashtbl.find_opt b.by_term t with
    | Some vid -> vid
    | None ->
      let vid = b.count in
      b.count <- b.count + 1;
      b.bterms <- t :: b.bterms;
      Hashtbl.add b.by_term t vid;
      vid

  let edge b ~label src dst =
    if src < 0 || src >= b.count || dst < 0 || dst >= b.count then
      invalid_arg "Pattern.Builder.edge: unknown vertex id";
    if not (Hashtbl.mem b.triples (label, src, dst)) then begin
      Hashtbl.add b.triples (label, src, dst) ();
      b.bedges <- { eid = b.ecount; elabel = label; src; dst } :: b.bedges;
      b.ecount <- b.ecount + 1
    end

  let edge_t b label src dst =
    let s = vertex b src and d = vertex b dst in
    edge b ~label:(Label.intern label) s d

  let set_window b w = b.bwindow <- w

  let build b =
    if b.ecount = 0 then invalid_arg "Pattern.Builder.build: pattern has no edges";
    let terms = Array.of_list (List.rev b.bterms) in
    let edges = Array.of_list (List.rev b.bedges) in
    let n = Array.length terms in
    let out_adj = Array.make n [] and in_adj = Array.make n [] in
    (* Keep adjacency lists in eid order for deterministic covering paths. *)
    Array.iter
      (fun e ->
        out_adj.(e.src) <- e :: out_adj.(e.src);
        in_adj.(e.dst) <- e :: in_adj.(e.dst))
      edges;
    Array.iteri (fun i l -> out_adj.(i) <- List.rev l) out_adj;
    Array.iteri (fun i l -> in_adj.(i) <- List.rev l) in_adj;
    let touched = Array.make n false in
    Array.iter
      (fun (e : pedge) ->
        touched.(e.src) <- true;
        touched.(e.dst) <- true)
      edges;
    if not (Array.for_all (fun b -> b) touched) then
      invalid_arg "Pattern.Builder.build: vertex on no edge";
    { id = b.bid; name = b.bname; terms; edges; out_adj; in_adj; window = b.bwindow }
end
