(** Window specifications for continuous queries over unbounded streams.

    A window scopes a query's matches to recent stream history — by event
    time ([Time], span in seconds against {!Tric_graph.Update.ts}) or by
    arrival position ([Count], last [size] edge additions).  [Sliding]
    windows retain a moving suffix; [Tumbling] windows reset at span
    boundaries (an edge arriving at [ts] lives until the end of its
    span-aligned bucket).

    Surface syntax (the [WITHIN] clause of {!Parse.pattern}, and the
    [TRIC_WINDOW] / [--window] engine default):
    {[
      spec ::= duration [shape]            (* time window  *)
             | int ["EVENTS"] [shape]      (* count window *)
      duration ::= int ('s'|'m'|'h'|'d')
      shape ::= "TUMBLING" | "SLIDING"     (* default SLIDING *)
    ]}
    e.g. ["1h"], ["90s TUMBLING"], ["1000 EVENTS"], ["500"]. *)

type shape =
  | Sliding
  | Tumbling

type t =
  | Time of { shape : shape; span : int }  (** span in seconds, > 0 *)
  | Count of { shape : shape; size : int }  (** last [size] additions, > 0 *)

val shape : t -> shape
val equal : t -> t -> bool

val deadline : t -> ts:int -> int
(** Expiry deadline of an edge stamped [ts] under a time window: the
    first watermark at which it must be evicted.  Sliding: [ts + span];
    tumbling: the end of [ts]'s span-aligned bucket.
    @raise Invalid_argument on a count window (positional expiry). *)

val duration_of_string : string -> int option
(** ["90s"]/["5m"]/["1h"]/["2d"] to seconds; bare numbers are rejected
    (they denote event counts). *)

val of_tokens : string list -> (t, string) result
(** Parse an already-tokenized spec (keywords case-insensitive). *)

val of_string : string -> (t, string) result
(** Parse a whitespace-separated spec string. *)

val to_string : t -> string
(** Render in surface syntax; [of_string (to_string s)] = [Ok s]. *)

val pp : Format.formatter -> t -> unit
