open Tric_graph

type t = Label.t array

let make a = a
let of_edge (e : Edge.t) = [| e.src; e.dst |]
let width = Array.length
let get t i = t.(i)
let last t = t.(Array.length t - 1)
let first t = t.(0)

let extend t v =
  let n = Array.length t in
  let out = Array.make (n + 1) v in
  Array.blit t 0 out 0 n;
  out

let prefix t n =
  if n < 0 || n > Array.length t then invalid_arg "Tuple.prefix";
  Array.sub t 0 n

let last_pair t =
  let n = Array.length t in
  if n < 2 then invalid_arg "Tuple.last_pair";
  [| t.(n - 2); t.(n - 1) |]

let equal a b =
  Array.length a = Array.length b
  &&
  let rec go i = i >= Array.length a || (Label.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Label.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash t = Array.fold_left (fun h l -> ((h * 1000003) + Label.hash l) land max_int) 17 t

let pp fmt t =
  Format.fprintf fmt "(%a)"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ",") Label.pp)
    (Array.to_list t)

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Tbl = Hashtbl.Make (Key)
