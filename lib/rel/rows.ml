(* Width-stride flat int-array arena with a freelist.  See rows.mli for
   the ownership story; everything here is raw ints — Label/Tuple
   conversions stay in Relation. *)

module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create ?(cap = 4) () = { data = Array.make (max 1 cap) 0; len = 0 }
  let length v = v.len

  let get v i =
    if i < 0 || i >= v.len then invalid_arg "Rows.Vec.get: index out of bounds";
    v.data.(i)

  let push v x =
    if v.len = Array.length v.data then begin
      let grown = Array.make (2 * Array.length v.data) 0 in
      Array.blit v.data 0 grown 0 v.len;
      v.data <- grown
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let swap_remove v i =
    if i < 0 || i >= v.len then invalid_arg "Rows.Vec.swap_remove: index out of bounds";
    v.len <- v.len - 1;
    v.data.(i) <- v.data.(v.len)

  let remove_value v x =
    let rec find i = if i >= v.len then -1 else if v.data.(i) = x then i else find (i + 1) in
    let i = find 0 in
    if i < 0 then false
    else begin
      swap_remove v i;
      true
    end

  let iter f v =
    for i = 0 to v.len - 1 do
      f v.data.(i)
    done

  let fold f v init =
    let acc = ref init in
    for i = 0 to v.len - 1 do
      acc := f v.data.(i) !acc
    done;
    !acc

  let exists p v =
    let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
    go 0

  let to_list v =
    let acc = ref [] in
    for i = v.len - 1 downto 0 do
      acc := v.data.(i) :: !acc
    done;
    !acc

  let clear v = v.len <- 0
  let words v = Array.length v.data + 3
end

type t = {
  w : int;
  mutable data : int array; (* rows_cap * w cells *)
  mutable rows_cap : int;
  mutable high : int; (* slots ever touched; live and freed ids are < high *)
  freelist : Vec.t;
  mutable live_count : int;
  mutable live_map : Bytes.t; (* one byte per slot: '\001' iff live *)
}

let create ?(expect = 0) ~width () =
  if width < 1 then invalid_arg "Rows.create: width must be >= 1";
  let cap = max 16 expect in
  {
    w = width;
    data = Array.make (cap * width) 0;
    rows_cap = cap;
    high = 0;
    freelist = Vec.create ();
    live_count = 0;
    live_map = Bytes.make cap '\000';
  }

let width a = a.w
let live a = a.live_count
let capacity a = a.rows_cap
let free_count a = Vec.length a.freelist
let high_water a = a.high

let reserve a extra =
  let need = a.high + extra in
  if need > a.rows_cap then begin
    let cap = ref (max 16 a.rows_cap) in
    while !cap < need do
      cap := !cap * 2
    done;
    let data = Array.make (!cap * a.w) 0 in
    Array.blit a.data 0 data 0 (a.high * a.w);
    a.data <- data;
    let map = Bytes.make !cap '\000' in
    Bytes.blit a.live_map 0 map 0 a.high;
    a.live_map <- map;
    a.rows_cap <- !cap
  end

let is_live a r = r >= 0 && r < a.high && Bytes.unsafe_get a.live_map r <> '\000'

let alloc a =
  let r =
    let n = Vec.length a.freelist in
    if n > 0 then begin
      let r = Vec.get a.freelist (n - 1) in
      Vec.swap_remove a.freelist (n - 1);
      r
    end
    else begin
      if a.high = a.rows_cap then reserve a 1;
      let r = a.high in
      a.high <- a.high + 1;
      r
    end
  in
  Bytes.set a.live_map r '\001';
  a.live_count <- a.live_count + 1;
  r

let free a r =
  if not (is_live a r) then invalid_arg "Rows.free: row not live";
  Bytes.set a.live_map r '\000';
  a.live_count <- a.live_count - 1;
  Vec.push a.freelist r

let get a r c = a.data.((r * a.w) + c)
let set a r c v = a.data.((r * a.w) + c) <- v
let write a r src off = Array.blit src off a.data (r * a.w) a.w
let blit_row a r dst off = Array.blit a.data (r * a.w) dst off a.w
let read a r = Array.sub a.data (r * a.w) a.w

(* Must match Tuple.hash: fold (h * 1000003 + label) land max_int from 17,
   with Label.hash the identity on the interned int. *)
let hash_ints buf ~off ~len =
  let h = ref 17 in
  for i = off to off + len - 1 do
    h := ((!h * 1000003) + (buf.(i) land max_int)) land max_int
  done;
  !h

let hash_cols a r ~lo ~len = hash_ints a.data ~off:((r * a.w) + lo) ~len
let hash_row a r = hash_cols a r ~lo:0 ~len:a.w
let hash_prefix a r = hash_cols a r ~lo:0 ~len:(a.w - 1)

let hash_hinge a r =
  if a.w < 2 then invalid_arg "Rows.hash_hinge: width < 2";
  hash_cols a r ~lo:(a.w - 2) ~len:2

let equal_cols a r ~lo buf ~off ~len =
  let base = (r * a.w) + lo in
  let rec go i = i >= len || (a.data.(base + i) = buf.(off + i) && go (i + 1)) in
  go 0

let equal_rows a r1 r2 =
  let b1 = r1 * a.w and b2 = r2 * a.w in
  let rec go i = i >= a.w || (a.data.(b1 + i) = a.data.(b2 + i) && go (i + 1)) in
  go 0

let compare_on a ~col r1 r2 =
  let b1 = r1 * a.w and b2 = r2 * a.w in
  let c = Int.compare a.data.(b1 + col) a.data.(b2 + col) in
  if c <> 0 then c
  else begin
    let rec go i =
      if i >= a.w then 0
      else
        let c = Int.compare a.data.(b1 + i) a.data.(b2 + i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let iter_live f a =
  for r = 0 to a.high - 1 do
    if Bytes.unsafe_get a.live_map r <> '\000' then f r
  done

(* -- Packed row batches ----------------------------------------------------- *)

type packed = { p_width : int; p_count : int; p_data : int array }

let pack a v =
  let n = Vec.length v in
  let data = Array.make (max 1 (n * a.w)) 0 in
  for i = 0 to n - 1 do
    Array.blit a.data (Vec.get v i * a.w) data (i * a.w) a.w
  done;
  { p_width = a.w; p_count = n; p_data = data }

let packed_empty ~width = { p_width = width; p_count = 0; p_data = [||] }

let packed_concat ~width ps =
  let n = List.fold_left (fun acc p -> acc + p.p_count) 0 ps in
  let data = Array.make (max 1 (n * width)) 0 in
  let off = ref 0 in
  List.iter
    (fun p ->
      if p.p_width <> width then invalid_arg "Rows.packed_concat: width mismatch";
      Array.blit p.p_data 0 data !off (p.p_count * width);
      off := !off + (p.p_count * width))
    ps;
  { p_width = width; p_count = n; p_data = data }
let packed_width p = p.p_width
let packed_count p = p.p_count
let packed_get p i c = p.p_data.((i * p.p_width) + c)
let packed_row p i = Array.sub p.p_data (i * p.p_width) p.p_width
let packed_data p = p.p_data

let words a =
  Array.length a.data + Vec.words a.freelist + ((Bytes.length a.live_map + 7) / 8) + 8

(* -- Audit ------------------------------------------------------------------ *)

let audit a =
  let findings = ref [] in
  let report detail = findings := ("arena-integrity", detail) :: !findings in
  let on_freelist = Bytes.make (max 1 a.high) '\000' in
  Vec.iter
    (fun r ->
      if r < 0 || r >= a.high then
        report (Printf.sprintf "freelist entry %d outside [0, %d)" r a.high)
      else begin
        if Bytes.get a.live_map r <> '\000' then
          report (Printf.sprintf "live row %d on the freelist" r);
        if Bytes.get on_freelist r <> '\000' then
          report (Printf.sprintf "row %d on the freelist twice" r)
        else Bytes.set on_freelist r '\001'
      end)
    a.freelist;
  let stranded = ref 0 and live_pop = ref 0 in
  for r = 0 to a.high - 1 do
    if Bytes.get a.live_map r <> '\000' then incr live_pop
    else if Bytes.get on_freelist r = '\000' then incr stranded
  done;
  if !stranded > 0 then
    report
      (Printf.sprintf "%d dead slot(s) below the high-water mark missing from the freelist"
         !stranded);
  if !live_pop <> a.live_count then
    report
      (Printf.sprintf "live counter %d but liveness map holds %d row(s)" a.live_count
         !live_pop);
  List.rev !findings

(* -- Test-only corruption hooks --------------------------------------------- *)

module Corrupt = struct
  let leak_live_row a =
    let leaked = ref false in
    (try
       iter_live
         (fun r ->
           Vec.push a.freelist r;
           leaked := true;
           raise Exit)
         a
     with Exit -> ());
    !leaked

  let lose_free_slot a =
    let n = Vec.length a.freelist in
    if n = 0 then false
    else begin
      Vec.swap_remove a.freelist (n - 1);
      true
    end
end

let pp fmt a =
  Format.fprintf fmt "arena w=%d live=%d cap=%d free=%d high=%d" a.w a.live_count
    a.rows_cap (free_count a) a.high
