(** Materialized views.

    A relation is a deduplicated bag of fixed-width tuples with optional
    {e cached} hash indexes on columns.

    Caching is the "+" distinction of the paper (§4.2 "Caching"): during a
    hash join the build phase constructs a hash table keyed by the join
    column.  A non-caching engine (TRIC, INV, INC) rebuilds that table on
    every join operation and discards it; a caching engine (TRIC+, INV+,
    INC+) keeps it alive and maintains it incrementally on insertion.
    [index_on] exposes exactly that behaviour switch.

    {b Storage.} Tuples live in a packed {!Rows.t} arena (width-stride
    flat [int array], freelist-recycled): a stored tuple is a row id, and
    every index — the dedup set, the cached column indexes, the
    prefix/hinge delta indexes — is a bucket of row ids ({!Rows.Vec.t}).
    The boxed [Tuple.t] remains the boundary type; conversion happens only
    at this module's edge.  Each relation owns its arena: row ids are
    meaningless outside it, and batches cross shard boundaries only as
    {!Rows.packed} flat copies. *)

open Tric_graph

type t

type obs
(** Telemetry hooks: four counter cells ([_inserts_total],
    [_removes_total], [_rebuilds_total], [_delta_probes_total] under a
    common prefix), resolved once against a registry and shared by every
    relation of one family (e.g. all node views of a shard). *)

val make_obs : Tric_obs.Registry.t -> prefix:string -> stable:bool -> obs
(** [stable] declares whether the counts are a pure function of the
    update stream at any shard count (node views: yes; base views: no —
    a key's base view is duplicated on every shard that mentions it). *)

val create : ?cache:bool -> ?obs:obs -> ?expect:int -> width:int -> unit -> t
(** [cache] defaults to [false]; [obs] to no telemetry.  [expect]
    pre-sizes the arena and dedup table for that many rows, so bulk loads
    (batch windows) skip the rehash-and-copy growth ladder. *)

val width : t -> int
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool

val reserve : t -> int -> unit
(** Pre-grow the arena for [n] further insertions (batch pre-sizing). *)

val mem_stats : t -> int * int * int
(** [(arena capacity, live rows, freelist length)] — the memory
    footprint triple surfaced per shard by [tric_cli stats]. *)

val insert : t -> Tuple.t -> bool
(** [true] iff the tuple was new.  @raise Invalid_argument on width
    mismatch. *)

val insert_all : t -> Tuple.t list -> Tuple.t list
(** Inserts all; returns the newly inserted ones, in input order. *)

val remove : t -> Tuple.t -> bool
(** Used by edge deletion (§4.3). *)

val remove_all : t -> Tuple.t list -> Tuple.t list
(** Removes all; returns the tuples that were actually present (and are now
    gone), in input order — the bulk counterpart of {!insert_all}, used by
    batched deletion propagation. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list

(** {1 Row-level hot path}

    The packed face of the relation: engines that live inside one shard
    address tuples as row ids and never box.  Row ids are only valid
    against the relation that produced them, and only until that row is
    removed. *)

val iter_rows : (int -> unit) -> t -> unit
(** Every live row id, ascending — the allocation-free walk behind the
    audit path. *)

val row_col : t -> int -> int -> Label.t
(** [row_col r row col] — one column, no tuple boxing. *)

val row_tuple : t -> int -> Tuple.t
(** Boxed copy of a live row (boundary conversions only). *)

val insert_edge_row : t -> src:Label.t -> dst:Label.t -> int
(** Insert a two-column row; the new row id, or [-1] if it was already
    present.  @raise Invalid_argument if the width is not 2. *)

val insert_extend : t -> src:t -> row:int -> ext:Label.t -> int
(** [insert_extend r ~src ~row ~ext] inserts [src]'s row extended by one
    trailing label — the seeding/propagation step.  The new row id, or
    [-1] on duplicate.  @raise Invalid_argument unless
    [width src = width r - 1]. *)

val insert_extend_packed : t -> parents:Rows.packed -> i:int -> ext:Label.t -> int
(** Same step from the [i]-th row of a packed parent batch. *)

val pack_rows : t -> Rows.Vec.t -> Rows.packed
(** Flat standalone copy of the named rows — the only form in which a
    batch of tuples may leave the owning shard. *)

val probe_col_rows : t -> col:int -> Label.t -> Rows.Vec.t option
(** Cache-mode row-level probe: the live bucket of the maintained column
    index ([None] if the key is unseen).  The vector is the index's own
    bucket — callers must not mutate this relation while iterating it.
    Counted like {!index_on} (one rebuild on the first build of the
    column's index).  @raise Invalid_argument if the relation does not
    cache. *)

val evict_hinge : t -> src:Label.t -> dst:Label.t -> Rows.packed
(** Remove (and return, packed) all tuples whose last two columns are
    [(src, dst)] — the deletion-path counterpart of {!probe_hinge},
    counted as one delta probe.  @raise Invalid_argument on width < 2. *)

val evict_prefixed : t -> Rows.packed -> Rows.packed
(** Remove (and return, packed) all tuples extending any row of the
    doomed parent batch, one counted delta probe per parent row.
    @raise Invalid_argument unless the batch width is [width - 1]. *)

val merge_join : left:t -> lcol:int -> right:t -> rcol:int -> (int -> int -> unit) -> unit
(** [merge_join ~left ~lcol ~right ~rcol f] calls [f lrow rrow] for every
    pair of rows agreeing on the join columns, by merging the two
    relations' sorted runs — no hash table on either side.  Runs are
    compacted lazily per column, discarded on any mutation, and each
    fresh compaction counts as one rebuild (the merge join's analogue of
    a hash-join build phase).  [f] must not mutate either relation. *)

type probe = Label.t -> Tuple.t list
(** Probe phase of a hash join: all tuples whose indexed column holds the
    given label. *)

val index_on : t -> col:int -> probe
(** The build phase of one hash join on column [col].

    Without caching, this scans the relation and builds an ephemeral hash
    table — O(cardinality) on {e every} call, the cost the "+" engines
    avoid.  With caching, the table is built on first use, maintained
    incrementally by {!insert}/{!remove}, and returned for free
    afterwards.  The returned probe must not outlive the next mutation in
    non-caching mode (engines use it within a single join operation). *)

val probe_scan : t -> col:int -> Tric_graph.Label.t -> Tuple.t list
(** One-shot probe without building any index: scan the relation and
    filter on the column.  This is the paper's hash join with the build
    side being the {e other} (smaller) operand — what the non-caching
    engines do when joining a large view against a single update. *)

val scan_probing :
  t -> col:int -> (Tric_graph.Label.t -> 'a list) -> (Tuple.t -> 'a -> unit) -> unit
(** [scan_probing r ~col probe f]: scan the relation once, and for every
    tuple call [f] with each hit of [probe] on the tuple's [col] value —
    the probe phase of a hash join whose build side is the (small) table
    behind [probe]. *)

val probe_prefix : t -> Tuple.t -> Tuple.t list
(** [probe_prefix r p] — all tuples whose first [width - 1] columns equal
    the prefix tuple [p].  Backed by a maintained index that exists in
    {e both} cache modes (unlike [index_on], which is ephemeral without
    caching): it is built lazily on the first probe and kept up to date by
    {!insert}/{!remove} afterwards, so deletion propagation (§4.3) finds a
    doomed parent tuple's extensions by lookup instead of scanning the
    view.  Add-only workloads never pay for it.
    @raise Invalid_argument if [p]'s width is not [width - 1]. *)

val probe_hinge : t -> src:Label.t -> dst:Label.t -> Tuple.t list
(** [probe_hinge r ~src ~dst] — all tuples whose last two columns are
    [(src, dst)], i.e. the chain tuples whose final edge is the given
    concrete edge.  Maintained like the prefix index (lazy build, then
    incremental in both cache modes).
    @raise Invalid_argument on width < 2. *)

val stats_rebuilds : t -> int
(** How many index builds this relation has performed — ephemeral
    [index_on] tables in non-caching mode, first builds of cached column
    indexes, and sorted-run compactions for {!merge_join}.  The work
    caching saves. *)

val stats_delta_probes : t -> int
(** How many prefix/hinge index lookups served the deletion path — each one
    replaces a full-view scan. *)

val stats_index_buckets : t -> int
(** Total live buckets across the cached column indexes (tests: removal
    must drop emptied buckets rather than keeping empty vectors alive). *)

val stats_inserts : t -> int
(** Lifetime count of successful {!insert}s (duplicates excluded).  The
    accounting identity [stats_inserts - stats_removes = cardinality] is
    one of the invariants {!audit} certifies. *)

val stats_removes : t -> int
(** Lifetime count of successful {!remove}s (absent tuples excluded). *)

val audit : t -> (string * string) list
(** Self-check of every relation-internal invariant, as
    [(invariant class, detail)] pairs — empty when clean.  Classes:
    ["arena-integrity"] (the {!Rows.audit} freelist/liveness invariants,
    plus: no index bucket holds a dangling — dead or never-allocated —
    row id), ["index-coherence"] (every maintained index — dedup set,
    cached column indexes, prefix index, hinge index — files exactly the
    live rows under their own keys, with no duplicates or empty buckets),
    and ["stats"] (the insert/remove accounting identity).  Pure
    observation: never builds indexes that are not already live, and
    never mutates the relation. *)

module Corrupt : sig
  (** Test-only corruption hooks: each deliberately breaks exactly one
      invariant class so the mutation tests can prove {!audit} detects it.
      Never call these outside tests. *)

  val drop_index_bucket : t -> bool
  (** Delete one whole bucket from a live maintained index (cached column
      index first, then prefix/hinge).  [false] if no index is built. *)

  val phantom_tuple : t -> Tuple.t -> unit
  (** Allocate a row and file it in the dedup set {e bypassing} every
      other index and every counter — the "skewed view" corruption. *)

  val desync_counters : t -> unit
  (** Bump the insert counter without inserting anything. *)

  val leak_arena_row : t -> bool
  (** Push a live row onto the freelist without freeing it ({!Rows.Corrupt.leak_live_row});
      [false] if the relation is empty. *)

  val dangle_bucket_row : t -> bool
  (** File a never-allocated row id in a dedup bucket; [false] if the
      relation is empty. *)
end

val clear : t -> unit
(** Drop every tuple and reset the insert/remove counters (rebuild and
    delta-probe counters survive — they describe lifetime work). *)

val pp : Format.formatter -> t -> unit
