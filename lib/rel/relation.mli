(** Materialized views.

    A relation is a deduplicated bag of fixed-width tuples with optional
    {e cached} hash indexes on columns.

    Caching is the "+" distinction of the paper (§4.2 "Caching"): during a
    hash join the build phase constructs a hash table keyed by the join
    column.  A non-caching engine (TRIC, INV, INC) rebuilds that table on
    every join operation and discards it; a caching engine (TRIC+, INV+,
    INC+) keeps it alive and maintains it incrementally on insertion.
    [index_on] exposes exactly that behaviour switch. *)

open Tric_graph

type t

type obs
(** Telemetry hooks: four counter cells ([_inserts_total],
    [_removes_total], [_rebuilds_total], [_delta_probes_total] under a
    common prefix), resolved once against a registry and shared by every
    relation of one family (e.g. all node views of a shard). *)

val make_obs : Tric_obs.Registry.t -> prefix:string -> stable:bool -> obs
(** [stable] declares whether the counts are a pure function of the
    update stream at any shard count (node views: yes; base views: no —
    a key's base view is duplicated on every shard that mentions it). *)

val create : ?cache:bool -> ?obs:obs -> width:int -> unit -> t
(** [cache] defaults to [false]; [obs] to no telemetry. *)

val width : t -> int
val cardinality : t -> int
val is_empty : t -> bool
val mem : t -> Tuple.t -> bool

val insert : t -> Tuple.t -> bool
(** [true] iff the tuple was new.  @raise Invalid_argument on width
    mismatch. *)

val insert_all : t -> Tuple.t list -> Tuple.t list
(** Inserts all; returns the newly inserted ones, in input order. *)

val remove : t -> Tuple.t -> bool
(** Used by edge deletion (§4.3). *)

val remove_all : t -> Tuple.t list -> Tuple.t list
(** Removes all; returns the tuples that were actually present (and are now
    gone), in input order — the bulk counterpart of {!insert_all}, used by
    batched deletion propagation. *)

val iter : (Tuple.t -> unit) -> t -> unit
val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> Tuple.t list

type probe = Label.t -> Tuple.t list
(** Probe phase of a hash join: all tuples whose indexed column holds the
    given label. *)

val index_on : t -> col:int -> probe
(** The build phase of one hash join on column [col].

    Without caching, this scans the relation and builds an ephemeral hash
    table — O(cardinality) on {e every} call, the cost the "+" engines
    avoid.  With caching, the table is built on first use, maintained
    incrementally by {!insert}/{!remove}, and returned for free
    afterwards.  The returned probe must not outlive the next mutation in
    non-caching mode (engines use it within a single join operation). *)

val probe_scan : t -> col:int -> Tric_graph.Label.t -> Tuple.t list
(** One-shot probe without building any index: scan the relation and
    filter on the column.  This is the paper's hash join with the build
    side being the {e other} (smaller) operand — what the non-caching
    engines do when joining a large view against a single update. *)

val scan_probing :
  t -> col:int -> (Tric_graph.Label.t -> 'a list) -> (Tuple.t -> 'a -> unit) -> unit
(** [scan_probing r ~col probe f]: scan the relation once, and for every
    tuple call [f] with each hit of [probe] on the tuple's [col] value —
    the probe phase of a hash join whose build side is the (small) table
    behind [probe]. *)

val probe_prefix : t -> Tuple.t -> Tuple.t list
(** [probe_prefix r p] — all tuples whose first [width - 1] columns equal
    the prefix tuple [p].  Backed by a maintained index that exists in
    {e both} cache modes (unlike [index_on], which is ephemeral without
    caching): it is built lazily on the first probe and kept up to date by
    {!insert}/{!remove} afterwards, so deletion propagation (§4.3) finds a
    doomed parent tuple's extensions by lookup instead of scanning the
    view.  Add-only workloads never pay for it.
    @raise Invalid_argument if [p]'s width is not [width - 1]. *)

val probe_hinge : t -> src:Label.t -> dst:Label.t -> Tuple.t list
(** [probe_hinge r ~src ~dst] — all tuples whose last two columns are
    [(src, dst)], i.e. the chain tuples whose final edge is the given
    concrete edge.  Maintained like the prefix index (lazy build, then
    incremental in both cache modes).
    @raise Invalid_argument on width < 2. *)

val stats_rebuilds : t -> int
(** How many ephemeral index builds this relation has performed — the work
    caching saves.  In caching mode this stays at the number of distinct
    indexed columns. *)

val stats_delta_probes : t -> int
(** How many prefix/hinge index lookups served the deletion path — each one
    replaces a full-view scan. *)

val stats_index_buckets : t -> int
(** Total live buckets across the cached column indexes (tests: removal
    must drop emptied buckets rather than keeping [ref []] alive). *)

val stats_inserts : t -> int
(** Lifetime count of successful {!insert}s (duplicates excluded).  The
    accounting identity [stats_inserts - stats_removes = cardinality] is
    one of the invariants {!audit} certifies. *)

val stats_removes : t -> int
(** Lifetime count of successful {!remove}s (absent tuples excluded). *)

val audit : t -> (string * string) list
(** Self-check of every relation-internal invariant, as
    [(invariant class, detail)] pairs — empty when clean.  Classes:
    ["index-coherence"] (every maintained index — cached column indexes,
    prefix index, hinge index — holds exactly the live tuples under their
    own keys, with no dead tuples, duplicates, or empty buckets),
    ["view-coherence"] (every stored tuple has the relation's width), and
    ["stats"] (the insert/remove accounting identity).  Pure observation:
    never builds indexes that are not already live, and never mutates the
    relation. *)

module Corrupt : sig
  (** Test-only corruption hooks: each deliberately breaks exactly one
      invariant class so the mutation tests can prove {!audit} detects it.
      Never call these outside tests. *)

  val drop_index_bucket : t -> bool
  (** Delete one whole bucket from a live maintained index (cached column
      index first, then prefix/hinge).  [false] if no index is built. *)

  val phantom_tuple : t -> Tuple.t -> unit
  (** Add a tuple to the backing set {e bypassing} every index and counter
      — the "skewed view" corruption. *)

  val desync_counters : t -> unit
  (** Bump the insert counter without inserting anything. *)
end

val clear : t -> unit
val pp : Format.formatter -> t -> unit
