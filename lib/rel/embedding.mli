(** Partial embeddings of a query graph pattern.

    An embedding assigns graph vertices (labels) to the pattern's vertex
    ids.  A {e total} embedding whose assignments are consistent with every
    pattern edge is a query answer (a matching subgraph).  Embeddings are
    immutable; extension returns a copy or [None] on a binding conflict —
    conflicts are exactly how repeated-variable constraints (e.g. the two
    occurrences of [?x] in a cycle's covering path) are enforced. *)

open Tric_graph

type t

val empty : int -> t
(** [empty width] — no vertex bound yet; [width] is the pattern's vertex
    count. *)

val width : t -> int
val get : t -> int -> Label.t option
val is_bound : t -> int -> bool
val is_total : t -> bool

val bind : t -> int -> Label.t -> t option
(** [None] if the vid is already bound to a different label. *)

val bind_tuple : t -> vids:int array -> Tuple.t -> t option
(** Bind positionally: [vids.(i) <- tuple.(i)].  Used to turn a chain-view
    tuple into (an extension of) an embedding.
    @raise Invalid_argument on length mismatch. *)

val of_tuple : width:int -> vids:int array -> Tuple.t -> t option
(** [bind_tuple (empty width)]. *)

val bind_packed : t -> vids:int array -> Rows.packed -> int -> t option
(** Bind positionally from the [i]-th row of a packed batch — the
    allocation-light counterpart of {!bind_tuple} (the arena already
    holds interned label ints).
    @raise Invalid_argument if [vids] does not match the batch width. *)

val of_packed : width:int -> vids:int array -> Rows.packed -> int -> t option
(** [bind_packed (empty width)]. *)

val merge : t -> t -> t option
(** Consistent union of two partial embeddings over the same pattern. *)

val bound_vids : t -> int list

(** Join keys: the projection of an embedding onto the shared vids as a
    raw int array, with a typed hash table — the join attribute of
    embedding hash joins, without string building. *)
module Key : sig
  type emb := t
  type t = private int array

  val of_embedding : emb -> int array -> t
  (** Projection onto the given vids (all must be bound). *)

  module Tbl : Hashtbl.S with type key = t
end

val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int
val to_alist : t -> (int * Label.t) list
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Tbl : Hashtbl.S with type key = t
