open Tric_graph

type probe = Label.t -> Tuple.t list

(* Deletion-support index: tuple-valued key (a prefix or a hinge edge) ->
   bucket of live tuples.  Built lazily on first probe, then maintained by
   insert/remove in both cache modes — deletions must never fall back to a
   full-view scan, even in engines that rebuild their join indexes. *)
type delta_index = Tuple.t list ref Tuple.Tbl.t

(* Telemetry hooks: counter cells resolved once at wiring time (Registry
   lookups happen at [make_obs], not per event), shared by every relation
   of one family (all node views of a shard, all base views, ...). *)
type obs = {
  o_inserts : Tric_obs.Registry.counter;
  o_removes : Tric_obs.Registry.counter;
  o_rebuilds : Tric_obs.Registry.counter;
  o_delta_probes : Tric_obs.Registry.counter;
}

let make_obs reg ~prefix ~stable =
  let c name = Tric_obs.Registry.counter reg ~stable (prefix ^ "_" ^ name) in
  {
    o_inserts = c "inserts_total";
    o_removes = c "removes_total";
    o_rebuilds = c "rebuilds_total";
    o_delta_probes = c "delta_probes_total";
  }

type t = {
  width : int;
  cache : bool;
  tuples : unit Tuple.Tbl.t;
  indexes : (int, Tuple.t list ref Label.Tbl.t) Hashtbl.t; (* cache mode only *)
  mutable prefix_idx : delta_index option; (* key: first (width-1) columns *)
  mutable hinge_idx : delta_index option; (* key: last two columns *)
  mutable rebuilds : int;
  mutable delta_probes : int;
  mutable inserts : int; (* successful inserts over the lifetime *)
  mutable removes : int; (* successful removes over the lifetime *)
  obs : obs option;
}

let create ?(cache = false) ?obs ~width () =
  {
    width;
    cache;
    tuples = Tuple.Tbl.create 64;
    indexes = Hashtbl.create 4;
    prefix_idx = None;
    hinge_idx = None;
    rebuilds = 0;
    delta_probes = 0;
    inserts = 0;
    removes = 0;
    obs;
  }

let width r = r.width
let cardinality r = Tuple.Tbl.length r.tuples
let is_empty r = cardinality r = 0
let mem r t = Tuple.Tbl.mem r.tuples t

(* Drop the first occurrence, sharing the suffix past it.  Relations are
   deduplicated, so a bucket holds any tuple at most once and the scan can
   stop at the first hit. *)
let rec remove_first t = function
  | [] -> []
  | t' :: tl -> if Tuple.equal t t' then tl else t' :: remove_first t tl

let index_add idx col t =
  let key = Tuple.get t col in
  match Label.Tbl.find_opt idx key with
  | Some cell -> cell := t :: !cell
  | None -> Label.Tbl.add idx key (ref [ t ])

let index_remove idx col t =
  let key = Tuple.get t col in
  match Label.Tbl.find_opt idx key with
  | Some cell -> (
    match remove_first t !cell with
    | [] -> Label.Tbl.remove idx key (* never keep empty buckets alive *)
    | rest -> cell := rest)
  | None -> ()

(* -- Deletion-support (prefix / hinge) indexes ----------------------------- *)

let prefix_key r t = Tuple.prefix t (r.width - 1)
let hinge_key t = Tuple.last_pair t

let delta_add idx key t =
  match Tuple.Tbl.find_opt idx key with
  | Some cell -> cell := t :: !cell
  | None -> Tuple.Tbl.add idx key (ref [ t ])

let delta_remove idx key t =
  match Tuple.Tbl.find_opt idx key with
  | Some cell -> (
    match remove_first t !cell with
    | [] -> Tuple.Tbl.remove idx key
    | rest -> cell := rest)
  | None -> ()

let delta_index_add r t =
  (match r.prefix_idx with
  | Some idx -> delta_add idx (prefix_key r t) t
  | None -> ());
  match r.hinge_idx with Some idx -> delta_add idx (hinge_key t) t | None -> ()

let delta_index_remove r t =
  (match r.prefix_idx with
  | Some idx -> delta_remove idx (prefix_key r t) t
  | None -> ());
  match r.hinge_idx with Some idx -> delta_remove idx (hinge_key t) t | None -> ()

let insert r t =
  if Array.length t <> r.width then invalid_arg "Relation.insert: width mismatch";
  if Tuple.Tbl.mem r.tuples t then false
  else begin
    Tuple.Tbl.add r.tuples t ();
    Hashtbl.iter (fun col idx -> index_add idx col t) r.indexes;
    delta_index_add r t;
    r.inserts <- r.inserts + 1;
    (match r.obs with Some o -> Tric_obs.Registry.incr o.o_inserts | None -> ());
    true
  end

let insert_all r ts = List.filter (fun t -> insert r t) ts

let remove r t =
  if Tuple.Tbl.mem r.tuples t then begin
    Tuple.Tbl.remove r.tuples t;
    Hashtbl.iter (fun col idx -> index_remove idx col t) r.indexes;
    delta_index_remove r t;
    r.removes <- r.removes + 1;
    (match r.obs with Some o -> Tric_obs.Registry.incr o.o_removes | None -> ());
    true
  end
  else false

let remove_all r ts = List.filter (fun t -> remove r t) ts

let iter f r = Tuple.Tbl.iter (fun t () -> f t) r.tuples
let fold f r init = Tuple.Tbl.fold (fun t () acc -> f t acc) r.tuples init
let to_list r = fold (fun t acc -> t :: acc) r []

let ensure_prefix_idx r =
  match r.prefix_idx with
  | Some idx -> idx
  | None ->
    let idx : delta_index = Tuple.Tbl.create (max 16 (cardinality r)) in
    iter (fun t -> delta_add idx (prefix_key r t) t) r;
    r.prefix_idx <- Some idx;
    idx

let ensure_hinge_idx r =
  match r.hinge_idx with
  | Some idx -> idx
  | None ->
    let idx : delta_index = Tuple.Tbl.create (max 16 (cardinality r)) in
    iter (fun t -> delta_add idx (hinge_key t) t) r;
    r.hinge_idx <- Some idx;
    idx

let delta_probe idx key =
  match Tuple.Tbl.find_opt idx key with Some cell -> !cell | None -> []

let probe_prefix r p =
  if Tuple.width p <> r.width - 1 then invalid_arg "Relation.probe_prefix: bad prefix width";
  r.delta_probes <- r.delta_probes + 1;
  (match r.obs with Some o -> Tric_obs.Registry.incr o.o_delta_probes | None -> ());
  delta_probe (ensure_prefix_idx r) p

let probe_hinge r ~src ~dst =
  if r.width < 2 then invalid_arg "Relation.probe_hinge: width < 2";
  r.delta_probes <- r.delta_probes + 1;
  (match r.obs with Some o -> Tric_obs.Registry.incr o.o_delta_probes | None -> ());
  delta_probe (ensure_hinge_idx r) [| src; dst |]

let build_table r col =
  let idx = Label.Tbl.create (max 16 (cardinality r)) in
  iter (fun t -> index_add idx col t) r;
  idx

let probe_of idx key = match Label.Tbl.find_opt idx key with Some cell -> !cell | None -> []

let index_on r ~col =
  if col < 0 || col >= r.width then invalid_arg "Relation.index_on: bad column";
  if r.cache then begin
    let idx =
      match Hashtbl.find_opt r.indexes col with
      | Some idx -> idx
      | None ->
        let idx = build_table r col in
        r.rebuilds <- r.rebuilds + 1;
        (match r.obs with Some o -> Tric_obs.Registry.incr o.o_rebuilds | None -> ());
        Hashtbl.add r.indexes col idx;
        idx
    in
    probe_of idx
  end
  else begin
    let idx = build_table r col in
    r.rebuilds <- r.rebuilds + 1;
    (match r.obs with Some o -> Tric_obs.Registry.incr o.o_rebuilds | None -> ());
    probe_of idx
  end

let probe_scan r ~col value =
  fold (fun t acc -> if Label.equal (Tuple.get t col) value then t :: acc else acc) r []

let scan_probing r ~col probe f =
  iter
    (fun t ->
      match probe (Tuple.get t col) with
      | [] -> ()
      | hits -> List.iter (fun hit -> f t hit) hits)
    r

let stats_rebuilds r = r.rebuilds
let stats_delta_probes r = r.delta_probes
let stats_inserts r = r.inserts
let stats_removes r = r.removes

let stats_index_buckets r =
  Hashtbl.fold (fun _ idx acc -> acc + Label.Tbl.length idx) r.indexes 0

let clear r =
  Tuple.Tbl.reset r.tuples;
  Hashtbl.reset r.indexes;
  r.prefix_idx <- None;
  r.hinge_idx <- None;
  r.inserts <- 0;
  r.removes <- 0

(* -- Audit ------------------------------------------------------------------ *)

(* One maintained index (cached column / prefix / hinge) against the live
   tuple set: every bucket key must map only tuples whose projection is
   that key, no tuple may be missing or duplicated, and emptied buckets
   must have been dropped. *)
let audit_index ~what ~key_of ~pp_key buckets_iter find_bucket r =
  let findings = ref [] in
  let report detail = findings := ("index-coherence", detail) :: !findings in
  buckets_iter (fun key (cell : Tuple.t list ref) ->
      match !cell with
      | [] -> report (Format.asprintf "%s: empty bucket %s kept alive" what (pp_key key))
      | tuples ->
        List.iter
          (fun t ->
            if not (Tuple.Tbl.mem r.tuples t) then
              report
                (Format.asprintf "%s: bucket %s holds dead tuple %a" what (pp_key key)
                   Tuple.pp t)
            else if not (Tuple.equal (key_of t) key) then
              report
                (Format.asprintf "%s: tuple %a filed under wrong key %s" what Tuple.pp t
                   (pp_key key)))
          tuples;
        let distinct = List.length (List.sort_uniq Tuple.compare tuples) in
        if distinct <> List.length tuples then
          report (Format.asprintf "%s: bucket %s holds duplicates" what (pp_key key)));
  (* Reverse inclusion: every live tuple must be found under its own key. *)
  Tuple.Tbl.iter
    (fun t () ->
      match find_bucket (key_of t) with
      | Some cell when List.exists (Tuple.equal t) !cell -> ()
      | _ ->
        report (Format.asprintf "%s: live tuple %a missing from its bucket" what Tuple.pp t))
    r.tuples;
  List.rev !findings

let audit r =
  let findings = ref [] in
  let report inv detail = findings := (inv, detail) :: !findings in
  Tuple.Tbl.iter
    (fun t () ->
      if Tuple.width t <> r.width then
        report "view-coherence"
          (Format.asprintf "tuple %a has width %d in a width-%d relation" Tuple.pp t
             (Tuple.width t) r.width))
    r.tuples;
  if r.inserts - r.removes <> cardinality r then
    report "stats"
      (Printf.sprintf "inserts - removes = %d - %d but cardinality is %d" r.inserts
         r.removes (cardinality r));
  Hashtbl.iter
    (fun col idx ->
      let fs =
        audit_index
          ~what:(Printf.sprintf "column-%d index" col)
          ~key_of:(fun t -> [| Tuple.get t col |])
          ~pp_key:(fun k -> Format.asprintf "%a" Label.pp (Tuple.get k 0))
          (fun f -> Label.Tbl.iter (fun l cell -> f [| l |] cell) idx)
          (fun k -> Label.Tbl.find_opt idx (Tuple.get k 0))
          r
      in
      findings := fs @ !findings)
    r.indexes;
  let audit_delta what key_of = function
    | None -> ()
    | Some idx ->
      let fs =
        audit_index ~what ~key_of
          ~pp_key:(fun k -> Format.asprintf "%a" Tuple.pp k)
          (fun f -> Tuple.Tbl.iter f idx)
          (fun k -> Tuple.Tbl.find_opt idx k)
          r
      in
      findings := fs @ !findings
  in
  audit_delta "prefix index" (fun t -> prefix_key r t) r.prefix_idx;
  audit_delta "hinge index" hinge_key r.hinge_idx;
  List.rev !findings

(* -- Test-only corruption hooks --------------------------------------------- *)

module Corrupt = struct
  let drop_index_bucket r =
    let dropped = ref false in
    let drop_label_tbl idx =
      match Label.Tbl.fold (fun k _ acc -> match acc with None -> Some k | s -> s) idx None with
      | Some k ->
        Label.Tbl.remove idx k;
        dropped := true
      | None -> ()
    in
    let drop_tuple_tbl idx =
      match Tuple.Tbl.fold (fun k _ acc -> match acc with None -> Some k | s -> s) idx None with
      | Some k ->
        Tuple.Tbl.remove idx k;
        dropped := true
      | None -> ()
    in
    Hashtbl.iter (fun _ idx -> if not !dropped then drop_label_tbl idx) r.indexes;
    (if not !dropped then match r.prefix_idx with Some idx -> drop_tuple_tbl idx | None -> ());
    (if not !dropped then match r.hinge_idx with Some idx -> drop_tuple_tbl idx | None -> ());
    !dropped

  let phantom_tuple r t = if not (Tuple.Tbl.mem r.tuples t) then Tuple.Tbl.add r.tuples t ()
  let desync_counters r = r.inserts <- r.inserts + 1
end

let pp fmt r =
  Format.fprintf fmt "@[<v>relation w=%d |%d|" r.width (cardinality r);
  iter (fun t -> Format.fprintf fmt "@,  %a" Tuple.pp t) r;
  Format.fprintf fmt "@]"
