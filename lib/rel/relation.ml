open Tric_graph

type probe = Label.t -> Tuple.t list

(* Telemetry hooks: counter cells resolved once at wiring time (Registry
   lookups happen at [make_obs], not per event), shared by every relation
   of one family (all node views of a shard, all base views, ...). *)
type obs = {
  o_inserts : Tric_obs.Registry.counter;
  o_removes : Tric_obs.Registry.counter;
  o_rebuilds : Tric_obs.Registry.counter;
  o_delta_probes : Tric_obs.Registry.counter;
}

let make_obs reg ~prefix ~stable =
  let c name = Tric_obs.Registry.counter reg ~stable (prefix ^ "_" ^ name) in
  {
    o_inserts = c "inserts_total";
    o_removes = c "removes_total";
    o_rebuilds = c "rebuilds_total";
    o_delta_probes = c "delta_probes_total";
  }

(* Every index is a bucket of row ids into the relation's arena:
   - the prefix/hinge delta indexes key buckets by the Tuple-compatible
     hash of the relevant column range (collisions are tolerated — probes
     re-check cell equality);
   - the cache-mode column indexes key buckets by the exact column label
     (their bucket count is an observable statistic).
   The dedup set is different: it is the one structure paid for by every
   row of every relation, so it is a flat open-addressing table of row
   ids (linear probing against arena cell content) rather than a
   hash->bucket Hashtbl — ~2-4 words per row instead of ~10. *)
type hash_index = (int, Rows.Vec.t) Hashtbl.t

(* Dedup slot markers: any value >= 0 is a filed row id. *)
let dempty = -1
let dtomb = -2

type t = {
  width : int;
  cache : bool;
  arena : Rows.t;
  mutable dslots : int array; (* membership: open-addressing row-id table *)
  mutable dcount : int; (* filed rows *)
  mutable dtombs : int; (* tombstones awaiting the next rehash *)
  indexes : (int, Rows.Vec.t Label.Tbl.t) Hashtbl.t; (* cache mode only *)
  mutable prefix_idx : hash_index option; (* first (width-1) columns *)
  mutable hinge_idx : hash_index option; (* last two columns *)
  mutable runs : (int * int array) list; (* col -> sorted row run (cold) *)
  scratch : int array; (* width cells: boundary Tuple -> cells staging *)
  mutable rebuilds : int;
  mutable delta_probes : int;
  mutable inserts : int; (* successful inserts over the lifetime *)
  mutable removes : int; (* successful removes over the lifetime *)
  obs : obs option;
}

(* Smallest power of two with room for [n] filed rows at load <= 1/2. *)
let dsize_for n =
  let rec go c = if c >= (2 * n) + 2 then c else go (2 * c) in
  go 16

let create ?(cache = false) ?obs ?(expect = 0) ~width () =
  {
    width;
    cache;
    arena = Rows.create ~expect ~width ();
    dslots = Array.make (dsize_for expect) dempty;
    dcount = 0;
    dtombs = 0;
    indexes = Hashtbl.create 4;
    prefix_idx = None;
    hinge_idx = None;
    runs = [];
    scratch = Array.make width 0;
    rebuilds = 0;
    delta_probes = 0;
    inserts = 0;
    removes = 0;
    obs;
  }

let width r = r.width
let cardinality r = Rows.live r.arena
let is_empty r = cardinality r = 0
let reserve r n = Rows.reserve r.arena n
let mem_stats r = (Rows.capacity r.arena, Rows.live r.arena, Rows.free_count r.arena)

(* -- Boundary conversions ---------------------------------------------------- *)

let fill_scratch r t =
  for i = 0 to r.width - 1 do
    r.scratch.(i) <- Label.to_int (Tuple.get t i)
  done

let row_col r row col = Label.of_int (Rows.get r.arena row col)
let row_tuple r row = Tuple.make (Array.map Label.of_int (Rows.read r.arena row))

(* -- Hash-bucket plumbing ---------------------------------------------------- *)

let hadd (tbl : hash_index) h row =
  match Hashtbl.find_opt tbl h with
  | Some v -> Rows.Vec.push v row
  | None ->
    let v = Rows.Vec.create () in
    Rows.Vec.push v row;
    Hashtbl.add tbl h v

(* Never keep empty buckets alive. *)
let hremove (tbl : hash_index) h row =
  match Hashtbl.find_opt tbl h with
  | Some v ->
    ignore (Rows.Vec.remove_value v row);
    if Rows.Vec.length v = 0 then Hashtbl.remove tbl h
  | None -> ()

(* Probe the dedup table for a row whose cells equal [buf] at [off]
   (hashed as [h]); the row id, or -1.  The growth policy keeps at least
   one [dempty] slot, so the probe terminates. *)
let dfind r h buf off =
  let mask = Array.length r.dslots - 1 in
  let rec go i =
    let s = Array.unsafe_get r.dslots i in
    if s = dempty then -1
    else if s >= 0 && Rows.equal_cols r.arena s ~lo:0 buf ~off ~len:r.width then s
    else go ((i + 1) land mask)
  in
  go (h land mask)

(* Re-place every filed row into a fresh table (drops tombstones). *)
let drehash r size =
  let slots = Array.make size dempty in
  let mask = size - 1 in
  Array.iter
    (fun s ->
      if s >= 0 then begin
        let rec place i =
          if Array.unsafe_get slots i = dempty then Array.unsafe_set slots i s
          else place ((i + 1) land mask)
        in
        place (Rows.hash_row r.arena s land mask)
      end)
    r.dslots;
  r.dslots <- slots;
  r.dtombs <- 0

(* File [row] (hashed as [h], known absent) in the first reusable slot,
   growing first so the load factor stays under 1/2. *)
let dinsert r h row =
  if 2 * (r.dcount + r.dtombs + 1) > Array.length r.dslots then
    drehash r (dsize_for (r.dcount + 1));
  let mask = Array.length r.dslots - 1 in
  let rec place i =
    let s = Array.unsafe_get r.dslots i in
    if s = dempty || s = dtomb then begin
      if s = dtomb then r.dtombs <- r.dtombs - 1;
      Array.unsafe_set r.dslots i row
    end
    else place ((i + 1) land mask)
  in
  place (h land mask);
  r.dcount <- r.dcount + 1

(* Tombstone the slot filing [row] (hashed as [h]); the dedup invariant
   makes row-id equality sufficient along the probe chain. *)
let dremove r h row =
  let mask = Array.length r.dslots - 1 in
  let rec go i =
    let s = Array.unsafe_get r.dslots i in
    if s = row then begin
      Array.unsafe_set r.dslots i dtomb;
      r.dcount <- r.dcount - 1;
      r.dtombs <- r.dtombs + 1
    end
    else if s <> dempty then go ((i + 1) land mask)
  in
  go (h land mask)

let find_cells r buf off = dfind r (Rows.hash_ints buf ~off ~len:r.width) buf off

let mem r t =
  if Tuple.width t <> r.width then false
  else begin
    fill_scratch r t;
    find_cells r r.scratch 0 >= 0
  end

(* -- Index maintenance ------------------------------------------------------- *)

let col_index_add r idx col row =
  let l = row_col r row col in
  match Label.Tbl.find_opt idx l with
  | Some v -> Rows.Vec.push v row
  | None ->
    let v = Rows.Vec.create () in
    Rows.Vec.push v row;
    Label.Tbl.add idx l v

let col_index_remove r idx col row =
  let l = row_col r row col in
  match Label.Tbl.find_opt idx l with
  | Some v ->
    ignore (Rows.Vec.remove_value v row);
    if Rows.Vec.length v = 0 then Label.Tbl.remove idx l
  | None -> ()

let index_after_insert r row =
  Hashtbl.iter (fun col idx -> col_index_add r idx col row) r.indexes;
  (match r.prefix_idx with
  | Some idx -> hadd idx (Rows.hash_prefix r.arena row) row
  | None -> ());
  match r.hinge_idx with
  | Some idx -> hadd idx (Rows.hash_hinge r.arena row) row
  | None -> ()

let index_before_remove r row =
  Hashtbl.iter (fun col idx -> col_index_remove r idx col row) r.indexes;
  (match r.prefix_idx with
  | Some idx -> hremove idx (Rows.hash_prefix r.arena row) row
  | None -> ());
  match r.hinge_idx with
  | Some idx -> hremove idx (Rows.hash_hinge r.arena row) row
  | None -> ()

(* -- Core insert / remove (cell-level) --------------------------------------- *)

(* [buf] must not alias this relation's own arena storage (the alloc may
   grow it); internal callers stage through [scratch] or read a foreign
   arena. *)
let insert_cells r buf off =
  let h = Rows.hash_ints buf ~off ~len:r.width in
  if dfind r h buf off >= 0 then -1
  else begin
    let row = Rows.alloc r.arena in
    Rows.write r.arena row buf off;
    dinsert r h row;
    index_after_insert r row;
    r.runs <- [];
    r.inserts <- r.inserts + 1;
    (match r.obs with Some o -> Tric_obs.Registry.incr o.o_inserts | None -> ());
    row
  end

(* Unfile the row from every index, then release the slot.  All hash
   recomputation happens before [Rows.free] — a freed slot's cells are
   dead the moment the freelist owns it. *)
let remove_row r row =
  dremove r (Rows.hash_row r.arena row) row;
  index_before_remove r row;
  Rows.free r.arena row;
  r.runs <- [];
  r.removes <- r.removes + 1;
  match r.obs with Some o -> Tric_obs.Registry.incr o.o_removes | None -> ()

let insert r t =
  if Tuple.width t <> r.width then invalid_arg "Relation.insert: width mismatch";
  fill_scratch r t;
  insert_cells r r.scratch 0 >= 0

let insert_all r ts = List.filter (fun t -> insert r t) ts

let remove r t =
  if Tuple.width t <> r.width then false
  else begin
    fill_scratch r t;
    let row = find_cells r r.scratch 0 in
    if row < 0 then false
    else begin
      remove_row r row;
      true
    end
  end

let remove_all r ts = List.filter (fun t -> remove r t) ts

let iter f r = Rows.iter_live (fun row -> f (row_tuple r row)) r.arena
let fold f r init =
  let acc = ref init in
  Rows.iter_live (fun row -> acc := f (row_tuple r row) !acc) r.arena;
  !acc

let to_list r = fold (fun t acc -> t :: acc) r []
let iter_rows f r = Rows.iter_live f r.arena

(* -- Row-level hot-path API --------------------------------------------------- *)

let insert_edge_row r ~src ~dst =
  if r.width <> 2 then invalid_arg "Relation.insert_edge_row: width <> 2";
  r.scratch.(0) <- Label.to_int src;
  r.scratch.(1) <- Label.to_int dst;
  insert_cells r r.scratch 0

(* Extend a parent row by one trailing label into this (one column wider)
   relation — the seeding/propagation step, staged through scratch so the
   parent's arena is never read after this arena grows. *)
let insert_extend r ~src ~row ~ext =
  if width src <> r.width - 1 then invalid_arg "Relation.insert_extend: bad parent width";
  Rows.blit_row src.arena row r.scratch 0;
  r.scratch.(r.width - 1) <- Label.to_int ext;
  insert_cells r r.scratch 0

(* Same step from a packed parent batch (cross-boundary deltas). *)
let insert_extend_packed r ~parents ~i ~ext =
  if Rows.packed_width parents <> r.width - 1 then
    invalid_arg "Relation.insert_extend_packed: bad parent width";
  Array.blit (Rows.packed_data parents) (i * (r.width - 1)) r.scratch 0 (r.width - 1);
  r.scratch.(r.width - 1) <- Label.to_int ext;
  insert_cells r r.scratch 0

let pack_rows r v = Rows.pack r.arena v

(* -- Deletion-support (prefix / hinge) indexes ------------------------------- *)

let ensure_prefix_idx r =
  match r.prefix_idx with
  | Some idx -> idx
  | None ->
    let idx : hash_index = Hashtbl.create (max 16 (cardinality r)) in
    Rows.iter_live (fun row -> hadd idx (Rows.hash_prefix r.arena row) row) r.arena;
    r.prefix_idx <- Some idx;
    idx

let ensure_hinge_idx r =
  match r.hinge_idx with
  | Some idx -> idx
  | None ->
    let idx : hash_index = Hashtbl.create (max 16 (cardinality r)) in
    Rows.iter_live (fun row -> hadd idx (Rows.hash_hinge r.arena row) row) r.arena;
    r.hinge_idx <- Some idx;
    idx

let count_delta_probe r =
  r.delta_probes <- r.delta_probes + 1;
  match r.obs with Some o -> Tric_obs.Registry.incr o.o_delta_probes | None -> ()

(* Rows of the bucket whose columns [lo ..] equal [buf] — the collision
   filter behind every hash-keyed probe. *)
let bucket_matches r idx h ~lo buf ~off ~len k =
  match Hashtbl.find_opt idx h with
  | None -> ()
  | Some bucket ->
    Rows.Vec.iter
      (fun row -> if Rows.equal_cols r.arena row ~lo buf ~off ~len then k row)
      bucket

let probe_prefix r p =
  if Tuple.width p <> r.width - 1 then invalid_arg "Relation.probe_prefix: bad prefix width";
  count_delta_probe r;
  let idx = ensure_prefix_idx r in
  let len = r.width - 1 in
  for i = 0 to len - 1 do
    r.scratch.(i) <- Label.to_int (Tuple.get p i)
  done;
  let h = Rows.hash_ints r.scratch ~off:0 ~len in
  let out = ref [] in
  bucket_matches r idx h ~lo:0 r.scratch ~off:0 ~len (fun row ->
      out := row_tuple r row :: !out);
  !out

let probe_hinge r ~src ~dst =
  if r.width < 2 then invalid_arg "Relation.probe_hinge: width < 2";
  count_delta_probe r;
  let idx = ensure_hinge_idx r in
  r.scratch.(0) <- Label.to_int src;
  r.scratch.(1) <- Label.to_int dst;
  let h = Rows.hash_ints r.scratch ~off:0 ~len:2 in
  let out = ref [] in
  bucket_matches r idx h ~lo:(r.width - 2) r.scratch ~off:0 ~len:2 (fun row ->
      out := row_tuple r row :: !out);
  !out

(* Hinge eviction: snapshot the doomed rows as a packed batch (they must
   be read before their slots return to the freelist), then drop them.
   One counted delta probe, like [probe_hinge]. *)
let evict_hinge r ~src ~dst =
  if r.width < 2 then invalid_arg "Relation.evict_hinge: width < 2";
  count_delta_probe r;
  let idx = ensure_hinge_idx r in
  r.scratch.(0) <- Label.to_int src;
  r.scratch.(1) <- Label.to_int dst;
  let h = Rows.hash_ints r.scratch ~off:0 ~len:2 in
  let doomed = Rows.Vec.create () in
  bucket_matches r idx h ~lo:(r.width - 2) r.scratch ~off:0 ~len:2 (fun row ->
      Rows.Vec.push doomed row);
  let packed = Rows.pack r.arena doomed in
  Rows.Vec.iter (fun row -> remove_row r row) doomed;
  packed

(* Prefix eviction: the extensions of a batch of doomed parent rows.  One
   counted probe per parent row (matching the per-tuple probes of the
   boxed path); parents are distinct rows, so the matched buckets are
   disjoint and the collected set needs no dedup. *)
let evict_prefixed r parents =
  if Rows.packed_width parents <> r.width - 1 then
    invalid_arg "Relation.evict_prefixed: bad parent width";
  let idx = ensure_prefix_idx r in
  let len = r.width - 1 in
  let data = Rows.packed_data parents in
  let doomed = Rows.Vec.create () in
  for i = 0 to Rows.packed_count parents - 1 do
    count_delta_probe r;
    let off = i * len in
    let h = Rows.hash_ints data ~off ~len in
    bucket_matches r idx h ~lo:0 data ~off ~len (fun row -> Rows.Vec.push doomed row)
  done;
  let packed = Rows.pack r.arena doomed in
  Rows.Vec.iter (fun row -> remove_row r row) doomed;
  packed

(* -- Column indexes (the caching switch) ------------------------------------- *)

let ensure_col_idx r col =
  match Hashtbl.find_opt r.indexes col with
  | Some idx -> idx
  | None ->
    let idx = Label.Tbl.create (max 16 (cardinality r)) in
    Rows.iter_live (fun row -> col_index_add r idx col row) r.arena;
    r.rebuilds <- r.rebuilds + 1;
    (match r.obs with Some o -> Tric_obs.Registry.incr o.o_rebuilds | None -> ());
    Hashtbl.add r.indexes col idx;
    idx

let probe_of r idx key =
  match Label.Tbl.find_opt idx key with
  | Some v -> Rows.Vec.fold (fun row acc -> row_tuple r row :: acc) v []
  | None -> []

let index_on r ~col =
  if col < 0 || col >= r.width then invalid_arg "Relation.index_on: bad column";
  if r.cache then begin
    let idx = ensure_col_idx r col in
    probe_of r idx
  end
  else begin
    let idx = Label.Tbl.create (max 16 (cardinality r)) in
    Rows.iter_live (fun row -> col_index_add r idx col row) r.arena;
    r.rebuilds <- r.rebuilds + 1;
    (match r.obs with Some o -> Tric_obs.Registry.incr o.o_rebuilds | None -> ());
    probe_of r idx
  end

(* Cache-mode row-level probe: the live bucket of the maintained column
   index.  The returned vector is the index's own bucket — callers must
   not mutate this relation while iterating it. *)
let probe_col_rows r ~col key =
  if not r.cache then invalid_arg "Relation.probe_col_rows: relation is not caching";
  Label.Tbl.find_opt (ensure_col_idx r col) key

let probe_scan r ~col value =
  let v = Label.to_int value in
  let out = ref [] in
  Rows.iter_live
    (fun row -> if Rows.get r.arena row col = v then out := row_tuple r row :: !out)
    r.arena;
  !out

let scan_probing r ~col probe f =
  Rows.iter_live
    (fun row ->
      match probe (row_col r row col) with
      | [] -> ()
      | hits ->
        let t = row_tuple r row in
        List.iter (fun hit -> f t hit) hits)
    r.arena

(* -- Sorted runs and merge join ---------------------------------------------- *)

(* A run is built lazily over the current live rows — a cold-bucket
   compaction — and discarded by the next mutation.  Each fresh build is
   counted as a rebuild: it is the merge join's analogue of a hash-join
   build phase. *)
let sorted_run r ~col =
  if col < 0 || col >= r.width then invalid_arg "Relation.sorted_run: bad column";
  let rec find = function
    | [] -> None
    | (c, run) :: tl -> if c = col then Some run else find tl
  in
  match find r.runs with
  | Some run -> run
  | None ->
    let run = Array.make (cardinality r) 0 in
    let i = ref 0 in
    Rows.iter_live
      (fun row ->
        run.(!i) <- row;
        incr i)
      r.arena;
    Array.sort (Rows.compare_on r.arena ~col) run;
    r.runs <- (col, run) :: r.runs;
    r.rebuilds <- r.rebuilds + 1;
    (match r.obs with Some o -> Tric_obs.Registry.incr o.o_rebuilds | None -> ());
    run

let merge_join ~left ~lcol ~right ~rcol f =
  let la = sorted_run left ~col:lcol and ra = sorted_run right ~col:rcol in
  let nl = Array.length la and nr = Array.length ra in
  let lv i = Rows.get left.arena la.(i) lcol in
  let rv j = Rows.get right.arena ra.(j) rcol in
  let i = ref 0 and j = ref 0 in
  while !i < nl && !j < nr do
    let a = lv !i and b = rv !j in
    if a < b then incr i
    else if a > b then incr j
    else begin
      let ie = ref (!i + 1) in
      while !ie < nl && lv !ie = a do
        incr ie
      done;
      let je = ref (!j + 1) in
      while !je < nr && rv !je = b do
        incr je
      done;
      for x = !i to !ie - 1 do
        for y = !j to !je - 1 do
          f la.(x) ra.(y)
        done
      done;
      i := !ie;
      j := !je
    end
  done

(* -- Stats ------------------------------------------------------------------- *)

let stats_rebuilds r = r.rebuilds
let stats_delta_probes r = r.delta_probes
let stats_inserts r = r.inserts
let stats_removes r = r.removes

let stats_index_buckets r =
  Hashtbl.fold (fun _ idx acc -> acc + Label.Tbl.length idx) r.indexes 0

let clear r =
  (* Release every slot back through the normal path so the arena stays
     audit-coherent (all dead slots on the freelist). *)
  let rows = Rows.Vec.create () in
  Rows.iter_live (fun row -> Rows.Vec.push rows row) r.arena;
  Rows.Vec.iter (fun row -> Rows.free r.arena row) rows;
  r.dslots <- Array.make 16 dempty;
  r.dcount <- 0;
  r.dtombs <- 0;
  Hashtbl.reset r.indexes;
  r.prefix_idx <- None;
  r.hinge_idx <- None;
  r.runs <- [];
  r.inserts <- 0;
  r.removes <- 0

(* -- Audit ------------------------------------------------------------------ *)

(* One maintained hash-keyed index (dedup / prefix / hinge) against the
   live row set: buckets must be non-empty, hold only live rows (a dead
   row id is an arena-ownership violation, not a mere filing error), file
   rows under the hash of their own projection, and cover every live row. *)
let audit_hash_index ~what ~hash_of (idx : hash_index) r report =
  Hashtbl.iter
    (fun h bucket ->
      if Rows.Vec.length bucket = 0 then
        report "index-coherence" (Printf.sprintf "%s: empty bucket %d kept alive" what h)
      else begin
        let seen = Hashtbl.create (2 * Rows.Vec.length bucket) in
        Rows.Vec.iter
          (fun row ->
            if not (Rows.is_live r.arena row) then
              report "arena-integrity"
                (Printf.sprintf "%s: bucket %d holds dangling row id %d" what h row)
            else begin
              if hash_of row <> h then
                report "index-coherence"
                  (Format.asprintf "%s: row %d (%a) filed under wrong bucket %d" what row
                     Tuple.pp (row_tuple r row) h);
              if Hashtbl.mem seen row then
                report "index-coherence"
                  (Printf.sprintf "%s: bucket %d holds row %d twice" what h row)
              else Hashtbl.add seen row ()
            end)
          bucket
      end)
    idx;
  Rows.iter_live
    (fun row ->
      let h = hash_of row in
      let found =
        match Hashtbl.find_opt idx h with
        | Some bucket -> Rows.Vec.exists (fun row' -> row' = row) bucket
        | None -> false
      in
      if not found then
        report "index-coherence"
          (Format.asprintf "%s: live row %d (%a) missing from its bucket" what row Tuple.pp
             (row_tuple r row)))
    r.arena

let audit_col_index ~what idx col r report =
  Label.Tbl.iter
    (fun l bucket ->
      if Rows.Vec.length bucket = 0 then
        report "index-coherence"
          (Format.asprintf "%s: empty bucket %a kept alive" what Label.pp l)
      else
        Rows.Vec.iter
          (fun row ->
            if not (Rows.is_live r.arena row) then
              report "arena-integrity"
                (Format.asprintf "%s: bucket %a holds dangling row id %d" what Label.pp l
                   row)
            else if not (Label.equal (row_col r row col) l) then
              report "index-coherence"
                (Format.asprintf "%s: row %a filed under wrong key %a" what Tuple.pp
                   (row_tuple r row) Label.pp l))
          bucket)
    idx;
  Rows.iter_live
    (fun row ->
      let l = row_col r row col in
      let found =
        match Label.Tbl.find_opt idx l with
        | Some bucket -> Rows.Vec.exists (fun row' -> row' = row) bucket
        | None -> false
      in
      if not found then
        report "index-coherence"
          (Format.asprintf "%s: live row %a missing from its bucket" what Tuple.pp
             (row_tuple r row)))
    r.arena

(* The open-addressing dedup table against the live row set: every filed
   slot holds a live row (a dead or out-of-range id is an arena-ownership
   violation), no row is filed twice, the slot/tombstone accounting
   matches the array, and every live row is findable by probing its own
   cell content. *)
let audit_dedup r report =
  let filed = ref 0 and tombs = ref 0 in
  let seen = Hashtbl.create (2 * r.dcount) in
  Array.iter
    (fun s ->
      if s = dtomb then incr tombs
      else if s <> dempty then begin
        incr filed;
        if not (Rows.is_live r.arena s) then
          report "arena-integrity"
            (Printf.sprintf "dedup set: slot holds dangling row id %d" s)
        else if Hashtbl.mem seen s then
          report "index-coherence" (Printf.sprintf "dedup set: row %d filed twice" s)
        else Hashtbl.add seen s ()
      end)
    r.dslots;
  if !filed <> r.dcount then
    report "index-coherence"
      (Printf.sprintf "dedup set: %d filed slot(s) but count says %d" !filed r.dcount);
  if !tombs <> r.dtombs then
    report "index-coherence"
      (Printf.sprintf "dedup set: %d tombstone(s) but count says %d" !tombs r.dtombs);
  Rows.iter_live
    (fun row ->
      Rows.blit_row r.arena row r.scratch 0;
      if dfind r (Rows.hash_row r.arena row) r.scratch 0 < 0 then
        report "index-coherence"
          (Format.asprintf "dedup set: live row %d (%a) is not findable" row Tuple.pp
             (row_tuple r row)))
    r.arena

let audit r =
  let findings = ref [] in
  let report inv detail = findings := (inv, detail) :: !findings in
  List.iter (fun (inv, detail) -> report inv detail) (Rows.audit r.arena);
  if r.inserts - r.removes <> cardinality r then
    report "stats"
      (Printf.sprintf "inserts - removes = %d - %d but cardinality is %d" r.inserts
         r.removes (cardinality r));
  audit_dedup r report;
  Hashtbl.iter
    (fun col idx ->
      audit_col_index ~what:(Printf.sprintf "column-%d index" col) idx col r report)
    r.indexes;
  (match r.prefix_idx with
  | Some idx ->
    audit_hash_index ~what:"prefix index" ~hash_of:(Rows.hash_prefix r.arena) idx r report
  | None -> ());
  (match r.hinge_idx with
  | Some idx ->
    audit_hash_index ~what:"hinge index" ~hash_of:(Rows.hash_hinge r.arena) idx r report
  | None -> ());
  List.rev !findings

(* -- Test-only corruption hooks --------------------------------------------- *)

module Corrupt = struct
  let drop_index_bucket r =
    let dropped = ref false in
    let drop_label_tbl idx =
      match
        Label.Tbl.fold (fun k _ acc -> match acc with None -> Some k | s -> s) idx None
      with
      | Some k ->
        Label.Tbl.remove idx k;
        dropped := true
      | None -> ()
    in
    let drop_hash_tbl (idx : hash_index) =
      match
        Hashtbl.fold (fun k _ acc -> match acc with None -> Some k | s -> s) idx None
      with
      | Some k ->
        Hashtbl.remove idx k;
        dropped := true
      | None -> ()
    in
    Hashtbl.iter (fun _ idx -> if not !dropped then drop_label_tbl idx) r.indexes;
    (if not !dropped then
       match r.prefix_idx with Some idx -> drop_hash_tbl idx | None -> ());
    (if not !dropped then match r.hinge_idx with Some idx -> drop_hash_tbl idx | None -> ());
    !dropped

  let phantom_tuple r t =
    (* Allocate the row and file it in the dedup set only — every other
       index and every counter is bypassed. *)
    if Tuple.width t = r.width && not (mem r t) then begin
      fill_scratch r t;
      let row = Rows.alloc r.arena in
      Rows.write r.arena row r.scratch 0;
      dinsert r (Rows.hash_row r.arena row) row
    end

  let desync_counters r = r.inserts <- r.inserts + 1
  let leak_arena_row r = Rows.Corrupt.leak_live_row r.arena

  let dangle_bucket_row r =
    (* File an unallocated slot id in the dedup set: a row id no arena
       owner ever handed out.  Filing into an empty slot never breaks an
       existing probe chain, so the only divergence is the dangling id. *)
    if r.dcount = 0 then false
    else begin
      let ghost = Rows.high_water r.arena in
      if 2 * (r.dcount + r.dtombs + 1) > Array.length r.dslots then
        drehash r (dsize_for (r.dcount + 1));
      let mask = Array.length r.dslots - 1 in
      let rec place i =
        if r.dslots.(i) = dempty then r.dslots.(i) <- ghost
        else place ((i + 1) land mask)
      in
      place (ghost land mask);
      r.dcount <- r.dcount + 1;
      true
    end
end

let pp fmt r =
  Format.fprintf fmt "@[<v>relation w=%d |%d|" r.width (cardinality r);
  iter (fun t -> Format.fprintf fmt "@,  %a" Tuple.pp t) r;
  Format.fprintf fmt "@]"
