(** Packed row arena: the width-stride flat [int array] store behind
    {!Relation}.

    A tuple of the hot path is a {e row id} — an [int] naming a
    width-sized slice of one flat data array — instead of a boxed
    [Label.t array].  Columns are read by offset (labels are already
    interned ints), freed slots are recycled through a freelist, and
    whole row batches cross shard boundaries only as {!packed} flat
    copies, never as row ids into a foreign arena.

    The module is deliberately label-agnostic: it stores and compares
    raw ints.  {!Relation} owns the [Label.t]/[Tuple.t] conversions at
    its boundary. *)

(** Growable int vector with swap-remove — the bucket representation of
    every index in {!Relation} (dedup set, cached column indexes,
    prefix/hinge delta indexes). *)
module Vec : sig
  type t

  val create : ?cap:int -> unit -> t
  val length : t -> int
  val get : t -> int -> int
  val push : t -> int -> unit

  val swap_remove : t -> int -> unit
  (** Drop slot [i] in O(1) by moving the last element into it — bucket
      order is not part of any observable contract. *)

  val remove_value : t -> int -> bool
  (** Swap-remove the first slot holding the value; [false] if absent. *)

  val iter : (int -> unit) -> t -> unit
  val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
  val exists : (int -> bool) -> t -> bool
  val to_list : t -> int list
  val clear : t -> unit
  val words : t -> int
  (** Approximate heap words held by the backing array. *)
end

type t
(** A width-stride arena.  Row [r] occupies cells
    [r * width .. r * width + width - 1] of one flat data array. *)

val create : ?expect:int -> width:int -> unit -> t
(** [expect] pre-sizes the arena for that many rows (default small).
    @raise Invalid_argument if [width < 1]. *)

val width : t -> int
val live : t -> int
(** Rows currently allocated (and not freed). *)

val capacity : t -> int
(** Row slots the backing array can hold before the next grow. *)

val free_count : t -> int
(** Freelist length — freed slots awaiting reuse. *)

val high_water : t -> int
(** Slots ever touched: every live or freed row id is [< high_water]. *)

val reserve : t -> int -> unit
(** [reserve a n] grows the backing array (doubling) until [n] more rows
    fit above the high-water mark without further reallocation. *)

val alloc : t -> int
(** Claim a row slot (recycling the freelist first) and mark it live.
    The row's cells keep whatever was last written; callers must
    {!set}/{!write} before reading. *)

val free : t -> int -> unit
(** Return a live row to the freelist.
    @raise Invalid_argument if the row is not live. *)

val is_live : t -> int -> bool
val get : t -> int -> int -> int
(** [get a row col]. *)

val set : t -> int -> int -> int -> unit
(** [set a row col v]. *)

val write : t -> int -> int array -> int -> unit
(** [write a row src off] blits [width] ints from [src] at [off] into
    the row. *)

val blit_row : t -> int -> int array -> int -> unit
(** [blit_row a row dst off] copies the row's cells out. *)

val read : t -> int -> int array
(** Fresh width-sized copy of the row's cells (boundary conversions). *)

(** {1 Hashing and comparison}

    [hash_*] reproduce [Tuple.hash] exactly (seed 17, multiplier
    1000003, masked to [max_int]) over the given column range, so a
    packed index and a boxed [Tuple.Tbl] bucket tuples identically. *)

val hash_ints : int array -> off:int -> len:int -> int
val hash_cols : t -> int -> lo:int -> len:int -> int
val hash_row : t -> int -> int
(** All columns. *)

val hash_prefix : t -> int -> int
(** First [width - 1] columns. *)

val hash_hinge : t -> int -> int
(** Last two columns. @raise Invalid_argument on width < 2. *)

val equal_cols : t -> int -> lo:int -> int array -> off:int -> len:int -> bool
(** [equal_cols a row ~lo buf ~off ~len]: the row's columns
    [lo .. lo+len-1] equal [buf.(off) .. buf.(off+len-1)]. *)

val equal_rows : t -> int -> int -> bool
(** Full-width cell equality of two rows of the same arena. *)

val compare_on : t -> col:int -> int -> int -> int
(** Order by the given column, ties broken by full row content — the
    sort key of {!Relation}'s sorted runs, total on distinct rows. *)

val iter_live : (int -> unit) -> t -> unit
(** Every live row id, ascending. *)

(** {1 Packed row batches}

    A [packed] value is a standalone flat copy of a set of rows — no row
    ids, no reference to the source arena — so deltas can cross shard
    boundaries without leaking arena ownership (the [shard-escape]
    static rule bans [Rows.t] itself from leaving the core). *)

type packed

val pack : t -> Vec.t -> packed
(** Snapshot the rows named by the vector, in vector order. *)

val packed_empty : width:int -> packed

val packed_concat : width:int -> packed list -> packed
(** Flatten several batches of the same width into one.
    @raise Invalid_argument on width mismatch. *)

val packed_width : packed -> int
val packed_count : packed -> int
val packed_get : packed -> int -> int -> int
(** [packed_get p i col] — column of the [i]-th packed row. *)

val packed_row : packed -> int -> int array
(** Fresh copy of the [i]-th row's cells. *)

val packed_data : packed -> int array
(** The backing flat array ([packed_count * packed_width] cells), for
    bulk hashing; treat as read-only. *)

val words : t -> int
(** Approximate heap words held by the arena (data + freelist +
    liveness map). *)

val audit : t -> (string * string) list
(** Arena-integrity self-check, as [(invariant class, detail)] pairs
    (class is always ["arena-integrity"]): no live row on the freelist,
    no freelist entry out of range or duplicated, every dead slot below
    the high-water mark on the freelist, and the live counter equal to
    the liveness map's population. *)

module Corrupt : sig
  (** Test-only corruption hooks for the audit mutation tests. *)

  val leak_live_row : t -> bool
  (** Push a live row onto the freelist without freeing it; [false] if
      no row is live. *)

  val lose_free_slot : t -> bool
  (** Drop one entry from the freelist, stranding a dead slot; [false]
      if the freelist is empty. *)
end

val pp : Format.formatter -> t -> unit
