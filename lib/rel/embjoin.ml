module Int_set = Set.Make (Int)

let bound_set = function
  | [] -> Int_set.empty
  | e :: _ -> Int_set.of_list (Embedding.bound_vids e)

let dedup es =
  let seen = Embedding.Tbl.create ((List.length es * 2) + 1) in
  List.filter
    (fun e ->
      if Embedding.Tbl.mem seen e then false
      else begin
        Embedding.Tbl.add seen e ();
        true
      end)
    es

let of_packed ~width ~vids packs =
  List.concat_map
    (fun p ->
      let out = ref [] in
      for i = Rows.packed_count p - 1 downto 0 do
        match Embedding.of_packed ~width ~vids p i with
        | Some e -> out := e :: !out
        | None -> ()
      done;
      !out)
    packs

let join left right =
  match (left, right) with
  | [], _ | _, [] -> []
  | _ ->
    let shared = Int_set.elements (Int_set.inter (bound_set left) (bound_set right)) in
    if shared = [] then
      (* Cartesian product; rare (paths of a connected pattern normally
         intersect) but required for completeness. *)
      dedup
        (List.concat_map
           (fun a -> List.filter_map (fun b -> Embedding.merge a b) right)
           left)
    else begin
      (* Build on the smaller side; key by the typed int-array projection
         onto the shared vids. *)
      let shared = Array.of_list shared in
      let build, probe, flip =
        if List.length left <= List.length right then (left, right, false)
        else (right, left, true)
      in
      let table = Embedding.Key.Tbl.create (List.length build * 2) in
      List.iter
        (fun e ->
          let k = Embedding.Key.of_embedding e shared in
          Embedding.Key.Tbl.replace table k
            (e :: Option.value ~default:[] (Embedding.Key.Tbl.find_opt table k)))
        build;
      let results =
        List.concat_map
          (fun e ->
            let k = Embedding.Key.of_embedding e shared in
            match Embedding.Key.Tbl.find_opt table k with
            | None -> []
            | Some mates ->
              List.filter_map
                (fun m -> if flip then Embedding.merge m e else Embedding.merge e m)
                mates)
          probe
      in
      dedup results
    end

let join_many operands =
  match operands with
  | [] -> []
  | first :: rest ->
    if List.exists (fun l -> l = []) operands then []
    else begin
      let remaining = ref (List.mapi (fun i l -> (i, l, bound_set l)) rest) in
      let acc = ref first in
      let acc_vids = ref (bound_set first) in
      while !remaining <> [] do
        (* Join-order heuristic: maximise shared vids (selective joins
           first), break ties towards the smaller operand (cheaper build
           side) — cardinality-aware ordering in the spirit of the
           paper's workload-statistics outlook. *)
        let score (_, l, vids) =
          (Int_set.cardinal (Int_set.inter vids !acc_vids), -List.length l)
        in
        let better (s1, n1) (s2, n2) = s1 > s2 || (s1 = s2 && n1 > n2) in
        let best =
          List.fold_left
            (fun best cand ->
              match best with
              | None -> Some cand
              | Some b -> if better (score cand) (score b) then Some cand else best)
            None !remaining
        in
        match best with
        | None -> remaining := []
        | Some (i, l, vids) ->
          acc := join !acc l;
          acc_vids := Int_set.union !acc_vids vids;
          remaining := List.filter (fun (j, _, _) -> j <> i) !remaining;
          if !acc = [] then remaining := []
      done;
      !acc
    end
