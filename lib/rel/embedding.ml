open Tric_graph

(* -1 encodes "unbound"; label ids are non-negative. *)
type t = int array

let unbound = -1
let empty width = Array.make width unbound
let width = Array.length
let get e vid = if e.(vid) = unbound then None else Some (Label.of_int e.(vid))
let is_bound e vid = e.(vid) <> unbound
let is_total e = Array.for_all (fun x -> x <> unbound) e

let bind e vid l =
  let li = Label.to_int l in
  if e.(vid) = unbound then begin
    let e' = Array.copy e in
    e'.(vid) <- li;
    Some e'
  end
  else if e.(vid) = li then Some e
  else None

let bind_tuple e ~vids tuple =
  if Array.length vids <> Tuple.width tuple then
    invalid_arg "Embedding.bind_tuple: length mismatch";
  let e' = Array.copy e in
  let ok = ref true in
  Array.iteri
    (fun i vid ->
      let li = Label.to_int (Tuple.get tuple i) in
      if e'.(vid) = unbound then e'.(vid) <- li else if e'.(vid) <> li then ok := false)
    vids;
  if !ok then Some e' else None

let of_tuple ~width ~vids tuple = bind_tuple (empty width) ~vids tuple

(* Packed-row counterpart of [bind_tuple]: the arena already stores
   interned label ints, so binding is a straight copy — no Label round
   trip, no boxed tuple on the hot path. *)
let bind_packed e ~vids p i =
  let w = Rows.packed_width p in
  if Array.length vids <> w then invalid_arg "Embedding.bind_packed: length mismatch";
  let e' = Array.copy e in
  let ok = ref true in
  for c = 0 to w - 1 do
    let li = Rows.packed_get p i c in
    let vid = vids.(c) in
    if e'.(vid) = unbound then e'.(vid) <- li else if e'.(vid) <> li then ok := false
  done;
  if !ok then Some e' else None

let of_packed ~width ~vids p i = bind_packed (empty width) ~vids p i

let merge a b =
  if Array.length a <> Array.length b then invalid_arg "Embedding.merge: width mismatch";
  let out = Array.copy a in
  let ok = ref true in
  Array.iteri
    (fun i x ->
      if x <> unbound then
        if out.(i) = unbound then out.(i) <- x else if out.(i) <> x then ok := false)
    b;
  if !ok then Some out else None

let bound_vids e =
  let acc = ref [] in
  for i = Array.length e - 1 downto 0 do
    if e.(i) <> unbound then acc := i :: !acc
  done;
  !acc

(* Join keys: the projection of an embedding onto the shared vids, as a
   raw int array with a typed table — replaces the old string-building
   [key] (one Buffer + string allocation per probe). *)
module Key = struct
  type emb = t
  type t = int array

  let of_embedding (e : emb) vids : t =
    Array.map
      (fun vid ->
        assert (e.(vid) <> unbound);
        e.(vid))
      vids

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal (a : t) b = a = b
    let hash (k : t) = Array.fold_left (fun h v -> ((h * 31) + v + 1) land max_int) 17 k
  end)
end

let equal (a : t) b = a = b

(* Typed hash/compare over the full int array: the polymorphic pair hashes
   only a bounded prefix and orders by representation. *)
let hash (e : t) = Array.fold_left (fun h v -> ((h * 31) + v + 1) land max_int) 17 e

let compare (a : t) b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else begin
    let rec go i =
      if i >= Array.length a then 0
      else
        let c = Int.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  end

let to_alist e =
  List.filter_map
    (fun vid -> match get e vid with Some l -> Some (vid, l) | None -> None)
    (List.init (Array.length e) Fun.id)

let pp fmt e =
  Format.fprintf fmt "{";
  List.iter (fun (vid, l) -> Format.fprintf fmt "v%d=%a " vid Label.pp l) (to_alist e);
  Format.fprintf fmt "}"

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
