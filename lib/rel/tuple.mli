(** Materialized-view tuples.

    A tuple is a fixed-width vector of labels.  In a chain view of width
    [k+1] the positions are the vertices [v0 .. vk] of the chain (§4.1
    "Materialization"): consecutive edges share a vertex so a chain of [k]
    edges needs [k+1] columns. *)

open Tric_graph

type t = Label.t array

val make : Label.t array -> t
val of_edge : Edge.t -> t
(** The width-2 tuple [(src, dst)] of a concrete edge. *)

val width : t -> int
val get : t -> int -> Label.t
val last : t -> Label.t
val first : t -> Label.t

val extend : t -> Label.t -> t
(** [extend t v] appends one column. *)

val prefix : t -> int -> t
(** [prefix t n] is the tuple of the first [n] columns.
    @raise Invalid_argument unless [0 <= n <= width t]. *)

val last_pair : t -> t
(** The width-2 tuple of the last two columns — the chain's final edge.
    @raise Invalid_argument on width < 2. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Tbl : Hashtbl.S with type key = t
