(** Hash joins over sets of partial embeddings.

    The final phase of query answering (Fig. 8 lines 8–13) joins the
    per-covering-path results of a query into complete answers.  Each
    covering path contributes a list of partial embeddings all binding the
    same vid set; two path results join on their shared vids (the paper's
    "path intersections"). *)

val join : Embedding.t list -> Embedding.t list -> Embedding.t list
(** Hash join on the shared bound vids of the two sides (computed from
    their first elements; all embeddings of one side must bind the same
    vids).  With no shared vids this is the cartesian product.  Returns
    merged embeddings, deduplicated. *)

val join_many : Embedding.t list list -> Embedding.t list
(** Multi-way join.  Greedy order: start from the first non-empty list and
    repeatedly join the operand sharing the most vids with the accumulated
    binding set (ties by input order), falling back to a cartesian operand
    only when none shares.  Empty input list yields []. *)

val dedup : Embedding.t list -> Embedding.t list

val of_packed : width:int -> vids:int array -> Rows.packed list -> Embedding.t list
(** Lift packed row batches (shard deltas) straight into embeddings —
    rows whose repeated-variable constraints conflict are dropped, all
    without materializing boxed tuples. *)
