(** One shard of the TRIC engine: a trie forest (with the base views its
    keys need), answered entirely shard-locally.

    A shard owns every trie whose root key {!Route.owner} maps to its id,
    plus a private copy of the base view [matV[e]] for {e every} key its
    tries mention (fed identically on all shards, so shard-local joins
    see exactly the global base state).  All mutation of a shard happens
    either inside a pool task on the shard's behalf, or from the
    coordinator strictly between pool barriers — never both at once, and
    never for two shards through shared structures.

    Node ids are globally unique across shards ([id_base]/[id_stride] in
    {!Trie.create}), so audit tables keyed by node id can span the whole
    engine. *)

open Tric_graph
open Tric_rel

type t

val create : ?metrics:bool -> sid:int -> shards:int -> cache:bool -> unit -> t
(** [sid] in [0, shards).  [cache] selects TRIC+ (maintained hash-join
    indexes) vs plain TRIC per-operation builds.  [metrics] (default
    false) gives the shard a private telemetry registry: view/base
    relation counters ([tric_view_*]/[tric_base_*]), delta fan-out and
    materialization-depth histograms, per-level descent timings and the
    node-visit counter.  With it off, no instrument exists and the hot
    path pays nothing. *)

val sid : t -> int
val forest : t -> Trie.t

val mem_stats : t -> int * int * int
(** Summed [(arena capacity, live rows, freelist length)] over every
    relation this shard owns — all node views plus its base-view copies.
    The shard {e is} the arena owner: row ids never leave it (deltas are
    packed copies), so this triple is the shard's whole packed
    footprint. *)

val registry : t -> Tric_obs.Registry.t option
(** The shard's private registry (None when created without [metrics]).
    Only the domain running this shard's tasks may touch it; the
    coordinator reads it strictly between pool barriers. *)

type delta = int * int * Rows.packed
(** [(qid, path_index, rows)] — the view tuples a terminal registered
    for that covering path gained (additions) or lost (removals), as a
    packed flat copy: row ids are meaningless outside the owning shard's
    arenas, so batches cross the shard boundary only by value.  Each
    [(qid, path_index)] is registered on exactly one shard, so deltas
    from distinct shards never overlap; registrations of one node share
    one packed batch. *)

val apply_add : t -> Edge.t -> delta list
(** Feed the edge into this shard's base views, run the shallow-first
    delta join + downward propagation over the shard's tries, and return
    the per-registration insertion deltas sorted by [(qid, path_index)]. *)

val apply_remove : t -> Edge.t -> delta list * int
(** Deletion counterpart of {!apply_add} (prefix/hinge-indexed downward
    eviction).  The [int] is the total number of view tuples evicted on
    this shard, at every node — not just at terminals. *)

val apply_removes : t -> Edge.t list -> (delta list * int) array
(** Apply a window's net removals in order; slot [i] is {!apply_remove}
    of edge [i].  One pool task per shard instead of one per removal. *)

val apply_add_batch : ?expect:int -> t -> Edge.t list -> delta list
(** The amortised batched addition sweep: fold all fresh edge tuples into
    the base views, then visit each affected node once, shallowest first
    across the whole window, joining the accumulated key delta.
    [expect] — the coordinator's folded net-addition count for this
    shard — pre-sizes the sweep's accumulators and the touched base
    views' arenas. *)

val apply_ops :
  ?expect:int ->
  t ->
  removals:Edge.t list ->
  additions:Edge.t list ->
  (delta list * int) array * delta list
(** One combined window task: {!apply_removes} on [removals], then
    {!apply_add_batch} on [additions] — the whole window's work for this
    shard in a single pool task, so targeted dispatch pays one barrier
    per batch however many ops land here. *)
