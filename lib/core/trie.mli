(** The trie forest of TRIC (§4.1 Step 2, Fig. 6).

    Each trie indexes covering paths as words over generic edge keys
    ({!Tric_query.Ekey}).  A node at depth [d] represents the chain of the
    [d+1] keys on its root path and owns the materialized view of that
    chain — a relation of width [d+2] (the chain's vertices).  Two covering
    paths (from any queries) with a common prefix share the prefix's nodes
    {e and} their views: this sharing is the clustering the paper's speedups
    come from.

    The forest also owns:
    - [rootInd]: key of a first path edge → trie root;
    - [edgeInd]: key → every node carrying that key, across all tries (the
      flattened form of the paper's "edgeInd + DFS locate" — it enumerates
      exactly the nodes the paper's traversal finds);
    - the base views [matV[e]]: key → width-2 relation of all updates that
      matched the key so far. *)

open Tric_query
open Tric_rel

type node

val node_id : node -> int
val node_key : node -> Ekey.t
val node_depth : node -> int
(** Root depth is 0; the node's view has width [depth + 2]. *)

val node_view : node -> Relation.t
val node_parent : node -> node option
val node_children : node -> node list

val registrations : node -> (int * int) list
(** [(query id, covering-path index)] pairs registered at this node — the
    paper's query identifiers stored "at the last node of the trie path". *)

val deregister : node -> qid:int -> unit
(** Drop every registration of the given query id at this node (other
    queries sharing the terminal are untouched).  Needed when a query is
    removed: a stale registration would attribute later deltas to a
    re-added query with the same id. *)

type t

val create : ?id_base:int -> ?id_stride:int -> ?obs:Tric_obs.Registry.t -> cache:bool -> unit -> t
(** [cache] is propagated to every view (TRIC+ vs TRIC).

    [obs], when given, instruments every view against that registry:
    node views under [tric_view_*] (stable — nodes are partitioned across
    shards), base views under [tric_base_*] (unstable — a key's base view
    is duplicated on every shard whose forest mentions it).

    [id_base]/[id_stride] (defaults 0/1) parameterise node-id allocation:
    node [k] gets id [id_base + k * id_stride].  Shard [s] of an
    [n]-sharded engine passes [~id_base:s ~id_stride:n] so node ids stay
    globally unique across the per-shard forests without any shared
    counter — the audit layer keys its expected-registration map by node
    id across all forests at once.
    @raise Invalid_argument unless [0 <= id_base < id_stride]. *)

val insert_path : t -> Ekey.t list -> qid:int -> path_index:int -> node
(** Index one covering path: walk/extend the forest along the key word,
    register [(qid, path_index)] at the terminal node, make sure base views
    exist for all keys, and seed any freshly created node's view from its
    parent's view and the key's base view (so that queries added mid-stream
    observe state already retained for earlier queries).  Registration is
    idempotent: inserting the same [(qid, path_index)] at the same terminal
    twice keeps a single registration.
    @raise Invalid_argument on an empty key list. *)

val base_view : t -> Ekey.t -> Relation.t option
val nodes_with_key : t -> Ekey.t -> node list
val roots : t -> node list

val num_nodes : t -> int
(** Nodes currently in the forest.  Node {e ids} are allocated
    monotonically and never reused, so after pruning the highest id can
    exceed [num_nodes]. *)

val num_tries : t -> int
val num_base_views : t -> int

val prune : t -> node -> Ekey.t list * int
(** [prune t n] detaches [n] if it carries no registration and no
    children, then walks up detaching parents that empty out — the
    reclamation step of query removal.  When a key's last node leaves
    the forest, its entry in the edge index {e and} its base view are
    dropped (a base view no update will ever feed again must not linger:
    it would go stale and fail base-coherence).  Returns the keys whose
    node set shrank — the caller must rebuild their dispatch masks — and
    the summed [Relation.stats_removes] of the detached views, which the
    caller must subtract from its eviction counter to preserve the stats
    audit identity.  A no-op (returning [([], 0)]) when [n] is still
    registered or has children. *)

val fold_nodes : (node -> 'a -> 'a) -> t -> 'a -> 'a

val fold_base : (Ekey.t -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every base view [matV[e]] with its key (audit/inspection). *)

val pp : Format.formatter -> t -> unit
