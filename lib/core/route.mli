(** The routing layer of the sharded engine: trie placement plus the
    per-key dispatch bitmaps that make updates owner-targeted.

    {b Placement} is a pure function from a root-trie key to the shard
    that owns every trie rooted at that key: tries are placed whole, by
    the first key of their covering-path word ({!place}), so shard-local
    delta propagation computes exactly the global engine's propagation
    restricted to that shard's tries, for any shard count — which is why
    sharded and sequential reports coincide.

    {b Dispatch} is driven by a {!table} maintained at query-registration
    time: for every key mentioned by any indexed covering path, a bitmask
    of the shards holding a trie node (and therefore a private base view)
    for that key.  An incoming edge matches exactly its four generalised
    keys ({!Tric_query.Ekey.keys_of_edge}), so the set of shards an
    update can possibly affect is the union of four mask lookups
    ({!targets}) — shards outside the mask have no matching node {e and}
    no matching base view, making the skip a semantic no-op.  Bits are
    added by {!register} at query registration and rebuilt ({!set_bits} /
    {!clear}) when [remove_query] prunes a key's last trie nodes from a
    shard, so the mask is always exactly the set of shards holding nodes
    for the key — the equality the routing-coherence audit certifies in
    both directions.

    [owner] is deterministic within a run for a fixed shard count (it
    hashes interned label ids, which are assigned in stream order). *)

open Tric_graph
open Tric_query

val owner : shards:int -> Ekey.t -> int
(** [owner ~shards key] is the shard id in [0, shards) owning tries
    rooted at [key].  @raise Invalid_argument if [shards < 1]. *)

val place : shards:int -> Ekey.t list -> int
(** [place ~shards word] is the shard owning the trie of a covering path
    with key word [word]: {!owner} of the word's first key.
    @raise Invalid_argument on an empty word — a keyless covering path is
    unroutable (no base view would ever feed it), and the public query
    pipeline cannot produce one ({!Tric_query.Path.of_edges} rejects
    empty paths), so this is a corruption guard, not a placement
    policy. *)

(** {2 Shard masks}

    A mask is a plain [int] bitset of shard ids (bit [s] = shard [s]);
    shard counts are capped at [Sys.int_size - 1] so masks stay
    immediate. *)

val max_shards : int
val mem_shard : int -> int -> bool
(** [mem_shard mask s] — is bit [s] set? *)

val shard_list : int -> int list
(** The shard ids of a mask, ascending — the dispatch order, which keeps
    per-shard delta gathering deterministic. *)

val popcount : int -> int
(** Number of shards in a mask. *)

(** {2 The dispatch table} *)

type table

val create_table : shards:int -> table
(** An empty table for a [shards]-way engine.
    @raise Invalid_argument if [shards < 1] or [shards > max_shards]. *)

val table_shards : table -> int

val register : table -> Ekey.t -> shard:int -> unit
(** Record that [shard]'s forest (now) holds a node keyed [key].  Called
    once per key per covering path at registration; idempotent.
    @raise Invalid_argument if [shard] is outside [0, shards). *)

val key_shards : table -> Ekey.t -> int
(** The mask of shards holding nodes keyed [key]; [0] if the key was
    never registered. *)

val targets : table -> Edge.t -> int
(** The mask of shards an update on [e] can affect: the union of
    {!key_shards} over [e]'s four generalised keys. *)

val fold : (Ekey.t -> int -> 'a -> 'a) -> table -> 'a -> 'a
(** Fold over every registered (key, mask) entry, in no particular
    order — audit access. *)

val set_bits : table -> Ekey.t -> int -> unit
(** Overwrite a key's mask verbatim, bypassing the additive {!register}
    discipline.  Used by the engine to rebuild a key's mask after trie
    pruning (and by the audit corruption hooks to plant routing
    divergence).  The caller must guarantee the new mask equals the set
    of shards whose forest still holds a node for the key. *)

val clear : table -> Ekey.t -> unit
(** Drop a key's entry entirely — the rebuild result when no shard holds
    a node for the key any more. *)
