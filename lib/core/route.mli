(** The routing layer of the sharded engine: a pure function from a
    root-trie key to the shard that owns every trie rooted at that key.

    The routing invariant is structural, not per-update: an update is
    broadcast to every shard (each shard keeps its own base views for the
    keys its tries mention), while {e tries} are placed by the first key
    of their covering-path word.  Because a trie is placed wholly on one
    shard, shard-local delta propagation computes exactly the global
    engine's propagation restricted to that shard's tries, for any shard
    count — which is why sharded and sequential reports coincide.

    [owner] is deterministic within a run for a fixed shard count (it
    hashes interned label ids, which are assigned in stream order). *)

open Tric_query

val owner : shards:int -> Ekey.t -> int
(** [owner ~shards key] is the shard id in [0, shards) owning tries
    rooted at [key].  @raise Invalid_argument if [shards < 1]. *)
