open Tric_query
open Tric_rel

type node = {
  nid : int;
  key : Ekey.t;
  depth : int;
  parent : node option;
  children_tbl : node Ekey.Tbl.t;
  (* Contiguous child slice in insertion order (deterministic walks):
     a growable array, not a linked list — child sets are iterated on
     every descent of the propagation hot path. *)
  mutable children : node array;
  mutable nchildren : int;
  view : Relation.t;
  mutable regs : (int * int) list;
}

let node_id n = n.nid
let deregister n ~qid = n.regs <- List.filter (fun (q, _) -> q <> qid) n.regs
let node_key n = n.key
let node_depth n = n.depth
let node_view n = n.view
let node_parent n = n.parent
let node_children n = Array.to_list (Array.sub n.children 0 n.nchildren)

let iter_children f n =
  for i = 0 to n.nchildren - 1 do
    f n.children.(i)
  done

let push_child p c =
  if p.nchildren = Array.length p.children then begin
    let grown = Array.make (max 4 (2 * Array.length p.children)) c in
    Array.blit p.children 0 grown 0 p.nchildren;
    p.children <- grown
  end;
  p.children.(p.nchildren) <- c;
  p.nchildren <- p.nchildren + 1

(* Order-preserving removal (shift left): pruning is cold, walks are hot. *)
let remove_child p nid =
  let i = ref 0 in
  while !i < p.nchildren && p.children.(!i).nid <> nid do
    incr i
  done;
  if !i < p.nchildren then begin
    for j = !i to p.nchildren - 2 do
      p.children.(j) <- p.children.(j + 1)
    done;
    p.nchildren <- p.nchildren - 1
  end

let registrations n = List.rev n.regs

type t = {
  cache : bool;
  id_base : int;
  id_stride : int;
  root_ind : node Ekey.Tbl.t;
  edge_ind : node list ref Ekey.Tbl.t;
  base : Relation.t Ekey.Tbl.t;
  mutable node_count : int; (* monotone id allocator — never decremented *)
  mutable live_count : int; (* nodes currently in the forest *)
  view_obs : Relation.obs option; (* node views: stable across shard counts *)
  base_obs : Relation.obs option; (* base views: duplicated per shard, unstable *)
}

let create ?(id_base = 0) ?(id_stride = 1) ?obs ~cache () =
  if id_stride < 1 then invalid_arg "Trie.create: id_stride must be >= 1";
  if id_base < 0 || id_base >= id_stride then
    invalid_arg "Trie.create: id_base must lie in [0, id_stride)";
  (* Node views are partitioned across shards (each node lives on exactly
     one shard), so their activity counters sum to the same totals at any
     shard count.  Base views are NOT partitioned — a key's base view is
     duplicated on every shard whose forest mentions the key — so their
     counters are placement-dependent and flagged unstable. *)
  let view_obs, base_obs =
    match obs with
    | None -> (None, None)
    | Some reg ->
      ( Some (Relation.make_obs reg ~prefix:"tric_view" ~stable:true),
        Some (Relation.make_obs reg ~prefix:"tric_base" ~stable:false) )
  in
  {
    cache;
    id_base;
    id_stride;
    root_ind = Ekey.Tbl.create 256;
    edge_ind = Ekey.Tbl.create 256;
    base = Ekey.Tbl.create 256;
    node_count = 0;
    live_count = 0;
    view_obs;
    base_obs;
  }

let ensure_base t key =
  match Ekey.Tbl.find_opt t.base key with
  | Some r -> r
  | None ->
    let r = Relation.create ~cache:t.cache ?obs:t.base_obs ~width:2 () in
    Ekey.Tbl.add t.base key r;
    r

let register_in_edge_ind t key node =
  match Ekey.Tbl.find_opt t.edge_ind key with
  | Some cell -> cell := node :: !cell
  | None -> Ekey.Tbl.add t.edge_ind key (ref [ node ])

(* Seed a fresh node's view from its parent's view joined with the key's
   base view, so late-added queries see retained state.  Both sides are
   packed stores at rest, so this is a sorted-run merge join — parent's
   last column against the base view's source column — with no hash table
   on either side. *)
let seed t node =
  let base = ensure_base t node.key in
  if not (Relation.is_empty base) then begin
    match node.parent with
    | None ->
      Relation.iter_rows
        (fun row ->
          ignore
            (Relation.insert_edge_row node.view
               ~src:(Relation.row_col base row 0)
               ~dst:(Relation.row_col base row 1)))
        base
    | Some p ->
      if not (Relation.is_empty p.view) then
        Relation.merge_join ~left:p.view
          ~lcol:(Relation.width p.view - 1)
          ~right:base ~rcol:0
          (fun prow brow ->
            ignore
              (Relation.insert_extend node.view ~src:p.view ~row:prow
                 ~ext:(Relation.row_col base brow 1)))
  end

let new_node t ~key ~parent =
  let depth = match parent with None -> 0 | Some p -> p.depth + 1 in
  (* Pre-size the view's arena from what seeding can at most produce:
     the parent view's cardinality (each parent row extends to at least
     zero, typically few, children), or the base view at the root. *)
  let expect =
    match parent with
    | Some p -> Relation.cardinality p.view
    | None -> (
      match Ekey.Tbl.find_opt t.base key with
      | Some b -> Relation.cardinality b
      | None -> 0)
  in
  let n =
    {
      nid = t.id_base + (t.node_count * t.id_stride);
      key;
      depth;
      parent;
      children_tbl = Ekey.Tbl.create 4;
      children = [||];
      nchildren = 0;
      view = Relation.create ~cache:t.cache ?obs:t.view_obs ~expect ~width:(depth + 2) ();
      regs = [];
    }
  in
  t.node_count <- t.node_count + 1;
  t.live_count <- t.live_count + 1;
  ignore (ensure_base t key);
  register_in_edge_ind t key n;
  seed t n;
  (match parent with
  | None -> Ekey.Tbl.add t.root_ind key n
  | Some p ->
    Ekey.Tbl.add p.children_tbl key n;
    push_child p n);
  n

let insert_path t keys ~qid ~path_index =
  match keys with
  | [] -> invalid_arg "Trie.insert_path: empty path"
  | first :: rest ->
    let root =
      match Ekey.Tbl.find_opt t.root_ind first with
      | Some n -> n
      | None -> new_node t ~key:first ~parent:None
    in
    let rec descend node = function
      | [] -> node
      | key :: tl ->
        let child =
          match Ekey.Tbl.find_opt node.children_tbl key with
          | Some c -> c
          | None -> new_node t ~key ~parent:(Some node)
        in
        descend child tl
    in
    let terminal = descend root rest in
    (* Idempotent: re-indexing a path (e.g. a query re-added after removal,
       or two covering paths collapsing to the same key word) must not
       duplicate the registration — a duplicate would double-count every
       delta reported from this terminal. *)
    if not (List.exists (fun (q, p) -> q = qid && p = path_index) terminal.regs) then
      terminal.regs <- (qid, path_index) :: terminal.regs;
    terminal

let base_view t key = Ekey.Tbl.find_opt t.base key

let nodes_with_key t key =
  match Ekey.Tbl.find_opt t.edge_ind key with Some cell -> !cell | None -> []

let roots t = Ekey.Tbl.fold (fun _ n acc -> n :: acc) t.root_ind []
let num_tries t = Ekey.Tbl.length t.root_ind
let num_nodes t = t.live_count
let num_base_views t = Ekey.Tbl.length t.base

(* Bottom-up pruning: starting from a just-deregistered terminal, detach
   every node that carries no registration and no children — walking up
   to the root as parents empty out.  A detached node leaves the edge
   index too; when a key's last node goes, the key's base view goes with
   it (the routing layer will stop dispatching the key here, so a
   retained base view would silently go stale).  Returns the keys whose
   node set shrank (so the caller can rebuild dispatch masks) and the
   total [Relation.stats_removes] of the detached views (so the caller
   can keep its eviction-accounting identity: detached views no longer
   contribute to the live-view eviction sum). *)
let prune t node =
  let keys = ref [] in
  let removes = ref 0 in
  let note_key k =
    if not (List.exists (fun k' -> Ekey.equal k k') !keys) then keys := k :: !keys
  in
  let rec go n =
    if n.regs = [] && n.nchildren = 0 then begin
      (match Ekey.Tbl.find_opt t.edge_ind n.key with
      | Some cell ->
        cell := List.filter (fun m -> m.nid <> n.nid) !cell;
        if !cell = [] then begin
          Ekey.Tbl.remove t.edge_ind n.key;
          Ekey.Tbl.remove t.base n.key
        end
      | None -> ());
      note_key n.key;
      removes := !removes + Relation.stats_removes n.view;
      t.live_count <- t.live_count - 1;
      match n.parent with
      | None -> Ekey.Tbl.remove t.root_ind n.key
      | Some p ->
        Ekey.Tbl.remove p.children_tbl n.key;
        remove_child p n.nid;
        go p
    end
  in
  go node;
  (!keys, !removes)

let fold_nodes f t init =
  let rec go n acc =
    let acc = ref (f n acc) in
    iter_children (fun c -> acc := go c !acc) n;
    !acc
  in
  List.fold_left (fun acc r -> go r acc) init (roots t)

let fold_base f t init = Ekey.Tbl.fold f t.base init

let pp fmt t =
  let rec pp_node fmt n =
    Format.fprintf fmt "@[<v 2>%a |view|=%d regs=%a" Ekey.pp n.key
      (Relation.cardinality n.view)
      (Format.pp_print_list (fun f (q, p) -> Format.fprintf f "(Q%d,P%d)" q p))
      (registrations n);
    List.iter (fun c -> Format.fprintf fmt "@,%a" pp_node c) (node_children n);
    Format.fprintf fmt "@]"
  in
  Format.fprintf fmt "@[<v>forest: %d tries, %d nodes" (num_tries t) (num_nodes t);
  List.iter (fun r -> Format.fprintf fmt "@,%a" pp_node r) (roots t);
  Format.fprintf fmt "@]"
