(** TRIC — TRIe-based Clustering (§4), the paper's contribution.

    Indexing (Fig. 5): each query graph pattern is decomposed into covering
    paths ({!Tric_query.Cover}); the paths' generic key words are inserted
    into the shared trie forest ({!Trie}); the query id is registered at
    each terminal node.

    Answering (Figs. 8 and 10): an incoming update feeds the base views of
    its four generalised keys, then every trie node carrying one of those
    keys is visited shallow-first; the update is joined against the parent's
    materialized view and the resulting delta is propagated down the
    sub-trie (pruning branches whose delta dies out).  Queries registered at
    nodes that gained tuples are candidates; their covering-path views are
    joined — delta view first — to produce the update's new embeddings.

    [cache:true] gives TRIC+ (§4.2 "Caching"): hash-join build structures
    are kept and maintained incrementally instead of being rebuilt per join
    operation.

    [shards:n] partitions the trie forest across [n] {!Shard}s placed by
    {!Route.place} and dispatches each update only to the shards whose
    covering paths it can affect — the union of the {!Route.table}
    bitmaps of its four generalised keys, maintained at {!add_query}
    time — in parallel on a domain pool ({!Tric_exec.Pool}).  The
    coordinator gathers the per-shard terminal deltas in ascending shard
    order and fans the final per-query cross-path joins back out across
    the pool (join ownership hashed on [qid mod shards]), so reports and
    maintained state are identical to the sequential ([shards:1]) engine
    on any stream while per-op dispatch cost tracks {e affected} shards,
    not shard count. *)

open Tric_graph
open Tric_query
open Tric_rel

type t

val create :
  ?cache:bool -> ?strategy:Cover.strategy -> ?shards:int -> ?metrics:bool -> unit -> t
(** [cache] defaults to [false] (plain TRIC).  [strategy] is the covering-
    path extraction strategy, for ablation; default {!Cover.Upstream}.
    [shards] defaults to [1] (sequential, no pool); [n > 1] spawns a pool
    of [n - 1] worker domains — the coordinator's domain works too — that
    lives until {!shutdown} (or process exit).
    [metrics] (default false) builds the telemetry registries (one per
    shard plus the coordinator's) and the span recorder; with it off no
    instrument exists anywhere and the hot path pays a single branch.
    @raise Invalid_argument if [shards < 1]. *)

val shutdown : t -> unit
(** Join the engine's worker domains, if any.  Idempotent; a no-op for
    [shards = 1].  The engine must not be used afterwards.  Unreleased
    pools are reaped at process exit, but OCaml caps concurrently live
    domains, so anything creating many sharded engines (tests!) must
    shut each one down. *)

val num_shards : t -> int

val busy_s : t -> float
(** Total seconds pool tasks have spent executing — shard update tasks
    plus the distributed cross-path join tasks, summed over shards — the
    work-time counterpart to the caller's wall-clock measurement
    (busy/wall > 1 means the domains actually ran in parallel). *)

val busy_times : t -> float array
(** Per-shard busy seconds, index = shard id. *)

val metrics_enabled : t -> bool

val metrics : t -> Tric_obs.Snapshot.t
(** Deterministic merged snapshot: the coordinator's registry plus every
    shard's, merged in fixed shard order with commutative ops — metrics
    flagged stable come out identical at any shard count for the same
    stream ({!Tric_obs.Snapshot.stable_only}).  {!Tric_obs.Snapshot.empty}
    when the engine was created without [metrics].  Must be called from
    the coordinator between updates (as all of this API). *)

val spans : t -> Tric_obs.Span.recorded list
(** The live window of update-journey traces (label ["add"], ["remove"]
    or ["batch"]; stages [scatter]/[shard<i>]/[gather]/[join]/
    [subtract]/[fold]), oldest first.  Empty without [metrics]. *)

val name : t -> string
(** ["TRIC"] or ["TRIC+"]. *)

val add_query : t -> Pattern.t -> unit
(** Index a query.  Its id ({!Pattern.id}) must be fresh.
    @raise Invalid_argument on a duplicate id. *)

val remove_query : t -> int -> bool
(** Deregister a query id.  Trie nodes and views shared with other
    queries are kept; branches that existed only for this query are
    pruned bottom-up ({!Trie.prune}) and the dispatch masks of every key
    whose node set shrank are rebuilt from the forests (cleared when no
    shard holds the key any more), so churny query DBs keep targeted
    dispatch instead of decaying toward broadcast.  Returns [false] if
    the id is unknown. *)

val num_queries : t -> int

val handle_update :
  t -> Update.t -> (int * Embedding.t list) list * (int * Embedding.t list) list
(** Process one stream update; returns [(matches, retractions)].  For an
    addition, [matches] lists, per satisfied query id (ascending), the
    new total embeddings created by this update ([retractions] is []).
    For a removal, all views are pruned by prefix-indexed downward
    propagation (§4.3) and exactly the evicted terminal tuples are
    subtracted from the owning queries' cached per-path embeddings —
    queries untouched by the removal keep their caches, and a no-op
    removal (absent edge) touches nothing.  [retractions] lists, per
    affected query id (ascending), the previously-live matches the
    removal destroyed: each dead per-path delta joined against the other
    paths' pre-subtraction caches ([matches] is []). *)

val handle_batch :
  t -> Update.t list -> (int * Embedding.t list) list * (int * Embedding.t list) list
(** Process a micro-batch of updates as one unit of work, equivalently to
    replaying them sequentially with {!handle_update} (same final
    materialized views, same {!current_matches} for every query —
    order-insensitive within the window).

    The batch is first folded to net ops: duplicates collapse and only an
    edge's final polarity in the window survives, so an
    [Add e; ...; Remove e] window cancels.  Net removals are applied
    first; net additions then run one amortised shallow-first trie sweep —
    the whole key delta joins against each affected node with a single
    hash-join build (and, for plain TRIC, a single parent-view scan) per
    node per batch — and the per-query final join runs once over the
    merged terminal deltas.

    Returns [(matches, retractions)]: per satisfied query id (ascending),
    the new embeddings the window created {e net of the window itself} —
    matches both created and destroyed inside the same batch are
    cancelled and never reported — and, per affected query id, the
    previously-live matches the window's net removals destroyed
    (accumulated removal by removal in window order, so nothing is
    retracted twice). *)

val current_matches : t -> int -> Embedding.t list
(** Probe: the query's full current result, recomputed by joining its
    covering-path views.  @raise Not_found on unknown id. *)

val covering_paths : t -> int -> Path.t list
(** The covering paths the engine extracted for a query.
    @raise Not_found on unknown id. *)

val forest : t -> Trie.t
(** The trie forest of a sequential engine (inspection/tests).
    @raise Invalid_argument when [num_shards t > 1] — use {!forests}. *)

val forests : t -> Trie.t array
(** Every shard's trie forest, index = shard id ([shards = 1] gives a
    one-element array holding {!forest}). *)

type stats = {
  queries : int;
  shards : int;
  tries : int;
  trie_nodes : int;
  base_views : int;
  view_tuples : int;  (** total tuples across node views *)
  index_rebuilds : int;  (** ephemeral hash-join builds (0-ish for TRIC+) *)
  removals : int;  (** [Update.Remove]s processed *)
  noop_removals : int;  (** removals that evicted no tuple anywhere *)
  tuples_removed : int;  (** view tuples evicted by deletions *)
  invalidations_avoided : int;
      (** per-query embedding caches left untouched by removals (summed per
          removal over live queries) — the work the old global-epoch
          invalidation would have redone *)
  delta_probes : int;
      (** prefix/hinge index lookups serving the deletion path, each
          replacing a full-view scan *)
  batches : int;  (** {!handle_batch} calls *)
  batched_updates : int;  (** updates received through {!handle_batch} *)
  batch_cancelled : int;
      (** updates collapsed by in-window net-op folding (duplicates and
          add/remove pairs) *)
  batch_net_applied : int;
      (** net ops that survived the folding — the accounting identity
          [batched_updates = batch_net_applied + batch_cancelled] is one
          of the invariants {!Tric_audit.Audit.check} certifies *)
  ops_routed : int;
      (** net ops that went through targeted dispatch (one per
          {!handle_update}, one per net op of a {!handle_batch} window) *)
  ops_dispatched : int;
      (** (op, shard) dispatch pairs — [ops_dispatched / ops_routed] is
          the mean dispatch fanout, ≈ affected shards per op; a value near
          [shards] means broadcasting *)
  shard_ops : int array;
      (** per shard: net ops dispatched to it (sums to [ops_dispatched]) —
          an op touching only shard [k]'s keys bumps slot [k] alone *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val mem_stats : t -> (int * int * int) array
(** Per shard, ascending id: summed [(arena capacity, live rows,
    freelist length)] over every relation the shard owns — the packed
    memory footprint surfaced as the [mem] block of [tric_cli stats]. *)

(** {2 Audit access}

    Read-only structural views for the invariant sanitizer
    ({!Tric_audit.Audit}): everything the engine maintains incrementally,
    exposed so an external checker can recompute it from first
    principles. *)

type query_view = {
  qv_pattern : Pattern.t;
  qv_paths : Path.t array;  (** covering paths, in extraction order *)
  qv_path_vids : int array array;  (** per path: chain vertex-id sequence *)
  qv_path_shards : int array;
      (** per path: the shard its trie lives on — must equal
          [Route.owner] of the path word's first key (routing-coherence) *)
  qv_terminals : Trie.node array;  (** per path: its trie terminal *)
  qv_width : int;  (** pattern vertex count *)
  qv_path_embs : Embedding.t list array;
      (** per path: the cached partial-embedding mirror of the terminal
          view (a shallow copy of the engine's list — safe to consume) *)
}

val query_views : t -> (int * query_view) list
(** Every live query with its maintained state, ascending by id. *)

val route_bits : t -> (Ekey.t * int) list
(** The dispatch table's (key, shard mask) entries, in no particular
    order — audit access.  Routing coherence demands each mask equal
    exactly the set of shards whose forest holds a node with that key:
    a missing bit loses updates, a spurious bit dispatches dead work. *)

val is_caching : t -> bool
(** [true] for TRIC+ (maintained hash-join indexes). *)

(** Test-only corruption hooks: each deliberately breaks exactly one
    invariant class so the mutation tests can prove the audit detects it.
    Never call these outside tests. *)
module Corrupt : sig
  val skew_path_cache : t -> bool
  (** Drop one embedding from some query's cached per-path results
      (cache-coherence).  [false] if every cache is empty. *)

  val desync_stats : t -> unit
  (** Bump [tuples_removed] without removing anything (stats). *)

  val drop_registration : t -> bool
  (** Deregister some live query from its first terminal while keeping the
      query (registration).  [false] if no query is indexed. *)

  val phantom_view_tuple : t -> bool
  (** Insert an out-of-thin-air tuple into a node view — preferring an
      unregistered node — so the view is no longer re-derivable from the
      base views (view-coherence).  [false] if the forest is empty. *)

  val misroute_path : t -> bool
  (** Re-index some query's first covering path on a shard other than its
      {!Route.owner}, planting a foreign-rooted trie there
      (routing-coherence; collaterally trips registration/base checks —
      assert membership, not exactness).  [false] unless [shards >= 2]
      and a query is indexed. *)

  val drop_route_bit : t -> bool
  (** Clear one bit of some key's dispatch mask, making the router skip a
      shard whose forest holds nodes for the key — the lost-update
      direction of routing-coherence.  [false] if no key is registered. *)

  val phantom_route_bit : t -> bool
  (** Set a dispatch bit for a shard holding no node for the key — the
      dead-work direction of routing-coherence.  [false] unless some
      key's mask has a clear bit ([shards >= 2] in practice). *)
end
