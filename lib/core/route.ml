open Tric_graph
open Tric_query

let owner ~shards key =
  if shards < 1 then invalid_arg "Route.owner: shards must be >= 1";
  if shards = 1 then 0 else Ekey.hash key mod shards

let place ~shards keys =
  match keys with
  | [] -> invalid_arg "Route.place: covering path has an empty key word"
  | first :: _ -> owner ~shards first

(* -- Shard masks ------------------------------------------------------------- *)

(* A mask is a plain int bitset of shard ids — bit [s] set means shard
   [s].  Capping the shard count at [Sys.int_size - 1] keeps every mask a
   single immediate, so routing lookups allocate nothing. *)

let max_shards = Sys.int_size - 1
let mem_shard mask shard = mask land (1 lsl shard) <> 0

let shard_list mask =
  let acc = ref [] in
  let m = ref mask in
  let s = ref 0 in
  while !m <> 0 do
    if !m land 1 <> 0 then acc := !s :: !acc;
    incr s;
    m := !m lsr 1
  done;
  List.rev !acc

let popcount mask =
  let c = ref 0 in
  let m = ref mask in
  while !m <> 0 do
    m := !m land (!m - 1);
    incr c
  done;
  !c

(* -- The dispatch table ------------------------------------------------------- *)

type table = { shards : int; bits : int Ekey.Tbl.t }

let create_table ~shards =
  if shards < 1 then invalid_arg "Route.create_table: shards must be >= 1";
  if shards > max_shards then
    invalid_arg
      (Printf.sprintf "Route.create_table: at most %d shards (mask is one word)"
         max_shards);
  { shards; bits = Ekey.Tbl.create 256 }

let table_shards tbl = tbl.shards

let register tbl key ~shard =
  if shard < 0 || shard >= tbl.shards then
    invalid_arg "Route.register: shard out of range";
  let prev = match Ekey.Tbl.find_opt tbl.bits key with Some m -> m | None -> 0 in
  Ekey.Tbl.replace tbl.bits key (prev lor (1 lsl shard))

let key_shards tbl key =
  match Ekey.Tbl.find_opt tbl.bits key with Some m -> m | None -> 0

let targets tbl (e : Edge.t) =
  List.fold_left (fun acc k -> acc lor key_shards tbl k) 0 (Ekey.keys_of_edge e)

let fold f tbl init = Ekey.Tbl.fold f tbl.bits init
let set_bits tbl key mask = Ekey.Tbl.replace tbl.bits key mask
let clear tbl key = Ekey.Tbl.remove tbl.bits key
