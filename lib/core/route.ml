open Tric_query

let owner ~shards key =
  if shards < 1 then invalid_arg "Route.owner: shards must be >= 1";
  if shards = 1 then 0 else Ekey.hash key mod shards
