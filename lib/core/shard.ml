open Tric_graph
open Tric_query
open Tric_rel

type t = { sid : int; cache : bool; forest : Trie.t }

let create ~sid ~shards ~cache =
  { sid; cache; forest = Trie.create ~id_base:sid ~id_stride:shards ~cache () }

let sid t = t.sid
let forest t = t.forest

type delta = int * int * Tuple.t list

(* -- Additions (Fig. 10, shard-local) -------------------------------------- *)

(* All trie nodes of this shard whose key matches the edge, shallowest
   first so that by the time a node joins the update against its parent's
   view, the parent's view is fully up to date. *)
let matched_nodes t (e : Edge.t) =
  let nodes =
    List.concat_map (fun k -> Trie.nodes_with_key t.forest k) (Ekey.keys_of_edge e)
  in
  List.sort (fun a b -> Int.compare (Trie.node_depth a) (Trie.node_depth b)) nodes

(* Delta propagation: push the parent's freshly inserted tuples into each
   child by joining them with the child's base view, pruning branches
   where the delta dies out.  Records inserted tuples per node. *)
let rec propagate t ~record node delta =
  List.iter
    (fun child ->
      match Trie.base_view t.forest (Trie.node_key child) with
      | None -> ()
      | Some base ->
        if not (Relation.is_empty base) then begin
          let extensions =
            if t.cache then begin
              (* TRIC+: probe the maintained index of the base view. *)
              let probe = Relation.index_on base ~col:0 in
              List.concat_map
                (fun tu ->
                  List.map
                    (fun btu -> Tuple.extend tu (Tuple.get btu 1))
                    (probe (Tuple.last tu)))
                delta
            end
            else begin
              (* TRIC: classic hash join — build on the smaller side (the
                 delta), scan the base view probing it. *)
              let built : Tuple.t list ref Label.Tbl.t =
                Label.Tbl.create (2 * List.length delta)
              in
              List.iter
                (fun tu ->
                  let key = Tuple.last tu in
                  match Label.Tbl.find_opt built key with
                  | Some cell -> cell := tu :: !cell
                  | None -> Label.Tbl.add built key (ref [ tu ]))
                delta;
              let out = ref [] in
              Relation.scan_probing base ~col:0
                (fun hinge ->
                  match Label.Tbl.find_opt built hinge with
                  | Some cell -> !cell
                  | None -> [])
                (fun btu tu -> out := Tuple.extend tu (Tuple.get btu 1) :: !out);
              !out
            end
          in
          let inserted = Relation.insert_all (Trie.node_view child) extensions in
          if inserted <> [] then begin
            record child inserted;
            propagate t ~record child inserted
          end
        end)
    (Trie.node_children node)

let handle_addition t (e : Edge.t) =
  (* Feed this shard's base views of the four generalised keys; keys no
     trie of this shard mentions have no base view here and are skipped. *)
  let tuple = Tuple.of_edge e in
  List.iter
    (fun k ->
      match Trie.base_view t.forest k with
      | Some base -> ignore (Relation.insert base tuple)
      | None -> ())
    (Ekey.keys_of_edge e);
  (* Visit matching trie nodes shallow-first. *)
  let inserted_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    match Hashtbl.find_opt inserted_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add inserted_at (Trie.node_id node) (node, ref tuples)
  in
  List.iter
    (fun node ->
      let delta =
        match Trie.node_parent node with
        | None -> [ tuple ]
        | Some parent ->
          let hinge_col = Trie.node_depth node in
          let parents =
            if t.cache then
              (* TRIC+: maintained index on the parent view's hinge. *)
              Relation.index_on (Trie.node_view parent) ~col:hinge_col e.src
            else
              (* TRIC: build on the single-tuple update, scan the parent. *)
              Relation.probe_scan (Trie.node_view parent) ~col:hinge_col e.src
          in
          List.map (fun ptu -> Tuple.extend ptu e.dst) parents
      in
      let inserted = Relation.insert_all (Trie.node_view node) delta in
      if inserted <> [] then begin
        record node inserted;
        propagate t ~record node inserted
      end)
    (matched_nodes t e);
  inserted_at

(* -- Removals (§4.3, shard-local) ------------------------------------------ *)

(* A child tuple extends exactly one parent tuple (its prefix), so the
   child's casualties are exactly the extensions of doomed parent tuples —
   found by probing the child view's maintained prefix index, not by
   scanning the view.  Doomed parent tuples are distinct, so the probed
   buckets are disjoint and need no dedup.  Records evicted tuples per
   node. *)
let rec propagate_removal ~record node doomed =
  List.iter
    (fun child ->
      let view = Trie.node_view child in
      let doomed_child = List.concat_map (fun d -> Relation.probe_prefix view d) doomed in
      if doomed_child <> [] then begin
        ignore (Relation.remove_all view doomed_child);
        record child doomed_child;
        propagate_removal ~record child doomed_child
      end)
    (Trie.node_children node)

let handle_removal t (e : Edge.t) =
  let tuple = Tuple.of_edge e in
  List.iter
    (fun k ->
      match Trie.base_view t.forest k with
      | Some base -> ignore (Relation.remove base tuple)
      | None -> ())
    (Ekey.keys_of_edge e);
  let removed_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    match Hashtbl.find_opt removed_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add removed_at (Trie.node_id node) (node, ref tuples)
  in
  (* Shallow-first: a matched node's own hinge casualties are looked up by
     index; by the time a deeper matched node is visited, tuples already
     evicted through propagation are gone from its hinge index, so nothing
     is recorded twice. *)
  List.iter
    (fun node ->
      let view = Trie.node_view node in
      let doomed = Relation.probe_hinge view ~src:e.src ~dst:e.dst in
      if doomed <> [] then begin
        ignore (Relation.remove_all view doomed);
        record node doomed;
        propagate_removal ~record node doomed
      end)
    (matched_nodes t e);
  removed_at

(* -- Batched addition sweep (shard-local) ----------------------------------- *)

(* The per-update answering loop, amortised over a window of edges: every
   fresh edge tuple is first folded into the base views; then each
   affected trie node is visited once — shallowest first across the whole
   batch, so by the time a node joins its key's accumulated delta against
   the parent's view, the parent has absorbed every shallower batch delta.
   In TRIC mode this performs one hash-join build + one parent-view scan
   per node per batch instead of one scan per node per update; TRIC+
   probes its maintained index per fresh tuple as before, but still saves
   the per-update node locating and sorting. *)
let handle_additions_batch t (edges : Edge.t list) =
  (* Feed the base views; remember, per key, the edge tuples that were new. *)
  let fresh_by_key : Tuple.t list ref Ekey.Tbl.t = Ekey.Tbl.create 64 in
  List.iter
    (fun (e : Edge.t) ->
      let tuple = Tuple.of_edge e in
      List.iter
        (fun k ->
          match Trie.base_view t.forest k with
          | Some base ->
            if Relation.insert base tuple then begin
              match Ekey.Tbl.find_opt fresh_by_key k with
              | Some cell -> cell := tuple :: !cell
              | None -> Ekey.Tbl.add fresh_by_key k (ref [ tuple ])
            end
          | None -> ())
        (Ekey.keys_of_edge e))
    edges;
  (* Every node whose key gained base tuples, shallowest first. *)
  let seeds =
    Ekey.Tbl.fold
      (fun k cell acc ->
        List.fold_left
          (fun acc n -> (n, !cell) :: acc)
          acc
          (Trie.nodes_with_key t.forest k))
      fresh_by_key []
    |> List.sort (fun (a, _) (b, _) ->
           Int.compare (Trie.node_depth a) (Trie.node_depth b))
  in
  let inserted_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    match Hashtbl.find_opt inserted_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add inserted_at (Trie.node_id node) (node, ref tuples)
  in
  List.iter
    (fun (node, fresh) ->
      let delta =
        match Trie.node_parent node with
        | None -> fresh
        | Some parent ->
          let hinge_col = Trie.node_depth node in
          let view = Trie.node_view parent in
          if t.cache then
            (* TRIC+: maintained index on the parent view's hinge column. *)
            let probe = Relation.index_on view ~col:hinge_col in
            List.concat_map
              (fun etu ->
                List.map
                  (fun ptu -> Tuple.extend ptu (Tuple.get etu 1))
                  (probe (Tuple.get etu 0)))
              fresh
          else begin
            (* TRIC: build on the batch's key delta, scan the parent once
               for the whole window. *)
            let built : Tuple.t list ref Label.Tbl.t =
              Label.Tbl.create (2 * List.length fresh)
            in
            List.iter
              (fun etu ->
                let key = Tuple.get etu 0 in
                match Label.Tbl.find_opt built key with
                | Some cell -> cell := etu :: !cell
                | None -> Label.Tbl.add built key (ref [ etu ]))
              fresh;
            let out = ref [] in
            Relation.scan_probing view ~col:hinge_col
              (fun hinge ->
                match Label.Tbl.find_opt built hinge with
                | Some cell -> !cell
                | None -> [])
              (fun ptu etu -> out := Tuple.extend ptu (Tuple.get etu 1) :: !out);
            !out
          end
      in
      let inserted = Relation.insert_all (Trie.node_view node) delta in
      if inserted <> [] then begin
        record node inserted;
        propagate t ~record node inserted
      end)
    seeds;
  inserted_at

(* -- Delta extraction -------------------------------------------------------- *)

(* Flatten a per-node tuple table into per-registration deltas, sorted by
   (qid, path index) so the coordinator's gather is deterministic no
   matter the table's iteration order. *)
let deltas_of tbl =
  Hashtbl.fold
    (fun _nid (node, cell) acc ->
      List.fold_left
        (fun acc (qid, pidx) -> (qid, pidx, !cell) :: acc)
        acc (Trie.registrations node))
    tbl []
  |> List.sort (fun (q1, p1, _) (q2, p2, _) ->
         match Int.compare q1 q2 with 0 -> Int.compare p1 p2 | c -> c)

let total_evicted tbl =
  Hashtbl.fold (fun _nid (_, cell) acc -> acc + List.length !cell) tbl 0

let apply_add t e = deltas_of (handle_addition t e)

let apply_remove t e =
  let removed_at = handle_removal t e in
  (deltas_of removed_at, total_evicted removed_at)

let apply_removes t edges = Array.of_list (List.map (apply_remove t) edges)

let apply_add_batch t edges = deltas_of (handle_additions_batch t edges)
