open Tric_graph
open Tric_query
open Tric_rel

(* Per-shard telemetry.  The registry is private to this shard — touched
   only by the domain running the shard's pool task — and merged by the
   coordinator between barriers.  Instruments flagged stable aggregate to
   the same totals at any shard count (nodes are partitioned across
   shards and propagation is trie-local); descent timings and dispatch
   counts are placement-dependent and flagged unstable. *)
type obs = {
  reg : Tric_obs.Registry.t;
  fanout : Tric_obs.Histogram.t; (* tuples gained per node per propagation event *)
  mat_depth : Tric_obs.Histogram.t; (* materialization depth, weighted by tuples *)
  descend : Tric_obs.Histogram.t array; (* per-level node-visit seconds *)
  dispatches : Tric_obs.Registry.counter;
}

let max_descend_level = 7

let make_obs () =
  let reg = Tric_obs.Registry.create () in
  {
    reg;
    fanout = Tric_obs.Registry.histogram reg ~lo:1.0 ~growth:2.0 "tric_delta_fanout";
    mat_depth = Tric_obs.Registry.histogram reg ~lo:1.0 ~growth:2.0 "tric_mat_depth";
    descend =
      Array.init (max_descend_level + 1) (fun d ->
          Tric_obs.Registry.histogram reg ~stable:false ~lo:1e-7
            (Printf.sprintf "tric_descend_l%d_seconds" d));
    dispatches = Tric_obs.Registry.counter reg "tric_node_visits_total";
  }

type t = { sid : int; cache : bool; forest : Trie.t; obs : obs option }

let create ?(metrics = false) ~sid ~shards ~cache () =
  let obs = if metrics then Some (make_obs ()) else None in
  let trie_obs = match obs with Some o -> Some o.reg | None -> None in
  {
    sid;
    cache;
    forest = Trie.create ~id_base:sid ~id_stride:shards ?obs:trie_obs ~cache ();
    obs;
  }

let sid t = t.sid
let forest t = t.forest
let registry t = match t.obs with Some o -> Some o.reg | None -> None

(* Observe one propagation event: [n] tuples materialized at [depth].
   Registered on every record call, so the fan-out histogram sees the
   per-event delta sizes and the depth histogram the per-level volumes. *)
let observe_event t node n =
  match t.obs with
  | None -> ()
  | Some o ->
    Tric_obs.Histogram.observe o.fanout (float_of_int n);
    Tric_obs.Histogram.observe_n o.mat_depth (float_of_int (Trie.node_depth node)) n

(* Time one top-level node visit (join + downward propagation), filed
   under the visit root's level (clamped).  The visit count is stable —
   the union of every shard's matched nodes is the sequential node set —
   but the timings are wall-clock and stay shard-local.  Two clock reads
   per matched node, paid only with metrics on. *)
let timed_visit t node f =
  match t.obs with
  | None -> f ()
  | Some o ->
    Tric_obs.Registry.incr o.dispatches;
    let level = min (Trie.node_depth node) max_descend_level in
    let t0 = Unix.gettimeofday () in
    f ();
    Tric_obs.Histogram.observe o.descend.(level) (Unix.gettimeofday () -. t0)

type delta = int * int * Tuple.t list

(* -- Additions (Fig. 10, shard-local) -------------------------------------- *)

(* All trie nodes of this shard whose key matches the edge, shallowest
   first so that by the time a node joins the update against its parent's
   view, the parent's view is fully up to date. *)
let matched_nodes t (e : Edge.t) =
  let nodes =
    List.concat_map (fun k -> Trie.nodes_with_key t.forest k) (Ekey.keys_of_edge e)
  in
  List.sort (fun a b -> Int.compare (Trie.node_depth a) (Trie.node_depth b)) nodes

(* Delta propagation: push the parent's freshly inserted tuples into each
   child by joining them with the child's base view, pruning branches
   where the delta dies out.  Records inserted tuples per node. *)
let rec propagate t ~record node delta =
  List.iter
    (fun child ->
      match Trie.base_view t.forest (Trie.node_key child) with
      | None -> ()
      | Some base ->
        if not (Relation.is_empty base) then begin
          let extensions =
            if t.cache then begin
              (* TRIC+: probe the maintained index of the base view. *)
              let probe = Relation.index_on base ~col:0 in
              List.concat_map
                (fun tu ->
                  List.map
                    (fun btu -> Tuple.extend tu (Tuple.get btu 1))
                    (probe (Tuple.last tu)))
                delta
            end
            else begin
              (* TRIC: classic hash join — build on the smaller side (the
                 delta), scan the base view probing it. *)
              let built : Tuple.t list ref Label.Tbl.t =
                Label.Tbl.create (2 * List.length delta)
              in
              List.iter
                (fun tu ->
                  let key = Tuple.last tu in
                  match Label.Tbl.find_opt built key with
                  | Some cell -> cell := tu :: !cell
                  | None -> Label.Tbl.add built key (ref [ tu ]))
                delta;
              let out = ref [] in
              Relation.scan_probing base ~col:0
                (fun hinge ->
                  match Label.Tbl.find_opt built hinge with
                  | Some cell -> !cell
                  | None -> [])
                (fun btu tu -> out := Tuple.extend tu (Tuple.get btu 1) :: !out);
              !out
            end
          in
          let inserted = Relation.insert_all (Trie.node_view child) extensions in
          if inserted <> [] then begin
            record child inserted;
            propagate t ~record child inserted
          end
        end)
    (Trie.node_children node)

let handle_addition t (e : Edge.t) =
  (* Feed this shard's base views of the four generalised keys; keys no
     trie of this shard mentions have no base view here and are skipped. *)
  let tuple = Tuple.of_edge e in
  List.iter
    (fun k ->
      match Trie.base_view t.forest k with
      | Some base -> ignore (Relation.insert base tuple)
      | None -> ())
    (Ekey.keys_of_edge e);
  (* Visit matching trie nodes shallow-first. *)
  let inserted_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    observe_event t node (List.length tuples);
    match Hashtbl.find_opt inserted_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add inserted_at (Trie.node_id node) (node, ref tuples)
  in
  List.iter
    (fun node ->
      timed_visit t node (fun () ->
          let delta =
            match Trie.node_parent node with
            | None -> [ tuple ]
            | Some parent ->
              let hinge_col = Trie.node_depth node in
              let parents =
                if t.cache then
                  (* TRIC+: maintained index on the parent view's hinge. *)
                  Relation.index_on (Trie.node_view parent) ~col:hinge_col e.src
                else
                  (* TRIC: build on the single-tuple update, scan the parent. *)
                  Relation.probe_scan (Trie.node_view parent) ~col:hinge_col e.src
              in
              List.map (fun ptu -> Tuple.extend ptu e.dst) parents
          in
          let inserted = Relation.insert_all (Trie.node_view node) delta in
          if inserted <> [] then begin
            record node inserted;
            propagate t ~record node inserted
          end))
    (matched_nodes t e);
  inserted_at

(* -- Removals (§4.3, shard-local) ------------------------------------------ *)

(* A child tuple extends exactly one parent tuple (its prefix), so the
   child's casualties are exactly the extensions of doomed parent tuples —
   found by probing the child view's maintained prefix index, not by
   scanning the view.  Doomed parent tuples are distinct, so the probed
   buckets are disjoint and need no dedup.  Records evicted tuples per
   node. *)
let rec propagate_removal ~record node doomed =
  List.iter
    (fun child ->
      let view = Trie.node_view child in
      let doomed_child = List.concat_map (fun d -> Relation.probe_prefix view d) doomed in
      if doomed_child <> [] then begin
        ignore (Relation.remove_all view doomed_child);
        record child doomed_child;
        propagate_removal ~record child doomed_child
      end)
    (Trie.node_children node)

let handle_removal t (e : Edge.t) =
  let tuple = Tuple.of_edge e in
  List.iter
    (fun k ->
      match Trie.base_view t.forest k with
      | Some base -> ignore (Relation.remove base tuple)
      | None -> ())
    (Ekey.keys_of_edge e);
  let removed_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    observe_event t node (List.length tuples);
    match Hashtbl.find_opt removed_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add removed_at (Trie.node_id node) (node, ref tuples)
  in
  (* Shallow-first: a matched node's own hinge casualties are looked up by
     index; by the time a deeper matched node is visited, tuples already
     evicted through propagation are gone from its hinge index, so nothing
     is recorded twice. *)
  List.iter
    (fun node ->
      timed_visit t node (fun () ->
          let view = Trie.node_view node in
          let doomed = Relation.probe_hinge view ~src:e.src ~dst:e.dst in
          if doomed <> [] then begin
            ignore (Relation.remove_all view doomed);
            record node doomed;
            propagate_removal ~record node doomed
          end))
    (matched_nodes t e);
  removed_at

(* -- Batched addition sweep (shard-local) ----------------------------------- *)

(* The per-update answering loop, amortised over a window of edges: every
   fresh edge tuple is first folded into the base views; then each
   affected trie node is visited once — shallowest first across the whole
   batch, so by the time a node joins its key's accumulated delta against
   the parent's view, the parent has absorbed every shallower batch delta.
   In TRIC mode this performs one hash-join build + one parent-view scan
   per node per batch instead of one scan per node per update; TRIC+
   probes its maintained index per fresh tuple as before, but still saves
   the per-update node locating and sorting. *)
let handle_additions_batch t (edges : Edge.t list) =
  (* Feed the base views; remember, per key, the edge tuples that were new. *)
  let fresh_by_key : Tuple.t list ref Ekey.Tbl.t = Ekey.Tbl.create 64 in
  List.iter
    (fun (e : Edge.t) ->
      let tuple = Tuple.of_edge e in
      List.iter
        (fun k ->
          match Trie.base_view t.forest k with
          | Some base ->
            if Relation.insert base tuple then begin
              match Ekey.Tbl.find_opt fresh_by_key k with
              | Some cell -> cell := tuple :: !cell
              | None -> Ekey.Tbl.add fresh_by_key k (ref [ tuple ])
            end
          | None -> ())
        (Ekey.keys_of_edge e))
    edges;
  (* Every node whose key gained base tuples, shallowest first. *)
  let seeds =
    Ekey.Tbl.fold
      (fun k cell acc ->
        List.fold_left
          (fun acc n -> (n, !cell) :: acc)
          acc
          (Trie.nodes_with_key t.forest k))
      fresh_by_key []
    |> List.sort (fun (a, _) (b, _) ->
           Int.compare (Trie.node_depth a) (Trie.node_depth b))
  in
  let inserted_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    observe_event t node (List.length tuples);
    match Hashtbl.find_opt inserted_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add inserted_at (Trie.node_id node) (node, ref tuples)
  in
  List.iter
    (fun (node, fresh) ->
      timed_visit t node (fun () ->
      let delta =
        match Trie.node_parent node with
        | None -> fresh
        | Some parent ->
          let hinge_col = Trie.node_depth node in
          let view = Trie.node_view parent in
          if t.cache then
            (* TRIC+: maintained index on the parent view's hinge column. *)
            let probe = Relation.index_on view ~col:hinge_col in
            List.concat_map
              (fun etu ->
                List.map
                  (fun ptu -> Tuple.extend ptu (Tuple.get etu 1))
                  (probe (Tuple.get etu 0)))
              fresh
          else begin
            (* TRIC: build on the batch's key delta, scan the parent once
               for the whole window. *)
            let built : Tuple.t list ref Label.Tbl.t =
              Label.Tbl.create (2 * List.length fresh)
            in
            List.iter
              (fun etu ->
                let key = Tuple.get etu 0 in
                match Label.Tbl.find_opt built key with
                | Some cell -> cell := etu :: !cell
                | None -> Label.Tbl.add built key (ref [ etu ]))
              fresh;
            let out = ref [] in
            Relation.scan_probing view ~col:hinge_col
              (fun hinge ->
                match Label.Tbl.find_opt built hinge with
                | Some cell -> !cell
                | None -> [])
              (fun ptu etu -> out := Tuple.extend ptu (Tuple.get etu 1) :: !out);
            !out
          end
      in
      let inserted = Relation.insert_all (Trie.node_view node) delta in
      if inserted <> [] then begin
        record node inserted;
        propagate t ~record node inserted
      end))
    seeds;
  inserted_at

(* -- Delta extraction -------------------------------------------------------- *)

(* Flatten a per-node tuple table into per-registration deltas, sorted by
   (qid, path index) so the coordinator's gather is deterministic no
   matter the table's iteration order. *)
let deltas_of tbl =
  Hashtbl.fold
    (fun _nid (node, cell) acc ->
      List.fold_left
        (fun acc (qid, pidx) -> (qid, pidx, !cell) :: acc)
        acc (Trie.registrations node))
    tbl []
  |> List.sort (fun (q1, p1, _) (q2, p2, _) ->
         match Int.compare q1 q2 with 0 -> Int.compare p1 p2 | c -> c)

let total_evicted tbl =
  Hashtbl.fold (fun _nid (_, cell) acc -> acc + List.length !cell) tbl 0

let apply_add t e = deltas_of (handle_addition t e)

let apply_remove t e =
  let removed_at = handle_removal t e in
  (deltas_of removed_at, total_evicted removed_at)

let apply_removes t edges = Array.of_list (List.map (apply_remove t) edges)

let apply_add_batch t edges = deltas_of (handle_additions_batch t edges)

(* One combined window task: this shard's net removals in window order,
   then its net additions as one amortised sweep.  Shard state is
   disjoint across shards and the coordinator replays its cache
   subtractions before consuming the addition deltas, so fusing both
   polarities into a single pool task is observationally identical to
   the former two-barrier schedule. *)
let apply_ops t ~removals ~additions =
  let removed = apply_removes t removals in
  let added = match additions with [] -> [] | edges -> apply_add_batch t edges in
  (removed, added)
