open Tric_graph
open Tric_query
open Tric_rel

(* Per-shard telemetry.  The registry is private to this shard — touched
   only by the domain running the shard's pool task — and merged by the
   coordinator between barriers.  Instruments flagged stable aggregate to
   the same totals at any shard count (nodes are partitioned across
   shards and propagation is trie-local); descent timings and dispatch
   counts are placement-dependent and flagged unstable. *)
type obs = {
  reg : Tric_obs.Registry.t;
  fanout : Tric_obs.Histogram.t; (* tuples gained per node per propagation event *)
  mat_depth : Tric_obs.Histogram.t; (* materialization depth, weighted by tuples *)
  descend : Tric_obs.Histogram.t array; (* per-level node-visit seconds *)
  dispatches : Tric_obs.Registry.counter;
}

let max_descend_level = 7

let make_obs () =
  let reg = Tric_obs.Registry.create () in
  {
    reg;
    fanout = Tric_obs.Registry.histogram reg ~lo:1.0 ~growth:2.0 "tric_delta_fanout";
    mat_depth = Tric_obs.Registry.histogram reg ~lo:1.0 ~growth:2.0 "tric_mat_depth";
    descend =
      Array.init (max_descend_level + 1) (fun d ->
          Tric_obs.Registry.histogram reg ~stable:false ~lo:1e-7
            (Printf.sprintf "tric_descend_l%d_seconds" d));
    dispatches = Tric_obs.Registry.counter reg "tric_node_visits_total";
  }

type t = { sid : int; cache : bool; forest : Trie.t; obs : obs option }

let create ?(metrics = false) ~sid ~shards ~cache () =
  let obs = if metrics then Some (make_obs ()) else None in
  let trie_obs = match obs with Some o -> Some o.reg | None -> None in
  {
    sid;
    cache;
    forest = Trie.create ~id_base:sid ~id_stride:shards ?obs:trie_obs ~cache ();
    obs;
  }

let sid t = t.sid
let forest t = t.forest
let registry t = match t.obs with Some o -> Some o.reg | None -> None

let mem_stats t =
  Trie.fold_nodes
    (fun n (cap, live, free) ->
      let c, l, f = Relation.mem_stats (Trie.node_view n) in
      (cap + c, live + l, free + f))
    t.forest
    (Trie.fold_base
       (fun _ base (cap, live, free) ->
         let c, l, f = Relation.mem_stats base in
         (cap + c, live + l, free + f))
       t.forest (0, 0, 0))

(* Observe one propagation event: [n] tuples materialized at [depth].
   Registered on every record call, so the fan-out histogram sees the
   per-event delta sizes and the depth histogram the per-level volumes. *)
let observe_event t node n =
  match t.obs with
  | None -> ()
  | Some o ->
    Tric_obs.Histogram.observe o.fanout (float_of_int n);
    Tric_obs.Histogram.observe_n o.mat_depth (float_of_int (Trie.node_depth node)) n

(* Time one top-level node visit (join + downward propagation), filed
   under the visit root's level (clamped).  The visit count is stable —
   the union of every shard's matched nodes is the sequential node set —
   but the timings are wall-clock and stay shard-local.  Two clock reads
   per matched node, paid only with metrics on. *)
let timed_visit t node f =
  match t.obs with
  | None -> f ()
  | Some o ->
    Tric_obs.Registry.incr o.dispatches;
    let level = min (Trie.node_depth node) max_descend_level in
    let t0 = Unix.gettimeofday () in
    f ();
    Tric_obs.Histogram.observe o.descend.(level) (Unix.gettimeofday () -. t0)

(* Deltas leave the shard as packed flat copies: row ids are meaningless
   outside the arena (and the view) that allocated them, and the
   shard-escape rule keeps it that way statically. *)
type delta = int * int * Rows.packed

(* Per-node event accumulator.  Additions pack the freshly inserted rows
   at record time (they are live then and stay live for the sweep);
   removals arrive already packed (their rows are gone from the arena by
   the time the eviction returns). *)
type record_tbl = (int, Trie.node * Rows.packed list ref) Hashtbl.t

let record_packed t (tbl : record_tbl) node p =
  observe_event t node (Rows.packed_count p);
  match Hashtbl.find_opt tbl (Trie.node_id node) with
  | Some (_, cell) -> cell := p :: !cell
  | None -> Hashtbl.add tbl (Trie.node_id node) (node, ref [ p ])

(* -- Additions (Fig. 10, shard-local) -------------------------------------- *)

(* All trie nodes of this shard whose key matches the edge, shallowest
   first so that by the time a node joins the update against its parent's
   view, the parent's view is fully up to date. *)
let matched_nodes t (e : Edge.t) =
  let nodes =
    List.concat_map (fun k -> Trie.nodes_with_key t.forest k) (Ekey.keys_of_edge e)
  in
  List.sort (fun a b -> Int.compare (Trie.node_depth a) (Trie.node_depth b)) nodes

(* Delta propagation: push the parent's freshly inserted rows into each
   child by joining them with the child's base view, pruning branches
   where the delta dies out.  [drows] are row ids in [node]'s view; the
   child's gains are collected as row ids in the child's view — all joins
   below here move raw cells between arenas, never boxed tuples. *)
let rec propagate t ~record node (drows : Rows.Vec.t) =
  List.iter
    (fun child ->
      match Trie.base_view t.forest (Trie.node_key child) with
      | None -> ()
      | Some base ->
        if not (Relation.is_empty base) then begin
          let pview = Trie.node_view node in
          let cview = Trie.node_view child in
          let hinge_col = Relation.width pview - 1 in
          let inserted = Rows.Vec.create () in
          let extend drow brow =
            let row =
              Relation.insert_extend cview ~src:pview ~row:drow
                ~ext:(Relation.row_col base brow 1)
            in
            if row >= 0 then Rows.Vec.push inserted row
          in
          if t.cache then
            (* TRIC+: probe the maintained index of the base view. *)
            Rows.Vec.iter
              (fun drow ->
                match
                  Relation.probe_col_rows base ~col:0 (Relation.row_col pview drow hinge_col)
                with
                | Some bucket -> Rows.Vec.iter (fun brow -> extend drow brow) bucket
                | None -> ())
              drows
          else begin
            (* TRIC: classic hash join — build on the smaller side (the
               delta), scan the base view probing it. *)
            let built : Rows.Vec.t Label.Tbl.t =
              Label.Tbl.create (2 * Rows.Vec.length drows)
            in
            Rows.Vec.iter
              (fun drow ->
                let key = Relation.row_col pview drow hinge_col in
                match Label.Tbl.find_opt built key with
                | Some v -> Rows.Vec.push v drow
                | None ->
                  let v = Rows.Vec.create () in
                  Rows.Vec.push v drow;
                  Label.Tbl.add built key v)
              drows;
            Relation.iter_rows
              (fun brow ->
                match Label.Tbl.find_opt built (Relation.row_col base brow 0) with
                | Some bucket -> Rows.Vec.iter (fun drow -> extend drow brow) bucket
                | None -> ())
              base
          end;
          if Rows.Vec.length inserted > 0 then begin
            record child (Relation.pack_rows cview inserted);
            propagate t ~record child inserted
          end
        end)
    (Trie.node_children node)

let handle_addition t (e : Edge.t) =
  (* Feed this shard's base views of the four generalised keys; keys no
     trie of this shard mentions have no base view here and are skipped. *)
  List.iter
    (fun k ->
      match Trie.base_view t.forest k with
      | Some base -> ignore (Relation.insert_edge_row base ~src:e.src ~dst:e.dst)
      | None -> ())
    (Ekey.keys_of_edge e);
  (* Visit matching trie nodes shallow-first. *)
  let inserted_at : record_tbl = Hashtbl.create 32 in
  let record node p = record_packed t inserted_at node p in
  List.iter
    (fun node ->
      timed_visit t node (fun () ->
          let view = Trie.node_view node in
          let inserted = Rows.Vec.create () in
          (match Trie.node_parent node with
          | None ->
            let row = Relation.insert_edge_row view ~src:e.src ~dst:e.dst in
            if row >= 0 then Rows.Vec.push inserted row
          | Some parent ->
            let hinge_col = Trie.node_depth node in
            let pview = Trie.node_view parent in
            let extend prow =
              let row = Relation.insert_extend view ~src:pview ~row:prow ~ext:e.dst in
              if row >= 0 then Rows.Vec.push inserted row
            in
            if t.cache then (
              (* TRIC+: maintained index on the parent view's hinge. *)
              match Relation.probe_col_rows pview ~col:hinge_col e.src with
              | Some bucket ->
                (* The bucket belongs to the parent's index and only the
                   child view mutates here, so iterating it is safe. *)
                Rows.Vec.iter extend bucket
              | None -> ())
            else
              (* TRIC: scan the parent view against the single update. *)
              Relation.iter_rows
                (fun prow ->
                  if Label.equal (Relation.row_col pview prow hinge_col) e.src then
                    extend prow)
                pview);
          if Rows.Vec.length inserted > 0 then begin
            record node (Relation.pack_rows view inserted);
            propagate t ~record node inserted
          end))
    (matched_nodes t e);
  inserted_at

(* -- Removals (§4.3, shard-local) ------------------------------------------ *)

(* A child tuple extends exactly one parent tuple (its prefix), so the
   child's casualties are exactly the extensions of doomed parent tuples —
   found by probing the child view's maintained prefix index, not by
   scanning the view.  Doomed parent tuples are distinct, so the probed
   buckets are disjoint and need no dedup.  The evictions return the
   casualties packed (snapshotted before their arena slots are freed). *)
let rec propagate_removal ~record node (doomed : Rows.packed) =
  List.iter
    (fun child ->
      let view = Trie.node_view child in
      let doomed_child = Relation.evict_prefixed view doomed in
      if Rows.packed_count doomed_child > 0 then begin
        record child doomed_child;
        propagate_removal ~record child doomed_child
      end)
    (Trie.node_children node)

let handle_removal t (e : Edge.t) =
  let tuple = Tuple.of_edge e in
  List.iter
    (fun k ->
      match Trie.base_view t.forest k with
      | Some base -> ignore (Relation.remove base tuple)
      | None -> ())
    (Ekey.keys_of_edge e);
  let removed_at : record_tbl = Hashtbl.create 32 in
  let record node p = record_packed t removed_at node p in
  (* Shallow-first: a matched node's own hinge casualties are looked up by
     index; by the time a deeper matched node is visited, tuples already
     evicted through propagation are gone from its hinge index, so nothing
     is recorded twice. *)
  List.iter
    (fun node ->
      timed_visit t node (fun () ->
          let doomed = Relation.evict_hinge (Trie.node_view node) ~src:e.src ~dst:e.dst in
          if Rows.packed_count doomed > 0 then begin
            record node doomed;
            propagate_removal ~record node doomed
          end))
    (matched_nodes t e);
  removed_at

(* -- Batched addition sweep (shard-local) ----------------------------------- *)

(* The per-update answering loop, amortised over a window of edges: every
   fresh edge is first folded into the base views; then each affected
   trie node is visited once — shallowest first across the whole batch,
   so by the time a node joins its key's accumulated delta against the
   parent's view, the parent has absorbed every shallower batch delta.
   In TRIC mode this performs one hash-join build + one parent-view scan
   per node per batch instead of one scan per node per update; TRIC+
   probes its maintained index per fresh edge as before, but still saves
   the per-update node locating and sorting.

   [expect] is the coordinator's folded net-addition count for this
   shard: it pre-sizes the per-key accumulator and the base views'
   arenas, so a big window pays one growth instead of a rehash ladder. *)
let handle_additions_batch ?(expect = 0) t (edges : Edge.t list) =
  (* Pre-size the base views touched by this window from the batch's
     per-key edge counts. *)
  if expect > 0 then begin
    let counts : int ref Ekey.Tbl.t = Ekey.Tbl.create 16 in
    List.iter
      (fun (e : Edge.t) ->
        List.iter
          (fun k ->
            match Ekey.Tbl.find_opt counts k with
            | Some c -> incr c
            | None -> Ekey.Tbl.add counts k (ref 1))
          (Ekey.keys_of_edge e))
      edges;
    Ekey.Tbl.iter
      (fun k c ->
        match Trie.base_view t.forest k with
        | Some base -> Relation.reserve base !c
        | None -> ())
      counts
  end;
  (* Feed the base views; remember, per key, the edges that were new. *)
  let fresh_by_key : Edge.t list ref Ekey.Tbl.t = Ekey.Tbl.create (max 64 expect) in
  List.iter
    (fun (e : Edge.t) ->
      List.iter
        (fun k ->
          match Trie.base_view t.forest k with
          | Some base ->
            if Relation.insert_edge_row base ~src:e.src ~dst:e.dst >= 0 then begin
              match Ekey.Tbl.find_opt fresh_by_key k with
              | Some cell -> cell := e :: !cell
              | None -> Ekey.Tbl.add fresh_by_key k (ref [ e ])
            end
          | None -> ())
        (Ekey.keys_of_edge e))
    edges;
  (* Every node whose key gained base tuples, shallowest first. *)
  let seeds =
    Ekey.Tbl.fold
      (fun k cell acc ->
        List.fold_left
          (fun acc n -> (n, !cell) :: acc)
          acc
          (Trie.nodes_with_key t.forest k))
      fresh_by_key []
    |> List.sort (fun (a, _) (b, _) ->
           Int.compare (Trie.node_depth a) (Trie.node_depth b))
  in
  let inserted_at : record_tbl = Hashtbl.create 32 in
  let record node p = record_packed t inserted_at node p in
  List.iter
    (fun (node, fresh) ->
      timed_visit t node (fun () ->
          let view = Trie.node_view node in
          let inserted = Rows.Vec.create () in
          (match Trie.node_parent node with
          | None ->
            List.iter
              (fun (e : Edge.t) ->
                let row = Relation.insert_edge_row view ~src:e.src ~dst:e.dst in
                if row >= 0 then Rows.Vec.push inserted row)
              fresh
          | Some parent ->
            let hinge_col = Trie.node_depth node in
            let pview = Trie.node_view parent in
            let extend prow dst =
              let row = Relation.insert_extend view ~src:pview ~row:prow ~ext:dst in
              if row >= 0 then Rows.Vec.push inserted row
            in
            if t.cache then
              (* TRIC+: maintained index on the parent view's hinge column. *)
              List.iter
                (fun (e : Edge.t) ->
                  match Relation.probe_col_rows pview ~col:hinge_col e.src with
                  | Some bucket -> Rows.Vec.iter (fun prow -> extend prow e.dst) bucket
                  | None -> ())
                fresh
            else begin
              (* TRIC: build on the batch's key delta, scan the parent once
                 for the whole window. *)
              let built : Label.t list ref Label.Tbl.t =
                Label.Tbl.create (2 * List.length fresh)
              in
              List.iter
                (fun (e : Edge.t) ->
                  match Label.Tbl.find_opt built e.src with
                  | Some cell -> cell := e.dst :: !cell
                  | None -> Label.Tbl.add built e.src (ref [ e.dst ]))
                fresh;
              Relation.iter_rows
                (fun prow ->
                  match Label.Tbl.find_opt built (Relation.row_col pview prow hinge_col) with
                  | Some cell -> List.iter (fun dst -> extend prow dst) !cell
                  | None -> ())
                pview
            end);
          if Rows.Vec.length inserted > 0 then begin
            record node (Relation.pack_rows view inserted);
            propagate t ~record node inserted
          end))
    seeds;
  inserted_at

(* -- Delta extraction -------------------------------------------------------- *)

(* Flatten a per-node record table into per-registration deltas, sorted
   by (qid, path index) so the coordinator's gather is deterministic no
   matter the table's iteration order.  A node's events are concatenated
   into one packed batch, shared by all its registrations. *)
let deltas_of (tbl : record_tbl) =
  Hashtbl.fold
    (fun _nid (node, cell) acc ->
      match Trie.registrations node with
      | [] -> acc
      | regs ->
        let packed =
          match !cell with
          | [ p ] -> p
          | ps ->
            Rows.packed_concat ~width:(Relation.width (Trie.node_view node)) (List.rev ps)
        in
        List.fold_left (fun acc (qid, pidx) -> (qid, pidx, packed) :: acc) acc regs)
    tbl []
  |> List.sort (fun (q1, p1, _) (q2, p2, _) ->
         match Int.compare q1 q2 with 0 -> Int.compare p1 p2 | c -> c)

let total_evicted (tbl : record_tbl) =
  Hashtbl.fold
    (fun _nid (_, cell) acc ->
      List.fold_left (fun acc p -> acc + Rows.packed_count p) acc !cell)
    tbl 0

let apply_add t e = deltas_of (handle_addition t e)

let apply_remove t e =
  let removed_at = handle_removal t e in
  (deltas_of removed_at, total_evicted removed_at)

let apply_removes t edges = Array.of_list (List.map (apply_remove t) edges)

let apply_add_batch ?expect t edges = deltas_of (handle_additions_batch ?expect t edges)

(* One combined window task: this shard's net removals in window order,
   then its net additions as one amortised sweep.  Shard state is
   disjoint across shards and the coordinator replays its cache
   subtractions before consuming the addition deltas, so fusing both
   polarities into a single pool task is observationally identical to
   the former two-barrier schedule. *)
let apply_ops ?expect t ~removals ~additions =
  let removed = apply_removes t removals in
  let added =
    match additions with [] -> [] | edges -> apply_add_batch ?expect t edges
  in
  (removed, added)
