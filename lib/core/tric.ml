open Tric_graph
open Tric_query
open Tric_rel
module Pool = Tric_exec.Pool

type query_info = {
  pattern : Pattern.t;
  paths : Path.t array;
  path_vids : int array array; (* per path: chain vertex-id sequence *)
  path_shards : int array; (* per path: shard owning its trie *)
  terminals : Trie.node array;
  width : int; (* pattern vertex count *)
  (* The per-covering-path result as partial embeddings — the paper's
     matV[P_i], kept in join-ready form and maintained incrementally in
     both directions: addition deltas are appended as they are reported,
     and deletion deltas are subtracted tuple-for-tuple (§4.3).  The lists
     mirror the terminal views exactly, so no epoch/refresh machinery is
     needed. *)
  mutable path_embs : Embedding.t list array;
}

(* Coordinator-side telemetry: event counters and the cross-path join
   instruments (stable — pure functions of the update stream), wall-clock
   phase histograms (unstable), and the span recorder tracing one
   update's journey scatter → gather → join.  Lives next to the ad-hoc
   stats counters; everything here is touched only by the main domain. *)
type obs = {
  reg : Tric_obs.Registry.t;
  o_updates : Tric_obs.Registry.counter;
  o_additions : Tric_obs.Registry.counter;
  o_removals : Tric_obs.Registry.counter;
  o_batches : Tric_obs.Registry.counter;
  o_matches : Tric_obs.Registry.counter;
  o_join_fanout : Tric_obs.Histogram.t; (* matches per reporting query per round *)
  o_gather_s : Tric_obs.Histogram.t;
  o_join_s : Tric_obs.Histogram.t;
  o_spans : Tric_obs.Span.t;
}

let make_obs () =
  let reg = Tric_obs.Registry.create () in
  {
    reg;
    o_updates = Tric_obs.Registry.counter reg "tric_updates_total";
    o_additions = Tric_obs.Registry.counter reg "tric_additions_total";
    o_removals = Tric_obs.Registry.counter reg "tric_removals_total";
    o_batches = Tric_obs.Registry.counter reg "tric_batches_total";
    o_matches = Tric_obs.Registry.counter reg "tric_matches_total";
    o_join_fanout = Tric_obs.Registry.histogram reg ~lo:1.0 ~growth:2.0 "tric_join_fanout";
    o_gather_s = Tric_obs.Registry.histogram reg ~stable:false ~lo:1e-7 "tric_gather_seconds";
    o_join_s = Tric_obs.Registry.histogram reg ~stable:false ~lo:1e-7 "tric_join_seconds";
    o_spans = Tric_obs.Span.create ();
  }

(* The coordinator: routing + scatter/gather around shard-owned state.
   Shards are mutated only inside pool tasks (one task per shard, so no
   two tasks share state) or by the coordinator strictly between pool
   barriers; per-query caches and counters live here and are only ever
   touched by the coordinator. *)
type t = {
  cache : bool;
  strategy : Cover.strategy;
  nshards : int;
  shards : Shard.t array;
  route : Route.table; (* per-key shard bitmaps, grown at add_query *)
  pool : Pool.t option; (* Some iff nshards > 1 *)
  busy : float array; (* per shard: seconds spent in its tasks *)
  shard_ops : int array; (* per shard: net ops dispatched to it *)
  obs : obs option;
  queries : (int, query_info) Hashtbl.t;
  mutable ops_routed : int; (* net ops that went through targeted dispatch *)
  mutable removals : int; (* Remove updates processed *)
  mutable noop_removals : int; (* removals that evicted nothing anywhere *)
  mutable tuples_removed : int; (* view tuples evicted by deletions *)
  mutable invalidations_avoided : int; (* per removal: query caches untouched *)
  mutable batches : int; (* handle_batch calls *)
  mutable batched_updates : int; (* updates received through handle_batch *)
  mutable batch_cancelled : int; (* updates collapsed by in-window net-op folding *)
  mutable batch_net_applied : int; (* net ops that survived the folding *)
}

let create ?(cache = false) ?(strategy = Cover.Upstream) ?(shards = 1) ?(metrics = false) () =
  if shards < 1 then invalid_arg "Tric.create: shards must be >= 1";
  let obs = if metrics then Some (make_obs ()) else None in
  let pool_obs = match obs with Some o -> Some o.reg | None -> None in
  {
    cache;
    strategy;
    nshards = shards;
    shards = Array.init shards (fun sid -> Shard.create ~metrics ~sid ~shards ~cache ());
    route = Route.create_table ~shards;
    pool =
      (if shards > 1 then Some (Pool.create ?obs:pool_obs ~workers:(shards - 1) ())
       else None);
    busy = Array.make shards 0.0;
    shard_ops = Array.make shards 0;
    obs;
    queries = Hashtbl.create 256;
    ops_routed = 0;
    removals = 0;
    noop_removals = 0;
    tuples_removed = 0;
    invalidations_avoided = 0;
    batches = 0;
    batched_updates = 0;
    batch_cancelled = 0;
    batch_net_applied = 0;
  }

let name t = if t.cache then "TRIC+" else "TRIC"
let num_shards t = t.nshards
let busy_times t = Array.copy t.busy
let busy_s t = Array.fold_left ( +. ) 0.0 t.busy
let shutdown t = Option.iter Pool.shutdown t.pool

let metrics_enabled t = Option.is_some t.obs

(* Merged snapshot: coordinator registry first, then every shard's in
   fixed shard order.  Always called between barriers (the coordinator
   API is single-threaded), so reading shard registries is race-free; all
   merge ops are commutative, so stable metrics come out identical at any
   shard count. *)
let metrics t =
  match t.obs with
  | None -> Tric_obs.Snapshot.empty
  | Some o ->
    let shard_regs =
      Array.to_list t.shards |> List.filter_map (fun sh -> Shard.registry sh)
    in
    Tric_obs.Snapshot.of_registries (o.reg :: shard_regs)

let spans t =
  match t.obs with Some o -> Tric_obs.Span.spans o.o_spans | None -> []

(* Dispatch one task per {e targeted} shard (ascending shard id), wait
   for all of them (pool [run] is a full barrier), account per-shard busy
   time, and gather results in ascending shard order — the determinism
   anchor for everything downstream.  Shards outside [sids] hold no trie
   node and no base view for any key the op feeds (the routing bitmaps
   certify exactly this), so skipping them is a semantic no-op and the
   per-op cost tracks affected shards, not shard count.  When a span is
   live, each targeted shard's busy seconds are filed as a stage (the
   per-shard trie-descent leg of the update's journey). *)
let dispatch ?(sp = Tric_obs.Span.none) t sids f =
  match sids with
  | [] -> [||]
  | sids ->
    let sids = Array.of_list sids in
    let tasks = Array.map (fun sid () -> f t.shards.(sid)) sids in
    let timed =
      match t.pool with Some pool -> Pool.run pool tasks | None -> Pool.run_seq tasks
    in
    Array.iteri (fun i (_, dt) -> t.busy.(sids.(i)) <- t.busy.(sids.(i)) +. dt) timed;
    (match t.obs with
    | Some o when sp >= 0 ->
      Tric_obs.Span.stage o.o_spans sp "scatter";
      Array.iteri
        (fun i (_, dt) ->
          Tric_obs.Span.stage_dur o.o_spans sp (Printf.sprintf "shard%d" sids.(i)) dt)
        timed
    | _ -> ());
    Array.map fst timed

(* Route one net op: the shards whose bitmaps any of the edge's four
   generalised keys hit, ascending.  Counted per (op, shard) pair so
   [shard_ops]/[ops_routed] is the mean dispatch fanout — ≈ nshards would
   mean we are still broadcasting. *)
let route_op t e =
  let sids = Route.shard_list (Route.targets t.route e) in
  t.ops_routed <- t.ops_routed + 1;
  List.iter (fun s -> t.shard_ops.(s) <- t.shard_ops.(s) + 1) sids;
  sids

(* Span plumbing: all no-ops (a single integer compare) when metrics are
   off — [Span.none] short-circuits without touching the clock. *)
let span_start t label =
  match t.obs with Some o -> Tric_obs.Span.start o.o_spans label | None -> Tric_obs.Span.none

let span_stage t sp name =
  match t.obs with Some o -> Tric_obs.Span.stage o.o_spans sp name | None -> ()

let add_query t pattern =
  let qid = Pattern.id pattern in
  if Hashtbl.mem t.queries qid then
    invalid_arg (Printf.sprintf "Tric.add_query: duplicate query id %d" qid);
  let paths = Array.of_list (Cover.extract ~strategy:t.strategy pattern) in
  let words = Array.map (fun p -> Path.keys pattern p) paths in
  (* [Route.place] rejects empty key words, and every word is placed
     before any shard state is touched, so a malformed pattern cannot
     leave a partially indexed query behind. *)
  let path_shards = Array.map (fun keys -> Route.place ~shards:t.nshards keys) words in
  (* Grow the dispatch bitmaps: after this, every key of every covering
     path names its owner shard, so updates route to exactly the shards
     whose tries (and base views) they can affect. *)
  Array.iteri
    (fun i keys ->
      List.iter (fun k -> Route.register t.route k ~shard:path_shards.(i)) keys)
    words;
  let terminals =
    Array.mapi
      (fun i keys ->
        Trie.insert_path (Shard.forest t.shards.(path_shards.(i))) keys ~qid
          ~path_index:i)
      words
  in
  let path_vids = Array.map Path.vids paths in
  let width = Pattern.num_vertices pattern in
  let path_embs =
    Array.mapi
      (fun i terminal ->
        Relation.fold
          (fun tu acc ->
            match Embedding.of_tuple ~width ~vids:path_vids.(i) tu with
            | Some e -> e :: acc
            | None -> acc)
          (Trie.node_view terminal) [])
      terminals
  in
  Hashtbl.add t.queries qid
    { pattern; paths; path_vids; path_shards; terminals; width; path_embs }

let remove_query t qid =
  (* Deregister the id from its terminal nodes so a later re-add of the id
     (possibly with a different pattern) cannot inherit stale delta
     attributions.  Trie structure shared with other queries survives;
     branches that held only this query's registrations are pruned
     bottom-up, and every key whose node set shrank gets its dispatch
     mask rebuilt from the forests — without this, long-lived churny
     query DBs decay dispatch fanout back toward broadcast. *)
  match Hashtbl.find_opt t.queries qid with
  | None -> false
  | Some info ->
    Array.iter (fun terminal -> Trie.deregister terminal ~qid) info.terminals;
    let affected = ref [] in
    Array.iteri
      (fun i terminal ->
        let forest = Shard.forest t.shards.(info.path_shards.(i)) in
        let keys, removes = Trie.prune forest terminal in
        (* Detached views leave the live-view eviction sum; keep the
           stats identity (audit: view eviction sum = tuples_removed). *)
        t.tuples_removed <- t.tuples_removed - removes;
        List.iter
          (fun k ->
            if not (List.exists (fun k' -> Ekey.equal k k') !affected) then
              affected := k :: !affected)
          keys)
      info.terminals;
    List.iter
      (fun k ->
        let mask = ref 0 in
        Array.iteri
          (fun s sh ->
            if Trie.nodes_with_key (Shard.forest sh) k <> [] then
              mask := !mask lor (1 lsl s))
          t.shards;
        if !mask = 0 then Route.clear t.route k else Route.set_bits t.route k !mask)
      !affected;
    Hashtbl.remove t.queries qid;
    true

let num_queries t = Hashtbl.length t.queries

(* -- Gather: merge per-shard deltas ----------------------------------------- *)

(* Merge shard deltas into per-live-query per-path packed-batch lists.
   Shards are visited in fixed order and each shard pre-sorts its deltas,
   so the merged lists are deterministic; moreover each (qid, path) is
   registered on exactly one shard, so the per-path lists never mix
   shards.  The batches are standalone flat copies (no row ids), so the
   coordinator holds no reference into any shard's arena. *)
let merge_deltas t per_shard =
  let per_query : (int, Rows.packed list array) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun deltas ->
      List.iter
        (fun (qid, pidx, packed) ->
          match Hashtbl.find_opt t.queries qid with
          | None -> ()
          | Some info ->
            let slots =
              match Hashtbl.find_opt per_query qid with
              | Some d -> d
              | None ->
                let d = Array.make (Array.length info.paths) [] in
                Hashtbl.add per_query qid d;
                d
            in
            slots.(pidx) <- packed :: slots.(pidx))
        deltas)
    per_shard;
  per_query

(* Turn a path's packed delta batches into partial embeddings of the
   query (enforcing repeated-variable equalities within the path) —
   straight from the flat cells, no boxed tuples. *)
let embeddings_of_packs ~width ~vids packs = Embjoin.of_packed ~width ~vids packs

(* Final per-query cross-path join (Fig. 8, lines 8-13): for every
   covering path that gained tuples, join its delta against the full
   (cached) results of the other paths, delta first.  This is the
   coordinator's finalize step — path deltas computed on different shards
   meet only here. *)
let query_new_matches info deltas =
  let k = Array.length info.paths in
  let delta_embs =
    Array.mapi
      (fun i delta -> embeddings_of_packs ~width:info.width ~vids:info.path_vids.(i) delta)
      deltas
  in
  (* Fold the deltas into the cached path results first, so "other path"
     operands see this round's tuples too. *)
  Array.iteri
    (fun i d -> if d <> [] then info.path_embs.(i) <- d @ info.path_embs.(i))
    delta_embs;
  let results = ref [] in
  Array.iteri
    (fun i delta_emb ->
      if delta_emb <> [] then begin
        let operands =
          delta_emb
          :: List.filter_map
               (fun j -> if j = i then None else Some info.path_embs.(j))
               (List.init k Fun.id)
        in
        results := Embjoin.join_many operands @ !results
      end)
    delta_embs;
  List.filter Embedding.is_total (Embjoin.dedup !results)

let report_of_deltas ?(sp = Tric_obs.Span.none) t per_shard =
  let t0 = match t.obs with Some _ -> Unix.gettimeofday () | None -> 0.0 in
  let per_query = merge_deltas t per_shard in
  (match t.obs with
  | Some o ->
    Tric_obs.Histogram.observe o.o_gather_s (Unix.gettimeofday () -. t0);
    Tric_obs.Span.stage o.o_spans sp "gather"
  | None -> ());
  let t1 = match t.obs with Some _ -> Unix.gettimeofday () | None -> 0.0 in
  (* Distribute the final cross-path joins over the domain pool by
     hashing join ownership on the query id: group [g] owns the queries
     with [qid mod nshards = g].  Each query appears in exactly one
     group, [query_new_matches] touches only that query's [path_embs],
     and the coordinator prefetches the query infos here, so tasks never
     read the queries table — disjoint mutation, no synchronisation.
     Per-query results are deterministic and the final sort fixes report
     order, so grouping does not affect output. *)
  let groups = Array.make t.nshards [] in
  Hashtbl.iter
    (fun qid deltas ->
      let info = Hashtbl.find t.queries qid in
      let g = qid mod t.nshards in
      groups.(g) <- (qid, info, deltas) :: groups.(g))
    per_query;
  let gids = List.filter (fun g -> groups.(g) <> []) (List.init t.nshards Fun.id) in
  let tasks =
    Array.of_list
      (List.map
         (fun g () ->
           List.filter_map
             (fun (qid, info, deltas) ->
               match query_new_matches info deltas with
               | [] -> None
               | matches -> Some (qid, matches))
             groups.(g))
         gids)
  in
  let timed =
    match t.pool with Some pool -> Pool.run pool tasks | None -> Pool.run_seq tasks
  in
  List.iteri (fun i g -> t.busy.(g) <- t.busy.(g) +. snd timed.(i)) gids;
  let out = List.concat_map (fun (res, _) -> res) (Array.to_list timed) in
  (match t.obs with
  | Some o ->
    (* Telemetry strictly after the barrier, on the coordinator. *)
    List.iter
      (fun (_, matches) ->
        Tric_obs.Registry.add o.o_matches (List.length matches);
        Tric_obs.Histogram.observe o.o_join_fanout (float_of_int (List.length matches)))
      out;
    Tric_obs.Histogram.observe o.o_join_s (Unix.gettimeofday () -. t1);
    Tric_obs.Span.stage o.o_spans sp "join"
  | None -> ());
  List.sort (fun (a, _) (b, _) -> Int.compare a b) out

(* -- Removal bookkeeping ----------------------------------------------------- *)

(* The retraction mirror of [query_new_matches]: join each path's dead
   delta against the other paths' cached results {e before} the caches
   are subtracted.  Covering paths cover every pattern edge, so any live
   match using the removed edge projects onto a dead tuple of at least
   one path; the other paths' pre-subtraction caches still hold all of
   its remaining projections iff the match was live — so the join
   reconstructs exactly the destroyed matches.  A match whose edge dies
   on several paths is found once per such path; the final dedup
   collapses it. *)
let query_retractions info deltas =
  let k = Array.length info.paths in
  let dead_embs =
    Array.mapi
      (fun i delta -> embeddings_of_packs ~width:info.width ~vids:info.path_vids.(i) delta)
      deltas
  in
  let results = ref [] in
  Array.iteri
    (fun i dead ->
      if dead <> [] then begin
        let operands =
          dead
          :: List.filter_map
               (fun j -> if j = i then None else Some info.path_embs.(j))
               (List.init k Fun.id)
        in
        results := Embjoin.join_many operands @ !results
      end)
    dead_embs;
  List.filter Embedding.is_total (Embjoin.dedup !results)

(* Union several per-removal retraction channels into one sorted,
   deduplicated (qid, embeddings) list. *)
let merge_retraction_channels = function
  | [] -> []
  | [ one ] -> one
  | lists ->
    let tbl : (int, Embedding.t list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (List.iter (fun (qid, embs) ->
           match Hashtbl.find_opt tbl qid with
           | Some cell -> cell := embs @ !cell
           | None -> Hashtbl.add tbl qid (ref embs)))
      lists;
    Hashtbl.fold
      (fun qid cell acc -> (qid, List.sort_uniq Embedding.compare !cell) :: acc)
      tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* Per-query delta invalidation: subtract exactly the embeddings of the
   tuples evicted at each registered terminal from the owning query's
   cached per-path results.  Queries whose terminals lost nothing keep
   their caches untouched.  Returns the set of touched query ids. *)
let apply_removal_deltas t per_query =
  let touched = ref [] in
  Hashtbl.iter
    (fun qid deltas ->
      let info = Hashtbl.find t.queries qid in
      let any = ref false in
      Array.iteri
        (fun i delta ->
          match embeddings_of_packs ~width:info.width ~vids:info.path_vids.(i) delta with
          | [] -> ()
          | dead ->
            any := true;
            (* View tuples are distinct and tuple -> embedding is injective
               for a fixed vid sequence, so the dead embeddings are distinct
               and each occurs exactly once in the cached list; subtract one
               occurrence per dead embedding. *)
            let dead_tbl = Embedding.Tbl.create (2 * List.length dead) in
            List.iter (fun em -> Embedding.Tbl.replace dead_tbl em ()) dead;
            info.path_embs.(i) <-
              List.filter
                (fun em ->
                  if Embedding.Tbl.mem dead_tbl em then begin
                    Embedding.Tbl.remove dead_tbl em;
                    false
                  end
                  else true)
                info.path_embs.(i))
        deltas;
      if !any then touched := qid :: !touched)
    per_query;
  !touched

(* Account one removal given its gathered per-shard deltas and the total
   evicted-tuple count summed over shards.  Returns the removal's
   retraction channel: per affected query (ascending id), the live
   matches the eviction destroyed — computed against the pre-subtraction
   caches, then the caches are subtracted. *)
let account_removal t removed per_shard_deltas =
  t.removals <- t.removals + 1;
  t.tuples_removed <- t.tuples_removed + removed;
  if removed = 0 then begin
    (* No-op removal (absent edge, or no view retained it): every cache
       survives verbatim. *)
    t.noop_removals <- t.noop_removals + 1;
    t.invalidations_avoided <- t.invalidations_avoided + num_queries t;
    []
  end
  else begin
    let per_query = merge_deltas t per_shard_deltas in
    let retractions =
      Hashtbl.fold
        (fun qid deltas acc ->
          let info = Hashtbl.find t.queries qid in
          match query_retractions info deltas with
          | [] -> acc
          | dead -> (qid, dead) :: acc)
        per_query []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    let touched = apply_removal_deltas t per_query in
    t.invalidations_avoided <-
      t.invalidations_avoided + (num_queries t - List.length touched);
    retractions
  end

let apply_removal ?(sp = Tric_obs.Span.none) t sids e =
  let results = dispatch ~sp t sids (fun sh -> Shard.apply_remove sh e) in
  let removed = Array.fold_left (fun acc (_, c) -> acc + c) 0 results in
  let retractions = account_removal t removed (Array.map fst results) in
  span_stage t sp "subtract";
  retractions

let handle_update t u =
  (match t.obs with Some o -> Tric_obs.Registry.incr o.o_updates | None -> ());
  match u.Update.op with
  | Update.Add e ->
    (match t.obs with Some o -> Tric_obs.Registry.incr o.o_additions | None -> ());
    let sp = span_start t "add" in
    (match route_op t e with
    | [] ->
      (* No registered key generalises this edge: no shard holds a view
         it could feed, so there is nothing to do and nothing to report —
         on any shard count, including 1. *)
      ([], [])
    | sids ->
      let per_shard = dispatch ~sp t sids (fun sh -> Shard.apply_add sh e) in
      (report_of_deltas ~sp t per_shard, []))
  | Update.Remove e ->
    (match t.obs with Some o -> Tric_obs.Registry.incr o.o_removals | None -> ());
    let sp = span_start t "remove" in
    let retractions =
      match route_op t e with
      | [] ->
        (* Still a removal for the accounting identities — just a provably
           no-op one. *)
        account_removal t 0 [||]
      | sids -> apply_removal ~sp t sids e
    in
    ([], retractions)

(* -- Micro-batches ----------------------------------------------------------- *)

let handle_batch t updates =
  t.batches <- t.batches + 1;
  t.batched_updates <- t.batched_updates + List.length updates;
  let sp = span_start t "batch" in
  (match t.obs with
  | Some o ->
    Tric_obs.Registry.incr o.o_batches;
    Tric_obs.Registry.add o.o_updates (List.length updates);
    List.iter
      (fun u ->
        if Update.is_addition u then Tric_obs.Registry.incr o.o_additions
        else Tric_obs.Registry.incr o.o_removals)
      updates
  | None -> ());
  (* Net effect per edge: views are joins over deduplicated base sets, so
     within one window only an edge's final polarity matters — duplicates
     collapse and an [Add e; ...; Remove e] window cancels down to one
     (possibly no-op) removal.  Replaying the net ops reaches exactly the
     state of sequential replay; matches that exist only transiently
     inside the window are intentionally never materialised or reported. *)
  let last : bool Edge.Tbl.t = Edge.Tbl.create (2 * List.length updates) in
  let order = ref [] in
  List.iter
    (fun u ->
      let e = Update.edge u in
      if not (Edge.Tbl.mem last e) then order := e :: !order;
      Edge.Tbl.replace last e (Update.is_addition u))
    updates;
  let removals, additions =
    List.partition_map
      (fun e -> if Edge.Tbl.find last e then Either.Right e else Either.Left e)
      (List.rev !order)
  in
  t.batch_cancelled <-
    t.batch_cancelled
    + (List.length updates - List.length removals - List.length additions);
  t.batch_net_applied <- t.batch_net_applied + List.length removals + List.length additions;
  span_stage t sp "fold";
  (* Route each net op to the shards its keys can affect and build
     per-shard op queues in window order, so one pool task carries the
     whole window's work for each targeted shard.  Within a task the
     shard applies its removals in order and then its additions as one
     amortised sweep; shard state is disjoint across shards, and the
     coordinator below replays its cache subtractions removal by removal
     before consuming any addition delta — exactly the sequential
     schedule, whatever the shard interleaving in wall time. *)
  let rem_q = Array.make t.nshards [] in
  let add_q = Array.make t.nshards [] in
  let rem_targets =
    List.map
      (fun e ->
        let sids = route_op t e in
        List.iter (fun s -> rem_q.(s) <- e :: rem_q.(s)) sids;
        sids)
      removals
  in
  List.iter
    (fun e ->
      let sids = route_op t e in
      List.iter (fun s -> add_q.(s) <- e :: add_q.(s)) sids)
    additions;
  let active =
    List.filter
      (fun s -> rem_q.(s) <> [] || add_q.(s) <> [])
      (List.init t.nshards Fun.id)
  in
  let results =
    dispatch ~sp t active (fun sh ->
        let s = Shard.sid sh in
        (* Folded net-op count for this shard: the batch's addition queue
           length pre-sizes the shard's sweep accumulators and arenas. *)
        Shard.apply_ops ~expect:(List.length add_q.(s)) sh
          ~removals:(List.rev rem_q.(s))
          ~additions:(List.rev add_q.(s)))
  in
  let rem_res = Array.make t.nshards [||] in
  let add_res = Array.make t.nshards [] in
  List.iteri
    (fun i s ->
      let removed, added = results.(i) in
      rem_res.(s) <- removed;
      add_res.(s) <- added)
    active;
  (* Account removals in window order.  Shard [s]'s result array lists
     only the removals routed to [s], so walk each with a cursor; an
     unrouted removal is a provable no-op and is accounted as such.
     Per-removal retraction channels accumulate: once a removal retracts
     a match, its cache support is subtracted, so a later removal in the
     same window cannot retract it again — the union is duplicate-free
     across removals and the merge only unions distinct matches per
     query. *)
  let retractions =
    match removals with
    | [] -> []
    | _ ->
      let cursor = Array.make t.nshards 0 in
      let acc = ref [] in
      List.iter2
        (fun _e sids ->
          let per =
            List.map
              (fun s ->
                let slot = rem_res.(s).(cursor.(s)) in
                cursor.(s) <- cursor.(s) + 1;
                slot)
              sids
          in
          let removed = List.fold_left (fun acc (_, c) -> acc + c) 0 per in
          match account_removal t removed (Array.of_list (List.map fst per)) with
          | [] -> ()
          | retr -> acc := retr :: !acc)
        removals rem_targets;
      span_stage t sp "subtract";
      merge_retraction_channels (List.rev !acc)
  in
  match additions with
  | [] -> ([], retractions)
  | _ ->
    let per_shard = Array.of_list (List.map (fun s -> add_res.(s)) active) in
    (report_of_deltas ~sp t per_shard, retractions)

(* -- Probes ---------------------------------------------------------------- *)

let current_matches t qid =
  let info = Hashtbl.find t.queries qid in
  List.filter Embedding.is_total (Embjoin.join_many (Array.to_list info.path_embs))

let covering_paths t qid =
  let info = Hashtbl.find t.queries qid in
  Array.to_list info.paths

let forests t = Array.map Shard.forest t.shards

let forest t =
  if t.nshards <> 1 then
    invalid_arg "Tric.forest: engine is sharded — use Tric.forests";
  Shard.forest t.shards.(0)

type stats = {
  queries : int;
  shards : int;
  tries : int;
  trie_nodes : int;
  base_views : int;
  view_tuples : int;
  index_rebuilds : int;
  removals : int;
  noop_removals : int;
  tuples_removed : int;
  invalidations_avoided : int;
  delta_probes : int;
  batches : int;
  batched_updates : int;
  batch_cancelled : int;
  batch_net_applied : int;
  ops_routed : int;
  ops_dispatched : int;
  shard_ops : int array;
}

let stats (t : t) =
  let fold_forests f init =
    Array.fold_left (fun acc sh -> f (Shard.forest sh) acc) init t.shards
  in
  let view_tuples, rebuilds, delta_probes =
    fold_forests
      (fun forest acc ->
        Trie.fold_nodes
          (fun n (tuples, rb, dp) ->
            ( tuples + Relation.cardinality (Trie.node_view n),
              rb + Relation.stats_rebuilds (Trie.node_view n),
              dp + Relation.stats_delta_probes (Trie.node_view n) ))
          forest acc)
      (0, 0, 0)
  in
  {
    queries = num_queries t;
    shards = t.nshards;
    tries = fold_forests (fun f acc -> acc + Trie.num_tries f) 0;
    trie_nodes = fold_forests (fun f acc -> acc + Trie.num_nodes f) 0;
    base_views = fold_forests (fun f acc -> acc + Trie.num_base_views f) 0;
    view_tuples;
    index_rebuilds = rebuilds;
    removals = t.removals;
    noop_removals = t.noop_removals;
    tuples_removed = t.tuples_removed;
    invalidations_avoided = t.invalidations_avoided;
    delta_probes;
    batches = t.batches;
    batched_updates = t.batched_updates;
    batch_cancelled = t.batch_cancelled;
    batch_net_applied = t.batch_net_applied;
    ops_routed = t.ops_routed;
    ops_dispatched = Array.fold_left ( + ) 0 t.shard_ops;
    shard_ops = Array.copy t.shard_ops;
  }

(* Per-shard packed-memory triples, ascending shard id — the [mem] block
   of [tric_cli stats].  Reading shard arenas is safe here: the
   coordinator API is single-threaded and runs strictly between pool
   barriers. *)
let mem_stats (t : t) = Array.map Shard.mem_stats t.shards

let pp_stats fmt s =
  Format.fprintf fmt
    "queries=%d shards=%d tries=%d nodes=%d base_views=%d view_tuples=%d rebuilds=%d \
     removals=%d noop_removals=%d tuples_removed=%d invalidations_avoided=%d \
     delta_probes=%d batches=%d batched_updates=%d batch_cancelled=%d \
     batch_net_applied=%d ops_routed=%d ops_dispatched=%d"
    s.queries s.shards s.tries s.trie_nodes s.base_views s.view_tuples s.index_rebuilds
    s.removals s.noop_removals s.tuples_removed s.invalidations_avoided s.delta_probes
    s.batches s.batched_updates s.batch_cancelled s.batch_net_applied s.ops_routed
    s.ops_dispatched

(* -- Audit access ----------------------------------------------------------- *)

type query_view = {
  qv_pattern : Pattern.t;
  qv_paths : Path.t array;
  qv_path_vids : int array array;
  qv_path_shards : int array;
  qv_terminals : Trie.node array;
  qv_width : int;
  qv_path_embs : Embedding.t list array;
}

let query_views (t : t) =
  Hashtbl.fold
    (fun qid info acc ->
      ( qid,
        {
          qv_pattern = info.pattern;
          qv_paths = info.paths;
          qv_path_vids = info.path_vids;
          qv_path_shards = info.path_shards;
          qv_terminals = info.terminals;
          qv_width = info.width;
          qv_path_embs = Array.copy info.path_embs;
        } )
      :: acc)
    t.queries []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let is_caching (t : t) = t.cache

let route_bits (t : t) = Route.fold (fun k mask acc -> (k, mask) :: acc) t.route []

(* -- Test-only corruption hooks --------------------------------------------- *)

module Corrupt = struct
  let first_query (t : t) =
    Hashtbl.fold
      (fun qid info acc ->
        match acc with Some (q, _) when q <= qid -> acc | _ -> Some (qid, info))
      t.queries None

  let skew_path_cache t =
    match first_query t with
    | None -> false
    | Some (_, info) ->
      let skewed = ref false in
      Array.iteri
        (fun i embs ->
          if (not !skewed) && embs <> [] then begin
            info.path_embs.(i) <- List.tl embs;
            skewed := true
          end)
        info.path_embs;
      !skewed

  let desync_stats (t : t) = t.tuples_removed <- t.tuples_removed + 1

  let drop_registration t =
    match first_query t with
    | None -> false
    | Some (qid, info) ->
      Array.length info.terminals > 0
      &&
      (Trie.deregister info.terminals.(0) ~qid;
       true)

  let phantom_view_tuple (t : t) =
    (* Prefer an unregistered (non-terminal) node so only the
       view-coherence invariant trips, not the per-query caches that
       mirror terminal views. *)
    let pick =
      Array.fold_left
        (fun acc sh ->
          Trie.fold_nodes
            (fun n acc ->
              match acc with
              | Some best ->
                if Trie.registrations best <> [] && Trie.registrations n = [] then
                  Some n
                else acc
              | None -> Some n)
            (Shard.forest sh) acc)
        None t.shards
    in
    match pick with
    | None -> false
    | Some node ->
      let width = Trie.node_depth node + 2 in
      let tu =
        Tuple.make (Array.init width (fun _ -> Label.fresh "corrupt"))
      in
      Relation.insert (Trie.node_view node) tu

  let drop_route_bit (t : t) =
    (* Clear the lowest bit of some registered key's mask: the dispatcher
       would now skip a shard whose forest does hold nodes for the key. *)
    let pick =
      Route.fold
        (fun k m acc -> match acc with None when m <> 0 -> Some (k, m) | _ -> acc)
        t.route None
    in
    match pick with
    | None -> false
    | Some (k, m) ->
      Route.set_bits t.route k (m land (m - 1));
      true

  let phantom_route_bit (t : t) =
    (* Set a bit for a shard holding no node for the key: the dispatcher
       would now pay a provably dead task for every matching op. *)
    let full = (1 lsl t.nshards) - 1 in
    let pick =
      Route.fold
        (fun k m acc ->
          match acc with None when m <> 0 && m <> full -> Some (k, m) | _ -> acc)
        t.route None
    in
    match pick with
    | None -> false
    | Some (k, m) ->
      let s = ref 0 in
      while Route.mem_shard m !s do
        incr s
      done;
      Route.set_bits t.route k (m lor (1 lsl !s));
      true

  let misroute_path (t : t) =
    if t.nshards < 2 then false
    else
      match first_query t with
      | None -> false
      | Some (qid, info) ->
        if Array.length info.paths = 0 then false
        else begin
          match Path.keys info.pattern info.paths.(0) with
          | [] -> false
          | first :: _ as keys ->
            let right = Route.owner ~shards:t.nshards first in
            let wrong = (right + 1) mod t.nshards in
            ignore
              (Trie.insert_path (Shard.forest t.shards.(wrong)) keys ~qid
                 ~path_index:0);
            true
        end
end
