open Tric_graph
open Tric_query
open Tric_rel

type query_info = {
  pattern : Pattern.t;
  paths : Path.t array;
  path_vids : int array array; (* per path: chain vertex-id sequence *)
  terminals : Trie.node array;
  width : int; (* pattern vertex count *)
  (* The per-covering-path result as partial embeddings — the paper's
     matV[P_i], kept in join-ready form and maintained incrementally in
     both directions: addition deltas are appended as they are reported,
     and deletion deltas are subtracted tuple-for-tuple (§4.3).  The lists
     mirror the terminal views exactly, so no epoch/refresh machinery is
     needed. *)
  mutable path_embs : Embedding.t list array;
}

type t = {
  cache : bool;
  strategy : Cover.strategy;
  forest : Trie.t;
  queries : (int, query_info) Hashtbl.t;
  mutable removals : int; (* Remove updates processed *)
  mutable noop_removals : int; (* removals that evicted nothing anywhere *)
  mutable tuples_removed : int; (* view tuples evicted by deletions *)
  mutable invalidations_avoided : int; (* per removal: query caches untouched *)
  mutable batches : int; (* handle_batch calls *)
  mutable batched_updates : int; (* updates received through handle_batch *)
  mutable batch_cancelled : int; (* updates collapsed by in-window net-op folding *)
  mutable batch_net_applied : int; (* net ops that survived the folding *)
}

let create ?(cache = false) ?(strategy = Cover.Upstream) () =
  {
    cache;
    strategy;
    forest = Trie.create ~cache;
    queries = Hashtbl.create 256;
    removals = 0;
    noop_removals = 0;
    tuples_removed = 0;
    invalidations_avoided = 0;
    batches = 0;
    batched_updates = 0;
    batch_cancelled = 0;
    batch_net_applied = 0;
  }

let name t = if t.cache then "TRIC+" else "TRIC"

let add_query t pattern =
  let qid = Pattern.id pattern in
  if Hashtbl.mem t.queries qid then
    invalid_arg (Printf.sprintf "Tric.add_query: duplicate query id %d" qid);
  let paths = Array.of_list (Cover.extract ~strategy:t.strategy pattern) in
  let terminals =
    Array.mapi
      (fun i p -> Trie.insert_path t.forest (Path.keys pattern p) ~qid ~path_index:i)
      paths
  in
  let path_vids = Array.map Path.vids paths in
  let width = Pattern.num_vertices pattern in
  let path_embs =
    Array.mapi
      (fun i terminal ->
        Relation.fold
          (fun tu acc ->
            match Embedding.of_tuple ~width ~vids:path_vids.(i) tu with
            | Some e -> e :: acc
            | None -> acc)
          (Trie.node_view terminal) [])
      terminals
  in
  Hashtbl.add t.queries qid { pattern; paths; path_vids; terminals; width; path_embs }

let remove_query t qid =
  (* Deregister the id from its terminal nodes so a later re-add of the id
     (possibly with a different pattern) cannot inherit stale delta
     attributions.  Shared trie structure and views are intentionally
     retained (other queries use them). *)
  match Hashtbl.find_opt t.queries qid with
  | None -> false
  | Some info ->
    Array.iter (fun terminal -> Trie.deregister terminal ~qid) info.terminals;
    Hashtbl.remove t.queries qid;
    true

let num_queries t = Hashtbl.length t.queries

(* -- Answering: additions ------------------------------------------------- *)

(* All trie nodes whose key matches the edge, shallowest first so that by
   the time a node joins the update against its parent's view, the parent's
   view is fully up to date. *)
let matched_nodes t (e : Edge.t) =
  let nodes =
    List.concat_map (fun k -> Trie.nodes_with_key t.forest k) (Ekey.keys_of_edge e)
  in
  List.sort (fun a b -> Int.compare (Trie.node_depth a) (Trie.node_depth b)) nodes

(* Delta propagation (Fig. 10): push the parent's freshly inserted tuples
   into each child by joining them with the child's base view, pruning
   branches where the delta dies out.  Records inserted tuples per node. *)
let rec propagate t ~record node delta =
  List.iter
    (fun child ->
      match Trie.base_view t.forest (Trie.node_key child) with
      | None -> ()
      | Some base ->
        if not (Relation.is_empty base) then begin
          let extensions =
            if t.cache then begin
              (* TRIC+: probe the maintained index of the base view. *)
              let probe = Relation.index_on base ~col:0 in
              List.concat_map
                (fun tu ->
                  List.map
                    (fun btu -> Tuple.extend tu (Tuple.get btu 1))
                    (probe (Tuple.last tu)))
                delta
            end
            else begin
              (* TRIC: classic hash join — build on the smaller side (the
                 delta), scan the base view probing it. *)
              let built : Tuple.t list ref Label.Tbl.t =
                Label.Tbl.create (2 * List.length delta)
              in
              List.iter
                (fun tu ->
                  let key = Tuple.last tu in
                  match Label.Tbl.find_opt built key with
                  | Some cell -> cell := tu :: !cell
                  | None -> Label.Tbl.add built key (ref [ tu ]))
                delta;
              let out = ref [] in
              Relation.scan_probing base ~col:0
                (fun hinge ->
                  match Label.Tbl.find_opt built hinge with
                  | Some cell -> !cell
                  | None -> [])
                (fun btu tu -> out := Tuple.extend tu (Tuple.get btu 1) :: !out);
              !out
            end
          in
          let inserted = Relation.insert_all (Trie.node_view child) extensions in
          if inserted <> [] then begin
            record child inserted;
            propagate t ~record child inserted
          end
        end)
    (Trie.node_children node)

let handle_addition t (e : Edge.t) =
  (* Feed the base views of the four generalised keys. *)
  let tuple = Tuple.of_edge e in
  List.iter
    (fun k ->
      match Trie.base_view t.forest k with
      | Some base -> ignore (Relation.insert base tuple)
      | None -> ())
    (Ekey.keys_of_edge e);
  (* Visit matching trie nodes shallow-first. *)
  let inserted_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    match Hashtbl.find_opt inserted_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add inserted_at (Trie.node_id node) (node, ref tuples)
  in
  List.iter
    (fun node ->
      let delta =
        match Trie.node_parent node with
        | None -> [ tuple ]
        | Some parent ->
          let hinge_col = Trie.node_depth node in
          let parents =
            if t.cache then
              (* TRIC+: maintained index on the parent view's hinge. *)
              Relation.index_on (Trie.node_view parent) ~col:hinge_col e.src
            else
              (* TRIC: build on the single-tuple update, scan the parent. *)
              Relation.probe_scan (Trie.node_view parent) ~col:hinge_col e.src
          in
          List.map (fun ptu -> Tuple.extend ptu e.dst) parents
      in
      let inserted = Relation.insert_all (Trie.node_view node) delta in
      if inserted <> [] then begin
        record node inserted;
        propagate t ~record node inserted
      end)
    (matched_nodes t e);
  inserted_at

(* Turn a view's tuples into partial embeddings of the query (enforcing
   repeated-variable equalities within the path). *)
let embeddings_of_tuples ~width ~vids tuples =
  List.filter_map (fun tu -> Embedding.of_tuple ~width ~vids tu) tuples

(* Final per-query join (Fig. 8, lines 8-13): for every covering path that
   gained tuples, join its delta against the full (cached) results of the
   other paths, delta first. *)
let query_new_matches info deltas =
  let k = Array.length info.paths in
  let delta_embs =
    Array.mapi
      (fun i delta -> embeddings_of_tuples ~width:info.width ~vids:info.path_vids.(i) delta)
      deltas
  in
  (* Fold the deltas into the cached path results first, so "other path"
     operands see this round's tuples too. *)
  Array.iteri
    (fun i d -> if d <> [] then info.path_embs.(i) <- d @ info.path_embs.(i))
    delta_embs;
  let results = ref [] in
  Array.iteri
    (fun i delta_emb ->
      if delta_emb <> [] then begin
        let operands =
          delta_emb
          :: List.filter_map
               (fun j -> if j = i then None else Some info.path_embs.(j))
               (List.init k Fun.id)
        in
        results := Embjoin.join_many operands @ !results
      end)
    delta_embs;
  List.filter Embedding.is_total (Embjoin.dedup !results)

(* Gather, per live query, the delta tuples that reached each of its
   registered terminal nodes. *)
let deltas_per_query t tuples_at =
  let per_query : (int, Tuple.t list array) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _nid (node, cell) ->
      List.iter
        (fun (qid, pidx) ->
          match Hashtbl.find_opt t.queries qid with
          | None -> ()
          | Some info ->
            let deltas =
              match Hashtbl.find_opt per_query qid with
              | Some d -> d
              | None ->
                let d = Array.make (Array.length info.paths) [] in
                Hashtbl.add per_query qid d;
                d
            in
            deltas.(pidx) <- !cell @ deltas.(pidx))
        (Trie.registrations node))
    tuples_at;
  per_query

let report_of_inserted t inserted_at =
  let per_query = deltas_per_query t inserted_at in
  let out = ref [] in
  Hashtbl.iter
    (fun qid deltas ->
      let info = Hashtbl.find t.queries qid in
      match query_new_matches info deltas with
      | [] -> ()
      | matches -> out := (qid, matches) :: !out)
    per_query;
  List.sort (fun (a, _) (b, _) -> Int.compare a b) !out

(* -- Answering: removals (§4.3) ------------------------------------------- *)

(* A child tuple extends exactly one parent tuple (its prefix), so the
   child's casualties are exactly the extensions of doomed parent tuples —
   found by probing the child view's maintained prefix index, not by
   scanning the view.  Doomed parent tuples are distinct, so the probed
   buckets are disjoint and need no dedup.  Records evicted tuples per
   node. *)
let rec propagate_removal ~record node doomed =
  List.iter
    (fun child ->
      let view = Trie.node_view child in
      let doomed_child = List.concat_map (fun d -> Relation.probe_prefix view d) doomed in
      if doomed_child <> [] then begin
        ignore (Relation.remove_all view doomed_child);
        record child doomed_child;
        propagate_removal ~record child doomed_child
      end)
    (Trie.node_children node)

let handle_removal t (e : Edge.t) =
  let tuple = Tuple.of_edge e in
  List.iter
    (fun k ->
      match Trie.base_view t.forest k with
      | Some base -> ignore (Relation.remove base tuple)
      | None -> ())
    (Ekey.keys_of_edge e);
  let removed_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    match Hashtbl.find_opt removed_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add removed_at (Trie.node_id node) (node, ref tuples)
  in
  (* Shallow-first: a matched node's own hinge casualties are looked up by
     index; by the time a deeper matched node is visited, tuples already
     evicted through propagation are gone from its hinge index, so nothing
     is recorded twice. *)
  List.iter
    (fun node ->
      let view = Trie.node_view node in
      let doomed = Relation.probe_hinge view ~src:e.src ~dst:e.dst in
      if doomed <> [] then begin
        ignore (Relation.remove_all view doomed);
        record node doomed;
        propagate_removal ~record node doomed
      end)
    (matched_nodes t e);
  removed_at

(* Per-query delta invalidation: subtract exactly the embeddings of the
   tuples evicted at each registered terminal from the owning query's
   cached per-path results.  Queries whose terminals lost nothing keep
   their caches untouched.  Returns the set of touched query ids. *)
let apply_removal_deltas t removed_at =
  let per_query = deltas_per_query t removed_at in
  let touched = ref [] in
  Hashtbl.iter
    (fun qid deltas ->
      let info = Hashtbl.find t.queries qid in
      let any = ref false in
      Array.iteri
        (fun i delta ->
          match embeddings_of_tuples ~width:info.width ~vids:info.path_vids.(i) delta with
          | [] -> ()
          | dead ->
            any := true;
            (* View tuples are distinct and tuple -> embedding is injective
               for a fixed vid sequence, so the dead embeddings are distinct
               and each occurs exactly once in the cached list; subtract one
               occurrence per dead embedding. *)
            let dead_tbl = Embedding.Tbl.create (2 * List.length dead) in
            List.iter (fun em -> Embedding.Tbl.replace dead_tbl em ()) dead;
            info.path_embs.(i) <-
              List.filter
                (fun em ->
                  if Embedding.Tbl.mem dead_tbl em then begin
                    Embedding.Tbl.remove dead_tbl em;
                    false
                  end
                  else true)
                info.path_embs.(i))
        deltas;
      if !any then touched := qid :: !touched)
    per_query;
  !touched

let apply_removal t e =
  let removed_at = handle_removal t e in
  let removed =
    Hashtbl.fold (fun _ (_, cell) acc -> acc + List.length !cell) removed_at 0
  in
  t.removals <- t.removals + 1;
  t.tuples_removed <- t.tuples_removed + removed;
  if removed = 0 then begin
    (* No-op removal (absent edge, or no view retained it): every cache
       survives verbatim. *)
    t.noop_removals <- t.noop_removals + 1;
    t.invalidations_avoided <- t.invalidations_avoided + num_queries t
  end
  else begin
    let touched = apply_removal_deltas t removed_at in
    t.invalidations_avoided <-
      t.invalidations_avoided + (num_queries t - List.length touched)
  end

let handle_update t u =
  match u with
  | Update.Add e ->
    let inserted_at = handle_addition t e in
    if Hashtbl.length inserted_at = 0 then [] else report_of_inserted t inserted_at
  | Update.Remove e ->
    apply_removal t e;
    []

(* -- Answering: micro-batches ---------------------------------------------- *)

(* Batched addition sweep: the per-update answering loop (Fig. 10),
   amortised over a window of edges.  Every fresh edge tuple is first
   folded into the base views; then each affected trie node is visited
   once — shallowest first across the whole batch, so by the time a node
   joins its key's accumulated delta against the parent's view, the parent
   has absorbed every shallower batch delta (its own sweep visit plus any
   downward propagation from its ancestors, both strictly shallower).
   In TRIC mode this performs one hash-join build + one parent-view scan
   per node per batch (the build side is the whole key delta) instead of
   one scan per node per update; TRIC+ probes its maintained index per
   fresh tuple as before, but still saves the per-update node locating
   and sorting.  Downward propagation reuses [propagate], whose per-child
   join now also runs once per accumulated delta. *)
let handle_additions_batch t (edges : Edge.t list) =
  (* Feed the base views; remember, per key, the edge tuples that were new. *)
  let fresh_by_key : Tuple.t list ref Ekey.Tbl.t = Ekey.Tbl.create 64 in
  List.iter
    (fun (e : Edge.t) ->
      let tuple = Tuple.of_edge e in
      List.iter
        (fun k ->
          match Trie.base_view t.forest k with
          | Some base ->
            if Relation.insert base tuple then begin
              match Ekey.Tbl.find_opt fresh_by_key k with
              | Some cell -> cell := tuple :: !cell
              | None -> Ekey.Tbl.add fresh_by_key k (ref [ tuple ])
            end
          | None -> ())
        (Ekey.keys_of_edge e))
    edges;
  (* Every node whose key gained base tuples, shallowest first. *)
  let seeds =
    Ekey.Tbl.fold
      (fun k cell acc ->
        List.fold_left
          (fun acc n -> (n, !cell) :: acc)
          acc
          (Trie.nodes_with_key t.forest k))
      fresh_by_key []
    |> List.sort (fun (a, _) (b, _) ->
           Int.compare (Trie.node_depth a) (Trie.node_depth b))
  in
  let inserted_at : (int, Trie.node * Tuple.t list ref) Hashtbl.t = Hashtbl.create 32 in
  let record node tuples =
    match Hashtbl.find_opt inserted_at (Trie.node_id node) with
    | Some (_, cell) -> cell := tuples @ !cell
    | None -> Hashtbl.add inserted_at (Trie.node_id node) (node, ref tuples)
  in
  List.iter
    (fun (node, fresh) ->
      let delta =
        match Trie.node_parent node with
        | None -> fresh
        | Some parent ->
          let hinge_col = Trie.node_depth node in
          let view = Trie.node_view parent in
          if t.cache then
            (* TRIC+: maintained index on the parent view's hinge column. *)
            let probe = Relation.index_on view ~col:hinge_col in
            List.concat_map
              (fun etu ->
                List.map
                  (fun ptu -> Tuple.extend ptu (Tuple.get etu 1))
                  (probe (Tuple.get etu 0)))
              fresh
          else begin
            (* TRIC: build on the batch's key delta, scan the parent once
               for the whole window. *)
            let built : Tuple.t list ref Label.Tbl.t =
              Label.Tbl.create (2 * List.length fresh)
            in
            List.iter
              (fun etu ->
                let key = Tuple.get etu 0 in
                match Label.Tbl.find_opt built key with
                | Some cell -> cell := etu :: !cell
                | None -> Label.Tbl.add built key (ref [ etu ]))
              fresh;
            let out = ref [] in
            Relation.scan_probing view ~col:hinge_col
              (fun hinge ->
                match Label.Tbl.find_opt built hinge with
                | Some cell -> !cell
                | None -> [])
              (fun ptu etu -> out := Tuple.extend ptu (Tuple.get etu 1) :: !out);
            !out
          end
      in
      let inserted = Relation.insert_all (Trie.node_view node) delta in
      if inserted <> [] then begin
        record node inserted;
        propagate t ~record node inserted
      end)
    seeds;
  inserted_at

let handle_batch t updates =
  t.batches <- t.batches + 1;
  t.batched_updates <- t.batched_updates + List.length updates;
  (* Net effect per edge: views are joins over deduplicated base sets, so
     within one window only an edge's final polarity matters — duplicates
     collapse and an [Add e; ...; Remove e] window cancels down to one
     (possibly no-op) removal.  Replaying the net ops reaches exactly the
     state of sequential replay; matches that exist only transiently
     inside the window are intentionally never materialised or reported. *)
  let last : bool Edge.Tbl.t = Edge.Tbl.create (2 * List.length updates) in
  let order = ref [] in
  List.iter
    (fun u ->
      let e = Update.edge u in
      if not (Edge.Tbl.mem last e) then order := e :: !order;
      Edge.Tbl.replace last e (Update.is_addition u))
    updates;
  let removals, additions =
    List.partition_map
      (fun e -> if Edge.Tbl.find last e then Either.Right e else Either.Left e)
      (List.rev !order)
  in
  t.batch_cancelled <-
    t.batch_cancelled
    + (List.length updates - List.length removals - List.length additions);
  t.batch_net_applied <- t.batch_net_applied + List.length removals + List.length additions;
  (* Net removals first: a net addition must survive the window, so its
     delta joins run against the post-removal state. *)
  List.iter (fun e -> apply_removal t e) removals;
  match additions with
  | [] -> []
  | additions ->
    let inserted_at = handle_additions_batch t additions in
    if Hashtbl.length inserted_at = 0 then [] else report_of_inserted t inserted_at

(* -- Probes ---------------------------------------------------------------- *)

let current_matches t qid =
  let info = Hashtbl.find t.queries qid in
  List.filter Embedding.is_total (Embjoin.join_many (Array.to_list info.path_embs))

let covering_paths t qid =
  let info = Hashtbl.find t.queries qid in
  Array.to_list info.paths

let forest t = t.forest

type stats = {
  queries : int;
  tries : int;
  trie_nodes : int;
  base_views : int;
  view_tuples : int;
  index_rebuilds : int;
  removals : int;
  noop_removals : int;
  tuples_removed : int;
  invalidations_avoided : int;
  delta_probes : int;
  batches : int;
  batched_updates : int;
  batch_cancelled : int;
  batch_net_applied : int;
}

let stats t =
  let view_tuples, rebuilds, delta_probes =
    Trie.fold_nodes
      (fun n (tuples, rb, dp) ->
        ( tuples + Relation.cardinality (Trie.node_view n),
          rb + Relation.stats_rebuilds (Trie.node_view n),
          dp + Relation.stats_delta_probes (Trie.node_view n) ))
      t.forest (0, 0, 0)
  in
  {
    queries = num_queries t;
    tries = Trie.num_tries t.forest;
    trie_nodes = Trie.num_nodes t.forest;
    base_views = Trie.num_base_views t.forest;
    view_tuples;
    index_rebuilds = rebuilds;
    removals = t.removals;
    noop_removals = t.noop_removals;
    tuples_removed = t.tuples_removed;
    invalidations_avoided = t.invalidations_avoided;
    delta_probes;
    batches = t.batches;
    batched_updates = t.batched_updates;
    batch_cancelled = t.batch_cancelled;
    batch_net_applied = t.batch_net_applied;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "queries=%d tries=%d nodes=%d base_views=%d view_tuples=%d rebuilds=%d removals=%d \
     noop_removals=%d tuples_removed=%d invalidations_avoided=%d delta_probes=%d \
     batches=%d batched_updates=%d batch_cancelled=%d batch_net_applied=%d"
    s.queries s.tries s.trie_nodes s.base_views s.view_tuples s.index_rebuilds s.removals
    s.noop_removals s.tuples_removed s.invalidations_avoided s.delta_probes s.batches
    s.batched_updates s.batch_cancelled s.batch_net_applied

(* -- Audit access ----------------------------------------------------------- *)

type query_view = {
  qv_pattern : Pattern.t;
  qv_paths : Path.t array;
  qv_path_vids : int array array;
  qv_terminals : Trie.node array;
  qv_width : int;
  qv_path_embs : Embedding.t list array;
}

let query_views (t : t) =
  Hashtbl.fold
    (fun qid info acc ->
      ( qid,
        {
          qv_pattern = info.pattern;
          qv_paths = info.paths;
          qv_path_vids = info.path_vids;
          qv_terminals = info.terminals;
          qv_width = info.width;
          qv_path_embs = Array.copy info.path_embs;
        } )
      :: acc)
    t.queries []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let is_caching (t : t) = t.cache

(* -- Test-only corruption hooks --------------------------------------------- *)

module Corrupt = struct
  let first_query (t : t) =
    Hashtbl.fold
      (fun qid info acc ->
        match acc with Some (q, _) when q <= qid -> acc | _ -> Some (qid, info))
      t.queries None

  let skew_path_cache t =
    match first_query t with
    | None -> false
    | Some (_, info) ->
      let skewed = ref false in
      Array.iteri
        (fun i embs ->
          if (not !skewed) && embs <> [] then begin
            info.path_embs.(i) <- List.tl embs;
            skewed := true
          end)
        info.path_embs;
      !skewed

  let desync_stats (t : t) = t.tuples_removed <- t.tuples_removed + 1

  let drop_registration t =
    match first_query t with
    | None -> false
    | Some (qid, info) ->
      Array.length info.terminals > 0
      &&
      (Trie.deregister info.terminals.(0) ~qid;
       true)

  let phantom_view_tuple t =
    (* Prefer an unregistered (non-terminal) node so only the
       view-coherence invariant trips, not the per-query caches that
       mirror terminal views. *)
    let pick =
      Trie.fold_nodes
        (fun n acc ->
          match acc with
          | Some best ->
            if Trie.registrations best <> [] && Trie.registrations n = [] then Some n
            else acc
          | None -> Some n)
        t.forest None
    in
    match pick with
    | None -> false
    | Some node ->
      let width = Trie.node_depth node + 2 in
      let tu =
        Tuple.make (Array.init width (fun _ -> Label.fresh "corrupt"))
      in
      Relation.insert (Trie.node_view node) tu
end
