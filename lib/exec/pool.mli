(** A fixed-size domain pool with a bounded task queue and a barrier
    [run] primitive.

    One controller domain (the creator) submits work; worker domains run
    it.  {!run} is a full barrier: when it returns, every submitted task
    has finished, so the controller may read any state the tasks wrote
    without further synchronisation.  The controller also participates in
    draining the queue while it waits, so a pool of [w] workers gives
    [w + 1]-way parallelism to each {!run}. *)

type t

val create : ?obs:Tric_obs.Registry.t -> workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] domains (at least 1).  The pool
    registers an [at_exit] hook so unjoined domains never block process
    exit even if {!shutdown} is not called explicitly.

    [obs] instruments the pool ([pool_runs_total], [pool_tasks_total],
    [pool_task_seconds], all unstable): metrics are recorded by the
    controller domain after each {!run} barrier, never from workers, so
    the registry needs no synchronisation. *)

val size : t -> int
(** Number of worker domains. *)

val run : t -> (unit -> 'a) array -> ('a * float) array
(** [run t fns] executes every thunk (on workers and on the calling
    domain) and returns, in submission order, each result paired with the
    wall-clock seconds that task spent running.  A single-thunk array is
    run inline on the calling domain — no queueing, no barrier handshake
    — which makes one-shard targeted dispatches as cheap as the
    sequential engine.  If any task raised, the first (lowest-index)
    exception is re-raised with its backtrace after all tasks have
    finished.  Raises [Invalid_argument] if the pool is shut down. *)

val run_seq : (unit -> 'a) array -> ('a * float) array
(** Sequential equivalent of {!run} on the calling domain — same result
    and timing shape, no pool required.  Used as the [shards=1]
    fallback. *)

val shutdown : t -> unit
(** Stop the workers and join their domains.  Idempotent.  Any
    subsequent {!run} raises [Invalid_argument]. *)

val is_shut_down : t -> bool
