(* A small fixed-size domain pool with a bounded task queue and a barrier
   [run] primitive.

   Ownership model: exactly one controller domain (the one that called
   {!create}) submits work; worker domains only ever touch the queue and
   the per-run result cells handed to them.  [run] is a full barrier — it
   returns only when every submitted task has finished — so pool clients
   may freely read state their tasks wrote once [run] returns, without any
   further synchronisation.

   The queue is bounded: submission blocks once [cap] tasks are waiting.
   The controller participates in draining the queue while it waits, so a
   full queue can never deadlock and a pool of [w] workers gives [w + 1]
   degrees of parallelism to each [run]. *)

type cell = {
  mutable result : Obj.t option;
  mutable error : (exn * Printexc.raw_backtrace) option;
  mutable busy_s : float;
}

(* Telemetry, recorded by the controller after [gather] (never from
   worker domains, whose only shared-state writes stay the result cells).
   All pool metrics are wall-clock/placement-dependent, hence unstable. *)
type obs = {
  o_runs : Tric_obs.Registry.counter;
  o_tasks : Tric_obs.Registry.counter;
  o_task_s : Tric_obs.Histogram.t;
}

type t = {
  lock : Mutex.t;
  work : Condition.t; (* a task was queued, or stop flipped *)
  space : Condition.t; (* the queue shrank below capacity *)
  idle : Condition.t; (* in-flight count reached zero *)
  queue : (unit -> unit) Queue.t;
  cap : int;
  mutable in_flight : int; (* tasks queued or running in the current run *)
  mutable stop : bool;
  mutable stopped : bool;
  mutable domains : unit Domain.t array;
  obs : obs option;
}

let size t = Array.length t.domains

let now () = Unix.gettimeofday ()

(* Pop-and-run one task; returns false if there was nothing to do.
   Caller holds the lock; it is held again on return. *)
let step t =
  match Queue.take_opt t.queue with (* check: allow domain-ownership — caller holds the lock, per the contract above *)
  | None -> false
  | Some task ->
    Condition.signal t.space;
    Mutex.unlock t.lock;
    task ();
    Mutex.lock t.lock;
    t.in_flight <- t.in_flight - 1;
    if t.in_flight = 0 then Condition.broadcast t.idle;
    true

let worker t () =
  Mutex.lock t.lock;
  let running = ref true in
  while !running do
    if step t then ()
    else if t.stop then running := false
    else Condition.wait t.work t.lock
  done;
  Mutex.unlock t.lock

let shutdown t =
  Mutex.lock t.lock;
  if t.stopped then Mutex.unlock t.lock
  else begin
    t.stopped <- true;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.domains
  end

let is_shut_down t =
  Mutex.lock t.lock;
  let s = t.stopped in
  Mutex.unlock t.lock;
  s

let create ?obs ~workers () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let obs =
    match obs with
    | None -> None
    | Some reg ->
      Some
        {
          o_runs = Tric_obs.Registry.counter reg ~stable:false "pool_runs_total";
          o_tasks = Tric_obs.Registry.counter reg ~stable:false "pool_tasks_total";
          o_task_s =
            Tric_obs.Registry.histogram reg ~stable:false ~lo:1e-7 "pool_task_seconds";
        }
  in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      space = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      cap = max 64 (4 * workers);
      in_flight = 0;
      stop = false;
      stopped = false;
      domains = [||];
      obs;
    }
  in
  t.domains <- Array.init workers (fun _ -> Domain.spawn (worker t));
  (* Unjoined domains block process exit; make every pool self-cleaning
     even when the owner forgets (or cannot) call [shutdown].  [shutdown]
     is idempotent, so an explicit earlier call is still fine. *)
  at_exit (fun () -> shutdown t);
  t

(* Wrap task [i] so it records its result, error and busy time into its
   cell.  Cells are written by exactly one domain (distinct indexes), and
   read by the controller only after the [run] barrier. *)
let wrap fns cells i () =
  let cell = cells.(i) in
  let t0 = now () in
  (match fns.(i) () with
  | v -> cell.result <- Some (Obj.repr v) (* check: allow domain-ownership — single-writer cell, read only after the run barrier *)
  | exception e -> cell.error <- Some (e, Printexc.get_raw_backtrace ())); (* check: allow domain-ownership — single-writer cell, read only after the run barrier *)
  cell.busy_s <- now () -. t0 (* check: allow domain-ownership — single-writer cell, read only after the run barrier *)

let gather cells =
  Array.iter
    (fun c ->
      match c.error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    cells;
  Array.map
    (fun c ->
      match c.result with
      | Some v -> (Obj.obj v, c.busy_s)
      | None -> assert false)
    cells

let run_seq fns =
  Array.map
    (fun f ->
      let t0 = now () in
      let v = f () in
      (v, now () -. t0))
    fns

let run t fns =
  let n = Array.length fns in
  if n = 0 then [||]
  else if n = 1 then begin
    (* Single task: run it inline on the controller.  Targeted dispatch
       makes one-shard runs the common case, and the queue handshake
       (lock, signal, barrier wait) costs more than many small tasks do.
       Keep the shut-down check so behaviour matches the general path. *)
    if is_shut_down t then invalid_arg "Pool.run: pool is shut down";
    let results = run_seq fns in
    (match t.obs with
    | None -> ()
    | Some o ->
      Tric_obs.Registry.incr o.o_runs;
      Tric_obs.Registry.incr o.o_tasks;
      Tric_obs.Histogram.observe o.o_task_s (snd results.(0)));
    results
  end
  else begin
    let cells = Array.init n (fun _ -> { result = None; error = None; busy_s = 0.0 }) in
    Mutex.lock t.lock;
    if t.stop then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.run: pool is shut down"
    end;
    t.in_flight <- t.in_flight + n;
    for i = 0 to n - 1 do
      while Queue.length t.queue >= t.cap do
        (* Queue full: help drain it instead of waiting passively. *)
        if not (step t) then Condition.wait t.space t.lock
      done;
      Queue.push (wrap fns cells i) t.queue;
      Condition.signal t.work
    done;
    (* Barrier: help run tasks, then wait for stragglers. *)
    let waiting = ref true in
    while !waiting do
      if step t then ()
      else if t.in_flight = 0 then waiting := false
      else Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock;
    let results = gather cells in
    (match t.obs with
    | None -> ()
    | Some o ->
      (* Controller-side, after the barrier: the registry is never touched
         from a worker domain. *)
      Tric_obs.Registry.incr o.o_runs;
      Tric_obs.Registry.add o.o_tasks n;
      Array.iter (fun (_, dt) -> Tric_obs.Histogram.observe o.o_task_s dt) results);
    results
  end
