(** Dependency-free JSON with a deterministic printer and a strict parser.

    The printer preserves object key order, prints integral floats without
    a fractional part and everything else as [%.12g], so equal values
    always serialize to equal bytes — the property the cross-shard
    snapshot differential relies on. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val int : int -> t
(** [int n] is [Num (float_of_int n)]. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] indents with two spaces and ends with a newline.
    Raises [Invalid_argument] on nan/infinity, which JSON cannot carry. *)

val parse : string -> (t, string) result
(** Strict parse of a complete document (no trailing garbage). *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any. *)

val as_string : t -> string option
val as_number : t -> float option
val as_bool : t -> bool option
val as_list : t -> t list option
