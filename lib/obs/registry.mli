(** Explicit instrument registry — no global state.

    Every metrics holder owns its registry (one per shard, one per
    coordinator) and touches it only from the owning domain; cross-domain
    aggregation is an explicit [merge_into] in fixed shard order after a
    pool barrier, so merged values are deterministic at any shard count.

    Instruments are get-or-create by name: asking twice for the same name
    returns the same cell; asking for an existing name with a different
    kind raises [Invalid_argument].  Names must match
    [[a-zA-Z_][a-zA-Z0-9_]*] (Prometheus-compatible).

    The [stable] flag declares whether the instrument's merged value is a
    pure function of the update stream (identical at any shard count) or
    depends on wall-clock / shard placement; [Snapshot.stable_only] keys
    off it. *)

type t

type counter
type gauge

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

val create : unit -> t

val counter : t -> ?stable:bool -> string -> counter
val gauge : t -> ?stable:bool -> string -> gauge

val histogram :
  t ->
  ?stable:bool ->
  ?buckets:int ->
  ?lo:float ->
  ?growth:float ->
  ?exact_cap:int ->
  string ->
  Histogram.t
(** [stable] defaults to [true].  Layout arguments only apply on first
    registration. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val find : t -> string -> instrument option

val fold : t -> ('a -> string -> stable:bool -> instrument -> 'a) -> 'a -> 'a
(** Fold in sorted name order (canonical for snapshots). *)

val merge_into : dst:t -> t -> unit
(** Commutative merge: counters/gauges sum, histograms sum bucket-wise;
    instruments absent from [dst] are created with [src]'s layout.
    Raises [Invalid_argument] on kind or histogram-layout mismatch. *)
