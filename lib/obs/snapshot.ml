(* An immutable, name-sorted readout of one or more registries, plus the
   export surface: canonical JSON (the "tric-metrics-v1" envelope),
   Prometheus-style text exposition, and a schema validator for the
   envelope (used by `tric_cli stats --check` and CI). *)

type data =
  | Counter of int
  | Gauge of float
  | Hist of Histogram.snapshot

type metric = { name : string; stable : bool; data : data }

type t = { metrics : metric list (* sorted by name *) }

let empty = { metrics = [] }

let of_registry reg =
  (* Registry.fold already iterates in sorted name order. *)
  let metrics =
    Registry.fold reg
      (fun acc name ~stable instrument ->
        let data =
          match instrument with
          | Registry.Counter c -> Counter (Registry.value c)
          | Registry.Gauge g -> Gauge (Registry.gauge_value g)
          | Registry.Histogram h -> Hist (Histogram.snapshot h)
        in
        { name; stable; data } :: acc)
      []
  in
  { metrics = List.rev metrics }

(* Merge in list order into a fresh registry: the callers pass registries
   in fixed shard order, and every merge op is commutative, so the result
   is independent of how work was scattered. *)
let of_registries regs =
  let acc = Registry.create () in
  List.iter (fun r -> Registry.merge_into ~dst:acc r) regs;
  of_registry acc

let stable_only t = { metrics = List.filter (fun m -> m.stable) t.metrics }

let find t name = List.find_opt (fun m -> String.equal m.name name) t.metrics

let counter_value t name =
  match find t name with Some { data = Counter n; _ } -> Some n | _ -> None

(* -- JSON ------------------------------------------------------------------- *)

let hist_to_json (h : Histogram.snapshot) =
  Json.Obj
    [
      ("count", Json.int h.Histogram.s_count);
      ("sum", Json.Num h.Histogram.s_sum);
      ("min", Json.Num h.Histogram.s_min);
      ("max", Json.Num h.Histogram.s_max);
      ( "buckets",
        Json.Arr
          (List.map
             (fun (le, c) -> Json.Obj [ ("le", Json.Num le); ("count", Json.int c) ])
             h.Histogram.s_buckets) );
      ("overflow", Json.int h.Histogram.s_over);
    ]

let metric_to_json m =
  let kind, value =
    match m.data with
    | Counter n -> ("counter", Json.int n)
    | Gauge v -> ("gauge", Json.Num v)
    | Hist h -> ("histogram", hist_to_json h)
  in
  Json.Obj
    [
      ("name", Json.Str m.name);
      ("kind", Json.Str kind);
      ("stable", Json.Bool m.stable);
      ("value", value);
    ]

let to_json t = Json.Arr (List.map metric_to_json t.metrics)

let schema_version = "tric-metrics-v1"

let mem_to_json mem =
  Json.Arr
    (Array.to_list
       (Array.mapi
          (fun sid (cap, live, free) ->
            Json.Obj
              [
                ("shard", Json.int sid);
                ("arena_rows", Json.int cap);
                ("live_rows", Json.int live);
                ("freelist", Json.int free);
              ])
          mem))

let envelope ~engine ?(runner = []) ?mem ?spans t =
  Json.Obj
    (List.concat
       [
         [ ("schema", Json.Str schema_version); ("engine", Json.Str engine) ];
         (if runner = [] then [] else [ ("runner", Json.Obj runner) ]);
         (match mem with
         | None | Some [||] -> []
         | Some mem -> [ ("mem", mem_to_json mem) ]);
         [ ("metrics", to_json t) ];
         (match spans with None -> [] | Some s -> [ ("spans", s) ]);
       ])

(* -- Prometheus-style text exposition --------------------------------------- *)

let prom_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let to_prometheus t =
  let b = Buffer.create 1024 in
  List.iter
    (fun m ->
      match m.data with
      | Counter n ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" m.name);
        Buffer.add_string b (Printf.sprintf "%s %d\n" m.name n)
      | Gauge v ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" m.name);
        Buffer.add_string b (Printf.sprintf "%s %s\n" m.name (prom_num v))
      | Hist h ->
        Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m.name);
        let cum = ref 0 in
        List.iter
          (fun (le, c) ->
            cum := !cum + c;
            Buffer.add_string b
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m.name (prom_num le) !cum))
          h.Histogram.s_buckets;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m.name h.Histogram.s_count);
        Buffer.add_string b (Printf.sprintf "%s_sum %s\n" m.name (prom_num h.Histogram.s_sum));
        Buffer.add_string b (Printf.sprintf "%s_count %d\n" m.name h.Histogram.s_count))
    t.metrics;
  Buffer.contents b

(* -- Pretty printer (tric_cli stats) ---------------------------------------- *)

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun m ->
      match m.data with
      | Counter n -> Format.fprintf fmt "%-40s %d@," m.name n
      | Gauge v -> Format.fprintf fmt "%-40s %g@," m.name v
      | Hist h ->
        Format.fprintf fmt "%-40s count=%d sum=%g min=%g max=%g@," m.name
          h.Histogram.s_count h.Histogram.s_sum h.Histogram.s_min h.Histogram.s_max)
    t.metrics;
  Format.fprintf fmt "@]"

(* -- Envelope validation ---------------------------------------------------- *)

let validate json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let require name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let* schema = require "schema" (Json.member "schema" json) in
  let* schema = require "schema (string)" (Json.as_string schema) in
  if not (String.equal schema schema_version) then
    Error (Printf.sprintf "unknown schema %S (want %S)" schema schema_version)
  else
    let* engine = require "engine" (Json.member "engine" json) in
    let* _ = require "engine (string)" (Json.as_string engine) in
    let* () =
      match Json.member "mem" json with
      | None -> Ok ()
      | Some mem -> (
        match Json.as_list mem with
        | None -> Error "mem must be an array"
        | Some shards ->
          let slot i m =
            let num f = Option.bind (Json.member f m) Json.as_number in
            match (num "shard", num "arena_rows", num "live_rows", num "freelist") with
            | Some _, Some _, Some _, Some _ -> Ok ()
            | _ ->
              Error
                (Printf.sprintf
                   "mem[%d]: needs numeric shard/arena_rows/live_rows/freelist" i)
          in
          let rec all i = function
            | [] -> Ok ()
            | m :: rest -> ( match slot i m with Ok () -> all (i + 1) rest | e -> e)
          in
          all 0 shards)
    in
    let* metrics = require "metrics" (Json.member "metrics" json) in
    let* metrics = require "metrics (array)" (Json.as_list metrics) in
    let check_metric i m =
      let ctx msg = Error (Printf.sprintf "metrics[%d]: %s" i msg) in
      match
        ( Option.bind (Json.member "name" m) Json.as_string,
          Option.bind (Json.member "kind" m) Json.as_string,
          Option.bind (Json.member "stable" m) Json.as_bool,
          Json.member "value" m )
      with
      | None, _, _, _ -> ctx "missing name"
      | _, None, _, _ -> ctx "missing kind"
      | _, _, None, _ -> ctx "missing stable"
      | _, _, _, None -> ctx "missing value"
      | Some name, Some kind, Some _, Some value -> (
        match kind with
        | "counter" | "gauge" -> (
          match Json.as_number value with
          | Some _ -> Ok ()
          | None -> ctx (Printf.sprintf "%s: %s value must be a number" name kind))
        | "histogram" -> (
          match
            ( Option.bind (Json.member "count" value) Json.as_number,
              Option.bind (Json.member "sum" value) Json.as_number,
              Option.bind (Json.member "buckets" value) Json.as_list )
          with
          | Some _, Some _, Some buckets ->
            if
              List.for_all
                (fun bkt ->
                  Option.is_some (Option.bind (Json.member "le" bkt) Json.as_number)
                  && Option.is_some (Option.bind (Json.member "count" bkt) Json.as_number))
                buckets
            then Ok ()
            else ctx (Printf.sprintf "%s: malformed histogram bucket" name)
          | _ -> ctx (Printf.sprintf "%s: histogram value needs count/sum/buckets" name))
        | k -> ctx (Printf.sprintf "%s: unknown kind %S" name k))
    in
    let rec check_all i = function
      | [] -> Ok i
      | m :: rest -> (
        match check_metric i m with Ok () -> check_all (i + 1) rest | Error _ as e -> e)
    in
    check_all 0 metrics
