(** Bounded ring-buffer span recorder.

    Traces one update's journey through the engine as a label plus up to
    [max_stages] (stage, seconds) pairs.  All storage is preallocated;
    when the ring wraps, the oldest spans are overwritten (counted by
    [dropped]).  With [capacity = 0] the recorder is disabled: [start]
    returns a no-op span without reading the clock and every operation on
    it is a single integer comparison — zero allocation on the hot path. *)

type t

type span = int
(** A slot handle.  [none] (= -1) is the universal no-op span. *)

val none : span

val create : ?capacity:int -> ?max_stages:int -> ?clock:(unit -> float) -> unit -> t
(** Defaults: capacity 256, max_stages 16, clock [Unix.gettimeofday].
    [capacity = 0] builds a disabled recorder. *)

val enabled : t -> bool

val start : t -> string -> span
(** Claim the next ring slot (overwriting the oldest if full) and stamp
    its start time.  Returns [none] when disabled, without reading the
    clock. *)

val stage : t -> span -> string -> unit
(** Record the stage ending now: duration = now - previous stage
    boundary; advances the boundary.  Stages beyond [max_stages] are
    silently discarded.  No-op on [none]. *)

val stage_dur : t -> span -> string -> float -> unit
(** Record a stage with an externally measured duration (e.g. a pool
    task's busy seconds) without touching the clock or the boundary. *)

type recorded = { label : string; stages : (string * float) list; dropped : int }

val spans : t -> recorded list
(** The live window, oldest first.  [dropped] on each record is the total
    number of overwritten spans so far. *)

val dropped : t -> int
val total : t -> int

val recorded_to_json : recorded list -> Json.t

val to_json : t -> Json.t
(** [to_json t = recorded_to_json (spans t)]. *)
