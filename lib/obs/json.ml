(* Minimal JSON: a value type, a deterministic printer, and a strict
   recursive-descent parser.  Hand-rolled on purpose — the repo carries no
   JSON dependency, and exported snapshots must be byte-reproducible, so
   the printer is ours to pin down (object key order is the caller's,
   integers print without a fractional part, other floats as %.12g). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let int n = Num (float_of_int n)

(* -- Printing --------------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b f =
  if Float.is_integer f && Float.abs f < 1e15 then Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.12g" f)

let rec add ?(indent = 0) ~pretty b v =
  let pad n = if pretty then Buffer.add_string b (String.make n ' ') in
  let sep_open c = Buffer.add_char b c; if pretty then Buffer.add_char b '\n' in
  let sep_close c = (if pretty then (Buffer.add_char b '\n'; pad indent)); Buffer.add_char b c in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num f ->
    if Float.is_nan f || Float.abs f = Float.infinity then
      invalid_arg "Json: cannot print nan/infinity (encode it as a string)";
    add_num b f
  | Str s -> escape_string b s
  | Arr [] -> Buffer.add_string b "[]"
  | Arr items ->
    sep_open '[';
    List.iteri
      (fun i item ->
        if i > 0 then (Buffer.add_char b ','; if pretty then Buffer.add_char b '\n');
        pad (indent + 2);
        add ~indent:(indent + 2) ~pretty b item)
      items;
    sep_close ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj fields ->
    sep_open '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then (Buffer.add_char b ','; if pretty then Buffer.add_char b '\n');
        pad (indent + 2);
        escape_string b k;
        Buffer.add_string b (if pretty then ": " else ":");
        add ~indent:(indent + 2) ~pretty b item)
      fields;
    sep_close '}'

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  add ~pretty b v;
  if pretty then Buffer.add_char b '\n';
  Buffer.contents b

(* -- Parsing ---------------------------------------------------------------- *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let wl = String.length word in
    if !pos + wl <= n && String.sub s !pos wl = word then begin
      pos := !pos + wl;
      v
    end
    else error (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents b
        else if c = '\\' then begin
          (if !pos >= n then error "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char b '"'
             | '\\' -> Buffer.add_char b '\\'
             | '/' -> Buffer.add_char b '/'
             | 'b' -> Buffer.add_char b '\b'
             | 'f' -> Buffer.add_char b '\012'
             | 'n' -> Buffer.add_char b '\n'
             | 'r' -> Buffer.add_char b '\r'
             | 't' -> Buffer.add_char b '\t'
             | 'u' ->
               if !pos + 4 > n then error "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 match int_of_string_opt ("0x" ^ hex) with
                 | Some c -> c
                 | None -> error "bad \\u escape"
               in
               (* Encode the BMP code point as UTF-8. *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
             | _ -> error "bad escape");
          go ()
        end
        else begin
          Buffer.add_char b c;
          go ()
        end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            go ()
          | Some ']' -> advance ()
          | _ -> error "expected ',' or ']'"
        in
        go ();
        Arr (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            go ()
          | Some '}' -> advance ()
          | _ -> error "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some c -> if is_digit_or_minus c then parse_number () else error "unexpected character"
  and is_digit_or_minus c = (c >= '0' && c <= '9') || c = '-'
  in
  match parse_value () with
  | v ->
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos) else Ok v
  | exception Parse_error msg -> Error msg

(* -- Accessors (for schema validation) -------------------------------------- *)

let member key = function
  | Obj fields -> (
    match List.find_opt (fun (k, _) -> String.equal k key) fields with
    | Some (_, v) -> Some v
    | None -> None)
  | _ -> None

let as_string = function Str s -> Some s | _ -> None
let as_number = function Num f -> Some f | _ -> None
let as_bool = function Bool b -> Some b | _ -> None
let as_list = function Arr l -> Some l | _ -> None
