(** Fixed-allocation log-bucketed histogram.

    Bucket upper bounds are [lo *. growth^i]; the layout is frozen at
    [create] and [observe] never allocates.  A bounded buffer of the
    first [exact_cap] samples preserves exact linear-interpolation
    percentiles until it overflows, after which percentiles are
    interpolated within buckets (clamped to the observed min/max). *)

type t

val create : ?buckets:int -> ?lo:float -> ?growth:float -> ?exact_cap:int -> unit -> t
(** Defaults: 64 buckets, lo = 1e-6, growth = sqrt 2, exact_cap = 1024.
    Raises [Invalid_argument] on a degenerate layout. *)

val observe : t -> float -> unit
val observe_n : t -> float -> int -> unit
(** Record one (or [n]) occurrences of a value. Allocation-free. *)

val count : t -> int
val sum : t -> float
val min_value : t -> float
val max_value : t -> float
val mean : t -> float

val is_exact : t -> bool
(** True while every observed sample is still held exactly. *)

val percentile : t -> float -> float
(** [percentile t q] for [q] in [0, 100].  Exact (linear interpolation
    between bracketing ranks) while [is_exact]; bucket-interpolated
    afterwards.  0.0 on an empty histogram. *)

val percentile_sorted : float array -> float -> float
(** The underlying interpolation over an already-sorted array, exposed so
    callers holding raw samples keep byte-identical semantics. *)

val merge_into : dst:t -> t -> unit
(** Commutative bucket-wise sum.  Raises [Invalid_argument] if the two
    layouts differ.  Exactness is preserved only when both sides are
    exact and the combined samples fit [dst]'s buffer. *)

val same_layout : t -> t -> bool

val clone_empty : t -> t
(** A fresh empty histogram with the same bucket layout. *)

type snapshot = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_buckets : (float * int) list;  (** non-empty buckets, ascending bounds *)
  s_over : int;  (** +Inf overflow bucket *)
}

val snapshot : t -> snapshot
