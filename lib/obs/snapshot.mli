(** Immutable, name-sorted readout of registries, with JSON and
    Prometheus-style exports and an envelope schema validator. *)

type data =
  | Counter of int
  | Gauge of float
  | Hist of Histogram.snapshot

type metric = { name : string; stable : bool; data : data }

type t = { metrics : metric list (* sorted by name *) }

val empty : t

val of_registry : Registry.t -> t

val of_registries : Registry.t list -> t
(** Merge into a fresh registry in list order (callers pass fixed shard
    order; every merge op is commutative, so the result is independent of
    scatter interleaving). *)

val stable_only : t -> t
(** Keep only metrics whose value is a pure function of the update
    stream — the subset the cross-shard differential compares. *)

val find : t -> string -> metric option
val counter_value : t -> string -> int option

val to_json : t -> Json.t
(** Canonical: metrics sorted by name, keys in fixed order. *)

val schema_version : string
(** ["tric-metrics-v1"]. *)

val envelope :
  engine:string ->
  ?runner:(string * Json.t) list ->
  ?mem:(int * int * int) array ->
  ?spans:Json.t ->
  t ->
  Json.t
(** The full export document: schema/engine/runner?/mem?/metrics/spans?.
    [mem] is the per-shard packed-arena footprint
    [(arena capacity, live rows, freelist length)], emitted as an array of
    [{shard; arena_rows; live_rows; freelist}] objects; omitted when
    absent or empty. *)

val to_prometheus : t -> string
(** Text exposition: counters, gauges, and histograms with cumulative
    [_bucket{le="..."}] lines plus [_sum]/[_count]. *)

val pp : Format.formatter -> t -> unit

val validate : Json.t -> (int, string) result
(** Schema-check an envelope; [Ok n] is the number of metrics. *)
