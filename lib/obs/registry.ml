(* An explicit instrument registry.  There is deliberately no global
   default registry — the lint's toplevel-mutable rule stands for this
   subsystem too — so every holder of metrics owns a [Registry.t]
   (one per shard, one per coordinator, one per runner) and merges are
   explicit and deterministic.

   Counters and gauges are plain mutable cells, not atomics: a registry
   is only ever touched by the domain that owns it (a shard's registry by
   its pool task, the coordinator's by the main domain), and cross-domain
   visibility happens only through [merge_into] after a pool barrier.

   Every instrument carries a [stable] flag: [true] means its merged
   value is a pure function of the update stream, identical at any shard
   count (event counts, fan-out histograms); [false] marks wall-clock
   timings and placement-dependent counts (per-shard base-view activity),
   which [Snapshot.stable_only] strips before cross-shard comparison. *)

type counter = { mutable c : int }
type gauge = { mutable g : float }

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

type meta = { stable : bool; instrument : instrument }

type t = { instruments : (string, meta) Hashtbl.t }

let create () = { instruments = Hashtbl.create 32 }

(* Prometheus-compatible names keep the text exposition valid and double
   as a sanity check against typo'd lookups creating near-duplicates. *)
let valid_name s =
  String.length s > 0
  && (let c = s.[0] in (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_')
       s

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t name ~stable make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: invalid instrument name %S" name);
  match Hashtbl.find_opt t.instruments name with
  | Some m -> m
  | None ->
    let m = { stable; instrument = make () } in
    Hashtbl.replace t.instruments name m;
    m

let counter t ?(stable = true) name =
  let m = register t name ~stable (fun () -> Counter { c = 0 }) in
  match m.instrument with
  | Counter c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Registry: %s already registered as a %s, wanted a counter" name
         (kind_name other))

let gauge t ?(stable = true) name =
  let m = register t name ~stable (fun () -> Gauge { g = 0.0 }) in
  match m.instrument with
  | Gauge g -> g
  | other ->
    invalid_arg
      (Printf.sprintf "Registry: %s already registered as a %s, wanted a gauge" name
         (kind_name other))

let histogram t ?(stable = true) ?buckets ?lo ?growth ?exact_cap name =
  let m =
    register t name ~stable (fun () ->
        Histogram (Histogram.create ?buckets ?lo ?growth ?exact_cap ()))
  in
  match m.instrument with
  | Histogram h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Registry: %s already registered as a %s, wanted a histogram" name
         (kind_name other))

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let value c = c.c
let set g v = g.g <- v
let gauge_value g = g.g

let find t name =
  match Hashtbl.find_opt t.instruments name with
  | Some m -> Some m.instrument
  | None -> None

(* Iterate in sorted name order: the only order-sensitive consumer is the
   snapshot, and sorted order makes its output canonical. *)
let fold t f acc =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) t.instruments [] in
  let names = List.sort String.compare names in
  List.fold_left
    (fun acc name ->
      let m = Hashtbl.find t.instruments name in
      f acc name ~stable:m.stable m.instrument)
    acc names

(* Commutative merge: counters and gauges sum, histograms sum bucket-wise.
   Instruments missing from [dst] are created with [src]'s layout, so
   merging per-shard registries in fixed shard order yields the same
   totals at any shard count. *)
let merge_into ~dst src =
  fold src
    (fun () name ~stable instrument ->
      match instrument with
      | Counter c -> add (counter dst ~stable name) c.c
      | Gauge g ->
        let d = gauge dst ~stable name in
        set d (gauge_value d +. g.g)
      | Histogram h ->
        let m =
          register dst name ~stable (fun () -> Histogram (Histogram.clone_empty h))
        in
        (match m.instrument with
        | Histogram d -> Histogram.merge_into ~dst:d h
        | other ->
          invalid_arg
            (Printf.sprintf "Registry.merge_into: %s is a %s in dst, a histogram in src"
               name (kind_name other))))
    ()
