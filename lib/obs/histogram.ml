(* Fixed-allocation log-bucketed histogram.

   Bucket upper bounds are [lo *. growth^i] for i in 0..buckets-1, with an
   implicit +Inf overflow bucket; the layout is fixed at [create] time and
   never reallocated, so [observe] is allocation-free.  A bounded exact
   buffer keeps the first [exact_cap] samples: while it has not
   overflowed, [percentile] answers from the sorted samples with the same
   linear interpolation the Runner historically used, so existing
   percentile expectations survive the histogram swap byte-for-byte.
   Once the buffer overflows, percentiles interpolate inside buckets. *)

type t = {
  lo : float;
  growth : float;
  bounds : float array; (* upper bound of bucket i, strictly increasing *)
  counts : int array; (* same length as bounds; overflow counted in [over] *)
  mutable over : int;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  exact : float array; (* first [exact_cap] samples, for exact percentiles *)
  mutable exact_n : int;
  mutable overflowed : bool; (* true once exact no longer holds every sample *)
}

let create ?(buckets = 64) ?(lo = 1e-6) ?(growth = sqrt 2.) ?(exact_cap = 1024) () =
  if buckets < 1 then invalid_arg "Histogram.create: buckets must be >= 1";
  if not (lo > 0.0) then invalid_arg "Histogram.create: lo must be > 0";
  if not (growth > 1.0) then invalid_arg "Histogram.create: growth must be > 1";
  if exact_cap < 0 then invalid_arg "Histogram.create: exact_cap must be >= 0";
  let bounds = Array.init buckets (fun i -> lo *. (growth ** float_of_int i)) in
  {
    lo;
    growth;
    bounds;
    counts = Array.make buckets 0;
    over = 0;
    count = 0;
    sum = 0.0;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
    exact = Array.make exact_cap 0.0;
    exact_n = 0;
    overflowed = exact_cap = 0;
  }

(* A fresh, empty histogram with the same bucket layout — what a merge
   target creates when it first meets an instrument. *)
let clone_empty t =
  create ~buckets:(Array.length t.bounds) ~lo:t.lo ~growth:t.growth
    ~exact_cap:(Array.length t.exact) ()

let same_layout a b =
  Array.length a.bounds = Array.length b.bounds
  && Float.equal a.lo b.lo
  && Float.equal a.growth b.growth
  && Array.length a.exact = Array.length b.exact

(* Bucket index for value v: smallest i with v <= bounds.(i), or
   [length bounds] for the overflow bucket.  Binary search — bounds is
   strictly increasing. *)
let bucket_index t v =
  let n = Array.length t.bounds in
  if v > t.bounds.(n - 1) then n
  else begin
    let alo = ref 0 and ahi = ref (n - 1) in
    (* invariant: v <= bounds.(ahi); answer in [alo, ahi] *)
    while !alo < !ahi do
      let mid = (!alo + !ahi) / 2 in
      if v <= t.bounds.(mid) then ahi := mid else alo := mid + 1
    done;
    !alo
  end

let observe_n t v n =
  if n > 0 then begin
    let i = bucket_index t v in
    if i = Array.length t.bounds then t.over <- t.over + n else t.counts.(i) <- t.counts.(i) + n;
    t.count <- t.count + n;
    t.sum <- t.sum +. (v *. float_of_int n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v;
    let cap = Array.length t.exact in
    if t.exact_n + n <= cap then
      for _ = 1 to n do
        t.exact.(t.exact_n) <- v;
        t.exact_n <- t.exact_n + 1
      done
    else t.overflowed <- true
  end

let observe t v = observe_n t v 1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let is_exact t = not t.overflowed

(* Linear interpolation between bracketing ranks over a sorted array —
   identical semantics to the Runner's historical percentile. *)
let percentile_sorted sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else if n = 1 then sorted.(0)
  else begin
    let rank = q /. 100.0 *. float_of_int (n - 1) in
    let lo_i = int_of_float (Float.floor rank) in
    let hi_i = int_of_float (Float.ceil rank) in
    let lo_i = max 0 (min (n - 1) lo_i) in
    let hi_i = max 0 (min (n - 1) hi_i) in
    if lo_i = hi_i then sorted.(lo_i)
    else begin
      let frac = rank -. float_of_int lo_i in
      sorted.(lo_i) +. (frac *. (sorted.(hi_i) -. sorted.(lo_i)))
    end
  end

let percentile t q =
  if t.count = 0 then 0.0
  else if not t.overflowed then begin
    let sorted = Array.sub t.exact 0 t.exact_n in
    Array.sort Float.compare sorted;
    percentile_sorted sorted q
  end
  else begin
    (* Bucketed estimate: find the bucket holding the target rank and
       interpolate linearly inside it, clamped to observed min/max. *)
    let target = q /. 100.0 *. float_of_int t.count in
    let n = Array.length t.bounds in
    let rec find i acc =
      if i >= n then (n, acc)
      else if float_of_int (acc + t.counts.(i)) >= target then (i, acc)
      else find (i + 1) (acc + t.counts.(i))
    in
    let i, below = find 0 0 in
    if i >= n then t.max_v
    else begin
      let in_bucket = t.counts.(i) in
      let lower = if i = 0 then 0.0 else t.bounds.(i - 1) in
      let upper = t.bounds.(i) in
      let frac =
        if in_bucket = 0 then 0.0
        else (target -. float_of_int below) /. float_of_int in_bucket
      in
      let v = lower +. (frac *. (upper -. lower)) in
      Float.max t.min_v (Float.min t.max_v v)
    end
  end

let merge_into ~dst src =
  if not (same_layout dst src) then
    invalid_arg "Histogram.merge_into: incompatible bucket layouts";
  if src.count > 0 then begin
    Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
    dst.over <- dst.over + src.over;
    dst.count <- dst.count + src.count;
    dst.sum <- dst.sum +. src.sum;
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v;
    (* Keep exactness only when every sample of both sides still fits. *)
    if dst.overflowed || src.overflowed || dst.exact_n + src.exact_n > Array.length dst.exact
    then dst.overflowed <- true
    else begin
      Array.blit src.exact 0 dst.exact dst.exact_n src.exact_n;
      dst.exact_n <- dst.exact_n + src.exact_n
    end
  end

type snapshot = {
  s_count : int;
  s_sum : float;
  s_min : float;
  s_max : float;
  s_buckets : (float * int) list; (* non-empty buckets: (upper bound, count) *)
  s_over : int;
}

let snapshot t =
  let buckets = ref [] in
  for i = Array.length t.bounds - 1 downto 0 do
    if t.counts.(i) > 0 then buckets := (t.bounds.(i), t.counts.(i)) :: !buckets
  done;
  {
    s_count = t.count;
    s_sum = t.sum;
    s_min = min_value t;
    s_max = max_value t;
    s_buckets = !buckets;
    s_over = t.over;
  }
