(* Bounded ring-buffer span recorder.

   A span traces one update's journey through the engine (route →
   per-shard descent → gather → join → notify) as a label plus a fixed
   number of (stage name, seconds) pairs.  All storage is preallocated at
   [create]: starting a span and recording stages write into slots of
   fixed arrays, so the hot path neither allocates nor grows anything.
   When the ring wraps, the oldest spans are overwritten and counted in
   [dropped].

   Disabled mode is capacity 0: [start] returns the no-op span [-1]
   without reading the clock, and every other operation on [-1] is a
   single integer comparison — the zero-cost-when-disabled guard the
   engines rely on (covered by a Gc.minor_words test). *)

type span = int

let none : span = -1

type t = {
  capacity : int;
  max_stages : int;
  clock : unit -> float;
  labels : string array; (* capacity *)
  starts : float array; (* capacity: span start time *)
  lasts : float array; (* capacity: time of the previous stage boundary *)
  stage_names : string array; (* capacity * max_stages, row-major *)
  stage_durs : float array; (* capacity * max_stages, row-major *)
  nstages : int array; (* capacity *)
  mutable next : int; (* next slot to hand out *)
  mutable total : int; (* spans ever started *)
}

let default_clock = Unix.gettimeofday

let create ?(capacity = 256) ?(max_stages = 16) ?(clock = default_clock) () =
  if capacity < 0 then invalid_arg "Span.create: capacity must be >= 0";
  if max_stages < 1 then invalid_arg "Span.create: max_stages must be >= 1";
  {
    capacity;
    max_stages;
    clock;
    labels = Array.make capacity "";
    starts = Array.make capacity 0.0;
    lasts = Array.make capacity 0.0;
    stage_names = Array.make (capacity * max_stages) "";
    stage_durs = Array.make (capacity * max_stages) 0.0;
    nstages = Array.make capacity 0;
    next = 0;
    total = 0;
  }

let enabled t = t.capacity > 0

let start t label =
  if t.capacity = 0 then none
  else begin
    let slot = t.next in
    t.next <- (slot + 1) mod t.capacity;
    t.total <- t.total + 1;
    t.labels.(slot) <- label;
    let now = t.clock () in
    t.starts.(slot) <- now;
    t.lasts.(slot) <- now;
    t.nstages.(slot) <- 0;
    slot
  end

(* Record a stage whose duration was measured elsewhere (e.g. a pool
   task's busy seconds).  Does not advance the wall-clock cursor. *)
let stage_dur t sp name dur =
  if sp >= 0 then begin
    let k = t.nstages.(sp) in
    if k < t.max_stages then begin
      let off = (sp * t.max_stages) + k in
      t.stage_names.(off) <- name;
      t.stage_durs.(off) <- dur;
      t.nstages.(sp) <- k + 1
    end
  end

(* Record the stage ending now: duration is now minus the previous stage
   boundary, and the cursor advances. *)
let stage t sp name =
  if sp >= 0 then begin
    let now = t.clock () in
    stage_dur t sp name (now -. t.lasts.(sp));
    t.lasts.(sp) <- now
  end

type recorded = { label : string; stages : (string * float) list; dropped : int }

let dropped t = max 0 (t.total - t.capacity)

(* Oldest-first readout of the live window. *)
let spans t =
  if t.capacity = 0 || t.total = 0 then []
  else begin
    let live = min t.total t.capacity in
    let first = if t.total <= t.capacity then 0 else t.next in
    let d = dropped t in
    List.init live (fun i ->
        let slot = (first + i) mod t.capacity in
        let stages =
          List.init t.nstages.(slot) (fun k ->
              let off = (slot * t.max_stages) + k in
              (t.stage_names.(off), t.stage_durs.(off)))
        in
        { label = t.labels.(slot); stages; dropped = d })
  end

let total t = t.total

let recorded_to_json rs =
  Json.Arr
    (List.map
       (fun r ->
         Json.Obj
           [
             ("label", Json.Str r.label);
             ( "stages",
               Json.Arr
                 (List.map
                    (fun (name, dur) ->
                      Json.Obj [ ("stage", Json.Str name); ("seconds", Json.Num dur) ])
                    r.stages) );
           ])
       rs)

let to_json t = recorded_to_json (spans t)
