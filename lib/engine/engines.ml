let tric ?(cache = false) ?(shards = 1) ?(metrics = false) () =
  Matcher.of_tric (Tric_core.Tric.create ~cache ~shards ~metrics ())

let inv ?(cache = false) ?(metrics = false) () =
  Matcher.of_invidx
    (Tric_baselines.Invidx.create ~cache ~metrics ~mode:Tric_baselines.Invidx.Full ())

let inc ?(cache = false) ?(metrics = false) () =
  Matcher.of_invidx
    (Tric_baselines.Invidx.create ~cache ~metrics ~mode:Tric_baselines.Invidx.Seeded ())

let graphdb () = Matcher.of_graphdb (Tric_graphdb.Continuous.create ())
let naive () = Matcher.of_naive (Naive.create ())

let iso () =
  let instances : (int, Tric_core.Tric.t) Hashtbl.t = Hashtbl.create 256 in
  Matcher.make ~name:"ISO"
    ~description:"one isolated TRIC per query (single-query paradigm, no sharing)"
    ~add_query:(fun p ->
      let t = Tric_core.Tric.create () in
      Tric_core.Tric.add_query t p;
      Hashtbl.add instances (Tric_query.Pattern.id p) t)
    ~remove_query:(fun qid ->
      Hashtbl.mem instances qid
      &&
      (Hashtbl.remove instances qid;
       true))
    ~num_queries:(fun () -> Hashtbl.length instances)
    ~handle_update:(fun u ->
      Hashtbl.fold (fun _ t acc -> Tric_core.Tric.handle_update t u @ acc) instances []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b))
    ~current_matches:(fun qid -> Tric_core.Tric.current_matches (Hashtbl.find instances qid) qid)
    ~memory_words:(fun () -> Obj.reachable_words (Obj.repr instances))
    ()

let tric_naive_cover () =
  Matcher.of_tric (Tric_core.Tric.create ~strategy:Tric_query.Cover.Naive ())

let windowed ~window inner =
  let w = Window.create ~window inner in
  Matcher.make
    ~name:(Printf.sprintf "%s/win%d" inner.Matcher.name window)
    ~description:"sliding-window wrapper" ~stats:inner.Matcher.stats
    ~shards:inner.Matcher.shards ~busy_s:inner.Matcher.busy_s
    ~shard_busy:inner.Matcher.shard_busy ~metrics:inner.Matcher.metrics
    ~spans:inner.Matcher.spans ~shutdown:inner.Matcher.shutdown
    ~add_query:(Window.add_query w)
    ~remove_query:inner.Matcher.remove_query ~num_queries:inner.Matcher.num_queries
    ~handle_update:(Window.handle_update w)
    ~current_matches:inner.Matcher.current_matches
    ~memory_words:(fun () -> Obj.reachable_words (Obj.repr w))
    ()

(* Shard count for trie engines picked up from the environment so every
   entry point (CLI replays, benches, CI) can run a shard matrix without
   new plumbing; an explicit [shards] argument wins. *)
let env_shards () =
  match Sys.getenv_opt "TRIC_SHARDS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "TRIC_SHARDS=%S: expected a positive integer" s))

(* Same environment pattern for telemetry: TRIC_METRICS=1 switches the
   instrumented constructors on everywhere without per-entry-point flags. *)
let env_metrics () =
  match Sys.getenv_opt "TRIC_METRICS" with
  | None -> false
  | Some s -> (
    match String.trim s with
    | "" | "0" | "false" -> false
    | "1" | "true" -> true
    | s -> invalid_arg (Printf.sprintf "TRIC_METRICS=%S: expected 0/1/true/false" s))

let by_name ?shards ?metrics name =
  let shards = match shards with Some n -> n | None -> env_shards () in
  let metrics = match metrics with Some b -> b | None -> env_metrics () in
  match name with
  | "TRIC" -> tric ~shards ~metrics ()
  | "TRIC+" -> tric ~cache:true ~shards ~metrics ()
  | "INV" -> inv ~metrics ()
  | "INV+" -> inv ~cache:true ~metrics ()
  | "INC" -> inc ~metrics ()
  | "INC+" -> inc ~cache:true ~metrics ()
  | "GraphDB" | "Neo4j" -> graphdb ()
  | "NAIVE" -> naive ()
  | "ISO" -> iso ()
  | "TRIC-naivecover" -> tric_naive_cover ()
  | name -> invalid_arg (Printf.sprintf "Engines.by_name: unknown engine %S" name)

let paper_names = [ "TRIC"; "TRIC+"; "INV"; "INV+"; "INC"; "INC+"; "GraphDB" ]
let trie_names = [ "TRIC"; "TRIC+" ]
