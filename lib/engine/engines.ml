let tric ?(cache = false) ?(shards = 1) ?(metrics = false) () =
  Matcher.of_tric (Tric_core.Tric.create ~cache ~shards ~metrics ())

let inv ?(cache = false) ?(metrics = false) () =
  Matcher.of_invidx
    (Tric_baselines.Invidx.create ~cache ~metrics ~mode:Tric_baselines.Invidx.Full ())

let inc ?(cache = false) ?(metrics = false) () =
  Matcher.of_invidx
    (Tric_baselines.Invidx.create ~cache ~metrics ~mode:Tric_baselines.Invidx.Seeded ())

let graphdb () = Matcher.of_graphdb (Tric_graphdb.Continuous.create ())
let naive () = Matcher.of_naive (Naive.create ())

let iso () =
  let instances : (int, Tric_core.Tric.t) Hashtbl.t = Hashtbl.create 256 in
  Matcher.make ~name:"ISO"
    ~description:"one isolated TRIC per query (single-query paradigm, no sharing)"
    ~add_query:(fun p ->
      let t = Tric_core.Tric.create () in
      Tric_core.Tric.add_query t p;
      Hashtbl.add instances (Tric_query.Pattern.id p) t)
    ~remove_query:(fun qid ->
      Hashtbl.mem instances qid
      &&
      (Hashtbl.remove instances qid;
       true))
    ~num_queries:(fun () -> Hashtbl.length instances)
    ~handle_update:(fun u ->
      Hashtbl.fold
        (fun _ t acc -> Report.of_pair (Tric_core.Tric.handle_update t u) :: acc)
        instances []
      |> Report.merge)
    ~current_matches:(fun qid -> Tric_core.Tric.current_matches (Hashtbl.find instances qid) qid)
    ~memory_words:(fun () -> Obj.reachable_words (Obj.repr instances))
    ()

let tric_naive_cover () =
  Matcher.of_tric (Tric_core.Tric.create ~strategy:Tric_query.Cover.Naive ())

(* Lift a Window.t into the uniform Matcher.t handle, everything wired:
   the real batch path, the window-coherence audit chained into the inner
   engines' own auditors, query removal, and expiry/lateness counters
   surfaced through [stats]. *)
let of_window ~name w =
  let inners () = Window.engines w in
  Matcher.make ~name
    ~description:"windowed wrapper: per-spec query groups, watermark-driven expiry"
    ~stats:(fun () -> Window.stats w)
    ~audit:(Window.audit w)
    ~handle_batch:(Window.handle_batch w)
    ~shards:(List.fold_left (fun n e -> max n e.Matcher.shards) 1 (inners ()))
    ~busy_s:(fun () -> List.fold_left (fun a e -> a +. e.Matcher.busy_s ()) 0.0 (inners ()))
    ~shard_busy:(fun () ->
      match inners () with [ e ] -> e.Matcher.shard_busy () | _ -> [||])
    ~metrics:(fun () ->
      match inners () with [ e ] -> e.Matcher.metrics () | _ -> Tric_obs.Snapshot.empty)
    ~spans:(fun () -> List.concat_map (fun e -> e.Matcher.spans ()) (inners ()))
    ~shutdown:(fun () -> Window.shutdown w)
    ~add_query:(Window.add_query w)
    ~remove_query:(Window.remove_query w)
    ~num_queries:(fun () -> Window.num_queries w)
    ~handle_update:(Window.handle_update w)
    ~current_matches:(Window.current_matches w)
    ~memory_words:(fun () -> Obj.reachable_words (Obj.repr w))
    ()

let windowed ~window inner =
  let w = Window.create ~window inner in
  of_window ~name:(Printf.sprintf "%s/win%d" inner.Matcher.name window) w

let windowed_spec ?slack ?default factory =
  let w = Window.make ?default ?slack factory in
  let base = match Window.engines w with e :: _ -> e.Matcher.name | [] -> "?" in
  let name =
    match default with
    | Some s -> Printf.sprintf "%s/win[%s]" base (Tric_query.Wspec.to_string s)
    | None -> Printf.sprintf "%s/win" base
  in
  of_window ~name w

(* Shard count for trie engines picked up from the environment so every
   entry point (CLI replays, benches, CI) can run a shard matrix without
   new plumbing; an explicit [shards] argument wins. *)
let env_shards () =
  match Sys.getenv_opt "TRIC_SHARDS" with
  | None -> 1
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None ->
      invalid_arg (Printf.sprintf "TRIC_SHARDS=%S: expected a positive integer" s))

(* Same environment pattern for telemetry: TRIC_METRICS=1 switches the
   instrumented constructors on everywhere without per-entry-point flags. *)
let env_metrics () =
  match Sys.getenv_opt "TRIC_METRICS" with
  | None -> false
  | Some s -> (
    match String.trim s with
    | "" | "0" | "false" -> false
    | "1" | "true" -> true
    | s -> invalid_arg (Printf.sprintf "TRIC_METRICS=%S: expected 0/1/true/false" s))

(* And for windows: TRIC_WINDOW carries a Wspec in surface syntax
   ("1h", "90s TUMBLING", "1000 EVENTS", "500") and becomes the default
   window of every engine [by_name] builds. *)
let env_window () =
  match Sys.getenv_opt "TRIC_WINDOW" with
  | None | Some "" -> None
  | Some s -> (
    match Tric_query.Wspec.of_string s with
    | Ok spec -> Some spec
    | Error msg -> invalid_arg (Printf.sprintf "TRIC_WINDOW=%S: %s" s msg))

let by_name ?shards ?metrics ?window name =
  let shards = match shards with Some n -> n | None -> env_shards () in
  let metrics = match metrics with Some b -> b | None -> env_metrics () in
  let window = match window with Some _ as w -> w | None -> env_window () in
  let mk () =
    match name with
    | "TRIC" -> tric ~shards ~metrics ()
    | "TRIC+" -> tric ~cache:true ~shards ~metrics ()
    | "INV" -> inv ~metrics ()
    | "INV+" -> inv ~cache:true ~metrics ()
    | "INC" -> inc ~metrics ()
    | "INC+" -> inc ~cache:true ~metrics ()
    | "GraphDB" | "Neo4j" -> graphdb ()
    | "NAIVE" -> naive ()
    | "ISO" -> iso ()
    | "TRIC-naivecover" -> tric_naive_cover ()
    | name -> invalid_arg (Printf.sprintf "Engines.by_name: unknown engine %S" name)
  in
  match window with
  | None -> mk ()
  | Some spec -> windowed_spec ~default:spec mk

let paper_names = [ "TRIC"; "TRIC+"; "INV"; "INV+"; "INC"; "INC+"; "GraphDB" ]
let trie_names = [ "TRIC"; "TRIC+" ]
