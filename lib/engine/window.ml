open Tric_graph
open Tric_query

(* Queries are grouped by their window spec; each group owns a private
   inner engine built by the factory, so expiry removals for one window
   shape never disturb queries scoped by another.  Retention bookkeeping
   (queues, deadlines, the watermark) lives here; all matching work stays
   in the inner engines, which see expiry as ordinary §4.3 removals. *)
type group = {
  spec : Wspec.t option;  (* None = unbounded pass-through *)
  inner : Matcher.t;
  (* Count windows: arrival order as a queue of edges plus per-edge live
     queue-cell counts.  Refreshing a duplicate enqueues a newer cell and
     marks the older stale (lazy deletion) instead of scanning. *)
  order : Edge.t Queue.t;
  cells : int Edge.Tbl.t;
  mutable bucket : int;  (* tumbling count: additions in the open bucket *)
  (* Time windows: edge -> expiry deadline, plus a lazily-invalidated
     min-heap of (deadline, edge) so each watermark advance pops exactly
     the expired suffix. *)
  deadline : int Edge.Tbl.t;
  mutable heap : (int * Edge.t) array;
  mutable heap_len : int;
}

type t = {
  factory : unit -> Matcher.t;
  default : Wspec.t option;  (* spec for queries without their own *)
  respect_specs : bool;  (* false: legacy wrapper overrides WITHIN *)
  mutable groups : group list;  (* creation order *)
  owner : (int, group) Hashtbl.t;  (* qid -> its group *)
  slack : int;  (* allowed out-of-orderness, seconds *)
  mutable wm : int;  (* event-time watermark; min_int = none yet *)
  mutable late_dropped : int;
  mutable expired_edges : int;
  mutable expiry_batches : int;
  mutable suppress_expiry : bool;  (* Corrupt hook: audit must catch this *)
}

(* --- binary min-heap on deadline ------------------------------------- *)

let heap_swap h i j =
  let tmp = h.(i) in
  h.(i) <- h.(j);
  h.(j) <- tmp

let heap_push g d e =
  if g.heap_len = Array.length g.heap then begin
    let grown = Array.make (max 8 (2 * Array.length g.heap)) (d, e) in
    Array.blit g.heap 0 grown 0 g.heap_len;
    g.heap <- grown
  end;
  g.heap.(g.heap_len) <- (d, e);
  let i = ref g.heap_len in
  g.heap_len <- g.heap_len + 1;
  while !i > 0 && fst g.heap.((!i - 1) / 2) > fst g.heap.(!i) do
    let p = (!i - 1) / 2 in
    heap_swap g.heap !i p;
    i := p
  done

let heap_pop g =
  let root = g.heap.(0) in
  g.heap_len <- g.heap_len - 1;
  g.heap.(0) <- g.heap.(g.heap_len);
  let i = ref 0 in
  let sifting = ref true in
  while !sifting do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let s = ref !i in
    if l < g.heap_len && fst g.heap.(l) < fst g.heap.(!s) then s := l;
    if r < g.heap_len && fst g.heap.(r) < fst g.heap.(!s) then s := r;
    if !s = !i then sifting := false
    else begin
      heap_swap g.heap !i !s;
      i := !s
    end
  done;
  root

(* --- groups ----------------------------------------------------------- *)

let new_group t spec =
  let g =
    {
      spec;
      inner = t.factory ();
      order = Queue.create ();
      cells = Edge.Tbl.create 256;
      bucket = 0;
      deadline = Edge.Tbl.create 256;
      heap = [||];
      heap_len = 0;
    }
  in
  t.groups <- t.groups @ [ g ];
  g

let group_for t spec =
  match List.find_opt (fun g -> Option.equal Wspec.equal g.spec spec) t.groups with
  | Some g -> g
  | None -> new_group t spec

let is_time g =
  match g.spec with Some (Wspec.Time _) -> true | Some (Wspec.Count _) | None -> false

let group_live_edges g =
  if is_time g then Edge.Tbl.fold (fun e _ acc -> e :: acc) g.deadline []
  else Edge.Tbl.fold (fun e _ acc -> e :: acc) g.cells []

let group_live_count g =
  if is_time g then Edge.Tbl.length g.deadline else Edge.Tbl.length g.cells

(* --- constructors ------------------------------------------------------ *)

let make ?default ?(slack = 0) factory =
  if slack < 0 then invalid_arg "Window.make: slack < 0";
  let t =
    {
      factory;
      default;
      respect_specs = true;
      groups = [];
      owner = Hashtbl.create 64;
      slack;
      wm = min_int;
      late_dropped = 0;
      expired_edges = 0;
      expiry_batches = 0;
      suppress_expiry = false;
    }
  in
  (* A windowed default group exists from the start so updates preceding
     the first query registration are retained (and [engine] works).
     Without a default spec, clause-less queries run unwindowed and their
     group — like every spec group — is created at registration: an eager
     unbounded group would shadow the whole stream for nobody. *)
  (match default with Some _ -> ignore (group_for t default) | None -> ());
  t

let create ~window inner =
  if window <= 0 then invalid_arg "Window.create: window <= 0";
  let served = ref false in
  let factory () =
    if !served then
      invalid_arg "Window.create: the legacy wrapper serves a single group"
    else begin
      served := true;
      inner
    end
  in
  let t =
    {
      factory;
      default = Some (Wspec.Count { shape = Wspec.Sliding; size = window });
      respect_specs = false;
      groups = [];
      owner = Hashtbl.create 64;
      slack = 0;
      wm = min_int;
      late_dropped = 0;
      expired_edges = 0;
      expiry_batches = 0;
      suppress_expiry = false;
    }
  in
  ignore (group_for t t.default);
  t

(* --- query registry ---------------------------------------------------- *)

let add_query t p =
  let spec =
    if t.respect_specs then
      match Pattern.window p with Some w -> Some w | None -> t.default
    else t.default
  in
  let g = group_for t spec in
  g.inner.Matcher.add_query p;
  Hashtbl.replace t.owner (Pattern.id p) g

let remove_query t qid =
  match Hashtbl.find_opt t.owner qid with
  | None -> false
  | Some g ->
    Hashtbl.remove t.owner qid;
    g.inner.Matcher.remove_query qid

let num_queries t = Hashtbl.length t.owner
let spec_of t qid = Option.map (fun g -> g.spec) (Hashtbl.find_opt t.owner qid)

let current_matches t qid =
  match Hashtbl.find_opt t.owner qid with
  | Some g -> g.inner.Matcher.current_matches qid
  | None -> raise Not_found

(* --- retention bookkeeping --------------------------------------------- *)

(* Pop stale/overflow queue cells until the distinct live set fits;
   returns the evicted edges, oldest first. *)
let rec evict_excess g size acc =
  if Edge.Tbl.length g.cells <= size then List.rev acc
  else
    match Queue.take_opt g.order with
    | None -> List.rev acc
    | Some e -> (
      match Edge.Tbl.find_opt g.cells e with
      | None -> evict_excess g size acc (* explicitly removed earlier *)
      | Some n when n > 1 ->
        (* Stale cell: the edge was refreshed later in the queue. *)
        Edge.Tbl.replace g.cells e (n - 1);
        evict_excess g size acc
      | Some _ ->
        Edge.Tbl.remove g.cells e;
        evict_excess g size (e :: acc))

let flush_bucket g =
  let expired = Edge.Tbl.fold (fun e _ acc -> e :: acc) g.cells [] in
  Edge.Tbl.reset g.cells;
  Queue.clear g.order;
  g.bucket <- 0;
  expired

(* Bookkeep one update in [g]; returns the expiry removals it forces, in
   eviction order, to be applied to the inner engine {e before} it. *)
let retain t g (u : Update.t) =
  match u.Update.op with
  | Update.Remove e ->
    (* Explicit removal frees the slot; count-window queue cells stay
       behind as stale entries that [evict_excess] skips. *)
    Edge.Tbl.remove g.cells e;
    Edge.Tbl.remove g.deadline e;
    []
  | Update.Add e -> (
    match g.spec with
    | None ->
      Edge.Tbl.replace g.cells e 1;
      []
    | Some (Wspec.Count { shape = Wspec.Sliding; size }) -> (
      Queue.add e g.order;
      match Edge.Tbl.find_opt g.cells e with
      | Some n ->
        (* Refresh: the newer cell supersedes the older. *)
        Edge.Tbl.replace g.cells e (n + 1);
        []
      | None ->
        Edge.Tbl.add g.cells e 1;
        if t.suppress_expiry then [] else evict_excess g size [])
    | Some (Wspec.Count { shape = Wspec.Tumbling; size }) ->
      let expired =
        if g.bucket >= size && not t.suppress_expiry then flush_bucket g else []
      in
      g.bucket <- g.bucket + 1;
      Edge.Tbl.replace g.cells e 1;
      expired
    | Some (Wspec.Time _ as spec) ->
      let d = Wspec.deadline spec ~ts:u.Update.ts in
      Edge.Tbl.replace g.deadline e d;
      heap_push g d e;
      [])

(* Time-window expiry at the current watermark: pop every heap entry at or
   past it, skipping entries invalidated by a refresh or explicit removal. *)
let expired_now t g =
  if t.suppress_expiry then []
  else begin
    let acc = ref [] in
    while g.heap_len > 0 && fst g.heap.(0) <= t.wm do
      let d, e = heap_pop g in
      match Edge.Tbl.find_opt g.deadline e with
      | Some d' when d' = d ->
        Edge.Tbl.remove g.deadline e;
        acc := e :: !acc
      | Some _ | None -> ()
    done;
    List.rev !acc
  end

let has_time_group t = List.exists is_time t.groups

(* Late = an addition whose event time sits behind the watermark.  Late
   removals still apply: the edge they name may well be live, and dropping
   them would desynchronize the window from the stream's ground truth.
   Without any time window there is no watermark and nothing is late. *)
let is_late t (u : Update.t) =
  Update.is_addition u && has_time_group t && t.wm > min_int && u.Update.ts < t.wm

let advance t ts =
  if has_time_group t then begin
    let candidate = ts - t.slack in
    if candidate > t.wm then t.wm <- candidate
  end

(* --- update processing ------------------------------------------------- *)

let feed g ops =
  match ops with
  | [] -> Report.empty
  | [ u ] -> g.inner.Matcher.handle_update u
  | ops -> g.inner.Matcher.handle_batch ops

let note_expiry t = function
  | [] -> ()
  | expired ->
    t.expired_edges <- t.expired_edges + List.length expired;
    t.expiry_batches <- t.expiry_batches + 1

let handle_update t u =
  if is_late t u then begin
    t.late_dropped <- t.late_dropped + 1;
    Report.empty
  end
  else begin
    advance t u.Update.ts;
    Report.merge
      (List.map
         (fun g ->
           let timed_out = expired_now t g in
           let evicted = retain t g u in
           let expired = timed_out @ evicted in
           note_expiry t expired;
           (* One net-op removal batch per expiry wave; its retractions
              come back merged into the triggering update's report. *)
           feed g (List.map Update.remove expired @ [ u ]))
         t.groups)
  end

let handle_batch t updates =
  (* Retention and the watermark run eagerly, update by update, so count
     eviction and expiry interleave at the right positions; the engine
     work is deferred to one net-op batch per group. *)
  let acc = List.map (fun g -> (g, ref [])) t.groups in
  List.iter
    (fun u ->
      if is_late t u then t.late_dropped <- t.late_dropped + 1
      else begin
        advance t u.Update.ts;
        List.iter
          (fun (g, ops) ->
            let timed_out = expired_now t g in
            let evicted = retain t g u in
            let expired = timed_out @ evicted in
            note_expiry t expired;
            ops := (u :: List.rev_map Update.remove expired) @ !ops)
          acc
      end)
    updates;
  Report.merge (List.map (fun (g, ops) -> feed g (List.rev !ops)) acc)

(* --- observation -------------------------------------------------------- *)

let live_edges t = List.fold_left (fun n g -> n + group_live_count g) 0 t.groups
let watermark t = if t.wm = min_int then None else Some t.wm
let late_dropped t = t.late_dropped
let expired_edges t = t.expired_edges
let expiry_batches t = t.expiry_batches

let engine t =
  match t.groups with
  | [ g ] -> g.inner
  | _ -> invalid_arg "Window.engine: not a single-group window"

let engines t = List.map (fun g -> g.inner) t.groups
let shutdown t = List.iter (fun g -> g.inner.Matcher.shutdown ()) t.groups

let stats t =
  let inner =
    match t.groups with
    | [ g ] -> g.inner.Matcher.stats ()
    | groups ->
      (* Key-wise counter sum across the groups' engines. *)
      let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 32 in
      let order = ref [] in
      List.iter
        (fun g ->
          List.iter
            (fun (k, v) ->
              match Hashtbl.find_opt tbl k with
              | Some cell -> cell := !cell + v
              | None ->
                Hashtbl.add tbl k (ref v);
                order := k :: !order)
            (g.inner.Matcher.stats ()))
        groups;
      List.rev_map (fun k -> (k, !(Hashtbl.find tbl k))) !order
  in
  inner
  @ [
      ("win_groups", List.length t.groups);
      ("win_live_edges", live_edges t);
      ("win_late_dropped", t.late_dropped);
      ("win_expired_edges", t.expired_edges);
      ("win_expiry_batches", t.expiry_batches);
    ]

(* --- audit -------------------------------------------------------------- *)

let audit t edges =
  let module A = Tric_audit.Audit in
  let findings = ref [] in
  let flag detail =
    findings :=
      { A.severity = A.Error; location = A.Window; invariant = "window-coherence"; detail }
      :: !findings
  in
  let ground =
    Option.map
      (fun es ->
        let tbl = Edge.Tbl.create (max 16 (List.length es)) in
        List.iter (fun e -> Edge.Tbl.replace tbl e ()) es;
        tbl)
      edges
  in
  List.iter
    (fun g ->
      let live = group_live_edges g in
      (* Retention state obeys the spec: no edge outlives its deadline or
         its window's capacity. *)
      (match g.spec with
      | Some (Wspec.Time _) ->
        if t.wm > min_int then
          Edge.Tbl.iter
            (fun e d ->
              if d <= t.wm then
                flag
                  (Format.asprintf
                     "edge %a expired at deadline %d but is still live at watermark %d"
                     Edge.pp e d t.wm))
            g.deadline
      | Some (Wspec.Count { shape = Wspec.Sliding; size }) ->
        let n = Edge.Tbl.length g.cells in
        if n > size then
          flag
            (Printf.sprintf "sliding count window holds %d distinct edges, capacity %d" n
               size)
      | Some (Wspec.Count { shape = Wspec.Tumbling; size }) ->
        if g.bucket > size then
          flag
            (Printf.sprintf "tumbling count bucket reached %d additions, capacity %d"
               g.bucket size)
      | None -> ());
      (* The window never retains an edge the stream has dropped. *)
      (match ground with
      | Some tbl ->
        List.iter
          (fun e ->
            if not (Edge.Tbl.mem tbl e) then
              flag
                (Format.asprintf "edge %a is window-live but absent from the stream"
                   Edge.pp e))
          live
      | None -> ());
      (* The inner engine is certified against the window's own live set —
         an expiry removal that never reached it surfaces here as a
         base-coherence divergence. *)
      findings := g.inner.Matcher.audit (Some live) @ !findings)
    t.groups;
  List.rev !findings

module Corrupt = struct
  let suppress_expiry t = t.suppress_expiry <- true
end
