open Tric_graph
open Tric_query
open Tric_rel

type t = {
  g : Graph.t;
  queries : (int, Pattern.t) Hashtbl.t;
}

let create () = { g = Graph.create (); queries = Hashtbl.create 64 }

let add_query t p =
  if Hashtbl.mem t.queries (Pattern.id p) then
    invalid_arg "Naive.add_query: duplicate query id";
  Hashtbl.add t.queries (Pattern.id p) p

let remove_query t qid =
  Hashtbl.mem t.queries qid
  &&
  (Hashtbl.remove t.queries qid;
   true)

let num_queries t = Hashtbl.length t.queries
let graph t = t.g

(* Backtracking extension: repeatedly pick an unmapped pattern edge with a
   bound endpoint and try every consistent graph edge. *)
let rec extend g q emb mapped acc =
  let unmapped =
    Array.to_list (Pattern.edges q)
    |> List.filter (fun (pe : Pattern.pedge) -> not (List.exists (Int.equal pe.eid) mapped))
  in
  match
    List.find_opt
      (fun (pe : Pattern.pedge) ->
        Embedding.is_bound emb pe.src || Embedding.is_bound emb pe.dst)
      unmapped
  with
  | None ->
    if unmapped = [] then acc := emb :: !acc
    (* Connected patterns never hit the else branch (some edge always
       touches the bound region once one edge is mapped). *)
    else ()
  | Some pe ->
    let candidates =
      match (Embedding.get emb pe.src, Embedding.get emb pe.dst) with
      | Some s, Some d ->
        if Graph.mem_edge g (Edge.make ~label:pe.elabel ~src:s ~dst:d) then [ (s, d) ]
        else []
      | Some s, None ->
        List.map (fun d -> (s, d)) (Graph.succ g ~label:pe.elabel s)
      | None, Some d ->
        List.map (fun s -> (s, d)) (Graph.pred g ~label:pe.elabel d)
      | None, None -> assert false
    in
    List.iter
      (fun (s, d) ->
        if Term.matches (Pattern.term q pe.src) s && Term.matches (Pattern.term q pe.dst) d
        then
          match Embedding.bind emb pe.src s with
          | None -> ()
          | Some emb ->
            (match Embedding.bind emb pe.dst d with
            | None -> ()
            | Some emb -> extend g q emb (pe.eid :: mapped) acc))
      candidates

let anchored_embeddings g q (e : Edge.t) =
  let width = Pattern.num_vertices q in
  let acc = ref [] in
  Array.iter
    (fun (pe : Pattern.pedge) ->
      if
        Label.equal pe.elabel e.label
        && Term.matches (Pattern.term q pe.src) e.src
        && Term.matches (Pattern.term q pe.dst) e.dst
      then begin
        match Embedding.bind (Embedding.empty width) pe.src e.src with
        | None -> ()
        | Some emb ->
          (match Embedding.bind emb pe.dst e.dst with
          | None -> ()
          | Some emb -> extend g q emb [ pe.eid ] acc)
      end)
    (Pattern.edges q);
  List.sort_uniq Embedding.compare !acc

let embeddings_in g q =
  let width = Pattern.num_vertices q in
  let first = Pattern.edge q 0 in
  let acc = ref [] in
  List.iter
    (fun (ge : Edge.t) ->
      if
        Term.matches (Pattern.term q first.src) ge.src
        && Term.matches (Pattern.term q first.dst) ge.dst
      then begin
        match Embedding.bind (Embedding.empty width) first.src ge.src with
        | None -> ()
        | Some emb ->
          (match Embedding.bind emb first.dst ge.dst with
          | None -> ()
          | Some emb -> extend g q emb [ first.eid ] acc)
      end)
    (Graph.edges_with_label g first.elabel);
  List.sort_uniq Embedding.compare !acc

(* Every match anchored on [e], per query — the matches an addition of [e]
   creates and, symmetrically, the matches a removal of [e] destroys.  Only
   meaningful while [e] is in the graph: [anchored_embeddings] binds the
   anchor without checking the edge exists. *)
let anchored_channel t e =
  let out = ref [] in
  Hashtbl.iter
    (fun qid q ->
      match anchored_embeddings t.g q e with
      | [] -> ()
      | l -> out := (qid, l) :: !out)
    t.queries;
  Report.normalise_channel !out

let handle_update t u =
  match u.Update.op with
  | Update.Remove e ->
    let retractions = if Graph.mem_edge t.g e then anchored_channel t e else [] in
    ignore (Graph.remove_edge t.g e);
    { Report.empty with retractions }
  | Update.Add e ->
    if not (Graph.add_edge t.g e) then Report.empty
    else Report.of_matches (anchored_channel t e)

let current_matches t qid =
  match Hashtbl.find_opt t.queries qid with
  | None -> raise Not_found
  | Some q -> embeddings_in t.g q
