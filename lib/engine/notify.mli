(** Publish/subscribe layer.

    The paper's setting is a pub/sub system: users (or services on their
    behalf) subscribe with query graph patterns and are notified when the
    evolving graph satisfies them (§1, §3.2).  This module is that last
    mile: it owns an engine, hands out subscription handles, and delivers
    per-subscription callbacks as the stream flows. *)

open Tric_graph
open Tric_query
open Tric_rel

type t
type subscription

type event = {
  subscription : subscription;
  update : Update.t;  (** the update that triggered the notification *)
  embeddings : Embedding.t list;  (** the new matches *)
  retracted : Embedding.t list;
      (** previously-notified matches this update destroyed — explicit
          removals and window expiry; at least one of [embeddings] /
          [retracted] is non-empty *)
  seqno : int;  (** position of the update in the published stream *)
}

val create : Matcher.t -> t
(** The engine must be freshly created (the notifier owns its query ids). *)

val subscribe : t -> ?name:string -> pattern:Pattern.t -> (event -> unit) -> subscription
(** Register a continuous query.  The pattern's own id is ignored; the
    notifier assigns a fresh one.  Two subscriptions may use identical
    patterns — clustering in the engine makes the duplicate nearly free. *)

val unsubscribe : t -> subscription -> bool
val subscription_name : subscription -> string
val subscription_pattern : subscription -> Pattern.t
val num_subscriptions : t -> int

val publish : t -> Update.t -> int
(** Feed one update; run the callbacks of every satisfied subscription.
    Returns the number of notifications delivered. *)

val publish_stream : t -> Stream.t -> int
