open Tric_graph
open Tric_query
open Tric_rel

type constr = {
  vid : int;
  key : string;
  value : string;
}

type query_info = {
  constraints : constr list;
  (* Embeddings already delivered, so a later property assertion only
     fires matches that were blocked on it.  Only kept for constrained
     queries. *)
  delivered : unit Embedding.Tbl.t option;
}

type t = {
  inner : Matcher.t;
  props : (int * string, string) Hashtbl.t; (* (vertex label id, key) -> value *)
  queries : (int, query_info) Hashtbl.t;
  by_key : (string, int list ref) Hashtbl.t; (* property key -> constrained qids *)
}

let create inner =
  { inner; props = Hashtbl.create 256; queries = Hashtbl.create 64; by_key = Hashtbl.create 16 }

let add_query t ?(constraints = []) pattern =
  List.iter
    (fun c ->
      if c.vid < 0 || c.vid >= Pattern.num_vertices pattern then
        invalid_arg "Props.add_query: constraint on unknown vertex id")
    constraints;
  t.inner.Matcher.add_query pattern;
  let qid = Pattern.id pattern in
  let delivered = if constraints = [] then None else Some (Embedding.Tbl.create 64) in
  Hashtbl.replace t.queries qid { constraints; delivered };
  List.iter
    (fun c ->
      match Hashtbl.find_opt t.by_key c.key with
      | Some cell -> if not (List.exists (Int.equal qid) !cell) then cell := qid :: !cell
      | None -> Hashtbl.add t.by_key c.key (ref [ qid ]))
    constraints

let get_prop t vertex key = Hashtbl.find_opt t.props (Label.to_int vertex, key)

let constraint_holds t emb c =
  match Embedding.get emb c.vid with
  | None -> false
  | Some v -> (
    match get_prop t v c.key with Some value -> String.equal value c.value | None -> false)

let satisfies t info emb = List.for_all (constraint_holds t emb) info.constraints

(* Filter the match channel through the constraint phase, recording
   deliveries of constrained queries. *)
let filter_matches t channel =
  List.filter_map
    (fun (qid, embeddings) ->
      match Hashtbl.find_opt t.queries qid with
      | None -> Some (qid, embeddings)
      | Some info -> (
        let ok = List.filter (fun e -> satisfies t info e) embeddings in
        (match info.delivered with
        | Some tbl -> List.iter (fun e -> Embedding.Tbl.replace tbl e ()) ok
        | None -> ());
        match ok with [] -> None | _ -> Some (qid, ok)))
    channel

(* A retraction is delivered iff the destroyed match would have been — its
   constraints hold — and it frees the delivery slot so a reappearing
   match notifies again. *)
let filter_retractions t channel =
  List.filter_map
    (fun (qid, embeddings) ->
      match Hashtbl.find_opt t.queries qid with
      | None -> Some (qid, embeddings)
      | Some info -> (
        let ok = List.filter (fun e -> satisfies t info e) embeddings in
        (match info.delivered with
        | Some tbl -> List.iter (fun e -> Embedding.Tbl.remove tbl e) ok
        | None -> ());
        match ok with [] -> None | _ -> Some (qid, ok)))
    channel

let handle_update t u =
  let r = t.inner.Matcher.handle_update u in
  {
    Report.matches = filter_matches t r.Report.matches;
    retractions = filter_retractions t r.Report.retractions;
  }

let set_prop t vertex key value =
  Hashtbl.replace t.props (Label.to_int vertex, key) value;
  let qids = match Hashtbl.find_opt t.by_key key with Some cell -> !cell | None -> [] in
  List.filter_map
    (fun qid ->
      match Hashtbl.find_opt t.queries qid with
      | None -> None
      | Some info -> (
        let fresh =
          t.inner.Matcher.current_matches qid
          |> List.filter (fun e ->
                 satisfies t info e
                 &&
                 match info.delivered with
                 | Some tbl ->
                   if Embedding.Tbl.mem tbl e then false
                   else begin
                     Embedding.Tbl.replace tbl e ();
                     true
                   end
                 | None -> true)
        in
        match fresh with [] -> None | _ -> Some (qid, fresh)))
    qids
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> Report.of_matches

let current_matches t qid =
  let matches = t.inner.Matcher.current_matches qid in
  match Hashtbl.find_opt t.queries qid with
  | None -> matches
  | Some info -> List.filter (fun e -> satisfies t info e) matches
