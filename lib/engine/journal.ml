open Tric_graph
open Tric_query

let log_src = Logs.Src.create "tric.journal" ~doc:"write-ahead journal"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  inner : Matcher.t;
  path : string;
  mutable oc : out_channel;
  mutable count : int;
  replayed : int;
  restored : int;
  live : int Edge.Tbl.t; (* live edge -> latest event timestamp *)
  pats : (int, Pattern.t) Hashtbl.t;
  aux_state : (unit -> string) option;
  mutable snapid : int;
  mutable snapshots : int;
}

let snap_path path = path ^ ".snap"
let snap_magic = "TRICSNP1"

(* -- record framing ----------------------------------------------------------

   Every record this version appends is CRC-framed: [!%08x\t<payload>],
   the checksum covering the payload bytes.  Records without the [!]
   prefix are legacy (pre-CRC) journals and replay unchecked.  A checksum
   mismatch ANYWHERE but the final record is silent mid-file corruption —
   flipped bits, a hole punched by another process — and fails loudly;
   on the final record it is indistinguishable from a torn append and is
   truncated away like any other tear. *)

let frame payload = Printf.sprintf "!%08x\t%s" (Binio.crc32 payload) payload

let payload_of_line lineno line =
  if String.length line > 0 && line.[0] = '!' then begin
    if String.length line < 10 || line.[9] <> '\t' then
      failwith (Printf.sprintf "Journal: malformed CRC prefix on line %d" lineno);
    let crc =
      match int_of_string_opt ("0x" ^ String.sub line 1 8) with
      | Some crc -> crc
      | None -> failwith (Printf.sprintf "Journal: malformed CRC prefix on line %d" lineno)
    in
    let payload = String.sub line 10 (String.length line - 10) in
    if Binio.crc32 payload <> crc then
      failwith (Printf.sprintf "Journal: CRC mismatch on line %d" lineno);
    payload
  end
  else line

(* Replay one payload.  [`Record] counts toward {!entries}; [`Marker id]
   is the post-compaction snapshot marker; [`Layout] is a blank or
   comment line.  Raises [Failure] on a malformed record. *)
let replay_payload ~engine ~live ~pats ~on_query ~on_replay ~on_remove ~on_aux lineno
    payload =
  if payload = "" || payload.[0] = '#' then `Layout
  else if String.length payload >= 2 && payload.[0] = 'X' && payload.[1] = '\t' then begin
    on_aux (String.sub payload 2 (String.length payload - 2));
    `Record
  end
  else
    match String.split_on_char '\t' payload with
    | [ "Q"; id; qname; pattern ] -> (
      match int_of_string_opt id with
      | Some id ->
        let p = Parse.pattern ~name:qname ~id pattern in
        engine.Matcher.add_query p;
        Hashtbl.replace pats id p;
        on_query p;
        `Record
      | None -> failwith (Printf.sprintf "Journal: bad query id on line %d" lineno))
    | [ "U"; u ] ->
      let u = Parse.update u in
      let r = engine.Matcher.handle_update u in
      (match u.Update.op with
      | Update.Add e -> Edge.Tbl.replace live e (Update.ts u)
      | Update.Remove e -> Edge.Tbl.remove live e);
      on_replay u r;
      `Record
    | [ "W"; qid ] -> (
      match int_of_string_opt qid with
      | Some qid ->
        ignore (engine.Matcher.remove_query qid);
        Hashtbl.remove pats qid;
        on_remove qid;
        `Record
      | None -> failwith (Printf.sprintf "Journal: bad query id on line %d" lineno))
    | [ "S"; id ] -> (
      match int_of_string_opt id with
      | Some id -> `Marker id
      | None -> failwith (Printf.sprintf "Journal: bad snapshot marker on line %d" lineno))
    | _ -> failwith (Printf.sprintf "Journal: malformed line %d" lineno)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* -- snapshot ----------------------------------------------------------------

   [<path>.snap] is a binary image of the journalled state: registered
   queries, the live edge set with latest event timestamps, and an opaque
   aux blob for the caller's own state (the server stores its client
   table there).  Body is CRC-protected and written via tmp+rename, so a
   crash mid-write never damages the previous snapshot.

   Compaction protocol: write the snapshot (carrying a fresh id), then
   truncate the journal and append an [S <id>] marker as its first
   record.  On recovery, a journal whose first record is NOT the current
   snapshot's marker predates the snapshot entirely (a crash landed
   between rename and truncate): every record in it is already inside the
   snapshot, so the whole file is discarded and rewritten as just the
   marker.  Replay work is therefore always bounded by the genuine
   post-snapshot tail. *)

let load_snapshot ~engine ~live ~pats ~on_query ~restore_aux path =
  let content = read_file path in
  let mlen = String.length snap_magic in
  if String.length content < mlen + 5 then failwith (Printf.sprintf "Journal: snapshot %s truncated" path);
  if not (String.equal (String.sub content 0 mlen) snap_magic) then
    failwith (Printf.sprintf "Journal: snapshot %s has a bad magic" path);
  let body = String.sub content mlen (String.length content - mlen - 4) in
  let stored_crc =
    let r = Binio.reader (String.sub content (String.length content - 4) 4) in
    Binio.u32 r
  in
  if Binio.crc32 body <> stored_crc then
    failwith (Printf.sprintf "Journal: snapshot %s CRC mismatch" path);
  match
    let module B = Binio in
    let r = B.reader body in
    (match B.u8 r with
    | 1 -> ()
    | v -> raise (B.Corrupt (Printf.sprintf "unsupported snapshot version %d" v)));
    let snapid = B.i64 r in
    let restored = ref 0 in
    let nq = B.i64 r in
    for _ = 1 to nq do
      let id = B.i64 r in
      let name = B.str r in
      let pattern = B.str r in
      let p = Parse.pattern ~name ~id pattern in
      engine.Matcher.add_query p;
      Hashtbl.replace pats id p;
      on_query p;
      incr restored
    done;
    let ne = B.i64 r in
    let batch = ref [] in
    let flush_batch () =
      match !batch with
      | [] -> ()
      | us ->
        ignore (engine.Matcher.handle_batch (List.rev us));
        batch := []
    in
    for _ = 1 to ne do
      let label = B.str r in
      let src = B.str r in
      let dst = B.str r in
      let ts = B.i64 r in
      let e = Edge.of_strings label src dst in
      Edge.Tbl.replace live e ts;
      batch := Update.add ~ts e :: !batch;
      incr restored;
      if List.length !batch >= 4096 then flush_batch ()
    done;
    flush_batch ();
    let aux = B.str r in
    if not (B.eof r) then raise (B.Corrupt "trailing bytes");
    restore_aux aux;
    (snapid, !restored)
  with
  | result -> result
  | exception Binio.Corrupt msg ->
    failwith (Printf.sprintf "Journal: corrupt snapshot %s: %s" path msg)

let open_ ~path ?(on_query = fun _ -> ()) ?(on_replay = fun _ _ -> ())
    ?(on_remove = fun _ -> ()) ?(on_aux = fun _ -> ()) ?(restore_aux = fun _ -> ())
    ?aux_state make_engine =
  let engine = make_engine () in
  let live = Edge.Tbl.create 1024 in
  let pats = Hashtbl.create 64 in
  let snapid = ref 0 in
  let restored = ref 0 in
  if Sys.file_exists (snap_path path) then begin
    let id, n =
      load_snapshot ~engine ~live ~pats ~on_query ~restore_aux (snap_path path)
    in
    snapid := id;
    restored := n;
    Log.info (fun m -> m "restored snapshot %s (id %d, %d item(s))" (snap_path path) id n)
  end;
  let records = ref 0 in
  (* [Some offset]: the journal ends in a torn partial record (a crash —
     kill -9, full disk — mid-append); everything from [offset] on is
     discarded and the file truncated back to the clean prefix. *)
  let torn = ref None in
  (* Whether the journal's first record is the current snapshot's marker
     (i.e. the file is the genuine post-compaction tail). *)
  let marker_seen = ref false in
  let stale_file = ref false in
  if Sys.file_exists path then begin
    let content = read_file path in
    let len = String.length content in
    (* The clean region ends at the last newline: every record append
       writes its newline last, so bytes past it are a torn tail. *)
    let clean_len =
      match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
    in
    if clean_len < len then torn := Some clean_len;
    let pos = ref 0 in
    let lineno = ref 0 in
    let first_record = ref true in
    (try
       while !pos < clean_len do
         let nl = String.index_from content !pos '\n' in
         let line = String.sub content !pos (nl - !pos) in
         incr lineno;
         (try
            let payload = payload_of_line !lineno line in
            let is_layout = payload = "" || payload.[0] = '#' in
            (* Staleness must be decided from the FIRST record before any
               replay: if it is not this snapshot's marker the whole file
               predates the snapshot (crash between snapshot rename and
               journal truncation) and replaying it on top of the restored
               state would double-apply history. *)
            if !first_record && not is_layout then begin
              first_record := false;
              if String.length payload >= 2 && payload.[0] = 'S' && payload.[1] = '\t'
              then ()
              else if !snapid > 0 then begin
                stale_file := true;
                Log.warn (fun m ->
                    m "journal %s predates snapshot %d; discarding its records" path
                      !snapid)
              end
            end;
            let outcome =
              if !stale_file then
                (* Predates the snapshot: state already restored; only
                   validate framing (done above) and move on. *)
                `Layout
              else
                replay_payload ~engine ~live ~pats ~on_query ~on_replay ~on_remove
                  ~on_aux !lineno payload
            in
            (match outcome with
            | `Layout -> ()
            | `Marker id ->
              if !marker_seen || !records > 0 then
                failwith
                  (Printf.sprintf "Journal: unexpected snapshot marker on line %d"
                     !lineno)
              else if !snapid = 0 then
                failwith
                  (Printf.sprintf "Journal: %s references snapshot %d but %s is missing"
                     path id (snap_path path))
              else if id = !snapid then marker_seen := true
              else stale_file := true
            | `Record -> incr records)
          with
         | (Failure _ | Parse.Syntax_error _) as exn ->
           if nl + 1 >= clean_len then begin
             (* The final record is malformed: a tear that happened to end
                on a newline boundary.  Truncate it away too. *)
             torn := Some !pos;
             raise Exit
           end
           else raise exn);
         pos := nl + 1
       done
     with Exit -> ())
  end;
  (match !torn with
  | Some offset ->
    Log.warn (fun m ->
        m "journal %s has a torn trailing record; truncating to %d clean byte(s)" path
          offset);
    Unix.truncate path offset
  | None -> ());
  if !records > 0 then
    Log.info (fun m -> m "recovered %d journal records from %s" !records path);
  if !stale_file then begin
    (* Everything in the file is inside the snapshot; reset it so the
       next recovery replays only the genuine tail. *)
    Unix.truncate path 0;
    records := 0
  end;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let t =
    {
      inner = engine;
      path;
      oc;
      count = !records;
      replayed = !records;
      restored = !restored;
      live;
      pats;
      aux_state;
      snapid = !snapid;
      snapshots = 0;
    }
  in
  if !snapid > 0 && not !marker_seen then begin
    output_string t.oc (frame (Printf.sprintf "S\t%d" t.snapid));
    output_char t.oc '\n';
    flush t.oc
  end;
  t

let log t payload =
  output_string t.oc (frame payload);
  output_char t.oc '\n';
  flush t.oc;
  t.count <- t.count + 1

let add_query t pattern =
  log t
    (Printf.sprintf "Q\t%d\t%s\t%s" (Pattern.id pattern) (Pattern.name pattern)
       (Parse.pattern_to_string pattern));
  Hashtbl.replace t.pats (Pattern.id pattern) pattern;
  t.inner.Matcher.add_query pattern

let remove_query t qid =
  log t (Printf.sprintf "W\t%d" qid);
  Hashtbl.remove t.pats qid;
  t.inner.Matcher.remove_query qid

let handle_update t (u : Tric_graph.Update.t) =
  log t (Printf.sprintf "U\t%s" (Parse.update_to_string u));
  (match u.Update.op with
  | Update.Add e -> Edge.Tbl.replace t.live e (Update.ts u)
  | Update.Remove e -> Edge.Tbl.remove t.live e);
  t.inner.Matcher.handle_update u

let log_aux t payload =
  if String.contains payload '\n' then invalid_arg "Journal.log_aux: payload contains a newline";
  log t ("X\t" ^ payload)

let snapshot t =
  flush t.oc;
  let module B = Binio in
  let body = Buffer.create 65536 in
  B.put_u8 body 1;
  B.put_i64 body (t.snapid + 1);
  let qids = Hashtbl.fold (fun id _ acc -> id :: acc) t.pats [] |> List.sort Int.compare in
  B.put_i64 body (List.length qids);
  List.iter
    (fun id ->
      let p = Hashtbl.find t.pats id in
      B.put_i64 body id;
      B.put_str body (Pattern.name p);
      B.put_str body (Parse.pattern_to_string p))
    qids;
  B.put_i64 body (Edge.Tbl.length t.live);
  Edge.Tbl.iter
    (fun (e : Edge.t) ts ->
      B.put_str body (Label.to_string e.Edge.label);
      B.put_str body (Label.to_string e.Edge.src);
      B.put_str body (Label.to_string e.Edge.dst);
      B.put_i64 body ts)
    t.live;
  B.put_str body (match t.aux_state with Some f -> f () | None -> "");
  let body = Buffer.contents body in
  let tmp = snap_path t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc snap_magic;
      output_string oc body;
      let crc = Buffer.create 4 in
      B.put_u32 crc (B.crc32 body);
      output_string oc (Buffer.contents crc));
  Unix.rename tmp (snap_path t.path);
  t.snapid <- t.snapid + 1;
  t.snapshots <- t.snapshots + 1;
  close_out t.oc;
  t.oc <- open_out_gen [ Open_trunc; Open_creat; Open_wronly ] 0o644 t.path;
  t.count <- 0;
  output_string t.oc (frame (Printf.sprintf "S\t%d" t.snapid));
  output_char t.oc '\n';
  flush t.oc;
  Log.info (fun m ->
      m "snapshot %d written to %s (%d quer(ies), %d live edge(s))" t.snapid
        (snap_path t.path) (Hashtbl.length t.pats) (Edge.Tbl.length t.live))

let engine t = t.inner
let entries t = t.count
let recovered t = t.replayed
let restored t = t.restored
let has_snapshot t = t.snapid > 0
let snapshots t = t.snapshots
let live_edges t = Edge.Tbl.length t.live
let num_queries t = Hashtbl.length t.pats
let close t = close_out t.oc
