open Tric_query

let log_src = Logs.Src.create "tric.journal" ~doc:"write-ahead journal"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  inner : Matcher.t;
  oc : out_channel;
  mutable count : int;
  replayed : int;
}

(* Replay one line; [true] iff it held a record (blank and comment lines
   are layout, not state).  Raises [Failure] on a malformed record. *)
let replay_line engine lineno line =
  if line = "" || line.[0] = '#' then false
  else
    match String.split_on_char '\t' line with
    | [ "Q"; id; qname; pattern ] -> (
      match int_of_string_opt id with
      | Some id ->
        engine.Matcher.add_query (Parse.pattern ~name:qname ~id pattern);
        true
      | None -> failwith (Printf.sprintf "Journal: bad query id on line %d" lineno))
    | [ "U"; u ] ->
      ignore (engine.Matcher.handle_update (Parse.update u));
      true
    | _ -> failwith (Printf.sprintf "Journal: malformed line %d" lineno)

let open_ ~path make_engine =
  let engine = make_engine () in
  let records = ref 0 in
  (* [Some offset]: the journal ends in a torn partial record (a crash —
     kill -9, full disk — mid-append); everything from [offset] on is
     discarded and the file truncated back to the clean prefix. *)
  let torn = ref None in
  if Sys.file_exists path then begin
    let content =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let len = String.length content in
    (* The clean region ends at the last newline: every record append
       writes its newline last, so bytes past it are a torn tail. *)
    let clean_len =
      match String.rindex_opt content '\n' with Some i -> i + 1 | None -> 0
    in
    if clean_len < len then torn := Some clean_len;
    let pos = ref 0 in
    let lineno = ref 0 in
    (try
       while !pos < clean_len do
         let nl = String.index_from content !pos '\n' in
         let line = String.sub content !pos (nl - !pos) in
         incr lineno;
         (try if replay_line engine !lineno line then incr records with
         | (Failure _ | Parse.Syntax_error _) as exn ->
           if nl + 1 >= clean_len then begin
             (* The final record is malformed: a tear that happened to end
                on a newline boundary.  Truncate it away too. *)
             torn := Some !pos;
             raise Exit
           end
           else raise exn);
         pos := nl + 1
       done
     with Exit -> ())
  end;
  (match !torn with
  | Some offset ->
    Log.warn (fun m ->
        m "journal %s has a torn trailing record; truncating to %d clean byte(s)" path
          offset);
    Unix.truncate path offset
  | None -> ());
  if !records > 0 then
    Log.info (fun m -> m "recovered %d journal records from %s" !records path);
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { inner = engine; oc; count = !records; replayed = !records }

let log t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  t.count <- t.count + 1

let add_query t pattern =
  log t
    (Printf.sprintf "Q\t%d\t%s\t%s" (Pattern.id pattern) (Pattern.name pattern)
       (Parse.pattern_to_string pattern));
  t.inner.Matcher.add_query pattern

let handle_update t (u : Tric_graph.Update.t) =
  log t (Printf.sprintf "U\t%s" (Parse.update_to_string u));
  t.inner.Matcher.handle_update u

let engine t = t.inner
let entries t = t.count
let recovered t = t.replayed
let close t = close_out t.oc
