open Tric_graph

type result = {
  engine : string;
  total_updates : int;
  updates_processed : int;
  batch_size : int;
  batches : int;
  shards : int;
  timed_out : bool;
  index_time_s : float;
  answer_time_s : float;
  busy_s : float;
  shard_busy_s : float array;
  mean_ms : float;
  p50_ms : float;
  p90_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
  latency_exact : bool;
  throughput_ups : float;
  matches : int;
  retractions : int;
  satisfied_queries : int;
  memory_words : int;
  checkpoints : (int * float) list;
  audits : int;
}

exception
  Audit_failure of {
    engine : string;
    update_index : int;
    findings : Tric_audit.Audit.finding list;
  }

let () =
  Printexc.register_printer (function
    | Audit_failure { engine; update_index; findings } ->
      Some
        (Format.asprintf
           "@[<v>AUDIT FAILURE: %s diverged from ground truth after update %d@,%a@]"
           engine update_index Tric_audit.Audit.pp_report findings)
    | _ -> None)

let log_src = Logs.Src.create "tric.runner" ~doc:"stream replay harness"

module Log = (val Logs.src_log log_src : Logs.LOG)

let audit_every_env () =
  match Sys.getenv_opt "TRIC_AUDIT" with
  | None -> 0
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n > 0 -> n | _ -> 0)

let now () = Unix.gettimeofday ()

(* Linear interpolation between the two bracketing ranks.  Truncating the
   rank (the old [int_of_float]) biases small-sample percentiles low: with
   9 latencies p95 landed on sorted.(7) instead of near the maximum. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let lo = if lo < 0 then 0 else min (n - 1) lo in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let run ?(budget_s = infinity) ?(checkpoints = []) ?(measure_memory = true)
    ?(batch_size = 1) ?audit_every ~engine ~queries ~stream () =
  if batch_size < 1 then invalid_arg "Runner.run: batch_size must be >= 1";
  let audit_every =
    match audit_every with Some n -> max 0 n | None -> audit_every_env ()
  in
  let t0 = now () in
  List.iter engine.Matcher.add_query queries;
  let index_time_s = now () -. t0 in
  (* Busy time is sampled as before/after deltas so a reused engine's
     earlier work is not charged to this run.  Wall clock (answer_time_s)
     and aggregate shard busy time are reported separately: a single
     timer around a parallel dispatch measures wall only, and quoting it
     as "work done" would overstate parallel speedup by the shard
     count. *)
  let busy0 = engine.Matcher.busy_s () in
  let shard_busy0 = engine.Matcher.shard_busy () in
  let total = Stream.length stream in
  (* Latency samples live in a fixed-allocation histogram instead of a
     retained per-call array: the exact buffer keeps the historical
     interpolated-percentile semantics for runs under [exact_cap] calls,
     and longer runs degrade to bucket interpolation instead of growing
     memory with the stream. *)
  let latencies =
    Tric_obs.Histogram.create ~buckets:96 ~lo:1e-4 ~growth:(sqrt 2.)
      ~exact_cap:8192 ()
  in
  let satisfied = Hashtbl.create 256 in
  let matches = ref 0 in
  let retractions = ref 0 in
  let processed = ref 0 in
  let calls = ref 0 in
  let answer_time = ref 0.0 in
  let timed_out = ref false in
  let cps = ref (List.sort Int.compare checkpoints) in
  let reached = ref [] in
  (* Shadow-audit state, all maintained outside the timed sections: the
     ground-truth live edge set, rebuilt update-by-update from the stream,
     and the updates-since-last-audit counter. *)
  let live_edges = Edge.Tbl.create (if audit_every > 0 then 4096 else 1) in
  let since_audit = ref 0 in
  let audits = ref 0 in
  let shadow_audit () =
    incr audits;
    let edges = Edge.Tbl.fold (fun e () acc -> e :: acc) live_edges [] in
    let findings = engine.Matcher.audit (Some edges) in
    if not (Tric_audit.Audit.is_clean findings) then
      raise
        (Audit_failure
           { engine = engine.Matcher.name; update_index = !processed; findings })
  in
  (try
     while !processed < total do
       if !answer_time > budget_s then begin
         timed_out := true;
         Log.info (fun m ->
             m "%s exceeded %.1fs budget after %d/%d updates" engine.Matcher.name
               budget_s !processed total);
         raise Exit
       end;
       let lo = !processed in
       let hi = min total (lo + batch_size) in
       let t = now () in
       let report =
         if batch_size = 1 then engine.Matcher.handle_update (Stream.get stream lo)
         else
           engine.Matcher.handle_batch
             (List.init (hi - lo) (fun j -> Stream.get stream (lo + j)))
       in
       let dt = now () -. t in
       Tric_obs.Histogram.observe latencies (dt *. 1000.0);
       incr calls;
       answer_time := !answer_time +. dt;
       processed := hi;
       List.iter
         (fun (qid, embs) ->
           Hashtbl.replace satisfied qid ();
           matches := !matches + List.length embs)
         report.Report.matches;
       retractions := !retractions + Report.total_retractions report;
       (* Drain every checkpoint this call satisfied — one call (a batch,
          or one update against duplicate checkpoints) can satisfy
          several; popping at most one left the rest stranded and figures
          rendered them as spurious timeout cells. *)
       let draining = ref true in
       while !draining do
         match !cps with
         | cp :: rest when !processed >= cp ->
           reached := (!processed, !answer_time) :: !reached;
           cps := rest
         | _ -> draining := false
       done;
       if audit_every > 0 then begin
         for j = lo to hi - 1 do
           match (Stream.get stream j).Update.op with
           | Update.Add e -> Edge.Tbl.replace live_edges e ()
           | Update.Remove e -> Edge.Tbl.remove live_edges e
         done;
         since_audit := !since_audit + (hi - lo);
         if !since_audit >= audit_every then begin
           since_audit := 0;
           shadow_audit ()
         end
       end
     done;
     (* Certify the final state even when the stream length is not a
        multiple of the audit period. *)
     if audit_every > 0 && !since_audit > 0 then shadow_audit ()
   with Exit -> ());
  let mean_ms =
    if !processed = 0 then 0.0 else !answer_time *. 1000.0 /. float_of_int !processed
  in
  let busy_s =
    let b = engine.Matcher.busy_s () -. busy0 in
    (* Engines without the notion report 0 busy seconds; their single
       thread was busy for exactly the answering wall time. *)
    if b > 0.0 then b else !answer_time
  in
  let shard_busy_s =
    let b1 = engine.Matcher.shard_busy () in
    if Array.length b1 = 0 then [||]
    else
      Array.mapi
        (fun i b -> b -. (if i < Array.length shard_busy0 then shard_busy0.(i) else 0.0))
        b1
  in
  {
    engine = engine.Matcher.name;
    total_updates = total;
    updates_processed = !processed;
    batch_size;
    batches = !calls;
    shards = engine.Matcher.shards;
    timed_out = !timed_out;
    index_time_s;
    answer_time_s = !answer_time;
    busy_s;
    shard_busy_s;
    mean_ms;
    p50_ms = Tric_obs.Histogram.percentile latencies 50.0;
    p90_ms = Tric_obs.Histogram.percentile latencies 90.0;
    p95_ms = Tric_obs.Histogram.percentile latencies 95.0;
    p99_ms = Tric_obs.Histogram.percentile latencies 99.0;
    max_ms = (if !calls = 0 then 0.0 else Tric_obs.Histogram.max_value latencies);
    latency_exact = Tric_obs.Histogram.is_exact latencies;
    throughput_ups =
      (if !answer_time > 0.0 then float_of_int !processed /. !answer_time else 0.0);
    matches = !matches;
    retractions = !retractions;
    satisfied_queries = Hashtbl.length satisfied;
    memory_words = (if measure_memory then engine.Matcher.memory_words () else 0);
    checkpoints = List.rev !reached;
    audits = !audits;
  }

let segment_means_ms r =
  let rec go prev_n prev_t = function
    | [] -> []
    | (n, t) :: tl ->
      let mean =
        if n > prev_n then (t -. prev_t) *. 1000.0 /. float_of_int (n - prev_n) else 0.0
      in
      (n, mean) :: go n t tl
  in
  go 0 0.0 r.checkpoints

let pp_result fmt r =
  Format.fprintf fmt
    "%-8s %7d/%d upd%s%s  index %.3fs  answer %.3fs%s  mean %.4f ms/upd  p95 %.4f  %.0f upd/s  matches %d%s (%d queries)  mem %dw"
    r.engine r.updates_processed r.total_updates
    (if r.timed_out then "*" else "")
    (if r.batch_size > 1 then Printf.sprintf " [batch %d]" r.batch_size else "")
    r.index_time_s r.answer_time_s
    (if r.shards > 1 then
       Printf.sprintf " (busy %.3fs over %d shards)" r.busy_s r.shards
     else "")
    r.mean_ms r.p95_ms r.throughput_ups r.matches
    (if r.retractions > 0 then Printf.sprintf " -%d" r.retractions else "")
    r.satisfied_queries r.memory_words
