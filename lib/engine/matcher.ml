open Tric_graph
open Tric_query
open Tric_rel

type t = {
  name : string;
  add_query : Pattern.t -> unit;
  remove_query : int -> bool;
  num_queries : unit -> int;
  handle_update : Update.t -> Report.t;
  handle_batch : Update.t list -> Report.t;
  current_matches : int -> Embedding.t list;
  memory_words : unit -> int;
  mem : unit -> (int * int * int) array;
  stats : unit -> (string * int) list;
  audit : Edge.t list option -> Tric_audit.Audit.finding list;
  shards : int;
  busy_s : unit -> float;
  shard_busy : unit -> float array;
  metrics : unit -> Tric_obs.Snapshot.t;
  spans : unit -> Tric_obs.Span.recorded list;
  shutdown : unit -> unit;
  description : string;
}

(* Default micro-batch path: sequential replay with merged reports.
   Engines without a native batch implementation (INV/INC, GraphDB, the
   oracle, ad-hoc test engines) stay correct; only the amortisation is
   lost. *)
let batch_by_fold handle_update updates =
  Report.merge (List.map handle_update updates)

let make ~name ?(description = "") ?(stats = fun () -> []) ?(audit = fun _ -> [])
    ?handle_batch ?(shards = 1) ?(busy_s = fun () -> 0.0)
    ?(shard_busy = fun () -> [||]) ?(metrics = fun () -> Tric_obs.Snapshot.empty)
    ?(spans = fun () -> []) ?(shutdown = fun () -> ())
    ?(mem = fun () -> [||]) ~add_query
    ~remove_query ~num_queries ~handle_update ~current_matches ~memory_words () =
  let handle_batch =
    match handle_batch with Some f -> f | None -> batch_by_fold handle_update
  in
  {
    name;
    add_query;
    remove_query;
    num_queries;
    handle_update;
    handle_batch;
    current_matches;
    memory_words;
    mem;
    stats;
    audit;
    shards;
    busy_s;
    shard_busy;
    metrics;
    spans;
    shutdown;
    description;
  }

let reachable_words x () = Obj.reachable_words (Obj.repr x)

let of_tric e =
  {
    name = Tric_core.Tric.name e;
    add_query = Tric_core.Tric.add_query e;
    remove_query = Tric_core.Tric.remove_query e;
    num_queries = (fun () -> Tric_core.Tric.num_queries e);
    handle_update = (fun u -> Report.of_pair (Tric_core.Tric.handle_update e u));
    handle_batch = (fun ub -> Report.of_pair (Tric_core.Tric.handle_batch e ub));
    current_matches = Tric_core.Tric.current_matches e;
    memory_words = reachable_words e;
    mem = (fun () -> Tric_core.Tric.mem_stats e);
    stats =
      (fun () ->
        let s = Tric_core.Tric.stats e in
        [
          ("queries", s.Tric_core.Tric.queries);
          ("shards", s.Tric_core.Tric.shards);
          ("tries", s.Tric_core.Tric.tries);
          ("trie_nodes", s.Tric_core.Tric.trie_nodes);
          ("base_views", s.Tric_core.Tric.base_views);
          ("view_tuples", s.Tric_core.Tric.view_tuples);
          ("index_rebuilds", s.Tric_core.Tric.index_rebuilds);
          ("removals", s.Tric_core.Tric.removals);
          ("noop_removals", s.Tric_core.Tric.noop_removals);
          ("tuples_removed", s.Tric_core.Tric.tuples_removed);
          ("invalidations_avoided", s.Tric_core.Tric.invalidations_avoided);
          ("delta_probes", s.Tric_core.Tric.delta_probes);
          ("batches", s.Tric_core.Tric.batches);
          ("batched_updates", s.Tric_core.Tric.batched_updates);
          ("batch_cancelled", s.Tric_core.Tric.batch_cancelled);
          ("batch_net_applied", s.Tric_core.Tric.batch_net_applied);
          ("ops_routed", s.Tric_core.Tric.ops_routed);
          ("ops_dispatched", s.Tric_core.Tric.ops_dispatched);
        ]);
    audit = (fun edges -> Tric_audit.Audit.check ?edges e);
    shards = Tric_core.Tric.num_shards e;
    busy_s = (fun () -> Tric_core.Tric.busy_s e);
    shard_busy = (fun () -> Tric_core.Tric.busy_times e);
    metrics = (fun () -> Tric_core.Tric.metrics e);
    spans = (fun () -> Tric_core.Tric.spans e);
    shutdown = (fun () -> Tric_core.Tric.shutdown e);
    description = "trie-clustered covering paths (the paper's contribution)";
  }

let of_invidx e =
  let module I = Tric_baselines.Invidx in
  {
    name = I.name e;
    add_query = I.add_query e;
    remove_query = I.remove_query e;
    num_queries = (fun () -> I.num_queries e);
    handle_update = (fun u -> Report.of_pair (I.handle_update e u));
    handle_batch = batch_by_fold (fun u -> Report.of_pair (I.handle_update e u));
    current_matches = I.current_matches e;
    memory_words = reachable_words e;
    mem = (fun () -> [||]);
    stats =
      (fun () ->
        let s = I.stats e in
        [
          ("queries", s.I.queries);
          ("base_views", s.I.base_views);
          ("base_tuples", s.I.base_tuples);
          ("index_rebuilds", s.I.index_rebuilds);
        ]);
    audit = (fun edges -> Tric_audit.Audit.check_invidx ?edges e);
    shards = 1;
    busy_s = (fun () -> 0.0);
    shard_busy = (fun () -> [||]);
    metrics = (fun () -> I.metrics e);
    spans = (fun () -> []);
    shutdown = (fun () -> ());
    description = "inverted-index baseline (no clustering)";
  }

let of_graphdb e =
  let module C = Tric_graphdb.Continuous in
  {
    name = C.name e;
    add_query = C.add_query e;
    remove_query = C.remove_query e;
    num_queries = (fun () -> C.num_queries e);
    handle_update = (fun u -> Report.of_pair (C.handle_update e u));
    handle_batch = batch_by_fold (fun u -> Report.of_pair (C.handle_update e u));
    current_matches = C.current_matches e;
    memory_words = reachable_words e;
    mem = (fun () -> [||]);
    stats =
      (fun () ->
        let db = C.db e in
        [
          ("nodes", Tric_graphdb.Store.num_nodes (Tric_graphdb.Db.store db));
          ("rels", Tric_graphdb.Store.num_rels (Tric_graphdb.Db.store db));
          ("plan_cache_hits", Tric_graphdb.Db.plan_cache_hits db);
          ("plan_cache_misses", Tric_graphdb.Db.plan_cache_misses db);
        ]);
    audit = (fun _ -> []);
    shards = 1;
    busy_s = (fun () -> 0.0);
    shard_busy = (fun () -> [||]);
    metrics = (fun () -> Tric_obs.Snapshot.empty);
    spans = (fun () -> []);
    shutdown = (fun () -> ());
    description = "embedded graph database with per-update query re-execution";
  }

let of_naive e =
  {
    name = "NAIVE";
    add_query = Naive.add_query e;
    remove_query = Naive.remove_query e;
    num_queries = (fun () -> Naive.num_queries e);
    handle_update = Naive.handle_update e;
    handle_batch = batch_by_fold (Naive.handle_update e);
    current_matches = Naive.current_matches e;
    memory_words = reachable_words e;
    mem = (fun () -> [||]);
    stats = (fun () -> [ ("queries", Naive.num_queries e) ]);
    audit = (fun _ -> []);
    shards = 1;
    busy_s = (fun () -> 0.0);
    shard_busy = (fun () -> [||]);
    metrics = (fun () -> Tric_obs.Snapshot.empty);
    spans = (fun () -> []);
    shutdown = (fun () -> ());
    description = "brute-force oracle (tests only)";
  }

let add_queries t = List.iter t.add_query
