open Tric_rel

type t = (int * Embedding.t list) list

let empty = []
let satisfied_ids r = List.map fst r
let total_matches r = List.fold_left (fun n (_, l) -> n + List.length l) 0 r

let matches_of r qid =
  match List.find_opt (fun (q, _) -> Int.equal q qid) r with
  | Some (_, l) -> l
  | None -> []

let normalise r =
  r
  |> List.filter_map (fun (qid, l) ->
         match List.sort_uniq Embedding.compare l with
         | [] -> None
         | l -> Some (qid, l))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let merge reports =
  let tbl : (int, Embedding.t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (qid, embs) ->
         match Hashtbl.find_opt tbl qid with
         | Some cell -> cell := embs @ !cell
         | None -> Hashtbl.add tbl qid (ref embs)))
    reports;
  normalise (Hashtbl.fold (fun qid cell acc -> (qid, !cell) :: acc) tbl [])

let equal a b =
  let a = normalise a and b = normalise b in
  List.length a = List.length b
  && List.for_all2
       (fun (qa, la) (qb, lb) ->
         qa = qb && List.length la = List.length lb && List.for_all2 Embedding.equal la lb)
       a b

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (qid, l) ->
      Format.fprintf fmt "Q%d: %d match(es)@," qid (List.length l);
      List.iter (fun e -> Format.fprintf fmt "   %a@," Embedding.pp e) l)
    r;
  Format.fprintf fmt "@]"
