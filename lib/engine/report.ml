open Tric_rel

type channel = (int * Embedding.t list) list

type t = {
  matches : channel;
  retractions : channel;
}

let empty = { matches = []; retractions = [] }
let of_matches matches = { matches; retractions = [] }
let of_pair (matches, retractions) = { matches; retractions }
let is_empty r = r.matches = [] && r.retractions = []

let satisfied_ids r = List.map fst r.matches
let channel_total c = List.fold_left (fun n (_, l) -> n + List.length l) 0 c
let total_matches r = channel_total r.matches
let total_retractions r = channel_total r.retractions

let channel_of c qid =
  match List.find_opt (fun (q, _) -> Int.equal q qid) c with
  | Some (_, l) -> l
  | None -> []

let matches_of r qid = channel_of r.matches qid
let retractions_of r qid = channel_of r.retractions qid

let normalise_channel c =
  c
  |> List.filter_map (fun (qid, l) ->
         match List.sort_uniq Embedding.compare l with
         | [] -> None
         | l -> Some (qid, l))
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let normalise r =
  {
    matches = normalise_channel r.matches;
    retractions = normalise_channel r.retractions;
  }

let merge_channel channels =
  let tbl : (int, Embedding.t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (List.iter (fun (qid, embs) ->
         match Hashtbl.find_opt tbl qid with
         | Some cell -> cell := embs @ !cell
         | None -> Hashtbl.add tbl qid (ref embs)))
    channels;
  normalise_channel (Hashtbl.fold (fun qid cell acc -> (qid, !cell) :: acc) tbl [])

let merge reports =
  {
    matches = merge_channel (List.map (fun r -> r.matches) reports);
    retractions = merge_channel (List.map (fun r -> r.retractions) reports);
  }

let channel_equal a b =
  let a = normalise_channel a and b = normalise_channel b in
  List.length a = List.length b
  && List.for_all2
       (fun (qa, la) (qb, lb) ->
         qa = qb && List.length la = List.length lb && List.for_all2 Embedding.equal la lb)
       a b

let equal a b =
  channel_equal a.matches b.matches && channel_equal a.retractions b.retractions

let pp fmt r =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (qid, l) ->
      Format.fprintf fmt "Q%d: %d match(es)@," qid (List.length l);
      List.iter (fun e -> Format.fprintf fmt "   %a@," Embedding.pp e) l)
    r.matches;
  List.iter
    (fun (qid, l) ->
      Format.fprintf fmt "Q%d: %d retraction(s)@," qid (List.length l);
      List.iter (fun e -> Format.fprintf fmt "   -%a@," Embedding.pp e) l)
    r.retractions;
  Format.fprintf fmt "@]"
