open Tric_graph
open Tric_query
open Tric_rel

type subscription = {
  sid : int;
  sname : string;
  spattern : Pattern.t;
}

type event = {
  subscription : subscription;
  update : Update.t;
  embeddings : Embedding.t list;
  retracted : Embedding.t list;
  seqno : int;
}

type t = {
  engine : Matcher.t;
  subs : (int, subscription * (event -> unit)) Hashtbl.t;
  mutable next_id : int;
  mutable seqno : int;
}

let create engine = { engine; subs = Hashtbl.create 64; next_id = 1; seqno = 0 }

let subscribe t ?name ~pattern callback =
  let sid = t.next_id in
  t.next_id <- sid + 1;
  let pattern = Pattern.with_id pattern sid in
  let sname =
    match name with
    | Some n -> n
    | None ->
      if String.equal (Pattern.name pattern) "" then Printf.sprintf "sub-%d" sid
      else Pattern.name pattern
  in
  let sub = { sid; sname; spattern = pattern } in
  t.engine.Matcher.add_query pattern;
  Hashtbl.add t.subs sid (sub, callback);
  sub

let unsubscribe t sub =
  if Hashtbl.mem t.subs sub.sid then begin
    Hashtbl.remove t.subs sub.sid;
    ignore (t.engine.Matcher.remove_query sub.sid);
    true
  end
  else false

let subscription_name sub = sub.sname
let subscription_pattern sub = sub.spattern
let num_subscriptions t = Hashtbl.length t.subs

let publish t update =
  let seqno = t.seqno in
  t.seqno <- seqno + 1;
  let report = t.engine.Matcher.handle_update update in
  (* One event per affected subscription, both channels joined: a window
     expiry or explicit removal notifies with [retracted] populated. *)
  let per_qid : (int, Embedding.t list * Embedding.t list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (qid, embs) -> Hashtbl.replace per_qid qid (embs, []))
    report.Report.matches;
  List.iter
    (fun (qid, embs) ->
      match Hashtbl.find_opt per_qid qid with
      | Some (m, _) -> Hashtbl.replace per_qid qid (m, embs)
      | None -> Hashtbl.replace per_qid qid ([], embs))
    report.Report.retractions;
  Hashtbl.fold (fun qid (m, r) acc -> (qid, m, r) :: acc) per_qid []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  |> List.fold_left
       (fun delivered (qid, embeddings, retracted) ->
         match Hashtbl.find_opt t.subs qid with
         | None -> delivered
         | Some (subscription, callback) ->
           callback { subscription; update; embeddings; retracted; seqno };
           delivered + 1)
       0

let publish_stream t stream =
  Stream.fold (fun acc u -> acc + publish t u) 0 stream
