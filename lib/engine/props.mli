(** Property-graph continuous queries (§4.3).

    The paper sketches the extension to property graphs: "the addition of
    extra constraints within the nodes of the tries and the usage of a
    separate data structure to appropriately index these constraints.
    Then, query answering would include an extra phase for determining the
    satisfaction of the additional constraints."

    This wrapper is that design: a property store indexed separately from
    the structural engine, per-query equality constraints on pattern
    vertices, and an extra filtering phase over the engine's reports.  A
    notification fires when {e both} the structure and the property
    constraints hold — whether the structural match or the property
    assertion arrives last. *)

open Tric_graph
open Tric_query
open Tric_rel

type constr = {
  vid : int;  (** pattern vertex the constraint applies to *)
  key : string;
  value : string;
}

type t

val create : Matcher.t -> t
(** Wrap a freshly created engine. *)

val add_query : t -> ?constraints:constr list -> Pattern.t -> unit
(** @raise Invalid_argument if a constraint names an unknown vertex id. *)

val set_prop : t -> Label.t -> string -> string -> Report.t
(** [set_prop t vertex key value] asserts a property.  Returns the
    notifications this assertion unlocks: structural matches that were
    already present and now satisfy their query's constraints. *)

val get_prop : t -> Label.t -> string -> string option

val handle_update : t -> Update.t -> Report.t
(** Structural update: the wrapped engine answers, then both channels are
    filtered through the constraint phase — a retraction is delivered iff
    the destroyed match satisfied its constraints (and it frees the
    delivery slot, so a reappearing match notifies again). *)

val current_matches : t -> int -> Embedding.t list
(** Constraint-filtered full current result. *)
