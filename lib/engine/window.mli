(** Windowed evaluation: time- and count-based streaming semantics.

    Related work the paper discusses ([15], [28], [41]) evaluates
    continuous queries over a {e window} of recent updates rather than the
    whole history; the paper's §4.3 deletion support is exactly what makes
    windows exact instead of approximate.  This wrapper scopes each
    query's matches to its {!Tric_query.Wspec} window — the [WITHIN]
    clause — and turns expiry into ordinary engine removals:

    - Queries are grouped by window spec; each group owns a private inner
      engine built by the factory, so one window shape's expiry never
      disturbs another's.
    - Count windows ([N EVENTS]) retain the last [N] distinct edge
      additions (sliding) or reset every [N] additions (tumbling).
    - Time windows ([90s], [1h TUMBLING]...) retain edges by event time
      ({!Tric_graph.Update.ts}).  A {e watermark} — the maximum event time
      seen minus [slack] — drives expiry: every advance folds all newly
      expired edges into {b one} net-op removal batch per group
      ({!Matcher.t.handle_batch}, i.e. {!Tric_core.Tric.handle_batch} for
      trie engines), and the resulting retractions come back merged into
      the triggering update's {!Report.t}.  Additions older than the
      watermark are {e late}: dropped and counted, never half-applied.
    - A duplicate addition of a live edge {e refreshes} it (count: moves
      it to the newest position; time: extends its deadline); an explicit
      removal frees its slot immediately.

    So a query is satisfied iff its embedding lies entirely within its
    window — no false positives, and every match destroyed by the sliding
    edge of the window is retracted on the [retractions] channel. *)

open Tric_graph
open Tric_query
open Tric_rel

type t

val make : ?default:Wspec.t -> ?slack:int -> (unit -> Matcher.t) -> t
(** Spec-aware window over engines built on demand by the factory (one
    per distinct spec).  [default] applies to queries without a [WITHIN]
    clause (absent: such queries run unwindowed); [slack] (default 0,
    seconds) is the allowed out-of-orderness — the watermark trails the
    maximum event time by [slack].
    @raise Invalid_argument if [slack < 0]. *)

val create : window:int -> Matcher.t -> t
(** Legacy wrapper: one sliding count window of [window] most-recent
    distinct edges over the given engine, per-query [WITHIN] clauses
    overridden.  Equivalent to a single-group {!make}.
    @raise Invalid_argument if [window <= 0]. *)

val add_query : t -> Pattern.t -> unit
(** Register a query with the group its {!Tric_query.Pattern.window}
    spec selects (creating the group — and its engine — on first use). *)

val remove_query : t -> int -> bool
val num_queries : t -> int

val spec_of : t -> int -> Wspec.t option option
(** [Some spec] for a registered query ([spec = None]: unwindowed group);
    [None] if the id is unknown. *)

val handle_update : t -> Update.t -> Report.t
(** Feed one update.  Expiry it causes — watermark advance past time
    deadlines, count-window overflow, tumbling resets — is applied to the
    affected groups' engines {e before} it as one removal batch each, and
    the expiry retractions are merged into the returned report.  A late
    addition (event time behind the watermark) is dropped, counted in
    {!late_dropped}, and reports {!Report.empty}.  Late {e removals}
    still apply — dropping them would desynchronize the window from the
    stream. *)

val handle_batch : t -> Update.t list -> Report.t
(** Process a window of updates as one unit: retention bookkeeping and
    the watermark advance update by update (so eviction interleaves at
    the right positions), then each group's engine runs a single net-op
    batch over its survivors and expiry removals.  Equivalent to
    sequential {!handle_update} replay up to in-batch cancellation. *)

val current_matches : t -> int -> Embedding.t list
(** The query's current result within its window.  @raise Not_found. *)

val live_edges : t -> int
(** Distinct live (retained) edges, summed over groups. *)

val watermark : t -> int option
(** The current event-time watermark; [None] until a time-windowed group
    has seen an update. *)

val late_dropped : t -> int
val expired_edges : t -> int

val expiry_batches : t -> int
(** Expiry waves applied as removal batches — [expired_edges /
    expiry_batches] is the amortization the bench reports. *)

val stats : t -> (string * int) list
(** Inner engine counters (key-wise sum across groups) plus the window's
    own [win_*] counters. *)

val audit : t -> Edge.t list option -> Tric_audit.Audit.finding list
(** The {b window-coherence} class plus the inner engines' own audits:
    no retained edge sits past its deadline or capacity; with the stream's
    ground-truth edges supplied, the window retains no dropped edge; and
    each group's engine is certified ({!Matcher.t.audit}) against the
    window's {e own} live edge set — so an expiry removal that never
    reached the engine surfaces as a base-coherence divergence. *)

val engine : t -> Matcher.t
(** The single group's engine.  @raise Invalid_argument when the window
    holds several groups. *)

val engines : t -> Matcher.t list
(** Every group's engine, in group-creation order. *)

val shutdown : t -> unit
(** Shut down every group's engine (idempotent). *)

(** Test-only corruption hook (window-coherence mutation test). *)
module Corrupt : sig
  val suppress_expiry : t -> unit
  (** Stop all expiry: retained edges outlive their deadlines/capacity,
      which {!audit} must flag.  Never call outside tests. *)
end
