(** Binary encode/decode primitives and a CRC-32, shared by the journal's
    snapshot format and the server's wire protocol.

    Writers append big-endian fields to a [Buffer.t]; readers consume a
    string with explicit bounds checks, raising {!Corrupt} (never an
    out-of-bounds exception) on truncated or malformed input — corrupt
    bytes from disk or the network must surface as a typed, catchable
    error. *)

exception Corrupt of string

val crc32 : string -> int
(** CRC-32 (IEEE, the zlib/PNG polynomial) of the whole string, in
    [\[0, 0xFFFFFFFF\]]. *)

val put_u8 : Buffer.t -> int -> unit
(** Low byte only. *)

val put_u32 : Buffer.t -> int -> unit
(** Big-endian; raises [Invalid_argument] outside [\[0, 0xFFFFFFFF\]]. *)

val put_i64 : Buffer.t -> int -> unit
(** Native int as a big-endian 64-bit field. *)

val put_str : Buffer.t -> string -> unit
(** u32 length prefix, then the bytes. *)

val put_bool : Buffer.t -> bool -> unit

type reader

val reader : string -> reader
val remaining : reader -> int
val eof : reader -> bool

val u8 : reader -> int
val u32 : reader -> int

val i64 : reader -> int
(** Raises {!Corrupt} if the stored value does not fit a native int. *)

val str : reader -> string
val bool : reader -> bool
