(** Uniform handle over the seven engines (and the naive oracle).

    Everything the stream runner, the benchmark harness and the
    differential tests need, as a record of closures so heterogeneous
    engine types can sit in one list. *)

open Tric_graph
open Tric_query
open Tric_rel

type t = {
  name : string;
  add_query : Pattern.t -> unit;
  remove_query : int -> bool;
  num_queries : unit -> int;
  handle_update : Update.t -> Report.t;
  handle_batch : Update.t list -> Report.t;
      (** Process a window of updates as one unit of work; must leave the
          engine in the state sequential {!handle_update} replay would.
          Engines without a native batch path fold over {!handle_update}
          and merge the reports; TRIC/TRIC+ run the amortised sweep of
          {!Tric_core.Tric.handle_batch}, whose report cancels matches
          both created and destroyed within the window. *)
  current_matches : int -> Embedding.t list;
  memory_words : unit -> int;
      (** Live heap words reachable from the engine state. *)
  mem : unit -> (int * int * int) array;
      (** Per-shard packed-arena footprint, ascending shard id:
          [(arena capacity, live rows, freelist length)] summed over every
          relation the shard owns ({!Tric_core.Tric.mem_stats}); [[||]]
          for engines without a packed row store. *)
  stats : unit -> (string * int) list;
      (** Engine-specific counters (index sizes, tuples, rebuilds...). *)
  audit : Edge.t list option -> Tric_audit.Audit.finding list;
      (** Run the {!Tric_audit.Audit} sanitizer over the engine's
          materialized state; [Some edges] supplies the ground-truth live
          edge set for base-coherence.  Engines without an auditor (GraphDB,
          the oracle) return []. *)
  shards : int;
      (** Parallel shards the engine dispatches over; 1 for every
          sequential engine. *)
  busy_s : unit -> float;
      (** Cumulative seconds shard tasks have spent executing, summed over
          shards (0 for engines without the notion — the runner then falls
          back to wall time). *)
  shard_busy : unit -> float array;
      (** Per-shard busy seconds; [[||]] when not applicable. *)
  metrics : unit -> Tric_obs.Snapshot.t;
      (** Merged telemetry snapshot ({!Tric_obs.Snapshot.of_registries} in
          fixed shard order).  {!Tric_obs.Snapshot.empty} for engines
          without instrumentation or created with metrics off. *)
  spans : unit -> Tric_obs.Span.recorded list;
      (** Live window of update-journey traces, oldest first; [[]] when
          not applicable. *)
  shutdown : unit -> unit;
      (** Release engine-owned domains (no-op for sequential engines).
          OCaml caps live domains, so anything creating many sharded
          engines must call this; idempotent. *)
  description : string;
}

val of_tric : Tric_core.Tric.t -> t
val of_invidx : Tric_baselines.Invidx.t -> t
val of_graphdb : Tric_graphdb.Continuous.t -> t
val of_naive : Naive.t -> t

val make :
  name:string ->
  ?description:string ->
  ?stats:(unit -> (string * int) list) ->
  ?audit:(Edge.t list option -> Tric_audit.Audit.finding list) ->
  ?handle_batch:(Update.t list -> Report.t) ->
  ?shards:int ->
  ?busy_s:(unit -> float) ->
  ?shard_busy:(unit -> float array) ->
  ?metrics:(unit -> Tric_obs.Snapshot.t) ->
  ?spans:(unit -> Tric_obs.Span.recorded list) ->
  ?shutdown:(unit -> unit) ->
  ?mem:(unit -> (int * int * int) array) ->
  add_query:(Pattern.t -> unit) ->
  remove_query:(int -> bool) ->
  num_queries:(unit -> int) ->
  handle_update:(Update.t -> Report.t) ->
  current_matches:(int -> Embedding.t list) ->
  memory_words:(unit -> int) ->
  unit ->
  t
(** [handle_batch] defaults to folding [handle_update] over the window and
    merging the per-update reports. *)

val add_queries : t -> Pattern.t list -> unit
