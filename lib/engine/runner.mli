(** Stream replay harness.

    Feeds a dataset (query set + update stream) through an engine,
    measuring query-insertion time and per-update answering latency, with
    a wall-clock budget that truncates runs the way the paper's 24-hour
    threshold truncates its slow baselines (the asterisks in Figs. 12–14).

    Replay is per-update by default; with [batch_size > 1] the stream is
    chopped into micro-batches handed to {!Matcher.t.handle_batch}, and
    the latency samples become per-batch. *)

open Tric_graph
open Tric_query

type result = {
  engine : string;
  total_updates : int;
  updates_processed : int;  (** < total when the budget ran out *)
  batch_size : int;  (** 1 = per-update replay *)
  batches : int;  (** dispatch calls made (= updates processed when 1) *)
  shards : int;  (** engine's parallel shard count (1 = sequential) *)
  timed_out : bool;
  index_time_s : float;  (** time to insert all queries *)
  answer_time_s : float;  (** total answering {e wall-clock} time *)
  busy_s : float;
      (** total {e work} time: per-shard task seconds summed over shards
          during this run.  For a sequential engine this equals
          [answer_time_s]; for a sharded one [busy_s / answer_time_s > 1]
          is the realised parallelism, and quoting wall time alone as
          "work" would overstate parallel speedup. *)
  shard_busy_s : float array;
      (** per-shard breakdown of [busy_s] ([[||]] for engines without
          shards) — skew here is routing imbalance *)
  mean_ms : float;  (** answering time per update, milliseconds *)
  p50_ms : float;  (** per dispatch call: per update, or per batch *)
  p90_ms : float;  (** per dispatch call *)
  p95_ms : float;  (** per dispatch call, interpolated between ranks *)
  p99_ms : float;  (** per dispatch call *)
  max_ms : float;  (** slowest dispatch call (true sample maximum) *)
  latency_exact : bool;
      (** [true] while every latency sample was still held exactly, i.e.
          the percentiles above used the historical rank interpolation;
          [false] means the run overflowed the histogram's exact buffer
          and they are bucket-interpolated
          ({!Tric_obs.Histogram.percentile}) *)
  throughput_ups : float;  (** updates answered per second *)
  matches : int;  (** total new embeddings reported *)
  retractions : int;
      (** total embeddings retracted — explicit removals and window
          expiry folded into the triggering update's report *)
  satisfied_queries : int;  (** distinct query ids satisfied at least once *)
  memory_words : int;  (** engine-reachable heap words after the run *)
  checkpoints : (int * float) list;
      (** (updates processed, cumulative answering seconds) at each
          requested checkpoint that was reached *)
  audits : int;  (** shadow audits performed (0 unless auditing was on) *)
}

exception
  Audit_failure of {
    engine : string;
    update_index : int;  (** updates processed when the audit tripped *)
    findings : Tric_audit.Audit.finding list;
  }
(** Raised by {!run} when a shadow audit finds maintained state diverging
    from ground truth — the replay analogue of a sanitizer abort: it names
    the first update count at which the divergence was observable, so
    [TRIC_AUDIT=1] bisects to the offending update.  A printer is
    registered, so an uncaught failure pretty-prints the full report. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [sorted] ascending and [q] in [0, 1]:
    linear interpolation between the two bracketing ranks (0 on an empty
    array).  Exposed for the latency statistics tests; the replay itself
    now samples into a {!Tric_obs.Histogram} whose exact mode reproduces
    these semantics. *)

val run :
  ?budget_s:float ->
  ?checkpoints:int list ->
  ?measure_memory:bool ->
  ?batch_size:int ->
  ?audit_every:int ->
  engine:Matcher.t ->
  queries:Pattern.t list ->
  stream:Stream.t ->
  unit ->
  result
(** [budget_s] defaults to infinity; [checkpoints] (update counts, sorted
    ascending) default to none; [measure_memory] defaults to [true] (it
    walks the heap — disable inside tight sweeps); [batch_size] defaults
    to [1] (per-update replay through [handle_update]); every checkpoint
    satisfied by a dispatch call is recorded, so duplicate or
    batch-straddled checkpoints are never lost.

    [audit_every] turns on shadow auditing: every [n] updates (and once
    more at end of stream) the replay pauses — outside the timed sections,
    so latency and throughput numbers are unaffected — rebuilds the
    ground-truth live edge set from the stream prefix, and runs
    {!Matcher.t.audit} against it, raising {!Audit_failure} on the first
    unclean report.  Defaults to the [TRIC_AUDIT] environment variable
    (a positive update count), else off.
    @raise Invalid_argument if [batch_size < 1]. *)

val segment_means_ms : result -> (int * float) list
(** Per-checkpoint-window mean answering time: for consecutive checkpoints
    [(n1,t1); (n2,t2); ...] returns [(n1, mean ms of updates 0..n1);
    (n2, mean ms of updates n1..n2); ...] — the series the paper's
    answering-time-vs-graph-size figures plot. *)

val pp_result : Format.formatter -> result -> unit
