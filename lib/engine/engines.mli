(** Engine registry: fresh instances of the paper's seven engines (and the
    oracle) by name. *)

val tric : ?cache:bool -> ?shards:int -> ?metrics:bool -> unit -> Matcher.t
(** [shards] (default 1) runs the trie engine sharded on a domain pool;
    remember {!Matcher.t.shutdown} when creating many.  [metrics]
    (default false) builds the telemetry registries and span recorder. *)

val inv : ?cache:bool -> ?metrics:bool -> unit -> Matcher.t
val inc : ?cache:bool -> ?metrics:bool -> unit -> Matcher.t
val graphdb : unit -> Matcher.t
val naive : unit -> Matcher.t

val iso : unit -> Matcher.t
(** Ablation engine: one isolated TRIC instance per query — the
    single-query evaluation paradigm of prior work ([15] in the paper),
    with no sharing of index structures or materialized views across
    queries.  Quantifies what multi-query clustering buys. *)

val tric_naive_cover : unit -> Matcher.t
(** Ablation engine: TRIC with the paper's literal (non-upstream-extended)
    covering-path extraction — fewer shared prefixes. *)

val windowed : window:int -> Matcher.t -> Matcher.t
(** Wrap the given engine in a count-based sliding window of [window]
    most-recent distinct edges ({!Window.create}), presented as a
    {!Matcher.t} so it runs through the harness — batch path, inner
    audit chained behind the window-coherence class, and query removal
    all wired through. *)

val windowed_spec :
  ?slack:int -> ?default:Tric_query.Wspec.t -> (unit -> Matcher.t) -> Matcher.t
(** The spec-aware window ({!Window.make}): queries are grouped by their
    [WITHIN] clause, each group running its own engine from the factory;
    [default] scopes queries without a clause (absent: they run
    unwindowed); [slack] is the watermark's allowed out-of-orderness in
    seconds (default 0). *)

val by_name : ?shards:int -> ?metrics:bool -> ?window:Tric_query.Wspec.t -> string -> Matcher.t
(** "TRIC" | "TRIC+" | "INV" | "INV+" | "INC" | "INC+" | "GraphDB" |
    "NAIVE".  [shards] applies to the trie engines only (the baselines
    are inherently sequential); when omitted, the [TRIC_SHARDS]
    environment variable supplies it (default 1).  [metrics] applies to
    the trie and inverted-index engines; when omitted, [TRIC_METRICS]
    supplies it (default off).  [window] wraps the engine in a
    {!windowed_spec} window with that default spec; when omitted, the
    [TRIC_WINDOW] environment variable supplies it in {!Tric_query.Wspec}
    surface syntax (["1h"], ["90s TUMBLING"], ["1000 EVENTS"]...).
    @raise Invalid_argument on anything else, or on a malformed
    [TRIC_SHARDS] / [TRIC_METRICS] / [TRIC_WINDOW]. *)

val paper_names : string list
(** The seven engines of the paper's evaluation, in its plotting order:
    TRIC, TRIC+, INV, INV+, INC, INC+, GraphDB. *)

val trie_names : string list
(** [["TRIC"; "TRIC+"]]. *)
