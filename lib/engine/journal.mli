(** Durable continuous-query state via a write-ahead journal.

    The engines keep everything in memory (as the paper's system does); a
    production deployment must survive restarts without losing its
    subscriptions or re-notifying for matches it already delivered.  The
    journal logs every query registration and every stream update, in
    order, to an append-only text file; recovery replays the journal into
    a fresh engine, suppressing notifications for the replayed prefix.

    Records use the same line format as {!Tric_workloads.Dataset}
    persistence: [Q\t<id>\t<name>\t<pattern>] and [U\t<update>]. *)


open Tric_graph
open Tric_query

type t

val open_ : path:string -> (unit -> Matcher.t) -> t
(** [open_ ~path make_engine] opens (creating if missing) the journal at
    [path].  If it already holds records, a fresh engine from
    [make_engine] is rebuilt by replay — queries re-registered, updates
    re-applied, nothing re-notified.

    A {e torn trailing record} — the partial last append a crash
    (kill -9, full disk) leaves behind, with or without its final
    newline — is tolerated: the tail is truncated away and recovery
    proceeds from the clean prefix, exactly the write-ahead contract
    (the torn update was never acknowledged).  Corruption {e before} the
    final record still fails loudly.
    @raise Failure on an interior corrupt record. *)

val add_query : t -> Pattern.t -> unit
(** Log, flush, then register with the engine. *)

val handle_update : t -> Update.t -> Report.t
(** Log, flush, then apply — so a crash after the call can only replay
    the update, never lose it. *)

val engine : t -> Matcher.t

val entries : t -> int
(** Q/U records in the journal (including recovered ones) — blank and
    comment lines are not records. *)

val recovered : t -> int
(** How many Q/U records were replayed at open time. *)

val close : t -> unit
