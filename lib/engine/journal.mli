(** Durable continuous-query state via a write-ahead journal with
    CRC-framed records and compacting binary snapshots.

    The engines keep everything in memory (as the paper's system does); a
    production deployment must survive restarts without losing its
    subscriptions or re-notifying for matches it already delivered.  The
    journal logs every query registration/removal and every stream
    update, in order, to an append-only text file; recovery replays the
    journal into a fresh engine.  Each appended record carries a CRC-32
    ([!<crc>\t<payload>]) so silent mid-file corruption is detected, not
    replayed; unframed legacy records are still accepted.

    Record payloads: [Q\t<id>\t<name>\t<pattern>] (register),
    [W\t<qid>] (remove), [U\t<update>] (stream update), [X\t<blob>]
    (opaque caller state, e.g. the server's client-cursor records), and
    [S\t<id>] (snapshot marker, not counted as a record).

    {!snapshot} compacts: it writes a binary image of the full state
    (queries, live edges, aux blob) to [<path>.snap] via tmp+rename, then
    truncates the journal, so recovery replay is bounded by the
    post-snapshot tail however long the server has been running.  A crash
    at any point between those two steps is safe — the journal's leading
    snapshot marker tells recovery whether the file is the genuine tail
    or a stale pre-snapshot image to discard. *)

open Tric_graph
open Tric_query

type t

val open_ :
  path:string ->
  ?on_query:(Pattern.t -> unit) ->
  ?on_replay:(Update.t -> Report.t -> unit) ->
  ?on_remove:(int -> unit) ->
  ?on_aux:(string -> unit) ->
  ?restore_aux:(string -> unit) ->
  ?aux_state:(unit -> string) ->
  (unit -> Matcher.t) ->
  t
(** [open_ ~path make_engine] opens (creating if missing) the journal at
    [path].  If [<path>.snap] exists it is restored first (queries
    re-registered, live edges re-applied in bulk, [restore_aux] called
    with the stored blob), then the journal tail is replayed: [on_query]
    fires per recovered registration (snapshot or tail), [on_replay] per
    replayed update with the regenerated report, [on_remove] per [W]
    record, [on_aux] per [X] record in order.  [aux_state] is retained
    and queried at each {!snapshot}.

    A {e torn trailing record} — the partial last append a crash
    (kill -9, full disk) leaves behind, with or without its final
    newline — is tolerated: the tail is truncated away and recovery
    proceeds from the clean prefix, exactly the write-ahead contract
    (the torn update was never acknowledged).  Corruption {e before} the
    final record — malformed payload or CRC mismatch — still fails
    loudly.
    @raise Failure on an interior corrupt record or a corrupt snapshot. *)

val add_query : t -> Pattern.t -> unit
(** Log, flush, then register with the engine. *)

val remove_query : t -> int -> bool
(** Log a [W] record, flush, then remove from the engine.  Returns
    whether the engine knew the query. *)

val handle_update : t -> Update.t -> Report.t
(** Log, flush, then apply — so a crash after the call can only replay
    the update, never lose it. *)

val log_aux : t -> string -> unit
(** Append an opaque [X] record (replayed through [on_aux]).  The payload
    may contain tabs but not newlines.
    @raise Invalid_argument on an embedded newline. *)

val snapshot : t -> unit
(** Write a binary snapshot of the current state (registered queries,
    live edges with timestamps, and the [aux_state] blob) to
    [<path>.snap] atomically, then truncate the journal.  {!entries}
    resets to [0]. *)

val engine : t -> Matcher.t

val entries : t -> int
(** Q/U/W/X records in the journal since the last snapshot (including
    recovered ones) — blank lines, comments and snapshot markers are not
    records. *)

val recovered : t -> int
(** How many journal records were replayed at open time. *)

val restored : t -> int
(** How many items (queries + live edges) were restored from the
    snapshot at open time; [0] when there was none. *)

val has_snapshot : t -> bool

val snapshots : t -> int
(** Snapshots taken through this handle (not counting any restored). *)

val live_edges : t -> int
(** Current live-edge count (adds minus removes). *)

val num_queries : t -> int
(** Currently registered queries. *)

val close : t -> unit
