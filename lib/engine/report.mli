(** Per-update match reports.

    The answer to one stream update: for every query satisfied {e by this
    update}, the new total embeddings it created (each uses the incoming
    edge at least once). *)

open Tric_rel

type t = (int * Embedding.t list) list
(** Sorted by query id; embedding lists are non-empty and deduplicated. *)

val empty : t
val satisfied_ids : t -> int list
val total_matches : t -> int
val matches_of : t -> int -> Embedding.t list

val normalise : t -> t
(** Sort by qid, dedup and sort embeddings — canonical form for comparing
    engines in tests. *)

val merge : t list -> t
(** Per-query union of several reports, normalised — the report of a
    window of updates processed as one micro-batch. *)

val equal : t -> t -> bool
(** Equality of normalised reports. *)

val pp : Format.formatter -> t -> unit
