(** Per-update match reports.

    The answer to one stream update, on two channels:
    - [matches]: for every query satisfied {e by this update}, the new
      total embeddings it created (each uses the incoming edge at least
      once);
    - [retractions]: for every query affected, the previously-reported
      embeddings this update destroyed — by an explicit [Remove] or by
      window expiry folded into the triggering update. *)

open Tric_rel

type channel = (int * Embedding.t list) list
(** Sorted by query id; embedding lists are non-empty and deduplicated. *)

type t = {
  matches : channel;
  retractions : channel;
}

val empty : t
val of_matches : channel -> t
val of_pair : channel * channel -> t

val is_empty : t -> bool
(** No matches and no retractions. *)

val satisfied_ids : t -> int list
(** Query ids with new matches (retraction-only queries excluded). *)

val total_matches : t -> int
val total_retractions : t -> int
val matches_of : t -> int -> Embedding.t list
val retractions_of : t -> int -> Embedding.t list

val normalise : t -> t
(** Sort both channels by qid, dedup and sort embeddings — canonical form
    for comparing engines in tests. *)

val normalise_channel : channel -> channel

val merge : t list -> t
(** Channel-wise per-query union of several reports, normalised — the
    report of a window of updates processed as one micro-batch. *)

val equal : t -> t -> bool
(** Equality of normalised reports (both channels). *)

val pp : Format.formatter -> t -> unit
