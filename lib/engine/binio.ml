exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* CRC-32 (IEEE 802.3, reflected polynomial), bitwise — no precomputed
   table, so the module carries no toplevel state.  Journal records and
   snapshot bodies are short enough that the 8-shifts-per-byte cost is
   irrelevant next to the I/O. *)
let crc32 s =
  let crc = ref 0xFFFFFFFF in
  String.iter
    (fun c ->
      crc := !crc lxor Char.code c;
      for _ = 0 to 7 do
        let mask = - (!crc land 1) in
        crc := (!crc lsr 1) lxor (0xEDB88320 land mask)
      done)
    s;
  !crc lxor 0xFFFFFFFF land 0xFFFFFFFF

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Binio.put_u32: out of range";
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_i64 b v = Buffer.add_int64_be b (Int64.of_int v)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_bool b v = put_u8 b (if v then 1 else 0)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }
let remaining r = String.length r.data - r.pos
let eof r = remaining r = 0

let need r n =
  if n < 0 || remaining r < n then corrupt "truncated (need %d byte(s), have %d)" n (remaining r)

let u8 r =
  need r 1;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let u32 r =
  need r 4;
  let v =
    (Char.code r.data.[r.pos] lsl 24)
    lor (Char.code r.data.[r.pos + 1] lsl 16)
    lor (Char.code r.data.[r.pos + 2] lsl 8)
    lor Char.code r.data.[r.pos + 3]
  in
  r.pos <- r.pos + 4;
  v

let i64 r =
  need r 8;
  let v = String.get_int64_be r.data r.pos in
  r.pos <- r.pos + 8;
  (* The journal never stores values outside the 63-bit native range, so a
     lossy conversion here is corruption, not overflow. *)
  if Int64.compare v (Int64.of_int max_int) > 0 || Int64.compare v (Int64.of_int min_int) < 0
  then corrupt "i64 out of native int range";
  Int64.to_int v

let str r =
  let n = u32 r in
  need r n;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let bool r =
  match u8 r with
  | 0 -> false
  | 1 -> true
  | v -> corrupt "bad bool byte %d" v
