module Binio = Tric_engine.Binio

let version = 1

type emb = (int * string) list

type entry = { qid : int; matches : emb list; retractions : emb list }

type msg =
  | Hello of { cid : string; last_seen : int }
  | Register of { name : string; pattern : string }
  | Unregister of { qid : int }
  | Ack of { useq : int }
  | Publish of { pseq : int; update : string }
  | Stats of { format : string }
  | Quit
  | Welcome of { cid : string; cursor : int; useq : int; reset : string }
  | Registered of { qid : int }
  | Unregistered of { qid : int; existed : bool }
  | Notify of { useq : int; entries : entry list }
  | Puback of { pseq : int; useq : int }
  | Stats_reply of { body : string }
  | Bye of { reason : string }
  | Err of { reason : string }

let of_embedding e =
  List.map (fun (v, l) -> (v, Tric_graph.Label.to_string l)) (Tric_rel.Embedding.to_alist e)

let tag_of = function
  | Hello _ -> 1
  | Register _ -> 2
  | Unregister _ -> 3
  | Ack _ -> 4
  | Publish _ -> 5
  | Stats _ -> 6
  | Quit -> 7
  | Welcome _ -> 64
  | Registered _ -> 65
  | Unregistered _ -> 66
  | Notify _ -> 67
  | Puback _ -> 68
  | Stats_reply _ -> 69
  | Bye _ -> 70
  | Err _ -> 71

let put_emb b (e : emb) =
  Binio.put_u32 b (List.length e);
  List.iter
    (fun (v, l) ->
      Binio.put_i64 b v;
      Binio.put_str b l)
    e

let put_emb_list b es =
  Binio.put_u32 b (List.length es);
  List.iter (put_emb b) es

let put_entries b entries =
  Binio.put_u32 b (List.length entries);
  List.iter
    (fun en ->
      Binio.put_i64 b en.qid;
      put_emb_list b en.matches;
      put_emb_list b en.retractions)
    entries

let get_emb r : emb =
  let n = Binio.u32 r in
  List.init n (fun _ ->
      let v = Binio.i64 r in
      let l = Binio.str r in
      (v, l))

let get_emb_list r =
  let n = Binio.u32 r in
  List.init n (fun _ -> get_emb r)

let get_entries r =
  let n = Binio.u32 r in
  List.init n (fun _ ->
      let qid = Binio.i64 r in
      let matches = get_emb_list r in
      let retractions = get_emb_list r in
      { qid; matches; retractions })

let encode msg =
  let b = Buffer.create 64 in
  Binio.put_u8 b version;
  Binio.put_u8 b (tag_of msg);
  (match msg with
  | Hello { cid; last_seen } ->
    Binio.put_str b cid;
    Binio.put_i64 b last_seen
  | Register { name; pattern } ->
    Binio.put_str b name;
    Binio.put_str b pattern
  | Unregister { qid } -> Binio.put_i64 b qid
  | Ack { useq } -> Binio.put_i64 b useq
  | Publish { pseq; update } ->
    Binio.put_i64 b pseq;
    Binio.put_str b update
  | Stats { format } -> Binio.put_str b format
  | Quit -> ()
  | Welcome { cid; cursor; useq; reset } ->
    Binio.put_str b cid;
    Binio.put_i64 b cursor;
    Binio.put_i64 b useq;
    Binio.put_str b reset
  | Registered { qid } -> Binio.put_i64 b qid
  | Unregistered { qid; existed } ->
    Binio.put_i64 b qid;
    Binio.put_bool b existed
  | Notify { useq; entries } ->
    Binio.put_i64 b useq;
    put_entries b entries
  | Puback { pseq; useq } ->
    Binio.put_i64 b pseq;
    Binio.put_i64 b useq
  | Stats_reply { body } -> Binio.put_str b body
  | Bye { reason } -> Binio.put_str b reason
  | Err { reason } -> Binio.put_str b reason);
  Buffer.contents b

let decode payload =
  match
    let r = Binio.reader payload in
    let v = Binio.u8 r in
    if v <> version then Error (Printf.sprintf "unsupported wire version %d" v)
    else begin
      let tag = Binio.u8 r in
      let msg =
        match tag with
        | 1 ->
          let cid = Binio.str r in
          let last_seen = Binio.i64 r in
          Ok (Hello { cid; last_seen })
        | 2 ->
          let name = Binio.str r in
          let pattern = Binio.str r in
          Ok (Register { name; pattern })
        | 3 -> Ok (Unregister { qid = Binio.i64 r })
        | 4 -> Ok (Ack { useq = Binio.i64 r })
        | 5 ->
          let pseq = Binio.i64 r in
          let update = Binio.str r in
          Ok (Publish { pseq; update })
        | 6 -> Ok (Stats { format = Binio.str r })
        | 7 -> Ok Quit
        | 64 ->
          let cid = Binio.str r in
          let cursor = Binio.i64 r in
          let useq = Binio.i64 r in
          let reset = Binio.str r in
          Ok (Welcome { cid; cursor; useq; reset })
        | 65 -> Ok (Registered { qid = Binio.i64 r })
        | 66 ->
          let qid = Binio.i64 r in
          let existed = Binio.bool r in
          Ok (Unregistered { qid; existed })
        | 67 ->
          let useq = Binio.i64 r in
          let entries = get_entries r in
          Ok (Notify { useq; entries })
        | 68 ->
          let pseq = Binio.i64 r in
          let useq = Binio.i64 r in
          Ok (Puback { pseq; useq })
        | 69 -> Ok (Stats_reply { body = Binio.str r })
        | 70 -> Ok (Bye { reason = Binio.str r })
        | 71 -> Ok (Err { reason = Binio.str r })
        | t -> Error (Printf.sprintf "unknown message tag %d" t)
      in
      match msg with
      | Ok _ when not (Binio.eof r) ->
        Error (Printf.sprintf "%d trailing byte(s) after message" (Binio.remaining r))
      | m -> m
    end
  with
  | result -> result
  | exception Binio.Corrupt e -> Error e
