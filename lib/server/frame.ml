module Binio = Tric_engine.Binio

let header_len = 4
let default_max_frame = 16 * 1024 * 1024

let encode_into buf payload =
  Binio.put_u32 buf (String.length payload);
  Buffer.add_string buf payload

let encode payload =
  let b = Buffer.create (String.length payload + header_len) in
  encode_into b payload;
  Buffer.contents b

type decoder = {
  buf : Buffer.t;
  mutable pos : int; (* consumed prefix of [buf] *)
  max_frame : int;
  mutable failed : string option;
}

let decoder ?(max_frame = default_max_frame) () =
  { buf = Buffer.create 4096; pos = 0; max_frame; failed = None }

let pending d = Buffer.length d.buf - d.pos

let feed d bytes off len =
  if d.failed = None then Buffer.add_subbytes d.buf bytes off len

(* Reclaim the consumed prefix once it dominates the buffer; amortised
   O(1) per byte. *)
let compact d =
  if d.pos > 4096 && d.pos * 2 > Buffer.length d.buf then begin
    let rest = Buffer.sub d.buf d.pos (pending d) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.pos <- 0
  end

let next d =
  match d.failed with
  | Some e -> Error e
  | None ->
    if pending d < header_len then begin
      compact d;
      Ok None
    end
    else begin
      let byte i = Char.code (Buffer.nth d.buf (d.pos + i)) in
      let n = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
      if n > d.max_frame then begin
        let e = Printf.sprintf "frame of %d byte(s) exceeds the %d-byte limit" n d.max_frame in
        d.failed <- Some e;
        Error e
      end
      else if pending d < header_len + n then begin
        compact d;
        Ok None
      end
      else begin
        let payload = Buffer.sub d.buf (d.pos + header_len) n in
        d.pos <- d.pos + header_len + n;
        compact d;
        Ok (Some payload)
      end
    end
