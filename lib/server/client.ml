type t = { fd : Unix.file_descr; dec : Frame.decoder; scratch : Bytes.t }

let connect ?(retries = 100) sock_path =
  let rec go n =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX sock_path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when n > 0 ->
      Unix.close fd;
      Unix.sleepf 0.05;
      go (n - 1)
    | exception e ->
      Unix.close fd;
      raise e
  in
  { fd = go retries; dec = Frame.decoder (); scratch = Bytes.create 65536 }

let fd t = t.fd

let send t msg =
  let frame = Frame.encode (Wire.encode msg) in
  let n = String.length frame in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring t.fd frame !written (n - !written)
  done

let recv ?timeout_s t =
  let deadline =
    match timeout_s with Some s -> Some (Unix.gettimeofday () +. s) | None -> None
  in
  let rec go () =
    match Frame.next t.dec with
    | Error e -> failwith ("Client: framing error: " ^ e)
    | Ok (Some payload) -> (
      match Wire.decode payload with
      | Ok msg -> Some msg
      | Error e -> failwith ("Client: bad frame: " ^ e))
    | Ok None ->
      let wait =
        match deadline with
        | None -> -1.
        | Some d ->
          let w = d -. Unix.gettimeofday () in
          if w <= 0. then 0. else w
      in
      if wait = 0. then None
      else begin
        match Unix.select [ t.fd ] [] [] wait with
        | [], _, _ -> None
        | _ :: _, _, _ -> (
          match Unix.read t.fd t.scratch 0 (Bytes.length t.scratch) with
          | 0 -> raise End_of_file
          | n ->
            Frame.feed t.dec t.scratch 0 n;
            go ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      end
  in
  go ()

let recv_exn ?(timeout_s = 10.) t =
  match recv ~timeout_s t with
  | Some msg -> msg
  | None -> failwith "Client: timed out waiting for a message"

let hello ?(last_seen = -1) t cid =
  send t (Wire.Hello { cid; last_seen });
  let rec wait () =
    match recv_exn t with
    | Wire.Welcome { cursor; useq; reset; _ } -> (cursor, useq, reset)
    | Wire.Err { reason } -> failwith ("Client: hello rejected: " ^ reason)
    | _ -> wait ()
  in
  wait ()

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
