(** The subscription server: a Unix-domain-socket front-end over a
    journalled engine, turning the library into the paper's actual
    deployment shape — long-lived subscribers registering standing
    queries and receiving two-channel match notifications as the graph
    stream flows.

    {2 Architecture}

    One single-threaded [select] event loop owns every connection and
    all server state (the engine itself may still shard across domains
    internally).  Each published update is journalled {e before} it is
    applied, assigned a global sequence number [useq], fanned out to the
    subscribed clients' bounded outboxes ({!Outbox}), and acknowledged
    with a [Puback].

    {2 Exactly-once delivery}

    Per-client delivery cursors (highest acked [useq]) are journalled as
    aux records; outbox items are retained until acked and persisted
    inside snapshots.  After a crash, recovery replays snapshot + journal
    tail — deterministic engines regenerate bit-identical reports, so the
    outboxes rebuild exactly — and a reconnecting client's
    [Hello last_seen] resume token acknowledges through what it durably
    consumed and replays the rest: no gaps, no duplicates.  Publisher
    resends of unacked updates are absorbed by the engine's set
    semantics (duplicate add/remove is a no-op with an empty report).

    {2 Backpressure and eviction}

    Outboxes coalesce retraction/match pairs past their soft cap and
    overflow at the hard cap, evicting the slow consumer (cause-tagged
    counters: [overflow], [protocol], [oversize]).  An evicted client's
    next [Hello] is answered with [Welcome.reset] naming the cause and a
    clean slate. *)

type config = {
  sock_path : string;
  journal_path : string;
  engine_name : string;  (** {!Tric_engine.Engines.by_name} name. *)
  shards : int;
  snapshot_every : int;  (** Journal records between snapshots; [0] disables. *)
  outbox_soft : int;  (** Outbox depth where coalescing starts. *)
  outbox_hard : int;  (** Outbox depth where the client is evicted. *)
  max_frame : int;
  metrics_out : string option;  (** Envelope JSON written at shutdown. *)
}

val default_config : sock_path:string -> journal_path:string -> config
(** TRIC+, 1 shard, snapshot every 10k records, outbox 1024/4096. *)

type t

val create : config -> t
(** Bind the socket and open (recovering if non-empty) the journal.
    @raise Failure on a corrupt journal or snapshot.
    @raise Unix.Unix_error if the socket cannot be bound. *)

val serve : t -> unit
(** Run the event loop until {!request_stop} or a client [Quit]; then
    flush, write [metrics_out], close the journal and shut the engine
    down. *)

val run : config -> unit
(** [create] + [serve]. *)

val request_stop : t -> unit
(** Signal-safe, callable from another domain: the loop notices within
    its select timeout. *)

val useq : t -> int
val registry : t -> Tric_obs.Registry.t

val stats_envelope : t -> Tric_obs.Json.t
(** tric-metrics-v1 envelope over the server registry. *)

val stats_body : t -> string -> string
(** Stats serialized as ["prometheus"] text or (default) envelope
    JSON. *)
