type item = { useq : int; entries : Wire.entry list }

type t = {
  mutable buf : item array;
  mutable head : int; (* ring index of the oldest retained item *)
  mutable len : int; (* retained (unacked) items *)
  mutable send : int; (* offset from head of the next item to send, <= len *)
  soft : int;
  hard : int;
  mutable hwm : int;
  mutable coalesced : int;
}

let placeholder = { useq = -1; entries = [] }

let create ~soft ~hard =
  if soft < 1 || hard < soft then invalid_arg "Outbox.create: need 1 <= soft <= hard";
  { buf = Array.make 8 placeholder; head = 0; len = 0; send = 0; soft; hard; hwm = 0; coalesced = 0 }

let get t i = t.buf.((t.head + i) mod Array.length t.buf)
let set t i v = t.buf.((t.head + i) mod Array.length t.buf) <- v

let grow t =
  let cap = Array.length t.buf in
  let nbuf = Array.make (cap * 2) placeholder in
  for i = 0 to t.len - 1 do
    nbuf.(i) <- get t i
  done;
  t.buf <- nbuf;
  t.head <- 0

let enqueue t item =
  if t.len = Array.length t.buf then grow t;
  set t t.len item;
  t.len <- t.len + 1;
  if t.len > t.hwm then t.hwm <- t.len

let emb_equal (a : Wire.emb) (b : Wire.emb) =
  List.equal (fun (v1, l1) (v2, l2) -> Int.equal v1 v2 && String.equal l1 l2) a b

let rec remove_first eq = function
  | [] -> None
  | x :: rest ->
    if eq x then Some rest
    else (
      match remove_first eq rest with
      | Some rest' -> Some (x :: rest')
      | None -> None)

(* Cancel one (qid, emb) match sitting in a not-yet-sent queued item
   against an incoming retraction of the same embedding.  The queued item
   is rewritten in place; a fully-hollowed item stays in the ring as a
   placeholder that {!take_to_send} skips. *)
let try_cancel t qid emb =
  let rec scan i =
    if i >= t.len then false
    else begin
      let it = get t i in
      let hit = ref false in
      let entries =
        List.filter_map
          (fun (en : Wire.entry) ->
            if (not !hit) && Int.equal en.Wire.qid qid then begin
              match remove_first (emb_equal emb) en.Wire.matches with
              | Some matches ->
                hit := true;
                (match (matches, en.Wire.retractions) with
                | [], [] -> None
                | _ -> Some { en with Wire.matches })
              | None -> Some en
            end
            else Some en)
          it.entries
      in
      if !hit then begin
        set t i { it with entries };
        true
      end
      else scan (i + 1)
    end
  in
  scan t.send

let push t (item : item) =
  if t.len >= t.hard then `Overflow
  else begin
    let item =
      if t.len < t.soft then item
      else begin
        (* Over the soft cap: shed load by annihilating retraction/match
           pairs the client has not seen yet — delivering both would be
           a net no-op at the subscriber. *)
        let entries =
          List.filter_map
            (fun (en : Wire.entry) ->
              let retractions =
                List.filter
                  (fun emb ->
                    if try_cancel t en.Wire.qid emb then begin
                      t.coalesced <- t.coalesced + 1;
                      false
                    end
                    else true)
                  en.Wire.retractions
              in
              match (en.Wire.matches, retractions) with
              | [], [] -> None
              | _ -> Some { en with Wire.retractions })
            item.entries
        in
        { item with entries }
      end
    in
    (match item.entries with [] -> () | _ :: _ -> enqueue t item);
    `Ok
  end

let ack t n =
  let dropped = ref 0 in
  while t.len > 0 && (get t 0).useq <= n do
    set t 0 placeholder;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    incr dropped
  done;
  t.send <- max 0 (t.send - !dropped)

let rewind t n =
  let i = ref 0 in
  while !i < t.len && (get t !i).useq <= n do
    incr i
  done;
  t.send <- !i

let rec take_to_send t =
  if t.send >= t.len then None
  else begin
    let it = get t t.send in
    t.send <- t.send + 1;
    match it.entries with [] -> take_to_send t | _ :: _ -> Some it
  end

let depth t = t.len
let unsent t = t.len - t.send
let hwm t = t.hwm
let coalesced t = t.coalesced

let items t =
  List.filter (fun it -> match it.entries with [] -> false | _ :: _ -> true)
    (List.init t.len (get t))

let of_items ~soft ~hard items =
  let t = create ~soft ~hard in
  List.iter (enqueue t) items;
  t
