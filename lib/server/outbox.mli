(** Per-client bounded notification outbox.

    A ring of notification items, each stamped with the producing
    update's global sequence number [useq].  Items are retained until the
    client {e acks} them — the send pointer only tracks what has been
    written to the socket — so a crash or disconnect between send and ack
    loses nothing: {!rewind} re-aims the send pointer at the client's
    resume cursor.

    Backpressure is two-staged.  Past the {e soft} cap, each pushed
    retraction is coalesced against a matching not-yet-sent match of the
    same query (both vanish: delivering the pair is a net no-op at the
    subscriber).  At the {e hard} cap, {!push} refuses with [`Overflow]
    and the caller evicts the slow consumer. *)

type item = { useq : int; entries : Wire.entry list }

type t

val create : soft:int -> hard:int -> t
(** @raise Invalid_argument unless [1 <= soft <= hard]. *)

val push : t -> item -> [ `Ok | `Overflow ]
(** Enqueue, coalescing when depth is at or past [soft]; [`Overflow]
    (item dropped) at [hard].  Items whose entries are (or become)
    empty are not queued. *)

val take_to_send : t -> item option
(** Next unsent item, advancing the send pointer.  Skips items hollowed
    out by coalescing.  Returns [None] when everything retained has been
    sent. *)

val ack : t -> int -> unit
(** Drop retained items with [useq <=] the cursor. *)

val rewind : t -> int -> unit
(** Re-aim the send pointer at the first item with [useq >] the cursor —
    everything after the client's resume token will be (re)sent. *)

val depth : t -> int
(** Retained (unacked) items, including sent-but-unacked. *)

val unsent : t -> int

val hwm : t -> int
(** High-water mark of {!depth} over the outbox's lifetime. *)

val coalesced : t -> int
(** Retraction/match pairs annihilated under soft backpressure. *)

val items : t -> item list
(** Retained non-empty items, oldest first — snapshot support. *)

val of_items : soft:int -> hard:int -> item list -> t
(** Rebuild from {!items}, send pointer at the start (everything
    unsent). *)
