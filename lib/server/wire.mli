(** Versioned binary wire protocol carried inside {!Frame} frames.

    Every message starts with a version byte then a tag byte; client
    tags are [1..63], server tags [64..127].  Notifications preserve the
    engine's two-channel report shape: per query id, new matches and
    retractions, each embedding a sorted [(variable, label)] alist.

    Exactly-once delivery rests on three fields: [Notify.useq] (the
    global update sequence number the notification was produced by),
    [Ack.useq] (the client's delivery cursor — everything at or below it
    is durably consumed), and [Hello.last_seen] (the resume token a
    reconnecting client presents; the server acknowledges through it and
    resends everything after it). *)

val version : int

type emb = (int * string) list
(** One embedding, as a [(variable id, label)] alist sorted by variable. *)

type entry = { qid : int; matches : emb list; retractions : emb list }

type msg =
  | Hello of { cid : string; last_seen : int }
      (** Attach to (creating if new) durable client [cid]; [last_seen]
          is the resume cursor, [-1] for "whatever the server has". *)
  | Register of { name : string; pattern : string }
  | Unregister of { qid : int }
  | Ack of { useq : int }  (** Delivery cursor advance; no reply. *)
  | Publish of { pseq : int; update : string }
      (** Stream update in {!Tric_query.Parse.update} syntax; [pseq] is
          echoed in the {!Puback}. *)
  | Stats of { format : string }  (** ["json"] or ["prometheus"]. *)
  | Quit  (** Graceful server shutdown. *)
  | Welcome of { cid : string; cursor : int; useq : int; reset : string }
      (** [cursor] is the server-side delivery cursor after applying
          [last_seen]; [useq] the current global sequence; [reset] is
          [""] normally, or the eviction cause when the client was
          evicted and its subscription state has been reset. *)
  | Registered of { qid : int }
  | Unregistered of { qid : int; existed : bool }
  | Notify of { useq : int; entries : entry list }
  | Puback of { pseq : int; useq : int }
  | Stats_reply of { body : string }
  | Bye of { reason : string }
  | Err of { reason : string }

val of_embedding : Tric_rel.Embedding.t -> emb

val encode : msg -> string

val decode : string -> (msg, string) result
(** Rejects unknown versions/tags, truncated fields and trailing
    garbage. *)

(**/**)

val put_entries : Buffer.t -> entry list -> unit
val get_entries : Tric_engine.Binio.reader -> entry list
(** Shared with the server's snapshot blob, which persists pending
    outbox entries in the same encoding.  Raises
    [Tric_engine.Binio.Corrupt] on malformed input. *)
