(** Length-prefixed binary framing for the server's stream sockets.

    A frame is a 4-byte big-endian payload length followed by the payload
    bytes.  The decoder is incremental: feed it whatever chunks the
    socket yields — frames split across reads, or several per read —
    and pull complete payloads with {!next}.  An oversized length prefix
    (malicious or garbage input) poisons the decoder permanently; the
    connection must be dropped, since the byte stream can never
    resynchronise. *)

val header_len : int
val default_max_frame : int

val encode_into : Buffer.t -> string -> unit
(** Append one frame (header + payload) to a buffer. *)

val encode : string -> string

type decoder

val decoder : ?max_frame:int -> unit -> decoder
(** [max_frame] bounds the payload length {!next} will accept
    (default {!default_max_frame}). *)

val feed : decoder -> Bytes.t -> int -> int -> unit
(** [feed d bytes off len] appends a received chunk.  No-op once the
    decoder has failed. *)

val next : decoder -> (string option, string) result
(** Next complete payload: [Ok None] means more bytes are needed;
    [Error _] means the stream is poisoned (oversized frame) and every
    subsequent call returns the same error. *)

val pending : decoder -> int
(** Buffered bytes not yet returned as frames. *)
