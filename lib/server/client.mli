(** Minimal blocking client for tests, the CLI REPL and the bench.

    One socket, one incremental frame decoder; no background thread —
    callers interleave {!send} and {!recv} themselves. *)

type t

val connect : ?retries:int -> string -> t
(** Connect to a Unix-domain socket path, retrying [ENOENT] /
    [ECONNREFUSED] every 50 ms (default 100 tries ≈ 5 s) so callers can
    race server startup. *)

val send : t -> Wire.msg -> unit
(** Frame, encode and write the whole message (blocking). *)

val recv : ?timeout_s:float -> t -> Wire.msg option
(** Next message; [None] on timeout (no timeout = block forever).
    @raise End_of_file when the server closed the connection.
    @raise Failure on a framing or decode error. *)

val recv_exn : ?timeout_s:float -> t -> Wire.msg
(** {!recv} that fails on timeout (default 10 s). *)

val hello : ?last_seen:int -> t -> string -> int * int * string
(** Send [Hello], wait for the [Welcome], return
    [(cursor, useq, reset)].  Discards any other messages that arrive
    first (e.g. notifications on a racing reconnect).
    @raise Failure if the server answers [Err]. *)

val fd : t -> Unix.file_descr

val close : t -> unit
