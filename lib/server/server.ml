open Tric_engine
open Tric_query
module Binio = Tric_engine.Binio
module Registry = Tric_obs.Registry
module Snapshot = Tric_obs.Snapshot
module Json = Tric_obs.Json

let log_src = Logs.Src.create "tric.server" ~doc:"subscription server"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  sock_path : string;
  journal_path : string;
  engine_name : string;
  shards : int;
  snapshot_every : int;
  outbox_soft : int;
  outbox_hard : int;
  max_frame : int;
  metrics_out : string option;
}

let default_config ~sock_path ~journal_path =
  {
    sock_path;
    journal_path;
    engine_name = "TRIC+";
    shards = 1;
    snapshot_every = 10_000;
    outbox_soft = 1024;
    outbox_hard = 4096;
    max_frame = Frame.default_max_frame;
    metrics_out = None;
  }

type conn = {
  fd : Unix.file_descr;
  dec : Frame.decoder;
  out : Buffer.t;
  mutable opos : int; (* written prefix of [out] *)
  mutable owner : client option;
  mutable closing : bool; (* flush pending output, then close *)
  mutable dead : bool;
}

and client = {
  cid : string;
  mutable cursor : int; (* highest acked useq *)
  mutable outbox : Outbox.t;
  mutable qids : int list;
  mutable evicted : string option;
  mutable conn : conn option;
}

type t = {
  cfg : config;
  mutable jr : Journal.t option; (* set right after the journal opens; the
                                    recovery hooks close over [t] before it *)
  useq : int ref;
  next_qid : int ref;
  replaying : bool ref;
  clients : (string, client) Hashtbl.t;
  subs : (int, string list) Hashtbl.t; (* qid -> subscriber cids *)
  pat_qid : (string, int) Hashtbl.t; (* canonical pattern text -> qid *)
  qid_pat : (int, string) Hashtbl.t;
  mutable conns : conn list;
  listen_fd : Unix.file_descr;
  stop : bool Atomic.t;
  scratch : Bytes.t;
  started : float;
  mutable last_snapshot : float;
  reg : Registry.t;
  g_clients_live : Registry.gauge;
  g_clients_known : Registry.gauge;
  g_outbox_hwm : Registry.gauge;
  g_coalesced : Registry.gauge;
  g_snapshot_age : Registry.gauge;
  g_useq : Registry.gauge;
  c_snapshots : Registry.counter;
  c_evict_overflow : Registry.counter;
  c_evict_protocol : Registry.counter;
  c_evict_oversize : Registry.counter;
  c_notifications : Registry.counter;
  c_published : Registry.counter;
  c_acks : Registry.counter;
  c_registers : Registry.counter;
  c_frames_in : Registry.counter;
  c_frames_out : Registry.counter;
}

let journal_of t = match t.jr with Some jr -> jr | None -> invalid_arg "Server: journal not open"

let journal_aux t payload = if not !(t.replaying) then Journal.log_aux (journal_of t) payload

let send t conn msg =
  Frame.encode_into conn.out (Wire.encode msg);
  Registry.incr t.c_frames_out

let fresh_outbox t = Outbox.create ~soft:t.cfg.outbox_soft ~hard:t.cfg.outbox_hard

(* -- subscription bookkeeping ---------------------------------------------- *)

(* Remove [c]'s subscription to [qid].  When the last subscriber leaves, the
   query is removed from the engine and journalled as a [W] record; during
   replay the journal's own [W] record (which follows) performs that part. *)
let unsubscribe t c ~log_d qid =
  if List.exists (Int.equal qid) c.qids then begin
    c.qids <- List.filter (fun q -> not (Int.equal q qid)) c.qids;
    (match Hashtbl.find_opt t.subs qid with
    | Some cids ->
      Hashtbl.replace t.subs qid (List.filter (fun x -> not (String.equal x c.cid)) cids)
    | None -> ());
    if log_d then journal_aux t (Printf.sprintf "D\t%s\t%d" c.cid qid);
    (match Hashtbl.find_opt t.subs qid with
    | Some [] ->
      Hashtbl.remove t.subs qid;
      (match Hashtbl.find_opt t.qid_pat qid with
      | Some canon ->
        Hashtbl.remove t.pat_qid canon;
        Hashtbl.remove t.qid_pat qid
      | None -> ());
      if not !(t.replaying) then ignore (Journal.remove_query (journal_of t) qid)
    | Some _ | None -> ());
    true
  end
  else false

let subscribe t c qid =
  if not (List.exists (Int.equal qid) c.qids) then begin
    c.qids <- qid :: c.qids;
    let cids = match Hashtbl.find_opt t.subs qid with Some l -> l | None -> [] in
    if not (List.exists (String.equal c.cid) cids) then
      Hashtbl.replace t.subs qid (c.cid :: cids);
    journal_aux t (Printf.sprintf "R\t%s\t%d" c.cid qid)
  end

(* Reset [c] to a blank slate at cursor [cursor]: no subscriptions, empty
   outbox, not evicted.  This is exactly the semantics of a [C] aux record,
   for both fresh and returning-after-eviction clients. *)
let reset_client t c cursor =
  List.iter (fun qid -> ignore (unsubscribe t c ~log_d:false qid)) c.qids;
  c.qids <- [];
  c.cursor <- cursor;
  c.outbox <- fresh_outbox t;
  c.evicted <- None

let find_or_create_client t cid cursor =
  match Hashtbl.find_opt t.clients cid with
  | Some c -> c
  | None ->
    let c = { cid; cursor; outbox = fresh_outbox t; qids = []; evicted = None; conn = None } in
    Hashtbl.replace t.clients cid c;
    c

let evict t c reason =
  match c.evicted with
  | Some _ -> ()
  | None ->
    c.evicted <- Some reason;
    Registry.incr
      (match reason with
      | "overflow" -> t.c_evict_overflow
      | "protocol" -> t.c_evict_protocol
      | _ -> t.c_evict_oversize);
    journal_aux t (Printf.sprintf "E\t%s\t%s" c.cid reason);
    Log.warn (fun m -> m "evicting client %s: %s" c.cid reason);
    (match c.conn with
    | Some conn ->
      send t conn (Wire.Bye { reason });
      conn.closing <- true
    | None -> ())

let apply_ack t c useq =
  let applied = min useq !(t.useq) in
  if applied > c.cursor then begin
    c.cursor <- applied;
    Outbox.ack c.outbox applied;
    Registry.incr t.c_acks;
    journal_aux t (Printf.sprintf "A\t%s\t%d" c.cid applied)
  end

(* -- fan-out ---------------------------------------------------------------- *)

let fanout t (report : Report.t) =
  if not (Report.is_empty report) then begin
    let by_qid = Hashtbl.create 16 in
    List.iter (fun (qid, embs) -> Hashtbl.replace by_qid qid (embs, [])) report.Report.matches;
    List.iter
      (fun (qid, embs) ->
        let ms = match Hashtbl.find_opt by_qid qid with Some (ms, _) -> ms | None -> [] in
        Hashtbl.replace by_qid qid (ms, embs))
      report.Report.retractions;
    let per_client = Hashtbl.create 8 in
    Hashtbl.iter
      (fun qid (ms, rs) ->
        match Hashtbl.find_opt t.subs qid with
        | None | Some [] -> ()
        | Some cids ->
          let entry =
            {
              Wire.qid;
              matches = List.map Wire.of_embedding ms;
              retractions = List.map Wire.of_embedding rs;
            }
          in
          List.iter
            (fun cid ->
              let prev = match Hashtbl.find_opt per_client cid with Some e -> e | None -> [] in
              Hashtbl.replace per_client cid (entry :: prev))
            cids)
      by_qid;
    Hashtbl.iter
      (fun cid entries ->
        match Hashtbl.find_opt t.clients cid with
        | None -> ()
        | Some c ->
          if c.evicted = None then begin
            (* Sort within the item so each client's stream is deterministic
               regardless of hash-table iteration order. *)
            let entries =
              List.sort (fun a b -> Int.compare a.Wire.qid b.Wire.qid) entries
            in
            match Outbox.push c.outbox { Outbox.useq = !(t.useq); entries } with
            | `Ok -> ()
            | `Overflow -> evict t c "overflow"
          end)
      per_client
  end

(* -- recovery hooks --------------------------------------------------------- *)

let on_query t p =
  let canon = Parse.pattern_to_string p in
  let qid = Tric_query.Pattern.id p in
  Hashtbl.replace t.pat_qid canon qid;
  Hashtbl.replace t.qid_pat qid canon;
  if qid >= !(t.next_qid) then t.next_qid := qid + 1

let on_remove t qid =
  (match Hashtbl.find_opt t.qid_pat qid with
  | Some canon ->
    Hashtbl.remove t.pat_qid canon;
    Hashtbl.remove t.qid_pat qid
  | None -> ());
  Hashtbl.remove t.subs qid

let on_replay t _u report =
  incr t.useq;
  fanout t report

let on_aux t payload =
  let bad () = failwith ("Server: malformed aux record: " ^ payload) in
  let num s = match int_of_string_opt s with Some n -> n | None -> bad () in
  match String.split_on_char '\t' payload with
  | [ "C"; cid; cursor ] ->
    let cursor = num cursor in
    let c = find_or_create_client t cid cursor in
    reset_client t c cursor
  | [ "R"; cid; qid ] -> (
    match Hashtbl.find_opt t.clients cid with
    | Some c -> subscribe t c (num qid)
    | None -> bad ())
  | [ "D"; cid; qid ] -> (
    match Hashtbl.find_opt t.clients cid with
    | Some c -> ignore (unsubscribe t c ~log_d:false (num qid))
    | None -> bad ())
  | [ "A"; cid; useq ] -> (
    match Hashtbl.find_opt t.clients cid with
    | Some c -> apply_ack t c (num useq)
    | None -> bad ())
  | [ "E"; cid; reason ] -> (
    match Hashtbl.find_opt t.clients cid with
    | Some c -> evict t c reason
    | None -> bad ())
  | _ -> bad ()

let restore_aux t blob =
  if String.length blob > 0 then begin
    match
      let r = Binio.reader blob in
      (match Binio.u8 r with
      | 1 -> ()
      | v -> raise (Binio.Corrupt (Printf.sprintf "unsupported server blob version %d" v)));
      t.useq := Binio.i64 r;
      let next_qid = Binio.i64 r in
      if next_qid > !(t.next_qid) then t.next_qid := next_qid;
      let nclients = Binio.u32 r in
      for _ = 1 to nclients do
        let cid = Binio.str r in
        let cursor = Binio.i64 r in
        let was_evicted = Binio.bool r in
        let reason = Binio.str r in
        let nq = Binio.u32 r in
        let qids = List.init nq (fun _ -> Binio.i64 r) in
        let nitems = Binio.u32 r in
        let items =
          List.init nitems (fun _ ->
              let useq = Binio.i64 r in
              let entries = Wire.get_entries r in
              { Outbox.useq; entries })
        in
        let c =
          {
            cid;
            cursor;
            outbox = Outbox.of_items ~soft:t.cfg.outbox_soft ~hard:t.cfg.outbox_hard items;
            qids;
            evicted = (if was_evicted then Some reason else None);
            conn = None;
          }
        in
        Hashtbl.replace t.clients cid c;
        List.iter
          (fun qid ->
            let cids = match Hashtbl.find_opt t.subs qid with Some l -> l | None -> [] in
            if not (List.exists (String.equal cid) cids) then
              Hashtbl.replace t.subs qid (cid :: cids))
          qids
      done;
      if not (Binio.eof r) then raise (Binio.Corrupt "trailing bytes in server blob")
    with
    | () -> ()
    | exception Binio.Corrupt e -> failwith ("Server: corrupt snapshot blob: " ^ e)
  end

let aux_state t () =
  let b = Buffer.create 4096 in
  Binio.put_u8 b 1;
  Binio.put_i64 b !(t.useq);
  Binio.put_i64 b !(t.next_qid);
  let cids = Hashtbl.fold (fun cid _ acc -> cid :: acc) t.clients [] |> List.sort String.compare in
  Binio.put_u32 b (List.length cids);
  List.iter
    (fun cid ->
      let c = Hashtbl.find t.clients cid in
      Binio.put_str b cid;
      Binio.put_i64 b c.cursor;
      (match c.evicted with
      | Some reason ->
        Binio.put_bool b true;
        Binio.put_str b reason
      | None ->
        Binio.put_bool b false;
        Binio.put_str b "");
      let qids = List.sort Int.compare c.qids in
      Binio.put_u32 b (List.length qids);
      List.iter (Binio.put_i64 b) qids;
      let items = Outbox.items c.outbox in
      Binio.put_u32 b (List.length items);
      List.iter
        (fun (it : Outbox.item) ->
          Binio.put_i64 b it.Outbox.useq;
          Wire.put_entries b it.Outbox.entries)
        items)
    cids;
  Buffer.contents b

(* -- construction ----------------------------------------------------------- *)

let create cfg =
  (* A peer closing mid-write must surface as EPIPE, not kill the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (try Sys.remove cfg.sock_path with Sys_error _ -> ());
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.sock_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let reg = Registry.create () in
  let t =
    {
      cfg;
      jr = None;
      useq = ref 0;
      next_qid = ref 1;
      replaying = ref true;
      clients = Hashtbl.create 64;
      subs = Hashtbl.create 256;
      pat_qid = Hashtbl.create 256;
      qid_pat = Hashtbl.create 256;
      conns = [];
      listen_fd;
      stop = Atomic.make false;
      scratch = Bytes.create 65536;
      started = Unix.gettimeofday ();
      last_snapshot = 0.;
      reg;
      g_clients_live = Registry.gauge reg "srv_clients_live";
      g_clients_known = Registry.gauge reg "srv_clients_known";
      g_outbox_hwm = Registry.gauge reg "srv_outbox_depth_hwm";
      g_coalesced = Registry.gauge reg "srv_coalesced_pairs";
      g_snapshot_age = Registry.gauge reg "srv_snapshot_age_s";
      g_useq = Registry.gauge reg "srv_useq";
      c_snapshots = Registry.counter reg "srv_snapshots_total";
      c_evict_overflow = Registry.counter reg "srv_evictions_overflow_total";
      c_evict_protocol = Registry.counter reg "srv_evictions_protocol_total";
      c_evict_oversize = Registry.counter reg "srv_evictions_oversize_total";
      c_notifications = Registry.counter reg "srv_notifications_total";
      c_published = Registry.counter reg "srv_published_total";
      c_acks = Registry.counter reg "srv_acks_total";
      c_registers = Registry.counter reg "srv_registers_total";
      c_frames_in = Registry.counter reg "srv_frames_in_total";
      c_frames_out = Registry.counter reg "srv_frames_out_total";
    }
  in
  let jr =
    Journal.open_ ~path:cfg.journal_path ~on_query:(on_query t) ~on_replay:(on_replay t)
      ~on_remove:(on_remove t) ~on_aux:(on_aux t) ~restore_aux:(restore_aux t)
      ~aux_state:(aux_state t)
      (fun () -> Engines.by_name ~shards:cfg.shards cfg.engine_name)
  in
  t.jr <- Some jr;
  t.replaying := false;
  Log.info (fun m ->
      m "listening on %s (engine %s, %d shard(s); recovered %d record(s), restored %d)"
        cfg.sock_path cfg.engine_name cfg.shards (Journal.recovered jr) (Journal.restored jr));
  t

(* -- stats ------------------------------------------------------------------ *)

let refresh_gauges t =
  let live = List.length (List.filter (fun conn -> conn.owner <> None) t.conns) in
  Registry.set t.g_clients_live (float_of_int live);
  Registry.set t.g_clients_known (float_of_int (Hashtbl.length t.clients));
  let hwm, coal =
    Hashtbl.fold
      (fun _ c (h, k) -> (max h (Outbox.hwm c.outbox), k + Outbox.coalesced c.outbox))
      t.clients (0, 0)
  in
  Registry.set t.g_outbox_hwm (float_of_int hwm);
  Registry.set t.g_coalesced (float_of_int coal);
  let since = if t.last_snapshot > 0. then t.last_snapshot else t.started in
  Registry.set t.g_snapshot_age (Unix.gettimeofday () -. since);
  Registry.set t.g_useq (float_of_int !(t.useq))

let stats_envelope t =
  refresh_gauges t;
  Snapshot.envelope ~engine:"tric_server" (Snapshot.of_registry t.reg)

let stats_body t format =
  refresh_gauges t;
  let snap = Snapshot.of_registry t.reg in
  match format with
  | "prometheus" -> Snapshot.to_prometheus snap
  | _ -> Json.to_string (Snapshot.envelope ~engine:"tric_server" snap)

(* -- message handling ------------------------------------------------------- *)

let maybe_snapshot t =
  if t.cfg.snapshot_every > 0 && Journal.entries (journal_of t) >= t.cfg.snapshot_every
  then begin
    Journal.snapshot (journal_of t);
    Registry.incr t.c_snapshots;
    t.last_snapshot <- Unix.gettimeofday ()
  end

let handle_hello t conn cid last_seen =
  if String.length cid = 0 || String.contains cid '\t' || String.contains cid '\n' then
    send t conn (Wire.Err { reason = "invalid client id" })
  else begin
    let c, reset =
      match Hashtbl.find_opt t.clients cid with
      | None ->
        let c = find_or_create_client t cid !(t.useq) in
        journal_aux t (Printf.sprintf "C\t%s\t%d" cid c.cursor);
        (c, "")
      | Some c -> (
        match c.evicted with
        | Some reason ->
          (* The eviction cost this client its subscriptions; hand it a
             clean slate and tell it why, so it re-registers. *)
          reset_client t c !(t.useq);
          journal_aux t (Printf.sprintf "C\t%s\t%d" cid c.cursor);
          (c, reason)
        | None ->
          if last_seen >= 0 then apply_ack t c last_seen;
          Outbox.rewind c.outbox c.cursor;
          (c, ""))
    in
    (match c.conn with
    | Some old when old != conn ->
      old.owner <- None;
      old.closing <- true
    | Some _ | None -> ());
    (match conn.owner with
    | Some prev when prev != c -> prev.conn <- None
    | Some _ | None -> ());
    conn.owner <- Some c;
    c.conn <- Some conn;
    send t conn (Wire.Welcome { cid; cursor = c.cursor; useq = !(t.useq); reset })
  end

let handle_register t conn c name pattern_s =
  match Parse.pattern ~name ~id:0 pattern_s with
  | exception Parse.Syntax_error msg -> send t conn (Wire.Err { reason = "bad pattern: " ^ msg })
  | p0 ->
    let canon = Parse.pattern_to_string p0 in
    let qid =
      match Hashtbl.find_opt t.pat_qid canon with
      | Some qid -> qid
      | None ->
        let qid = !(t.next_qid) in
        incr t.next_qid;
        Journal.add_query (journal_of t) (Parse.pattern ~name ~id:qid pattern_s);
        Hashtbl.replace t.pat_qid canon qid;
        Hashtbl.replace t.qid_pat qid canon;
        qid
    in
    subscribe t c qid;
    Registry.incr t.c_registers;
    send t conn (Wire.Registered { qid })

let handle_publish t conn pseq update =
  match Parse.update update with
  | exception Parse.Syntax_error msg -> send t conn (Wire.Err { reason = "bad update: " ^ msg })
  | u ->
    let report = Journal.handle_update (journal_of t) u in
    incr t.useq;
    Registry.incr t.c_published;
    fanout t report;
    maybe_snapshot t;
    send t conn (Wire.Puback { pseq; useq = !(t.useq) })

let protocol_error t conn reason =
  send t conn (Wire.Err { reason });
  (match conn.owner with
  | Some c -> evict t c "protocol"
  | None -> Registry.incr t.c_evict_protocol);
  conn.closing <- true

let handle_msg t conn (msg : Wire.msg) =
  let with_owner f =
    match conn.owner with
    | Some c when c.evicted = None -> f c
    | Some _ -> send t conn (Wire.Err { reason = "client is evicted; hello again to reset" })
    | None -> send t conn (Wire.Err { reason = "hello required" })
  in
  match msg with
  | Wire.Hello { cid; last_seen } -> handle_hello t conn cid last_seen
  | Wire.Register { name; pattern } -> with_owner (fun c -> handle_register t conn c name pattern)
  | Wire.Unregister { qid } ->
    with_owner (fun c ->
        let existed = unsubscribe t c ~log_d:true qid in
        send t conn (Wire.Unregistered { qid; existed }))
  | Wire.Ack { useq } -> with_owner (fun c -> apply_ack t c useq)
  | Wire.Publish { pseq; update } -> handle_publish t conn pseq update
  | Wire.Stats { format } -> send t conn (Wire.Stats_reply { body = stats_body t format })
  | Wire.Quit ->
    send t conn (Wire.Bye { reason = "server stopping" });
    conn.closing <- true;
    Atomic.set t.stop true
  | Wire.Welcome _ | Wire.Registered _ | Wire.Unregistered _ | Wire.Notify _
  | Wire.Puback _ | Wire.Stats_reply _ | Wire.Bye _ | Wire.Err _ ->
    protocol_error t conn "unexpected server-to-client message"

(* -- event loop ------------------------------------------------------------- *)

let rec drain_frames t conn =
  if not conn.closing then begin
    match Frame.next conn.dec with
    | Error reason ->
      send t conn (Wire.Err { reason });
      (match conn.owner with
      | Some c -> evict t c "oversize"
      | None -> Registry.incr t.c_evict_oversize);
      conn.closing <- true
    | Ok None -> ()
    | Ok (Some payload) ->
      Registry.incr t.c_frames_in;
      (match Wire.decode payload with
      | Error e -> protocol_error t conn ("bad frame: " ^ e)
      | Ok msg -> handle_msg t conn msg);
      drain_frames t conn
  end

(* Move due notifications from the owner's outbox into the connection's
   output buffer, bounded so one firehose subscriber cannot balloon the
   buffer: unsent items stay in the outbox where backpressure applies. *)
let pump t conn =
  match conn.owner with
  | None -> ()
  | Some c ->
    if c.evicted = None && not conn.closing then begin
      let rec go () =
        if Buffer.length conn.out - conn.opos < 262_144 then begin
          match Outbox.take_to_send c.outbox with
          | None -> ()
          | Some it ->
            send t conn (Wire.Notify { useq = it.Outbox.useq; entries = it.Outbox.entries });
            Registry.incr t.c_notifications;
            go ()
        end
      in
      go ()
    end

let flush_conn conn =
  if not conn.dead then begin
    let len = Buffer.length conn.out - conn.opos in
    if len > 0 then begin
      match Unix.write_substring conn.fd (Buffer.contents conn.out) conn.opos len with
      | n ->
        conn.opos <- conn.opos + n;
        if conn.opos = Buffer.length conn.out then begin
          Buffer.clear conn.out;
          conn.opos <- 0
        end
        else if conn.opos > 65_536 then begin
          let rest = Buffer.sub conn.out conn.opos (Buffer.length conn.out - conn.opos) in
          Buffer.clear conn.out;
          Buffer.add_string conn.out rest;
          conn.opos <- 0
        end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> conn.dead <- true
    end
  end

let read_conn t conn =
  if not conn.dead then begin
    match Unix.read conn.fd t.scratch 0 (Bytes.length t.scratch) with
    | 0 -> conn.dead <- true
    | n ->
      Frame.feed conn.dec t.scratch 0 n;
      drain_frames t conn
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> conn.dead <- true
  end

let rec accept_conns t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
    Unix.set_nonblock fd;
    t.conns <-
      {
        fd;
        dec = Frame.decoder ~max_frame:t.cfg.max_frame ();
        out = Buffer.create 4096;
        opos = 0;
        owner = None;
        closing = false;
        dead = false;
      }
      :: t.conns;
    accept_conns t
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()

let close_fd fd = try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let cull t =
  let keep, drop =
    List.partition
      (fun conn -> not (conn.dead || (conn.closing && Buffer.length conn.out = conn.opos)))
      t.conns
  in
  t.conns <- keep;
  List.iter
    (fun conn ->
      (match conn.owner with
      | Some c ->
        c.conn <- None;
        conn.owner <- None
      | None -> ());
      close_fd conn.fd)
    drop

let request_stop t = Atomic.set t.stop true

let shutdown t =
  List.iter
    (fun conn ->
      if not conn.closing then send t conn (Wire.Bye { reason = "server stopping" });
      flush_conn conn;
      close_fd conn.fd)
    t.conns;
  t.conns <- [];
  close_fd t.listen_fd;
  (try Sys.remove t.cfg.sock_path with Sys_error _ -> ());
  (match t.cfg.metrics_out with
  | Some path ->
    let doc = stats_envelope t in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Json.to_string ~pretty:true doc))
  | None -> ());
  let jr = journal_of t in
  Journal.close jr;
  (Journal.engine jr).Matcher.shutdown ();
  Log.info (fun m -> m "server stopped")

let serve t =
  while not (Atomic.get t.stop) do
    List.iter (pump t) t.conns;
    let rds = t.listen_fd :: List.map (fun conn -> conn.fd) t.conns in
    let wrs =
      List.filter_map
        (fun conn -> if Buffer.length conn.out > conn.opos then Some conn.fd else None)
        t.conns
    in
    (match Unix.select rds wrs [] 0.25 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | readable, writable, _ ->
      if List.memq t.listen_fd readable then accept_conns t;
      List.iter
        (fun conn -> if List.memq conn.fd readable then read_conn t conn)
        t.conns;
      List.iter
        (fun conn -> if List.memq conn.fd writable then flush_conn conn)
        t.conns);
    cull t;
    refresh_gauges t
  done;
  shutdown t

let run cfg =
  let t = create cfg in
  serve t

let useq t = !(t.useq)
let registry t = t.reg
