(* check: allow-file shard-escape — the auditor recomputes ground truth on the main domain, reading shard state only between batches *)
open Tric_graph
open Tric_query
open Tric_rel
module Trie = Tric_core.Trie
module Tric = Tric_core.Tric
module Route = Tric_core.Route
module Invidx = Tric_baselines.Invidx

type severity =
  | Error
  | Warning

type location =
  | Forest
  | Node of int
  | Base of Ekey.t
  | Query of int
  | Stats
  | Window

type finding = {
  severity : severity;
  location : location;
  invariant : string;
  detail : string;
}

let invariant_classes =
  [
    "trie-shape";
    "routing-coherence";
    "registration";
    "view-coherence";
    "base-coherence";
    "index-coherence";
    "arena-integrity";
    "cache-coherence";
    "stats";
    "window-coherence";
  ]

(* How many offending tuples/embeddings a diff finding quotes. *)
let sample_limit = 3

let samples pp xs =
  let shown = List.filteri (fun i _ -> i < sample_limit) xs in
  let ellipsis = if List.length xs > sample_limit then ", ..." else "" in
  Format.asprintf "%a%s"
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f ", ") pp)
    shown ellipsis

(* -- Shared checks ---------------------------------------------------------- *)

(* Relation-internal invariants, re-homed under the given location. *)
let relation_audit ~report location rel =
  List.iter (fun (invariant, detail) -> report location invariant detail) (Relation.audit rel)

(* Set difference of an expected tuple stream against a live relation.
   [expect] is an iterator — the expectation is consumed tuple by tuple
   (deduplicated here), never materialized as a list, so certifying a
   large base view allocates one hash table, not a boxed copy of it. *)
let diff_view ~report ~location ~invariant ~what ~expect view =
  let exp_tbl = Tuple.Tbl.create (2 * Relation.cardinality view + 1) in
  expect (fun t -> Tuple.Tbl.replace exp_tbl t ());
  let missing =
    Tuple.Tbl.fold (fun t () acc -> if Relation.mem view t then acc else t :: acc) exp_tbl []
  in
  let extra =
    Relation.fold (fun t acc -> if Tuple.Tbl.mem exp_tbl t then acc else t :: acc) view []
  in
  if missing <> [] then
    report location invariant
      (Format.asprintf "%s: %d expected tuple(s) missing: %s" what (List.length missing)
         (samples Tuple.pp missing));
  if extra <> [] then
    report location invariant
      (Format.asprintf "%s: %d tuple(s) not re-derivable: %s" what (List.length extra)
         (samples Tuple.pp extra))

(* Expected base view contents for a key, streamed off the ground-truth
   edge set (duplicates are fine — {!diff_view} dedups). *)
let expected_base key edges f =
  List.iter (fun (e : Edge.t) -> if Ekey.matches key e then f (Tuple.of_edge e)) edges

let check_base_views ~report ~fold_base ?edges container =
  fold_base
    (fun key rel () ->
      if Relation.width rel <> 2 then
        report (Base key) "trie-shape"
          (Printf.sprintf "base view has width %d, expected 2" (Relation.width rel));
      relation_audit ~report (Base key) rel;
      match edges with
      | None -> ()
      | Some edges ->
        diff_view ~report ~location:(Base key) ~invariant:"base-coherence"
          ~what:"vs live edge set" ~expect:(expected_base key edges) rel)
    container ()

(* -- TRIC / TRIC+ ----------------------------------------------------------- *)

(* Probe function over a base view built with plain scans only — shares no
   code with the engine's join machinery. *)
let base_probe base =
  let tbl : Label.t list ref Label.Tbl.t =
    Label.Tbl.create (2 * Relation.cardinality base + 1)
  in
  Relation.iter
    (fun tu ->
      let src = Tuple.first tu and dst = Tuple.last tu in
      match Label.Tbl.find_opt tbl src with
      | Some cell -> cell := dst :: !cell
      | None -> Label.Tbl.add tbl src (ref [ dst ]))
    base;
  fun l -> match Label.Tbl.find_opt tbl l with Some cell -> !cell | None -> []

(* Walk one trie depth-first, re-deriving every node's expected view from
   the parent's expected view (not the parent's live view — independence)
   chained with the node key's base view.  Returns whether the subtree
   carries any registration. *)
let rec check_node ~report forest node ~depth ~parent_expected =
  let nid = Trie.node_id node in
  let view = Trie.node_view node in
  if Trie.node_depth node <> depth then
    report (Node nid) "trie-shape"
      (Printf.sprintf "node depth %d at root-path length %d" (Trie.node_depth node) depth);
  if Relation.width view <> depth + 2 then
    report (Node nid) "trie-shape"
      (Printf.sprintf "view width %d, expected %d" (Relation.width view) (depth + 2));
  relation_audit ~report (Node nid) view;
  let base_opt =
    match Trie.base_view forest (Trie.node_key node) with
    | None ->
      report (Node nid) "trie-shape"
        (Format.asprintf "node key %a has no base view" Ekey.pp (Trie.node_key node));
      None
    | Some base -> Some base
  in
  (* Derived expectations (depth >= 1) are join products and must be
     materialized for the recursion anyway; a root's expectation is its
     key's base view, streamed straight off the packed store — no boxed
     list per certification pass. *)
  let derived =
    match (base_opt, parent_expected) with
    | Some base, Some pexp ->
      let probe = base_probe base in
      Some
        (List.concat_map
           (fun ptu -> List.map (fun dst -> Tuple.extend ptu dst) (probe (Tuple.last ptu)))
           pexp)
    | _ -> None
  in
  let expect f =
    match (derived, base_opt, parent_expected) with
    | Some l, _, _ -> List.iter f l
    | None, Some base, None -> Relation.iter f base
    | None, _, _ -> ()
  in
  diff_view ~report ~location:(Node nid) ~invariant:"view-coherence"
    ~what:"vs naive chain join of base views" ~expect view;
  let children_registered =
    match Trie.node_children node with
    | [] -> false
    | children ->
      (* Only an inner node's expectation is reified, and only here. *)
      let expected =
        match derived with
        | Some l -> l
        | None ->
          let acc = ref [] in
          expect (fun t -> acc := t :: !acc);
          !acc
      in
      List.fold_left
        (fun acc child ->
          (match Trie.node_parent child with
          | Some p when Trie.node_id p = nid -> ()
          | _ ->
            report
              (Node (Trie.node_id child))
              "trie-shape" "child's parent link does not point back");
          check_node ~report forest child ~depth:(depth + 1)
            ~parent_expected:(Some expected)
          || acc)
        false children
  in
  children_registered || Trie.registrations node <> []

let check_registrations ~report t =
  let qviews = Tric.query_views t in
  (* Expected (qid, path_index) registrations per terminal node id — node
     ids are globally unique across shard forests, so one table spans the
     whole engine. *)
  let expected_at : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (qid, qv) ->
      Array.iteri
        (fun i term ->
          let nid = Trie.node_id term in
          match Hashtbl.find_opt expected_at nid with
          | Some cell -> cell := (qid, i) :: !cell
          | None -> Hashtbl.add expected_at nid (ref [ (qid, i) ]))
        qv.Tric.qv_terminals)
    qviews;
  Array.iter
    (fun forest ->
      Trie.fold_nodes
        (fun node () ->
          let nid = Trie.node_id node in
          let expected =
            match Hashtbl.find_opt expected_at nid with Some cell -> !cell | None -> []
          in
          let actual = Trie.registrations node in
          let mem (q, p) = List.exists (fun (q', p') -> q = q' && p = p') in
          List.iter
            (fun reg ->
              if not (mem reg actual) then
                report (Node nid) "registration"
                  (Printf.sprintf "missing registration (Q%d, P%d)" (fst reg) (snd reg)))
            expected;
          List.iter
            (fun reg ->
              if not (mem reg expected) then
                report (Node nid) "registration"
                  (Printf.sprintf "stale registration (Q%d, P%d)" (fst reg) (snd reg)))
            actual)
        forest ())
    (Tric.forests t)

let check_queries ~report t =
  List.iter
    (fun (qid, qv) ->
      let width = qv.Tric.qv_width in
      if width <> Pattern.num_vertices qv.Tric.qv_pattern then
        report (Query qid) "trie-shape"
          (Printf.sprintf "cached width %d, pattern has %d vertices" width
             (Pattern.num_vertices qv.Tric.qv_pattern));
      Array.iteri
        (fun i term ->
          (* The terminal's root-path key chain must spell the covering
             path's key word. *)
          let word = Path.keys qv.Tric.qv_pattern qv.Tric.qv_paths.(i) in
          let chain =
            let rec up n acc =
              let acc = Trie.node_key n :: acc in
              match Trie.node_parent n with None -> acc | Some p -> up p acc
            in
            up term []
          in
          if
            List.length chain <> List.length word
            || not (List.for_all2 Ekey.equal chain word)
          then
            report (Query qid) "trie-shape"
              (Printf.sprintf "path %d: terminal node %d key chain differs from path word"
                 i (Trie.node_id term));
          (* The shard recorded for the path must be the router's verdict
             for the word's first key.  An empty key word is unroutable —
             no base view could ever feed the path — and the engine
             rejects it at registration, so finding one here means the
             query state was corrupted after the fact. *)
          (match word with
          | [] ->
            report (Query qid) "routing-coherence"
              (Printf.sprintf "path %d: empty key word — no routable placement" i)
          | first :: _ ->
            let owner = Route.owner ~shards:(Tric.num_shards t) first in
            if qv.Tric.qv_path_shards.(i) <> owner then
              report (Query qid) "routing-coherence"
                (Printf.sprintf "path %d: indexed on shard %d, router owner is %d" i
                   qv.Tric.qv_path_shards.(i) owner));
          (* Cached per-path embeddings = re-derivation from the terminal
             view, as a multiset (a correct cache holds no duplicates). *)
          let vids = qv.Tric.qv_path_vids.(i) in
          let counts = Embedding.Tbl.create 64 in
          let bump em d =
            let c =
              match Embedding.Tbl.find_opt counts em with Some c -> c | None -> 0
            in
            Embedding.Tbl.replace counts em (c + d)
          in
          Relation.iter
            (fun tu ->
              match Embedding.of_tuple ~width ~vids tu with
              | Some em -> bump em 1
              | None -> ())
            (Trie.node_view term);
          List.iter (fun em -> bump em (-1)) qv.Tric.qv_path_embs.(i);
          let missing = ref 0 and extra = ref 0 in
          Embedding.Tbl.iter
            (fun _ c -> if c > 0 then missing := !missing + c else extra := !extra - c)
            counts;
          if !missing > 0 || !extra > 0 then
            report (Query qid) "cache-coherence"
              (Printf.sprintf
                 "path %d: cached embeddings diverge from terminal view (%d missing, %d \
                  phantom)"
                 i !missing !extra))
        qv.Tric.qv_terminals)
    (Tric.query_views t)

(* Dispatch-bitmap coherence: recompute, from the forests, the exact
   per-key shard sets — bit [s] iff shard [s]'s forest holds a node keyed
   [k] — and demand the engine's routing bitmaps equal them both ways.
   A missing bit makes the dispatcher skip a shard whose views the op
   feeds (lost updates, silent divergence); a spurious bit only costs
   dead tasks, but still breaks the certified claim that dispatch =
   affected shards.  [insert_path] creates a node (and base view) for
   every key of a placed word and [remove_query] retains them, so exact
   equality — not one-sided containment — is the invariant. *)
let check_route_bitmaps ~report t =
  let expected = Ekey.Tbl.create 256 in
  Array.iteri
    (fun sid forest ->
      Trie.fold_nodes
        (fun node () ->
          let k = Trie.node_key node in
          let prev =
            match Ekey.Tbl.find_opt expected k with Some m -> m | None -> 0
          in
          Ekey.Tbl.replace expected k (prev lor (1 lsl sid)))
        forest ())
    (Tric.forests t);
  List.iter
    (fun (k, mask) ->
      let exp =
        match Ekey.Tbl.find_opt expected k with Some m -> m | None -> 0
      in
      if mask <> exp then
        report (Base k) "routing-coherence"
          (Format.asprintf
             "dispatch mask for %a is %d, forests hold nodes on mask %d" Ekey.pp k
             mask exp);
      Ekey.Tbl.remove expected k)
    (Tric.route_bits t);
  Ekey.Tbl.iter
    (fun k exp ->
      report (Base k) "routing-coherence"
        (Format.asprintf
           "key %a has nodes on shard mask %d but no dispatch-table entry" Ekey.pp
           k exp))
    expected

let check_stats ~report t =
  let s = Tric.stats t in
  if s.Tric.noop_removals > s.Tric.removals then
    report Stats "stats"
      (Printf.sprintf "noop_removals %d exceeds removals %d" s.Tric.noop_removals
         s.Tric.removals);
  if s.Tric.batched_updates <> s.Tric.batch_net_applied + s.Tric.batch_cancelled then
    report Stats "stats"
      (Printf.sprintf "batched_updates %d <> net applied %d + cancelled %d"
         s.Tric.batched_updates s.Tric.batch_net_applied s.Tric.batch_cancelled);
  let node_removes =
    Array.fold_left
      (fun acc forest ->
        Trie.fold_nodes
          (fun n acc -> acc + Relation.stats_removes (Trie.node_view n))
          forest acc)
      0 (Tric.forests t)
  in
  if node_removes <> s.Tric.tuples_removed then
    report Stats "stats"
      (Printf.sprintf "view eviction sum %d <> tuples_removed %d" node_removes
         s.Tric.tuples_removed)

let check ?edges t =
  let out = ref [] in
  let add severity location invariant detail =
    out := { severity; location; invariant; detail } :: !out
  in
  let report location invariant detail = add Error location invariant detail in
  let shards = Tric.num_shards t in
  Array.iteri
    (fun sid forest ->
      List.iter
        (fun root ->
          (* Routing invariant: every trie lives on the shard its root key
             routes to — the precondition for shard-local propagation
             being the global propagation restricted to this forest. *)
          let owner = Route.owner ~shards (Trie.node_key root) in
          if owner <> sid then
            report
              (Node (Trie.node_id root))
              "routing-coherence"
              (Format.asprintf "trie rooted at %a sits on shard %d, router owner is %d"
                 Ekey.pp (Trie.node_key root) sid owner);
          let registered =
            check_node ~report forest root ~depth:0 ~parent_expected:None
          in
          if not registered then
            add Warning
              (Node (Trie.node_id root))
              "trie-shape" "orphan trie: no registration anywhere in subtree")
        (Trie.roots forest);
      check_base_views ~report ~fold_base:Trie.fold_base ?edges forest)
    (Tric.forests t);
  check_registrations ~report t;
  check_route_bitmaps ~report t;
  check_queries ~report t;
  check_stats ~report t;
  List.rev !out

(* -- INV / INC baselines ---------------------------------------------------- *)

let check_invidx ?edges i =
  let out = ref [] in
  let report location invariant detail =
    out := { severity = Error; location; invariant; detail } :: !out
  in
  check_base_views ~report ~fold_base:Invidx.fold_base ?edges i;
  (* Every key of every live query must own a base view. *)
  let have = Ekey.Tbl.create 64 in
  Invidx.fold_base (fun key _ () -> Ekey.Tbl.replace have key ()) i ();
  List.iter
    (fun (qid, keys) ->
      List.iter
        (fun key ->
          if not (Ekey.Tbl.mem have key) then
            report (Query qid) "registration"
              (Format.asprintf "query key %a has no base view" Ekey.pp key))
        keys)
    (Invidx.query_keys i);
  (match edges with
  | None -> ()
  | Some edges ->
    (* The duplicate-detection set must equal the live edge set. *)
    let live = Edge.Tbl.create (2 * List.length edges) in
    List.iter (fun e -> Edge.Tbl.replace live e ()) edges;
    let seen = Invidx.seen_edges i in
    List.iter
      (fun e ->
        if not (Edge.Tbl.mem live e) then begin
          report Forest "base-coherence"
            (Format.asprintf "seen set holds dead edge %a" Edge.pp e)
        end
        else Edge.Tbl.remove live e)
      seen;
    Edge.Tbl.iter
      (fun e () ->
        report Forest "base-coherence"
          (Format.asprintf "live edge %a missing from seen set" Edge.pp e))
      live);
  List.rev !out

(* -- Reporting -------------------------------------------------------------- *)

let errors findings = List.filter (fun f -> f.severity = Error) findings
let is_clean findings = errors findings = []

let pp_location fmt = function
  | Forest -> Format.pp_print_string fmt "forest"
  | Node nid -> Format.fprintf fmt "node#%d" nid
  | Base key -> Format.fprintf fmt "base[%a]" Ekey.pp key
  | Query qid -> Format.fprintf fmt "Q%d" qid
  | Stats -> Format.pp_print_string fmt "stats"
  | Window -> Format.pp_print_string fmt "window"

let pp_finding fmt f =
  Format.fprintf fmt "[%s] %s @ %a: %s"
    (match f.severity with Error -> "error" | Warning -> "warn")
    f.invariant pp_location f.location f.detail

let pp_report fmt findings =
  let errs = errors findings in
  let warns = List.filter (fun f -> f.severity = Warning) findings in
  Format.fprintf fmt "@[<v>";
  List.iter (fun f -> Format.fprintf fmt "%a@," pp_finding f) (errs @ warns);
  Format.fprintf fmt "%d error(s), %d warning(s)@]" (List.length errs)
    (List.length warns)
