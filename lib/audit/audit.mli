(** Invariant-audit sanitizer for materialized engine state.

    The engines maintain their state aggressively incrementally: lazy
    prefix/hinge deletion indexes, per-query embedding-cache delta
    subtraction, net-op folded micro-batches.  That is exactly the regime
    where silent divergence between maintained state and ground truth
    creeps in.  This module certifies, at any point of a replay, that every
    materialized view, index, and cache equals what a from-scratch
    recomputation would produce — the sanitizer the shadow-audit harness
    ({!Tric_engine.Runner.run}'s [audit_every] / [TRIC_AUDIT]), the
    [tric_cli audit] subcommand, and the QCheck postconditions run.

    The invariant lattice, from structure to accounting:

    - {b trie-shape}: node depth equals its root-path length, view widths
      are [depth + 2], parent/child links agree, every node key owns a base
      view, each query's terminal key chain spells exactly the covering
      path's key word, and the query width matches its pattern.
    - {b routing-coherence}: every trie sits on the shard
      {!Tric_core.Route.owner} assigns to its root key, each query path's
      recorded shard is the router's verdict for its word's first key
      (and no path has an empty, unroutable key word), and the dispatch
      bitmaps ({!Tric_core.Tric.route_bits}) equal — both ways — the
      per-key shard sets recomputed from the forests: every shard holding
      nodes for a key is in its mask (else targeted dispatch loses
      updates) and no mask names a shard without them (else it dispatches
      dead work).  Together these make shard-local propagation over
      targeted dispatch equal the global engine restricted to each
      shard.
    - {b registration}: terminals carry exactly the [(qid, path_index)]
      registrations of the live queries — none stale, none missing.
    - {b view-coherence}: every node's materialized relation equals the
      independent naive chain join of the base views along its root path
      (recomputed here with plain scans, sharing no code with the
      engine's delta propagation).
    - {b base-coherence}: with the live edge set supplied, every base view
      holds exactly the matching edges (and the INV/INC duplicate-detection
      set equals the edge set).
    - {b index-coherence}: every maintained index — the TRIC+ cached
      hash-join structures and the prefix/hinge deletion indexes of both
      cache modes — holds exactly the live tuples ({!Tric_rel.Relation.audit}).
    - {b arena-integrity}: the packed row arenas behind every relation are
      internally sound ({!Tric_rel.Rows.audit}): no live row sits on a
      freelist, no freelist entry is out of range or duplicated, no dead
      slot is stranded off the freelist, the live counter matches the
      liveness map, and no index bucket names a dead or out-of-range row.
    - {b cache-coherence}: each query's cached per-path partial embeddings
      equal the re-derivation from its terminal views, as a multiset.
    - {b stats}: accounting identities — per relation,
      [inserts - removes = cardinality]; across the engine, evicted-tuple
      sums and batch net-op counts must add up.
    - {b window-coherence} (emitted by {!Tric_engine.Window.audit}, not
      {!check}): no retained edge outlives its window — time-window
      deadlines never sit at or behind the watermark, count windows never
      exceed capacity — and the window retains no edge the stream has
      dropped; each group's inner engine is then certified against the
      window's own live edge set, so a lost expiry removal surfaces as a
      base-coherence divergence.

    Checks are pure observation: they never build indexes that are not
    already live and never mutate the engine. *)

open Tric_graph
open Tric_query

type severity =
  | Error  (** maintained state diverges from recomputation *)
  | Warning  (** hygiene: not a divergence, but worth surfacing *)

type location =
  | Forest  (** the trie forest as a whole *)
  | Node of int  (** a trie node, by {!Tric_core.Trie.node_id} *)
  | Base of Ekey.t  (** the base view of a generic edge key *)
  | Query of int  (** a live query, by id *)
  | Stats  (** engine-level accounting *)
  | Window  (** a window wrapper's retention state *)

type finding = {
  severity : severity;
  location : location;
  invariant : string;  (** one of {!invariant_classes} *)
  detail : string;
}

val invariant_classes : string list
(** The ten class identifiers, lattice order. *)

val check : ?edges:Edge.t list -> Tric_core.Tric.t -> finding list
(** Audit a TRIC/TRIC+ engine, sequential or sharded — every shard's
    forest is walked and certified independently (base views are
    replicated per shard, so ground truth applies to each), then the
    cross-shard layers (registrations, routing, per-query caches, stats)
    are checked over all forests at once.  [edges] is the ground-truth
    live edge set (the replayed stream's net additions); when supplied,
    base views are also certified against it, closing the chain "edge set
    → base views → node views → per-query caches". *)

val check_invidx : ?edges:Edge.t list -> Tric_baselines.Invidx.t -> finding list
(** Audit an INV/INV+/INC/INC+ baseline: base-view, index and accounting
    invariants (these engines materialize per-path joins on demand, so
    there is no node-view or embedding-cache layer to certify). *)

val errors : finding list -> finding list
(** The [Error]-severity subset. *)

val is_clean : finding list -> bool
(** No [Error] findings ([Warning]s tolerated). *)

val pp_finding : Format.formatter -> finding -> unit
val pp_report : Format.formatter -> finding list -> unit
(** One finding per line, errors first. *)
