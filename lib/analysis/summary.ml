(* Per-file Parsetree summaries.

   One pass over a parsed implementation produces, per top-level binding:
   its parameters, the toplevel values it references (resolved through
   module aliases), every mutation it performs (with the inferred target
   class and the Mutex lock state at that point), the Pool/Domain task
   submission sites it contains, its local let-bindings (for task-array
   substitution) and whether its right-hand side allocates module-level
   mutable state.  Check.ml turns these summaries into findings.

   The walk also emits the AST re-implementations of the lexical rules
   (poly-compare / poly-hash / poly-equal / obj-magic / catch-all /
   toplevel-mutable): resolution through [env] and the alias table is
   what makes them precise where the lexical scan can only pattern-match
   tokens. *)

open Parsetree
module SMap = Map.Make (String)
module SSet = Set.Make (String)

type vref = { r_mod : string; r_name : string; r_line : int }

type target =
  | Owned  (* locally allocated in this binding: record/array literal, create/make/... *)
  | Var of string  (* a parameter or non-owning local: caller-supplied state *)
  | Toplevel of string * string  (* a module-level value: shared across domains *)
  | Opaque

type lock =
  | Held
  | Unheld
  | Mixed

type mutation = { m_line : int; m_target : target; m_lock : lock }
type pool_site = { ps_kind : string; ps_task : expression; ps_line : int }

type call_site = {
  c_callee : string;
  c_args : (Asttypes.arg_label * expression) list;
  c_line : int;
}

type binding = {
  b_module : string;
  b_inner : string option;  (* enclosing nested module, if any *)
  b_name : string;
  b_line : int;
  b_params : (string option * string option) list;  (* (label, var) per parameter *)
  b_mutable_value : bool;
  b_refs : vref list;
  b_muts : mutation list;
  b_pool : pool_site list;
  b_calls : call_site list;
  b_locals : (string * expression) list;
  mutable b_shared : bool;
}

type ctx = {
  cx_path : string;
  cx_in_lib : bool;
  cx_module : string;
  cx_top : SSet.t;
  cx_aliases : string SMap.t;
}

type file = {
  f_path : string;
  f_module : string;
  f_in_lib : bool;
  f_spawns : bool;
  f_bindings : binding list;
  f_findings : Src.finding list;
  f_ctx : ctx;
}

type acc = {
  mutable a_refs : vref list;
  mutable a_muts : mutation list;
  mutable a_pool : pool_site list;
  mutable a_calls : call_site list;
  mutable a_locals : (string * expression) list;
  mutable a_applied : string list;
  mutable a_spawns : bool;
  mutable a_findings : Src.finding list;
}

let fresh_acc () =
  {
    a_refs = [];
    a_muts = [];
    a_pool = [];
    a_calls = [];
    a_locals = [];
    a_applied = [];
    a_spawns = false;
    a_findings = [];
  }

let line_of (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

(* Longident.flatten raises on functor applications; fold them away. *)
let rec flat acc li =
  match li with
  | Longident.Lident s -> s :: acc
  | Longident.Ldot (l, s) -> flat (s :: acc) l
  | Longident.Lapply (_, l) -> flat acc l

(* Resolve a long identifier to (module, name), where [module] is the
   last qualifier after chasing [module M = Path.To.M'] aliases; bare
   identifiers resolve to ("", name). *)
let resolve ctx li =
  match List.rev (flat [] li) with
  | [] -> ("", "")
  | [ x ] -> ("", x)
  | x :: m :: _ ->
    let m = match SMap.find_opt m ctx.cx_aliases with Some r -> r | None -> m in
    (m, x)

let last_component li =
  match List.rev (flat [] li) with [] -> "" | x :: _ -> x

let is_nolabel = function Asttypes.Nolabel -> true | _ -> false

let nolabel_args args =
  List.filter_map (fun (l, a) -> if is_nolabel l then Some a else None) args

(* -- Patterns ---------------------------------------------------------------- *)

let rec pat_vars p acc =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> txt :: acc
  | Ppat_alias (p, { txt; _ }) -> pat_vars p (txt :: acc)
  | Ppat_tuple ps | Ppat_array ps -> List.fold_left (fun a p -> pat_vars p a) acc ps
  | Ppat_construct (_, Some (_, p)) -> pat_vars p acc
  | Ppat_variant (_, Some p) -> pat_vars p acc
  | Ppat_record (fields, _) -> List.fold_left (fun a (_, p) -> pat_vars p a) acc fields
  | Ppat_or (a, b) -> pat_vars a (pat_vars b acc)
  | Ppat_constraint (p, _) | Ppat_lazy p | Ppat_open (_, p) | Ppat_exception p ->
    pat_vars p acc
  | _ -> acc

let rec simple_var p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> simple_var p
  | _ -> None

(* Does this pattern match every exception?  [_], [_name], or an
   or/alias/constraint wrapper around one. *)
let rec is_catch_all p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_var { txt; _ } -> String.length txt > 0 && txt.[0] = '_'
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> is_catch_all p
  | Ppat_or (a, b) -> is_catch_all a || is_catch_all b
  | _ -> false

(* -- Effect tables ----------------------------------------------------------- *)

(* Known mutators: (module, name) -> index of the mutated operand among
   the positional arguments. *)
let mutator_index m x =
  match (m, x) with
  | ("Hashtbl" | "Tbl"), ("add" | "replace" | "remove" | "reset" | "clear") -> Some 0
  | ("Hashtbl" | "Tbl"), "filter_map_inplace" -> Some 1
  | ("Array" | "Bytes"), ("set" | "unsafe_set" | "fill") -> Some 0
  | ("Array" | "Bytes"), "blit" -> Some 2
  | "Array", ("sort" | "fast_sort") -> Some 1
  | "Queue", ("push" | "add") -> Some 1
  | "Queue", ("pop" | "take" | "take_opt" | "clear" | "transfer") -> Some 0
  | "Stack", "push" -> Some 1
  | "Stack", ("pop" | "pop_opt" | "clear") -> Some 0
  | ( "Buffer",
      ( "add_string" | "add_char" | "add_bytes" | "add_substring" | "clear" | "reset"
      | "truncate" ) ) -> Some 0
  | "Atomic", ("set" | "exchange" | "compare_and_set" | "fetch_and_add" | "incr" | "decr")
    -> Some 0
  (* The server's per-client outboxes: single-writer by contract (the
     event loop owns every outbox); any pool task reaching one is a
     domain-ownership violation. *)
  | "Outbox", ("push" | "ack" | "rewind" | "take_to_send") -> Some 0
  | "", (":=" | "incr" | "decr") -> Some 0
  | _ -> None

(* Allocators of module-level mutable state, for the toplevel-mutable
   rule and for classifying let-bound locals as Owned. *)
let alloc_module m =
  match m with
  | "Hashtbl" | "Tbl" | "Queue" | "Buffer" | "Stack" | "Mutex" | "Condition" | "Atomic"
  | "Array" | "Bytes" | "Weak" | "Registry" | "Span" | "Histogram" | "Dynarray" | "Outbox"
    -> true
  | _ -> false

let allocator m x =
  (String.equal m "" && String.equal x "ref")
  || (String.equal m "Domain" && String.equal x "spawn")
  || alloc_module m
     &&
     match x with
     | "create" | "make" | "init" | "create_float" | "of_list" | "of_seq" | "copy" -> true
     | _ -> false

(* Right-hand sides whose value is freshly allocated by this binding
   (so mutating through the bound name stays binding-local). *)
let owning_call x =
  match x with
  | "ref" | "create" | "make" | "init" | "copy" | "of_list" | "of_seq" | "create_float"
  | "sub" | "map" | "mapi" | "of_array" | "concat" | "append" -> true
  | _ -> false

let rec owning_rhs e =
  match e.pexp_desc with
  | Pexp_record _ | Pexp_tuple _ | Pexp_array _ | Pexp_function _ | Pexp_fun _
  | Pexp_lazy _ | Pexp_constant _ | Pexp_construct _ | Pexp_variant _ -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> owning_rhs e
  | Pexp_sequence (_, e) | Pexp_let (_, _, e) | Pexp_open (_, e) -> owning_rhs e
  | Pexp_ifthenelse (_, t, Some e) -> owning_rhs t && owning_rhs e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
    owning_call (last_component txt)
  | _ -> false

(* First mutable allocation in a toplevel right-hand side, skipping
   function/lazy abstractions (those allocate per call, not at module
   initialisation). *)
let rec mutable_alloc ctx e =
  let first f xs = List.find_map f xs in
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> None
  | Pexp_apply (({ pexp_desc = Pexp_ident { txt; _ }; _ } as f), args) ->
    let m, x = resolve ctx txt in
    if allocator m x then Some (line_of e.pexp_loc)
    else first (mutable_alloc ctx) (f :: List.map snd args)
  | Pexp_apply (f, args) -> first (mutable_alloc ctx) (f :: List.map snd args)
  | Pexp_array (_ :: _) -> Some (line_of e.pexp_loc)
  | Pexp_tuple es -> first (mutable_alloc ctx) es
  | Pexp_record (fields, base) ->
    first (mutable_alloc ctx)
      (List.map snd fields @ match base with Some b -> [ b ] | None -> [])
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) | Pexp_constraint (e, _) ->
    mutable_alloc ctx e
  | Pexp_let (_, vbs, body) ->
    first (mutable_alloc ctx) (List.map (fun vb -> vb.pvb_expr) vbs @ [ body ])
  | Pexp_sequence (a, b) -> first (mutable_alloc ctx) [ a; b ]
  | Pexp_ifthenelse (_, t, eo) ->
    first (mutable_alloc ctx) (t :: (match eo with Some e -> [ e ] | None -> []))
  | _ -> None

(* -- Divergence and lock joins ----------------------------------------------- *)

let rec diverges e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
    match last_component txt with
    | "raise" | "raise_notrace" | "failwith" | "invalid_arg" | "exit" -> true
    | _ -> false)
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } ->
    true
  | Pexp_unreachable -> true
  | Pexp_sequence (_, e)
  | Pexp_let (_, _, e)
  | Pexp_open (_, e)
  | Pexp_constraint (e, _) -> diverges e
  | Pexp_ifthenelse (_, t, Some e) -> diverges t && diverges e
  | _ -> false

let join a b =
  match (a, b) with Held, Held -> Held | Unheld, Unheld -> Unheld | _ -> Mixed

(* -- The walk ----------------------------------------------------------------- *)

type kind =
  | Kowned
  | Klocal

let walk_expr ctx acc env0 lock0 e0 =
  let finding line rule text =
    acc.a_findings <- { Src.file = ctx.cx_path; line; rule; text } :: acc.a_findings
  in
  let add_ref m x line = acc.a_refs <- { r_mod = m; r_name = x; r_line = line } :: acc.a_refs in
  let add_applied x =
    if not (List.exists (String.equal x) acc.a_applied) then
      acc.a_applied <- x :: acc.a_applied
  in
  let bind_pat env p = List.fold_left (fun ev x -> SMap.add x Klocal ev) env (pat_vars p []) in
  let rec head_target env e =
    match e.pexp_desc with
    | Pexp_ident { txt = Longident.Lident x; _ } -> (
      match SMap.find_opt x env with
      | Some Kowned -> Owned
      | Some Klocal -> Var x
      | None -> if SSet.mem x ctx.cx_top then Toplevel (ctx.cx_module, x) else Opaque)
    | Pexp_ident { txt; _ } -> (
      match resolve ctx txt with ("", _) -> Opaque | m, x -> Toplevel (m, x))
    | Pexp_field (e, _) | Pexp_constraint (e, _) -> head_target env e
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      let deref =
        match resolve ctx txt with
        | "", "!" -> true
        | ("Array" | "Bytes" | "String"), "get" -> true
        | ("Hashtbl" | "Tbl"), "find" -> true
        | _ -> false
      in
      if not deref then Opaque
      else
        match nolabel_args args with a :: _ -> head_target env a | [] -> Opaque)
    | _ -> Opaque
  in
  let rec go env lock e =
    let lnum = line_of e.pexp_loc in
    match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
      (let m, x = resolve ctx txt in
       if String.equal m "" then begin
         if not (SMap.mem x env) then
           if SSet.mem x ctx.cx_top then add_ref ctx.cx_module x lnum
           else if String.equal x "compare" then
             finding lnum "poly-compare"
               "bare compare resolves to Stdlib.compare (memory-representation order); \
                use a typed compare"
       end
       else begin
         add_ref m x lnum;
         match (m, x) with
         | ("Stdlib" | "Pervasives"), "compare" ->
           finding lnum "poly-compare"
             "Stdlib.compare orders by memory representation; use a typed compare"
         | "Hashtbl", ("hash" | "seeded_hash") ->
           finding lnum "poly-hash"
             "Hashtbl.hash is polymorphic (and truncating); use a typed hash"
         | "Obj", "magic" -> finding lnum "obj-magic" "Obj.magic defeats the type system"
         | "List", ("mem" | "assoc" | "mem_assoc" | "remove_assoc" | "assoc_opt") ->
           finding lnum "poly-equal"
             ("List." ^ x
            ^ " uses polymorphic =; use List.exists/find_opt with an explicit equality")
         | _ -> ()
       end);
      lock
    | Pexp_constant _ -> lock
    | Pexp_let (rf, vbs, body) ->
      let is_rec = match rf with Asttypes.Recursive -> true | _ -> false in
      let env_rhs =
        if is_rec then List.fold_left (fun ev vb -> bind_pat ev vb.pvb_pat) env vbs
        else env
      in
      let lock = List.fold_left (fun lk vb -> go env_rhs lk vb.pvb_expr) lock vbs in
      List.iter
        (fun vb ->
          match simple_var vb.pvb_pat with
          | Some x -> acc.a_locals <- (x, vb.pvb_expr) :: acc.a_locals
          | None -> ())
        vbs;
      let env' =
        List.fold_left
          (fun ev vb ->
            match simple_var vb.pvb_pat with
            | Some x ->
              SMap.add x (if owning_rhs vb.pvb_expr then Kowned else Klocal) ev
            | None -> bind_pat ev vb.pvb_pat)
          env vbs
      in
      go env' lock body
    | Pexp_fun (_, default, pat, body) ->
      let lock = match default with Some d -> go env lock d | None -> lock in
      ignore (go (bind_pat env pat) Unheld body);
      lock
    | Pexp_function cases ->
      List.iter
        (fun c ->
          let env' = bind_pat env c.pc_lhs in
          (match c.pc_guard with Some g -> ignore (go env' Unheld g) | None -> ());
          ignore (go env' Unheld c.pc_rhs))
        cases;
      lock
    | Pexp_apply (f, args) ->
      (* structural notes first: pool sites, local calls, applied params *)
      (match f.pexp_desc with
      | Pexp_ident { txt; _ } -> (
        let m, x = resolve ctx txt in
        if String.equal m "" && (SMap.mem x env || not (SSet.mem x ctx.cx_top)) then
          add_applied x
        else begin
          if String.equal m "" && SSet.mem x ctx.cx_top then
            acc.a_calls <- { c_callee = x; c_args = args; c_line = lnum } :: acc.a_calls;
          if String.equal m "Pool" && (String.equal x "run" || String.equal x "run_seq")
          then (
            match List.rev (nolabel_args args) with
            | task :: _ ->
              acc.a_pool <- { ps_kind = x; ps_task = task; ps_line = lnum } :: acc.a_pool
            | [] -> ());
          if String.equal m "Domain" && String.equal x "spawn" then begin
            acc.a_spawns <- true;
            match nolabel_args args with
            | task :: _ ->
              acc.a_pool <-
                { ps_kind = "spawn"; ps_task = task; ps_line = lnum } :: acc.a_pool
            | [] -> ()
          end
        end)
      | _ -> ());
      let lock' = List.fold_left (fun lk (_, a) -> go env lk a) (go env lock f) args in
      (match f.pexp_desc with
      | Pexp_ident { txt; _ } -> (
        let m, x = resolve ctx txt in
        let shadowed = String.equal m "" && (SMap.mem x env || SSet.mem x ctx.cx_top) in
        if shadowed then lock'
        else if String.equal m "Mutex" && String.equal x "lock" then Held
        else if String.equal m "Mutex" && String.equal x "unlock" then Unheld
        else begin
          (match mutator_index m x with
          | Some k -> (
            match List.nth_opt (nolabel_args args) k with
            | Some tgt -> (
              match head_target env tgt with
              | Owned -> ()
              | target ->
                acc.a_muts <-
                  { m_line = lnum; m_target = target; m_lock = lock' } :: acc.a_muts)
            | None -> ())
          | None -> ());
          lock'
        end)
      | _ -> lock')
    | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
      List.iter
        (fun c ->
          let bad =
            match (e.pexp_desc, c.pc_lhs.ppat_desc) with
            | Pexp_try _, _ -> is_catch_all c.pc_lhs
            | _, Ppat_exception p -> is_catch_all p
            | _ -> false
          in
          if bad then
            finding
              (line_of c.pc_lhs.ppat_loc)
              "catch-all"
              "handler swallows every exception (Out_of_memory, Stack_overflow, asserts); \
               name the ones you mean")
        cases;
      let ls = go env lock scr in
      let final =
        List.fold_left
          (fun st c ->
            let env' = bind_pat env c.pc_lhs in
            (match c.pc_guard with Some g -> ignore (go env' ls g) | None -> ());
            let lb = go env' ls c.pc_rhs in
            if diverges c.pc_rhs then st
            else match st with None -> Some lb | Some s -> Some (join s lb))
          None cases
      in
      (match final with None -> ls | Some s -> s)
    | Pexp_tuple es | Pexp_array es -> List.fold_left (fun lk x -> go env lk x) lock es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) -> go env lock e
    | Pexp_construct (_, None) | Pexp_variant (_, None) -> lock
    | Pexp_record (fields, base) ->
      let lock = List.fold_left (fun lk (_, x) -> go env lk x) lock fields in
      (match base with Some b -> go env lock b | None -> lock)
    | Pexp_field (e, _) -> go env lock e
    | Pexp_setfield (e1, _, e2) ->
      let lock = go env (go env lock e1) e2 in
      (match head_target env e1 with
      | Owned -> ()
      | target ->
        acc.a_muts <- { m_line = lnum; m_target = target; m_lock = lock } :: acc.a_muts);
      lock
    | Pexp_ifthenelse (c, t, eo) -> (
      let lc = go env lock c in
      let lt = go env lc t in
      match eo with
      | None -> if diverges t then lc else join lc lt
      | Some e ->
        let le = go env lc e in
        if diverges t then le else if diverges e then lt else join lt le)
    | Pexp_sequence (a, b) -> go env (go env lock a) b
    | Pexp_while (c, b) ->
      ignore (go env lock c);
      ignore (go env lock b);
      lock
    | Pexp_for (p, lo, hi, _, b) ->
      let lock = go env (go env lock lo) hi in
      ignore (go (bind_pat env p) lock b);
      lock
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> go env lock e
    | Pexp_lazy e ->
      ignore (go env Unheld e);
      lock
    | Pexp_assert e -> go env lock e
    | Pexp_letmodule (_, _, body) | Pexp_letexception (_, body) -> go env lock body
    | Pexp_open (_, body) | Pexp_newtype (_, body) -> go env lock body
    | Pexp_letop { let_; ands; body } ->
      let ops = let_ :: ands in
      let lock = List.fold_left (fun lk op -> go env lk op.pbop_exp) lock ops in
      let env' = List.fold_left (fun ev op -> bind_pat ev op.pbop_pat) env ops in
      go env' lock body
    | _ -> lock
  in
  go env0 lock0 e0

(* Free references of an expression: toplevel/qualified values it touches
   plus the bare non-toplevel names it applies (candidate forwarded
   parameters of the enclosing binding). *)
let free_refs ctx e =
  let acc = fresh_acc () in
  ignore (walk_expr ctx acc SMap.empty Unheld e);
  (acc.a_refs, acc.a_applied)

(* -- File summaries ----------------------------------------------------------- *)

let module_binding_name mb = match mb.pmb_name.txt with Some s -> s | None -> "_"

let rec top_names str (names, aliases) =
  List.fold_left
    (fun (names, aliases) item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
        ( List.fold_left
            (fun ns vb -> SSet.union ns (SSet.of_list (pat_vars vb.pvb_pat [])))
            names vbs,
          aliases )
      | Pstr_primitive vd -> (SSet.add vd.pval_name.txt names, aliases)
      | Pstr_module mb -> (
        let mname = module_binding_name mb in
        match mb.pmb_expr.pmod_desc with
        | Pmod_ident { txt; _ } -> (names, SMap.add mname (last_component txt) aliases)
        | Pmod_structure inner -> top_names inner (names, aliases)
        | _ -> (names, aliases))
      | Pstr_recmodule mbs ->
        List.fold_left
          (fun st mb ->
            match mb.pmb_expr.pmod_desc with
            | Pmod_structure inner -> top_names inner st
            | _ -> st)
          (names, aliases) mbs
      | _ -> (names, aliases))
    (names, aliases) str

let rec peel_params acc e =
  match e.pexp_desc with
  | Pexp_fun (lab, _, pat, body) ->
    let lname =
      match lab with
      | Asttypes.Nolabel -> None
      | Asttypes.Labelled s | Asttypes.Optional s -> Some s
    in
    peel_params ((lname, simple_var pat) :: acc) body
  | Pexp_newtype (_, body) | Pexp_constraint (body, _) -> peel_params acc body
  | _ -> List.rev acc

let summarise ~path src =
  let lexbuf = Lexing.from_string src in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | exception Syntaxerr.Error err ->
    Error (line_of (Syntaxerr.location_of_error err), "syntax error")
  | exception Lexer.Error (_, loc) -> Error (line_of loc, "lexical error")
  | exception exn -> Error (1, Printexc.to_string exn)
  | str ->
    let modname =
      String.capitalize_ascii (Filename.remove_extension (Filename.basename path))
    in
    let tops, aliases = top_names str (SSet.empty, SMap.empty) in
    let ctx =
      {
        cx_path = path;
        cx_in_lib = Src.in_lib path;
        cx_module = modname;
        cx_top = tops;
        cx_aliases = aliases;
      }
    in
    let findings = ref [] in
    let spawns = ref false in
    let bindings = ref [] in
    let do_expr inner name line e =
      let acc = fresh_acc () in
      ignore (walk_expr ctx acc SMap.empty Unheld e);
      if acc.a_spawns then spawns := true;
      findings := acc.a_findings @ !findings;
      let mut = mutable_alloc ctx e in
      (match mut with
      | Some aline when ctx.cx_in_lib ->
        findings :=
          {
            Src.file = path;
            line = aline;
            rule = "toplevel-mutable";
            text =
              "module-level mutable state is shared across engine instances and domains; \
               own it in Shard.t / a coordinator record";
          }
          :: !findings
      | _ -> ());
      bindings :=
        {
          b_module = modname;
          b_inner = inner;
          b_name = name;
          b_line = line;
          b_params = peel_params [] e;
          b_mutable_value = Option.is_some mut;
          b_refs = acc.a_refs;
          b_muts = acc.a_muts;
          b_pool = acc.a_pool;
          b_calls = acc.a_calls;
          b_locals = acc.a_locals;
          b_shared = false;
        }
        :: !bindings
    in
    let rec do_structure inner str =
      List.iter
        (fun item ->
          match item.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let line = line_of vb.pvb_loc in
                let name =
                  match simple_var vb.pvb_pat with
                  | Some x -> x
                  | None -> Printf.sprintf "(init:%d)" line
                in
                do_expr inner name line vb.pvb_expr)
              vbs
          | Pstr_eval (e, _) ->
            do_expr inner (Printf.sprintf "(eval:%d)" (line_of e.pexp_loc))
              (line_of e.pexp_loc) e
          | Pstr_module mb -> (
            match mb.pmb_expr.pmod_desc with
            | Pmod_structure s -> do_structure (Some (module_binding_name mb)) s
            | _ -> ())
          | Pstr_recmodule mbs ->
            List.iter
              (fun mb ->
                match mb.pmb_expr.pmod_desc with
                | Pmod_structure s -> do_structure (Some (module_binding_name mb)) s
                | _ -> ())
              mbs
          | _ -> ())
        str
    in
    do_structure None str;
    Ok
      {
        f_path = path;
        f_module = modname;
        f_in_lib = ctx.cx_in_lib;
        f_spawns = !spawns;
        f_bindings = List.rev !bindings;
        f_findings = List.rev !findings;
        f_ctx = ctx;
      }
