(* Shared plumbing for the AST checker: findings, file IO, tree walking,
   a strings-only blanker and waiver-marker extraction.

   The blanker is the dual of the lexical linter's stripper: it erases
   string literals (normal and quoted) but KEEPS comments, because the
   checker's waiver markers live in comments while the marker text itself
   must never be discoverable inside a string constant (the checker scans
   its own source, whose rule tables are string literals). *)

type finding = {
  file : string;
  line : int;
  rule : string;
  text : string;
}

type scope =
  | Line
  | File

type waiver = {
  w_file : string;
  w_line : int;
  w_rule : string;
  w_scope : scope;
  mutable w_used : bool;
}

let pp_finding v = Printf.sprintf "%s:%d: [%s] %s" v.file v.line v.rule v.text

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.text b.text

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let rec walk dir acc =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then
          if String.equal entry "_build" || (String.length entry > 0 && entry.[0] = '.')
          then acc
          else walk path acc
        else if Filename.check_suffix entry ".ml" then path :: acc
        else acc)
      acc (Sys.readdir dir)
  else acc

let ml_files dirs =
  List.sort String.compare (List.concat_map (fun d -> walk d []) dirs)

let in_lib path =
  String.length path >= 4 && String.equal (String.sub path 0 4) "lib/"

(* -- Strings-only blanking --------------------------------------------------- *)

let is_delim_char c = (c >= 'a' && c <= 'z') || c = '_'

let blank_strings src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  (* consume a normal string literal whose opening quote is at [i0];
     erase it (quotes included) when [erase]; return the index just past
     the closing quote. *)
  let eat_string erase i0 =
    if erase then blank i0;
    let i = ref (i0 + 1) in
    let stop = ref false in
    while (not !stop) && !i < n do
      (match src.[!i] with
      | '\\' when !i + 1 < n ->
        if erase then begin
          blank !i;
          blank (!i + 1)
        end;
        i := !i + 2
      | '"' ->
        if erase then blank !i;
        stop := true;
        incr i
      | _ ->
        if erase then blank !i;
        incr i)
    done;
    !i
  in
  (* Does a quoted-string opener (brace, delimiter ident, pipe) start
     at [i]? *)
  let quoted_opener i =
    src.[i] = '{'
    && begin
         let j = ref (i + 1) in
         while !j < n && is_delim_char src.[!j] do
           incr j
         done;
         !j < n && src.[!j] = '|'
       end
  in
  let eat_quoted erase i0 =
    let j = ref (i0 + 1) in
    while !j < n && is_delim_char src.[!j] do
      incr j
    done;
    let id = String.sub src (i0 + 1) (!j - i0 - 1) in
    let close = "|" ^ id ^ "}" in
    let cl = String.length close in
    if erase then
      for k = i0 to !j do
        blank k
      done;
    let i = ref (!j + 1) in
    let stop = ref false in
    while (not !stop) && !i < n do
      if !i + cl <= n && String.equal (String.sub src !i cl) close then begin
        if erase then
          for k = !i to !i + cl - 1 do
            blank k
          done;
        i := !i + cl;
        stop := true
      end
      else begin
        if erase then blank !i;
        incr i
      end
    done;
    !i
  in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      incr depth;
      i := !i + 2
    end
    else if !depth > 0 then begin
      (* Inside a comment: keep the text, but skip over string literals so
         a stray close-comment inside them cannot terminate the comment. *)
      if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        decr depth;
        i := !i + 2
      end
      else if c = '\'' && !i + 2 < n && src.[!i + 1] = '"' && src.[!i + 2] = '\'' then
        (* the lexer accepts the char literal '"' inside comments too *)
        i := !i + 3
      else if c = '"' then i := eat_string false !i
      else if quoted_opener !i then i := eat_quoted false !i
      else incr i
    end
    else if c = '"' then i := eat_string true !i
    else if quoted_opener !i then i := eat_quoted true !i
    else if c = '\'' && !i + 2 < n && src.[!i + 1] = '"' && src.[!i + 2] = '\'' then
      (* the char literal '"' must not open a string *)
      i := !i + 3
    else incr i
  done;
  Bytes.to_string out

(* -- Waiver markers ---------------------------------------------------------- *)

(* A waiver is a comment marker naming the rule it excuses:
   line scope  -> marker, a space, then the rule name on the waived line;
   file scope  -> the marker with a "-file" suffix, then the rule name.
   The marker spelling is kept out of every comment in this library so the
   checker's own sources never parse as waived. *)
let marker = "check: allow"

let find_sub hay needle from =
  let hl = String.length hay and nl = String.length needle in
  let rec go i =
    if i + nl > hl then None
    else if String.equal (String.sub hay i nl) needle then Some i
    else go (i + 1)
  in
  go from

let is_rule_char c = (c >= 'a' && c <= 'z') || c = '-'

let waivers_of_source ~file src =
  let residue = blank_strings src in
  let lines = String.split_on_char '\n' residue in
  List.concat
    (List.mapi
       (fun idx line ->
         match find_sub line marker 0 with
         | None -> []
         | Some j ->
           let after = j + String.length marker in
           let scope, after =
             match find_sub line "-file" after with
             | Some k when k = after -> (File, after + 5)
             | _ -> (Line, after)
           in
           let k = ref after in
           let n = String.length line in
           while !k < n && line.[!k] = ' ' do
             incr k
           done;
           let r0 = !k in
           while !k < n && is_rule_char line.[!k] do
             incr k
           done;
           let rule = String.sub line r0 (!k - r0) in
           [ { w_file = file; w_line = idx + 1; w_rule = rule; w_scope = scope; w_used = false } ])
       lines)
