(** The corpus-level checker: mutation-effect classification, domain-
    ownership and shard-escape rules, AST re-implementations of the
    lexical rules, typed waiver filtering, and the fixture self-test. *)

(** Rule name -> one-line description, in reporting order. *)
val rules : (string * string) list

type outcome = {
  findings : Src.finding list;  (** sorted, post-waiver *)
  waivers : Src.waiver list;  (** every marker seen, with its used flag *)
}

(** Analyse an explicit corpus of [(path, contents)] sources.  Paths
    matter: the toplevel-mutable rule is lib/-scoped and module names
    derive from basenames. *)
val analyze_sources : (string * string) list -> outcome

(** Read and analyse every [.ml] under the given directories. *)
val run_tree : string list -> outcome

(** Run the seeded-violation fixture corpus under [dir]; true iff every
    bad fixture trips exactly its rule, every good fixture is clean and
    every rule is covered. *)
val self_test : string -> bool
