(** Per-file Parsetree summaries: per top-level binding, the references,
    mutations (with target class and lock state), Pool/Domain task sites,
    parameters and local lets that {!Check} turns into findings.  The walk
    also emits the AST re-implementations of the lexical rules. *)

type vref = { r_mod : string; r_name : string; r_line : int }

type target =
  | Owned  (** freshly allocated in this binding *)
  | Var of string  (** a parameter or non-owning local *)
  | Toplevel of string * string  (** a module-level value *)
  | Opaque

type lock =
  | Held
  | Unheld
  | Mixed

type mutation = { m_line : int; m_target : target; m_lock : lock }
type pool_site = { ps_kind : string; ps_task : Parsetree.expression; ps_line : int }

type call_site = {
  c_callee : string;
  c_args : (Asttypes.arg_label * Parsetree.expression) list;
  c_line : int;
}

type binding = {
  b_module : string;
  b_inner : string option;
  b_name : string;
  b_line : int;
  b_params : (string option * string option) list;
  b_mutable_value : bool;
  b_refs : vref list;
  b_muts : mutation list;
  b_pool : pool_site list;
  b_calls : call_site list;
  b_locals : (string * Parsetree.expression) list;
  mutable b_shared : bool;
}

(** Per-file resolution context (module name, toplevel names, aliases). *)
type ctx

type file = {
  f_path : string;
  f_module : string;
  f_in_lib : bool;
  f_spawns : bool;
  f_bindings : binding list;
  f_findings : Src.finding list;
  f_ctx : ctx;
}

val is_nolabel : Asttypes.arg_label -> bool

(** Free references of an expression under a file's context: the
    toplevel/qualified values it touches, plus the bare non-toplevel
    names it applies (candidate forwarded parameters). *)
val free_refs : ctx -> Parsetree.expression -> vref list * string list

(** Parse and summarise one implementation file.  [Error (line, what)]
    on a parse failure. *)
val summarise : path:string -> string -> (file, int * string) result
