(** Shared plumbing for the AST checker: findings, file IO and waiver
    markers.  The blanker erases string literals but keeps comments, so
    waiver markers (which live in comments) survive while marker text
    inside string constants is never mistaken for a waiver. *)

type finding = {
  file : string;
  line : int;
  rule : string;
  text : string;
}

type scope =
  | Line  (** excuses findings of the rule on the marker's own line *)
  | File  (** excuses findings of the rule anywhere in the file *)

type waiver = {
  w_file : string;
  w_line : int;
  w_rule : string;
  w_scope : scope;
  mutable w_used : bool;  (** set once the waiver absorbs a finding *)
}

val pp_finding : finding -> string

val compare_finding : finding -> finding -> int

val read_file : string -> string

(** All [.ml] files under the given directories, sorted; skips [_build]
    and dot-directories. *)
val ml_files : string list -> string list

val in_lib : string -> bool

(** Erase string literals (normal and [{id|...|id}] quoted), preserving
    newlines and comment text. *)
val blank_strings : string -> string

(** The comment marker that introduces a waiver. *)
val marker : string

(** [find_sub hay needle from]: first occurrence of [needle] in [hay] at
    or after [from]. *)
val find_sub : string -> string -> int -> int option

(** All waiver markers in a source file, by line. *)
val waivers_of_source : file:string -> string -> waiver list
