(* The corpus-level checker: classify every top-level binding
   (pure / local-mutating / shared-mutating) over the per-file summaries,
   then enforce the domain-safety rules, the shard-ownership rule and the
   AST re-implementations of the lexical rules, filtered through typed
   waiver markers. *)

open Parsetree

let rules =
  [
    ("parse-error", "the file does not parse; the checker cannot certify it (unwaivable)");
    ( "domain-ownership",
      "Pool/Domain task closures must not capture or transitively call shared-mutating \
       bindings, and domain-spawning modules must hold the pool lock when mutating \
       non-owned state" );
    ( "shard-escape",
      "Shard.t / Trie.t / Relation.t / Rows.t stay inside the shard-owned modules and \
       the coordinator; everything else goes through the Shard API (row ids are only \
       meaningful inside the owning shard's arenas — batches cross as packed copies)" );
    ("poly-compare", "Stdlib/bare compare orders by memory representation");
    ("poly-hash", "Hashtbl.hash truncates and diverges from any custom equal");
    ("poly-equal", "the List.mem/assoc family uses polymorphic =");
    ("obj-magic", "Obj.magic defeats the type system");
    ("catch-all", "a catch-all exception handler swallows every exception");
    ("toplevel-mutable", "module-level mutable state is shared by every domain (lib/ only)");
    ("stale-waiver", "a waiver that excuses nothing must be deleted (unwaivable)");
  ]

let rule_known rule = List.exists (fun (r, _) -> String.equal r rule) rules

let waivable rule =
  not (String.equal rule "parse-error" || String.equal rule "stale-waiver")

type outcome = {
  findings : Src.finding list;
  waivers : Src.waiver list;
}

(* Modules allowed to touch each shard-owned type directly.  [Tric] is the
   coordinator, [Shard] the slice owner; [Trie]/[Relation] sit below it and
   [Rows] is the arena floor — its row ids index a specific shard's flat
   store, so nothing outside the stack may hold one ([Embedding]/[Embjoin]
   consume only by-value packed batches, but the reference check cannot
   split a module, so they are allowed and kept honest by review of their
   Rows surface).  Anything else must carry a file waiver naming the rule
   (the audit subsystem recomputes state from scratch and legitimately
   reads the stack). *)
let owned_allow tname =
  match tname with
  | "Shard" -> [ "Shard"; "Tric" ]
  | "Trie" -> [ "Trie"; "Shard"; "Tric" ]
  | "Relation" -> [ "Relation"; "Trie"; "Shard"; "Tric" ]
  | "Rows" -> [ "Rows"; "Relation"; "Embedding"; "Embjoin"; "Trie"; "Shard"; "Tric" ]
  | _ -> []

type slot =
  | Pos of int  (* index among unlabelled parameters *)
  | Lab of string

let slot_equal a b =
  match (a, b) with
  | Pos i, Pos j -> i = j
  | Lab x, Lab y -> String.equal x y
  | _ -> false

(* Which parameter slot does [name] occupy in [params]? *)
let slot_of_param params name =
  let rec go k ps =
    match ps with
    | [] -> None
    | (lab, var) :: rest -> (
      let matches = match var with Some v -> String.equal v name | None -> false in
      match lab with
      | None -> if matches then Some (Pos k) else go (k + 1) rest
      | Some l -> if matches then Some (Lab l) else go k rest)
  in
  go 0 params

let arg_for_slot args slot =
  match slot with
  | Lab l ->
    List.find_map
      (fun (al, e) ->
        match al with
        | (Asttypes.Labelled s | Asttypes.Optional s) when String.equal s l -> Some e
        | _ -> None)
      args
  | Pos k ->
    List.nth_opt
      (List.filter_map (fun (al, e) -> if Summary.is_nolabel al then Some e else None) args)
      k

(* Chase a task identifier through the binding's local lets, so
   [let tasks = Array.map ... in Pool.run pool tasks] analyses the
   closure array, not the bare name. *)
let subst locals e =
  let rec go depth e =
    if depth = 0 then e
    else
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident x; _ } -> (
        match List.find_opt (fun (n, _) -> String.equal n x) locals with
        | Some (_, e') -> go (depth - 1) e'
        | None -> e)
      | _ -> e
  in
  go 3 e

let analyze_sources sources =
  let out = ref [] in
  let finding file line rule text = out := { Src.file; line; rule; text } :: !out in
  let files =
    List.filter_map
      (fun (path, src) ->
        match Summary.summarise ~path src with
        | Ok f -> Some f
        | Error (line, what) ->
          finding path line "parse-error" ("file does not parse (" ^ what ^ ")");
          None)
      sources
  in
  List.iter (fun f -> List.iter (fun v -> out := v :: !out) f.Summary.f_findings) files;
  (* -- definition/call graph index ---------------------------------------- *)
  let idx : (string, Summary.binding list ref) Hashtbl.t = Hashtbl.create 256 in
  let add_key m name b =
    let key = m ^ "." ^ name in
    match Hashtbl.find_opt idx key with
    | Some l -> l := b :: !l
    | None -> Hashtbl.add idx key (ref [ b ])
  in
  List.iter
    (fun f ->
      List.iter
        (fun (b : Summary.binding) ->
          add_key b.b_module b.b_name b;
          match b.b_inner with
          | Some m2 when not (String.equal m2 b.b_module) -> add_key m2 b.b_name b
          | _ -> ())
        f.Summary.f_bindings)
    files;
  let lookup m name =
    match Hashtbl.find_opt idx (m ^ "." ^ name) with Some l -> !l | None -> []
  in
  (* -- mutation-effect fixpoint: shared = mutates a toplevel value, or
        references a shared binding ------------------------------------------ *)
  List.iter
    (fun f ->
      List.iter
        (fun (b : Summary.binding) ->
          if
            List.exists
              (fun mu ->
                match mu.Summary.m_target with Summary.Toplevel _ -> true | _ -> false)
              b.b_muts
          then b.b_shared <- true)
        f.Summary.f_bindings)
    files;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        List.iter
          (fun (b : Summary.binding) ->
            if
              (not b.b_shared)
              && List.exists
                   (fun r ->
                     List.exists
                       (fun (b' : Summary.binding) -> b'.b_shared)
                       (lookup r.Summary.r_mod r.r_name))
                   b.b_refs
            then begin
              b.b_shared <- true;
              changed := true
            end)
          f.Summary.f_bindings)
      files
  done;
  (* -- domain-ownership: task closures -------------------------------------- *)
  let task_refs (f : Summary.file) (b : Summary.binding) task =
    Summary.free_refs f.f_ctx (subst b.b_locals task)
  in
  let check_task (f : Summary.file) (b : Summary.binding) line task =
    let refs, _ = task_refs f b task in
    List.iter
      (fun (r : Summary.vref) ->
        let key = r.r_mod ^ "." ^ r.r_name in
        let bs = lookup r.r_mod r.r_name in
        if List.exists (fun (b' : Summary.binding) -> b'.b_mutable_value) bs then
          finding f.f_path line "domain-ownership"
            (Printf.sprintf
               "task closure captures module-level mutable value %s; worker domains may \
                not touch module state"
               key)
        else if List.exists (fun (b' : Summary.binding) -> b'.b_shared) bs then
          finding f.f_path line "domain-ownership"
            (Printf.sprintf
               "task closure reaches shared-mutating %s; tasks may only mutate state \
                they own"
               key))
      refs
  in
  (* dispatchers: bindings that forward a parameter into a task list.
     Fixpoint first (no findings), then one reporting pass. *)
  let dispatchers : (string, slot list ref) Hashtbl.t = Hashtbl.create 16 in
  let register (b : Summary.binding) applied =
    let slots = List.filter_map (slot_of_param b.b_params) applied in
    List.fold_left
      (fun chg slot ->
        let keys =
          (b.b_module ^ "." ^ b.b_name)
          ::
          (match b.b_inner with
          | Some m2 when not (String.equal m2 b.b_module) -> [ m2 ^ "." ^ b.b_name ]
          | _ -> [])
        in
        List.fold_left
          (fun chg key ->
            match Hashtbl.find_opt dispatchers key with
            | Some l ->
              if List.exists (slot_equal slot) !l then chg
              else begin
                l := slot :: !l;
                true
              end
            | None ->
              Hashtbl.add dispatchers key (ref [ slot ]);
              true)
          chg keys)
      false slots
  in
  let dispatcher_slots (f : Summary.file) (b : Summary.binding) callee =
    let keys =
      (f.f_module ^ "." ^ callee)
      ::
      (match b.b_inner with
      | Some m2 when not (String.equal m2 f.f_module) -> [ m2 ^ "." ^ callee ]
      | _ -> [])
    in
    List.fold_left
      (fun acc key ->
        match Hashtbl.find_opt dispatchers key with
        | Some l ->
          List.fold_left
            (fun acc s -> if List.exists (slot_equal s) acc then acc else s :: acc)
            acc !l
        | None -> acc)
      [] keys
  in
  List.iter
    (fun (f : Summary.file) ->
      List.iter
        (fun (b : Summary.binding) ->
          List.iter
            (fun (ps : Summary.pool_site) ->
              ignore (register b (snd (task_refs f b ps.ps_task))))
            b.b_pool)
        f.f_bindings)
    files;
  let rounds = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < 4 do
    continue_ := false;
    incr rounds;
    List.iter
      (fun (f : Summary.file) ->
        List.iter
          (fun (b : Summary.binding) ->
            List.iter
              (fun (c : Summary.call_site) ->
                List.iter
                  (fun slot ->
                    match arg_for_slot c.c_args slot with
                    | Some task ->
                      if register b (snd (task_refs f b task)) then continue_ := true
                    | None -> ())
                  (dispatcher_slots f b c.c_callee))
              b.b_calls)
          f.f_bindings)
      files
  done;
  (* reporting pass: direct pool sites + forwarded dispatcher arguments *)
  List.iter
    (fun (f : Summary.file) ->
      List.iter
        (fun (b : Summary.binding) ->
          List.iter
            (fun (ps : Summary.pool_site) -> check_task f b ps.ps_line ps.ps_task)
            b.b_pool;
          List.iter
            (fun (c : Summary.call_site) ->
              List.iter
                (fun slot ->
                  match arg_for_slot c.c_args slot with
                  | Some task -> check_task f b c.c_line task
                  | None -> ())
                (dispatcher_slots f b c.c_callee))
            b.b_calls)
        f.f_bindings)
    files;
  (* -- domain-ownership: lock discipline in domain-spawning modules --------- *)
  List.iter
    (fun (f : Summary.file) ->
      if f.f_spawns then
        List.iter
          (fun (b : Summary.binding) ->
            List.iter
              (fun (mu : Summary.mutation) ->
                match mu.m_lock with
                | Summary.Held -> ()
                | _ ->
                  let what =
                    match mu.m_target with
                    | Summary.Toplevel (m, x) -> "module-level " ^ m ^ "." ^ x
                    | Summary.Var x -> "caller-supplied " ^ x
                    | _ -> "non-owned state"
                  in
                  finding f.f_path mu.m_line "domain-ownership"
                    (Printf.sprintf
                       "mutation of %s without the pool lock held, in a module that \
                        spawns domains"
                       what))
              b.b_muts)
          f.f_bindings)
    files;
  (* -- shard-escape ---------------------------------------------------------- *)
  List.iter
    (fun (f : Summary.file) ->
      List.iter
        (fun (b : Summary.binding) ->
          List.iter
            (fun (r : Summary.vref) ->
              match owned_allow r.r_mod with
              | [] -> ()
              | allow ->
                if not (List.exists (String.equal f.f_module) allow) then
                  finding f.f_path r.r_line "shard-escape"
                    (Printf.sprintf
                       "shard-owned %s.%s used from %s; engine state crosses the \
                        coordinator boundary only through the Shard API"
                       r.r_mod r.r_name f.f_module))
            b.b_refs)
        f.f_bindings)
    files;
  (* -- waivers ---------------------------------------------------------------- *)
  let waivers =
    List.concat_map (fun (path, src) -> Src.waivers_of_source ~file:path src) sources
  in
  List.iter
    (fun (w : Src.waiver) ->
      if not (rule_known w.w_rule) then
        finding w.w_file w.w_line "stale-waiver"
          (Printf.sprintf "waiver names unknown rule %S" w.w_rule)
      else if not (waivable w.w_rule) then
        finding w.w_file w.w_line "stale-waiver"
          (Printf.sprintf "rule %s cannot be waived" w.w_rule))
    waivers;
  let all = List.sort_uniq Src.compare_finding !out in
  let kept =
    List.filter
      (fun (v : Src.finding) ->
        (not (waivable v.rule))
        || not
             (List.exists
                (fun (w : Src.waiver) ->
                  String.equal w.w_file v.file
                  && String.equal w.w_rule v.rule
                  && rule_known w.w_rule
                  && (match w.w_scope with
                     | Src.File -> true
                     | Src.Line -> w.w_line = v.line)
                  &&
                  (w.w_used <- true;
                   true))
                waivers))
      all
  in
  let stale =
    List.filter_map
      (fun (w : Src.waiver) ->
        if rule_known w.w_rule && waivable w.w_rule && not w.w_used then
          Some
            {
              Src.file = w.w_file;
              line = w.w_line;
              rule = "stale-waiver";
              text =
                Printf.sprintf
                  "waiver for %s excuses nothing %s; delete it"
                  w.w_rule
                  (match w.w_scope with
                  | Src.Line -> "on this line"
                  | Src.File -> "in this file");
            }
        else None)
      waivers
  in
  { findings = List.sort Src.compare_finding (kept @ stale); waivers }

let run_tree dirs =
  analyze_sources (List.map (fun p -> (p, Src.read_file p)) (Src.ml_files dirs))

(* -- Self-test ---------------------------------------------------------------- *)

(* Fixture corpus: every [bad_<rule>*.ml] must produce at least one
   finding, all of them of exactly that rule; every [good_*.ml] must be
   clean; and every rule must be covered by at least one bad fixture.
   Fixtures whose name mentions toplevel_mutable are analysed under a
   synthetic lib/ path (that rule is lib-scoped); the rest under bin/. *)
let self_test dir =
  let files = Src.ml_files [ dir ] in
  let ok = ref true in
  let fail fmt = Printf.ksprintf (fun s -> Printf.eprintf "tric_check self-test FAILED: %s\n" s; ok := false) fmt in
  (match files with [] -> fail "no fixtures found under %s" dir | _ -> ());
  let covered = ref [] in
  let expected_rule stem =
    let dashed = String.map (fun c -> if c = '_' then '-' else c) stem in
    List.fold_left
      (fun best (r, _) ->
        let rl = String.length r in
        if String.length dashed >= rl && String.equal (String.sub dashed 0 rl) r then
          match best with
          | Some b when String.length b >= rl -> best
          | _ -> Some r
        else best)
      None rules
  in
  List.iter
    (fun path ->
      let base = Filename.remove_extension (Filename.basename path) in
      let synth =
        if Option.is_some (Src.find_sub base "toplevel_mutable" 0) then
          "lib/fixture/" ^ base ^ ".ml"
        else "bin/fixture/" ^ base ^ ".ml"
      in
      let o = analyze_sources [ (synth, Src.read_file path) ] in
      if String.starts_with ~prefix:"bad_" base then begin
        match expected_rule (String.sub base 4 (String.length base - 4)) with
        | None -> fail "%s: cannot derive an expected rule from the name" base
        | Some rule -> (
          covered := rule :: !covered;
          match o.findings with
          | [] -> fail "%s did not trigger %s" base rule
          | fs ->
            List.iter
              (fun (v : Src.finding) ->
                if not (String.equal v.rule rule) then
                  fail "%s tripped %s (line %d), expected only %s" base v.rule v.line
                    rule)
              fs)
      end
      else if String.starts_with ~prefix:"good_" base then
        List.iter
          (fun (v : Src.finding) -> fail "%s flagged: %s" base (Src.pp_finding v))
          o.findings
      else fail "%s: fixture names must start with bad_ or good_" base)
    files;
  List.iter
    (fun (r, _) ->
      if not (List.exists (String.equal r) !covered) then
        fail "rule %s has no bad fixture" r)
    rules;
  !ok
