exception Plan_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Plan_error s)) fmt

type var_info = {
  mutable label : string option;
  mutable props : (string * Value.t) list;
}

type hop = {
  h_src : string;
  h_rtype : string;
  h_dst : string; (* normalised to Out direction: src -[:rtype]-> dst *)
  h_range : (int * int) option; (* variable-length hop range *)
}

(* Collect variables (assigning fresh names to anonymous nodes) and
   normalised hops from the MATCH chains. *)
let collect (q : Cypher.query) =
  let vars : (string, var_info) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let anon = ref 0 in
  let note (n : Cypher.node_pat) =
    let name =
      match n.nvar with
      | Some v -> v
      | None ->
        incr anon;
        Printf.sprintf "$anon%d" !anon
    in
    let info =
      match Hashtbl.find_opt vars name with
      | Some i -> i
      | None ->
        let i = { label = None; props = [] } in
        Hashtbl.add vars name i;
        order := name :: !order;
        i
    in
    (match n.nlabel with
    | Some l -> (
      match info.label with
      | None -> info.label <- Some l
      | Some l' when String.equal l l' -> ()
      | Some l' -> fail "conflicting labels %s and %s for %s" l' l name)
    | None -> ());
    List.iter
      (fun (k, v) ->
        if not (List.exists (fun (k', _) -> String.equal k' k) info.props) then
          info.props <- (k, v) :: info.props)
      n.nprops;
    name
  in
  let hops = ref [] in
  List.iter
    (fun ((first, rest) : Cypher.chain) ->
      let prev = ref (note first) in
      List.iter
        (fun ((r : Cypher.rel_pat), n) ->
          let name = note n in
          (match r.direction with
          | Cypher.Out ->
            hops :=
              { h_src = !prev; h_rtype = r.rtype_p; h_dst = name; h_range = r.hops }
              :: !hops
          | Cypher.In ->
            hops :=
              { h_src = name; h_rtype = r.rtype_p; h_dst = !prev; h_range = r.hops }
              :: !hops);
          prev := name)
        rest)
    q.chains;
  (vars, List.rev !order, List.rev !hops)

let constraints_of (info : var_info) : Plan.constraints =
  { clabel = info.label; cprops = info.props }

(* Estimated rows a seed on this variable produces. *)
let seed_cost store (info : var_info) =
  match (info.label, info.props) with
  | Some l, (key, _) :: _ when Store.has_index store ~label:l ~property:key -> 1
  | Some l, _ :: _ -> max 1 (Store.count_nodes_with_label store l / 4)
  | Some l, [] -> max 1 (Store.count_nodes_with_label store l)
  | None, _ :: _ -> max 1 (Store.num_nodes store / 4)
  | None, [] -> max 2 (Store.num_nodes store)

let seed_step store name slot (info : var_info) : Plan.step =
  match (info.label, info.props) with
  | Some l, (key, v) :: rest when Store.has_index store ~label:l ~property:key ->
    Seed_index { slot; label = l; key; value = v; extra = { clabel = None; cprops = rest } }
  | Some l, props -> Seed_label { slot; label = l; extra = { clabel = None; cprops = props } }
  | None, props ->
    ignore name;
    Seed_all { slot; extra = { clabel = None; cprops = props } }

let plan store (q : Cypher.query) =
  let vars, order, hops = collect q in
  if order = [] then fail "empty MATCH pattern";
  let slots = Array.of_list order in
  let slot_of name =
    let rec go i =
      if i >= Array.length slots then fail "unknown variable %s" name
      else if String.equal slots.(i) name then i
      else go (i + 1)
    in
    go 0
  in
  let bound : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let steps = ref [] in
  let remaining = ref hops in
  let emit s = steps := s :: !steps in
  (* Pick the cheapest seed among unbound variables mentioned by remaining
     hops (or all variables if there are no hops), also considering
     relationship-type scans. *)
  let seed_component () =
    let candidates =
      List.filter (fun v -> not (Hashtbl.mem bound v)) order
    in
    match candidates with
    | [] -> fail "internal: no candidate seed"
    | _ ->
      let best_var =
        List.fold_left
          (fun best v ->
            let c = seed_cost store (Hashtbl.find vars v) in
            match best with
            | Some (_, bc) when bc <= c -> best
            | _ -> Some (v, c))
          None candidates
      in
      let v, vcost = Option.get best_var in
      (* A relationship scan can beat a node seed when both endpoints are
         unconstrained. *)
      let rel_candidate =
        List.fold_left
          (fun best h ->
            if Hashtbl.mem bound h.h_src || Hashtbl.mem bound h.h_dst || h.h_range <> None
            then best
            else
              let c = max 1 (Store.count_rels_of_type store h.h_rtype) in
              match best with Some (_, bc) when bc <= c -> best | _ -> Some (h, c))
          None !remaining
      in
      (match rel_candidate with
      | Some (h, rc) when rc < vcost ->
        let src_info = Hashtbl.find vars h.h_src and dst_info = Hashtbl.find vars h.h_dst in
        emit
          (Plan.Seed_rel
             {
               rtype = h.h_rtype;
               src_slot = slot_of h.h_src;
               dst_slot = slot_of h.h_dst;
               src_c = constraints_of src_info;
               dst_c = constraints_of dst_info;
             });
        Hashtbl.replace bound h.h_src ();
        Hashtbl.replace bound h.h_dst ();
        remaining := List.filter (fun h' -> h' <> h) !remaining
      | _ ->
        emit (seed_step store v (slot_of v) (Hashtbl.find vars v));
        Hashtbl.replace bound v ())
  in
  let expandable () =
    List.filter (fun h -> Hashtbl.mem bound h.h_src || Hashtbl.mem bound h.h_dst) !remaining
  in
  let hop_score h =
    (* Prefer hops into already-bound or constrained targets. *)
    let target, _src_bound =
      if Hashtbl.mem bound h.h_src then (h.h_dst, true) else (h.h_src, false)
    in
    if Hashtbl.mem bound target then 0
    else
      let info = Hashtbl.find vars target in
      match (info.label, info.props) with
      | _, _ :: _ -> 1
      | Some _, [] -> 2
      | None, [] -> 3
  in
  seed_component ();
  let rec consume () =
    if !remaining <> [] then begin
      match expandable () with
      | [] ->
        (* Disconnected component: new seed. *)
        seed_component ();
        consume ()
      | frontier ->
        let h =
          List.fold_left
            (fun best cand ->
              match best with
              | Some b when hop_score b <= hop_score cand -> best
              | _ -> Some cand)
            None frontier
          |> Option.get
        in
        let from_v, to_v, direction =
          if Hashtbl.mem bound h.h_src then (h.h_src, h.h_dst, Cypher.Out)
          else (h.h_dst, h.h_src, Cypher.In)
        in
        let to_info = Hashtbl.find vars to_v in
        (match h.h_range with
        | None ->
          emit
            (Plan.Expand
               {
                 from_slot = slot_of from_v;
                 rtype = h.h_rtype;
                 direction;
                 to_slot = slot_of to_v;
                 to_c = constraints_of to_info;
               })
        | Some (min_hops, max_hops) ->
          emit
            (Plan.Expand_var
               {
                 from_slot = slot_of from_v;
                 rtype = h.h_rtype;
                 direction;
                 to_slot = slot_of to_v;
                 to_c = constraints_of to_info;
                 min_hops;
                 max_hops;
               }));
        Hashtbl.replace bound to_v ();
        remaining := List.filter (fun h' -> h' <> h) !remaining;
        consume ()
    end
  in
  consume ();
  (* Any variable never bound (isolated node pattern) still needs a seed. *)
  List.iter
    (fun v ->
      if not (Hashtbl.mem bound v) then begin
        emit (seed_step store v (slot_of v) (Hashtbl.find vars v));
        Hashtbl.replace bound v ()
      end)
    order;
  let compile_operand_pair mk_ll mk_lp a b =
    match (a, b) with
    | Cypher.Prop (v, k), Cypher.Lit value -> mk_ll (slot_of v) k value
    | Cypher.Lit value, Cypher.Prop (v, k) -> mk_ll (slot_of v) k value
    | Cypher.Prop (v1, k1), Cypher.Prop (v2, k2) -> mk_lp (slot_of v1) k1 (slot_of v2) k2
    | Cypher.Lit _, Cypher.Lit _ -> fail "condition between two literals"
  in
  let conditions =
    List.map
      (function
        | Cypher.Eq (a, b) ->
          compile_operand_pair
            (fun s k v -> Plan.Cc_eq_prop_lit (s, k, v))
            (fun s1 k1 s2 k2 -> Plan.Cc_eq_prop_prop (s1, k1, s2, k2))
            a b
        | Cypher.Neq (a, b) ->
          compile_operand_pair
            (fun s k v -> Plan.Cc_neq_prop_lit (s, k, v))
            (fun s1 k1 s2 k2 -> Plan.Cc_neq_prop_prop (s1, k1, s2, k2))
            a b)
      q.conditions
  in
  let returns =
    List.map
      (function
        | Cypher.Ret_var v -> Plan.R_node (slot_of v)
        | Cypher.Ret_prop (v, k) -> Plan.R_prop (slot_of v, k))
      q.returns
  in
  { Plan.slots; steps = List.rev !steps; conditions; returns }
