type row = Store.node_id array

type cell =
  | Node of Store.node_id
  | Prop_value of Value.t

let unbound = -1

let satisfies store nid (c : Plan.constraints) =
  (match c.clabel with
  | None -> true
  | Some l -> List.exists (String.equal l) (Store.node_labels store nid))
  && List.for_all
       (fun (k, v) ->
         match Store.get_prop store nid k with
         | Some v' -> Value.equal v v'
         | None -> false)
       c.cprops

let seed_candidates store (step : Plan.step) =
  match step with
  | Plan.Seed_index { label; key; value; extra; _ } ->
    let hits =
      match Store.index_lookup store ~label ~property:key value with
      | hits -> hits
      | exception Not_found ->
        (* Index dropped between planning and execution: fall back to a
           label scan filtered by the property. *)
        List.filter
          (fun nid ->
            match Store.get_prop store nid key with
            | Some v -> Value.equal v value
            | None -> false)
          (Store.nodes_with_label store label)
    in
    List.filter (fun nid -> satisfies store nid extra) hits
  | Plan.Seed_label { label; extra; _ } ->
    List.filter (fun nid -> satisfies store nid extra) (Store.nodes_with_label store label)
  | Plan.Seed_all { extra; _ } ->
    List.filter (fun nid -> satisfies store nid extra) (Store.all_nodes store)
  | Plan.Seed_rel _ | Plan.Expand _ | Plan.Expand_var _ -> invalid_arg "seed_candidates"

let apply_step store width rows (step : Plan.step) =
  match step with
  | Plan.Seed_index { slot; _ } | Plan.Seed_label { slot; _ } | Plan.Seed_all { slot; _ } ->
    let candidates = seed_candidates store step in
    List.concat_map
      (fun (r : row) ->
        if r.(slot) <> unbound then
          (* Variable already bound (shared across components): check. *)
          if List.exists (Int.equal r.(slot)) candidates then [ r ] else []
        else
          List.map
            (fun nid ->
              let r' = Array.copy r in
              r'.(slot) <- nid;
              r')
            candidates)
      rows
  | Plan.Seed_rel { rtype; src_slot; dst_slot; src_c; dst_c } ->
    ignore width;
    List.concat_map
      (fun (r : row) ->
        (* Enumerate all relationships of the type by walking every node's
           outgoing adjacency — the cost profile of an unindexed
           relationship scan. *)
        let out = ref [] in
        List.iter
          (fun src ->
            List.iter
              (fun (rel : Store.rel) ->
                if String.equal rel.rtype rtype then begin
                  let s = rel.rsrc and d = rel.rdst in
                  (* Bind src first, then check dst against the updated
                     row, so a self-referencing hop (src and dst share a
                     slot) only accepts loop relationships. *)
                  let r' = Array.copy r in
                  let ok_s =
                    if r'.(src_slot) = unbound then begin
                      r'.(src_slot) <- s;
                      true
                    end
                    else r'.(src_slot) = s
                  in
                  let ok_d =
                    ok_s
                    &&
                    if r'.(dst_slot) = unbound then begin
                      r'.(dst_slot) <- d;
                      true
                    end
                    else r'.(dst_slot) = d
                  in
                  if ok_d && satisfies store s src_c && satisfies store d dst_c then
                    out := r' :: !out
                end)
              (Store.out_rels store src))
          (Store.all_nodes store);
        !out)
      rows
  | Plan.Expand_var { from_slot; rtype; direction; to_slot; to_c; min_hops; max_hops } ->
    (* Cap unbounded ranges: Neo4j applies a similar safety valve. *)
    let max_hops = min max_hops 16 in
    List.concat_map
      (fun (r : row) ->
        let from_nid = r.(from_slot) in
        if from_nid = unbound then []
        else begin
          (* Per-level reachability: level k holds the nodes reachable by
             some walk of exactly k hops (a node shortcut-reachable in 1
             hop still qualifies for *2..2 via a longer path).  Walks may
             revisit vertices; the level count is bounded by [max_hops]. *)
          let qualifying = Hashtbl.create 32 in
          if min_hops = 0 then Hashtbl.replace qualifying from_nid ();
          let level = ref [ from_nid ] in
          (try
             for depth = 1 to max_hops do
               let next = Hashtbl.create 16 in
               List.iter
                 (fun v ->
                   let neighbours =
                     match direction with
                     | Cypher.Out ->
                       List.map (fun (rel : Store.rel) -> rel.rdst)
                         (Store.out_rels_typed store v rtype)
                     | Cypher.In ->
                       List.map (fun (rel : Store.rel) -> rel.rsrc)
                         (Store.in_rels_typed store v rtype)
                   in
                   List.iter (fun w -> Hashtbl.replace next w ()) neighbours)
                 !level;
               level := Hashtbl.fold (fun w () acc -> w :: acc) next [];
               if depth >= min_hops then
                 List.iter (fun w -> Hashtbl.replace qualifying w ()) !level;
               if !level = [] then raise Exit
             done
           with Exit -> ());
          let reach = Hashtbl.fold (fun w () acc -> w :: acc) qualifying [] in
          if r.(to_slot) <> unbound then
            if List.exists (Int.equal r.(to_slot)) reach then [ r ] else []
          else
            List.filter_map
              (fun nid ->
                if satisfies store nid to_c then begin
                  let r' = Array.copy r in
                  r'.(to_slot) <- nid;
                  Some r'
                end
                else None)
              reach
        end)
      rows
  | Plan.Expand { from_slot; rtype; direction; to_slot; to_c } ->
    List.concat_map
      (fun (r : row) ->
        let from_nid = r.(from_slot) in
        if from_nid = unbound then []
        else
          let neighbours =
            match direction with
            | Cypher.Out ->
              List.map (fun (rel : Store.rel) -> rel.rdst)
                (Store.out_rels_typed store from_nid rtype)
            | Cypher.In ->
              List.map (fun (rel : Store.rel) -> rel.rsrc)
                (Store.in_rels_typed store from_nid rtype)
          in
          if r.(to_slot) <> unbound then
            if List.exists (Int.equal r.(to_slot)) neighbours then [ r ] else []
          else
            List.filter_map
              (fun nid ->
                if satisfies store nid to_c then begin
                  let r' = Array.copy r in
                  r'.(to_slot) <- nid;
                  Some r'
                end
                else None)
              neighbours)
      rows

let check_condition store (r : row) = function
  | Plan.Cc_eq_prop_lit (slot, key, v) -> (
    match Store.get_prop store r.(slot) key with
    | Some v' -> Value.equal v v'
    | None -> false)
  | Plan.Cc_neq_prop_lit (slot, key, v) -> (
    match Store.get_prop store r.(slot) key with
    | Some v' -> not (Value.equal v v')
    | None -> false)
  | Plan.Cc_eq_prop_prop (s1, k1, s2, k2) -> (
    match (Store.get_prop store r.(s1) k1, Store.get_prop store r.(s2) k2) with
    | Some a, Some b -> Value.equal a b
    | _ -> false)
  | Plan.Cc_neq_prop_prop (s1, k1, s2, k2) -> (
    match (Store.get_prop store r.(s1) k1, Store.get_prop store r.(s2) k2) with
    | Some a, Some b -> not (Value.equal a b)
    | _ -> false)

let run store (plan : Plan.t) =
  let width = Array.length plan.slots in
  let rows =
    List.fold_left
      (fun rows step -> apply_step store width rows step)
      [ Array.make width unbound ]
      plan.steps
  in
  let rows =
    List.filter
      (fun r ->
        Array.for_all (fun x -> x <> unbound) r
        && List.for_all (check_condition store r) plan.conditions)
      rows
  in
  (* Parallel relationships can create duplicate bindings: dedup. *)
  let seen = Hashtbl.create (List.length rows * 2) in
  List.filter
    (fun r ->
      if Hashtbl.mem seen r then false
      else begin
        Hashtbl.add seen r ();
        true
      end)
    rows

let run_projected store (plan : Plan.t) =
  List.map
    (fun (r : row) ->
      List.map
        (function
          | Plan.R_node slot -> Node r.(slot)
          | Plan.R_prop (slot, key) ->
            Prop_value (Option.value ~default:Value.Null (Store.get_prop store r.(slot) key)))
        plan.returns)
    (run store plan)
