open Tric_graph
open Tric_query
open Tric_rel

type query_info = {
  pattern : Pattern.t;
  text : string;
  width : int;
}

type t = {
  database : Db.t;
  queries : (int, query_info) Hashtbl.t;
  edge_ind : int list ref Ekey.Tbl.t;
}

let create ?max_writes_per_txn () =
  {
    database = Db.create ?max_writes_per_txn ();
    queries = Hashtbl.create 256;
    edge_ind = Ekey.Tbl.create 256;
  }

let name _ = "GraphDB"
let db t = t.database

(* Translate a query graph pattern to Cypher.  Pattern vertex [i] becomes
   variable [v<i>]; constant vertices constrain the vertex-name property
   (which is indexed).  All vertex names are returned, in vid order, so
   rows convert directly to embeddings. *)
let cypher_of_pattern p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "MATCH ";
  let mentioned = Hashtbl.create 16 in
  let node_text vid =
    if Hashtbl.mem mentioned vid then Printf.sprintf "(v%d)" vid
    else begin
      Hashtbl.add mentioned vid ();
      match Pattern.term p vid with
      | Term.Const c ->
        Printf.sprintf "(v%d:%s {name: '%s'})" vid Db.vertex_label (Label.to_string c)
      | Term.Var _ -> Printf.sprintf "(v%d:%s)" vid Db.vertex_label
    end
  in
  Array.iteri
    (fun i (e : Pattern.pedge) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (node_text e.src);
      Buffer.add_string buf (Printf.sprintf "-[:%s]->" (Label.to_string e.elabel));
      Buffer.add_string buf (node_text e.dst))
    (Pattern.edges p);
  Buffer.add_string buf " RETURN ";
  for vid = 0 to Pattern.num_vertices p - 1 do
    if vid > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (Printf.sprintf "v%d" vid)
  done;
  Buffer.contents buf

let add_query t pattern =
  let qid = Pattern.id pattern in
  if Hashtbl.mem t.queries qid then
    invalid_arg (Printf.sprintf "Continuous.add_query: duplicate query id %d" qid);
  Array.iter
    (fun (pe : Pattern.pedge) ->
      let key = Ekey.of_pedge pattern pe in
      match Ekey.Tbl.find_opt t.edge_ind key with
      | Some cell -> if not (List.exists (Int.equal qid) !cell) then cell := qid :: !cell
      | None -> Ekey.Tbl.add t.edge_ind key (ref [ qid ]))
    (Pattern.edges pattern);
  Hashtbl.add t.queries qid
    { pattern; text = cypher_of_pattern pattern; width = Pattern.num_vertices pattern }

let remove_query t qid =
  Hashtbl.mem t.queries qid
  &&
  (Hashtbl.remove t.queries qid;
   true)

let num_queries t = Hashtbl.length t.queries
let cypher_of t qid = (Hashtbl.find t.queries qid).text

let pattern_of_cypher ?(name = "") ~id text =
  let q = Cypher.parse text in
  if q.Cypher.conditions <> [] then
    raise (Cypher.Parse_error "pattern_of_cypher: WHERE clauses are not supported");
  let b = Pattern.Builder.create ~name ~id () in
  let anon = ref 0 in
  let term_of (n : Cypher.node_pat) =
    match List.find_opt (fun (k, _) -> String.equal k "name") n.Cypher.nprops with
    | Some (_, Value.String s) -> Term.const s
    | Some _ -> raise (Cypher.Parse_error "pattern_of_cypher: non-string name property")
    | None -> (
      match n.Cypher.nvar with
      | Some v -> Term.var v
      | None ->
        incr anon;
        Term.var (Printf.sprintf "_anon%d" !anon))
  in
  List.iter
    (fun ((first, hops) : Cypher.chain) ->
      let prev = ref (term_of first) in
      if hops = [] then
        raise (Cypher.Parse_error "pattern_of_cypher: node without relationships");
      List.iter
        (fun ((rel : Cypher.rel_pat), node) ->
          if rel.Cypher.hops <> None then
            raise
              (Cypher.Parse_error
                 "pattern_of_cypher: variable-length relationships are not expressible as query graph patterns");
          let target = term_of node in
          let sv, dv =
            match rel.Cypher.direction with
            | Cypher.Out -> (!prev, target)
            | Cypher.In -> (target, !prev)
          in
          let s = Pattern.Builder.vertex b sv and d = Pattern.Builder.vertex b dv in
          Pattern.Builder.edge b ~label:(Label.intern rel.Cypher.rtype_p) s d;
          prev := target)
        hops)
    q.Cypher.chains;
  Pattern.Builder.build b

let embeddings_of_rows t info rows plan =
  let store = Db.store t.database in
  let slots =
    Array.init info.width (fun vid ->
        match Plan.slot_of_var plan (Printf.sprintf "v%d" vid) with
        | Some s -> s
        | None -> invalid_arg "Continuous: plan lost a variable")
  in
  List.filter_map
    (fun (row : Executor.row) ->
      let emb = ref (Some (Embedding.empty info.width)) in
      Array.iteri
        (fun vid slot ->
          match !emb with
          | None -> ()
          | Some e -> (
            match Store.get_prop store row.(slot) "name" with
            | Some (Value.String name) -> emb := Embedding.bind e vid (Label.intern name)
            | Some _ | None -> emb := None))
        slots;
      !emb)
    rows

let embedding_uses_edge q emb (e : Edge.t) =
  Array.exists
    (fun (pe : Pattern.pedge) ->
      Label.equal pe.elabel e.label
      && (match Embedding.get emb pe.src with
         | Some s -> Label.equal s e.src
         | None -> false)
      &&
      match Embedding.get emb pe.dst with
      | Some d -> Label.equal d e.dst
      | None -> false)
    (Pattern.edges q)

let execute t info =
  let plan = Db.plan_of t.database info.text in
  let rows = Executor.run (Db.store t.database) plan in
  embeddings_of_rows t info rows plan

let affected_queries t (e : Edge.t) =
  List.concat_map
    (fun k -> match Ekey.Tbl.find_opt t.edge_ind k with Some cell -> !cell | None -> [])
    (Ekey.keys_of_edge e)
  |> List.sort_uniq Int.compare

let matches_using t (e : Edge.t) =
  List.filter_map
    (fun qid ->
      match Hashtbl.find_opt t.queries qid with
      | None -> None
      | Some info -> (
        let embeddings =
          execute t info
          |> List.filter (fun emb -> embedding_uses_edge info.pattern emb e)
          |> List.sort_uniq Embedding.compare
        in
        match embeddings with [] -> None | l -> Some (qid, l)))
    (affected_queries t e)

let handle_update t u =
  match u.Update.op with
  | Update.Remove e ->
    (* Retract by re-executing the affected queries {e before} the edge
       leaves the database: every surviving row that uses the edge is a
       match this removal destroys.  If the edge is absent, no row can use
       it (the store deduplicates triples), so the channel comes out []. *)
    let retractions = matches_using t e in
    ignore (Db.remove_stream_edge t.database e);
    ([], retractions)
  | Update.Add e ->
    if not (Db.add_stream_edge t.database e) then ([], [])
    else (matches_using t e, [])

let current_matches t qid =
  let info = Hashtbl.find t.queries qid in
  List.sort_uniq Embedding.compare (execute t info)

let load_graph t g =
  let txn = Db.txn_begin t.database in
  (* Create all vertices first, then relationships, resolving by name. *)
  let refs = Hashtbl.create (Graph.num_vertices g) in
  Graph.iter_vertices
    (fun v ->
      let name = Label.to_string v in
      let nref =
        match
          Store.index_lookup (Db.store t.database) ~label:Db.vertex_label ~property:"name"
            (Value.String name)
        with
        | nid :: _ -> Db.existing nid
        | [] -> Db.txn_create_node txn ~labels:[ Db.vertex_label ]
                  ~props:[ ("name", Value.String name) ] ()
        | exception Not_found ->
          Db.txn_create_node txn ~labels:[ Db.vertex_label ]
            ~props:[ ("name", Value.String name) ] ()
      in
      Hashtbl.replace refs v nref)
    g;
  Graph.iter_edges
    (fun e ->
      Db.txn_create_rel txn ~rtype:(Label.to_string e.label) (Hashtbl.find refs e.src)
        (Hashtbl.find refs e.dst))
    g;
  ignore (Db.txn_commit txn);
  Db.invalidate_plans t.database
