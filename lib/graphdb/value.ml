type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | (Null | Bool _ | Int _ | Float _ | String _), _ -> false

(* Typed compare/hash: the polymorphic versions order by memory
   representation and hash only a bounded prefix — both change meaning if
   the representation does (e.g. interned strings). *)
let rank = function Null -> 0 | Bool _ -> 1 | Int _ -> 2 | Float _ -> 3 | String _ -> 4

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let string_hash s =
  (* FNV-1a *)
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x01000193 land max_int) s;
  !h

let hash = function
  | Null -> 0
  | Bool b -> 3 + Bool.to_int b
  | Int i -> (i * 0x9e3779b1) land max_int
  | Float f -> (Int64.to_int (Int64.bits_of_float f) * 31) land max_int
  | String s -> string_hash s

let pp fmt = function
  | Null -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.pp_print_float fmt f
  | String s -> Format.fprintf fmt "%S" s

let to_string v = Format.asprintf "%a" pp v
