(** The Neo4j-style continuous multi-query baseline (§5.3).

    Queries are translated to Cypher at registration, indexed in [queryInd]
    (id → compiled plan) and [edgeInd] (generic edge key → query ids).  Each
    stream update is (1) applied to the database, (2) matched against
    [edgeInd] to find the affected queries, which are then (3) retrieved and
    (4) re-executed in full — the characteristic cost profile of bolting
    continuous semantics onto a conventional graph database. *)

open Tric_graph
open Tric_query
open Tric_rel

type t

val create : ?max_writes_per_txn:int -> unit -> t
val name : t -> string
(** ["GraphDB"]. *)

val db : t -> Db.t

val add_query : t -> Pattern.t -> unit
val remove_query : t -> int -> bool
val num_queries : t -> int

val cypher_of : t -> int -> string
(** The Cypher text a query was compiled to.  @raise Not_found. *)

val pattern_of_cypher : ?name:string -> id:int -> string -> Pattern.t
(** The reverse translation: parse a Cypher MATCH query into a query graph
    pattern usable with {e any} engine (so users can express continuous
    queries in Cypher and still run them through TRIC).  Node variables
    become pattern variables; [{name: '...'}] maps become constants;
    anonymous nodes become fresh variables; WHERE clauses and property
    returns are rejected.
    @raise Cypher.Parse_error on malformed or unsupported input. *)

val handle_update :
  t -> Update.t -> (int * Embedding.t list) list * (int * Embedding.t list) list
(** [(matches, retractions)]: an addition reports the new matches using
    the edge; a removal re-executes the affected queries before the edge
    leaves the database and reports the destroyed matches. *)

val current_matches : t -> int -> Embedding.t list

val load_graph : t -> Graph.t -> unit
(** Bulk-load an initial graph through batched transactions. *)
