(** The advanced baselines INV and INC (§5.1, §5.2) and their caching
    variants.

    Both index queries with inverted indexes only — no clustering: [edgeInd]
    maps a generic edge key to the query ids using it; [queryInd] keeps each
    query's covering paths; a materialized view per distinct key stores the
    updates seen.  They differ in the join strategy used to materialize an
    affected covering path:

    - {b Full} (INV): re-join the base views of the whole path from
      scratch, using every tuple;
    - {b Seeded} (INC): start from the incoming update and extend left and
      right, so only tuples connected to the update are touched — but paths
      of the query not containing the update, and the final cross-path
      join, are still computed in full.

    [cache:true] (INV+/INC+) keeps the hash-join build tables alive, as in
    {!Tric_rel.Relation}. *)

open Tric_graph
open Tric_query
open Tric_rel

type mode =
  | Full
  | Seeded

type t

val create : ?cache:bool -> ?metrics:bool -> mode:mode -> unit -> t
(** [metrics] (default false) builds a per-engine telemetry registry
    ([inv_*] counters, the affected-queries histogram, and [inv_base_*]
    relation counters).  The baselines are single-domain, so every
    instrument is stable. *)

val metrics : t -> Tric_obs.Snapshot.t
(** Snapshot of the engine's registry; {!Tric_obs.Snapshot.empty} when
    created without [metrics]. *)

val name : t -> string
(** "INV", "INV+", "INC" or "INC+". *)

val add_query : t -> Pattern.t -> unit
val remove_query : t -> int -> bool
val num_queries : t -> int

val handle_update :
  t -> Update.t -> (int * Embedding.t list) list * (int * Embedding.t list) list
(** [(matches, retractions)].  An addition reports the new matches it
    creates; a removal of a live edge reports the matches it destroys
    (answered against the pre-removal views, each using the removed
    edge).  The other channel is always []. *)

val current_matches : t -> int -> Embedding.t list
val covering_paths : t -> int -> Path.t list

type stats = {
  queries : int;
  base_views : int;
  base_tuples : int;
  index_rebuilds : int;
  source_index_keys : int;  (** distinct constant source vertices (Fig. 11) *)
  target_index_keys : int;  (** distinct constant target vertices (Fig. 11) *)
}

val stats : t -> stats

val keys_with_source : t -> Tric_graph.Label.t -> Ekey.t list
(** The paper's [sourceInd] (Fig. 11): every indexed edge key whose source
    is the given constant vertex.  Used to walk path structure from an
    update's endpoints. *)

val keys_with_target : t -> Tric_graph.Label.t -> Ekey.t list

(** {2 Audit access} *)

val fold_base : (Ekey.t -> Relation.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over every base view [matV[e]] with its key. *)

val seen_edges : t -> Edge.t list
(** The engine's duplicate-detection set — must equal the live edge set. *)

val query_keys : t -> (int * Ekey.t list) list
(** Per live query (ascending id), every generic key of its covering
    paths — each must own a base view. *)
