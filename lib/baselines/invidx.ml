(* check: allow-file shard-escape — baseline engine owns its own relations; nothing here aliases live shard state *)
open Tric_graph
open Tric_query
open Tric_rel

type mode =
  | Full
  | Seeded

type query_info = {
  pattern : Pattern.t;
  paths : Path.t array;
  path_vids : int array array;
  path_keys : Ekey.t array array;
  width : int;
}

(* Telemetry: the baselines are single-domain, so one registry per engine
   and every instrument on it is stable (a pure function of the stream). *)
type obs = {
  reg : Tric_obs.Registry.t;
  o_updates : Tric_obs.Registry.counter;
  o_additions : Tric_obs.Registry.counter;
  o_removals : Tric_obs.Registry.counter;
  o_matches : Tric_obs.Registry.counter;
  o_affected : Tric_obs.Histogram.t; (* affected queries per addition *)
  o_base : Relation.obs;
}

let make_obs () =
  let reg = Tric_obs.Registry.create () in
  {
    reg;
    o_updates = Tric_obs.Registry.counter reg "inv_updates_total";
    o_additions = Tric_obs.Registry.counter reg "inv_additions_total";
    o_removals = Tric_obs.Registry.counter reg "inv_removals_total";
    o_matches = Tric_obs.Registry.counter reg "inv_matches_total";
    o_affected = Tric_obs.Registry.histogram reg ~lo:1.0 ~growth:2.0 "inv_affected_queries";
    o_base = Relation.make_obs reg ~prefix:"inv_base" ~stable:true;
  }

type t = {
  cache : bool;
  mode : mode;
  obs : obs option;
  queries : (int, query_info) Hashtbl.t; (* queryInd *)
  edge_ind : int list ref Ekey.Tbl.t; (* key -> query ids *)
  source_ind : Ekey.t list ref Label.Tbl.t; (* const source vertex -> keys *)
  target_ind : Ekey.t list ref Label.Tbl.t; (* const target vertex -> keys *)
  base : Relation.t Ekey.Tbl.t; (* matV[e] per distinct key *)
  seen : unit Edge.Tbl.t; (* updates already applied (duplicate detection) *)
}

let create ?(cache = false) ?(metrics = false) ~mode () =
  {
    cache;
    mode;
    obs = (if metrics then Some (make_obs ()) else None);
    queries = Hashtbl.create 256;
    edge_ind = Ekey.Tbl.create 256;
    source_ind = Label.Tbl.create 256;
    target_ind = Label.Tbl.create 256;
    base = Ekey.Tbl.create 256;
    seen = Edge.Tbl.create 1024;
  }

let metrics t =
  match t.obs with
  | None -> Tric_obs.Snapshot.empty
  | Some o -> Tric_obs.Snapshot.of_registry o.reg

let name t =
  match (t.mode, t.cache) with
  | Full, false -> "INV"
  | Full, true -> "INV+"
  | Seeded, false -> "INC"
  | Seeded, true -> "INC+"

let multi_add tbl_find tbl_add key v =
  match tbl_find key with
  | Some cell -> cell := v :: !cell
  | None -> tbl_add key (ref [ v ])

let add_query t pattern =
  let qid = Pattern.id pattern in
  if Hashtbl.mem t.queries qid then
    invalid_arg (Printf.sprintf "%s.add_query: duplicate query id %d" (name t) qid);
  let paths = Array.of_list (Cover.extract pattern) in
  let path_keys = Array.map (fun p -> Array.of_list (Path.keys pattern p)) paths in
  Array.iter
    (Array.iter (fun key ->
         multi_add (Ekey.Tbl.find_opt t.edge_ind) (Ekey.Tbl.add t.edge_ind) key qid;
         (* sourceInd/targetInd map constant vertices to the distinct keys
            they anchor; a key shared by several queries is entered once. *)
         let multi_add_key find add c =
           match find c with
           | Some cell -> if not (List.exists (Ekey.equal key) !cell) then cell := key :: !cell
           | None -> add c (ref [ key ])
         in
         (match Ekey.src_const key with
         | Some c ->
           multi_add_key (Label.Tbl.find_opt t.source_ind) (Label.Tbl.add t.source_ind) c
         | None -> ());
         (match Ekey.dst_const key with
         | Some c ->
           multi_add_key (Label.Tbl.find_opt t.target_ind) (Label.Tbl.add t.target_ind) c
         | None -> ());
         if not (Ekey.Tbl.mem t.base key) then begin
           let obs = match t.obs with Some o -> Some o.o_base | None -> None in
           Ekey.Tbl.add t.base key (Relation.create ~cache:t.cache ?obs ~width:2 ())
         end))
    path_keys;
  Hashtbl.add t.queries qid
    {
      pattern;
      paths;
      path_vids = Array.map Path.vids paths;
      path_keys;
      width = Pattern.num_vertices pattern;
    }

let remove_query t qid =
  Hashtbl.mem t.queries qid
  &&
  (Hashtbl.remove t.queries qid;
   true)

let num_queries t = Hashtbl.length t.queries

(* -- Path materialization -------------------------------------------------- *)

(* Full left-to-right materialization of one covering path (INV): join the
   base views of its keys in path order, carrying partial embeddings.
   Returns [] as soon as a prefix dies (the paper's pruning). *)
let materialize_full t info pidx =
  let keys = info.path_keys.(pidx) and vids = info.path_vids.(pidx) in
  let first_base = Ekey.Tbl.find t.base keys.(0) in
  let init =
    Relation.fold
      (fun tu acc ->
        match
          Embedding.of_tuple ~width:info.width ~vids:[| vids.(0); vids.(1) |] tu
        with
        | Some e -> e :: acc
        | None -> acc)
      first_base []
  in
  let extend_step embs i =
    match embs with
    | [] -> []
    | _ ->
      let base = Ekey.Tbl.find t.base keys.(i) in
      let probe = Relation.index_on base ~col:0 in
      List.concat_map
        (fun emb ->
          match Embedding.get emb vids.(i) with
          | None -> assert false
          | Some hinge ->
            List.filter_map
              (fun tu -> Embedding.bind emb vids.(i + 1) (Tuple.get tu 1))
              (probe hinge))
        embs
  in
  let rec go embs i = if i >= Array.length keys then embs else go (extend_step embs i) (i + 1) in
  Embjoin.dedup (go init 1)

(* Update-seeded materialization of one covering path (INC): only chains
   through the incoming edge are enumerated.  For every position of the
   path whose key matches the update, seed there and extend right (probing
   base views on their source column) and left (probing on target). *)
let materialize_seeded t info pidx (e : Edge.t) =
  let keys = info.path_keys.(pidx) and vids = info.path_vids.(pidx) in
  let n = Array.length keys in
  let results = ref [] in
  for i = 0 to n - 1 do
    if Ekey.matches keys.(i) e then begin
      let seed =
        match Embedding.bind (Embedding.empty info.width) vids.(i) e.src with
        | None -> None
        | Some emb -> Embedding.bind emb vids.(i + 1) e.dst
      in
      match seed with
      | None -> ()
      | Some seed ->
        (* Extend rightwards. *)
        let right =
          let rec go embs j =
            if j >= n || embs = [] then embs
            else begin
              let base = Ekey.Tbl.find t.base keys.(j) in
              let probe = Relation.index_on base ~col:0 in
              let embs =
                List.concat_map
                  (fun emb ->
                    match Embedding.get emb vids.(j) with
                    | None -> assert false
                    | Some hinge ->
                      List.filter_map
                        (fun tu -> Embedding.bind emb vids.(j + 1) (Tuple.get tu 1))
                        (probe hinge))
                  embs
              in
              go embs (j + 1)
            end
          in
          go [ seed ] (i + 1)
        in
        (* Extend leftwards. *)
        let full =
          let rec go embs j =
            if j < 0 || embs = [] then embs
            else begin
              let base = Ekey.Tbl.find t.base keys.(j) in
              let probe = Relation.index_on base ~col:1 in
              let embs =
                List.concat_map
                  (fun emb ->
                    match Embedding.get emb vids.(j + 1) with
                    | None -> assert false
                    | Some hinge ->
                      List.filter_map
                        (fun tu -> Embedding.bind emb vids.(j) (Tuple.first tu))
                        (probe hinge))
                  embs
              in
              go embs (j - 1)
            end
          in
          go right (i - 1)
        in
        results := full @ !results
    end
  done;
  Embjoin.dedup !results

(* -- Answering ------------------------------------------------------------- *)

let feed_base_views t tuple keys =
  List.iter
    (fun k ->
      match Ekey.Tbl.find_opt t.base k with
      | Some base -> ignore (Relation.insert base tuple)
      | None -> ())
    keys

let path_affected keys (e : Edge.t) = Array.exists (fun k -> Ekey.matches k e) keys

let embedding_uses_edge q emb (e : Edge.t) =
  Array.exists
    (fun (pe : Pattern.pedge) ->
      Label.equal pe.elabel e.label
      && (match Embedding.get emb pe.src with
         | Some s -> Label.equal s e.src
         | None -> false)
      &&
      match Embedding.get emb pe.dst with
      | Some d -> Label.equal d e.dst
      | None -> false)
    (Pattern.edges q)

let answer_query t info (e : Edge.t) =
  let k = Array.length info.paths in
  (* Paper §5.1 Step 1: every key of the query must have a non-empty view,
     otherwise the query cannot be satisfied and is skipped. *)
  let all_views_nonempty =
    Array.for_all
      (Array.for_all (fun key -> not (Relation.is_empty (Ekey.Tbl.find t.base key))))
      info.path_keys
  in
  if not all_views_nonempty then []
  else begin
    match t.mode with
    | Full ->
      let per_path = Array.init k (fun i -> materialize_full t info i) in
      if Array.exists (fun l -> l = []) per_path then []
      else
        Embjoin.join_many (Array.to_list per_path)
        |> List.filter Embedding.is_total
        |> List.filter (fun emb -> embedding_uses_edge info.pattern emb e)
    | Seeded ->
      let full_cache = Array.make k None in
      let full i =
        match full_cache.(i) with
        | Some l -> l
        | None ->
          let l = materialize_full t info i in
          full_cache.(i) <- Some l;
          l
      in
      let results = ref [] in
      for i = 0 to k - 1 do
        if path_affected info.path_keys.(i) e then begin
          let delta = materialize_seeded t info i e in
          if delta <> [] then begin
            let operands =
              delta :: List.filter_map (fun j -> if j = i then None else Some (full j)) (List.init k Fun.id)
            in
            results := Embjoin.join_many operands @ !results
          end
        end
      done;
      !results |> Embjoin.dedup |> List.filter Embedding.is_total
  end

let handle_update t u =
  (match t.obs with
  | Some o ->
    Tric_obs.Registry.incr o.o_updates;
    if Update.is_addition u then Tric_obs.Registry.incr o.o_additions
    else Tric_obs.Registry.incr o.o_removals
  | None -> ());
  match u.Update.op with
  | Update.Remove e ->
    (* Retractions are answered against the pre-removal views: the
       matches a live edge supports are exactly the per-query answers
       seeded on (Full: filtered to use) that edge — compute them first,
       then mutate.  A removal of an edge never added retracts nothing. *)
    let retractions =
      if not (Edge.Tbl.mem t.seen e) then []
      else
        let affected =
          List.concat_map
            (fun k ->
              match Ekey.Tbl.find_opt t.edge_ind k with Some cell -> !cell | None -> [])
            (Ekey.keys_of_edge e)
          |> List.sort_uniq Int.compare
        in
        List.filter_map
          (fun qid ->
            match Hashtbl.find_opt t.queries qid with
            | None -> None
            | Some info ->
              (match answer_query t info e with [] -> None | l -> Some (qid, l)))
          affected
    in
    Edge.Tbl.remove t.seen e;
    let tuple = Tuple.of_edge e in
    List.iter
      (fun k ->
        match Ekey.Tbl.find_opt t.base k with
        | Some base -> ignore (Relation.remove base tuple)
        | None -> ())
      (Ekey.keys_of_edge e);
    ([], retractions)
  | Update.Add e ->
    if Edge.Tbl.mem t.seen e then ([], [])
    else begin
      Edge.Tbl.add t.seen e ();
      let keys = Ekey.keys_of_edge e in
      feed_base_views t (Tuple.of_edge e) keys;
      (* Affected queries via edgeInd, deduplicated. *)
      let affected =
        List.concat_map
          (fun k ->
            match Ekey.Tbl.find_opt t.edge_ind k with Some cell -> !cell | None -> [])
          keys
        |> List.sort_uniq Int.compare
      in
      (match t.obs with
      | Some o ->
        Tric_obs.Histogram.observe o.o_affected (float_of_int (List.length affected))
      | None -> ());
      let report =
        List.filter_map
          (fun qid ->
            match Hashtbl.find_opt t.queries qid with
            | None -> None
            | Some info ->
              (match answer_query t info e with [] -> None | l -> Some (qid, l)))
          affected
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      (match t.obs with
      | Some o ->
        List.iter
          (fun (_, l) -> Tric_obs.Registry.add o.o_matches (List.length l))
          report
      | None -> ());
      (report, [])
    end

let current_matches t qid =
  let info = Hashtbl.find t.queries qid in
  let k = Array.length info.paths in
  let per_path = List.init k (fun i -> materialize_full t info i) in
  List.filter Embedding.is_total (Embjoin.join_many per_path)

let covering_paths t qid =
  let info = Hashtbl.find t.queries qid in
  Array.to_list info.paths

type stats = {
  queries : int;
  base_views : int;
  base_tuples : int;
  index_rebuilds : int;
  source_index_keys : int;
  target_index_keys : int;
}

let stats t =
  let base_tuples, rebuilds =
    Ekey.Tbl.fold
      (fun _ r (n, rb) -> (n + Relation.cardinality r, rb + Relation.stats_rebuilds r))
      t.base (0, 0)
  in
  {
    queries = num_queries t;
    base_views = Ekey.Tbl.length t.base;
    base_tuples;
    index_rebuilds = rebuilds;
    source_index_keys = Label.Tbl.length t.source_ind;
    target_index_keys = Label.Tbl.length t.target_ind;
  }

let keys_with_source t v =
  match Label.Tbl.find_opt t.source_ind v with Some cell -> !cell | None -> []

let keys_with_target t v =
  match Label.Tbl.find_opt t.target_ind v with Some cell -> !cell | None -> []

(* -- Audit access ----------------------------------------------------------- *)

let fold_base f t init = Ekey.Tbl.fold f t.base init
let seen_edges t = Edge.Tbl.fold (fun e () acc -> e :: acc) t.seen []

let query_keys (t : t) =
  Hashtbl.fold
    (fun qid info acc ->
      (qid, List.concat_map Array.to_list (Array.to_list info.path_keys)) :: acc)
    t.queries []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
