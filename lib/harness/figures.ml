open Tric_engine
module W = Tric_workloads

type t = {
  id : string;
  paper_ref : string;
  title : string;
  engines : string list;
  run : Config.t -> Format.formatter -> unit;
}

(* -- Shared helpers --------------------------------------------------------- *)

let dataset ?(source = W.Dataset.Snb) (cfg : Config.t) ?(edges = 100_000) ?(qdb = 5_000)
    ?(avg_len = 5) ?(selectivity = 0.25) ?(overlap = 0.35) () =
  W.Dataset.make source
    {
      W.Dataset.edges = Config.scaled cfg edges;
      qdb = Config.scaled cfg qdb;
      avg_len;
      selectivity;
      overlap;
      seed = cfg.Config.seed;
    }

let run_engine (cfg : Config.t) ?checkpoints name (d : W.Dataset.t) =
  Runner.run ?checkpoints ~budget_s:cfg.Config.budget_s ~engine:(Engines.by_name name)
    ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()

let cell_of_result (r : Runner.result) =
  if r.Runner.timed_out then
    Printf.sprintf "%s* @%d" (Tablefmt.ms r.Runner.mean_ms) r.Runner.updates_processed
  else Tablefmt.ms r.Runner.mean_ms

(* A growth figure: one dataset, N graph-size checkpoints on the x axis,
   answering time per update within each window per engine.  Timed-out
   engines keep their reached prefix and get a '*' (as in the paper). *)
let growth_figure ~engines ~make_dataset ~points (cfg : Config.t) fmt =
  let d = make_dataset cfg in
  let total = Tric_graph.Stream.length d.W.Dataset.stream in
  (* At extreme scales [total < points] the rounded positions collide (and
     the first ones round to 0); dedup so every column corresponds to one
     reachable checkpoint — duplicates used to render as spurious '*'
     timeout cells. *)
  let checkpoints =
    List.init points (fun i -> (i + 1) * total / points)
    |> List.filter (fun cp -> cp > 0)
    |> List.sort_uniq Int.compare
  in
  let results = List.map (fun name -> run_engine cfg ~checkpoints name d) engines in
  let header =
    "engine" :: List.map (fun cp -> Printf.sprintf "%dupd" cp) checkpoints @ [ "note" ]
  in
  let rows =
    List.map
      (fun (r : Runner.result) ->
        let segs = Runner.segment_means_ms r in
        let cells =
          List.map
            (fun cp ->
              match List.find_opt (fun (n, _) -> Int.equal n cp) segs with
              | Some (_, m) -> Tablefmt.ms m
              | None -> "*")
            checkpoints
        in
        (r.Runner.engine :: cells)
        @ [
            (if r.Runner.timed_out then
               Printf.sprintf "timed out at %d/%d" r.Runner.updates_processed total
             else Printf.sprintf "mean %s ms/upd" (Tablefmt.ms r.Runner.mean_ms));
          ])
      results
  in
  Format.fprintf fmt "x axis: updates applied (graph size); cells: mean ms/update in window@.";
  Tablefmt.print fmt ~header ~rows

(* A parameter sweep: one dataset per x value, total mean per engine. *)
let sweep_figure ~engines ~xs ~label ~make_dataset (cfg : Config.t) fmt =
  let header = "engine" :: List.map label xs in
  let columns =
    List.map
      (fun x ->
        let d = make_dataset cfg x in
        List.map (fun name -> cell_of_result (run_engine cfg name d)) engines)
      xs
  in
  let rows =
    List.mapi (fun i name -> name :: List.map (fun col -> List.nth col i) columns) engines
  in
  Format.fprintf fmt "cells: mean ms/update over the full stream ('*' = budget hit)@.";
  Tablefmt.print fmt ~header ~rows

(* -- Experiments ------------------------------------------------------------ *)

let all_engines = Engines.paper_names
let trie_engines = Engines.trie_names

let fig12a =
  {
    id = "fig12a";
    paper_ref = "Fig. 12(a)";
    title = "SNB: answering time vs graph size (100K edges, QDB=5K)";
    engines = all_engines;
    run =
      growth_figure ~engines:all_engines ~points:10 ~make_dataset:(fun cfg ->
          dataset cfg ~edges:100_000 ~qdb:5_000 ());
  }

let fig12b =
  {
    id = "fig12b";
    paper_ref = "Fig. 12(b)";
    title = "SNB: influence of selectivity sigma (10..30%)";
    engines = all_engines;
    run =
      sweep_figure ~engines:all_engines
        ~xs:[ 0.10; 0.15; 0.20; 0.25; 0.30 ]
        ~label:(fun s -> Printf.sprintf "s=%.0f%%" (s *. 100.0))
        ~make_dataset:(fun cfg s -> dataset cfg ~selectivity:s ());
  }

let fig12c =
  {
    id = "fig12c";
    paper_ref = "Fig. 12(c)";
    title = "SNB: influence of query database size (1K..5K)";
    engines = all_engines;
    run =
      sweep_figure ~engines:all_engines ~xs:[ 1_000; 3_000; 5_000 ]
        ~label:(fun q -> Printf.sprintf "QDB=%d" q)
        ~make_dataset:(fun cfg q -> dataset cfg ~qdb:q ());
  }

let fig12d =
  {
    id = "fig12d";
    paper_ref = "Fig. 12(d)";
    title = "SNB: influence of average query size l (3..9)";
    engines = all_engines;
    run =
      sweep_figure ~engines:all_engines ~xs:[ 3; 5; 7; 9 ]
        ~label:(fun l -> Printf.sprintf "l=%d" l)
        ~make_dataset:(fun cfg l -> dataset cfg ~avg_len:l ());
  }

let fig12e =
  {
    id = "fig12e";
    paper_ref = "Fig. 12(e)";
    title = "SNB: influence of query overlap o (25..65%)";
    engines = all_engines;
    run =
      sweep_figure ~engines:all_engines
        ~xs:[ 0.25; 0.35; 0.45; 0.55; 0.65 ]
        ~label:(fun o -> Printf.sprintf "o=%.0f%%" (o *. 100.0))
        ~make_dataset:(fun cfg o -> dataset cfg ~overlap:o ());
  }

let fig12f =
  {
    id = "fig12f";
    paper_ref = "Fig. 12(f)";
    title = "SNB: answering time vs graph size (1M edges) with timeouts";
    engines = all_engines;
    run =
      growth_figure ~engines:all_engines ~points:10 ~make_dataset:(fun cfg ->
          dataset cfg ~edges:1_000_000 ~qdb:5_000 ());
  }

let fig13a =
  {
    id = "fig13a";
    paper_ref = "Fig. 13(a)";
    title = "SNB: answering time vs graph size (10M edges), trie engines vs GraphDB";
    engines = trie_engines @ [ "GraphDB" ];
    run =
      growth_figure
        ~engines:(trie_engines @ [ "GraphDB" ])
        ~points:10
        ~make_dataset:(fun cfg -> dataset cfg ~edges:10_000_000 ~qdb:5_000 ());
  }

let fig13b =
  {
    id = "fig13b";
    paper_ref = "Fig. 13(b)";
    title = "SNB: query insertion time per 1K-query batch as QDB grows";
    engines = all_engines;
    run =
      (fun cfg fmt ->
        let d = dataset cfg ~edges:100_000 ~qdb:5_000 () in
        let queries = Array.of_list d.W.Dataset.queries in
        let batch = max 1 (Array.length queries / 5) in
        let header =
          "engine"
          :: List.init 5 (fun i -> Printf.sprintf "+batch%d(ms/query)" (i + 1))
        in
        let rows =
          List.map
            (fun name ->
              let e = Engines.by_name name in
              let cells = ref [] in
              for b = 0 to 4 do
                let t0 = Unix.gettimeofday () in
                for i = b * batch to min ((b + 1) * batch) (Array.length queries) - 1 do
                  e.Matcher.add_query queries.(i)
                done;
                let dt = (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int batch in
                cells := Tablefmt.ms dt :: !cells
              done;
              name :: List.rev !cells)
            all_engines
        in
        Format.fprintf fmt "cells: indexing time per query (ms) for each successive batch@.";
        Tablefmt.print fmt ~header ~rows);
  }

let fig13c =
  {
    id = "fig13c";
    paper_ref = "Fig. 13(c)";
    title = "Memory after indexing QDB=5K and streaming 100K edges (SNB/TAXI/BioGRID)";
    engines = all_engines;
    run =
      (fun cfg fmt ->
        let sources = [ W.Dataset.Snb; W.Dataset.Taxi; W.Dataset.Biogrid ] in
        let header = "engine" :: List.map W.Dataset.source_name sources in
        let columns =
          List.map
            (fun source ->
              let d = dataset ~source cfg ~edges:100_000 ~qdb:5_000 () in
              List.map
                (fun name ->
                  let r = run_engine cfg name d in
                  Tablefmt.mb_of_words r.Runner.memory_words
                  ^ (if r.Runner.timed_out then "*" else ""))
                all_engines)
            sources
        in
        let rows =
          List.mapi
            (fun i name -> name :: List.map (fun col -> List.nth col i) columns)
            all_engines
        in
        Format.fprintf fmt
          "cells: engine-reachable heap after the run ('*' = stream truncated by budget)@.";
        Tablefmt.print fmt ~header ~rows);
  }

let fig14a =
  {
    id = "fig14a";
    paper_ref = "Fig. 14(a)";
    title = "TAXI: answering time vs graph size (1M edges)";
    engines = all_engines;
    run =
      growth_figure ~engines:all_engines ~points:10 ~make_dataset:(fun cfg ->
          dataset ~source:W.Dataset.Taxi cfg ~edges:1_000_000 ~qdb:5_000 ());
  }

let fig14b =
  {
    id = "fig14b";
    paper_ref = "Fig. 14(b)";
    title = "BioGRID: answering time vs graph size (100K edges, stress test)";
    engines = all_engines;
    run =
      growth_figure ~engines:all_engines ~points:10 ~make_dataset:(fun cfg ->
          dataset ~source:W.Dataset.Biogrid cfg ~edges:100_000 ~qdb:5_000 ());
  }

let fig14c =
  {
    id = "fig14c";
    paper_ref = "Fig. 14(c)";
    title = "BioGRID: answering time vs graph size (1M edges), trie engines vs GraphDB";
    engines = trie_engines @ [ "GraphDB" ];
    run =
      growth_figure
        ~engines:(trie_engines @ [ "GraphDB" ])
        ~points:10
        ~make_dataset:(fun cfg ->
          dataset ~source:W.Dataset.Biogrid cfg ~edges:1_000_000 ~qdb:5_000 ());
  }

(* -- Ablations (DESIGN.md "design choices worth ablating") ------------------ *)

let ablation_cache =
  {
    id = "ablation-cache";
    paper_ref = "§4.2 Caching";
    title = "Ablation: hash-join structure caching (X vs X+), rebuild counts";
    engines = [ "TRIC"; "TRIC+"; "INV"; "INV+"; "INC"; "INC+" ];
    run =
      (fun cfg fmt ->
        let d = dataset cfg ~edges:100_000 ~qdb:5_000 () in
        let rows =
          List.map
            (fun name ->
              let r = run_engine cfg name d in
              [ name; cell_of_result r; Tablefmt.mb_of_words r.Runner.memory_words ])
            [ "TRIC"; "TRIC+"; "INV"; "INV+"; "INC"; "INC+" ]
        in
        Format.fprintf fmt "caching trades memory for per-update time@.";
        Tablefmt.print fmt ~header:[ "engine"; "ms/update"; "memory" ] ~rows);
  }

let ablation_sharing =
  {
    id = "ablation-sharing";
    paper_ref = "§1/§4 motivation";
    title = "Ablation: multi-query clustering vs isolated per-query evaluation";
    engines = [ "TRIC"; "ISO" ];
    run =
      (fun cfg fmt ->
        let d = dataset cfg ~edges:100_000 ~qdb:1_000 () in
        let rows =
          List.map
            (fun name ->
              let r = run_engine cfg name d in
              [ name; cell_of_result r; Tablefmt.mb_of_words r.Runner.memory_words ])
            [ "TRIC"; "ISO" ]
        in
        Format.fprintf fmt "ISO = one isolated TRIC instance per query (no sharing)@.";
        Tablefmt.print fmt ~header:[ "engine"; "ms/update"; "memory" ] ~rows);
  }

let ablation_cover =
  {
    id = "ablation-cover";
    paper_ref = "§4.1 Step 1";
    title = "Ablation: covering-path extraction strategy (upstream vs naive DFS)";
    engines = [ "TRIC"; "TRIC-naivecover" ];
    run =
      (fun cfg fmt ->
        let d = dataset cfg ~edges:100_000 ~qdb:5_000 () in
        let rows =
          List.map
            (fun name ->
              let e = Engines.by_name name in
              let r =
                Runner.run ~budget_s:cfg.Config.budget_s ~engine:e
                  ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
              in
              [ name; cell_of_result r; Tablefmt.mb_of_words r.Runner.memory_words ])
            [ "TRIC"; "TRIC-naivecover" ]
        in
        Format.fprintf fmt "upstream extension maximises shared trie prefixes@.";
        Tablefmt.print fmt ~header:[ "engine"; "ms/update"; "memory" ] ~rows);
  }

let ablation_window =
  {
    id = "ablation-window";
    paper_ref = "§4.3 deletions";
    title = "Ablation: sliding window (exact expiry via deletions) vs unbounded history";
    engines = [ "TRIC+" ];
    run =
      (fun cfg fmt ->
        let d = dataset cfg ~edges:100_000 ~qdb:1_000 () in
        let total = Tric_graph.Stream.length d.W.Dataset.stream in
        let rows =
          List.map
            (fun (label, engine) ->
              let r =
                Runner.run ~budget_s:cfg.Config.budget_s ~engine
                  ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
              in
              [
                label;
                cell_of_result r;
                Tablefmt.mb_of_words r.Runner.memory_words;
                string_of_int r.Runner.matches;
              ])
            [
              ("unbounded", Engines.tric ~cache:true ());
              ( Printf.sprintf "window=%d" (total / 2),
                Engines.windowed ~window:(total / 2) (Engines.tric ~cache:true ()) );
              ( Printf.sprintf "window=%d" (total / 4),
                Engines.windowed ~window:(total / 4) (Engines.tric ~cache:true ()) );
            ]
        in
        Format.fprintf fmt
          "windows bound state (memory); matches drop sharply because planted@.";
        Format.fprintf fmt
          "embeddings span edges far apart in the stream (temporal locality)@.";
        Tablefmt.print fmt
          ~header:[ "configuration"; "ms/update"; "memory"; "matches" ]
          ~rows);
  }

let batch_throughput =
  {
    id = "batch-throughput";
    paper_ref = "§6 + batching";
    title = "SNB add-only: updates/sec vs micro-batch size (amortised trie sweep)";
    engines = trie_engines;
    run =
      (fun cfg fmt ->
        let d = dataset cfg ~edges:100_000 ~qdb:1_000 () in
        let sizes = [ 1; 16; 64; 256 ] in
        let header =
          "engine"
          :: List.map
               (fun b -> if b = 1 then "per-update" else Printf.sprintf "batch=%d" b)
               sizes
        in
        let rows =
          List.map
            (fun name ->
              let base = ref 0.0 in
              name
              :: List.map
                   (fun b ->
                     let r =
                       Runner.run ~budget_s:cfg.Config.budget_s ~batch_size:b
                         ~engine:(Engines.by_name name) ~queries:d.W.Dataset.queries
                         ~stream:d.W.Dataset.stream ()
                     in
                     let ups = r.Runner.throughput_ups in
                     if b = 1 then base := ups;
                     Printf.sprintf "%.0f upd/s%s%s" ups
                       (if b = 1 || !base <= 0.0 then ""
                        else Printf.sprintf " (%.1fx)" (ups /. !base))
                       (if r.Runner.timed_out then "*" else ""))
                   sizes)
            trie_engines
        in
        Format.fprintf fmt
          "batched replay is state-equivalent to sequential replay (differential-tested)@.";
        Tablefmt.print fmt ~header ~rows);
  }

let table_structures =
  {
    id = "table-structures";
    paper_ref = "§4.1/§5.1 data structures";
    title = "Index-structure census after indexing QDB=5K and streaming 100K edges (SNB)";
    engines = all_engines;
    run =
      (fun cfg fmt ->
        let d = dataset cfg ~edges:100_000 ~qdb:5_000 () in
        let rows =
          List.map
            (fun name ->
              let engine = Engines.by_name name in
              let r =
                Runner.run ~budget_s:cfg.Config.budget_s ~engine
                  ~queries:d.W.Dataset.queries ~stream:d.W.Dataset.stream ()
              in
              ignore r;
              let counters =
                engine.Matcher.stats ()
                |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
                |> String.concat "  "
              in
              [ name; counters ])
            all_engines
        in
        Format.fprintf fmt "engine-specific index/view counters (structure sharing visible)@.";
        Tablefmt.print fmt ~header:[ "engine"; "counters" ] ~rows);
  }

let all =
  [
    fig12a; fig12b; fig12c; fig12d; fig12e; fig12f; fig13a; fig13b; fig13c; fig14a;
    fig14b; fig14c; ablation_cache; ablation_sharing; ablation_cover; ablation_window;
    batch_throughput; table_structures;
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let run_one cfg fmt e =
  Format.fprintf fmt "@.== %s — %s ==@.%s@.engines: %s@.scale: 1/%d, budget: %.0fs/engine@.@."
    e.id e.paper_ref e.title (String.concat ", " e.engines) cfg.Config.scale
    cfg.Config.budget_s;
  e.run cfg fmt

let run_all cfg fmt = List.iter (run_one cfg fmt) all
