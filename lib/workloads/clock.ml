open Tric_graph

let stamp ?(start = 0) ?(mean_gap = 1.0) ?(late_frac = 0.0) ?(late_max = 600)
    ~seed stream =
  if mean_gap < 0.0 then invalid_arg "Clock.stamp: mean_gap must be >= 0";
  if late_frac < 0.0 || late_frac > 1.0 then
    invalid_arg "Clock.stamp: late_frac must be in [0, 1]";
  if late_max < 0 then invalid_arg "Clock.stamp: late_max must be >= 0";
  (* Separate derived generator: stamping must not perturb the edge
     sequence the workload seed produces. *)
  let rng = Rng.create (seed lxor 0x77c10c5) in
  let clock = ref (float_of_int start) in
  Stream.map
    (fun u ->
      clock := !clock +. Rng.float rng (2.0 *. mean_gap);
      let ts = int_of_float !clock in
      let ts =
        if
          late_frac > 0.0 && late_max > 0
          && Update.is_addition u
          && Rng.bool rng late_frac
        then begin
          (* Cube of a uniform draw: dense near 0, thin tail at late_max. *)
          let r = Rng.float rng 1.0 in
          max start (ts - int_of_float (float_of_int late_max *. (r *. r *. r)))
        end
        else ts
      in
      Update.with_ts u ts)
    stream
