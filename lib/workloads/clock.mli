(** Event-time stamping for generated streams.

    The workload generators produce untimed update sequences (every
    [Update.ts] is [0]).  [stamp] overlays an event-time axis as a
    post-pass: a monotone clock advances by a uniform gap per update, and
    an optional fraction of additions is stamped {e late} — their event
    time is pulled backwards while their arrival position is unchanged,
    modelling out-of-order delivery.  Lateness is skewed: most late
    events are only slightly late, with a thin tail out to [late_max]
    (the shape a watermark slack has to absorb).

    Stamping draws from its own generator derived from [seed], so the
    edge sequence of a generated stream is bit-identical with and
    without timestamps. *)

val stamp :
  ?start:int ->
  ?mean_gap:float ->
  ?late_frac:float ->
  ?late_max:int ->
  seed:int ->
  Tric_graph.Stream.t ->
  Tric_graph.Stream.t
(** [stamp ~seed s] returns [s] with every update timestamped.  The
    clock starts at [start] (default [0]) and advances by a uniform gap
    in [0, 2 * mean_gap] seconds per update (default [mean_gap = 1.0]).
    With probability [late_frac] (default [0.0]) an addition keeps its
    arrival position but its event time is pulled back by up to
    [late_max] seconds (default [600]), cube-skewed towards small
    lateness; timestamps never go below [start].  Removals are never
    stamped late — a removal's event time is the moment the edge died.
    @raise Invalid_argument if [mean_gap < 0.0], [late_frac] is outside
    [\[0, 1\]] or [late_max < 0]. *)
