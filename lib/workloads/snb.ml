open Tric_graph

let edge_labels =
  [
    "knows"; "hasMod"; "posted"; "containedIn"; "hasTag"; "hasCreator"; "reply";
    "likes"; "checksIn"; "hasInterest";
  ]

type state = {
  rng : Rng.t;
  mutable persons : int;
  mutable forums : int;
  mutable posts : int;
  mutable comments : int;
  mutable created : int; (* vertices introduced so far *)
  mutable out : Update.t list; (* reversed *)
  mutable emitted : int;
  budget : int;
}

let places = 40
let tags = 120

let person i = Printf.sprintf "P%d" i
let forum i = Printf.sprintf "forum%d" i
let post i = Printf.sprintf "post%d" i
let comment i = Printf.sprintf "com%d" i
let place i = Printf.sprintf "plc%d" i
let tag i = Printf.sprintf "tag%d" i

(* Vertex population follows the paper's measured SNB growth (Fig. 12(a)
   and 13(a) axes): |GV| ~ 1.8 * |GE|^0.9 — 57K vertices at 100K edges,
   452K at 1M (paper: 463K), 3.6M at 10M (paper: 3.5M). *)
let target_vertices e = int_of_float (1.8 *. (float_of_int (max 1 e) ** 0.9))

let emit st label src dst =
  if st.emitted < st.budget then begin
    st.out <- Update.add (Edge.of_strings label src dst) :: st.out;
    st.emitted <- st.emitted + 1
  end

(* Zipf-skewed entity choice: low indexes (early users/forums) are the
   popular ones. *)
let some_person st = person (Rng.zipf st.rng ~n:st.persons ~s:0.8)

(* Recency-biased post choice: interactions target recent content. *)
let recent_post st =
  let age = Rng.zipf st.rng ~n:st.posts ~s:1.2 in
  post (st.posts - 1 - age)

let new_person st =
  let p = person st.persons in
  st.persons <- st.persons + 1;
  st.created <- st.created + 1;
  emit st "knows" p (some_person st);
  if Rng.bool st.rng 0.3 then emit st "hasInterest" p (tag (Rng.int st.rng tags))

let new_forum st =
  let f = forum st.forums in
  st.forums <- st.forums + 1;
  st.created <- st.created + 1;
  emit st "hasMod" f (some_person st)

let post_event st =
  let p = some_person st in
  let po = post st.posts in
  st.posts <- st.posts + 1;
  st.created <- st.created + 1;
  emit st "posted" p po;
  emit st "containedIn" po (forum (Rng.zipf st.rng ~n:st.forums ~s:1.1));
  if Rng.bool st.rng 0.3 then emit st "hasTag" po (tag (Rng.zipf st.rng ~n:tags ~s:1.0))

let comment_event st =
  if st.posts > 0 then begin
    let c = comment st.comments in
    st.comments <- st.comments + 1;
    st.created <- st.created + 1;
    emit st "hasCreator" c (some_person st);
    emit st "reply" c (recent_post st)
  end

let like_event st = if st.posts > 0 then emit st "likes" (some_person st) (recent_post st)
let knows_event st = emit st "knows" (some_person st) (some_person st)

let checkin_event st =
  emit st "checksIn" (some_person st) (place (Rng.zipf st.rng ~n:places ~s:1.0))

let generate ~seed ~edges =
  let st =
    {
      rng = Rng.create seed;
      persons = 0;
      forums = 0;
      posts = 0;
      comments = 0;
      created = 0;
      out = [];
      emitted = 0;
      budget = edges;
    }
  in
  (* Bootstrap population. *)
  st.persons <- 10;
  st.forums <- 3;
  st.created <- 13;
  for i = 0 to 2 do
    emit st "hasMod" (forum i) (person i)
  done;
  while st.emitted < st.budget do
    if st.created < target_vertices st.emitted then begin
      (* Growth phase: introduce a vertex. *)
      let roll = Rng.int st.rng 100 in
      if roll < 18 then new_person st
      else if roll < 20 then new_forum st
      else if roll < 70 then post_event st
      else comment_event st
    end
    else begin
      (* Interaction phase: activity among existing entities. *)
      let roll = Rng.int st.rng 100 in
      if roll < 40 then like_event st
      else if roll < 65 then knows_event st
      else if roll < 80 then checkin_event st
      else if roll < 90 then comment_event st
      else post_event st
    end
  done;
  Stream.of_updates (List.rev st.out)

let generate_timed ?start ?mean_gap ?late_frac ?late_max ~seed ~edges () =
  Clock.stamp ?start ?mean_gap ?late_frac ?late_max ~seed (generate ~seed ~edges)
