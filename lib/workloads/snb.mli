(** SNB-like social-network activity stream.

    A deterministic stand-in for the LDBC Social Network Benchmark data
    generator (§6.1): simulates the evolution of a social graph through
    person/forum/post/comment/place/tag activity, with Zipf-skewed actor
    popularity and recency-biased interaction targets.  The stream-level
    characteristics the paper's experiments consume — label schema, label
    frequency skew, vertex/edge growth ratio (|GV| ≈ 0.57 |GE| at 100K
    edges) — match the SNB configurations used in the paper. *)

val edge_labels : string list
(** The schema: knows, hasMod, posted, containedIn, hasTag, hasCreator,
    reply, likes, checksIn, hasInterest. *)

val generate : seed:int -> edges:int -> Tric_graph.Stream.t
(** An addition-only stream of exactly [edges] updates. *)

val generate_timed :
  ?start:int ->
  ?mean_gap:float ->
  ?late_frac:float ->
  ?late_max:int ->
  seed:int ->
  edges:int ->
  unit ->
  Tric_graph.Stream.t
(** [generate] with an event-time axis overlaid by {!Clock.stamp}: same
    edge sequence bit-for-bit, every update timestamped, an optional
    skewed-late fraction for watermark-slack experiments. *)
