(** NYC-taxi-like ride event stream.

    A deterministic stand-in for the DEBS 2015 Grand Challenge taxi data
    (§6.1): each ride event creates a ride vertex connected to its
    medallion, (sometimes) driver license, Zipf-skewed pickup and drop-off
    zones and payment type.  Few edge labels, heavy zone skew, vertex/edge
    ratio ≈ 0.28 — as in the paper's TAXI configuration. *)

val edge_labels : string list
(** drove, operated, pickedUpAt, droppedOffAt, paidWith. *)

val generate : seed:int -> edges:int -> Tric_graph.Stream.t

val generate_timed :
  ?start:int ->
  ?mean_gap:float ->
  ?late_frac:float ->
  ?late_max:int ->
  seed:int ->
  edges:int ->
  unit ->
  Tric_graph.Stream.t
(** [generate] with an event-time axis overlaid by {!Clock.stamp}: same
    edge sequence bit-for-bit, every update timestamped, an optional
    skewed-late fraction for watermark-slack experiments. *)
