open Tric_graph
open Tric_query

type config = {
  qdb : int;
  avg_len : int;
  selectivity : float;
  overlap : float;
  const_prob : float;
}

let default =
  { qdb = 5000; avg_len = 5; selectivity = 0.25; overlap = 0.35; const_prob = 0.4 }

(* Intermediate pattern representation: edges over terms, in path order
   where relevant.  Easy to mutate (for the unsatisfiable transform) and
   to share prefixes of (for overlap). *)
type proto = (Label.t * Term.t * Term.t) list

let build ~id (proto : proto) =
  let b = Pattern.Builder.create ~id () in
  List.iter
    (fun (label, s, d) ->
      let sv = Pattern.Builder.vertex b s and dv = Pattern.Builder.vertex b d in
      Pattern.Builder.edge b ~label sv dv)
    proto;
  Pattern.Builder.build b

(* Overlap pools. *)
type pool = {
  mutable chains : (Edge.t list * proto) list; (* concrete prefix + its proto *)
  mutable stars : (Label.t * Term.t) list; (* concrete center + its term *)
  mutable cycles : proto list;
}

let term_of_vertex rng ~const_prob ~pos v =
  if Rng.bool rng const_prob then Term.Const v else Term.var (Printf.sprintf "x%d" pos)

(* Random directed walk of up to [len] edges: extend forward from a random
   edge, then backward if the forward walk got stuck early.  Never reuses
   an edge. *)
let random_walk rng g edges_arr len =
  let first = Rng.pick rng edges_arr in
  let used = ref [ first ] in
  let fresh candidates = List.filter (fun e -> not (List.exists (Edge.equal e) !used)) candidates in
  let rec forward (last : Edge.t) acc n =
    if n <= 0 then acc
    else
      match fresh (Graph.out_edges g last.dst) with
      | [] -> acc
      | candidates ->
        let e = Rng.pick_list rng candidates in
        used := e :: !used;
        forward e (e :: acc) (n - 1)
  in
  let rec backward (first : Edge.t) acc n =
    if n <= 0 then acc
    else
      match fresh (Graph.in_edges g first.src) with
      | [] -> acc
      | candidates ->
        let e = Rng.pick_list rng candidates in
        used := e :: !used;
        backward e (e :: acc) (n - 1)
  in
  let fwd = List.rev (forward first [ first ] (len - 1)) in
  let missing = len - List.length fwd in
  if missing <= 0 then fwd
  else
    match fwd with
    | [] -> assert false
    | head :: _ -> backward head [] missing @ fwd

(* Assign terms to a concrete walk: endpoints keep constants with
   [const_prob], intermediates are mostly variables — but at most
   [max_vars] vertices per query stay variables (beyond that, vertices are
   pinned to their concrete label), bounding the homomorphism count the
   way the paper's SNB-derived query templates do.  Repeated concrete
   vertices reuse their first term so the proto stays satisfiable as
   planted. *)
let max_vars = 3

let proto_of_walk rng ~const_prob (walk : Edge.t list) : proto =
  let n = List.length walk in
  let vertices =
    match walk with
    | [] -> invalid_arg "proto_of_walk: empty walk"
    | first :: _ -> first.src :: List.map (fun (e : Edge.t) -> e.dst) walk
  in
  let assigned : (Label.t * Term.t) list ref = ref [] in
  let vars = ref 0 in
  let terms =
    List.mapi
      (fun pos v ->
        match List.find_opt (fun (l, _) -> Label.equal l v) !assigned with
        | Some (_, t) -> t
        | None ->
          let p = if pos = 0 || pos = n then const_prob else 0.35 in
          let t =
            if !vars >= max_vars then Term.Const v
            else term_of_vertex rng ~const_prob:p ~pos v
          in
          (match t with Term.Var _ -> incr vars | Term.Const _ -> ());
          assigned := (v, t) :: !assigned;
          t)
      vertices
  in
  let terms = Array.of_list terms in
  (* Keep the chain anchored: a prefix of two unconstrained hops over hub
     labels materializes quadratically many chains (in this engine and in
     any view-based one), so if the first two vertices are both variables,
     pin the head to its concrete label. *)
  (match walk with
  | first :: _ ->
    if Array.length terms >= 2 && Term.is_var terms.(0) && Term.is_var terms.(1) then
      terms.(0) <- Term.Const first.src
  | [] -> ());
  List.mapi (fun i (e : Edge.t) -> (e.label, terms.(i), terms.(i + 1))) walk

let gen_chain rng g edges_arr ~len ~const_prob pool ~reuse =
  let reuse_entry =
    if reuse && pool.chains <> [] then Some (Rng.pick_list rng pool.chains) else None
  in
  match reuse_entry with
  | Some (prefix_walk, prefix_proto) ->
    (* Continue the pooled concrete prefix forward with fresh structure. *)
    let keep = max 1 (List.length prefix_walk / 2) in
    let prefix_walk = List.filteri (fun i _ -> i < keep) prefix_walk in
    let prefix_proto = List.filteri (fun i _ -> i < keep) prefix_proto in
    let last = List.nth prefix_walk (keep - 1) in
    let rec continue_from (v : Label.t) acc n used =
      if n <= 0 then List.rev acc
      else
        match
          List.filter
            (fun (e : Edge.t) -> not (List.exists (Edge.equal e) used))
            (Graph.out_edges g v)
        with
        | [] -> List.rev acc
        | candidates ->
          let e = Rng.pick_list rng candidates in
          continue_from e.dst (e :: acc) (n - 1) (e :: used)
    in
    let continuation = continue_from last.dst [] (len - keep) prefix_walk in
    let cont_proto =
      match continuation with
      | [] -> []
      | _ ->
        (* Terms for the continuation: the hinge is the prefix's last term;
           later vertices get fresh decisions offset past the prefix. *)
        let hinge_term =
          match List.rev prefix_proto with (_, _, d) :: _ -> d | [] -> assert false
        in
        let n = List.length continuation in
        let rec terms_for i prev acc = function
          | [] -> List.rev acc
          | (e : Edge.t) :: tl ->
            let p = if i = n - 1 then const_prob else 0.35 in
            let t = term_of_vertex rng ~const_prob:p ~pos:(100 + keep + i) e.dst in
            terms_for (i + 1) t ((e.label, prev, t) :: acc) tl
        in
        terms_for 0 hinge_term [] continuation
    in
    (prefix_proto @ cont_proto, [])
  | None ->
    let walk = random_walk rng g edges_arr len in
    let proto = proto_of_walk rng ~const_prob walk in
    pool.chains <- (walk, proto) :: pool.chains;
    (proto, [])

let gen_star rng g edges_arr ~len ~const_prob pool ~reuse =
  let center, center_term =
    if reuse && pool.stars <> [] then Rng.pick_list rng pool.stars
    else begin
      (* Sample for a well-connected vertex. *)
      let best = ref (Rng.pick rng edges_arr).Edge.src in
      for _ = 1 to 15 do
        let v = (Rng.pick rng edges_arr).Edge.src in
        if Graph.out_degree g v + Graph.in_degree g v
           > Graph.out_degree g !best + Graph.in_degree g !best
        then best := v
      done;
      let term =
        if Rng.bool rng 0.5 then Term.Const !best else Term.var "c"
      in
      pool.stars <- (!best, term) :: pool.stars;
      (!best, term)
    end
  in
  let incident =
    Array.of_list (Graph.out_edges g center @ Graph.in_edges g center)
  in
  Rng.shuffle rng incident;
  let take = min len (Array.length incident) in
  let proto = ref [] in
  (* At most two leaves stay variables: a star with many unconstrained
     leaves around a popular vertex matches combinatorially many
     homomorphisms. *)
  let var_leaves = ref 0 in
  let leaf_term pos v =
    if !var_leaves >= 2 then Term.Const v
    else begin
      let t = term_of_vertex rng ~const_prob:(max const_prob 0.6) ~pos v in
      (match t with Term.Var _ -> incr var_leaves | Term.Const _ -> ());
      t
    end
  in
  for i = 0 to take - 1 do
    let e = incident.(i) in
    if Label.equal e.src center then
      proto := (e.label, center_term, leaf_term (i + 1) e.dst) :: !proto
    else proto := (e.label, leaf_term (i + 1) e.src, center_term) :: !proto
  done;
  (List.rev !proto, [])

let gen_cycle rng g edges_arr ~len pool ~reuse =
  if reuse && pool.cycles <> [] then (Rng.pick_list rng pool.cycles, [])
  else begin
    let walk = random_walk rng g edges_arr (max 1 (len - 1)) in
    let first = List.hd walk and last = List.nth walk (List.length walk - 1) in
    let close_label = (Rng.pick_list rng walk).Edge.label in
    let closing = Edge.make ~label:close_label ~src:last.dst ~dst:first.src in
    let planted = if Graph.mem_edge g closing then [] else [ closing ] in
    let k = List.length walk in
    (* Long all-variable cycles materialize every closed walk of the label
       word — anchor most cycles (and every long one) at their planted
       start vertex, as realistic "cycles through entity X" subscriptions
       do. *)
    let anchored = k + 1 > 3 || Rng.bool rng 0.6 in
    let term i =
      let i = if i = k + 1 then 0 else i in
      if i = 0 && anchored then Term.Const first.src
      else Term.var (Printf.sprintf "x%d" i)
    in
    let proto =
      List.mapi (fun i (e : Edge.t) -> (e.label, term i, term (i + 1))) walk
      @ [ (close_label, term k, term 0) ]
    in
    pool.cycles <- proto :: pool.cycles;
    (proto, planted)
  end

(* Redirect the last edge of the proto to a fresh constant that never
   occurs in any stream, making the query unsatisfiable while leaving its
   other edges realistic (they still get affected by updates).  Only the
   last edge's target is safe to redirect: a middle vertex may be the
   hinge connecting the pattern, and replacing it would split the query
   into components and strip its selective anchor. *)
let make_unsatisfiable _rng proto =
  let absent = Term.Const (Label.fresh "absent") in
  let n = List.length proto in
  List.mapi (fun i (l, s, d) -> if i = n - 1 then (l, s, absent) else (l, s, d)) proto

let generate rng ~graph ~config ~first_id =
  let edges_arr = Array.of_list (Graph.edges graph) in
  if Array.length edges_arr = 0 then invalid_arg "Querygen.generate: empty graph";
  let pool = { chains = []; stars = []; cycles = [] } in
  let planted = ref [] in
  let patterns = ref [] in
  for i = 0 to config.qdb - 1 do
    let len = max 1 (config.avg_len - 1 + Rng.int rng 3) in
    let reuse = Rng.bool rng config.overlap in
    let const_prob = config.const_prob in
    let proto, extra =
      match Rng.int rng 3 with
      | 0 -> gen_chain rng graph edges_arr ~len ~const_prob pool ~reuse
      | 1 -> gen_star rng graph edges_arr ~len ~const_prob pool ~reuse
      | _ -> gen_cycle rng graph edges_arr ~len pool ~reuse
    in
    let satisfiable = Rng.bool rng config.selectivity in
    let proto = if satisfiable then proto else make_unsatisfiable rng proto in
    planted := extra @ !planted;
    patterns := build ~id:(first_id + i) proto :: !patterns
  done;
  (List.rev !patterns, List.rev !planted)
