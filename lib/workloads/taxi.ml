open Tric_graph

let edge_labels = [ "drove"; "operated"; "pickedUpAt"; "droppedOffAt"; "paidWith" ]

let zones = 260 (* NYC taxi zone count, roughly *)
let paytypes = [| "cash"; "card"; "disputed"; "noCharge" |] (* check: allow toplevel-mutable — read-only constant table, never written *)

let zone i = Printf.sprintf "zone%d" i
let medallion i = Printf.sprintf "med%d" i
let license i = Printf.sprintf "lic%d" i
let ride i = Printf.sprintf "ride%d" i

(* Vertex population follows the paper's TAXI axes (Fig. 14(a)): |GV| ~
   4.4 * |GE|^0.8 — 44K vertices at 100K edges, 280K at 1M.  Rides provide
   the baseline growth; the fleet (medallions and licenses) absorbs the
   remaining deficit, which is largest early in the stream. *)
let target_vertices e = int_of_float (4.4 *. (float_of_int (max 1 e) ** 0.8))

let generate ~seed ~edges =
  let rng = Rng.create seed in
  let out = ref [] in
  let emitted = ref 0 in
  let emit label src dst =
    if !emitted < edges then begin
      out := Update.add (Edge.of_strings label src dst) :: !out;
      incr emitted
    end
  in
  let medallions = ref 40 and licenses = ref 60 and rides = ref 0 in
  let created = ref (!medallions + !licenses) in
  while !emitted < edges do
    (* Fleet growth absorbs the vertex deficit beyond one ride per event. *)
    if !created + 1 < target_vertices !emitted then
      if Rng.bool rng 0.5 then begin
        incr medallions;
        incr created
      end
      else begin
        incr licenses;
        incr created
      end;
    let r = ride !rides in
    incr rides;
    incr created;
    let m = medallion (Rng.zipf rng ~n:!medallions ~s:0.8) in
    emit "drove" m r;
    emit "pickedUpAt" r (zone (Rng.zipf rng ~n:zones ~s:1.05));
    emit "droppedOffAt" r (zone (Rng.zipf rng ~n:zones ~s:1.05));
    if Rng.bool rng 0.7 then emit "operated" (license (Rng.zipf rng ~n:!licenses ~s:0.8)) r;
    if Rng.bool rng 0.35 then emit "paidWith" r (Rng.pick rng paytypes)
  done;
  Stream.of_updates (List.rev !out)

let generate_timed ?start ?mean_gap ?late_frac ?late_max ~seed ~edges () =
  Clock.stamp ?start ?mean_gap ?late_frac ?late_max ~seed (generate ~seed ~edges)
