(** Graph updates (Definition 3.2, extended with deletions per §4.3 and
    event timestamps for time-based windows).

    An update is an edge operation plus an event timestamp [ts] (seconds,
    application-defined epoch).  Timestamps default to [0] — untimed
    streams behave exactly as before; only time-windowed engines consult
    them. *)

type op =
  | Add of Edge.t
  | Remove of Edge.t

type t = { op : op; ts : int }

val add : ?ts:int -> Edge.t -> t
val remove : ?ts:int -> Edge.t -> t

val edge : t -> Edge.t
(** The edge an update carries, regardless of polarity. *)

val is_addition : t -> bool

val ts : t -> int
(** The event timestamp ([0] for untimed streams). *)

val with_ts : t -> int -> t

val apply : Graph.t -> t -> bool
(** Apply to a graph; returns whether the graph changed. *)

val equal : t -> t -> bool
(** Equality of polarity, edge {e and} timestamp. *)

val pp : Format.formatter -> t -> unit
(** [+e] / [-e], with an [@ts] suffix when [ts <> 0]. *)
