type op =
  | Add of Edge.t
  | Remove of Edge.t

type t = { op : op; ts : int }

let add ?(ts = 0) e = { op = Add e; ts }
let remove ?(ts = 0) e = { op = Remove e; ts }
let edge u = match u.op with Add e | Remove e -> e
let is_addition u = match u.op with Add _ -> true | Remove _ -> false
let ts u = u.ts
let with_ts u ts = { u with ts }

let apply g u =
  match u.op with
  | Add e -> Graph.add_edge g e
  | Remove e -> Graph.remove_edge g e

let equal a b =
  Int.equal a.ts b.ts
  &&
  match (a.op, b.op) with
  | Add x, Add y | Remove x, Remove y -> Edge.equal x y
  | Add _, Remove _ | Remove _, Add _ -> false

let pp fmt u =
  (match u.op with
  | Add e -> Format.fprintf fmt "+%a" Edge.pp e
  | Remove e -> Format.fprintf fmt "-%a" Edge.pp e);
  if u.ts <> 0 then Format.fprintf fmt "@@%d" u.ts
