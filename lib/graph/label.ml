type t = int

(* Global intern table — the one sanctioned piece of module-level mutable
   state.  Interning happens exclusively on the main domain (parsing and
   query registration); shard tasks only read already-interned ints, so
   no synchronisation is needed.  See DESIGN.md "Sharding". *)
let by_string : (string, int) Hashtbl.t = Hashtbl.create 4096 (* lint: allow; check: allow toplevel-mutable — interner, main domain only *)
let names : string array ref = ref (Array.make 4096 "") (* lint: allow; check: allow toplevel-mutable — interner, main domain only *)
let next = ref 0 (* lint: allow; check: allow toplevel-mutable — interner, main domain only *)

let intern s =
  match Hashtbl.find_opt by_string s with
  | Some id -> id
  | None ->
    let id = !next in
    incr next;
    if id >= Array.length !names then begin
      let bigger = Array.make (2 * Array.length !names) "" in
      Array.blit !names 0 bigger 0 (Array.length !names);
      names := bigger
    end;
    !names.(id) <- s;
    Hashtbl.add by_string s id;
    id

let to_string l = !names.(l)
let to_int l = l

let of_int i =
  if i < 0 || i >= !next then invalid_arg "Label.of_int: not interned";
  i

let fresh_counter = ref 0 (* lint: allow; check: allow toplevel-mutable — interner, main domain only *)

let rec fresh prefix =
  let candidate = Printf.sprintf "%s#%d" prefix !fresh_counter in
  incr fresh_counter;
  if Hashtbl.mem by_string candidate then fresh prefix else intern candidate

let count () = !next
let equal (a : t) b = a = b
let compare (a : t) b = Int.compare a b
let hash (l : t) = l land max_int
let pp fmt l = Format.pp_print_string fmt (to_string l)

module Key = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
  let compare = compare
end

module Tbl = Hashtbl.Make (Key)
module Set = Set.Make (Key)
module Map = Map.Make (Key)
