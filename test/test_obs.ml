(* Telemetry subsystem tests: histogram percentile semantics, registry
   get-or-create and deterministic merging, span ring behaviour (including
   the zero-allocation disabled mode), JSON round-trips, snapshot exports,
   and the cross-shard stable-metrics differential. *)

module O = Tric_obs
module E = Tric_engine

(* -- Histogram --------------------------------------------------------------- *)

(* The exact-mode percentile must reproduce the Runner's historical
   interpolation byte-for-byte — same expectations as the Runner's own
   latency-statistics test. *)
let test_hist_exact_percentiles () =
  let h = O.Histogram.create () in
  List.iter (O.Histogram.observe h) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (float 1e-12)) "p0" 1.0 (O.Histogram.percentile h 0.0);
  Alcotest.(check (float 1e-12)) "p50" 2.5 (O.Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-12)) "p95" 3.85 (O.Histogram.percentile h 95.0);
  Alcotest.(check (float 1e-12)) "p100" 4.0 (O.Histogram.percentile h 100.0);
  let empty = O.Histogram.create () in
  Alcotest.(check (float 1e-12)) "empty" 0.0 (O.Histogram.percentile empty 95.0);
  let single = O.Histogram.create () in
  O.Histogram.observe single 7.0;
  Alcotest.(check (float 1e-12)) "singleton" 7.0 (O.Histogram.percentile single 95.0);
  Alcotest.(check bool) "still exact" true (O.Histogram.is_exact h);
  Alcotest.(check int) "count" 4 (O.Histogram.count h);
  Alcotest.(check (float 1e-12)) "sum" 10.0 (O.Histogram.sum h);
  Alcotest.(check (float 1e-12)) "min" 1.0 (O.Histogram.min_value h);
  Alcotest.(check (float 1e-12)) "max" 4.0 (O.Histogram.max_value h);
  Alcotest.(check (float 1e-12)) "mean" 2.5 (O.Histogram.mean h)

let prop_hist_exact_matches_runner =
  QCheck2.Test.make ~count:200
    ~name:"exact-mode histogram percentile = Runner.percentile"
    QCheck2.Gen.(
      pair (list_size (int_range 0 60) (float_bound_inclusive 100.0)) (float_bound_inclusive 1.0))
    (fun (xs, q) ->
      let h = O.Histogram.create ~lo:1e-3 () in
      List.iter (O.Histogram.observe h) xs;
      let sorted = Array.of_list (List.sort Float.compare xs) in
      let a = O.Histogram.percentile h (q *. 100.0) in
      let b = E.Runner.percentile sorted q in
      Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs b))

let test_hist_bucket_mode () =
  let h = O.Histogram.create ~buckets:32 ~lo:1e-3 ~growth:2.0 ~exact_cap:4 () in
  let st = Helpers.rng 11 in
  for _ = 1 to 500 do
    O.Histogram.observe h (Random.State.float st 10.0 +. 0.001)
  done;
  Alcotest.(check bool) "overflowed exact buffer" false (O.Histogram.is_exact h);
  Alcotest.(check int) "count" 500 (O.Histogram.count h);
  let prev = ref (O.Histogram.percentile h 0.0) in
  List.iter
    (fun q ->
      let v = O.Histogram.percentile h q in
      if v < !prev then Alcotest.failf "percentile not monotone at q=%.0f" q;
      if v < O.Histogram.min_value h -. 1e-12 || v > O.Histogram.max_value h +. 1e-12
      then Alcotest.failf "percentile %.0f outside observed range" q;
      prev := v)
    [ 10.0; 25.0; 50.0; 75.0; 90.0; 99.0; 100.0 ]

let test_hist_merge () =
  let mk () = O.Histogram.create ~buckets:16 ~lo:0.5 ~growth:2.0 ~exact_cap:8 () in
  let a = mk () and b = mk () in
  List.iter (O.Histogram.observe a) [ 1.0; 2.0 ];
  List.iter (O.Histogram.observe b) [ 3.0; 4.0; 5.0 ];
  let ab = mk () and ba = mk () in
  O.Histogram.merge_into ~dst:ab a;
  O.Histogram.merge_into ~dst:ab b;
  O.Histogram.merge_into ~dst:ba b;
  O.Histogram.merge_into ~dst:ba a;
  Alcotest.(check int) "merged count" 5 (O.Histogram.count ab);
  Alcotest.(check (float 1e-12)) "merged sum" 15.0 (O.Histogram.sum ab);
  Alcotest.(check bool) "exactness preserved when both fit" true (O.Histogram.is_exact ab);
  (* Order-independence of every percentile (commutativity). *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "p%.0f order-independent" q)
        (O.Histogram.percentile ab q) (O.Histogram.percentile ba q))
    [ 0.0; 50.0; 95.0; 100.0 ];
  let other = O.Histogram.create ~buckets:8 ~lo:0.5 ~growth:2.0 () in
  Alcotest.check_raises "layout mismatch"
    (Invalid_argument "Histogram.merge_into: incompatible bucket layouts") (fun () ->
      O.Histogram.merge_into ~dst:other a)

(* -- Registry ---------------------------------------------------------------- *)

let test_registry_get_or_create () =
  let reg = O.Registry.create () in
  let c1 = O.Registry.counter reg "requests_total" in
  let c2 = O.Registry.counter reg "requests_total" in
  O.Registry.incr c1;
  O.Registry.add c2 2;
  Alcotest.(check int) "same cell" 3 (O.Registry.value c1);
  (match O.Registry.histogram reg "requests_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch not rejected");
  (match O.Registry.counter reg "1bad name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid name not rejected");
  let g = O.Registry.gauge reg "depth" in
  O.Registry.set g 4.5;
  Alcotest.(check (float 1e-12)) "gauge" 4.5 (O.Registry.gauge_value g);
  ignore (O.Registry.histogram reg "latency_seconds");
  let names = O.Registry.fold reg (fun acc name ~stable:_ _ -> name :: acc) [] in
  Alcotest.(check (list string)) "fold sorted"
    [ "depth"; "latency_seconds"; "requests_total" ]
    (List.rev names)

let test_registry_merge_commutative () =
  let mk seed =
    let reg = O.Registry.create () in
    let c = O.Registry.counter reg "ops_total" in
    O.Registry.add c (seed * 10);
    let h = O.Registry.histogram reg ~lo:1.0 ~growth:2.0 "fanout" in
    O.Histogram.observe_n h (float_of_int seed) (seed + 1);
    O.Registry.set (O.Registry.gauge reg "level") (float_of_int seed);
    reg
  in
  let a = mk 1 and b = mk 2 and c = mk 3 in
  let render regs =
    O.Json.to_string (O.Snapshot.to_json (O.Snapshot.of_registries regs))
  in
  Alcotest.(check string) "merge order-independent" (render [ a; b; c ])
    (render [ c; a; b ]);
  let merged = O.Snapshot.of_registries [ a; b; c ] in
  Alcotest.(check (option int)) "counters summed" (Some 60)
    (O.Snapshot.counter_value merged "ops_total")

(* -- Span recorder ----------------------------------------------------------- *)

let fake_clock () =
  let now = ref 0.0 in
  fun () ->
    now := !now +. 1.0;
    !now

let test_span_stages () =
  let t = O.Span.create ~capacity:4 ~clock:(fake_clock ()) () in
  let sp = O.Span.start t "add" in
  O.Span.stage t sp "scatter";
  O.Span.stage_dur t sp "shard0" 0.25;
  O.Span.stage t sp "join";
  match O.Span.spans t with
  | [ r ] ->
    Alcotest.(check string) "label" "add" r.O.Span.label;
    Alcotest.(check (list (pair string (float 1e-12))))
      "stages"
      [ ("scatter", 1.0); ("shard0", 0.25); ("join", 1.0) ]
      r.O.Span.stages;
    Alcotest.(check int) "nothing dropped" 0 r.O.Span.dropped
  | rs -> Alcotest.failf "expected one span, got %d" (List.length rs)

let test_span_wraparound () =
  let t = O.Span.create ~capacity:3 ~clock:(fake_clock ()) () in
  for i = 0 to 4 do
    let sp = O.Span.start t (Printf.sprintf "s%d" i) in
    O.Span.stage t sp "work"
  done;
  Alcotest.(check int) "total started" 5 (O.Span.total t);
  Alcotest.(check int) "dropped" 2 (O.Span.dropped t);
  let labels = List.map (fun r -> r.O.Span.label) (O.Span.spans t) in
  Alcotest.(check (list string)) "oldest-first window" [ "s2"; "s3"; "s4" ] labels;
  List.iter
    (fun (r : O.Span.recorded) ->
      Alcotest.(check int) "per-record dropped" 2 r.O.Span.dropped)
    (O.Span.spans t)

let test_span_stage_cap () =
  let t = O.Span.create ~capacity:2 ~max_stages:2 ~clock:(fake_clock ()) () in
  let sp = O.Span.start t "batch" in
  O.Span.stage t sp "a";
  O.Span.stage t sp "b";
  O.Span.stage t sp "c";
  match O.Span.spans t with
  | [ r ] ->
    Alcotest.(check (list string)) "stages beyond cap dropped" [ "a"; "b" ]
      (List.map fst r.O.Span.stages)
  | rs -> Alcotest.failf "expected one span, got %d" (List.length rs)

let test_span_disabled_zero_alloc () =
  let t = O.Span.create ~capacity:0 () in
  Alcotest.(check bool) "disabled" false (O.Span.enabled t);
  (* Warm up so any one-time allocation is out of the measured window. *)
  let sp0 = O.Span.start t "warm" in
  O.Span.stage t sp0 "w";
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    let sp = O.Span.start t "u" in
    O.Span.stage t sp "scatter";
    O.Span.stage_dur t sp "shard0" 1.0;
    O.Span.stage t sp "join"
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "disabled span path allocates nothing" 0.0 allocated;
  Alcotest.(check int) "nothing recorded" 0 (O.Span.total t);
  Alcotest.(check (list reject)) "no spans" [] (O.Span.spans t)

(* -- JSON -------------------------------------------------------------------- *)

let test_json_print_parse () =
  let open O.Json in
  Alcotest.(check string) "integral float" "3" (to_string (int 3));
  Alcotest.(check string) "fraction" "2.5" (to_string (Num 2.5));
  Alcotest.(check string) "escapes" "\"a\\\"b\\n\"" (to_string (Str "a\"b\n"));
  let doc =
    Obj
      [
        ("name", Str "x");
        ("vals", Arr [ int 1; Num 2.25; Bool true; Null ]);
        ("nested", Obj [ ("k", Str "über") ]);
      ]
  in
  (match parse (to_string doc) with
  | Ok doc' when doc' = doc -> ()
  | Ok _ -> Alcotest.fail "round-trip changed the document"
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e);
  (match parse (to_string ~pretty:true doc) with
  | Ok doc' when doc' = doc -> ()
  | Ok _ -> Alcotest.fail "pretty round-trip changed the document"
  | Error e -> Alcotest.failf "pretty round-trip failed: %s" e);
  (match parse "\"\\u0041\"" with
  | Ok (Str "A") -> ()
  | _ -> Alcotest.fail "unicode escape");
  List.iter
    (fun bad ->
      match parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed JSON %S" bad)
    [ "[1, 2,]"; "{\"a\": }"; "nul"; "{} trailing"; "\"unterminated"; "" ];
  match to_string (Num Float.nan) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "nan not rejected"

(* -- Snapshot exports -------------------------------------------------------- *)

let sample_registry () =
  let reg = O.Registry.create () in
  O.Registry.add (O.Registry.counter reg "updates_total") 7;
  O.Registry.set (O.Registry.gauge reg ~stable:false "queue_depth") 2.0;
  let h = O.Registry.histogram reg ~lo:1.0 ~growth:2.0 "fanout" in
  List.iter (O.Histogram.observe h) [ 1.0; 3.0; 9.0 ];
  reg

let test_snapshot_exports () =
  let snap = O.Snapshot.of_registry (sample_registry ()) in
  let doc = O.Snapshot.envelope ~engine:"TEST" snap in
  (match O.Snapshot.validate doc with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "expected 3 metrics, validator saw %d" n
  | Error e -> Alcotest.failf "self-produced envelope invalid: %s" e);
  (* The parse of the printed document validates identically. *)
  (match O.Json.parse (O.Json.to_string ~pretty:true doc) with
  | Ok doc' -> (
    match O.Snapshot.validate doc' with
    | Ok 3 -> ()
    | Ok n -> Alcotest.failf "reparsed envelope saw %d metrics" n
    | Error e -> Alcotest.failf "reparsed envelope invalid: %s" e)
  | Error e -> Alcotest.failf "printed envelope unparseable: %s" e);
  (match O.Snapshot.validate (O.Json.Obj [ ("schema", O.Json.Str "nope") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong schema accepted");
  (* The mem block round-trips and is schema-checked. *)
  let doc_mem =
    O.Snapshot.envelope ~engine:"TEST" ~mem:[| (128, 40, 3); (64, 10, 0) |] snap
  in
  (match O.Snapshot.validate doc_mem with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "mem envelope saw %d metrics" n
  | Error e -> Alcotest.failf "mem envelope invalid: %s" e);
  (match O.Json.member "mem" doc_mem with
  | Some (O.Json.Arr (first :: _)) ->
    Alcotest.(check (option string)) "mem slot shape"
      (Some "128")
      (Option.map
         (fun j -> O.Json.to_string j)
         (O.Json.member "arena_rows" first))
  | _ -> Alcotest.fail "mem block missing from envelope");
  (match
     O.Snapshot.validate
       (O.Json.Obj
          [
            ("schema", O.Json.Str "tric-metrics-v1");
            ("engine", O.Json.Str "TEST");
            ("mem", O.Json.Arr [ O.Json.Obj [ ("shard", O.Json.Num 0.0) ] ]);
            ("metrics", O.Json.Arr []);
          ])
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed mem slot accepted");
  (* An engine without a packed store omits the block entirely. *)
  (match O.Json.member "mem" (O.Snapshot.envelope ~engine:"TEST" ~mem:[||] snap) with
  | None -> ()
  | Some _ -> Alcotest.fail "empty mem array should be omitted");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  let prom = O.Snapshot.to_prometheus snap in
  List.iter
    (fun needle ->
      if not (contains needle prom) then
        Alcotest.failf "prometheus text missing %S:@.%s" needle prom)
    [
      "updates_total 7";
      "queue_depth 2";
      "fanout_bucket{le=\"1\"} 1";
      "fanout_bucket{le=\"+Inf\"} 3";
      "fanout_sum 13";
      "fanout_count 3";
    ];
  Alcotest.(check (option int)) "counter lookup" (Some 7)
    (O.Snapshot.counter_value snap "updates_total");
  let stable = O.Snapshot.stable_only snap in
  Alcotest.(check bool) "unstable gauge filtered" true
    (O.Snapshot.find stable "queue_depth" = None);
  Alcotest.(check bool) "stable counter kept" true
    (O.Snapshot.find stable "updates_total" <> None)

(* -- Engine integration ------------------------------------------------------ *)

let test_engine_metrics_smoke () =
  let engine = E.Engines.by_name ~shards:2 ~metrics:true "TRIC+" in
  Fun.protect
    ~finally:(fun () -> engine.E.Matcher.shutdown ())
    (fun () ->
      engine.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y -b-> ?z");
      engine.E.Matcher.add_query (Helpers.pattern ~id:2 "?x -b-> ?y");
      let updates =
        Helpers.updates [ "u -a-> v"; "v -b-> w"; "w -a-> u"; "u -b-> v" ]
      in
      let matches =
        List.fold_left
          (fun acc u ->
            acc
            + E.Report.total_matches (engine.E.Matcher.handle_update u))
          0 updates
      in
      ignore (engine.E.Matcher.handle_batch (Helpers.updates [ "x -a-> y"; "u -a-> v" ]));
      let snap = engine.E.Matcher.metrics () in
      let counter name =
        match O.Snapshot.counter_value snap name with
        | Some v -> v
        | None -> Alcotest.failf "missing counter %s" name
      in
      Alcotest.(check int) "updates counted" 6 (counter "tric_updates_total");
      Alcotest.(check int) "additions counted" 6 (counter "tric_additions_total");
      Alcotest.(check int) "no removals" 0 (counter "tric_removals_total");
      Alcotest.(check int) "one batch" 1 (counter "tric_batches_total");
      if counter "tric_matches_total" < matches then
        Alcotest.fail "matches_total below reported embeddings";
      if counter "tric_view_inserts_total" <= 0 then
        Alcotest.fail "no view inserts recorded";
      let spans = engine.E.Matcher.spans () in
      Alcotest.(check int) "one span per dispatch" 5 (List.length spans);
      List.iter
        (fun (r : O.Span.recorded) ->
          if not (List.mem r.O.Span.label [ "add"; "remove"; "batch" ]) then
            Alcotest.failf "unexpected span label %s" r.O.Span.label)
        spans;
      (* The batch span walks the documented stage sequence. *)
      let batch = List.find (fun r -> r.O.Span.label = "batch") spans in
      let stage_names = List.map fst batch.O.Span.stages in
      List.iter
        (fun s ->
          if not (List.mem s stage_names) then
            Alcotest.failf "batch span missing stage %s (has %s)" s
              (String.concat "," stage_names))
        [ "fold"; "scatter"; "gather"; "join" ])

let test_engine_metrics_off_is_empty () =
  let engine = E.Engines.by_name ~shards:1 ~metrics:false "TRIC+" in
  engine.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y");
  ignore (engine.E.Matcher.handle_update (Helpers.update "u -a-> v"));
  Alcotest.(check bool) "empty snapshot" true
    (engine.E.Matcher.metrics () = O.Snapshot.empty);
  Alcotest.(check (list reject)) "no spans" [] (engine.E.Matcher.spans ())

let test_invidx_metrics_smoke () =
  let engine = E.Engines.inv ~cache:true ~metrics:true () in
  engine.E.Matcher.add_query (Helpers.pattern ~id:1 "?x -a-> ?y");
  List.iter
    (fun u -> ignore (engine.E.Matcher.handle_update u))
    (Helpers.updates [ "u -a-> v"; "v -a-> w" ]);
  let snap = engine.E.Matcher.metrics () in
  Alcotest.(check (option int)) "inv updates" (Some 2)
    (O.Snapshot.counter_value snap "inv_updates_total");
  Alcotest.(check (option int)) "inv matches" (Some 2)
    (O.Snapshot.counter_value snap "inv_matches_total")

(* -- Cross-shard determinism (the acceptance differential) ------------------- *)

let prop_stable_metrics_shard_invariant =
  QCheck2.Test.make ~count:30
    ~name:"stable-metrics JSON identical at shards=1 and shards=4"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 3) Test_properties.gen_pattern_spec)
        Test_properties.gen_mixed_stream)
    (fun (qspecs, sspec) ->
      QCheck2.assume (List.for_all Test_properties.valid_spec qspecs);
      let queries =
        List.mapi
          (fun i spec ->
            match Test_properties.build_pattern ~id:(i + 1) spec with
            | q when Tric_query.Pattern.is_connected q -> Some q
            | _ -> None
            | exception Invalid_argument _ -> None)
          qspecs
        |> List.filter_map Fun.id
      in
      QCheck2.assume (queries <> []);
      let updates = Test_properties.updates_of_mixed sspec in
      (* Half the stream per-update, the rest as one micro-batch, so both
         dispatch paths feed the compared counters. *)
      let split = List.length updates / 2 in
      let head = List.filteri (fun i _ -> i < split) updates in
      let tail = List.filteri (fun i _ -> i >= split) updates in
      let run shards =
        let t = Tric_core.Tric.create ~cache:true ~shards ~metrics:true () in
        Fun.protect
          ~finally:(fun () -> Tric_core.Tric.shutdown t)
          (fun () ->
            List.iter (Tric_core.Tric.add_query t) queries;
            List.iter (fun u -> ignore (Tric_core.Tric.handle_update t u)) head;
            if tail <> [] then ignore (Tric_core.Tric.handle_batch t tail);
            O.Json.to_string
              (O.Snapshot.to_json (O.Snapshot.stable_only (Tric_core.Tric.metrics t))))
      in
      String.equal (run 1) (run 4))

let suite =
  [
    Alcotest.test_case "histogram exact percentiles" `Quick test_hist_exact_percentiles;
    Alcotest.test_case "histogram bucket mode" `Quick test_hist_bucket_mode;
    Alcotest.test_case "histogram merge" `Quick test_hist_merge;
    Alcotest.test_case "registry get-or-create" `Quick test_registry_get_or_create;
    Alcotest.test_case "registry merge commutative" `Quick test_registry_merge_commutative;
    Alcotest.test_case "span stages" `Quick test_span_stages;
    Alcotest.test_case "span ring wraparound" `Quick test_span_wraparound;
    Alcotest.test_case "span stage cap" `Quick test_span_stage_cap;
    Alcotest.test_case "span disabled = zero allocation" `Quick test_span_disabled_zero_alloc;
    Alcotest.test_case "json print/parse" `Quick test_json_print_parse;
    Alcotest.test_case "snapshot exports" `Quick test_snapshot_exports;
    Alcotest.test_case "engine metrics smoke" `Quick test_engine_metrics_smoke;
    Alcotest.test_case "metrics off = empty" `Quick test_engine_metrics_off_is_empty;
    Alcotest.test_case "invidx metrics smoke" `Quick test_invidx_metrics_smoke;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_hist_exact_matches_runner; prop_stable_metrics_shard_invariant ]
