(* Packed row-store tests: the Rows arena/freelist/packed-batch layer and
   the Relation machinery built on it (dedup table, swap-remove bucket
   hygiene, sorted-run merge join). *)

open Tric_graph
open Tric_rel

let l s = Label.intern s
let tup ss = Array.map l (Array.of_list ss) |> Tuple.make

let test_vec_swap_remove () =
  let v = Rows.Vec.create () in
  List.iter (Rows.Vec.push v) [ 10; 20; 30; 40 ];
  Alcotest.(check int) "length" 4 (Rows.Vec.length v);
  Rows.Vec.swap_remove v 0;
  (* Order is not part of the contract, only the surviving set. *)
  Alcotest.(check (list int)) "swap-remove keeps the rest" [ 20; 30; 40 ]
    (List.sort compare (Rows.Vec.to_list v));
  Alcotest.(check bool) "remove_value hit" true (Rows.Vec.remove_value v 30);
  Alcotest.(check bool) "remove_value miss" false (Rows.Vec.remove_value v 30);
  Alcotest.(check (list int)) "value removed" [ 20; 40 ]
    (List.sort compare (Rows.Vec.to_list v));
  Alcotest.check_raises "bounds" (Invalid_argument "Rows.Vec.swap_remove: index out of bounds")
    (fun () -> Rows.Vec.swap_remove v 5)

let test_arena_grow () =
  let a = Rows.create ~width:3 () in
  let n = 200 in
  (* Push far past any initial capacity; every row keeps its cells. *)
  let rows =
    List.init n (fun i ->
        let r = Rows.alloc a in
        Rows.set a r 0 i;
        Rows.set a r 1 (i * 7);
        Rows.set a r 2 (i + 1);
        r)
  in
  Alcotest.(check int) "live" n (Rows.live a);
  Alcotest.(check bool) "capacity grew" true (Rows.capacity a >= n);
  List.iteri
    (fun i r ->
      Alcotest.(check (list int)) "cells survive growth" [ i; i * 7; i + 1 ]
        (Array.to_list (Rows.read a r)))
    rows;
  Alcotest.(check (list (pair string string))) "grown arena audits clean" []
    (Rows.audit a);
  (* reserve makes room above the high-water mark without disturbing rows. *)
  Rows.reserve a 1000;
  Alcotest.(check bool) "reserved" true (Rows.capacity a >= n + 1000);
  Alcotest.(check (list int)) "rows intact after reserve" [ 0; 0; 1 ]
    (Array.to_list (Rows.read a (List.hd rows)))

let test_freelist_reuse () =
  let a = Rows.create ~width:2 () in
  let r0 = Rows.alloc a and r1 = Rows.alloc a in
  ignore (Rows.alloc a);
  Rows.free a r1;
  Rows.free a r0;
  Alcotest.(check int) "two freed" 2 (Rows.free_count a);
  let high = Rows.high_water a in
  let r' = Rows.alloc a in
  Alcotest.(check bool) "freed slot recycled" true (r' = r0 || r' = r1);
  Alcotest.(check int) "no new slot touched" high (Rows.high_water a);
  Alcotest.(check int) "freelist shrank" 1 (Rows.free_count a);
  Alcotest.check_raises "double free" (Invalid_argument "Rows.free: row not live")
    (fun () ->
      Rows.free a r';
      Rows.free a r');
  Alcotest.(check (list (pair string string))) "churned arena audits clean" []
    (Rows.audit a)

let test_packed_batches () =
  let a = Rows.create ~width:2 () in
  let v = Rows.Vec.create () in
  for i = 0 to 4 do
    let r = Rows.alloc a in
    Rows.set a r 0 i;
    Rows.set a r 1 (10 * i);
    Rows.Vec.push v r
  done;
  let p = Rows.pack a v in
  Alcotest.(check int) "packed count" 5 (Rows.packed_count p);
  Alcotest.(check int) "packed width" 2 (Rows.packed_width p);
  (* A packed batch is a standalone copy: freeing the source rows must not
     disturb it. *)
  Rows.Vec.iter (fun r -> Rows.free a r) v;
  for i = 0 to 4 do
    Alcotest.(check (list int)) "row copy" [ i; 10 * i ]
      (Array.to_list (Rows.packed_row p i))
  done;
  let q = Rows.packed_concat ~width:2 [ p; Rows.packed_empty ~width:2; p ] in
  Alcotest.(check int) "concat count" 10 (Rows.packed_count q);
  Alcotest.(check int) "concat tail" 40 (Rows.packed_get q 9 1);
  Alcotest.check_raises "concat width check"
    (Invalid_argument "Rows.packed_concat: width mismatch") (fun () ->
      ignore (Rows.packed_concat ~width:3 [ p ]))

let test_hash_compat () =
  (* Rows hashing must reproduce Tuple.hash exactly, so packed indexes and
     boxed tables bucket identically. *)
  let t = tup [ "a"; "b"; "c" ] in
  let a = Rows.create ~width:3 () in
  let r = Rows.alloc a in
  for i = 0 to Tuple.width t - 1 do
    Rows.set a r i (Label.to_int (Tuple.get t i))
  done;
  Alcotest.(check int) "hash_row = Tuple.hash" (Tuple.hash t) (Rows.hash_row a r)

let test_rows_corrupt_hooks () =
  let a = Rows.create ~width:2 () in
  let r = Rows.alloc a in
  Rows.set a r 0 1;
  Rows.set a r 1 2;
  Rows.free a r;
  ignore (Rows.alloc a);
  Alcotest.(check (list (pair string string))) "clean before corruption" []
    (Rows.audit a);
  Alcotest.(check bool) "leak applies" true (Rows.Corrupt.leak_live_row a);
  let classes = List.map fst (Rows.audit a) in
  Alcotest.(check bool) "leak detected" true (classes <> []);
  List.iter
    (fun c -> Alcotest.(check string) "leak class" "arena-integrity" c)
    classes;
  let b = Rows.create ~width:2 () in
  let r0 = Rows.alloc b in
  Rows.free b r0;
  Alcotest.(check bool) "lose applies" true (Rows.Corrupt.lose_free_slot b);
  let classes = List.map fst (Rows.audit b) in
  Alcotest.(check bool) "stranded slot detected" true (classes <> []);
  List.iter
    (fun c -> Alcotest.(check string) "strand class" "arena-integrity" c)
    classes

let test_relation_corrupt_hooks () =
  let mk () =
    let r = Relation.create ~cache:true ~width:2 () in
    ignore (Relation.insert_all r [ tup [ "a"; "b" ]; tup [ "a"; "c" ]; tup [ "x"; "y" ] ]);
    ignore (Relation.index_on r ~col:0 : Relation.probe);
    r
  in
  let classes rel = List.sort_uniq compare (List.map fst (Relation.audit rel)) in
  let r = mk () in
  Alcotest.(check (list string)) "clean" [] (classes r);
  Alcotest.(check bool) "leak applies" true (Relation.Corrupt.leak_arena_row r);
  Alcotest.(check (list string)) "leaked row -> arena-integrity" [ "arena-integrity" ]
    (classes r);
  let r = mk () in
  Alcotest.(check bool) "dangle applies" true (Relation.Corrupt.dangle_bucket_row r);
  Alcotest.(check (list string)) "dangling id -> arena-integrity" [ "arena-integrity" ]
    (classes r)

(* The sorted-run merge join must produce exactly the hash-probe join on
   the same pair of relations, for every cache mode. *)
let test_merge_join_equals_hash_probe () =
  let rand = Random.State.make [| 42 |] in
  let labels = Array.init 6 (fun i -> l (Printf.sprintf "l%d" i)) in
  let pick () = labels.(Random.State.int rand (Array.length labels)) in
  List.iter
    (fun cache ->
      let left = Relation.create ~cache ~width:3 () in
      let right = Relation.create ~cache ~width:2 () in
      for _ = 1 to 60 do
        ignore (Relation.insert left (Tuple.make [| pick (); pick (); pick () |]));
        ignore (Relation.insert right (Tuple.make [| pick (); pick () |]))
      done;
      (* Remove a few rows so the runs see freelist churn. *)
      let doomed =
        Relation.fold
          (fun t acc -> if Label.equal (Tuple.first t) labels.(0) then t :: acc else acc)
          left []
      in
      ignore (Relation.remove_all left doomed);
      let str t = Format.asprintf "%a" Tuple.pp t in
      let merged = ref [] in
      Relation.merge_join ~left ~lcol:2 ~right ~rcol:0 (fun lrow rrow ->
          merged :=
            (str (Relation.row_tuple left lrow), str (Relation.row_tuple right rrow))
            :: !merged);
      let probe = Relation.index_on right ~col:0 in
      let hashed = ref [] in
      Relation.iter
        (fun lt ->
          List.iter
            (fun rt -> hashed := (str lt, str rt) :: !hashed)
            (probe (Tuple.last lt)))
        left;
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "merge join = hash probe (cache:%b)" cache)
        (List.sort compare !hashed) (List.sort compare !merged))
    [ false; true ]

let test_row_level_inserts () =
  let base = Relation.create ~width:2 () in
  ignore (Relation.insert_edge_row base ~src:(l "a") ~dst:(l "b"));
  Alcotest.(check bool) "edge row dedups" true
    (Relation.insert_edge_row base ~src:(l "a") ~dst:(l "b") < 0);
  Alcotest.(check bool) "edge row live" true (Relation.mem base (tup [ "a"; "b" ]));
  let child = Relation.create ~width:3 () in
  let row =
    let found = ref (-1) in
    Relation.iter_rows (fun r -> found := r) base;
    !found
  in
  ignore (Relation.insert_extend child ~src:base ~row ~ext:(l "c"));
  Alcotest.(check bool) "extended tuple" true (Relation.mem child (tup [ "a"; "b"; "c" ]));
  Alcotest.check_raises "parent width check"
    (Invalid_argument "Relation.insert_extend: bad parent width") (fun () ->
      ignore (Relation.insert_extend child ~src:child ~row:0 ~ext:(l "d")))

let suite =
  [
    Alcotest.test_case "vec swap-remove hygiene" `Quick test_vec_swap_remove;
    Alcotest.test_case "arena growth" `Quick test_arena_grow;
    Alcotest.test_case "freelist reuse" `Quick test_freelist_reuse;
    Alcotest.test_case "packed batches" `Quick test_packed_batches;
    Alcotest.test_case "hash compatibility" `Quick test_hash_compat;
    Alcotest.test_case "rows corruption hooks" `Quick test_rows_corrupt_hooks;
    Alcotest.test_case "relation corruption hooks" `Quick test_relation_corrupt_hooks;
    Alcotest.test_case "merge join = hash probe" `Quick test_merge_join_equals_hash_probe;
    Alcotest.test_case "row-level inserts" `Quick test_row_level_inserts;
  ]
