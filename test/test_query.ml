(* Query model tests: patterns, parsing, edge keys, paths, covering-path
   extraction. *)

open Tric_graph
open Tric_query

let test_builder_unifies_terms () =
  let b = Pattern.Builder.create ~id:1 () in
  let x1 = Pattern.Builder.vertex b (Term.var "x") in
  let x2 = Pattern.Builder.vertex b (Term.var "x") in
  let c1 = Pattern.Builder.vertex b (Term.const "pst1") in
  let c2 = Pattern.Builder.vertex b (Term.const "pst1") in
  Alcotest.(check int) "same var unifies" x1 x2;
  Alcotest.(check int) "same const unifies" c1 c2;
  Pattern.Builder.edge b ~label:(Label.intern "a") x1 c1;
  let q = Pattern.Builder.build b in
  Alcotest.(check int) "two vertices" 2 (Pattern.num_vertices q);
  Alcotest.(check int) "one edge" 1 (Pattern.num_edges q)

let test_builder_validation () =
  let b = Pattern.Builder.create ~id:1 () in
  Alcotest.check_raises "no edges" (Invalid_argument "Pattern.Builder.build: pattern has no edges")
    (fun () -> ignore (Pattern.Builder.build b));
  let b = Pattern.Builder.create ~id:1 () in
  ignore (Pattern.Builder.vertex b (Term.var "lonely"));
  let x = Pattern.Builder.vertex b (Term.var "x") and y = Pattern.Builder.vertex b (Term.var "y") in
  Pattern.Builder.edge b ~label:(Label.intern "a") x y;
  Alcotest.check_raises "isolated vertex"
    (Invalid_argument "Pattern.Builder.build: vertex on no edge") (fun () ->
      ignore (Pattern.Builder.build b))

let test_parse_roundtrip () =
  let q = Parse.pattern ~id:3 "?x -a-> ?y -b-> \"quoted const\"; ?x -c-> k9" in
  Alcotest.(check int) "edges" 3 (Pattern.num_edges q);
  Alcotest.(check int) "vertices" 4 (Pattern.num_vertices q);
  Alcotest.(check bool) "connected" true (Pattern.is_connected q);
  Alcotest.check_raises "garbage" (Parse.Syntax_error "clause must start with a term in \"-a-> ?y\"")
    (fun () -> ignore (Parse.pattern ~id:4 "-a-> ?y"));
  (match (Parse.update "- x -a-> y").Update.op with
  | Update.Remove _ -> ()
  | Update.Add _ -> Alcotest.fail "expected removal");
  match (Parse.update "x -a-> y").Update.op with
  | Update.Add _ -> ()
  | Update.Remove _ -> Alcotest.fail "expected addition"

let test_ekey_generalisations () =
  let e = Edge.of_strings "a" "s" "t" in
  let keys = Ekey.keys_of_edge e in
  Alcotest.(check int) "four keys" 4 (List.length keys);
  List.iter
    (fun k -> Alcotest.(check bool) "edge matches own keys" true (Ekey.matches k e))
    keys;
  let other = Edge.of_strings "a" "s" "other" in
  let matching = List.filter (fun k -> Ekey.matches k other) keys in
  (* (a,s,?) and (a,?,?) still match; (a,s,t) and (a,?,t) don't. *)
  Alcotest.(check int) "two generalisations survive" 2 (List.length matching);
  Alcotest.(check int) "all distinct" 4 (List.length (List.sort_uniq Ekey.compare keys))

let test_path_validation () =
  let q = Parse.pattern ~id:5 "?x -a-> ?y -b-> ?z" in
  let e0 = Pattern.edge q 0 and e1 = Pattern.edge q 1 in
  let p = Path.of_edges [ e0; e1 ] in
  Alcotest.(check int) "length" 2 (Path.length p);
  Alcotest.(check (list int)) "vids" [ e0.Pattern.src; e0.Pattern.dst; e1.Pattern.dst ]
    (Array.to_list (Path.vids p));
  Alcotest.check_raises "non-chaining" (Invalid_argument "Path.of_edges: edges do not chain")
    (fun () -> ignore (Path.of_edges [ e1; e1 ]));
  Alcotest.(check bool) "subpath" true (Path.is_subpath (Path.of_edges [ e0 ]) p);
  Alcotest.(check bool) "not subpath (wrong order)" false
    (Path.is_subpath p (Path.of_edges [ e0 ]))

let cover_ok ?strategy q =
  let paths = Cover.extract ?strategy q in
  Alcotest.(check bool) "covers" true (Cover.covers q paths);
  paths

let test_cover_shapes () =
  (* Chain: one path. *)
  let chain = Parse.pattern ~id:10 "?a -x-> ?b -y-> ?c -z-> ?d" in
  Alcotest.(check int) "chain: 1 path" 1 (List.length (cover_ok chain));
  (* Out-star: one path per leaf. *)
  let star = Parse.pattern ~id:11 "?c -x-> ?l1; ?c -y-> ?l2; ?c -z-> ?l3" in
  Alcotest.(check int) "star: 3 paths" 3 (List.length (cover_ok star));
  (* In-star. *)
  let instar = Parse.pattern ~id:12 "?l1 -x-> ?c; ?l2 -y-> ?c" in
  Alcotest.(check int) "in-star: 2 paths" 2 (List.length (cover_ok instar));
  (* Cycle: a single path walking around it. *)
  let cycle = Parse.pattern ~id:13 "?a -x-> ?b; ?b -y-> ?c; ?c -z-> ?a" in
  let paths = cover_ok cycle in
  Alcotest.(check int) "cycle: 1 path" 1 (List.length paths);
  Alcotest.(check int) "cycle path covers all edges" 3 (Path.length (List.hd paths))

let test_cover_const_anchor () =
  (* The backward walk must stop at a constant vertex: the covering path
     of an anchored cycle starts at the constant. *)
  let cycle = Parse.pattern ~id:14 "k0 -x-> ?b; ?b -y-> ?c; ?c -z-> k0" in
  let paths = cover_ok cycle in
  Alcotest.(check int) "one path" 1 (List.length paths);
  let p = List.hd paths in
  (match Pattern.term cycle (Path.source p) with
  | Term.Const c -> Alcotest.(check string) "starts at constant" "k0" (Label.to_string c)
  | Term.Var _ -> Alcotest.fail "cycle covering path should start at the constant")

let test_cover_naive_strategy () =
  List.iter
    (fun s ->
      ignore
        (cover_ok ~strategy:Cover.Naive (Parse.pattern ~id:20 s) : Path.t list))
    [
      "?a -x-> ?b -y-> ?c";
      "?c -x-> ?l1; ?c -y-> ?l2";
      "?a -x-> ?b; ?b -y-> ?a";
      "k1 -x-> ?b -y-> k2; ?b -z-> ?d";
    ]

let test_intersections () =
  let q = Parse.pattern ~id:21 "?c -a-> ?x; ?c -b-> ?y" in
  let paths = Cover.extract q in
  match Cover.intersections paths with
  | [ (0, 1, shared) ] ->
    (* ?c is the first vertex mentioned, so its vid is 0. *)
    Alcotest.(check (list int)) "share the center" [ 0 ] shared
  | other -> Alcotest.failf "unexpected intersections (%d entries)" (List.length other)

let test_wspec_rejections () =
  let reject what s =
    match Wspec.of_string s with
    | Error _ -> ()
    | Ok w -> Alcotest.failf "%s: %S parsed as %s" what s (Wspec.to_string w)
  in
  reject "empty" "";
  reject "whitespace only" "   ";
  reject "unknown unit" "10x";
  reject "unknown unit" "90q";
  reject "zero span" "0s";
  reject "negative span" "-5m";
  reject "zero count" "0";
  reject "negative count" "-3";
  reject "zero events" "0 EVENTS";
  reject "trailing garbage" "1h EXTRA";
  reject "trailing garbage" "500 EVENTS TUMBLING EXTRA";
  reject "shape alone" "TUMBLING";
  (match Wspec.of_tokens [] with
  | Error _ -> ()
  | Ok w -> Alcotest.failf "empty token list parsed as %s" (Wspec.to_string w));
  (* every accepted surface form round-trips through to_string *)
  List.iter
    (fun s ->
      match Wspec.of_string s with
      | Error e -> Alcotest.failf "%S rejected: %s" s e
      | Ok w -> (
        match Wspec.of_string (Wspec.to_string w) with
        | Ok w' -> Alcotest.(check bool) ("roundtrip " ^ s) true (Wspec.equal w w')
        | Error e -> Alcotest.failf "rendering of %S rejected: %s" s e))
    [ "1h"; "90s TUMBLING"; "1000 EVENTS"; "500"; "2d sliding"; "5m Sliding" ]

let suite =
  [
    Alcotest.test_case "builder unifies terms" `Quick test_builder_unifies_terms;
    Alcotest.test_case "builder validation" `Quick test_builder_validation;
    Alcotest.test_case "parse round-trip" `Quick test_parse_roundtrip;
    Alcotest.test_case "ekey generalisations" `Quick test_ekey_generalisations;
    Alcotest.test_case "path validation" `Quick test_path_validation;
    Alcotest.test_case "cover shapes" `Quick test_cover_shapes;
    Alcotest.test_case "cover constant anchor" `Quick test_cover_const_anchor;
    Alcotest.test_case "cover naive strategy" `Quick test_cover_naive_strategy;
    Alcotest.test_case "path intersections" `Quick test_intersections;
    Alcotest.test_case "wspec rejections" `Quick test_wspec_rejections;
  ]
